# Convenience targets; `make check` is the tier-1 gate.

.PHONY: all build test test-parallel test-devices chaos vm-smoke devices-smoke daemon-smoke tune-smoke attn-smoke crash-smoke check fmt-check fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Run the suite again with two worker domains so the parallel plan
# enumeration path (and the domain-safety of memo/trace) is exercised on
# every push, not just the sequential default.  test/dune declares
# GCD2_JOBS as a dependency, so this is not a cached no-op after `test`.
test-parallel:
	GCD2_JOBS=2 dune runtest

# Run the suite once per built-in machine description.  Library
# defaults pin hexagon698 (the bit-identity goldens always run), but
# entry points resolve their default device through GCD2_DEVICE, so the
# second pass exercises the descriptor-generic paths on the wider
# device.  test/dune declares GCD2_DEVICE, so neither pass is a cached
# no-op.
test-devices:
	GCD2_DEVICE=hexagon698 dune runtest
	GCD2_DEVICE=hexagon-g2 dune runtest

# Tiny cross-device benchmark: three models on every built-in
# descriptor, writing BENCH_devices.json.
devices-smoke: build
	./_build/default/bench/main.exe devices-smoke

# Formatting gate: enforced when ocamlformat is available (the committed
# .ocamlformat pins the style), skipped with a note otherwise so `check`
# still works on minimal toolchains.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping formatting gate"; \
	fi

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune fmt; \
	else \
		echo "ocamlformat not installed; cannot format"; \
	fi

# Chaos gate: the fault-injection suite under a fixed GCD2_FAULTS spec
# (fixed seed, so every CI failure replays locally with this exact
# command).  The suite also runs fault-free as part of `test`; this
# pass re-runs it with every injection point firing at a meaningful
# rate, asserting the service never crashes, never serves wrong bits,
# and always converges back to fault-free behaviour.
chaos: build
	GCD2_FAULTS="seed=20260807,cache-read=0.3,cache-write=0.3,artifact-decode=0.5,memo-lookup=0.3,pool-worker=0.2,flight-lease=0.3,janitor-unlink=0.3" \
		./_build/default/test/test_main.exe test chaos

# Tiny vm benchmark: exercises both the translated engine and the
# reference interpreter on every opcode plus a small whole model, and
# fails if their outputs or statistics ever diverge.
vm-smoke: build
	./_build/default/bench/main.exe vm-smoke

# Autotuner smoke: a tiny costing budget on two models walks the full
# tune path (enumerate, prune, cost, rank) and fails if the tuned
# schedule is ever worse than the adaptive heuristic.  The full-zoo
# run (`bench/main.exe tune`) writes BENCH_codegen.json.
tune-smoke: build
	./_build/default/bench/main.exe tune-smoke

# Transformer-kernel smoke: TinyBERT at a bucketed sequence length,
# compiled with the attention kernels off and on, fails unless the
# kernels flip the model majority-DSP.  The full run
# (`bench/main.exe attn`) writes BENCH_attn.json.
attn-smoke: build
	./_build/default/bench/main.exe attn-smoke

# Daemon load smoke: the serve-load generator against a live daemon,
# first with two workers under a fixed fault spec (faulted workers must
# absorb every injection without dropping a session), then fault-free
# across the worker sweep, writing BENCH_serve.json.
daemon-smoke: build
	GCD2_SERVE_LOAD_WORKERS=2 GCD2_SERVE_LOAD_MS=800 \
	GCD2_FAULTS="seed=20260808,cache-read=0.2,artifact-decode=0.2,memo-lookup=0.2" \
		./_build/default/bench/main.exe serve-load-smoke
	./_build/default/bench/main.exe serve-load-smoke

# Kill-chaos smoke: real daemon processes SIGKILLed mid-compile under a
# fixed seed, restarted over the wreckage.  Fails unless recovered
# responses are bit-identical to the fault-free baseline, no client
# wedges, a peer daemon breaks a dead leader's lease, and the janitor
# converges the shared cache directory (zero .tmp, within budget).
# Appends a "crash" recovery-time key to BENCH_serve.json.
crash-smoke: build
	GCD2_CRASH_ROUNDS=3 ./_build/default/bench/main.exe crash-smoke

check: build test test-parallel test-devices chaos vm-smoke devices-smoke daemon-smoke tune-smoke attn-smoke crash-smoke fmt-check

clean:
	dune clean
