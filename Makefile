# Convenience targets; `make check` is the tier-1 gate.

.PHONY: all build test check fmt-check fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting gate: enforced when ocamlformat is available (the committed
# .ocamlformat pins the style), skipped with a note otherwise so `check`
# still works on minimal toolchains.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping formatting gate"; \
	fi

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune fmt; \
	else \
		echo "ocamlformat not installed; cannot format"; \
	fi

check: build test fmt-check

clean:
	dune clean
