(* Tests for the machine descriptors (Gcd2_devices.Desc) and everything
   the descriptor threads through: bit-identity of the default device
   with the historical constants (zoo goldens), cross-device cost
   ordering, memo-key separation, slot monotonicity, and the
   cross-device placement pass. *)

module Desc = Gcd2_devices.Desc
module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler
module Place = Gcd2.Place
module Graphcost = Gcd2_cost.Graphcost
module Streams = Gcd2_cost.Streams
module Plan = Gcd2_cost.Plan
module Matmul = Gcd2_codegen.Matmul
module Eltwise = Gcd2_codegen.Eltwise
module Packer = Gcd2_sched.Packer
module Packet = Gcd2_isa.Packet
module Iclass = Gcd2_isa.Iclass
module Memo = Gcd2_util.Memo
module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
open Gcd2_graph
module B = Graph.Builder

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Descriptor basics *)

let test_builtins_valid () =
  List.iter Desc.validate Desc.builtins;
  check_bool "distinct names" true
    (List.length Desc.names = List.length (List.sort_uniq compare Desc.names));
  check_bool "distinct digests" true
    (Desc.digest Desc.hexagon698 <> Desc.digest Desc.hexagon_g2);
  check_bool "distinct canonical forms" true
    (Desc.canonical Desc.hexagon698 <> Desc.canonical Desc.hexagon_g2);
  check_bool "find is case-insensitive" true
    (Desc.find "HEXAGON698" = Some Desc.hexagon698);
  check_bool "unknown name is None" true (Desc.find "hexagon9000" = None);
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  match Desc.get "hexagon9000" with
  | exception Invalid_argument msg ->
    check_bool "error names the known devices" true (contains msg "hexagon698")
  | _ -> Alcotest.fail "unknown device accepted"

(* ------------------------------------------------------------------ *)
(* Zoo goldens: the default device must reproduce the seed bit for bit *)

(* Captured via `bench/main.exe zoo-goldens`: total cycles and ms (hex
   floats, exact) and the MD5 of the comma-joined plan assignment of
   Compiler.compile under the default configuration.  These move only
   when a change is sanctioned to move them; the last regeneration
   accompanied the transformer kernels (batched MatMul / Softmax /
   LayerNorm costed from generated Rowops programs), which re-priced
   every model containing a softmax or a normalization — the
   classifiers, the instance-norm GANs and the sequence models — while
   every plan assignment stayed put. *)
let goldens =
  [
    ("MobileNet-V3", "0x1.3f1e568p+26", "0x1.64ed91f79d136p+1",
     "8b5b71b8be8ebabbf55f7426a121a8d6");
    ("EfficientNet-b0", "0x1.f7168e4p+26", "0x1.1958e627587b3p+2",
     "7d05020ea4526040bfc35304e3369789");
    ("ResNet-50", "0x1.98a611ep+27", "0x1.c910db3d6142dp+2",
     "b7cfa41141ec6a77baa5d0284ad72913");
    ("FST", "0x1.0b156132p+33", "0x1.2aba54a3c6434p+8",
     "1b6ed33fcf67fc5399e0329feb3ff83f");
    ("CycleGAN", "0x1.e1d4fbf2p+32", "0x1.0d75c06ea8e37p+8",
     "e896886368cecd6c988d4fc8239c192f");
    ("WDSR-b", "0x1.c6fe2ccp+29", "0x1.fce6a21953468p+4",
     "84f18c3324bb51ad02e57689ac822713");
    ("EfficientDet-d0", "0x1.6a31345p+28", "0x1.951ae95aa20dp+3",
     "c41b2b5267a37ca005af60d1a6ee18a9");
    ("PixOr", "0x1.424f659p+29", "0x1.687f6f5dcd824p+4",
     "0e7e1eed895e9fd8cefe4ef2b759b2f6");
    ("TinyBERT", "0x1.a3c99c2p+27", "0x1.d5863ffcb6e7p+2",
     "524f1d0cd2b7db89d883f89a125071c2");
    ("Conformer", "0x1.f166b00cp+30", "0x1.162ab7f98f5bep+6",
     "bb0b7ff720de715187a0350ebb5a5bf5");
  ]

(* One compile per (model, device), shared by the golden and the
   cross-device tests. *)
let zoo_compiled =
  lazy
    (List.map
       (fun (e : Zoo.entry) ->
         let g = e.Zoo.build () in
         let c698 = Compiler.compile g in
         let cg2 =
           Compiler.compile
             ~config:(Compiler.with_device Desc.hexagon_g2 Compiler.default)
             g
         in
         (e.Zoo.name, c698, cg2))
       Zoo.all)

let test_zoo_golden_hexagon698 () =
  check_bool "default config targets hexagon698" true
    (Desc.equal (Compiler.device Compiler.default) Desc.hexagon698);
  List.iter
    (fun (name, cycles_hex, ms_hex, asg_md5) ->
      let _, c, _ = List.find (fun (n, _, _) -> n = name) (Lazy.force zoo_compiled) in
      check_string (name ^ " cycles") cycles_hex
        (Printf.sprintf "%h" c.Compiler.report.Graphcost.cycles);
      check_string (name ^ " ms") ms_hex
        (Printf.sprintf "%h" c.Compiler.report.Graphcost.ms);
      let asg =
        String.concat ","
          (Array.to_list (Array.map string_of_int c.Compiler.assignment))
      in
      check_string (name ^ " assignment") asg_md5
        (Stdlib.Digest.to_hex (Stdlib.Digest.string asg)))
    goldens

let test_zoo_g2_faster () =
  let results = Lazy.force zoo_compiled in
  let wins =
    List.length
      (List.filter
         (fun (_, c698, cg2) ->
           cg2.Compiler.report.Graphcost.ms < c698.Compiler.report.Graphcost.ms)
         results)
  in
  let n = List.length results in
  (* acceptance bar: strictly faster modeled latency on >= 80% of the
     zoo (the wider vectors, extra slot and doubled DDR should dominate
     on every model, but only the 80% bar is contractual) *)
  check_bool
    (Printf.sprintf "hexagon-g2 faster on %d/%d models (need >= 80%%)" wins n)
    true
    (float_of_int wins >= 0.8 *. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Memo-key discipline: two devices must never share a memoized cost *)

let test_memo_no_cross_device_sharing () =
  let dwconv device =
    Streams.dwconv_cycles ~device ~strategy:Packer.sda ~vectors:2 ~taps:9
  in
  (* forward order *)
  Memo.clear_all ();
  let a698 = dwconv Desc.hexagon698 in
  let ag2 = dwconv Desc.hexagon_g2 in
  (* the two devices genuinely cost differently here, so a memo table
     whose key dropped the descriptor would return the first device's
     value for the second *)
  check_bool "devices cost differently" true (a698 <> ag2);
  (* reverse order: with per-device keys the values are call-order
     independent; with shared keys the first call would win both times *)
  Memo.clear_all ();
  let bg2 = dwconv Desc.hexagon_g2 in
  let b698 = dwconv Desc.hexagon698 in
  Alcotest.(check (float 0.0)) "698 cost is order-independent" a698 b698;
  Alcotest.(check (float 0.0)) "g2 cost is order-independent" ag2 bg2;
  (* spec-keyed kernel memos: the device is a spec field, so the memo
     key separates automatically — same check through Matmul *)
  let mm device =
    Matmul.cycles
      {
        Matmul.device;
        simd = Gcd2_codegen.Simd.I_vrmpy;
        m = 64;
        k = 64;
        n = 32;
        mult = 1 lsl 30;
        shift = 30;
        act_table = None;
        strategy = Packer.sda;
        un = 4;
        ug = 1;
        abuf = 2;
        wbuf = 2;
        addressing = Matmul.Bump;
      }
  in
  Memo.clear_all ();
  let m698 = mm Desc.hexagon698 in
  let mg2 = mm Desc.hexagon_g2 in
  check_bool "matmul kernels cost differently per device" true (m698 <> mg2)

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

(* Adding an issue slot (and never removing a class from a slot) can
   only widen the set of feasible packets: any instruction-class mix
   that fits hexagon698's 4 slots fits hexagon-g2's 5. *)
let qcheck_slot_monotone =
  QCheck.Test.make ~name:"a wider device never rejects a feasible packet" ~count:500
    QCheck.(list_of_size Gen.(int_range 1 4) (int_range 0 (List.length Iclass.all - 1)))
    (fun classes ->
      let classes = List.map (fun i -> List.nth Iclass.all i) classes in
      let masks d = List.map (Iclass.slot_mask_on d) classes in
      QCheck.assume (Packet.masks_feasible ~desc:Desc.hexagon698 (masks Desc.hexagon698));
      Packet.masks_feasible ~desc:Desc.hexagon_g2 (masks Desc.hexagon_g2))

(* Doubling the vector width halves the vector count of a same-sized
   tensor; with latencies equal and a strictly wider slot assignment the
   modeled stream cycles must not increase. *)
let qcheck_wider_vector_streams =
  QCheck.Test.make
    ~name:"doubled vector width never slows an eltwise stream" ~count:200
    QCheck.(pair (int_range 1 128) (int_range 0 2))
    (fun (vectors, strat) ->
      let strategy =
        List.nth [ Packer.sda; Packer.In_order; Packer.List_topdown ] strat
      in
      let halved = (vectors + 1) / 2 in
      Streams.unary_cycles ~uv:(`Fixed 2) ~device:Desc.hexagon_g2 ~strategy ~vectors:halved
      <= Streams.unary_cycles ~uv:(`Fixed 2) ~device:Desc.hexagon698 ~strategy ~vectors
      && Streams.binary_cycles ~uv:(`Fixed 2) ~device:Desc.hexagon_g2 ~strategy ~op:Eltwise.Badd
           ~vectors:halved
         <= Streams.binary_cycles ~uv:(`Fixed 2) ~device:Desc.hexagon698 ~strategy ~op:Eltwise.Badd
              ~vectors)

(* Roofline monotonicity in bandwidth: a device that only moves bytes
   faster can never make a plan slower. *)
let qcheck_bandwidth_monotone =
  QCheck.Test.make ~name:"more DDR bandwidth never slows a plan" ~count:200
    QCheck.(triple (float_bound_exclusive 1e9) (float_bound_exclusive 1e9)
              (float_bound_exclusive 1e6))
    (fun (compute, mem, staging) ->
      let plan =
        {
          Plan.layout = Gcd2_tensor.Layout.Row_major;
          simd = None;
          unroll = None;
          compute_cycles = compute;
          staging_cycles = staging;
          mem_bytes = mem;
          macs = 0;
        }
      in
      Plan.cycles ~desc:Desc.hexagon_g2 plan <= Plan.cycles ~desc:Desc.hexagon698 plan)

(* ------------------------------------------------------------------ *)
(* The placement pass *)

let weight_q = Q.make (1.0 /. 64.0)

let small_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 8 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let w2 = T.random ~quant:weight_q rng [| 1; 1; 8; 8 |] in
  let c2 = B.conv2d ~weight:w2 b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:8 in
  let _ = B.add b Op.Add [ r1; c2 ] in
  B.finish b

(* With a single device the joint problem degenerates to the ordinary
   single-device selection, so the placement must reproduce the
   compiler's assignment exactly.  (Placement costs the graph as given;
   compare against a compile with the graph optimizer off.) *)
let test_place_single_device_degenerates () =
  let g = small_cnn 1 in
  let c =
    Compiler.compile
      ~config:{ Compiler.default with Compiler.optimize_graph = false }
      g
  in
  let p = Place.place ~devices:[ Desc.hexagon698 ] g in
  check_bool "every node on the only device" true
    (Array.for_all
       (fun (ch : Place.choice) -> ch.Place.device.Desc.name = "hexagon698")
       p.Place.choices);
  Alcotest.(check (array int))
    "plan choices match the single-device compile" c.Compiler.assignment
    (Array.map (fun (ch : Place.choice) -> ch.Place.plan) p.Place.choices)

let test_place_two_devices () =
  let g = small_cnn 2 in
  let p = Place.place ~devices:[ Desc.hexagon698; Desc.hexagon_g2 ] g in
  let n = Graph.size g in
  Alcotest.(check int) "one choice per node" n (Array.length p.Place.choices);
  Alcotest.(check int)
    "per-device counts sum to the node count" n
    (List.fold_left (fun acc (_, k) -> acc + k) 0 p.Place.per_device);
  check_bool "objective is positive and finite" true
    (p.Place.objective > 0.0 && Float.is_finite p.Place.objective);
  Array.iter
    (fun (ch : Place.choice) ->
      check_bool "chosen device is one of the offered" true
        (List.mem ch.Place.device.Desc.name [ "hexagon698"; "hexagon-g2" ]);
      check_bool "node cycles finite" true
        (Float.is_finite ch.Place.cycles && ch.Place.cycles >= 0.0))
    p.Place.choices;
  check_bool "empty device list rejected" true
    (match Place.place ~devices:[] g with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Whatever GCD2_DEVICE selects must behave: `make check` runs the
   suite once per built-in device through this test. *)

let test_default_device_compiles () =
  let dut = Desc.default () in
  Desc.validate dut;
  let g = small_cnn 3 in
  let c = Compiler.compile ~config:(Compiler.with_device dut Compiler.default) g in
  check_bool "latency positive" true (Compiler.latency_ms c > 0.0);
  check_bool "report cycles finite" true
    (Float.is_finite c.Compiler.report.Graphcost.cycles);
  let d1 = Compiler.fingerprint (Compiler.with_device dut Compiler.default) g in
  let d2 = Compiler.fingerprint (Compiler.with_device dut Compiler.default) g in
  check_string "fingerprint deterministic" d1 d2

let tests =
  [
    Alcotest.test_case "builtins validate; names/digests distinct" `Quick
      test_builtins_valid;
    Alcotest.test_case "zoo goldens: hexagon698 = seed, bit for bit" `Slow
      test_zoo_golden_hexagon698;
    Alcotest.test_case "zoo: hexagon-g2 faster on >= 80%" `Slow test_zoo_g2_faster;
    Alcotest.test_case "memo keys separate devices" `Quick
      test_memo_no_cross_device_sharing;
    QCheck_alcotest.to_alcotest qcheck_slot_monotone;
    QCheck_alcotest.to_alcotest qcheck_wider_vector_streams;
    QCheck_alcotest.to_alcotest qcheck_bandwidth_monotone;
    Alcotest.test_case "place: single device degenerates to selection" `Quick
      test_place_single_device_degenerates;
    Alcotest.test_case "place: two devices" `Quick test_place_two_devices;
    Alcotest.test_case "default device (GCD2_DEVICE) compiles" `Quick
      test_default_device_compiles;
  ]
