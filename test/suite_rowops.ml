(* Differential tests for the row-operator and batched-matmul DSP
   kernels: VM output vs the scalar reference, bit-exact on the integer
   paths (the reference and the kernels share every integer step), and
   bounded error against the real-valued softmax where the Vlut
   exponential approximation is involved. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Packer = Gcd2_sched.Packer
module Interp = Gcd2_kernels.Interp
module Rowops = Gcd2_codegen.Rowops

let strategies = [ ("sda", Packer.sda); ("in-order", Packer.In_order) ]

let random_matrix rng ~rows ~cols ~quant =
  T.random ~quant rng [| rows; cols |]

(* Shapes that cross every kernel boundary: single row, partial group,
   full group, multiple groups (softmax groups are 128 rows, layer-norm
   groups 64), and columns around the 16-bit drain chunk (128). *)
let shapes =
  [ (1, 1); (1, 7); (3, 5); (17, 33); (64, 16); (65, 12); (128, 9); (130, 20);
    (40, 128); (9, 131); (5, 300) ]

let test_softmax_differential () =
  let rng = Rng.create 11 in
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun (rows, cols) ->
          let x = random_matrix rng ~rows ~cols ~quant:(Q.make (1.0 /. 16.0)) in
          let expect = (Interp.softmax x).T.data in
          let got, cycles =
            Rowops.run_softmax ~strategy ~rows ~cols ~scale:x.T.quant.Q.scale x.T.data
          in
          Alcotest.(check bool)
            (Fmt.str "softmax cycles counted (%s %dx%d)" sname rows cols)
            true (cycles > 0);
          Alcotest.(check (array int))
            (Fmt.str "softmax vm = reference (%s %dx%d)" sname rows cols)
            expect got)
        shapes)
    strategies

let test_layer_norm_differential () =
  let rng = Rng.create 12 in
  List.iter
    (fun (sname, strategy) ->
      List.iter
        (fun (rows, cols) ->
          let x = random_matrix rng ~rows ~cols ~quant:(Q.make (1.0 /. 16.0)) in
          let expect = (Interp.layer_norm x).T.data in
          let got, _ =
            Rowops.run_layer_norm ~strategy ~rows ~cols ~scale:x.T.quant.Q.scale
              ~out_scale:(1.0 /. 16.0) x.T.data
          in
          Alcotest.(check (array int))
            (Fmt.str "layer_norm vm = reference (%s %dx%d)" sname rows cols)
            expect got)
        shapes)
    strategies

(* qcheck: random shapes and data, both strategies, exact agreement. *)
let qcheck_softmax =
  QCheck.Test.make ~name:"rowops softmax = reference on random inputs" ~count:60
    QCheck.(triple (int_range 1 200) (int_range 1 160) (int_range 1 1_000_000))
    (fun (rows, cols, seed) ->
      let rng = Rng.create seed in
      let x = random_matrix rng ~rows ~cols ~quant:(Q.make (1.0 /. 16.0)) in
      let expect = (Interp.softmax x).T.data in
      let got, _ =
        Rowops.run_softmax ~strategy:Packer.sda ~rows ~cols ~scale:x.T.quant.Q.scale
          x.T.data
      in
      expect = got)

let qcheck_layer_norm =
  QCheck.Test.make ~name:"rowops layer_norm = reference on random inputs" ~count:60
    QCheck.(triple (int_range 1 200) (int_range 1 160) (int_range 1 1_000_000))
    (fun (rows, cols, seed) ->
      let rng = Rng.create seed in
      let x = random_matrix rng ~rows ~cols ~quant:(Q.make (1.0 /. 16.0)) in
      let expect = (Interp.layer_norm x).T.data in
      let got, _ =
        Rowops.run_layer_norm ~strategy:Packer.sda ~rows ~cols
          ~scale:x.T.quant.Q.scale ~out_scale:(1.0 /. 16.0) x.T.data
      in
      expect = got)

(* Where the Vlut exponential approximation is involved the integer
   result must still track the real-valued softmax: each output (quant
   1/128) within a small absolute probability error. *)
let test_softmax_bounded_error () =
  let rng = Rng.create 13 in
  let rows = 24 and cols = 40 in
  let q = Q.make (1.0 /. 16.0) in
  let x = random_matrix rng ~rows ~cols ~quant:q in
  let got, _ =
    Rowops.run_softmax ~strategy:Packer.sda ~rows ~cols ~scale:q.Q.scale x.T.data
  in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let xs = Array.init cols (fun j -> Q.dequantize q x.T.data.(base + j)) in
    let m = Array.fold_left Float.max neg_infinity xs in
    let es = Array.map (fun v -> exp (v -. m)) xs in
    let sum = Array.fold_left ( +. ) 0.0 es in
    Array.iteri
      (fun j e ->
        let p = e /. sum in
        let p_vm = float_of_int got.(base + j) /. 128.0 in
        if Float.abs (p -. p_vm) > 0.04 then
          Alcotest.failf "softmax error %.4f at (%d,%d): vm %.4f real %.4f"
            (Float.abs (p -. p_vm)) r j p_vm p)
      es
  done

(* Batched matmul through the runtime dispatch is covered by suite_core;
   here: the reference's per-slice semantics equals a plain matmul on
   each slice, the invariant the VM path relies on. *)
let test_batch_matmul_slices () =
  let rng = Rng.create 14 in
  let batch = 3 and m = 4 and k = 5 and n = 6 in
  let qa = Q.default and qb = Q.make (1.0 /. 64.0) in
  let a = T.random ~quant:qa rng [| batch; m; k |] in
  let b = T.random ~quant:qb rng [| batch; k; n |] in
  let out = Interp.batch_matmul a b ~transpose_b:false ~out_q:Q.default in
  let mult, shift = Q.requant_multiplier ~in_a:qa ~in_b:qb ~out:Q.default in
  for bt = 0 to batch - 1 do
    let a_slice = Array.sub a.T.data (bt * m * k) (m * k) in
    let b_slice = Array.sub b.T.data (bt * k * n) (k * n) in
    let expect = Interp.matmul_i8 ~m ~k ~n a_slice b_slice ~mult ~shift in
    let got = Array.sub out.T.data (bt * m * n) (m * n) in
    Alcotest.(check (array int)) (Fmt.str "slice %d" bt) expect got
  done

let tests =
  [
    Alcotest.test_case "softmax differential" `Quick test_softmax_differential;
    Alcotest.test_case "layer_norm differential" `Quick test_layer_norm_differential;
    Alcotest.test_case "softmax bounded error vs real" `Quick test_softmax_bounded_error;
    Alcotest.test_case "batch_matmul slice semantics" `Quick test_batch_matmul_slices;
    QCheck_alcotest.to_alcotest qcheck_softmax;
    QCheck_alcotest.to_alcotest qcheck_layer_norm;
  ]
