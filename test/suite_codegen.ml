(* Tests for Gcd2_codegen: generated matmul kernels must be bit-exact
   against the reference interpreter for every SIMD choice, layout,
   shape (including padding cases) and unroll setting. *)

module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Weights = Gcd2_codegen.Weights
module Testbench = Gcd2_codegen.Testbench
module Interp = Gcd2_kernels.Interp
module Lut = Gcd2_kernels.Lut
module Packer = Gcd2_sched.Packer
module Rng = Gcd2_util.Rng
module Sat = Gcd2_util.Saturate
module Q = Gcd2_tensor.Quant

let mult, shift = Sat.quantize_multiplier 0.05

let spec ?un ?(ug = 1) ?(strategy = Packer.sda) ?act_table simd ~m ~k ~n =
  let un =
    match un with
    | Some u -> u
    | None -> max 2 (Gcd2_tensor.Layout.column_group (Simd.layout simd))
  in
  { Matmul.device = Gcd2_devices.Desc.hexagon698; simd; m; k; n; mult; shift; act_table; strategy; un; ug; abuf = 2; wbuf = 2; addressing = Matmul.Bump }

let reference ?act ~m ~k ~n a w =
  let data = Interp.matmul_i8 ~m ~k ~n a w ~mult ~shift in
  match act with
  | None -> data
  | Some table -> Array.map (fun q -> Lut.apply table q) data

let random_inputs seed ~m ~k ~n =
  let rng = Rng.create seed in
  let a = Array.init (m * k) (fun _ -> Rng.int8 rng) in
  let w = Array.init (k * n) (fun _ -> Rng.int8 rng) in
  (a, w)

let check_case ?un ?ug ?strategy simd ~m ~k ~n ~seed =
  let a, w = random_inputs seed ~m ~k ~n in
  let s = spec ?un ?ug ?strategy simd ~m ~k ~n in
  let got = Testbench.run s ~a ~w in
  let want = reference ~m ~k ~n a w in
  if got.Testbench.data <> want then begin
    let first_bad = ref (-1) in
    Array.iteri (fun i v -> if !first_bad = -1 && v <> want.(i) then first_bad := i) got.data;
    Alcotest.failf "%s m=%d k=%d n=%d: first mismatch at %d: got %d want %d"
      (Simd.name simd) m k n !first_bad got.data.(!first_bad) want.(!first_bad)
  end

let test_exact simd () =
  List.iteri
    (fun i (m, k, n) -> check_case simd ~m ~k ~n ~seed:(100 + i))
    [
      (* exact panel fits *)
      (128, 8, 4);
      (64, 16, 6);
      (32, 32, 32);
      (* paper table II shapes *)
      (64, 64, 8);
      (* padding in every dimension *)
      (5, 3, 3);
      (130, 7, 5);
      (33, 9, 2);
      (1, 1, 1);
      (* larger K exercising the k-loop and tail *)
      (32, 70, 4);
    ]

let test_unroll_settings simd () =
  let group = Gcd2_tensor.Layout.column_group (Simd.layout simd) in
  let uns = List.filter (fun u -> u mod group = 0) [ 1; 2; 4; 8 ] in
  let uns = List.filter (fun u -> u <= Matmul.max_un simd) uns in
  List.iter
    (fun un ->
      List.iter
        (fun ug -> check_case ~un ~ug simd ~m:70 ~k:24 ~n:9 ~seed:(un * 10 + ug))
        [ 1; 2; 3 ])
    uns

let test_strategies_agree () =
  (* Every packing strategy must produce the same results (only timing
     differs). *)
  let m, k, n = (40, 12, 6) in
  let a, w = random_inputs 7 ~m ~k ~n in
  let want = reference ~m ~k ~n a w in
  List.iter
    (fun simd ->
      List.iter
        (fun strategy ->
          let s = spec ~strategy simd ~m ~k ~n in
          let got = Testbench.run s ~a ~w in
          Alcotest.(check (array int))
            (Fmt.str "%s under %a" (Simd.name simd) Packer.pp_strategy strategy)
            want got.Testbench.data)
        [ Packer.sda; Packer.Soft_to_hard; Packer.Soft_to_none; Packer.List_topdown ])
    Simd.all

let test_fused_activation () =
  let m, k, n = (32, 16, 4) in
  let a, w = random_inputs 9 ~m ~k ~n in
  let out_q = Q.default in
  let table = Lut.of_act ~in_q:out_q ~out_q Gcd2_graph.Op.A_relu in
  List.iter
    (fun simd ->
      let s =
        { (spec simd ~m ~k ~n) with Matmul.act_table = Some 1 }
      in
      let got = Testbench.run ~tables:[ (1, table) ] s ~a ~w in
      let want = reference ~act:table ~m ~k ~n a w in
      Alcotest.(check (array int)) (Simd.name simd ^ " with relu") want got.Testbench.data)
    Simd.all

let test_padded_sizes () =
  (* Table II's padding accounting: at M=K=N=32 the three instructions pad
     very differently (vmpy 4x, vmpa 2x, vrmpy none on A). *)
  let bytes simd = Simd.padded_data_bytes simd ~m:32 ~k:32 ~n:32 in
  Alcotest.(check bool) "vmpy pads most" true (bytes Simd.I_vmpy > bytes Simd.I_vmpa);
  Alcotest.(check bool) "vmpa pads more than vrmpy" true
    (bytes Simd.I_vmpa > bytes Simd.I_vrmpy);
  (* at 128^3 nobody pads *)
  List.iter
    (fun simd ->
      Alcotest.(check int)
        (Simd.name simd ^ " no padding at 128")
        (3 * 128 * 128)
        (Simd.padded_data_bytes simd ~m:128 ~k:128 ~n:128))
    Simd.all

let test_cycle_counts_positive () =
  List.iter
    (fun simd ->
      let c = Matmul.cycles (spec simd ~m:128 ~k:64 ~n:8) in
      Alcotest.(check bool) (Simd.name simd ^ " cycles positive") true (c > 0))
    Simd.all

let test_sda_packs_tighter () =
  (* The SDA schedule should never be slower than treating soft deps as
     hard, on every kernel flavour. *)
  List.iter
    (fun simd ->
      let cycles strategy = Matmul.cycles (spec ~strategy simd ~m:128 ~k:64 ~n:8) in
      let sda = cycles (Packer.sda) in
      let hard = cycles Packer.Soft_to_hard in
      if sda > hard then
        Alcotest.failf "%s: sda %d > soft_to_hard %d" (Simd.name simd) sda hard)
    Simd.all

let qcheck_matmul_exact =
  QCheck.Test.make ~name:"random matmul shapes are bit-exact" ~count:60
    QCheck.(
      quad (int_range 1 70) (int_range 1 24) (int_range 1 10) (int_range 0 2))
    (fun (m, k, n, simd_i) ->
      let simd = List.nth Simd.all simd_i in
      let group = Gcd2_tensor.Layout.column_group (Simd.layout simd) in
      let un = group in
      let a, w = random_inputs (m + (k * 100) + n) ~m ~k ~n in
      let s = spec ~un simd ~m ~k ~n in
      let got = Testbench.run s ~a ~w in
      got.Testbench.data = reference ~m ~k ~n a w)

let tests =
  [
    Alcotest.test_case "vmpy kernel bit-exact" `Quick (test_exact Simd.I_vmpy);
    Alcotest.test_case "vmpa kernel bit-exact" `Quick (test_exact Simd.I_vmpa);
    Alcotest.test_case "vrmpy kernel bit-exact" `Quick (test_exact Simd.I_vrmpy);
    Alcotest.test_case "vmpy unroll settings" `Quick (test_unroll_settings Simd.I_vmpy);
    Alcotest.test_case "vmpa unroll settings" `Quick (test_unroll_settings Simd.I_vmpa);
    Alcotest.test_case "vrmpy unroll settings" `Quick (test_unroll_settings Simd.I_vrmpy);
    Alcotest.test_case "all packing strategies agree" `Quick test_strategies_agree;
    Alcotest.test_case "fused activation lut" `Quick test_fused_activation;
    Alcotest.test_case "padding accounting (table II)" `Quick test_padded_sizes;
    Alcotest.test_case "cycle counts positive" `Quick test_cycle_counts_positive;
    Alcotest.test_case "sda no slower on kernels" `Quick test_sda_packs_tighter;
    QCheck_alcotest.to_alcotest qcheck_matmul_exact;
  ]

(* ------------------------------------------------------------------ *)
(* Per-channel requantization (paper future work, implemented)         *)

let test_per_channel_requant simd () =
  let rng = Rng.create 31 in
  List.iter
    (fun (m, k, n) ->
      let a = Array.init (m * k) (fun _ -> Rng.int8 rng) in
      let w = Array.init (k * n) (fun _ -> Rng.int8 rng) in
      (* one weight scale per output channel, spanning a decade *)
      let scales =
        Array.init n (fun j -> (1.0 +. float_of_int j) /. 64.0 /. float_of_int n *. 4.0)
      in
      let mults, shift =
        Q.per_channel_requant ~in_a:Q.default ~weight_scales:scales ~out:Q.default
      in
      let s = { (spec simd ~m ~k ~n) with Matmul.shift } in
      let got = Testbench.run ~per_channel:(mults, shift) s ~a ~w in
      let want = Interp.matmul_i8_per_channel ~m ~k ~n a w ~mults ~shift in
      if got.Testbench.data <> want then begin
        let bad = ref (-1) in
        Array.iteri (fun i v -> if !bad = -1 && v <> want.(i) then bad := i) got.data;
        Alcotest.failf "%s m=%d k=%d n=%d: per-channel mismatch at %d (got %d want %d)"
          (Simd.name simd) m k n !bad got.data.(!bad) want.(!bad)
      end)
    [ (32, 8, 8); (70, 12, 9); (128, 16, 12) ]

let test_per_channel_differs_from_uniform () =
  (* sanity: with genuinely different channel scales the outputs differ
     from the uniform-requant kernel *)
  let m, k, n = (32, 8, 8) in
  let rng = Rng.create 33 in
  let a = Array.init (m * k) (fun _ -> Rng.int8 rng) in
  let w = Array.init (k * n) (fun _ -> Rng.int8 rng) in
  let scales = Array.init n (fun j -> if j mod 2 = 0 then 1.0 /. 64.0 else 1.0 /. 16.0) in
  let mults, shift =
    Q.per_channel_requant ~in_a:Q.default ~weight_scales:scales ~out:Q.default
  in
  let s = { (spec Simd.I_vrmpy ~m ~k ~n) with Matmul.shift } in
  let pc = Testbench.run ~per_channel:(mults, shift) s ~a ~w in
  let uni = Testbench.run (spec Simd.I_vrmpy ~m ~k ~n) ~a ~w in
  Alcotest.(check bool) "per-channel output differs" true (pc.Testbench.data <> uni.Testbench.data)

let tests =
  tests
  @ [
      Alcotest.test_case "per-channel requant vmpy" `Quick (test_per_channel_requant Simd.I_vmpy);
      Alcotest.test_case "per-channel requant vmpa" `Quick (test_per_channel_requant Simd.I_vmpa);
      Alcotest.test_case "per-channel requant vrmpy" `Quick
        (test_per_channel_requant Simd.I_vrmpy);
      Alcotest.test_case "per-channel differs from uniform" `Quick
        test_per_channel_differs_from_uniform;
    ]
