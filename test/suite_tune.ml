(* Tests for the tiled-kernel autotuner: the candidate space only
   contains specs the generators accept (and they really generate,
   bit-exactly), the packing lower bound never exceeds generated
   cycles, tuning never loses to the adaptive heuristic, and a tuned
   compile changes only the schedule — VM outputs stay bit-identical
   while the request fingerprint (and hence the cache entry) moves. *)

module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Unroll = Gcd2_codegen.Unroll
module Tile = Gcd2_codegen.Tile
module Autotune = Gcd2_codegen.Autotune
module Testbench = Gcd2_codegen.Testbench
module Interp = Gcd2_kernels.Interp
module Packer = Gcd2_sched.Packer
module Desc = Gcd2_devices.Desc
module Streams = Gcd2_cost.Streams
module Opcost = Gcd2_cost.Opcost
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime
module Artifact = Gcd2_store.Artifact
module Trace = Gcd2_util.Trace
module Rng = Gcd2_util.Rng
module Sat = Gcd2_util.Saturate
module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
open Gcd2_graph
module B = Graph.Builder

let mult, shift = Sat.quantize_multiplier 0.05

let base_spec ?(device = Desc.hexagon698) simd ~m ~k ~n =
  let un = max 2 (Gcd2_tensor.Layout.column_group (Simd.layout simd)) in
  {
    Matmul.device;
    simd;
    m;
    k;
    n;
    mult;
    shift;
    act_table = None;
    strategy = Packer.sda;
    un;
    ug = 1;
    abuf = 2;
    wbuf = 2;
    addressing = Matmul.Bump;
  }

let with_setting (s : Matmul.spec) (u : Unroll.setting) =
  { s with Matmul.un = u.Unroll.un; ug = u.Unroll.ug; abuf = u.Unroll.abuf; wbuf = u.Unroll.wbuf }

let simd_of_int i = List.nth Simd.all (i mod 3)

(* ------------------------------------------------------------------ *)
(* The candidate space *)

(* Every candidate Tile.space enumerates must pass the generator's own
   validation and the register/VTCM feasibility checks — the tuner
   costs them without re-checking. *)
let qcheck_space_feasible =
  QCheck.Test.make ~name:"every space candidate is feasible" ~count:40
    QCheck.(quad (int_range 1 150) (int_range 1 64) (int_range 1 24) (int_range 0 2))
    (fun (m, k, n, simd_i) ->
      let base = base_spec (simd_of_int simd_i) ~m ~k ~n in
      let space = Tile.space base in
      space <> []
      && List.for_all (fun u -> Tile.feasible (with_setting base u)) space)

(* A sample of candidates per random shape must actually generate, and
   generate bit-exact kernels — feasibility is not just a predicate,
   it is a promise the generators keep. *)
let qcheck_space_generates =
  QCheck.Test.make ~name:"space candidates generate bit-exact kernels" ~count:12
    QCheck.(quad (int_range 1 70) (int_range 1 32) (int_range 1 10) (int_range 0 2))
    (fun (m, k, n, simd_i) ->
      let base = base_spec (simd_of_int simd_i) ~m ~k ~n in
      let space = Tile.space base in
      (* sample: spread across the enumeration order, capped for time *)
      let sample =
        List.filteri (fun i _ -> i mod max 1 (List.length space / 5) = 0) space
      in
      let rng = Rng.create (m + (k * 131) + n) in
      let a = Array.init (m * k) (fun _ -> Rng.int8 rng) in
      let w = Array.init (k * n) (fun _ -> Rng.int8 rng) in
      let want = Interp.matmul_i8 ~m ~k ~n a w ~mult ~shift in
      List.for_all
        (fun u ->
          let got = Testbench.run (with_setting base u) ~a ~w in
          got.Testbench.data = want)
        sample)

(* ------------------------------------------------------------------ *)
(* The packing lower bound *)

let qcheck_lower_bound_sound =
  QCheck.Test.make ~name:"lower bound never exceeds generated cycles" ~count:40
    QCheck.(quad (int_range 1 150) (int_range 1 64) (int_range 1 24) (int_range 0 5))
    (fun (m, k, n, i) ->
      let device = if i >= 3 then Desc.hexagon_g2 else Desc.hexagon698 in
      let base = base_spec ~device (simd_of_int i) ~m ~k ~n in
      let space = Tile.space base in
      let sample =
        List.filteri (fun j _ -> j mod max 1 (List.length space / 4) = 0) space
      in
      List.for_all
        (fun u ->
          let s = with_setting base u in
          Tile.lower_bound s <= Matmul.cycles s)
        sample)

(* ------------------------------------------------------------------ *)
(* Tuning vs the heuristic *)

let qcheck_tuned_never_worse =
  QCheck.Test.make ~name:"tuned cycles <= adaptive heuristic cycles" ~count:25
    QCheck.(quad (int_range 1 150) (int_range 1 64) (int_range 1 24) (int_range 0 2))
    (fun (m, k, n, simd_i) ->
      let simd = simd_of_int simd_i in
      let base = base_spec simd ~m ~k ~n in
      let heuristic = with_setting base (Unroll.adaptive simd ~m ~k ~n) in
      let tuned = with_setting base (Autotune.tune Autotune.default base) in
      Matmul.cycles tuned <= Matmul.cycles heuristic)

let test_tune_verified_winner () =
  (* the verify path runs the winner against the heuristic kernel on
     the VM; the result must still never lose to the heuristic *)
  List.iter
    (fun simd ->
      let base = base_spec simd ~m:64 ~k:32 ~n:12 in
      let heuristic = with_setting base (Unroll.adaptive simd ~m:64 ~k:32 ~n:12) in
      let tuned =
        with_setting base (Autotune.tune { Autotune.budget = 8; verify = true } base)
      in
      Alcotest.(check bool)
        (Simd.name simd ^ " verified tuned <= heuristic")
        true
        (Matmul.cycles tuned <= Matmul.cycles heuristic))
    Simd.all

(* ------------------------------------------------------------------ *)
(* The tune spec grammar *)

let test_spec_grammar () =
  let ok s = match Autotune.of_string s with Ok c -> c | Error e -> Alcotest.fail e in
  Alcotest.(check int) "budget" 32 (ok "32").Autotune.budget;
  Alcotest.(check bool) "no verify" false (ok "32").Autotune.verify;
  Alcotest.(check int) "on = default budget" Autotune.default_budget (ok "on").Autotune.budget;
  Alcotest.(check bool) "verify alone" true (ok "verify").Autotune.verify;
  Alcotest.(check int) "verify alone keeps default budget" Autotune.default_budget
    (ok "verify").Autotune.budget;
  Alcotest.(check bool) "budget+verify" true (ok "16+verify").Autotune.verify;
  Alcotest.(check int) "budget+verify budget" 16 (ok "16+verify").Autotune.budget;
  (* to_string/of_string round-trip *)
  List.iter
    (fun c ->
      match Autotune.of_string (Autotune.to_string c) with
      | Ok c' -> Alcotest.(check bool) "round-trip" true (c = c')
      | Error e -> Alcotest.fail e)
    [
      Autotune.default;
      { Autotune.budget = 1; verify = false };
      { Autotune.budget = 100; verify = true };
    ];
  List.iter
    (fun bad ->
      match Autotune.of_string bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ "0"; "-4"; "x"; "8+bogus"; "8+verify+verify"; "off" ]

(* ------------------------------------------------------------------ *)
(* Whole-compiler behaviour *)

let weight_q = Q.make (1.0 /. 64.0)

(* Convs, a residual add, a matmul head: enough multiply nodes for the
   tuner to bite, small enough to run on the VM. *)
let weighted_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 8 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let w2 = T.random ~quant:weight_q rng [| 1; 1; 8; 8 |] in
  let c2 = B.conv2d ~weight:w2 b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:8 in
  let s = B.add b Op.Add [ r1; c2 ] in
  let flat = B.add b (Op.Reshape { shape = [| 64; 8 |] }) [ s ] in
  let w3 = T.random ~quant:weight_q rng [| 8; 10 |] in
  let _ = B.matmul ~weight:w3 b flat ~cout:10 in
  B.finish b

let tuned_config ?(budget = 16) () =
  {
    Compiler.default with
    Compiler.opcost =
      {
        Compiler.default.Compiler.opcost with
        Opcost.tune = Some { Autotune.budget; verify = false };
      };
  }

let test_tuned_compile_outputs_identical () =
  let g = weighted_cnn 5 in
  let plain = Compiler.compile g in
  let tuned = Compiler.compile ~config:(tuned_config ()) g in
  Alcotest.(check bool) "tuned modeled cycles <= heuristic" true
    (tuned.Compiler.report.Gcd2_cost.Graphcost.cycles
    <= plain.Compiler.report.Gcd2_cost.Graphcost.cycles);
  (* the tuner moves the schedule, never the math *)
  let rng = Rng.create 11 in
  let input = T.random rng (Graph.node plain.Compiler.graph 0).Graph.out_shape in
  let inputs = [ (0, input) ] in
  let o_plain = Runtime.run plain ~inputs in
  let o_tuned = Runtime.run tuned ~inputs in
  Alcotest.(check int) "same node count" (Array.length o_plain) (Array.length o_tuned);
  Array.iteri
    (fun i t ->
      if not (T.equal_data t o_tuned.(i)) then
        Alcotest.failf "node %d: tuned compile's output differs" i)
    o_plain;
  (* counters: every tuned compile enumerates and costs; prune + cost
     never exceeds the enumeration *)
  let counter n = Trace.counter tuned.Compiler.trace n in
  Alcotest.(check bool) "candidates counted" true (counter "tune-candidates" > 0);
  Alcotest.(check bool) "costings counted" true (counter "tune-costed" > 0);
  Alcotest.(check bool) "pruned+costed <= candidates" true
    (counter "tune-pruned" + counter "tune-costed" <= counter "tune-candidates")

let test_tuned_fingerprint_distinct () =
  let g = weighted_cnn 5 in
  let plain = Compiler.fingerprint Compiler.default g in
  let tuned = Compiler.fingerprint (tuned_config ()) g in
  Alcotest.(check bool) "tuned digest differs" false (plain = tuned);
  Alcotest.(check bool) "budget is part of the digest" false
    (tuned = Compiler.fingerprint (tuned_config ~budget:32 ()) g);
  let costed_uv =
    {
      Compiler.default with
      Compiler.opcost =
        { Compiler.default.Compiler.opcost with Opcost.eltwise_uv = `Costed };
    }
  in
  Alcotest.(check bool) "eltwise uv policy is part of the digest" false
    (plain = Compiler.fingerprint costed_uv g)

let temp_dir () =
  let f = Filename.temp_file "gcd2-tune-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_tuned_artifact_round_trip () =
  let dir = temp_dir () in
  let g = weighted_cnn 5 in
  let config = tuned_config () in
  let cold = Compiler.compile ~cache_dir:dir ~config g in
  let entry =
    match
      List.filter
        (fun f -> Filename.check_suffix f ".gcd2art")
        (Array.to_list (Sys.readdir dir))
    with
    | [ f ] -> Filename.concat dir f
    | fs -> Alcotest.failf "expected one cache entry, found %d" (List.length fs)
  in
  (* the stored tuned artifact re-serializes bit-identically *)
  (match Artifact.load ~path:entry () with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok (art, _bytes_read) ->
    Alcotest.(check bool) "store round-trip is bit-identical" true
      (Bytes.to_string (Artifact.to_bytes art) = read_file entry));
  (* and the warm compile serves the tuned schedule from the cache *)
  let warm = Compiler.compile ~cache_dir:dir ~config g in
  Alcotest.(check bool) "warm tuned compile is a hit" true (Compiler.from_cache warm);
  Alcotest.(check (array int)) "warm assignment unchanged" cold.Compiler.assignment
    warm.Compiler.assignment;
  Alcotest.(check (float 0.0)) "warm latency unchanged" (Compiler.latency_ms cold)
    (Compiler.latency_ms warm)

(* ------------------------------------------------------------------ *)
(* The eltwise unroll knob *)

let test_eltwise_uv_choice () =
  let device = Desc.hexagon698 and strategy = Packer.sda in
  Alcotest.(check int) "fixed resolves to itself" 3
    (Streams.unary_uv ~uv:(`Fixed 3) ~device ~strategy ~vectors:64 ());
  let costed = Streams.unary_uv ~uv:`Costed ~device ~strategy ~vectors:64 () in
  Alcotest.(check bool) "costed uv is a candidate" true
    (List.mem costed Streams.uv_candidates);
  let at uv = Streams.unary_cycles ~uv:(`Fixed uv) ~device ~strategy ~vectors:64 in
  List.iter
    (fun uv ->
      Alcotest.(check bool)
        (Printf.sprintf "costed beats uv=%d" uv)
        true
        (at costed <= at uv))
    Streams.uv_candidates;
  (* the costed binary choice also never loses to the pinned default *)
  let b uv =
    Streams.binary_cycles ~uv ~device ~strategy ~op:Gcd2_codegen.Eltwise.Badd ~vectors:64
  in
  Alcotest.(check bool) "costed binary <= pinned binary" true (b `Costed <= b (`Fixed 2))

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_space_feasible;
    QCheck_alcotest.to_alcotest qcheck_space_generates;
    QCheck_alcotest.to_alcotest qcheck_lower_bound_sound;
    QCheck_alcotest.to_alcotest qcheck_tuned_never_worse;
    Alcotest.test_case "verify path never loses to heuristic" `Quick
      test_tune_verified_winner;
    Alcotest.test_case "tune spec grammar" `Quick test_spec_grammar;
    Alcotest.test_case "tuned compile: identical outputs, counters" `Quick
      test_tuned_compile_outputs_identical;
    Alcotest.test_case "tuned fingerprint distinct" `Quick test_tuned_fingerprint_distinct;
    Alcotest.test_case "tuned artifact round-trips the store" `Quick
      test_tuned_artifact_round_trip;
    Alcotest.test_case "eltwise uv knob" `Quick test_eltwise_uv_choice;
  ]
