(* Tests for the hardened serving loop: request parsing (malformed
   lines are errors with line numbers, never silently dropped),
   config resolution, per-request isolation, deadlines, and the report
   excluding failed requests from its latency populations. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Compiler = Gcd2.Compiler
module Diag = Gcd2.Diag
module Serve = Gcd2_serve.Serve
open Gcd2_graph
module B = Graph.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_dir () =
  let f = Filename.temp_file "gcd2-serve-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let weight_q = Q.make (1.0 /. 64.0)

(* A deliberately small model: serving tests measure the loop, not the
   compiler, so the compile under test must be cheap. *)
let tiny_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 4; 4; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 4 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:4 in
  let _ = B.add b Op.Relu [ c1 ] in
  B.finish b

let resolve_tiny ?seq:_ = function
  | "tiny" -> tiny_cnn 1
  | "tiny2" -> tiny_cnn 2
  | m -> invalid_arg ("unknown test model " ^ m)

let policy ?cache_dir ?deadline_ms ?(retries = 2) () =
  { Serve.cache_dir; deadline_ms; retries; backoff_ms = 0.0; jobs = None }

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse ?(framework = "gcd2") ?(selection = "13") ?(device = "hexagon698") ?(line = 1)
    text =
  Serve.parse_line ~framework ~selection ~device ~line text

let test_parse_ok () =
  (match parse "WDSR-b" with
  | Ok (Some r) ->
    Alcotest.(check string) "model" "WDSR-b" r.Serve.model;
    Alcotest.(check string) "default framework" "gcd2" r.Serve.framework;
    Alcotest.(check string) "default selection" "13" r.Serve.selection
  | _ -> Alcotest.fail "single token did not parse");
  (match parse "  m \t tflite\tlocal  " with
  | Ok (Some r) ->
    Alcotest.(check string) "framework" "tflite" r.Serve.framework;
    Alcotest.(check string) "selection" "local" r.Serve.selection
  | _ -> Alcotest.fail "tab-separated line did not parse");
  check_bool "blank line skipped" true (parse "   " = Ok None);
  check_bool "whole-line comment skipped" true (parse "# a comment" = Ok None);
  check_bool "indented comment skipped" true (parse "   # indented" = Ok None)

let reason = function
  | Error (e : Serve.parse_error) -> e.Serve.reason
  | Ok _ -> Alcotest.fail "malformed line parsed"

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* `model #comment` must be an error, not framework="#comment" (the
   old loop served the mis-parse); likewise anything after SELECTION. *)
let test_parse_rejects () =
  check_bool "inline comment rejected" true
    (contains (reason (parse "WDSR-b #inline")) "inline comment");
  check_bool "trailing garbage rejected" true
    (contains (reason (parse "m fw sel junk")) "trailing garbage");
  check_bool "garbage tail named" true
    (contains (reason (parse "m fw sel junk more")) "junk more")

(* The positionless device= field: parsed anywhere on the line, rejected
   with the offending line when unknown or duplicated. *)
let test_parse_device_field () =
  (match parse "WDSR-b device=hexagon-g2" with
  | Ok (Some r) -> Alcotest.(check string) "device parsed" "hexagon-g2" r.Serve.device
  | _ -> Alcotest.fail "device= line did not parse");
  (match parse "WDSR-b device=hexagon-g2 tflite local" with
  | Ok (Some r) ->
    Alcotest.(check string) "device is positionless" "hexagon-g2" r.Serve.device;
    Alcotest.(check string) "framework still positional" "tflite" r.Serve.framework;
    Alcotest.(check string) "selection still positional" "local" r.Serve.selection
  | _ -> Alcotest.fail "mid-line device= did not parse");
  (match parse "WDSR-b" with
  | Ok (Some r) -> Alcotest.(check string) "default device" "hexagon698" r.Serve.device
  | _ -> Alcotest.fail "defaulted line did not parse");
  check_bool "unknown device rejected" true
    (contains (reason (parse "m device=hexagon9000")) "unknown device");
  check_bool "known names listed" true
    (contains (reason (parse "m device=hexagon9000")) "hexagon698");
  check_bool "duplicate device rejected" true
    (contains (reason (parse "m device=hexagon698 device=hexagon-g2")) "duplicate");
  (match parse ~line:7 "m device=nope" with
  | Error e -> check_int "error carries the line" 7 e.Serve.line
  | Ok _ -> Alcotest.fail "unknown device parsed")

(* The positionless seq= field: same contract as device= — parsed
   anywhere on the line, rejected with its line number when malformed,
   duplicated, or non-positive. *)
let test_parse_seq_field () =
  (match parse "tiny seq=100" with
  | Ok (Some r) ->
    check_bool "seq parsed" true (r.Serve.seq = Some 100)
  | _ -> Alcotest.fail "seq= line did not parse");
  (match parse "tiny seq=100 tflite local" with
  | Ok (Some r) ->
    check_bool "seq is positionless" true (r.Serve.seq = Some 100);
    Alcotest.(check string) "framework still positional" "tflite" r.Serve.framework;
    Alcotest.(check string) "selection still positional" "local" r.Serve.selection
  | _ -> Alcotest.fail "mid-line seq= did not parse");
  (match parse "tiny" with
  | Ok (Some r) -> check_bool "no seq by default" true (r.Serve.seq = None)
  | _ -> Alcotest.fail "defaulted line did not parse");
  check_bool "zero seq rejected" true
    (contains (reason (parse "m seq=0")) "invalid seq= field");
  check_bool "negative seq rejected" true
    (contains (reason (parse "m seq=-5")) "invalid seq= field");
  check_bool "non-integer seq rejected" true
    (contains (reason (parse "m seq=long")) "invalid seq= field");
  check_bool "duplicate seq rejected" true
    (contains (reason (parse "m seq=64 seq=128")) "duplicate");
  (match parse ~line:9 "m seq=0" with
  | Error e -> check_int "error carries the line" 9 e.Serve.line
  | Ok _ -> Alcotest.fail "non-positive seq parsed")

let test_seq_bucket () =
  check_int "floor is 16" 16 (Serve.seq_bucket 1);
  check_int "power of two is its own bucket" 16 (Serve.seq_bucket 16);
  check_int "just past a power rounds up" 32 (Serve.seq_bucket 17);
  check_int "100 buckets to 128" 128 (Serve.seq_bucket 100);
  check_int "256 buckets to 256" 256 (Serve.seq_bucket 256);
  check_int "257 buckets to 512" 512 (Serve.seq_bucket 257)

let test_parse_lines_numbers () =
  let requests, errors =
    Serve.parse_lines ~framework:"gcd2" ~selection:"13"
      [ "tiny"; "bad #x"; ""; "# comment"; "a b c d"; "tiny2 tflite" ]
  in
  check_int "two requests" 2 (List.length requests);
  check_int "two malformed lines" 2 (List.length errors);
  (match requests with
  | [ a; b ] ->
    check_int "first request line" 1 a.Serve.line;
    check_int "second request line" 6 b.Serve.line
  | _ -> Alcotest.fail "unexpected request list");
  (match errors with
  | [ e1; e2 ] ->
    check_int "first error line" 2 e1.Serve.line;
    check_int "second error line" 5 e2.Serve.line
  | _ -> Alcotest.fail "unexpected error list");
  let _, shifted =
    Serve.parse_lines ~framework:"gcd2" ~selection:"13" ~first_line:10 [ "x y z w" ]
  in
  check_int "first_line offsets the numbering" 10
    (match shifted with [ e ] -> e.Serve.line | _ -> -1)

(* ------------------------------------------------------------------ *)
(* Config resolution *)

let test_config_of () =
  (match Serve.config_of ~framework:"tflite" ~selection:"local" () with
  | Ok c -> check_bool "local selection" true (c.Compiler.selection = Compiler.Local)
  | Error d -> Alcotest.failf "tflite/local rejected: %a" Diag.pp d);
  (match Serve.config_of ~framework:"gcd2" ~selection:"4" () with
  | Ok c ->
    check_bool "partitioned selection" true
      (c.Compiler.selection = Compiler.Partitioned 4)
  | Error d -> Alcotest.failf "gcd2/4 rejected: %a" Diag.pp d);
  (match Serve.config_of ~device:"hexagon-g2" ~framework:"gcd2" ~selection:"13" () with
  | Ok c ->
    Alcotest.(check string)
      "device applied to the configuration" "hexagon-g2"
      (Compiler.device c).Gcd2_devices.Desc.name
  | Error d -> Alcotest.failf "gcd2 on hexagon-g2 rejected: %a" Diag.pp d);
  let rejected ?device ~framework ~selection () =
    match Serve.config_of ?device ~framework ~selection () with
    | Error d -> check_bool "invalid-request" true (d.Diag.code = Diag.Invalid_request)
    | Ok _ -> Alcotest.failf "%s/%s accepted" framework selection
  in
  rejected ~framework:"caffe" ~selection:"13" ();
  rejected ~framework:"gcd2" ~selection:"0" ();
  rejected ~framework:"gcd2" ~selection:"-3" ();
  rejected ~framework:"gcd2" ~selection:"banana" ();
  rejected ~device:"hexagon9000" ~framework:"gcd2" ~selection:"13" ()

(* ------------------------------------------------------------------ *)
(* Serving *)

(* Any per-request failure must come back as a typed outcome, never an
   exception out of the loop. *)
let test_unknown_model_is_failed_outcome () =
  let r =
    Serve.serve_one ~resolve:resolve_tiny (policy ()) ~cold:true
      (Serve.request "no-such-model")
  in
  check_bool "outcome is error" true (r.Serve.outcome = Serve.Failed);
  (match r.Serve.diag with
  | Some d ->
    check_bool "invalid-request" true (d.Diag.code = Diag.Invalid_request);
    Alcotest.(check (option string)) "model stamped" (Some "no-such-model") d.Diag.model
  | None -> Alcotest.fail "failed outcome has no diagnostic");
  check_bool "no compile attached" true (r.Serve.compiled = None)

let test_batch_cold_warm_and_cache () =
  let dir = temp_dir () in
  let reqs = [ Serve.request "tiny"; Serve.request "tiny"; Serve.request "tiny2" ] in
  let results, report =
    Serve.run_batch ~resolve:resolve_tiny (policy ~cache_dir:dir ()) reqs
  in
  (match results with
  | [ a; b; c ] ->
    check_bool "first tiny is cold" true a.Serve.cold;
    check_bool "repeat tiny is warm" false b.Serve.cold;
    check_bool "repeat tiny hits the cache" true b.Serve.hit;
    check_bool "tiny2 is cold" true c.Serve.cold;
    (match (a.Serve.compiled, b.Serve.compiled) with
    | Some ca, Some cb ->
      Alcotest.(check (array int))
        "hit serves the stored assignment" ca.Compiler.assignment
        cb.Compiler.assignment;
      Alcotest.(check (float 0.0))
        "hit serves the stored latency" (Compiler.latency_ms ca)
        (Compiler.latency_ms cb)
    | _ -> Alcotest.fail "served request lost its compile")
  | _ -> Alcotest.fail "unexpected result list");
  check_int "all ok" 3 report.Serve.ok;
  check_int "no errors" 0 report.Serve.errors;
  check_int "one hit" 1 report.Serve.hits;
  check_int "two cold latencies" 2 (List.length report.Serve.cold_ms);
  check_int "one warm latency" 1 (List.length report.Serve.warm_ms)

(* A sequence-parametric test model: the graph's shape depends only on
   the bucket, like the zoo's transformer builders. *)
let tiny_seq bucket =
  let rng = Rng.create 11 in
  let b = B.create () in
  let x = B.input b [| 1; bucket; 4; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 4 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:4 in
  let _ = B.add b Op.Relu [ c1 ] in
  B.finish b

let resolve_seq ?seq = function
  | "seqy" ->
    tiny_seq (match seq with Some s -> Serve.seq_bucket s | None -> 16)
  | m -> invalid_arg ("unknown test model " ^ m)

(* The tentpole cache property: a never-exactly-compiled sequence length
   is served warm from the artifact compiled for another length in the
   same bucket; a length in a different bucket compiles cold. *)
let test_batch_same_bucket_is_warm () =
  let dir = temp_dir () in
  let reqs =
    [
      Serve.request ~seq:100 "seqy";
      Serve.request ~seq:120 "seqy";
      Serve.request ~seq:200 "seqy";
    ]
  in
  let results, report =
    Serve.run_batch ~resolve:resolve_seq (policy ~cache_dir:dir ()) reqs
  in
  (match results with
  | [ a; b; c ] ->
    check_bool "seq=100 is cold" true a.Serve.cold;
    check_bool "seq=120 shares seq=100's bucket: warm" false b.Serve.cold;
    check_bool "seq=120 hits the cache" true b.Serve.hit;
    check_bool "seq=200 is another bucket: cold" true c.Serve.cold;
    (match (a.Serve.compiled, b.Serve.compiled) with
    | Some ca, Some cb ->
      Alcotest.(check (array int))
        "bucket hit serves the stored assignment" ca.Compiler.assignment
        cb.Compiler.assignment
    | _ -> Alcotest.fail "served request lost its compile")
  | _ -> Alcotest.fail "unexpected result list");
  check_int "all ok" 3 report.Serve.ok;
  check_int "one bucket hit" 1 report.Serve.hits;
  check_int "two cold latencies" 2 (List.length report.Serve.cold_ms)

(* An already-expired deadline is a [timeout] outcome: permanent, not
   retried, and excluded from the latency populations. *)
let test_deadline_timeout () =
  let r =
    Serve.serve_one ~resolve:resolve_tiny
      (policy ~deadline_ms:0.0 ~retries:5 ())
      ~cold:true (Serve.request "tiny")
  in
  check_bool "outcome is timeout" true (r.Serve.outcome = Serve.Timed_out);
  check_int "deadline failures are not retried" 1 r.Serve.attempts;
  match r.Serve.diag with
  | Some d -> check_bool "deadline-exceeded" true (d.Diag.code = Diag.Deadline_exceeded)
  | None -> Alcotest.fail "timeout without diagnostic"

let test_report_excludes_failures () =
  let reqs =
    [ Serve.request "tiny"; Serve.request "absent"; Serve.request "tiny" ]
  in
  let _, report = Serve.run_batch ~resolve:resolve_tiny (policy ()) reqs in
  check_int "three requests" 3 report.Serve.requests;
  check_int "two served" 2 report.Serve.ok;
  check_int "one error" 1 report.Serve.errors;
  check_int "failed request not in the cold population" 1
    (List.length report.Serve.cold_ms);
  check_int "failed request not in the warm population" 1
    (List.length report.Serve.warm_ms)

let tests =
  [
    Alcotest.test_case "parse: well-formed lines" `Quick test_parse_ok;
    Alcotest.test_case "parse: malformed lines are errors" `Quick test_parse_rejects;
    Alcotest.test_case "parse: device= field" `Quick test_parse_device_field;
    Alcotest.test_case "parse: seq= field" `Quick test_parse_seq_field;
    Alcotest.test_case "seq buckets" `Quick test_seq_bucket;
    Alcotest.test_case "parse: errors carry line numbers" `Quick test_parse_lines_numbers;
    Alcotest.test_case "config resolution" `Quick test_config_of;
    Alcotest.test_case "unknown model is a typed outcome" `Quick
      test_unknown_model_is_failed_outcome;
    Alcotest.test_case "batch: cold/warm and cache hits" `Quick
      test_batch_cold_warm_and_cache;
    Alcotest.test_case "batch: same bucket is a warm hit" `Quick
      test_batch_same_bucket_is_warm;
    Alcotest.test_case "expired deadline is a timeout" `Quick test_deadline_timeout;
    Alcotest.test_case "report excludes failed requests" `Quick
      test_report_excludes_failures;
  ]
