(* Chaos suite: deterministic fault injection against the serving loop
   and the layers under it.  The invariant everything here asserts is
   the robustness contract of the PR: under any fault spec the service
   never crashes (every failure is a typed outcome), never returns
   wrong artifacts (every served compile carries exactly the fault-free
   bits), and always converges back to fault-free behaviour once the
   faults stop.

   Every test installs its spec explicitly with [Fault.with_spec], so
   the suite is deterministic under `dune runtest`; `make chaos` (and
   CI) additionally runs it with a fixed GCD2_FAULTS spec, which the
   env-spec test picks up to serve a batch under the ambient faults. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Trace = Gcd2_util.Trace
module Fault = Gcd2_util.Fault
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime
module Diag = Gcd2.Diag
module Artifact = Gcd2_store.Artifact
module Serve = Gcd2_serve.Serve
open Gcd2_graph
module B = Graph.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_dir () =
  let f = Filename.temp_file "gcd2-chaos-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let spec = Fault.parse_exn
let weight_q = Q.make (1.0 /. 64.0)

let tiny_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 4; 4; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 4 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:4 in
  let _ = B.add b Op.Relu [ c1 ] in
  B.finish b

(* Bigger sibling (convs, residual add, matmul head) for the vm test:
   it is known to lower nodes to the SIMD unit, so [Machine.run]
   actually executes (and can fault). *)
let weighted_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 8 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let w2 = T.random ~quant:weight_q rng [| 1; 1; 8; 8 |] in
  let c2 = B.conv2d ~weight:w2 b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:8 in
  let s = B.add b Op.Add [ r1; c2 ] in
  let flat = B.add b (Op.Reshape { shape = [| 64; 8 |] }) [ s ] in
  let w3 = T.random ~quant:weight_q rng [| 8; 10 |] in
  let _ = B.matmul ~weight:w3 b flat ~cout:10 in
  B.finish b

let resolve ?seq:_ = function
  | "tiny" -> tiny_cnn 1
  | "tiny2" -> tiny_cnn 2
  | m -> invalid_arg ("unknown test model " ^ m)

(* Fault-free reference compiles, computed once: the bits every faulted
   serve must still produce. *)
let baseline =
  let tbl = Hashtbl.create 4 in
  fun model ->
    match Hashtbl.find_opt tbl model with
    | Some c -> c
    | None ->
      let c = Fault.with_disabled (fun () -> Compiler.compile (resolve model)) in
      Hashtbl.add tbl model c;
      c

let check_bits name model (c : Compiler.compiled) =
  let base = baseline model in
  Alcotest.(check (array int))
    (name ^ ": assignment matches the fault-free compile")
    base.Compiler.assignment c.Compiler.assignment;
  Alcotest.(check (float 0.0))
    (name ^ ": latency matches the fault-free compile")
    (Compiler.latency_ms base) (Compiler.latency_ms c);
  Alcotest.(check (float 0.0))
    (name ^ ": cycle count matches the fault-free compile")
    base.Compiler.report.Compiler.Graphcost.cycles
    c.Compiler.report.Compiler.Graphcost.cycles

let policy ?cache_dir ?(retries = 3) ?jobs () =
  { Serve.cache_dir; deadline_ms = None; retries; backoff_ms = 0.0; jobs }

let no_tmp_debris dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        Alcotest.failf "temp-file debris %s left in the cache directory" f)
    (Sys.readdir dir)

(* ------------------------------------------------------------------ *)
(* One regression per injection point *)

(* cache-read: a cache that always fails to read costs retries and then
   the uncached-fallback degradation — never the request. *)
let test_cache_read_degrades () =
  let dir = temp_dir () in
  Fault.with_spec (spec "seed=1,cache-read=1") @@ fun () ->
  let r =
    Serve.serve_one ~resolve (policy ~cache_dir:dir ()) ~cold:true
      (Serve.request "tiny")
  in
  check_bool "served via degradation" true (r.Serve.outcome = Serve.Degraded);
  check_bool "uncached fallback used" true r.Serve.uncached;
  check_int "initial try + 3 retries + 1 uncached attempt" 5 r.Serve.attempts;
  match r.Serve.compiled with
  | Some c -> check_bits "cache-read" "tiny" c
  | None -> Alcotest.fail "degraded request lost its compile"

(* cache-write: a store that cannot persist entries degrades to
   uncached serving, and the failing saves leave no temp-file debris. *)
let test_cache_write_degrades () =
  let dir = temp_dir () in
  Fault.with_spec (spec "seed=2,cache-write=1") @@ fun () ->
  let r =
    Serve.serve_one ~resolve (policy ~cache_dir:dir ()) ~cold:true
      (Serve.request "tiny")
  in
  check_bool "served via degradation" true (r.Serve.outcome = Serve.Degraded);
  check_bool "uncached fallback used" true r.Serve.uncached;
  no_tmp_debris dir;
  match r.Serve.compiled with
  | Some c -> check_bits "cache-write" "tiny" c
  | None -> Alcotest.fail "degraded request lost its compile"

(* artifact-decode: a bit-flipped entry is quarantined, the recompile
   self-heals the cache, and the served bits are exactly fault-free. *)
let test_artifact_decode_quarantines () =
  let dir = temp_dir () in
  let cold =
    Fault.with_disabled (fun () -> Compiler.compile ~cache_dir:dir (tiny_cnn 1))
  in
  check_bool "primer compile is cold" false (Compiler.from_cache cold);
  let r =
    Fault.with_spec (spec "seed=3,artifact-decode=1") @@ fun () ->
    Serve.serve_one ~resolve (policy ~cache_dir:dir ()) ~cold:false
      (Serve.request "tiny")
  in
  check_bool "served via degradation" true (r.Serve.outcome = Serve.Degraded);
  check_bool "the corrupt entry was quarantined" true (r.Serve.quarantined >= 1);
  check_bool "a quarantined hit is a miss" false r.Serve.hit;
  (match r.Serve.compiled with
  | Some c -> check_bits "artifact-decode" "tiny" c
  | None -> Alcotest.fail "degraded request lost its compile");
  check_bool "quarantined bytes kept for post-mortem" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".bad")
       (Sys.readdir dir));
  (* faults over (suppressed, so an ambient `make chaos` spec cannot
     re-poison the check): the healed entry serves a clean hit *)
  let r2 =
    Fault.with_disabled @@ fun () ->
    Serve.serve_one ~resolve (policy ~cache_dir:dir ()) ~cold:false
      (Serve.request "tiny")
  in
  check_bool "healed entry hits" true r2.Serve.hit;
  check_bool "clean outcome after the faults" true (r2.Serve.outcome = Serve.Ok_)

(* vm-run: an injected execution fault surfaces as a typed [vm-fault]
   diagnostic, and execution is untouched once the faults stop. *)
let test_vm_fault_is_typed () =
  let c = Fault.with_disabled (fun () -> Compiler.compile (weighted_cnn 1)) in
  let input =
    T.random (Rng.create 42) (Graph.node c.Compiler.graph 0).Graph.out_shape
  in
  let inputs = [ (0, input) ] in
  let reference = Fault.with_disabled (fun () -> Runtime.run c ~inputs) in
  Fault.with_spec (spec "seed=4,vm-run=1") @@ fun () ->
  (match Runtime.run c ~inputs with
  | _ -> Alcotest.fail "vm-run=1 did not fault"
  | exception exn ->
    let d = Diag.of_exn ~phase:"run" exn in
    check_bool "classified as vm-fault" true (d.Diag.code = Diag.Vm_fault);
    check_bool "injected faults are retryable" true d.Diag.retryable);
  (* with injection suppressed the same machine runs clean *)
  let again = Fault.with_disabled (fun () -> Runtime.run c ~inputs) in
  check_int "same node count" (Array.length reference) (Array.length again);
  Array.iteri
    (fun i t ->
      if not (T.equal_data t again.(i)) then
        Alcotest.failf "node %d: output changed across a vm fault" i)
    reference

(* memo-lookup: lost memo entries recompute; results must be
   bit-identical, only the memo-faults counter may move. *)
let test_memo_faults_change_nothing () =
  Fault.with_spec (spec "seed=5,memo-lookup=0.5") @@ fun () ->
  let c1 = Compiler.compile (tiny_cnn 1) in
  let c2 = Compiler.compile (tiny_cnn 1) in
  check_bits "memo-lookup first compile" "tiny" c1;
  check_bits "memo-lookup second compile" "tiny" c2;
  check_bool "forced misses were actually injected" true
    (Fault.injections "memo-lookup" > 0);
  check_bool "forced misses are counted" true
    (Trace.counter c1.Compiler.trace "memo-faults"
     + Trace.counter c2.Compiler.trace "memo-faults"
    > 0)

(* pool-worker: a crashed worker domain fails the compile with a typed,
   retryable [worker-failed]; under a flaky (not certain) crash rate the
   serve loop's retries converge to the fault-free bits. *)
let test_pool_worker_crash_and_recovery () =
  Fault.with_spec (spec "seed=6,pool-worker=1") (fun () ->
      match Compiler.compile_result ~jobs:2 (tiny_cnn 1) with
      | Ok _ -> Alcotest.fail "pool-worker=1 did not fail the compile"
      | Error d ->
        check_bool "classified as worker-failed" true (d.Diag.code = Diag.Worker_failed);
        check_bool "worker crashes are retryable" true d.Diag.retryable);
  Fault.with_spec (spec "seed=6,pool-worker=0.4") @@ fun () ->
  let r =
    Serve.serve_one ~resolve (policy ~retries:10 ~jobs:2 ()) ~cold:true
      (Serve.request "tiny")
  in
  check_bool "retries converge"
    true
    (r.Serve.outcome = Serve.Ok_ || r.Serve.outcome = Serve.Retried);
  match r.Serve.compiled with
  | Some c -> check_bits "pool-worker" "tiny" c
  | None -> Alcotest.fail "recovered request lost its compile"

(* ------------------------------------------------------------------ *)
(* The chaos property *)

(* Serve a batch (cold + warm requests over two models, through a fresh
   cache) under whatever spec is installed, and assert the full
   contract: no escape of a raw exception (run_batch returning at all),
   typed outcomes that add up, exact fault-free bits on every served
   compile, no temp debris — then re-serve with injection suppressed
   and require total convergence. *)
let serve_invariant name =
  let dir = temp_dir () in
  let reqs =
    [
      Serve.request "tiny";
      Serve.request "tiny2";
      Serve.request "tiny";
      Serve.request "tiny2";
    ]
  in
  let p = policy ~cache_dir:dir ~retries:3 () in
  let results, report = Serve.run_batch ~resolve p reqs in
  check_int (name ^ ": every request has an outcome") 4 report.Serve.requests;
  check_int
    (name ^ ": outcomes partition the batch")
    4
    (report.Serve.ok + report.Serve.errors + report.Serve.timeouts);
  List.iter
    (fun (r : Serve.served) ->
      match (r.Serve.compiled, r.Serve.diag) with
      | Some c, None -> check_bits name r.Serve.request.Serve.model c
      | None, Some _ -> ()
      | Some _, Some _ | None, None ->
        Alcotest.failf "%s: outcome with inconsistent compile/diagnostic" name)
    results;
  no_tmp_debris dir;
  (* convergence: the same batch with injection suppressed is all-ok *)
  Fault.with_disabled @@ fun () ->
  let results2, report2 = Serve.run_batch ~resolve p reqs in
  check_int (name ^ ": fault-free re-serve has no errors") 0 report2.Serve.errors;
  check_int (name ^ ": fault-free re-serve has no timeouts") 0 report2.Serve.timeouts;
  List.iter
    (fun (r : Serve.served) ->
      match r.Serve.compiled with
      | Some c -> check_bits (name ^ " (converged)") r.Serve.request.Serve.model c
      | None -> Alcotest.failf "%s: fault-free re-serve failed a request" name)
    results2

let qcheck_chaos =
  QCheck.Test.make ~name:"service survives random fault specs and converges" ~count:8
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let s =
        Fmt.str
          "seed=%d,cache-read=0.3,cache-write=0.3,artifact-decode=0.5,memo-lookup=0.3"
          seed
      in
      Fault.with_spec (spec s) (fun () -> serve_invariant (Fault.to_string (spec s)));
      true)

(* `make chaos` runs the suite with a fixed GCD2_FAULTS spec; this test
   serves a batch under that ambient spec (the other tests override it
   locally).  A plain `dune runtest` has no spec installed, which makes
   this a fault-free run of the same invariant. *)
let test_env_spec () =
  (match Sys.getenv_opt "GCD2_FAULTS" with
  | None | Some "" -> ()
  | Some s -> (
    match Fault.parse s with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "GCD2_FAULTS does not parse: %s" e));
  serve_invariant "env spec"

(* The same contract on a real zoo model through the default (Zoo)
   resolver: WDSR-b — the smallest entry — served under combined cache
   faults still yields exactly the fault-free bits, and once the faults
   stop the healed cache serves a clean hit. *)
let test_zoo_model_chaos () =
  let dir = temp_dir () in
  let base =
    Fault.with_disabled (fun () ->
        Compiler.compile ((Gcd2_models.Zoo.find "WDSR-b").Gcd2_models.Zoo.build ()))
  in
  let p = policy ~cache_dir:dir ~retries:3 () in
  Fault.with_spec (spec "seed=11,cache-read=0.5,artifact-decode=0.5,memo-lookup=0.3")
    (fun () ->
      List.iter
        (fun cold ->
          let r = Serve.serve_one p ~cold (Serve.request "WDSR-b") in
          check_bool "zoo request served" true
            (match r.Serve.outcome with
            | Serve.Ok_ | Serve.Retried | Serve.Degraded -> true
            | Serve.Timed_out | Serve.Failed -> false);
          match r.Serve.compiled with
          | Some c ->
            Alcotest.(check (array int)) "zoo assignment matches fault-free"
              base.Compiler.assignment c.Compiler.assignment;
            Alcotest.(check (float 0.0)) "zoo latency matches fault-free"
              (Compiler.latency_ms base) (Compiler.latency_ms c)
          | None -> Alcotest.fail "served zoo request lost its compile")
        [ true; false ]);
  let r =
    Fault.with_disabled (fun () -> Serve.serve_one p ~cold:false (Serve.request "WDSR-b"))
  in
  check_bool "fault-free zoo serve hits the healed cache" true r.Serve.hit;
  check_bool "fault-free zoo serve is clean" true (r.Serve.outcome = Serve.Ok_)

(* ------------------------------------------------------------------ *)
(* The daemon under faults *)

module Daemon = Gcd2_daemon.Daemon
module Dclient = Gcd2_daemon.Client
module Protocol = Gcd2_daemon.Protocol

(* Faults injected inside daemon worker domains must surface as typed
   per-request outcomes — never crash the server, and never leak one
   request's artifact into another's response.  Cross-wiring is
   detectable by the latency estimate: the two models here compile to
   measurably different estimates, and every successful response must
   carry exactly its own model's fault-free estimate. *)
let test_daemon_worker_chaos () =
  let dir = temp_dir () in
  let resolve_d ?seq:_ = function
    | "tiny" -> tiny_cnn 1
    | "wide" -> weighted_cnn 5
    | m -> invalid_arg ("unknown test model " ^ m)
  in
  let base_lat model =
    (* the wire format carries lat with 4 decimals; compare at wire
       precision *)
    Fault.with_disabled (fun () ->
        float_of_string
          (Printf.sprintf "%.4f"
             (Compiler.latency_ms (Compiler.compile (resolve_d model)))))
  in
  let expect = [ ("tiny", base_lat "tiny"); ("wide", base_lat "wide") ] in
  check_bool "models are distinguishable by latency" true
    (List.assoc "tiny" expect <> List.assoc "wide" expect);
  let cfg =
    {
      (Daemon.default_config (Daemon.Unix_sock (Filename.concat dir "d.sock"))) with
      Daemon.workers = 2;
      resolve = Some resolve_d;
      policy = policy ~cache_dir:(Filename.concat dir "cache") ~jobs:1 ();
    }
  in
  let d = Daemon.start cfg in
  Fun.protect ~finally:(fun () -> ignore (Daemon.stop d)) @@ fun () ->
  let addr = Daemon.address d in
  let reqs = [ "tiny"; "wide"; "tiny"; "wide"; "tiny"; "wide" ] in
  let check_responses label rs =
    check_int (label ^ ": every request answered") (List.length reqs)
      (List.length rs);
    List.iter
      (function
        | Error e -> Alcotest.failf "%s: transport error under faults: %s" label e
        | Ok (r : Protocol.response) -> (
          check_bool
            (label ^ ": outcome is typed (server alive): " ^ r.Protocol.outcome)
            true
            (List.mem r.Protocol.outcome
               [ "ok"; "retried"; "degraded"; "timeout"; "error" ]);
          match (r.Protocol.outcome, r.Protocol.lat) with
          | ("ok" | "retried" | "degraded"), Some lat ->
            Alcotest.(check (float 0.0))
              (label ^ ": response carries its own model's artifact")
              (List.assoc r.Protocol.model expect)
              lat
          | ("ok" | "retried" | "degraded"), None ->
            Alcotest.fail (label ^ ": successful response lost its latency")
          | _ -> ()))
      rs
  in
  Fault.with_spec
    (spec "seed=7,cache-read=0.4,cache-write=0.3,artifact-decode=0.4,memo-lookup=0.3")
    (fun () ->
      let clients =
        Array.init 3 (fun _ -> Domain.spawn (fun () -> Dclient.batch addr reqs))
      in
      Array.iteri
        (fun i c -> check_responses (Printf.sprintf "client %d" i) (Domain.join c))
        clients);
  (* once the faults stop, the same daemon serves clean warm hits *)
  match Dclient.batch addr [ "tiny" ] with
  | [ Ok r ] ->
    Alcotest.(check string) "fault-free serve is clean" "ok" r.Protocol.outcome;
    Alcotest.(check (float 0.0))
      "fault-free latency matches"
      (List.assoc "tiny" expect)
      (match r.Protocol.lat with Some l -> l | None -> -1.0)
  | _ -> Alcotest.fail "fault-free request after chaos did not round-trip"

(* ------------------------------------------------------------------ *)
(* Spec plumbing *)

let test_spec_parsing () =
  (match Fault.parse "seed=9,cache-read=0.25 artifact-decode=1" with
  | Ok s ->
    Alcotest.(check string)
      "round-trips" "seed=9,cache-read=0.25,artifact-decode=1" (Fault.to_string s)
  | Error e -> Alcotest.failf "valid spec rejected: %s" e);
  let rejects s =
    match Fault.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "bad spec %S accepted" s
  in
  rejects "bogus";
  rejects "no-such-point=1";
  rejects "cache-read=1.5";
  rejects "seed=abc";
  check_bool "unknown point names are rejected at the call site" true
    (match Fault.hit "no-such-point" with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* PR 10: the lease tier and the janitor under faults *)

module Janitor = Gcd2_store.Janitor

(* With every lease operation faulting, the cross-process flight tier
   must degrade to plain local compiles: every request still serves the
   fault-free bits, and no lease debris is left in the cache dir. *)
let test_flight_lease_fault_degrades () =
  let dir = temp_dir () in
  let cache = Filename.concat dir "cache" in
  let base =
    Fault.with_disabled (fun () ->
        float_of_string
          (Printf.sprintf "%.4f" (Compiler.latency_ms (Compiler.compile (tiny_cnn 1)))))
  in
  let cfg =
    {
      (Daemon.default_config (Daemon.Unix_sock (Filename.concat dir "d.sock"))) with
      Daemon.workers = 2;
      resolve = Some resolve;
      policy = policy ~cache_dir:cache ~jobs:1 ();
    }
  in
  let d = Daemon.start cfg in
  Fun.protect ~finally:(fun () -> ignore (Daemon.stop d)) @@ fun () ->
  let addr = Daemon.address d in
  Fault.with_spec (spec "seed=21,flight-lease=1") (fun () ->
      match Dclient.batch addr [ "tiny"; "tiny" ] with
      | [ Ok a; Ok b ] ->
        Alcotest.(check string) "cold serve ok under lease faults" "ok"
          a.Protocol.outcome;
        Alcotest.(check string) "warm serve ok under lease faults" "ok"
          b.Protocol.outcome;
        Alcotest.(check (float 0.0))
          "lease-fault serve carries fault-free bits" base
          (match a.Protocol.lat with Some l -> l | None -> -1.0)
      | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  check_bool "no lease debris left behind" true
    (Sys.readdir cache |> Array.to_list
    |> List.for_all (fun f -> not (Filename.check_suffix f ".lease")))

(* A sweep whose every unlink faults must count errors and remove
   nothing — and the next fault-free sweep converges the directory. *)
let test_janitor_unlink_fault_tolerated () =
  let dir = temp_dir () in
  let plant name =
    let p = Filename.concat dir name in
    Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc "debris");
    let old = Unix.gettimeofday () -. 1000.0 in
    Unix.utimes p old old
  in
  plant "torn-write.tmp";
  plant "poisoned.gcd2art.bad";
  let cfg = { Janitor.default with Janitor.tmp_max_age_s = 60.0; bad_max_age_s = 60.0 } in
  Fault.with_spec (spec "seed=22,janitor-unlink=1") (fun () ->
      let r = Janitor.sweep ~dir cfg in
      check_int "faulted sweep removed nothing" 0
        (r.Janitor.tmp_removed + r.Janitor.bad_removed);
      check_int "every failed unlink counted" 2 r.Janitor.errors);
  check_int "debris survives the faulted sweep" 2 (Array.length (Sys.readdir dir));
  (* with_disabled, not "no spec": under `make chaos` the ambient env
     spec would otherwise keep faulting this sweep's unlinks *)
  let r = Fault.with_disabled (fun () -> Janitor.sweep ~dir cfg) in
  check_int "fault-free sweep converges: tmp" 1 r.Janitor.tmp_removed;
  check_int "fault-free sweep converges: bad" 1 r.Janitor.bad_removed;
  check_int "no errors without faults" 0 r.Janitor.errors;
  check_int "directory clean" 0 (Array.length (Sys.readdir dir))

let tests =
  [
    Alcotest.test_case "fault specs parse and validate" `Quick test_spec_parsing;
    Alcotest.test_case "cache-read faults degrade to uncached" `Quick
      test_cache_read_degrades;
    Alcotest.test_case "cache-write faults degrade, no debris" `Quick
      test_cache_write_degrades;
    Alcotest.test_case "artifact-decode faults quarantine and heal" `Quick
      test_artifact_decode_quarantines;
    Alcotest.test_case "vm faults are typed and transient" `Quick test_vm_fault_is_typed;
    Alcotest.test_case "memo faults never change results" `Quick
      test_memo_faults_change_nothing;
    Alcotest.test_case "worker crashes fail typed and retry to recovery" `Quick
      test_pool_worker_crash_and_recovery;
    Alcotest.test_case "GCD2_FAULTS-driven batch" `Quick test_env_spec;
    Alcotest.test_case "zoo model under combined faults" `Quick test_zoo_model_chaos;
    Alcotest.test_case "daemon workers absorb faults" `Quick
      test_daemon_worker_chaos;
    Alcotest.test_case "lease faults degrade to local compiles" `Quick
      test_flight_lease_fault_degrades;
    Alcotest.test_case "janitor tolerates unlink faults and converges" `Quick
      test_janitor_unlink_fault_tolerated;
    QCheck_alcotest.to_alcotest qcheck_chaos;
  ]
