(* Tests for the analytic device models (Tables I and V, Figure 13). *)

module D = Gcd2_devices.Device.Context

let test_power_monotone_in_utilization () =
  let p1 = D.dsp_power_w ~utilization:0.5 in
  let p2 = D.dsp_power_w ~utilization:0.9 in
  Alcotest.(check bool) "higher utilization draws more" true (p2 > p1);
  Alcotest.(check bool) "plausible range" true (p1 > 1.0 && p2 < 3.6)

let test_dsp_beats_gpu_on_efficiency () =
  (* Figure 13: every DSP solution is more energy-efficient than the GPU. *)
  let gmacs = 4.1 in
  let dsp_latency = 7.5 in
  let fpw_dsp = D.dsp_fpw ~latency_ms:dsp_latency ~utilization:0.85 in
  let gpu_latency = D.xpu_latency_ms D.gpu ~gmacs ~ops:140 in
  let fpw_gpu = 1000.0 /. gpu_latency /. D.gpu_power_w ~gmacs in
  Alcotest.(check bool) "dsp frames/watt higher" true (fpw_dsp > fpw_gpu)

let test_cpu_slower_than_gpu () =
  List.iter
    (fun (gmacs, ops) ->
      let c = D.xpu_latency_ms D.cpu ~gmacs ~ops in
      let g = D.xpu_latency_ms D.gpu ~gmacs ~ops in
      Alcotest.(check bool) (Fmt.str "cpu > gpu at %.1fG" gmacs) true (c > g))
    [ (0.4, 254); (4.1, 140); (8.8, 150); (186.0, 84) ]

let test_latency_grows_with_macs () =
  let l1 = D.xpu_latency_ms D.cpu ~gmacs:1.0 ~ops:100 in
  let l2 = D.xpu_latency_ms D.cpu ~gmacs:10.0 ~ops:100 in
  Alcotest.(check bool) "monotone" true (l2 > l1)

let test_table5_orderings () =
  (* Table V: Jetson int8 has the highest FPS; GCD2's DSP has the best
     frames-per-Watt. *)
  let gcd2_fps = D.dsp_fps ~latency_ms:7.5 in
  let gcd2_fpw = D.dsp_fpw ~latency_ms:7.5 ~utilization:0.85 in
  Alcotest.(check bool) "jetson int8 fastest" true (D.jetson_int8.D.fps > gcd2_fps);
  Alcotest.(check bool) "gcd2 most efficient" true
    (gcd2_fpw > D.fpw D.jetson_int8
    && gcd2_fpw > D.fpw D.jetson_fp16
    && gcd2_fpw > D.fpw D.edgetpu)

let test_gpu_power_range () =
  Alcotest.(check bool) "small model ~2.9W" true (D.gpu_power_w ~gmacs:0.4 < 3.0);
  Alcotest.(check bool) "huge model ~3.8W" true (D.gpu_power_w ~gmacs:186.0 > 3.5)

let test_energy () =
  Alcotest.(check (float 1e-9)) "mJ = ms * W" 26.0 (D.energy_mj ~latency_ms:10.0 ~power_w:2.6)

let tests =
  [
    Alcotest.test_case "dsp power model" `Quick test_power_monotone_in_utilization;
    Alcotest.test_case "dsp beats gpu on frames/watt" `Quick test_dsp_beats_gpu_on_efficiency;
    Alcotest.test_case "cpu slower than gpu" `Quick test_cpu_slower_than_gpu;
    Alcotest.test_case "latency grows with macs" `Quick test_latency_grows_with_macs;
    Alcotest.test_case "table V orderings" `Quick test_table5_orderings;
    Alcotest.test_case "gpu power range" `Quick test_gpu_power_range;
    Alcotest.test_case "energy accounting" `Quick test_energy;
  ]
