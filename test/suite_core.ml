(* Tests for the end-to-end compiler and the mixed VM/host runtime: the
   compiled model executed on the simulated DSP must produce exactly the
   reference interpreter's results, for every selection strategy. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Interp = Gcd2_kernels.Interp
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime
open Gcd2_graph
module B = Graph.Builder

let weight_q = Q.make (1.0 /. 64.0)

(* A small residual CNN with real weights. *)
let weighted_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 8 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let w2 = T.random ~quant:weight_q rng [| 1; 1; 8; 8 |] in
  let c2 = B.conv2d ~weight:w2 b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:8 in
  let s = B.add b Op.Add [ r1; c2 ] in
  let t = B.add b Op.Tanh [ s ] in
  let flat = B.add b (Op.Reshape { shape = [| 64; 8 |] }) [ t ] in
  let w3 = T.random ~quant:weight_q rng [| 8; 10 |] in
  let m = B.matmul ~weight:w3 b flat ~cout:10 in
  let _ = B.add b Op.Softmax [ m ] in
  B.finish b

(* A tiny transformer-flavoured graph: matmuls, gelu, elementwise mul. *)
let weighted_mlp seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 16; 12 |] in
  let w1 = T.random ~quant:weight_q rng [| 12; 24 |] in
  let h = B.matmul ~weight:w1 b x ~cout:24 in
  let h = B.add b Op.Gelu [ h ] in
  let w2 = T.random ~quant:weight_q rng [| 24; 12 |] in
  let h = B.matmul ~weight:w2 b h ~cout:12 in
  let s = B.add b Op.Add [ x; h ] in
  let p = B.add b (Op.Pow 2.0) [ s ] in
  let _ = B.add b Op.Mul [ s; p ] in
  B.finish b

(* A small multi-head attention block with real weights: batched matmuls
   (both transposed and plain), softmax, layer norm, and broadcast
   elementwise against scalar constants — the transformer operators the
   DSP path covers. *)
let weighted_attention seed =
  let rng = Rng.create seed in
  let seq = 16 and heads = 2 and dh = 6 in
  let dim = heads * dh in
  let b = B.create () in
  let x = B.input b [| seq; dim |] in
  let proj v = B.matmul ~weight:(T.random ~quant:weight_q rng [| dim; dim |]) b v ~cout:dim in
  let split t =
    let t = B.add b (Op.Reshape { shape = [| seq; heads; dh |] }) [ t ] in
    B.add b (Op.Transpose { perm = [| 1; 0; 2 |] }) [ t ]
  in
  let qh = split (proj x) and kh = split (proj x) and vh = split (proj x) in
  let scores = B.add b (Op.Batch_matmul { transpose_b = true }) [ qh; kh ] in
  let scale =
    B.constant ~weight:(T.of_array ~quant:(Q.make (1.0 /. 8.0)) [| 1 |] [| 3 |]) b [| 1 |]
  in
  let scores = B.add b Op.Mul [ scores; scale ] in
  let probs = B.add b Op.Softmax [ scores ] in
  let ctx = B.add b (Op.Batch_matmul { transpose_b = false }) [ probs; vh ] in
  let ctx = B.add b (Op.Transpose { perm = [| 1; 0; 2 |] }) [ ctx ] in
  let ctx = B.add b (Op.Reshape { shape = [| seq; dim |] }) [ ctx ] in
  let bias =
    B.constant
      ~weight:(T.of_array ~quant:(Q.make (1.0 /. 16.0)) [| 1 |] [| 5 |])
      b [| 1 |]
  in
  let h = B.add b Op.Add [ proj ctx; bias ] in
  let s = B.add b Op.Add [ x; h ] in
  let _ = B.add b Op.Layer_norm [ s ] in
  B.finish b

let run_both ?config graph_fn seed =
  let g = graph_fn seed in
  let c = Compiler.compile ?config g in
  let rng = Rng.create (seed * 7) in
  let input_node = (Graph.node c.Compiler.graph 0).Graph.out_shape in
  let input = T.random rng input_node in
  let inputs = [ (0, input) ] in
  let vm, stats = Runtime.run_with_stats c ~inputs in
  let host = Interp.run c.Compiler.graph ~inputs in
  (c, vm, host, stats)

let check_equal name vm host =
  Array.iteri
    (fun i (t_vm : T.t) ->
      let t_host : T.t = host.(i) in
      if not (T.equal_data t_vm t_host) then begin
        let bad = ref (-1) in
        Array.iteri
          (fun j v -> if !bad = -1 && v <> t_host.T.data.(j) then bad := j)
          t_vm.T.data;
        Alcotest.failf "%s: node %d differs at flat index %d (vm %d vs host %d)" name i !bad
          t_vm.T.data.(!bad) t_host.T.data.(!bad)
      end)
    vm

let test_cnn_runtime_matches_reference () =
  List.iter
    (fun seed ->
      let _, vm, host, stats = run_both weighted_cnn seed in
      check_equal "cnn" vm host;
      Alcotest.(check bool) "some nodes ran on the vm" true (stats.Runtime.vm_nodes > 0))
    [ 1; 2; 3 ]

let test_mlp_runtime_matches_reference () =
  let _, vm, host, stats = run_both weighted_mlp 11 in
  check_equal "mlp" vm host;
  Alcotest.(check bool) "vm cycles counted" true (stats.Runtime.vm_cycles > 0)

(* The transformer operators must both agree with the reference and
   actually execute on the VM (bmm, softmax, layer_norm, and the
   broadcast elementwise nodes all land in the per-kind vm column). *)
let test_attention_runtime_matches_reference () =
  List.iter
    (fun seed ->
      let _, vm, host, stats = run_both weighted_attention seed in
      check_equal "attention" vm host;
      let vm_of kind =
        match Hashtbl.find_opt stats.Runtime.kinds kind with
        | Some k -> k.Runtime.k_vm
        | None -> 0
      in
      List.iter
        (fun (kind, expect) ->
          Alcotest.(check int) (kind ^ " nodes on the vm") expect (vm_of kind))
        [ ("bmm", 2); ("softmax", 1); ("layer_norm", 1); ("mul", 1) ];
      Alcotest.(check bool) "broadcast adds on the vm" true (vm_of "add" >= 2))
    [ 1; 2 ]

let test_all_selections_agree_functionally () =
  let configs =
    [
      Compiler.default;
      { Compiler.default with Compiler.name = "local"; selection = Compiler.Local };
      { Compiler.default with Compiler.name = "optimal"; selection = Compiler.Optimal_dp };
      { Compiler.default with Compiler.name = "gcd2(5)"; selection = Compiler.Partitioned 5 };
    ]
  in
  let results =
    List.map
      (fun config ->
        let _, vm, _, _ = run_both ~config weighted_cnn 5 in
        vm)
      configs
  in
  match results with
  | first :: rest ->
    List.iteri
      (fun i vm ->
        Array.iteri
          (fun j t ->
            if not (T.equal_data t first.(j)) then
              Alcotest.failf "config %d node %d differs from default" i j)
          vm)
      rest
  | [] -> ()

let test_fusion_reduces_nodes () =
  let g = weighted_cnn 1 in
  let c = Compiler.compile g in
  Alcotest.(check bool) "fusion shrank the graph" true
    (Graph.size c.Compiler.graph < Graph.size g)

let test_selection_costs_ordered () =
  let g = weighted_cnn 2 in
  let compile sel =
    Compiler.compile
      ~config:{ Compiler.default with Compiler.name = "x"; selection = sel }
      g
  in
  let local = compile Compiler.Local in
  let optimal = compile Compiler.Optimal_dp in
  let partitioned = compile Compiler.(Partitioned 13) in
  let ms c = Compiler.latency_ms c in
  Alcotest.(check bool) "optimal <= local" true (ms optimal <= ms local +. 1e-9);
  Alcotest.(check bool) "optimal <= partitioned" true (ms optimal <= ms partitioned +. 1e-9);
  Alcotest.(check bool) "partitioned <= local" true (ms partitioned <= ms local +. 1e-9)

let test_selection_time_recorded () =
  let g = weighted_cnn 3 in
  let c = Compiler.compile g in
  Alcotest.(check bool) "non-negative" true (c.Compiler.selection_seconds >= 0.0)

let test_latency_positive () =
  let c = Compiler.compile (weighted_cnn 4) in
  Alcotest.(check bool) "latency > 0" true (Compiler.latency_ms c > 0.0)

(* [?jobs] must be semantically inert: same latency report, same
   assignment, same plan tables, same packed programs whatever the
   worker count — parallel plan enumeration may only change wall time.
   jobs:4 genuinely spawns domains, so this also exercises the
   domain-safety of the memo tables and domain-local tracing. *)
let test_jobs_semantically_inert () =
  let g = weighted_cnn 5 in
  let seq = Compiler.compile ~jobs:1 g in
  let par = Compiler.compile ~jobs:4 g in
  Alcotest.(check (float 0.0))
    "same latency" (Compiler.latency_ms seq) (Compiler.latency_ms par);
  Alcotest.(check (float 0.0))
    "same cycles" seq.Compiler.report.Gcd2_cost.Graphcost.cycles
    par.Compiler.report.Gcd2_cost.Graphcost.cycles;
  Alcotest.(check (array int)) "same assignment" seq.Compiler.assignment
    par.Compiler.assignment;
  let plans (c : Compiler.compiled) =
    Array.map
      (fun per_node -> Array.map (Fmt.str "%a" Gcd2_cost.Plan.pp) per_node)
      c.Compiler.cost.Gcd2_cost.Graphcost.plans
  in
  Alcotest.(check (array (array string))) "same plan tables" (plans seq) (plans par);
  let programs (c : Compiler.compiled) =
    Gcd2_store.Artifact.programs_of ~options:c.Compiler.config.Compiler.opcost
      c.Compiler.graph c.Compiler.cost.Gcd2_cost.Graphcost.plans c.Compiler.assignment
  in
  Alcotest.(check bool) "same packed programs" true (programs seq = programs par)

let qcheck_runtime_equivalence =
  QCheck.Test.make ~name:"compiled models match the reference on random seeds" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let _, vm, host, _ = run_both weighted_cnn seed in
      Array.for_all2 (fun a b -> T.equal_data a b) vm host)

let tests =
  [
    Alcotest.test_case "cnn: vm = reference" `Quick test_cnn_runtime_matches_reference;
    Alcotest.test_case "mlp: vm = reference" `Quick test_mlp_runtime_matches_reference;
    Alcotest.test_case "attention: vm = reference" `Quick
      test_attention_runtime_matches_reference;
    Alcotest.test_case "all selections agree functionally" `Quick
      test_all_selections_agree_functionally;
    Alcotest.test_case "fusion reduces node count" `Quick test_fusion_reduces_nodes;
    Alcotest.test_case "selection quality ordering" `Quick test_selection_costs_ordered;
    Alcotest.test_case "selection time recorded" `Quick test_selection_time_recorded;
    Alcotest.test_case "latency positive" `Quick test_latency_positive;
    Alcotest.test_case "jobs is semantically inert" `Quick test_jobs_semantically_inert;
    QCheck_alcotest.to_alcotest qcheck_runtime_equivalence;
  ]
