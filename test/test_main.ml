(* Top-level alcotest runner aggregating every suite. *)

let () =
  Alcotest.run "gcd2"
    [
      ("util", Suite_util.tests);
      ("isa", Suite_isa.tests);
      ("sched", Suite_sched.tests);
      ("vm", Suite_vm.tests);
      ("tensor", Suite_tensor.tests);
      ("graph", Suite_graph.tests);
      ("kernels", Suite_kernels.tests);
      ("codegen", Suite_codegen.tests);
      ("rowops", Suite_rowops.tests);
      ("tune", Suite_tune.tests);
      ("eltwise", Suite_eltwise.tests);
      ("layout", Suite_layout.tests);
      ("cost", Suite_cost.tests);
      ("core", Suite_core.tests);
      ("store", Suite_store.tests);
      ("pipeline", Suite_pipeline.tests);
      ("models", Suite_models.tests);
      ("frameworks", Suite_frameworks.tests);
      ("devices", Suite_devices.tests);
      ("desc", Suite_desc.tests);
      ("serve", Suite_serve.tests);
      ("daemon", Suite_daemon.tests);
      ("chaos", Suite_chaos.tests);
    ]
