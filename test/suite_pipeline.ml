(* Tests for the instrumented pass pipeline: stable pass names, trace
   accounting, dump/sink transparency, pass toggling, and a golden test
   pinning the refactor to the pre-pipeline compiler's exact outputs. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Trace = Gcd2_util.Trace
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Matmul = Gcd2_codegen.Matmul
module Unroll = Gcd2_codegen.Unroll
module Simd = Gcd2_codegen.Simd
module Packer = Gcd2_sched.Packer
open Gcd2_graph
module B = Graph.Builder

let weight_q = Q.make (1.0 /. 64.0)

(* Same residual CNN as suite_core: the golden values below were captured
   from this graph with the pre-pipeline compiler. *)
let weighted_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 8 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let w2 = T.random ~quant:weight_q rng [| 1; 1; 8; 8 |] in
  let c2 = B.conv2d ~weight:w2 b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:8 in
  let s = B.add b Op.Add [ r1; c2 ] in
  let t = B.add b Op.Tanh [ s ] in
  let flat = B.add b (Op.Reshape { shape = [| 64; 8 |] }) [ t ] in
  let w3 = T.random ~quant:weight_q rng [| 8; 10 |] in
  let m = B.matmul ~weight:w3 b flat ~cout:10 in
  let _ = B.add b Op.Softmax [ m ] in
  B.finish b

let test_pass_names_stable () =
  Alcotest.(check (list string))
    "default pass list"
    [
      "validate";
      "eliminate-identity-reshapes";
      "fuse-activations";
      "build-costs";
      "select:gcd2(13)";
      "report";
    ]
    (Compiler.pass_names Compiler.default);
  Alcotest.(check (list string))
    "no graph optimization"
    [ "validate"; "build-costs"; "select:local"; "report" ]
    (Compiler.pass_names
       { Compiler.default with Compiler.optimize_graph = false; selection = Compiler.Local })

let test_trace_accounts_for_total () =
  let c = Compiler.compile (weighted_cnn 1) in
  let tr = c.Compiler.trace in
  let total = Trace.total_seconds tr in
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (Trace.top_spans tr) in
  Alcotest.(check bool) "total positive" true (total > 0.0);
  Alcotest.(check bool) "passes within total" true (sum <= total +. 1e-6);
  (* the pipeline driver adds only negligible time of its own *)
  Alcotest.(check bool) "passes cover the total" true (total -. sum < 0.05);
  Alcotest.(check (list string))
    "one top span per pass"
    (Compiler.pass_names Compiler.default)
    (List.map fst (Trace.top_spans tr))

let test_dumps_and_sinks_do_not_change_output () =
  let g = weighted_cnn 2 in
  let silent = Compiler.compile g in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let noisy =
    Compiler.compile ~sink:(Trace.Text ppf)
      ~dump_after:(Compiler.pass_names Compiler.default)
      ~dump_ppf:ppf g
  in
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "dumps and sink produced text" true (Buffer.length buf > 0);
  Alcotest.(check (float 0.0))
    "same latency" (Compiler.latency_ms silent) (Compiler.latency_ms noisy);
  Alcotest.(check (array int)) "same assignment" silent.Compiler.assignment
    noisy.Compiler.assignment

let test_disabling_fusion_matches_no_opt_config () =
  let g = weighted_cnn 3 in
  let disabled =
    Compiler.compile ~disable:[ "eliminate-identity-reshapes"; "fuse-activations" ] g
  in
  let no_opt =
    Compiler.compile
      ~config:{ Compiler.default with Compiler.optimize_graph = false }
      g
  in
  Alcotest.(check (float 0.0))
    "same latency" (Compiler.latency_ms no_opt) (Compiler.latency_ms disabled);
  Alcotest.(check (array int)) "same assignment" no_opt.Compiler.assignment
    disabled.Compiler.assignment;
  Alcotest.(check int) "same node count"
    (Graph.size no_opt.Compiler.graph)
    (Graph.size disabled.Compiler.graph)

let test_counters_recorded () =
  (* The deep-layer counters (packets, stalls) are only recorded when
     kernels are actually generated, i.e. on a cold compile — a memo-warm
     one reuses every costing.  Earlier tests compile the same graph, so
     restore a cold state first. *)
  Gcd2_util.Memo.clear_all ();
  let c = Compiler.compile (weighted_cnn 1) in
  let tr = c.Compiler.trace in
  Alcotest.(check bool) "fused-nodes > 0" true (Trace.counter tr "fused-nodes" > 0);
  Alcotest.(check bool) "partitions > 0" true (Trace.counter tr "partitions" > 0);
  Alcotest.(check bool) "packets > 0" true (Trace.counter tr "packets" > 0);
  Alcotest.(check bool) "stalls counter present" true
    (List.mem "stalls" (Trace.counter_names tr))

(* Golden values captured from the pre-pipeline compiler on this exact
   graph (seed 1, default config).  The refactor must be
   behaviour-preserving: latency, assignment and the packed program's
   static cycles are bit-identical.  Latency/cycles re-pinned when the
   transformer kernels re-priced the softmax node; assignment and the
   packed matmul program stayed put. *)
let test_golden_behaviour_preserved () =
  let c = Compiler.compile (weighted_cnn 1) in
  Alcotest.(check (float 0.0)) "latency_ms" 0.10545493333333333 (Compiler.latency_ms c);
  Alcotest.(check (float 0.0)) "cycles" 3163648.0 c.Compiler.report.Graphcost.cycles;
  Alcotest.(check (array int)) "assignment" [| 0; 1; 1; 2; 2; 2; 1; 2 |]
    c.Compiler.assignment;
  (* regenerate the packed program of the chosen plan of the matmul node *)
  let matmul_id = ref (-1) in
  Graph.iter
    (fun node ->
      match node.Graph.op with Op.Matmul _ -> matmul_id := node.Graph.id | _ -> ())
    c.Compiler.graph;
  let v = !matmul_id in
  let plan = c.Compiler.cost.Graphcost.plans.(v).(c.Compiler.assignment.(v)) in
  let simd = Option.get plan.Gcd2_cost.Plan.simd in
  let u = Option.get plan.Gcd2_cost.Plan.unroll in
  let spec =
    {
      Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
      m = 64;
      k = 8;
      n = 10;
      mult = 1 lsl 30;
      shift = 30;
      act_table = None;
      strategy = Packer.sda;
      un = u.Unroll.un;
      ug = u.Unroll.ug;
      abuf = u.Unroll.abuf;
      wbuf = u.Unroll.wbuf;
      addressing = Matmul.Bump;
    }
  in
  let prog = Matmul.generate spec { Matmul.a_base = 0; w_base = 0; c_base = 0 } in
  Alcotest.(check int) "static_cycles" 336 (Gcd2_isa.Program.static_cycles prog);
  Alcotest.(check int) "packet_count" 86 (Gcd2_isa.Program.packet_count prog)

let test_golden_efficientnet () =
  let e = Gcd2_models.Zoo.find "EfficientNet-b0" in
  let c = Compiler.compile (e.Gcd2_models.Zoo.build ()) in
  Alcotest.(check (float 0.0)) "latency_ms" 4.3960509666666665 (Compiler.latency_ms c);
  Alcotest.(check int) "assignment hash" 596119008
    (Hashtbl.hash (Array.to_list c.Compiler.assignment));
  Alcotest.(check int) "optimized nodes" 226 (Graph.size c.Compiler.graph)

let tests =
  [
    Alcotest.test_case "pass names stable" `Quick test_pass_names_stable;
    Alcotest.test_case "per-pass time sums to total" `Quick test_trace_accounts_for_total;
    Alcotest.test_case "dumps and sinks are transparent" `Quick
      test_dumps_and_sinks_do_not_change_output;
    Alcotest.test_case "disable fusion = optimize_graph=false" `Quick
      test_disabling_fusion_matches_no_opt_config;
    Alcotest.test_case "counters recorded" `Quick test_counters_recorded;
    Alcotest.test_case "golden: behaviour preserved" `Quick test_golden_behaviour_preserved;
    Alcotest.test_case "golden: EfficientNet-b0" `Slow test_golden_efficientnet;
  ]
