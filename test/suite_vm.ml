(* Tests for Gcd2_vm: instruction semantics (against straight-line OCaml
   reference computations), loop execution, and the agreement between
   dynamic cycle counting and the static program cost. *)

open Gcd2_isa
module Machine = Gcd2_vm.Machine
module Sat = Gcd2_util.Saturate

let r n = Reg.R n
let v n = Reg.V n
let p n = Reg.P n
let addr base offset = { Instr.base; offset }

(* One instruction per packet, one block. *)
let seq instrs = [ Program.Block (List.map (fun i -> [ i ]) instrs) ]

let run ?tables instrs =
  let m = Machine.create ~mem_bytes:(1 lsl 16) () in
  Machine.run m (Program.make ?tables "test" (seq instrs));
  m

let test_scalar_ops () =
  let m =
    run
      [
        Instr.Smovi (r 0, 10);
        Instr.Smovi (r 1, 3);
        Instr.Salu (Instr.Add, r 2, r 0, Instr.Reg (r 1));
        Instr.Salu (Instr.Sub, r 3, r 0, Instr.Imm 4);
        Instr.Smul (r 4, r 0, Instr.Reg (r 1));
        Instr.Salu (Instr.Shl, r 5, r 0, Instr.Imm 2);
        Instr.Salu (Instr.Shr, r 6, r 0, Instr.Imm 1);
        Instr.Salu (Instr.Min, r 7, r 0, Instr.Reg (r 1));
        Instr.Salu (Instr.Max, r 8, r 0, Instr.Reg (r 1));
      ]
  in
  let check name want reg = Alcotest.(check int) name want (Machine.get_sreg m reg) in
  check "add" 13 (r 2);
  check "sub" 6 (r 3);
  check "mul" 30 (r 4);
  check "shl" 40 (r 5);
  check "shr" 5 (r 6);
  check "min" 3 (r 7);
  check "max" 10 (r 8)

let test_scalar_wrap () =
  let m =
    run
      [
        Instr.Smovi (r 0, 0x7fffffff);
        Instr.Salu (Instr.Add, r 1, r 0, Instr.Imm 1);
      ]
  in
  Alcotest.(check int) "wraps to min_int32" (-0x80000000) (Machine.get_sreg m (r 1))

let test_scalar_memory () =
  let m = Machine.create ~mem_bytes:4096 () in
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 100);
            Instr.Smovi (r 1, -123456);
            Instr.Sstore (addr (r 0) 8, r 1);
            Instr.Sload (r 2, addr (r 0) 8);
          ]));
  Alcotest.(check int) "store/load roundtrip" (-123456) (Machine.get_sreg m (r 2))

let test_vector_load_store () =
  let m = Machine.create ~mem_bytes:4096 () in
  let data = Array.init 128 (fun i -> i - 64) in
  Machine.write_i8_array m ~addr:256 data;
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 256);
            Instr.Smovi (r 1, 512);
            Instr.Vload (v 0, addr (r 0) 0);
            Instr.Vstore (addr (r 1) 0, v 0);
          ]));
  let out = Machine.read_i8_array m ~addr:512 ~len:128 in
  Alcotest.(check (array int)) "vector copy" data out

let test_valu_add_sat () =
  let m = Machine.create ~mem_bytes:4096 () in
  let a = Array.init 128 (fun i -> if i = 0 then 120 else i mod 50) in
  let b = Array.init 128 (fun i -> if i = 0 then 120 else -(i mod 30)) in
  Machine.write_i8_array m ~addr:0 a;
  Machine.write_i8_array m ~addr:128 b;
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Vload (v 0, addr (r 0) 0);
            Instr.Vload (v 1, addr (r 0) 128);
            Instr.Valu (Instr.Vadd, Instr.W8, v 2, v 0, v 1);
            Instr.Vstore (addr (r 0) 256, v 2);
          ]));
  let out = Machine.read_i8_array m ~addr:256 ~len:128 in
  let want = Array.init 128 (fun i -> Sat.sat8 (a.(i) + b.(i))) in
  Alcotest.(check (array int)) "saturating vadd" want out

let test_vmpy_semantics () =
  (* vmpy: lane i multiplied by scalar byte (i mod 4); even lanes accumulate
     into the low half, odd lanes into the high half (paper fig 1a). *)
  let m = Machine.create ~mem_bytes:4096 () in
  let a = Array.init 128 (fun i -> (i * 7 mod 250) - 125) in
  Machine.write_i8_array m ~addr:0 a;
  let weights = [| 3; -5; 7; -2 |] in
  let packed =
    (weights.(0) land 0xff)
    lor ((weights.(1) land 0xff) lsl 8)
    lor ((weights.(2) land 0xff) lsl 16)
    lor ((weights.(3) land 0xff) lsl 24)
  in
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Smovi (r 1, packed);
            Instr.Vload (v 4, addr (r 0) 0);
            Instr.Vmovi (p 1, 0);
            Instr.Vmpy (p 1, v 4, r 1);
            Instr.Vstore (addr (r 0) 512, v 2);
            Instr.Vstore (addr (r 0) 1024, v 3);
          ]));
  (* v2 = low half = even-lane products; v3 = high half = odd lanes. *)
  let lo = Machine.read_i8_array m ~addr:512 ~len:128 in
  let hi = Machine.read_i8_array m ~addr:1024 ~len:128 in
  let lane16 arr j = Sat.sign_extend ~bits:16 ((arr.((2 * j) + 1) land 0xff) lsl 8 lor (arr.(2 * j) land 0xff)) in
  for j = 0 to 63 do
    let even = a.(2 * j) * weights.((2 * j) mod 4) in
    let odd = a.((2 * j) + 1) * weights.(((2 * j) + 1) mod 4) in
    Alcotest.(check int) (Fmt.str "even lane %d" j) (Sat.sat16 even) (lane16 lo j);
    Alcotest.(check int) (Fmt.str "odd lane %d" j) (Sat.sat16 odd) (lane16 hi j)
  done

let test_vrmpy_semantics () =
  let m = Machine.create ~mem_bytes:4096 () in
  let a = Array.init 128 (fun i -> (i * 13 mod 250) - 125) in
  Machine.write_i8_array m ~addr:0 a;
  let weights = [| -7; 11; 2; -3 |] in
  let packed =
    (weights.(0) land 0xff)
    lor ((weights.(1) land 0xff) lsl 8)
    lor ((weights.(2) land 0xff) lsl 16)
    lor ((weights.(3) land 0xff) lsl 24)
  in
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Smovi (r 1, packed);
            Instr.Vload (v 4, addr (r 0) 0);
            Instr.Vmovi (v 5, 0);
            Instr.Vrmpy (v 5, v 4, r 1);
            Instr.Vrmpy (v 5, v 4, r 1);
            Instr.Vstore (addr (r 0) 512, v 5);
          ]));
  let out = Machine.read_i32_array m ~addr:512 ~len:32 in
  for l = 0 to 31 do
    let dot = ref 0 in
    for mxx = 0 to 3 do
      dot := !dot + (a.((4 * l) + mxx) * weights.(mxx))
    done;
    (* accumulated twice *)
    Alcotest.(check int) (Fmt.str "lane %d" l) (2 * !dot) out.(l)
  done

let test_vmpa_semantics () =
  let m = Machine.create ~mem_bytes:4096 () in
  let q0 = Array.init 128 (fun i -> (i mod 17) - 8) in
  let q1 = Array.init 128 (fun i -> ((i * 3) mod 19) - 9) in
  Machine.write_i8_array m ~addr:0 q0;
  Machine.write_i8_array m ~addr:128 q1;
  let w = [| 4; -6; 9; -1 |] in
  let packed =
    (w.(0) land 0xff) lor ((w.(1) land 0xff) lsl 8) lor ((w.(2) land 0xff) lsl 16)
    lor ((w.(3) land 0xff) lsl 24)
  in
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Smovi (r 1, packed);
            Instr.Vload (v 4, addr (r 0) 0);
            Instr.Vload (v 5, addr (r 0) 128);
            Instr.Vmovi (p 1, 0);
            Instr.Vmpa (p 1, p 2, r 1);
            Instr.Vstore (addr (r 0) 512, v 2);
            Instr.Vstore (addr (r 0) 1024, v 3);
          ]));
  let lo = Machine.read_i8_array m ~addr:512 ~len:128 in
  let hi = Machine.read_i8_array m ~addr:1024 ~len:128 in
  let lane16 arr j =
    Sat.sign_extend ~bits:16 (((arr.((2 * j) + 1) land 0xff) lsl 8) lor (arr.(2 * j) land 0xff))
  in
  for j = 0 to 63 do
    let want_lo = (q0.(2 * j) * w.(0)) + (q1.(2 * j) * w.(1)) in
    let want_hi = (q0.((2 * j) + 1) * w.(2)) + (q1.((2 * j) + 1) * w.(3)) in
    Alcotest.(check int) (Fmt.str "lo %d" j) (Sat.sat16 want_lo) (lane16 lo j);
    Alcotest.(check int) (Fmt.str "hi %d" j) (Sat.sat16 want_hi) (lane16 hi j)
  done

let test_vaddw_vpack_vshuff () =
  (* Widen 16 -> 32, then narrow back, with a shuffle roundtrip. *)
  let m = Machine.create ~mem_bytes:4096 () in
  (* v0 holds 64 16-bit lanes: j*100 - 3000 *)
  let bytes16 = Array.init 128 (fun i ->
      let j = i / 2 in
      let value = (j * 100) - 3000 in
      if i mod 2 = 0 then value land 0xff else (value asr 8) land 0xff)
  in
  Machine.write_i8_array m ~addr:0 bytes16;
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Vload (v 0, addr (r 0) 0);
            Instr.Vmovi (p 1, 0);
            Instr.Vaddw (p 1, v 0);
            Instr.Vaddw (p 1, v 0);
            Instr.Vstore (addr (r 0) 512, v 2);
            Instr.Vstore (addr (r 0) 640, v 3);
          ]));
  let words = Machine.read_i32_array m ~addr:512 ~len:64 in
  for j = 0 to 63 do
    Alcotest.(check int) (Fmt.str "widened lane %d" j) (2 * ((j * 100) - 3000)) words.(j)
  done

let test_vscale () =
  let m = Machine.create ~mem_bytes:4096 () in
  let acc = Array.init 32 (fun i -> (i * 1000) - 16000) in
  Machine.write_i32_array m ~addr:0 acc;
  let mult, shift = Sat.quantize_multiplier 0.05 in
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Vload (v 0, addr (r 0) 0);
            Instr.Vscale (v 1, v 0, mult, shift);
            Instr.Vstore (addr (r 0) 512, v 1);
          ]));
  let out = Machine.read_i32_array m ~addr:512 ~len:32 in
  for l = 0 to 31 do
    let want = int_of_float (Float.round (float_of_int acc.(l) *. 0.05)) in
    if abs (out.(l) - want) > 1 then
      Alcotest.failf "lane %d: got %d want about %d" l out.(l) want
  done

let test_vlut () =
  let table = Array.init 256 (fun i -> (255 - i) land 0xff) in
  let m = Machine.create ~mem_bytes:4096 () in
  let src = Array.init 128 (fun i -> i - 64) in
  Machine.write_i8_array m ~addr:0 src;
  Machine.run m
    (Program.make ~tables:[ (0, table) ] "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Vload (v 0, addr (r 0) 0);
            Instr.Vlut (v 1, v 0, 0);
            Instr.Vstore (addr (r 0) 512, v 1);
          ]));
  let out = Machine.read_i8_array m ~addr:512 ~len:128 in
  Array.iteri
    (fun i s ->
      let want = Sat.sign_extend ~bits:8 (table.(s land 0xff)) in
      Alcotest.(check int) (Fmt.str "lane %d" i) want out.(i))
    src

let test_loop_execution () =
  (* Sum 1..10 via a loop: r1 += r2; r2 += 1, ten times. *)
  let body =
    Program.Block
      [
        [ Instr.Salu (Instr.Add, r 1, r 1, Instr.Reg (r 2)) ];
        [ Instr.Salu (Instr.Add, r 2, r 2, Instr.Imm 1) ];
      ]
  in
  let prog =
    Program.make "sum"
      [
        Program.Block [ [ Instr.Smovi (r 1, 0) ]; [ Instr.Smovi (r 2, 1) ] ];
        Program.Loop { trip = 10; body = [ body ] };
      ]
  in
  let m = Machine.create ~mem_bytes:4096 () in
  Machine.run m prog;
  Alcotest.(check int) "sum 1..10" 55 (Machine.get_sreg m (r 1))

let test_cycles_match_static () =
  let body =
    Program.Block
      [
        [ Instr.Vload (v 0, addr (r 0) 0); Instr.Salu (Instr.Add, r 1, r 1, Instr.Imm 1) ];
        [ Instr.Vrmpy (v 1, v 0, r 2) ];
      ]
  in
  let prog =
    Program.make "k"
      [
        Program.Block [ [ Instr.Smovi (r 0, 0) ]; [ Instr.Smovi (r 1, 0) ] ];
        Program.Loop { trip = 7; body = [ body ] };
      ]
  in
  let m = Machine.create ~mem_bytes:4096 () in
  Machine.run m prog;
  let c = Machine.counters m in
  Alcotest.(check int) "dynamic cycles = static cycles" (Program.static_cycles prog) c.cycles;
  Alcotest.(check int) "dynamic packets = static" (Program.packet_count prog) c.packets;
  Alcotest.(check int) "macs counted" (Program.macs prog) c.macs;
  Alcotest.(check int) "load bytes" (Program.load_bytes prog) c.loaded_bytes

let test_out_of_bounds () =
  let m = Machine.create ~mem_bytes:256 () in
  Alcotest.check_raises "oob load raises"
    (Invalid_argument "memory access out of bounds: [1024, 1152)") (fun () ->
      Machine.run m
        (Program.make "t" (seq [ Instr.Smovi (r 0, 1024); Instr.Vload (v 0, addr (r 0) 0) ])))

let tests =
  [
    Alcotest.test_case "scalar alu" `Quick test_scalar_ops;
    Alcotest.test_case "scalar wraparound" `Quick test_scalar_wrap;
    Alcotest.test_case "scalar memory" `Quick test_scalar_memory;
    Alcotest.test_case "vector load/store" `Quick test_vector_load_store;
    Alcotest.test_case "saturating vector add" `Quick test_valu_add_sat;
    Alcotest.test_case "vmpy semantics (fig 1a)" `Quick test_vmpy_semantics;
    Alcotest.test_case "vrmpy semantics (fig 1c)" `Quick test_vrmpy_semantics;
    Alcotest.test_case "vmpa semantics (fig 1b)" `Quick test_vmpa_semantics;
    Alcotest.test_case "vaddw widening accumulate" `Quick test_vaddw_vpack_vshuff;
    Alcotest.test_case "vscale requantization" `Quick test_vscale;
    Alcotest.test_case "vlut table lookup" `Quick test_vlut;
    Alcotest.test_case "loop execution" `Quick test_loop_execution;
    Alcotest.test_case "dynamic counters match static" `Quick test_cycles_match_static;
    Alcotest.test_case "bounds checking" `Quick test_out_of_bounds;
  ]

(* ------------------------------------------------------------------ *)
(* Full coverage of remaining vector operations                        *)

let test_valu_ops () =
  let m = Machine.create ~mem_bytes:4096 () in
  let a = Array.init 128 (fun i -> (i mod 200) - 100) in
  let b = Array.init 128 (fun i -> ((i * 7) mod 150) - 75) in
  Machine.write_i8_array m ~addr:0 a;
  Machine.write_i8_array m ~addr:128 b;
  let check op fn =
    Machine.run m
      (Program.make "t"
         (seq
            [
              Instr.Smovi (r 0, 0);
              Instr.Vload (v 0, addr (r 0) 0);
              Instr.Vload (v 1, addr (r 0) 128);
              Instr.Valu (op, Instr.W8, v 2, v 0, v 1);
              Instr.Vstore (addr (r 0) 512, v 2);
            ]));
    let out = Machine.read_i8_array m ~addr:512 ~len:128 in
    Array.iteri
      (fun i got ->
        let want = fn a.(i) b.(i) in
        if got <> want then
          Alcotest.failf "%s lane %d: got %d want %d" (Instr.to_string (Instr.Valu (op, Instr.W8, v 2, v 0, v 1))) i got want)
      out
  in
  check Instr.Vsub (fun x y -> Sat.sat8 (x - y));
  check Instr.Vmax max;
  check Instr.Vmin min;
  check Instr.Vavg (fun x y -> (x + y + 1) asr 1);
  check Instr.Vand (fun x y -> Sat.sign_extend ~bits:8 ((x land y) land 0xff));
  check Instr.Vor (fun x y -> Sat.sign_extend ~bits:8 ((x lor y) land 0xff));
  check Instr.Vxor (fun x y -> Sat.sign_extend ~bits:8 ((x lxor y) land 0xff))

let test_vdup () =
  let m = Machine.create ~mem_bytes:4096 () in
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Smovi (r 1, 0x1234_56AB);
            Instr.Vdup (v 0, r 1);
            Instr.Vstore (addr (r 0) 0, v 0);
          ]));
  let out = Machine.read_i8_array m ~addr:0 ~len:128 in
  Array.iter
    (fun x -> Alcotest.(check int) "low byte splat" (Sat.sign_extend ~bits:8 0xAB) x)
    out

let test_vpack_w32 () =
  let m = Machine.create ~mem_bytes:4096 () in
  let words = Array.init 64 (fun i -> (i * 3000) - 90000) in
  Machine.write_i32_array m ~addr:0 words;
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Vload (v 0, addr (r 0) 0);
            Instr.Vload (v 1, addr (r 0) 128);
            Instr.Vpack (v 2, p 0, Instr.W32);
            Instr.Vstore (addr (r 0) 512, v 2);
          ]));
  let out = Machine.read_i8_array m ~addr:512 ~len:128 in
  let lane16 j =
    Sat.sign_extend ~bits:16 (((out.((2 * j) + 1) land 0xff) lsl 8) lor (out.(2 * j) land 0xff))
  in
  for j = 0 to 63 do
    Alcotest.(check int) (Fmt.str "lane %d" j) (Sat.sat16 words.(j)) (lane16 j)
  done

let test_vshuff_roundtrip_widths () =
  (* shuffling a pair whose halves hold 0..127 / 128..255 interleaves the
     byte streams; checking one width thoroughly and the others spot-wise *)
  let m = Machine.create ~mem_bytes:4096 () in
  Machine.write_i8_array m ~addr:0 (Array.init 256 (fun i -> Sat.sign_extend ~bits:8 i));
  List.iter
    (fun (w, bytes_per_lane) ->
      Machine.run m
        (Program.make "t"
           (seq
              [
                Instr.Smovi (r 0, 0);
                Instr.Vload (v 0, addr (r 0) 0);
                Instr.Vload (v 1, addr (r 0) 128);
                Instr.Vshuff (p 1, p 0, w);
                Instr.Vstore (addr (r 0) 512, v 2);
                Instr.Vstore (addr (r 0) 640, v 3);
              ]));
      let out = Machine.read_i8_array m ~addr:512 ~len:256 in
      (* lane 0 comes from the low half, lane 1 from the high half *)
      Alcotest.(check int) "first lane from lo" 0 out.(0);
      Alcotest.(check int)
        (Fmt.str "second lane from hi (width %d)" bytes_per_lane)
        (Sat.sign_extend ~bits:8 128)
        out.(bytes_per_lane))
    [ (Instr.W8, 1); (Instr.W16, 2); (Instr.W32, 4) ]

let test_vmpyb_selects_byte () =
  let m = Machine.create ~mem_bytes:4096 () in
  let a = Array.init 128 (fun i -> (i mod 20) - 10) in
  Machine.write_i8_array m ~addr:0 a;
  let weights = [| 3; -5; 7; -2 |] in
  let packed =
    (weights.(0) land 0xff) lor ((weights.(1) land 0xff) lsl 8)
    lor ((weights.(2) land 0xff) lsl 16) lor ((weights.(3) land 0xff) lsl 24)
  in
  for sel = 0 to 3 do
    Machine.run m
      (Program.make "t"
         (seq
            [
              Instr.Smovi (r 0, 0);
              Instr.Smovi (r 1, packed);
              Instr.Vload (v 4, addr (r 0) 0);
              Instr.Vmovi (p 1, 0);
              Instr.Vmpyb (p 1, v 4, r 1, sel);
              Instr.Vstore (addr (r 0) 512, v 2);
              Instr.Vstore (addr (r 0) 1024, v 3);
            ]));
    let lo = Machine.read_i8_array m ~addr:512 ~len:128 in
    let lane16 arr j =
      Sat.sign_extend ~bits:16 (((arr.((2 * j) + 1) land 0xff) lsl 8) lor (arr.(2 * j) land 0xff))
    in
    for j = 0 to 63 do
      Alcotest.(check int)
        (Fmt.str "sel %d lane %d" sel j)
        (Sat.sat16 (a.(2 * j) * weights.(sel)))
        (lane16 lo j)
    done
  done

let test_vmul_elementwise () =
  let m = Machine.create ~mem_bytes:4096 () in
  let a = Array.init 128 (fun i -> (i mod 23) - 11) in
  let b = Array.init 128 (fun i -> ((i * 5) mod 19) - 9) in
  Machine.write_i8_array m ~addr:0 a;
  Machine.write_i8_array m ~addr:128 b;
  Machine.run m
    (Program.make "t"
       (seq
          [
            Instr.Smovi (r 0, 0);
            Instr.Vload (v 4, addr (r 0) 0);
            Instr.Vload (v 5, addr (r 0) 128);
            Instr.Vmovi (p 1, 0);
            Instr.Vmul (p 1, v 4, v 5);
            Instr.Vstore (addr (r 0) 512, v 2);
            Instr.Vstore (addr (r 0) 640, v 3);
          ]));
  let lo = Machine.read_i8_array m ~addr:512 ~len:128 in
  let hi = Machine.read_i8_array m ~addr:640 ~len:128 in
  let lane16 arr j =
    Sat.sign_extend ~bits:16 (((arr.((2 * j) + 1) land 0xff) lsl 8) lor (arr.(2 * j) land 0xff))
  in
  for j = 0 to 63 do
    Alcotest.(check int) (Fmt.str "even %d" j) (Sat.sat16 (a.(2 * j) * b.(2 * j))) (lane16 lo j);
    Alcotest.(check int)
      (Fmt.str "odd %d" j)
      (Sat.sat16 (a.((2 * j) + 1) * b.((2 * j) + 1)))
      (lane16 hi j)
  done

let test_scalar_logic_and_shift_ops () =
  let m =
    run
      [
        Instr.Smovi (r 0, 0b1100);
        Instr.Smovi (r 1, 0b1010);
        Instr.Salu (Instr.And, r 2, r 0, Instr.Reg (r 1));
        Instr.Salu (Instr.Or, r 3, r 0, Instr.Reg (r 1));
        Instr.Salu (Instr.Xor, r 4, r 0, Instr.Reg (r 1));
        Instr.Smovi (r 5, -16);
        Instr.Salu (Instr.Shr, r 6, r 5, Instr.Imm 2);
      ]
  in
  Alcotest.(check int) "and" 0b1000 (Machine.get_sreg m (r 2));
  Alcotest.(check int) "or" 0b1110 (Machine.get_sreg m (r 3));
  Alcotest.(check int) "xor" 0b0110 (Machine.get_sreg m (r 4));
  Alcotest.(check int) "arithmetic shift" (-4) (Machine.get_sreg m (r 6))

let tests =
  tests
  @ [
      Alcotest.test_case "vector alu op coverage" `Quick test_valu_ops;
      Alcotest.test_case "vdup" `Quick test_vdup;
      Alcotest.test_case "vpack 32->16" `Quick test_vpack_w32;
      Alcotest.test_case "vshuff widths" `Quick test_vshuff_roundtrip_widths;
      Alcotest.test_case "vmpyb byte select" `Quick test_vmpyb_selects_byte;
      Alcotest.test_case "vmul elementwise" `Quick test_vmul_elementwise;
      Alcotest.test_case "scalar logic and shifts" `Quick test_scalar_logic_and_shift_ops;
    ]

(* ------------------------------------------------------------------ *)
(* Translated engine: differential testing against the reference       *)

module Rng = Gcd2_util.Rng

let mem_bytes = 2048

(* Random instruction over a small register window, biased toward valid
   in-bounds programs but deliberately including faulting shapes: OOB
   addresses (random ALU results as bases), an unknown Vlut table id, an
   out-of-range Vmpyb selector and W8 Vpack — the two engines must agree
   on those too (same exception, same counters at the fault). *)
let gen_instr rng =
  let sr () = r (Rng.int rng 8) in
  let vv () = v (Rng.int rng 32) in
  let pr () = p (Rng.int rng 16) in
  let w () =
    match Rng.int rng 3 with 0 -> Instr.W8 | 1 -> Instr.W16 | _ -> Instr.W32
  in
  let salu_op () =
    [| Instr.Add; Instr.Sub; Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr;
       Instr.Min; Instr.Max |].(Rng.int rng 9)
  in
  let valu_op () =
    [| Instr.Vadd; Instr.Vsub; Instr.Vmax; Instr.Vmin; Instr.Vavg; Instr.Vand;
       Instr.Vor; Instr.Vxor |].(Rng.int rng 8)
  in
  let operand () =
    if Rng.int rng 2 = 0 then Instr.Reg (sr ()) else Instr.Imm (Rng.int rng 256 - 128)
  in
  let adr () = addr (sr ()) (Rng.int rng (mem_bytes - 128)) in
  match Rng.int rng 21 with
  | 0 -> Instr.Smovi (sr (), Rng.int rng 1024)
  | 1 -> Instr.Salu (salu_op (), sr (), sr (), operand ())
  | 2 -> Instr.Smul (sr (), sr (), operand ())
  | 3 -> Instr.Sload (sr (), adr ())
  | 4 -> Instr.Sstore (adr (), sr ())
  | 5 -> Instr.Vload (vv (), adr ())
  | 6 -> Instr.Vstore (adr (), vv ())
  | 7 -> Instr.Vmovi ((if Rng.int rng 2 = 0 then vv () else pr ()), Rng.int rng 256 - 128)
  | 8 ->
    let dst = if Rng.int rng 2 = 0 then vv () else pr () in
    let src () = match dst with Reg.P _ -> pr () | _ -> vv () in
    Instr.Valu (valu_op (), w (), dst, src (), src ())
  | 9 -> Instr.Vaddw (pr (), vv ())
  | 10 -> Instr.Vmpy (pr (), vv (), sr ())
  | 11 -> Instr.Vmpyb (pr (), vv (), sr (), Rng.int rng 5 (* 4 = invalid *))
  | 12 -> Instr.Vmul (pr (), vv (), vv ())
  | 13 -> Instr.Vmpa (pr (), pr (), sr ())
  | 14 -> Instr.Vrmpy (vv (), vv (), sr ())
  | 15 -> Instr.Vscale (vv (), vv (), Rng.int rng (1 lsl 24), Rng.int rng 24)
  | 16 -> Instr.Vscalev (vv (), vv (), vv (), Rng.int rng 24)
  | 17 -> Instr.Vpack (vv (), pr (), w () (* W8 = invalid *))
  | 18 -> Instr.Vshuff (pr (), pr (), w ())
  | 19 -> Instr.Vlut (vv (), vv (), Rng.int rng 3 (* table 2 = unknown *))
  | _ -> Instr.Vdup (vv (), sr ())

let gen_block rng =
  let packets =
    List.init
      (1 + Rng.int rng 4)
      (fun _ -> List.init (1 + Rng.int rng 2) (fun _ -> gen_instr rng))
  in
  Program.Block packets

let gen_program seed =
  let rng = Rng.create seed in
  let node _ =
    if Rng.int rng 3 = 0 then
      (* trips include 0: the loop body is decoded but never executed *)
      Program.Loop
        { trip = Rng.int rng 4; body = List.init (1 + Rng.int rng 2) (fun _ -> gen_block rng) }
    else gen_block rng
  in
  let tables =
    [ (0, Array.init 256 (fun i -> i)); (1, Array.init 256 (fun i -> (i * 31) land 0xff)) ]
  in
  Program.make ~tables "qcheck" (List.init (2 + Rng.int rng 3) node)

(* Run [prog] on a fresh, deterministically initialized machine under
   [engine]; capture the full observable state. *)
let run_under engine seed prog =
  let saved = Machine.engine () in
  Machine.set_engine engine;
  let m = Machine.create ~mem_bytes () in
  let init = Rng.create (seed * 31) in
  let data = Array.init mem_bytes (fun _ -> Rng.int8 init) in
  Machine.write_i8_array m ~addr:0 data;
  let outcome = try (Machine.run m prog; "ok") with e -> Printexc.to_string e in
  Machine.set_engine saved;
  let sregs = Array.init 32 (fun i -> Machine.get_sreg m (r i)) in
  let vbytes =
    Array.init 32 (fun n ->
        Array.init 128 (fun i -> Machine.get_lane m (v n) ~width:Instr.W8 i))
  in
  let mem = Machine.read_i8_array m ~addr:0 ~len:mem_bytes in
  let c = Machine.counters m in
  let counters =
    (c.Machine.cycles, c.Machine.packets, c.Machine.instrs, c.Machine.macs,
     c.Machine.loaded_bytes, c.Machine.stored_bytes)
  in
  (outcome, sregs, vbytes, mem, counters)

let qcheck_translated_equals_reference =
  QCheck.Test.make ~name:"translated engine = reference on random programs" ~count:300
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let prog = gen_program seed in
      let o_f, s_f, v_f, m_f, c_f = run_under Machine.Translated seed prog in
      let o_r, s_r, v_r, m_r, c_r = run_under Machine.Reference seed prog in
      if o_f <> o_r then QCheck.Test.fail_reportf "outcome: %s vs %s" o_f o_r;
      if c_f <> c_r then QCheck.Test.fail_reportf "counters differ (outcome %s)" o_f;
      s_f = s_r && v_f = v_r && m_f = m_r)

let qcheck_fast_cycles_match_static =
  QCheck.Test.make ~name:"fast path: counters.cycles = static_cycles" ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let prog = gen_program seed in
      let o, _, _, _, (cycles, packets, instrs, _, _, _) =
        run_under Machine.Translated seed prog
      in
      (* only completed runs execute every packet *)
      QCheck.assume (o = "ok");
      cycles = Program.static_cycles prog
      && packets = Program.packet_count prog
      && instrs = Program.instr_count prog)

(* The same physical program re-run on one machine reuses its cached
   translation; counters advance by exactly one program's worth. *)
let test_decode_cache_reuse () =
  let prog = gen_program 7 in
  let m = Machine.create ~mem_bytes () in
  (try Machine.run m prog with _ -> ());
  let c = Machine.counters m in
  let after_one = (c.Machine.cycles, c.Machine.instrs) in
  (try Machine.run m prog with _ -> ());
  Alcotest.(check bool)
    "second run advances counters by the same amount" true
    (c.Machine.cycles = 2 * fst after_one && c.Machine.instrs = 2 * snd after_one)

(* Scratch machines: logical size governs bounds faults and observable
   memory even when the backing store stays larger from a previous use. *)
let test_scratch_reuse () =
  let m1 = Machine.scratch ~mem_bytes:8192 () in
  Machine.write_i8_array m1 ~addr:5000 [| 42 |];
  Machine.set_sreg m1 (r 3) 77;
  let m2 = Machine.scratch ~mem_bytes:256 () in
  Alcotest.(check int) "logical size" 256 (Machine.memory_size m2);
  Alcotest.(check int) "registers cleared" 0 (Machine.get_sreg m2 (r 3));
  Alcotest.(check int) "counters cleared" 0 (Machine.counters m2).Machine.instrs;
  Alcotest.check_raises "faults at the logical size, not the backing size"
    (Invalid_argument "memory access out of bounds: [200, 328)") (fun () ->
      Machine.run m2
        (Program.make "t" (seq [ Instr.Smovi (r 0, 200); Instr.Vload (v 0, addr (r 0) 0) ])));
  let m3 = Machine.scratch ~mem_bytes:8192 () in
  Alcotest.(check (array int))
    "grown-again scratch memory is zeroed" (Array.make 1 0)
    (Machine.read_i8_array m3 ~addr:5000 ~len:1)

let tests =
  tests
  @ [
      QCheck_alcotest.to_alcotest qcheck_translated_equals_reference;
      QCheck_alcotest.to_alcotest qcheck_fast_cycles_match_static;
      Alcotest.test_case "decode cache reuse" `Quick test_decode_cache_reuse;
      Alcotest.test_case "scratch machine reuse" `Quick test_scratch_reuse;
    ]
