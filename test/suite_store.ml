(* Tests for the compiled-artifact store: request fingerprints,
   save/load round-trips that are bit-identical, cache hits that are
   indistinguishable from the cold compile that stored them (down to
   Runtime outputs), and corrupt entries degrading to misses. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Trace = Gcd2_util.Trace
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime
module Artifact = Gcd2_store.Artifact
module Zoo = Gcd2_models.Zoo
open Gcd2_graph
module B = Graph.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_dir () =
  let f = Filename.temp_file "gcd2-store-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let weight_q = Q.make (1.0 /. 64.0)

(* Same shape of graph as the core suite: convs, a residual add, a
   matmul head — enough to exercise SIMD plans and packed programs. *)
let weighted_cnn seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 8 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let w2 = T.random ~quant:weight_q rng [| 1; 1; 8; 8 |] in
  let c2 = B.conv2d ~weight:w2 b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:8 in
  let s = B.add b Op.Add [ r1; c2 ] in
  let flat = B.add b (Op.Reshape { shape = [| 64; 8 |] }) [ s ] in
  let w3 = T.random ~quant:weight_q rng [| 8; 10 |] in
  let _ = B.matmul ~weight:w3 b flat ~cout:10 in
  B.finish b

let only_entry dir =
  match
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".gcd2art")
  with
  | [ f ] -> Filename.concat dir f
  | fs -> Alcotest.failf "expected exactly one cache entry, found %d" (List.length fs)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* ------------------------------------------------------------------ *)
(* Fingerprints *)

let test_fingerprint () =
  let d cfg g = Compiler.fingerprint cfg g in
  let default = Compiler.default in
  let digest = d default (weighted_cnn 1) in
  check_int "32 hex chars" 32 (String.length digest);
  String.iter
    (fun ch ->
      if not ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) then
        Alcotest.failf "non-hex digest char %c" ch)
    digest;
  Alcotest.(check string) "deterministic" digest (d default (weighted_cnn 1));
  Alcotest.(check bool) "weights change the digest" false
    (digest = d default (weighted_cnn 2));
  let local = { default with Compiler.selection = Compiler.Local } in
  Alcotest.(check bool) "selection changes the digest" false
    (digest = d local (weighted_cnn 1));
  let noopt = { default with Compiler.optimize_graph = false } in
  Alcotest.(check bool) "optimize_graph changes the digest" false
    (digest = d noopt (weighted_cnn 1));
  let renamed = { default with Compiler.name = "renamed" } in
  Alcotest.(check string) "cosmetic name is excluded" digest (d renamed (weighted_cnn 1))

(* Two devices must never answer each other's requests: the full
   descriptor is folded into the fingerprint, so per-device configs get
   distinct digests and distinct cache entries. *)
let test_fingerprint_separates_devices () =
  let with_dev d = Compiler.with_device d Compiler.default in
  let g = weighted_cnn 1 in
  let d698 = Compiler.fingerprint (with_dev Gcd2_devices.Desc.hexagon698) g in
  let dg2 = Compiler.fingerprint (with_dev Gcd2_devices.Desc.hexagon_g2) g in
  Alcotest.(check bool) "per-device digests differ" false (d698 = dg2);
  (* a retuned descriptor under the same name is still a different
     request: the rendering covers every field, not just the name *)
  let tuned =
    { Gcd2_devices.Desc.hexagon698 with Gcd2_devices.Desc.ddr_bytes_per_cycle = 2.0 }
  in
  Alcotest.(check bool) "same-name retuned descriptor differs" false
    (d698 = Compiler.fingerprint (with_dev tuned) g);
  (* end to end: compiling the same graph for both devices through one
     cache directory must store two entries, and each warm compile must
     hit its own device's entry *)
  let dir = temp_dir () in
  let c698 = Compiler.compile ~cache_dir:dir ~config:(with_dev Gcd2_devices.Desc.hexagon698) g in
  let cg2 = Compiler.compile ~cache_dir:dir ~config:(with_dev Gcd2_devices.Desc.hexagon_g2) g in
  check_int "two cache entries" 2
    (Array.length
       (Array.of_list
          (List.filter
             (fun f -> Filename.check_suffix f ".gcd2art")
             (Array.to_list (Sys.readdir dir)))));
  let w698 = Compiler.compile ~cache_dir:dir ~config:(with_dev Gcd2_devices.Desc.hexagon698) g in
  let wg2 = Compiler.compile ~cache_dir:dir ~config:(with_dev Gcd2_devices.Desc.hexagon_g2) g in
  Alcotest.(check bool) "warm 698 compile is a hit" true (Compiler.from_cache w698);
  Alcotest.(check bool) "warm g2 compile is a hit" true (Compiler.from_cache wg2);
  Alcotest.(check (array int))
    "warm 698 assignment unchanged" c698.Compiler.assignment w698.Compiler.assignment;
  Alcotest.(check (array int))
    "warm g2 assignment unchanged" cg2.Compiler.assignment wg2.Compiler.assignment;
  Alcotest.(check bool) "the two devices compiled differently" false
    (c698.Compiler.report.Gcd2_cost.Graphcost.cycles
    = cg2.Compiler.report.Gcd2_cost.Graphcost.cycles)

(* The digest must separate everything that changes the compile: the
   disabled-pass list, and `supported` predicates that only differ on ops
   the optimizer derives (the bitmap is rendered over the optimized
   graph, the op universe selection actually sees). *)
let test_fingerprint_disable_and_derived_ops () =
  let default = Compiler.default in
  let digest = Compiler.fingerprint default (weighted_cnn 1) in
  Alcotest.(check bool) "disabling a pass changes the digest" false
    (digest
    = Compiler.fingerprint ~disable:[ "fuse-activations" ] default (weighted_cnn 1));
  Alcotest.(check string) "the disable list is order/duplicate-insensitive"
    (Compiler.fingerprint ~disable:[ "fuse-activations"; "report" ] default
       (weighted_cnn 1))
    (Compiler.fingerprint
       ~disable:[ "report"; "fuse-activations"; "report" ]
       default (weighted_cnn 1));
  (* rejects fused convolutions only — agrees with the default predicate
     on every op of the *input* graph, where convs still carry no act *)
  let reject_fused =
    {
      default with
      Compiler.opcost =
        {
          default.Compiler.opcost with
          Gcd2_cost.Opcost.supported =
            (fun op ->
              match op with Op.Conv2d { act = Some _; _ } -> false | _ -> true);
        };
    }
  in
  Alcotest.(check bool) "supported differing only on fused ops changes the digest" false
    (digest = Compiler.fingerprint reject_fused (weighted_cnn 1))

(* ------------------------------------------------------------------ *)
(* Serialization round-trip *)

let test_roundtrip_bytes () =
  let dir = temp_dir () in
  let c = Compiler.compile ~cache_dir:dir (weighted_cnn 3) in
  Alcotest.(check bool) "cold compile is not from cache" false (Compiler.from_cache c);
  let path = only_entry dir in
  let raw = read_file path in
  let art, bytes_read =
    match Artifact.load ~path () with
    | Ok v -> v
    | Error e -> Alcotest.failf "load failed: %s" e
  in
  check_int "load reports the file size" (String.length raw) bytes_read;
  Alcotest.(check string) "entry is named by its digest"
    (Filename.basename path)
    (art.Artifact.digest ^ ".gcd2art");
  Alcotest.(check string) "digest matches the request"
    (Compiler.fingerprint c.Compiler.config (weighted_cnn 3))
    art.Artifact.digest;
  Alcotest.(check (array int)) "stored assignment matches the compile"
    c.Compiler.assignment art.Artifact.assignment;
  Alcotest.(check bool) "some packed programs are stored" true
    (Array.exists Option.is_some art.Artifact.programs);
  Alcotest.(check string) "save -> load -> to_bytes is bit-identical"
    (Stdlib.Digest.to_hex (Stdlib.Digest.string raw))
    (Stdlib.Digest.to_hex (Stdlib.Digest.bytes (Artifact.to_bytes art)))

let test_of_bytes_rejects_garbage () =
  let err b = match Artifact.of_bytes b with Ok _ -> "ok" | Error e -> e in
  Alcotest.(check string) "short input" "too short for header"
    (err (Bytes.of_string "short"));
  Alcotest.(check string) "wrong magic" "bad magic"
    (err (Bytes.make Artifact.header_len 'x'))

(* ------------------------------------------------------------------ *)
(* Cache hits are bit-identical to the compile that stored them *)

let test_cache_hit_equivalence () =
  let dir = temp_dir () in
  let c1 = Compiler.compile ~cache_dir:dir (weighted_cnn 5) in
  let c2 = Compiler.compile ~cache_dir:dir (weighted_cnn 5) in
  Alcotest.(check bool) "first compile misses" false (Compiler.from_cache c1);
  Alcotest.(check bool) "second compile hits" true (Compiler.from_cache c2);
  check_int "cold cache-misses" 1 (Trace.counter c1.Compiler.trace "cache-misses");
  check_int "warm cache-hits" 1 (Trace.counter c2.Compiler.trace "cache-hits");
  check_int "warm cache-misses" 0 (Trace.counter c2.Compiler.trace "cache-misses");
  (* the expensive passes never even open a span on a hit *)
  let select =
    List.find
      (fun n -> String.length n > 7 && String.sub n 0 7 = "select:")
      (Compiler.pass_names ~cache_dir:dir c2.Compiler.config)
  in
  Alcotest.(check bool) "build-costs ran cold" true
    (Trace.find c1.Compiler.trace "build-costs" <> None);
  Alcotest.(check bool) "build-costs skipped warm" true
    (Trace.find c2.Compiler.trace "build-costs" = None);
  Alcotest.(check bool) "select skipped warm" true
    (Trace.find c2.Compiler.trace select = None);
  (* identical results, bit for bit *)
  Alcotest.(check (float 0.0)) "latency" (Compiler.latency_ms c1) (Compiler.latency_ms c2);
  Alcotest.(check (float 0.0)) "report cycles" c1.Compiler.report.Compiler.Graphcost.cycles
    c2.Compiler.report.Compiler.Graphcost.cycles;
  Alcotest.(check (array int)) "assignment" c1.Compiler.assignment c2.Compiler.assignment;
  (* and the cached compile runs: outputs match tensor for tensor *)
  let rng = Rng.create 42 in
  let input = T.random rng (Graph.node c1.Compiler.graph 0).Graph.out_shape in
  let inputs = [ (0, input) ] in
  let o1 = Runtime.run c1 ~inputs in
  let o2 = Runtime.run c2 ~inputs in
  check_int "same node count" (Array.length o1) (Array.length o2);
  Array.iteri
    (fun i t1 ->
      if not (T.equal_data t1 o2.(i)) then
        Alcotest.failf "node %d: cached compile's output differs" i)
    o1

(* ------------------------------------------------------------------ *)
(* Corruption: every damaged entry is a miss, never an error *)

let with_mangled_entry name mangle =
  let dir = temp_dir () in
  let c1 = Compiler.compile ~cache_dir:dir (weighted_cnn 7) in
  let path = only_entry dir in
  mangle path (read_file path);
  let c2 = Compiler.compile ~cache_dir:dir (weighted_cnn 7) in
  Alcotest.(check bool) (name ^ ": recompile is a miss") false (Compiler.from_cache c2);
  check_int (name ^ ": counted as a miss") 1
    (Trace.counter c2.Compiler.trace "cache-misses");
  Alcotest.(check (float 0.0))
    (name ^ ": recompile result unchanged")
    (Compiler.latency_ms c1) (Compiler.latency_ms c2);
  (* the recompile stored a fresh entry over the damaged one *)
  match Artifact.load ~path:(only_entry dir) () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: entry not repaired after recompile: %s" name e

(* An ablated compile and a full compile of the same graph through the
   same cache must never serve each other's artifacts. *)
let test_disabled_passes_do_not_share_entries () =
  let dir = temp_dir () in
  let g = weighted_cnn 9 in
  let ablated = Compiler.compile ~cache_dir:dir ~disable:[ "fuse-activations" ] g in
  let full = Compiler.compile ~cache_dir:dir g in
  Alcotest.(check bool) "ablated cold compile misses" false (Compiler.from_cache ablated);
  Alcotest.(check bool) "full compile does not hit the ablated entry" false
    (Compiler.from_cache full);
  Alcotest.(check bool) "fusion made the two graphs differ" true
    (Graph.size ablated.Compiler.graph > Graph.size full.Compiler.graph);
  let ablated2 = Compiler.compile ~cache_dir:dir ~disable:[ "fuse-activations" ] g in
  let full2 = Compiler.compile ~cache_dir:dir g in
  Alcotest.(check bool) "ablated warm compile hits" true (Compiler.from_cache ablated2);
  Alcotest.(check bool) "full warm compile hits" true (Compiler.from_cache full2);
  check_int "ablated hit returns the unfused graph"
    (Graph.size ablated.Compiler.graph)
    (Graph.size ablated2.Compiler.graph);
  check_int "full hit returns the fused graph"
    (Graph.size full.Compiler.graph)
    (Graph.size full2.Compiler.graph);
  Alcotest.(check (float 0.0)) "ablated latency preserved"
    (Compiler.latency_ms ablated) (Compiler.latency_ms ablated2);
  Alcotest.(check (float 0.0)) "full latency preserved" (Compiler.latency_ms full)
    (Compiler.latency_ms full2)

(* [jobs] is deliberately excluded from the request fingerprint: the
   worker count of plan enumeration cannot change the artifact, so a
   sequential compile's entry must serve a parallel compile verbatim
   (and vice versa).  Guards against someone "helpfully" adding jobs to
   Fingerprint.request and silently splitting the cache per machine. *)
let test_jobs_share_cache_entries () =
  let dir = temp_dir () in
  let g = weighted_cnn 11 in
  let seq = Compiler.compile ~cache_dir:dir ~jobs:1 g in
  Alcotest.(check bool) "jobs:1 cold compile misses" false (Compiler.from_cache seq);
  let par = Compiler.compile ~cache_dir:dir ~jobs:4 g in
  Alcotest.(check bool) "jobs:4 hits the jobs:1 entry" true (Compiler.from_cache par);
  check_int "still exactly one entry" 1
    (Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".gcd2art")
    |> List.length);
  Alcotest.(check (float 0.0))
    "identical latency" (Compiler.latency_ms seq) (Compiler.latency_ms par);
  Alcotest.(check (array int)) "identical assignment" seq.Compiler.assignment
    par.Compiler.assignment

(* Any failure to read an entry must surface as [Error], never as an
   exception: here the entry path is a directory, so the open succeeds
   and the read itself fails. *)
let test_load_never_raises () =
  let dir = temp_dir () in
  (match Artifact.load ~path:dir () with
  | Ok _ -> Alcotest.fail "loading a directory succeeded"
  | Error _ -> ());
  match Artifact.load ~path:(Filename.concat dir "absent.gcd2art") () with
  | Ok _ -> Alcotest.fail "loading a missing file succeeded"
  | Error _ -> ()

let test_corrupt_entries_are_misses () =
  with_mangled_entry "truncated" (fun path raw ->
      write_file path (String.sub raw 0 (String.length raw / 2)));
  with_mangled_entry "bit-flipped payload" (fun path raw ->
      let b = Bytes.of_string raw in
      let i = Bytes.length b - 1 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      write_file path (Bytes.to_string b));
  with_mangled_entry "future format version" (fun path raw ->
      let b = Bytes.of_string raw in
      Bytes.set b 11 '\xff';
      write_file path (Bytes.to_string b));
  with_mangled_entry "garbage file" (fun path _ -> write_file path "not an artifact")

(* A damaged entry is quarantined — renamed aside, never deleted — so
   the poisoned bytes survive for post-mortem while the recompile's
   fresh store self-heals the cache. *)
let test_quarantine_self_heals () =
  let dir = temp_dir () in
  let c1 = Compiler.compile ~cache_dir:dir (weighted_cnn 13) in
  let path = only_entry dir in
  write_file path "not an artifact";
  let c2 = Compiler.compile ~cache_dir:dir (weighted_cnn 13) in
  Alcotest.(check bool) "recompile is a miss" false (Compiler.from_cache c2);
  check_int "quarantine counted" 1 (Trace.counter c2.Compiler.trace "cache-quarantined");
  Alcotest.(check string) "poisoned bytes preserved under .bad" "not an artifact"
    (read_file (path ^ ".bad"));
  (match Artifact.load ~path () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "entry not self-healed: %s" e);
  let c3 = Compiler.compile ~cache_dir:dir (weighted_cnn 13) in
  Alcotest.(check bool) "healed entry hits" true (Compiler.from_cache c3);
  check_int "clean lookups do not quarantine" 0
    (Trace.counter c3.Compiler.trace "cache-quarantined");
  Alcotest.(check (float 0.0)) "healed entry serves the original bits"
    (Compiler.latency_ms c1) (Compiler.latency_ms c3)

(* [Artifact.save] promises that a failing store never litters the
   cache directory: an injected cache-write fault between the temp-file
   write and the atomic rename must remove the temp file on the way
   out. *)
let test_save_fault_leaves_no_debris () =
  let module Fault = Gcd2_util.Fault in
  let primer = temp_dir () in
  let dir = temp_dir () in
  let _ = Compiler.compile ~cache_dir:primer (weighted_cnn 15) in
  let art =
    match Artifact.load ~path:(only_entry primer) () with
    | Ok (art, _) -> art
    | Error e -> Alcotest.failf "primer artifact unreadable: %s" e
  in
  let path = Filename.concat dir (art.Artifact.digest ^ ".gcd2art") in
  Fault.with_spec (Fault.parse_exn "seed=1,cache-write=1") (fun () ->
      match Artifact.save ~path art with
      | _ -> Alcotest.fail "save under a certain cache-write fault succeeded"
      | exception Fault.Injected { point = "cache-write"; _ } -> ());
  Alcotest.(check (array string)) "failed save left the directory empty" [||]
    (Sys.readdir dir);
  (* the same save succeeds once the fault is gone, bit-identically *)
  let _ = Artifact.save ~path art in
  match Artifact.load ~expect_digest:art.Artifact.digest ~path () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-fault save does not round-trip: %s" e

(* ------------------------------------------------------------------ *)
(* Every zoo model round-trips bit-identically and re-serves from cache *)

let test_zoo_roundtrip () =
  let dir = temp_dir () in
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.build () in
      let cold = Compiler.compile ~cache_dir:dir g in
      let digest = Compiler.fingerprint cold.Compiler.config (e.Zoo.build ()) in
      let path = Filename.concat dir (digest ^ ".gcd2art") in
      let raw = read_file path in
      let art =
        match Artifact.load ~expect_digest:digest ~path () with
        | Ok (art, _) -> art
        | Error err -> Alcotest.failf "%s: load failed: %s" e.Zoo.name err
      in
      Alcotest.(check string)
        (e.Zoo.name ^ ": save -> load -> to_bytes is bit-identical")
        (Stdlib.Digest.to_hex (Stdlib.Digest.string raw))
        (Stdlib.Digest.to_hex (Stdlib.Digest.bytes (Artifact.to_bytes art)));
      let warm = Compiler.compile ~cache_dir:dir (e.Zoo.build ()) in
      Alcotest.(check bool) (e.Zoo.name ^ ": warm compile hits") true
        (Compiler.from_cache warm);
      Alcotest.(check (float 0.0))
        (e.Zoo.name ^ ": warm latency identical")
        (Compiler.latency_ms cold) (Compiler.latency_ms warm);
      Alcotest.(check (array int))
        (e.Zoo.name ^ ": warm assignment identical")
        cold.Compiler.assignment warm.Compiler.assignment)
    Zoo.all

(* ------------------------------------------------------------------ *)
(* Shape bucketing: sequence lengths in one bucket build the same padded
   graph, so the fingerprint — and thus the artifact entry — is shared;
   a never-exactly-compiled length in a compiled bucket is a warm hit. *)

let test_bucketed_entries_shared () =
  check_int "bucket clamps to the model maximum" 256 (Zoo.bucket ~max_seq:256 300);
  check_int "bucket floor" 16 (Zoo.bucket ~max_seq:256 3);
  let dir = temp_dir () in
  let entries () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".gcd2art")
    |> List.length
  in
  let compile seq = Compiler.compile ~cache_dir:dir (Zoo.build ~seq "TinyBERT") in
  let a = compile 20 in
  check_int "first length compiles one entry" 1 (entries ());
  (* seq=24 was never compiled, but its bucket (32) was *)
  let b = compile 24 in
  check_int "same bucket shares the entry" 1 (entries ());
  Alcotest.(check bool) "bucket mate is a cache hit" true (Compiler.from_cache b);
  Alcotest.(check (array int))
    "bucket mate serves the stored assignment" a.Compiler.assignment
    b.Compiler.assignment;
  let c = compile 40 in
  check_int "another bucket compiles its own entry" 2 (entries ());
  Alcotest.(check bool) "other bucket is cold" false (Compiler.from_cache c)

(* ------------------------------------------------------------------ *)
(* Janitor: debris sweep, quarantine age-out, LRU budget, lease immunity *)

module Janitor = Gcd2_store.Janitor
module Lease = Gcd2_store.Lease

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Backdate a file so age gates and LRU ordering are deterministic. *)
let backdate path ~by_s =
  let t = Unix.gettimeofday () -. by_s in
  Unix.utimes path t t

let entry_names dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".gcd2art")
  |> List.sort compare

(* Prime [n] distinct entries (seeds 1..n) and return their digests
   oldest-first: the entry of seed [i] is backdated by [(n-i)*100] s. *)
let prime_entries dir n =
  List.init n (fun i ->
      let seed = i + 1 in
      let before = entry_names dir in
      ignore (Compiler.compile ~cache_dir:dir (weighted_cnn seed));
      match List.filter (fun f -> not (List.mem f before)) (entry_names dir) with
      | [ f ] ->
        backdate (Filename.concat dir f) ~by_s:(float_of_int ((n - i) * 100));
        Filename.chop_suffix f ".gcd2art"
      | fs -> Alcotest.failf "expected one new entry for seed %d, got %d" seed (List.length fs))

let test_janitor_sweeps_debris () =
  with_dir @@ fun dir ->
  let plant name ~age =
    let p = Filename.concat dir name in
    write_file p "debris";
    backdate p ~by_s:age
  in
  plant "gcd2art-old-write.tmp" ~age:1000.0;
  plant "gcd2art-live-write.tmp" ~age:1.0;
  plant "old-entry.gcd2art.bad" ~age:1000.0;
  plant "fresh-entry.gcd2art.bad" ~age:1.0;
  write_file (Filename.concat dir "deadkey.lease") "pid=999999999 stamp=0.0\n";
  let cfg = { Janitor.default with Janitor.tmp_max_age_s = 60.0; bad_max_age_s = 60.0 } in
  let r = Janitor.sweep ~dir cfg in
  check_int "one tmp removed" 1 r.Janitor.tmp_removed;
  check_int "one bad removed" 1 r.Janitor.bad_removed;
  check_int "dead-pid lease broken" 1 r.Janitor.leases_broken;
  check_int "no errors" 0 r.Janitor.errors;
  let left = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check (list string))
    "young debris and fresh quarantine survive"
    [ "fresh-entry.gcd2art.bad"; "gcd2art-live-write.tmp" ]
    left;
  (* a second sweep over the clean directory is a no-op *)
  let r2 = Janitor.sweep ~dir cfg in
  check_int "idempotent: nothing more to remove" 0
    (r2.Janitor.tmp_removed + r2.Janitor.bad_removed + r2.Janitor.leases_broken)

let test_janitor_lru_eviction () =
  with_dir @@ fun dir ->
  match prime_entries dir 3 with
  | [ oldest; middle; newest ] ->
    let size d = (Unix.stat (Filename.concat dir (d ^ ".gcd2art"))).Unix.st_size in
    let oldest_bytes = size oldest in
    (* budget fits exactly the two newest entries *)
    let cfg = { Janitor.default with Janitor.max_bytes = Some (size middle + size newest) } in
    let r = Janitor.sweep ~dir cfg in
    check_int "oldest entry evicted first" 1 r.Janitor.evicted;
    check_int "evicted bytes accounted" oldest_bytes r.Janitor.evicted_bytes;
    check_int "surviving entries" 2 r.Janitor.entries;
    Alcotest.(check (list string))
      "LRU order: oldest gone, newer two intact"
      (List.sort compare [ middle ^ ".gcd2art"; newest ^ ".gcd2art" ])
      (entry_names dir)
  | ds -> Alcotest.failf "expected 3 primed entries, got %d" (List.length ds)

let test_janitor_never_evicts_leased () =
  with_dir @@ fun dir ->
  match prime_entries dir 2 with
  | [ oldest; newest ] ->
    (* the LRU victim is protected by a live lease, so the janitor must
       evict the *younger* entry instead to meet the budget *)
    let lease =
      match Lease.acquire ~dir oldest with
      | Ok l -> l
      | Error _ -> Alcotest.fail "acquire on a fresh dir failed"
    in
    Fun.protect ~finally:(fun () -> Lease.release lease) @@ fun () ->
    let size d = (Unix.stat (Filename.concat dir (d ^ ".gcd2art"))).Unix.st_size in
    let cfg = { Janitor.default with Janitor.max_bytes = Some (size oldest) } in
    let r = Janitor.sweep ~dir cfg in
    check_int "leased victim skipped" 1 r.Janitor.skipped_leased;
    check_int "younger entry evicted instead" 1 r.Janitor.evicted;
    Alcotest.(check (list string))
      "leased entry survives eviction" [ oldest ^ ".gcd2art" ] (entry_names dir);
    check_bool "lease file intact" true
      (Sys.file_exists (Lease.path ~dir oldest));
    check_int "newest gone" (size oldest) r.Janitor.bytes;
    ignore newest
  | ds -> Alcotest.failf "expected 2 primed entries, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)
(* Leases: exclusivity, staleness by dead pid and by ttl, safe breaking *)

let test_lease_lifecycle () =
  with_dir @@ fun dir ->
  let digest = "aaaa1111" in
  let l =
    match Lease.acquire ~dir digest with
    | Ok l -> l
    | Error _ -> Alcotest.fail "first acquire failed"
  in
  (match Lease.acquire ~dir digest with
  | Error `Held -> ()
  | Ok _ -> Alcotest.fail "second acquire won a held lease"
  | Error (`Io e) -> Alcotest.failf "io error: %s" e);
  (match Lease.state ~dir digest with
  | Lease.Held pid -> check_int "held by us" (Unix.getpid ()) pid
  | _ -> Alcotest.fail "held lease not reported Held");
  check_bool "refresh while held" true (Lease.refresh l);
  Lease.release l;
  check_bool "release removes the file" false (Sys.file_exists (Lease.path ~dir digest));
  (match Lease.state ~dir digest with
  | Lease.Free -> ()
  | _ -> Alcotest.fail "released lease not Free");
  (match Lease.acquire ~dir digest with
  | Ok l2 -> Lease.release l2
  | Error _ -> Alcotest.fail "re-acquire after release failed")

(* A pid that is certainly dead: far above the kernel's pid_max, so
   [kill pid 0] is ESRCH.  (Forking a real corpse would be cleaner but
   Unix.fork is off-limits once any test has spawned a domain.) *)
let dead_pid () = 999_999_999

let test_lease_stale_dead_owner () =
  with_dir @@ fun dir ->
  let digest = "bbbb2222" in
  let corpse = dead_pid () in
  (match Lease.acquire ~owner:corpse ~dir digest with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "acquire as the doomed owner failed");
  (* the owner is gone: stale immediately, no ttl wait *)
  (match Lease.state ~dir digest with
  | Lease.Stale (Some pid) -> check_int "stale reports the dead pid" corpse pid
  | _ -> Alcotest.fail "dead-owner lease not Stale");
  check_bool "break frees the key" true (Lease.break ~dir digest);
  check_bool "second break finds nothing" false (Lease.break ~dir digest);
  (match Lease.acquire ~dir digest with
  | Ok l -> Lease.release l
  | Error _ -> Alcotest.fail "acquire after break failed")

let test_lease_stale_by_ttl () =
  with_dir @@ fun dir ->
  let digest = "cccc3333" in
  (* live pid, ancient stamp: a wedged-but-alive owner *)
  write_file (Lease.path ~dir digest)
    (Printf.sprintf "pid=%d stamp=1.000000\n" (Unix.getpid ()));
  (match Lease.state ~ttl_s:5.0 ~dir digest with
  | Lease.Stale (Some _) -> ()
  | _ -> Alcotest.fail "expired stamp not Stale");
  (* garbled lease files are stale outright *)
  write_file (Lease.path ~dir digest) "not a lease";
  (match Lease.state ~dir digest with
  | Lease.Stale None -> ()
  | _ -> Alcotest.fail "garbled lease not Stale None");
  check_bool "garbled lease breaks" true (Lease.break ~dir digest)

(* Model-checked exclusivity: two "processes" (our pid and pid 1 —
   both alive forever) race acquire / release / expire / break on one
   digest.  The model tracks whether a lease file exists and who owns
   it; the property is that the real outcomes always agree — in
   particular acquire NEVER succeeds while a lease exists (two
   leaders), and a break-then-retake is detected by the old owner's
   refresh returning false. *)
let qcheck_lease_never_two_leaders =
  QCheck.Test.make ~name:"lease: concurrent acquire/break never admits two leaders"
    ~count:40
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 0 7))
  @@ fun ops ->
  with_dir @@ fun dir ->
  let digest = "qcheckkey" in
  let pids = [| Unix.getpid (); 1 |] in
  let handles = [| None; None |] in
  let model = ref None (* Some who, while a lease file exists *) in
  let fail fmt = Printf.ksprintf (fun s -> QCheck.Test.fail_report s) fmt in
  List.iter
    (fun op ->
      let who = op mod 2 in
      match op / 2 with
      | 0 -> (
        (* acquire *)
        match Lease.acquire ~owner:pids.(who) ~dir digest with
        | Ok l ->
          if !model <> None then fail "acquire succeeded over an existing lease";
          handles.(who) <- Some l;
          model := Some who
        | Error `Held -> if !model = None then fail "acquire failed on a free key"
        | Error (`Io e) -> fail "io error: %s" e)
      | 1 -> (
        (* release: only the owner's release may free the key *)
        match handles.(who) with
        | Some l ->
          Lease.release l;
          handles.(who) <- None;
          if !model = Some who then model := None
        | None -> ())
      | 2 ->
        (* expire: backdate the stamp, owner unchanged *)
        (match !model with
        | Some holder ->
          write_file (Lease.path ~dir digest)
            (Printf.sprintf "pid=%d stamp=1.000000\n" pids.(holder))
        | None -> ())
      | _ -> (
        (* break, only when observably stale (the module's contract) *)
        match Lease.state ~ttl_s:3600.0 ~dir digest with
        | Lease.Stale _ ->
          if Lease.break ~owner:pids.(who) ~dir digest then begin
            (match !model with
            | Some old when old <> who -> (
              (* the deposed owner must learn it lost: refresh false *)
              match handles.(old) with
              | Some l ->
                if Lease.refresh l then fail "deposed owner still refreshes";
                handles.(old) <- None
              | None -> ())
            | _ -> ());
            model := None
          end
        | Lease.Held _ | Lease.Free -> ()))
    ops;
  (* final agreement: file exists iff the model says someone holds it *)
  if Sys.file_exists (Lease.path ~dir digest) <> (!model <> None) then
    fail "model and directory disagree at the end";
  true

let tests =
  [
    Alcotest.test_case "request fingerprint" `Quick test_fingerprint;
    Alcotest.test_case "devices never share cache entries" `Quick
      test_fingerprint_separates_devices;
    Alcotest.test_case "fingerprint: disable list and derived ops" `Quick
      test_fingerprint_disable_and_derived_ops;
    Alcotest.test_case "job counts share cache entries" `Quick
      test_jobs_share_cache_entries;
    Alcotest.test_case "disabled passes do not share entries" `Quick
      test_disabled_passes_do_not_share_entries;
    Alcotest.test_case "load never raises" `Quick test_load_never_raises;
    Alcotest.test_case "artifact round-trip is bit-identical" `Quick test_roundtrip_bytes;
    Alcotest.test_case "of_bytes rejects garbage" `Quick test_of_bytes_rejects_garbage;
    Alcotest.test_case "cache hit equals cold compile" `Quick test_cache_hit_equivalence;
    Alcotest.test_case "corrupt entries are misses" `Quick test_corrupt_entries_are_misses;
    Alcotest.test_case "quarantine preserves and self-heals" `Quick
      test_quarantine_self_heals;
    Alcotest.test_case "failing saves leave no temp debris" `Quick
      test_save_fault_leaves_no_debris;
    Alcotest.test_case "bucketed sequence lengths share entries" `Quick
      test_bucketed_entries_shared;
    Alcotest.test_case "janitor sweeps debris, quarantine and stale leases" `Quick
      test_janitor_sweeps_debris;
    Alcotest.test_case "janitor evicts LRU down to the byte budget" `Quick
      test_janitor_lru_eviction;
    Alcotest.test_case "janitor never evicts a leased entry" `Quick
      test_janitor_never_evicts_leased;
    Alcotest.test_case "lease lifecycle: exclusive, released, retaken" `Quick
      test_lease_lifecycle;
    Alcotest.test_case "lease of a dead owner is stale and breakable" `Quick
      test_lease_stale_dead_owner;
    Alcotest.test_case "lease staleness by ttl and garbling" `Quick
      test_lease_stale_by_ttl;
    QCheck_alcotest.to_alcotest qcheck_lease_never_two_leaders;
    Alcotest.test_case "zoo artifacts round-trip" `Slow test_zoo_roundtrip;
  ]
