(* Tests for Gcd2_sched: IDG construction, critical path, the SDA packer
   (paper Algorithm 1) and its ablations, schedule validity (including
   property-based tests over random basic blocks). *)

open Gcd2_isa
open Gcd2_sched

let r n = Reg.R n
let v n = Reg.V n
let p n = Reg.P n
let addr base offset = { Instr.base; offset }

(* A block in the spirit of the paper's Figure 5: 2-D elementwise addition
   R = A + B + C.  Loads, widening adds, narrowing, store, plus scalar
   pointer bumps. *)
let fig5_block () =
  [|
    Instr.Vload (v 0, addr (r 0) 0);
    Instr.Vload (v 1, addr (r 1) 0);
    Instr.Vload (v 2, addr (r 2) 0);
    Instr.Valu (Instr.Vadd, Instr.W8, v 3, v 0, v 1);
    Instr.Valu (Instr.Vadd, Instr.W8, v 4, v 3, v 2);
    Instr.Vstore (addr (r 3) 0, v 4);
    Instr.Salu (Instr.Add, r 0, r 0, Instr.Imm 128);
    Instr.Salu (Instr.Add, r 1, r 1, Instr.Imm 128);
    Instr.Salu (Instr.Add, r 2, r 2, Instr.Imm 128);
    Instr.Salu (Instr.Add, r 3, r 3, Instr.Imm 128);
  |]

let test_idg_structure () =
  let idg = Idg.build (fig5_block ()) in
  (* the first vadd depends on loads 0 and 1 *)
  Alcotest.(check bool) "vadd depends on load0" true (List.mem_assoc 0 idg.Idg.pred.(3));
  Alcotest.(check bool) "vadd depends on load1" true (List.mem_assoc 1 idg.Idg.pred.(3));
  Alcotest.(check bool) "vadd independent of load2" false (List.mem_assoc 2 idg.Idg.pred.(3));
  (* order: loads at 0, first vadd at 1, second at 2, store at 3 *)
  Alcotest.(check int) "load order" 0 idg.Idg.order.(0);
  Alcotest.(check int) "first vadd order" 1 idg.Idg.order.(3);
  Alcotest.(check int) "second vadd order" 2 idg.Idg.order.(4);
  Alcotest.(check int) "store order" 3 idg.Idg.order.(5);
  (* ancestors of the store: loads 0,1,2 + two vadds = 5 *)
  Alcotest.(check int) "store ancestors" 5 idg.Idg.ancestors.(5)

let test_critical_path () =
  let instrs = fig5_block () in
  let idg = Idg.build instrs in
  let alive = Array.make (Array.length instrs) true in
  let path = Idg.critical_path idg alive in
  (* The heaviest chain is load -> vadd -> vadd -> store -> pointer bump
     (the last hop is the WAR edge from the store to the bump of its base
     register). *)
  Alcotest.(check int) "path length" 5 (List.length path);
  (match List.rev path with
  | last :: _ -> Alcotest.(check int) "path ends at the r3 bump" 9 last
  | [] -> Alcotest.fail "empty path")

let all_strategies =
  [
    ("sda", Packer.sda);
    ("soft_to_hard", Packer.Soft_to_hard);
    ("soft_to_none", Packer.Soft_to_none);
    ("list_topdown", Packer.List_topdown);
    ("in_order", Packer.In_order);
  ]

let test_all_strategies_valid () =
  let instrs = fig5_block () in
  List.iter
    (fun (name, strategy) ->
      let packets = Packer.pack_indices strategy instrs in
      match Verify.check instrs packets with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %a" name Verify.pp_error e)
    all_strategies

let cycles_of strategy instrs = Packer.block_cycles (Packer.pack strategy instrs)

let test_sda_beats_soft_to_hard () =
  let instrs = fig5_block () in
  let sda = cycles_of (Packer.sda) instrs in
  let hard = cycles_of Packer.Soft_to_hard instrs in
  if sda > hard then Alcotest.failf "SDA %d cycles > soft_to_hard %d cycles" sda hard;
  let sda_packets = List.length (Packer.pack (Packer.sda) instrs) in
  let hard_packets = List.length (Packer.pack Packer.Soft_to_hard instrs) in
  if sda_packets > hard_packets then
    Alcotest.failf "SDA %d packets > soft_to_hard %d packets" sda_packets hard_packets

let test_sda_beats_soft_to_none () =
  (* Build a block where ignoring penalties hurts: long soft chains plus
     independent work that SDA prefers to interleave. *)
  let instrs =
    [|
      Instr.Sload (r 1, addr (r 0) 0);
      Instr.Salu (Instr.Add, r 2, r 1, Instr.Imm 1);
      Instr.Salu (Instr.Add, r 3, r 2, Instr.Imm 1);
      Instr.Sload (r 4, addr (r 0) 8);
      Instr.Salu (Instr.Add, r 5, r 4, Instr.Imm 1);
      Instr.Salu (Instr.Add, r 6, r 5, Instr.Imm 1);
      Instr.Sload (r 7, addr (r 0) 16);
      Instr.Salu (Instr.Add, r 8, r 7, Instr.Imm 1);
      Instr.Salu (Instr.Add, r 9, r 8, Instr.Imm 1);
      Instr.Sstore (addr (r 10) 0, r 3);
      Instr.Sstore (addr (r 10) 4, r 6);
      Instr.Sstore (addr (r 10) 8, r 9);
    |]
  in
  let sda = cycles_of (Packer.sda) instrs in
  let none = cycles_of Packer.Soft_to_none instrs in
  if sda > none then Alcotest.failf "SDA %d cycles > soft_to_none %d cycles" sda none

let test_single_instruction () =
  let instrs = [| Instr.Smovi (r 1, 42) |] in
  List.iter
    (fun (name, strategy) ->
      let packets = Packer.pack strategy instrs in
      Alcotest.(check int) (name ^ ": one packet") 1 (List.length packets))
    all_strategies

let test_empty_block () =
  List.iter
    (fun (_, strategy) ->
      Alcotest.(check int) "no packets" 0 (List.length (Packer.pack strategy [||])))
    all_strategies

let test_packets_bounded () =
  let instrs = fig5_block () in
  List.iter
    (fun (name, strategy) ->
      List.iter
        (fun packet ->
          if List.length packet > Packet.max_size then
            Alcotest.failf "%s produced an oversized packet" name)
        (Packer.pack strategy instrs))
    all_strategies

(* ------------------------------------------------------------------ *)
(* Property tests: random straight-line blocks.                        *)

let gen_instr =
  let open QCheck.Gen in
  let reg = map (fun n -> r n) (int_range 0 7) in
  let vec = map (fun n -> v n) (int_range 0 7) in
  let pair = map (fun n -> p n) (int_range 0 3) in
  let ad = map2 (fun b o -> addr b (o * 4)) (map (fun n -> r (8 + n)) (int_range 0 3)) (int_range 0 15) in
  frequency
    [
      (3, map2 (fun d a -> Instr.Sload (d, a)) reg ad);
      (2, map2 (fun a s -> Instr.Sstore (a, s)) ad reg);
      (4, map3 (fun d s i -> Instr.Salu (Instr.Add, d, s, Instr.Imm i)) reg reg (int_range 0 100));
      (2, map3 (fun d a b -> Instr.Valu (Instr.Vadd, Instr.W8, d, a, b)) vec vec vec);
      (2, map2 (fun d a -> Instr.Vload (d, a)) vec ad);
      (2, map2 (fun a s -> Instr.Vstore (a, s)) ad vec);
      (2, map3 (fun d s t -> Instr.Vmpy (d, s, t)) pair vec reg);
      (1, map3 (fun d s t -> Instr.Vrmpy (d, s, t)) vec vec reg);
      (1, map2 (fun d s -> Instr.Vpack (d, s, Instr.W16)) vec pair);
      (1, map2 (fun d s -> Instr.Vshuff (d, s, Instr.W16)) pair pair);
    ]

let gen_block = QCheck.Gen.(map Array.of_list (list_size (int_range 1 40) gen_instr))

let arbitrary_block =
  QCheck.make gen_block ~print:(fun b ->
      String.concat "\n" (Array.to_list (Array.map Instr.to_string b)))

let prop_schedules_valid strategy name =
  QCheck.Test.make ~name:(Fmt.str "%s schedules are valid" name) ~count:100 arbitrary_block
    (fun instrs ->
      match Verify.check instrs (Packer.pack_indices strategy instrs) with
      | Ok () -> true
      | Error _ -> false)

(* The incremental packer must be an exact drop-in for the original
   O(n)-rescan implementation it replaced: same packet-index lists (so
   same order, same tie-breaks) and same cycle counts, on every strategy.
   This is what lets the compile-time optimization claim bit-identical
   schedules. *)
let prop_incremental_matches_reference =
  QCheck.Test.make ~name:"incremental packer = reference packer" ~count:100
    arbitrary_block (fun instrs ->
      List.for_all
        (fun (name, strategy) ->
          let fast = Packer.pack_indices strategy instrs in
          let ref_ = Packer.pack_indices_reference strategy instrs in
          if fast <> ref_ then
            QCheck.Test.fail_reportf "%s: packets differ@.fast %a@.ref  %a" name
              Fmt.(Dump.list (Dump.list int))
              fast
              Fmt.(Dump.list (Dump.list int))
              ref_
          else
            Packer.block_cycles (Packer.pack strategy instrs)
            = Packer.block_cycles (Packer.pack_reference strategy instrs))
        all_strategies)

let prop_packing_never_slower_than_sequential =
  QCheck.Test.make ~name:"packed cycles never exceed fully sequential" ~count:100
    arbitrary_block (fun instrs ->
      let sequential =
        Array.fold_left (fun a i -> a + Packet.cycles [ i ]) 0 instrs
      in
      List.for_all
        (fun (_, strategy) -> Packer.block_cycles (Packer.pack strategy instrs) <= sequential)
        all_strategies)

let tests =
  [
    Alcotest.test_case "idg structure" `Quick test_idg_structure;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "all strategies produce valid schedules" `Quick test_all_strategies_valid;
    Alcotest.test_case "sda no worse than soft_to_hard" `Quick test_sda_beats_soft_to_hard;
    Alcotest.test_case "sda no worse than soft_to_none" `Quick test_sda_beats_soft_to_none;
    Alcotest.test_case "single instruction" `Quick test_single_instruction;
    Alcotest.test_case "empty block" `Quick test_empty_block;
    Alcotest.test_case "packet size bounded" `Quick test_packets_bounded;
    QCheck_alcotest.to_alcotest (prop_schedules_valid (Packer.sda) "sda");
    QCheck_alcotest.to_alcotest (prop_schedules_valid Packer.Soft_to_hard "soft_to_hard");
    QCheck_alcotest.to_alcotest (prop_schedules_valid Packer.Soft_to_none "soft_to_none");
    QCheck_alcotest.to_alcotest (prop_schedules_valid Packer.List_topdown "list_topdown");
    QCheck_alcotest.to_alcotest (prop_schedules_valid Packer.In_order "in_order");
    QCheck_alcotest.to_alcotest prop_incremental_matches_reference;
    QCheck_alcotest.to_alcotest prop_packing_never_slower_than_sequential;
  ]

(* ------------------------------------------------------------------ *)
(* Semantic equivalence: packing must preserve machine state.          *)

module Machine = Gcd2_vm.Machine

(* Execute a block on a fresh machine (random-but-fixed memory, base
   registers pointing at disjoint regions) and fingerprint the result. *)
let execute_block packets =
  let m = Machine.create ~mem_bytes:8192 () in
  (* deterministic memory contents *)
  let rng = Gcd2_util.Rng.create 99 in
  Machine.write_i8_array m ~addr:0
    (Array.init 8192 (fun _ -> Gcd2_util.Rng.int8 rng));
  (* address bases used by the generator (r8..r11) *)
  List.iteri (fun i b -> Machine.set_sreg m (r (8 + i)) b) [ 2048; 3072; 4096; 5120 ];
  Machine.run m (Program.make "prop" [ Program.Block packets ]);
  let scalars = List.init 12 (fun i -> Machine.get_sreg m (r i)) in
  let vectors =
    List.init 8 (fun i ->
        List.init 16 (fun l -> Machine.get_lane m (v i) ~width:Instr.W8 (l * 8)))
  in
  let mem = Machine.read_i8_array m ~addr:0 ~len:8192 in
  (scalars, vectors, mem)

let prop_packing_preserves_semantics =
  QCheck.Test.make ~name:"packed execution = sequential execution" ~count:60
    arbitrary_block (fun instrs ->
      let sequential = List.map (fun i -> [ i ]) (Array.to_list instrs) in
      let want = execute_block sequential in
      List.for_all
        (fun (_, strategy) -> execute_block (Packer.pack strategy instrs) = want)
        all_strategies)

let tests = tests @ [ QCheck_alcotest.to_alcotest prop_packing_preserves_semantics ]
