(* Tests for Gcd2_util: saturating arithmetic, requantization, RNG, stats. *)

open Gcd2_util

let check_int = Alcotest.(check int)

let test_sat_bounds () =
  check_int "sat8 clamps high" 127 (Saturate.sat8 1000);
  check_int "sat8 clamps low" (-128) (Saturate.sat8 (-1000));
  check_int "sat8 passes through" 5 (Saturate.sat8 5);
  check_int "sat16 clamps high" 32767 (Saturate.sat16 100000);
  check_int "sat16 clamps low" (-32768) (Saturate.sat16 (-100000));
  check_int "sat32 clamps high" 0x7fffffff (Saturate.sat32 (1 lsl 40));
  check_int "sat32 clamps low" (-0x80000000) (Saturate.sat32 (-(1 lsl 40)))

let test_wrap32 () =
  check_int "wrap32 positive overflow" (-0x80000000) (Saturate.wrap32 0x80000000);
  check_int "wrap32 identity" 42 (Saturate.wrap32 42);
  check_int "wrap32 negative" (-1) (Saturate.wrap32 0xffffffff)

let test_sign_extend () =
  check_int "8-bit negative" (-1) (Saturate.sign_extend ~bits:8 0xff);
  check_int "8-bit positive" 127 (Saturate.sign_extend ~bits:8 0x7f);
  check_int "16-bit negative" (-2) (Saturate.sign_extend ~bits:16 0xfffe)

let test_rounding_shift () =
  check_int "rounds up at half" 2 (Saturate.rounding_shift_right 3 1);
  check_int "rounds down below half" 1 (Saturate.rounding_shift_right 5 2);
  check_int "symmetric for negatives" (-2) (Saturate.rounding_shift_right (-3) 1);
  check_int "shift by zero" 7 (Saturate.rounding_shift_right 7 0)

let test_quantize_multiplier () =
  (* apply_multiplier (quantize_multiplier s) must approximate x * s. *)
  List.iter
    (fun s ->
      let mult, shift = Saturate.quantize_multiplier s in
      List.iter
        (fun x ->
          let got = Saturate.apply_multiplier x (mult, shift) in
          let want = Float.round (float_of_int x *. s) in
          let err = abs (got - int_of_float want) in
          if err > 1 then
            Alcotest.failf "scale %.6f x %d: got %d want %.0f" s x got want)
        [ 0; 1; -1; 100; -100; 12345; -54321; 1000000 ])
    [ 0.5; 0.25; 0.1; 0.0123; 0.9; 0.003; 0.7071 ]

let test_requantize () =
  let mult, shift = Saturate.quantize_multiplier 0.05 in
  check_int "requantize saturates" 127
    (Saturate.requantize 1_000_000 ~mult ~shift ~zero:0);
  check_int "requantize zero point" 3 (Saturate.requantize 60 ~mult ~shift ~zero:0)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same seeds agree" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_int8_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int8 r in
    if v < -127 || v > 127 then Alcotest.failf "int8 out of range: %d" v
  done

let test_stats () =
  Alcotest.(check (float 1e-9)) "geomean of (2,8)" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_int "ceil_div exact" 3 (Stats.ceil_div 9 3);
  check_int "ceil_div rounds up" 4 (Stats.ceil_div 10 3);
  check_int "round_up" 128 (Stats.round_up 100 64)

(* Nearest-rank percentile: the smallest element with at least p% of the
   sample at or below it. *)
let test_percentile () =
  let checkf = Alcotest.(check (float 1e-9)) in
  checkf "empty sample" 0.0 (Stats.percentile 50.0 []);
  checkf "singleton p1" 7.0 (Stats.percentile 1.0 [ 7.0 ]);
  checkf "singleton p99" 7.0 (Stats.percentile 99.0 [ 7.0 ]);
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  checkf "sorts its input" 1.0 (Stats.percentile 10.0 xs);
  (* nearest rank over 5 elements: rank = ceil(p/100 * 5) *)
  checkf "p20 is the 1st of 5" 1.0 (Stats.percentile 20.0 xs);
  checkf "p21 is the 2nd of 5" 2.0 (Stats.percentile 21.0 xs);
  checkf "p50 of odd count is the middle" 3.0 (Stats.p50 xs);
  checkf "p100 is the max" 5.0 (Stats.percentile 100.0 xs);
  checkf "p0 clamps to the min" 1.0 (Stats.percentile 0.0 xs);
  let hundred = List.init 100 (fun i -> float_of_int (i + 1)) in
  checkf "p50 of 1..100" 50.0 (Stats.p50 hundred);
  checkf "p95 of 1..100" 95.0 (Stats.p95 hundred);
  checkf "p99 of 1..100" 99.0 (Stats.p99 hundred)

let qcheck_percentile_member =
  QCheck.Test.make ~name:"percentile is a member of the sample" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_bound_inclusive 1000.0))
        (float_bound_inclusive 100.0))
    (fun (xs, p) -> List.mem (Gcd2_util.Stats.percentile p xs) xs)

let qcheck_sat8 =
  QCheck.Test.make ~name:"sat8 stays in range" ~count:500
    QCheck.(int_range (-100000) 100000)
    (fun x ->
      let v = Gcd2_util.Saturate.sat8 x in
      v >= -128 && v <= 127 && (x < -128 || x > 127 || v = x))

let qcheck_rounding =
  QCheck.Test.make ~name:"rounding shift within 1 of float division" ~count:500
    QCheck.(pair (int_range (-1000000) 1000000) (int_range 0 16))
    (fun (x, n) ->
      let got = Saturate.rounding_shift_right x n in
      let want = Float.round (float_of_int x /. float_of_int (1 lsl n)) in
      abs_float (float_of_int got -. want) <= 0.5)

(* ------------------------------------------------------------------ *)
(* Memo tables *)

let test_memo_caches_and_counts () =
  let m : (int, int) Memo.t = Memo.create "test-square" in
  let calls = ref 0 in
  let square x =
    Memo.find_or_add m x (fun () ->
        incr calls;
        x * x)
  in
  Alcotest.(check int) "computes" 9 (square 3);
  Alcotest.(check int) "hits" 9 (square 3);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "distinct key computes" 16 (square 4);
  Alcotest.(check int) "two entries" 2 (Memo.size m);
  Memo.clear m;
  Alcotest.(check int) "cleared" 0 (Memo.size m);
  Alcotest.(check int) "recomputes after clear" 9 (square 3);
  Alcotest.(check int) "three computations total" 3 !calls

let test_memo_clear_all () =
  let a : (int, int) Memo.t = Memo.create "test-a" in
  let b : (int, int) Memo.t = Memo.create "test-b" in
  ignore (Memo.find_or_add a 1 (fun () -> 1));
  ignore (Memo.find_or_add b 2 (fun () -> 2));
  Memo.clear_all ();
  Alcotest.(check int) "a cleared" 0 (Memo.size a);
  Alcotest.(check int) "b cleared" 0 (Memo.size b)

let test_memo_parallel_domains () =
  let m : (int, int) Memo.t = Memo.create "test-parallel" in
  (* hammer one table from several domains: every read must be coherent
     (the benign compute race may duplicate work, never corrupt a value) *)
  let results =
    Pool.map_array ~jobs:4
      (fun i -> Memo.find_or_add m (i mod 7) (fun () -> (i mod 7) * 1000))
      (Array.init 200 (fun i -> i))
  in
  Array.iteri
    (fun i got -> Alcotest.(check int) (Fmt.str "slot %d" i) (i mod 7 * 1000) got)
    results;
  Alcotest.(check int) "7 unique keys" 7 (Memo.size m)

(* ------------------------------------------------------------------ *)
(* Domain pool *)

let test_pool_default_jobs () =
  Alcotest.(check bool) "positive" true (Pool.default_jobs () >= 1)

let test_pool_matches_sequential_map () =
  let arr = Array.init 57 (fun i -> i) in
  let f x = (x * x) + 1 in
  let seq = Array.map f arr in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Fmt.str "jobs:%d" jobs) seq
        (Pool.map_array ~jobs f arr))
    [ 1; 2; 3; 4; 8; 100 ]

let test_pool_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map_array ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "single" [| 7 |]
    (Pool.map_array ~jobs:4 (fun x -> x + 1) [| 6 |])

let test_pool_propagates_exception () =
  match
    Pool.map_array ~jobs:3
      (fun x -> if x = 5 then failwith "boom" else x)
      (Array.init 10 (fun i -> i))
  with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

let test_pool_merges_worker_traces () =
  let tr = Trace.create "parent" in
  Trace.with_ambient tr (fun () ->
      Trace.run_root tr (fun () ->
          ignore
            (Pool.map_array ~jobs:4
               (fun x ->
                 Trace.in_span "work" (fun () -> Trace.count "items" 1);
                 x)
               (Array.init 20 (fun i -> i)))));
  Alcotest.(check int) "worker counters absorbed" 20 (Trace.counter tr "items");
  Alcotest.(check int) "pool-tasks recorded" 20 (Trace.counter tr "pool-tasks");
  Alcotest.(check bool) "worker span tree merged" true
    (Trace.find tr "work" <> None)

(* ---------------- latency histograms (Stats.Hist) ---------------- *)

let test_hist_buckets () =
  let h = Stats.Hist.create () in
  Alcotest.(check int) "fresh hist is empty" 0 (Stats.Hist.count h);
  (* bucket_of is monotone in the value *)
  let values = [ 0.002; 0.01; 0.5; 1.0; 1.5; 10.0; 250.0; 9999.0 ] in
  let bs = List.map Stats.Hist.bucket_of values in
  List.iter2
    (fun a b -> Alcotest.(check bool) "bucket_of monotone" true (a <= b))
    (List.filteri (fun i _ -> i < List.length bs - 1) bs)
    (List.tl bs);
  (* the bucket floor never exceeds the value it buckets *)
  List.iter
    (fun v ->
      let f = Stats.Hist.bucket_floor (Stats.Hist.bucket_of v) in
      Alcotest.(check bool)
        (Printf.sprintf "floor %g <= %g" f v)
        true (f <= v))
    values;
  (* underflow and overflow land in the sentinel buckets *)
  Alcotest.(check int) "underflow bucket" 0 (Stats.Hist.bucket_of 1e-9);
  Alcotest.(check int) "overflow bucket"
    (Stats.Hist.buckets - 1)
    (Stats.Hist.bucket_of 1e9)

let test_hist_percentile_accuracy () =
  let h = Stats.Hist.create () in
  (* 1..1000 ms uniformly: exact p50 = 500, p95 = 950, p99 = 990 *)
  for i = 1 to 1000 do
    Stats.Hist.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Stats.Hist.count h);
  (* one log bucket spans a ratio of 2^(1/8) ~ 9.05%; the reported
     percentile is the bucket's lower edge, so it may sit up to one
     bucket ratio below the exact nearest-rank value and never above it *)
  let ratio = Float.pow 2.0 (1.0 /. 8.0) in
  List.iter
    (fun (p, exact) ->
      let got = Stats.Hist.percentile p h in
      Alcotest.(check bool)
        (Printf.sprintf "p%g %g within one bucket of %g" p got exact)
        true
        (got <= exact && got >= exact /. (ratio *. ratio)))
    [ (50.0, 500.); (95.0, 950.); (99.0, 990.) ]

let test_hist_merge () =
  let a = Stats.Hist.create () and b = Stats.Hist.create () in
  List.iter (Stats.Hist.add a) [ 1.0; 2.0; 400.0 ];
  List.iter (Stats.Hist.add b) [ 0.5; 2.0; 90000.0 ];
  let m = Stats.Hist.merge a b in
  Alcotest.(check int) "merged count" 6 (Stats.Hist.count m);
  Alcotest.(check (array int)) "merge is pointwise sum"
    (Array.map2 ( + ) (Stats.Hist.counts a) (Stats.Hist.counts b))
    (Stats.Hist.counts m);
  (* merge_into agrees with the pure merge *)
  let into = Stats.Hist.copy a in
  Stats.Hist.merge_into ~into b;
  Alcotest.(check (array int)) "merge_into = merge" (Stats.Hist.counts m)
    (Stats.Hist.counts into);
  (* the originals are untouched by the pure merge *)
  Alcotest.(check int) "a untouched" 3 (Stats.Hist.count a)

let hist_of_list l =
  let h = Stats.Hist.create () in
  List.iter (Stats.Hist.add h) l;
  h

let latency_list =
  (* latencies spanning the full bucket range, underflow and overflow
     included *)
  QCheck.(list_of_size Gen.(0 -- 40) (float_range 1e-6 5e6))

let qcheck_hist_merge_commutative =
  QCheck.Test.make ~name:"hist merge is commutative" ~count:200
    QCheck.(pair latency_list latency_list)
    (fun (xs, ys) ->
      let a = hist_of_list xs and b = hist_of_list ys in
      Stats.Hist.counts (Stats.Hist.merge a b)
      = Stats.Hist.counts (Stats.Hist.merge b a))

let qcheck_hist_merge_associative =
  QCheck.Test.make ~name:"hist merge is associative" ~count:200
    QCheck.(triple latency_list latency_list latency_list)
    (fun (xs, ys, zs) ->
      let a = hist_of_list xs and b = hist_of_list ys and c = hist_of_list zs in
      Stats.Hist.counts (Stats.Hist.merge (Stats.Hist.merge a b) c)
      = Stats.Hist.counts (Stats.Hist.merge a (Stats.Hist.merge b c)))

let qcheck_hist_merge_count =
  QCheck.Test.make ~name:"hist merge preserves total count" ~count:200
    QCheck.(pair latency_list latency_list)
    (fun (xs, ys) ->
      let a = hist_of_list xs and b = hist_of_list ys in
      Stats.Hist.count (Stats.Hist.merge a b)
      = List.length xs + List.length ys)

(* ---------------- deadlines are domain-local ---------------- *)

(* Regression for the serve daemon: two worker domains with staggered
   deadlines.  The domain whose deadline has expired must be the ONLY
   one cancelled — with process-global deadline state the generous
   domain would be cancelled by its neighbour's stale deadline. *)
let test_deadline_domain_local () =
  Alcotest.(check bool) "no ambient deadline in the parent" true
    (Deadline.get () = None);
  let expired_fired = Atomic.make false in
  let generous_survived = Atomic.make true in
  let tight =
    Domain.spawn (fun () ->
        Deadline.with_deadline
          (Some (Trace.now () -. 0.5))
          (fun () ->
            match
              for _ = 1 to 20 do
                Deadline.check ();
                Unix.sleepf 0.002
              done
            with
            | () -> ()
            | exception Deadline.Expired _ -> Atomic.set expired_fired true))
  in
  let generous =
    Domain.spawn (fun () ->
        Deadline.with_deadline
          (Some (Trace.now () +. 60.))
          (fun () ->
            try
              for _ = 1 to 20 do
                Deadline.check ();
                Unix.sleepf 0.002
              done
            with Deadline.Expired _ -> Atomic.set generous_survived false))
  in
  Domain.join tight;
  Domain.join generous;
  Alcotest.(check bool) "expired domain was cancelled" true
    (Atomic.get expired_fired);
  Alcotest.(check bool) "concurrent generous domain was not" true
    (Atomic.get generous_survived);
  (* a freshly spawned domain does not inherit the parent's deadline *)
  Deadline.with_deadline
    (Some (Trace.now () -. 1.0))
    (fun () ->
      let child_sees = Domain.spawn (fun () -> Deadline.get ()) in
      Alcotest.(check bool) "spawned domain starts deadline-free" true
        (Domain.join child_sees = None))

let tests =
  [
    Alcotest.test_case "saturation bounds" `Quick test_sat_bounds;
    Alcotest.test_case "wrap32" `Quick test_wrap32;
    Alcotest.test_case "sign extension" `Quick test_sign_extend;
    Alcotest.test_case "rounding shift" `Quick test_rounding_shift;
    Alcotest.test_case "quantize multiplier roundtrip" `Quick test_quantize_multiplier;
    Alcotest.test_case "requantize" `Quick test_requantize;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng int8 range" `Quick test_rng_int8_range;
    Alcotest.test_case "stats helpers" `Quick test_stats;
    Alcotest.test_case "nearest-rank percentile" `Quick test_percentile;
    Alcotest.test_case "memo caches and counts" `Quick test_memo_caches_and_counts;
    Alcotest.test_case "memo clear_all" `Quick test_memo_clear_all;
    Alcotest.test_case "memo under parallel domains" `Quick test_memo_parallel_domains;
    Alcotest.test_case "pool default jobs" `Quick test_pool_default_jobs;
    Alcotest.test_case "pool = sequential map" `Quick test_pool_matches_sequential_map;
    Alcotest.test_case "pool edge sizes" `Quick test_pool_empty_and_single;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_propagates_exception;
    Alcotest.test_case "pool merges worker traces" `Quick test_pool_merges_worker_traces;
    QCheck_alcotest.to_alcotest qcheck_percentile_member;
    QCheck_alcotest.to_alcotest qcheck_sat8;
    QCheck_alcotest.to_alcotest qcheck_rounding;
    Alcotest.test_case "hist bucket layout" `Quick test_hist_buckets;
    Alcotest.test_case "hist percentile accuracy" `Quick
      test_hist_percentile_accuracy;
    Alcotest.test_case "hist merge" `Quick test_hist_merge;
    Alcotest.test_case "deadlines are domain-local" `Quick
      test_deadline_domain_local;
    QCheck_alcotest.to_alcotest qcheck_hist_merge_commutative;
    QCheck_alcotest.to_alcotest qcheck_hist_merge_associative;
    QCheck_alcotest.to_alcotest qcheck_hist_merge_count;
  ]
