(* Tests for the concurrent serve daemon: the bounded admission queue,
   single-flight compile deduplication, the wire protocol, backpressure
   rejection, graceful shutdown, and torn-line-free logging.

   Concurrency tests use domains as clients; on a single CPU the
   interesting interleavings still happen because clients block on
   socket I/O while workers block on the flight condvar.  Each timing
   window is anchored on a real cold compile (hundreds of ms) against
   sleeps of tens of ms, so the orderings asserted here are robust. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Logsink = Gcd2_util.Logsink
module Serve = Gcd2_serve.Serve
module Daemon = Gcd2_daemon.Daemon
module Client = Gcd2_daemon.Client
module Protocol = Gcd2_daemon.Protocol
module Flight = Gcd2_daemon.Flight
module Bqueue = Gcd2_daemon.Bqueue
open Gcd2_graph
module B = Graph.Builder

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_dir () =
  let f = Filename.temp_file "gcd2-daemon-test" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let weight_q = Q.make (1.0 /. 64.0)

(* Two structurally different tiny models, so their latency estimates
   differ and a cross-wired response is detectable by its [lat]. *)
let tiny_cnn ~channels seed =
  let rng = Rng.create seed in
  let b = B.create () in
  let x = B.input b [| 1; 4; 4; channels |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; channels; channels |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:channels in
  let _ = B.add b Op.Relu [ c1 ] in
  B.finish b

let resolve_tiny ?seq:_ = function
  | "tinyA" -> tiny_cnn ~channels:4 1
  | "tinyB" -> tiny_cnn ~channels:8 2
  | m -> invalid_arg ("unknown test model " ^ m)

(* A daemon config over a unix socket in [dir], with a cache in [dir]
   and no retry backoff (tests exercise orderings, not wall time). *)
let config ?(workers = 2) ?(queue_depth = 8) ?resolve ?(log_outcomes = false)
    ?(stats_every = 0) dir =
  let sock = Filename.concat dir "d.sock" in
  {
    (Daemon.default_config (Daemon.Unix_sock sock)) with
    Daemon.workers;
    queue_depth;
    resolve;
    log_outcomes;
    stats_every;
    policy =
      {
        Serve.default_policy with
        Serve.cache_dir = Some (Filename.concat dir "cache");
        jobs = Some 1;
        backoff_ms = 0.0;
      };
  }

let with_daemon cfg f =
  let d = Daemon.start cfg in
  Fun.protect ~finally:(fun () -> ignore (Daemon.stop d)) (fun () -> f d)

let ok_response = function
  | Ok (r : Protocol.response) -> r
  | Error e -> Alcotest.failf "transport error: %s" e

(* ------------------------------------------------------------------ *)
(* Bounded queue *)

let test_bqueue () =
  let q = Bqueue.create ~capacity:2 in
  check_bool "push 1" true (Bqueue.try_push q 1);
  check_bool "push 2" true (Bqueue.try_push q 2);
  check_bool "push beyond capacity fails" false (Bqueue.try_push q 3);
  check_int "length" 2 (Bqueue.length q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Bqueue.pop q);
  check_bool "push after pop" true (Bqueue.try_push q 3);
  Bqueue.close q;
  check_bool "closed" true (Bqueue.closed q);
  check_bool "push after close fails" false (Bqueue.try_push q 4);
  (* a closed queue still drains before reporting exhaustion *)
  Alcotest.(check (option int)) "drain 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "drain 3" (Some 3) (Bqueue.pop q);
  Alcotest.(check (option int)) "drained" None (Bqueue.pop q);
  (* pop blocked on an empty queue wakes up on close *)
  let q2 = Bqueue.create ~capacity:1 in
  let waiter = Domain.spawn (fun () -> Bqueue.pop q2) in
  Unix.sleepf 0.02;
  Bqueue.close q2;
  Alcotest.(check (option int)) "blocked pop wakes on close" None
    (Domain.join waiter)

(* ------------------------------------------------------------------ *)
(* Single-flight primitive *)

let test_flight_coalesces () =
  let fl = Flight.create () in
  let runs = Atomic.make 0 in
  let work () =
    Atomic.incr runs;
    Unix.sleepf 0.15;
    42
  in
  let callers =
    Array.init 4 (fun _ -> Domain.spawn (fun () -> Flight.run fl "k" work))
  in
  let results = Array.map Domain.join callers in
  check_int "work ran exactly once" 1 (Atomic.get runs);
  Array.iter (fun (v, _) -> check_int "shared result" 42 v) results;
  let leaders =
    Array.to_list results
    |> List.filter (fun (_, role) -> role = Flight.Leader)
    |> List.length
  in
  check_int "exactly one leader" 1 leaders;
  check_int "table empties" 0 (Flight.in_flight fl);
  (* a call arriving after the flight finished starts a fresh one *)
  let v, role = Flight.run fl "k" work in
  check_int "fresh flight reruns" 2 (Atomic.get runs);
  check_int "fresh result" 42 v;
  check_bool "fresh caller leads" true (role = Flight.Leader)

exception Boom

let test_flight_shares_failure () =
  let fl = Flight.create () in
  let runs = Atomic.make 0 in
  let work () =
    Atomic.incr runs;
    Unix.sleepf 0.1;
    raise Boom
  in
  let callers =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            match Flight.run fl "k" work with
            | _ -> `No_raise
            | exception Boom -> `Boom))
  in
  let outcomes = Array.map Domain.join callers in
  check_int "failing work ran once" 1 (Atomic.get runs);
  Array.iter
    (fun o -> check_bool "every caller sees the leader's exception" true (o = `Boom))
    outcomes;
  check_int "table empties after failure" 0 (Flight.in_flight fl)

(* ------------------------------------------------------------------ *)
(* Wire protocol *)

let test_protocol_roundtrip () =
  let roundtrip (r : Protocol.response) =
    match Protocol.parse (Protocol.render r) with
    | Ok r' -> Alcotest.(check string) "roundtrip" (Protocol.render r) (Protocol.render r')
    | Error e -> Alcotest.failf "parse failed: %s (%s)" e (Protocol.render r)
  in
  roundtrip
    {
      Protocol.outcome = "ok";
      hit = true;
      cold = false;
      ms = 1.532;
      lat = Some 2.1766;
      flight = Protocol.No_flight;
      attempts = 1;
      model = "tinyA";
      device = "hexagon698";
      code = None;
      msg = None;
    };
  (* msg may contain spaces, quotes and '=': it is %S-quoted and last *)
  roundtrip
    {
      Protocol.outcome = "error";
      hit = false;
      cold = true;
      ms = 12.004;
      lat = None;
      flight = Protocol.Lead;
      attempts = 3;
      model = "x";
      device = "hexagon-g2";
      code = Some "cache-io";
      msg = Some "read failed: \"/tmp/x y\" key=v";
    };
  (match Protocol.parse "gcd2r0 outcome=ok" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match Protocol.parse "gcd2r1 outcome=ok" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields accepted");
  (* a rejected response reconstructs a retryable Overloaded diag *)
  let rej = Protocol.reject ~model:"m" ~device:"d" in
  Alcotest.(check string) "reject outcome" "rejected" rej.Protocol.outcome;
  (match Protocol.diag_of rej with
  | Some d ->
    check_bool "overloaded" true (d.Gcd2.Diag.code = Gcd2.Diag.Overloaded);
    check_bool "retryable" true d.Gcd2.Diag.retryable
  | None -> Alcotest.fail "reject carries no diag")

(* ------------------------------------------------------------------ *)
(* End-to-end over a unix socket *)

let test_daemon_serves () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_daemon (config ~resolve:resolve_tiny dir) @@ fun d ->
  let addr = Daemon.address d in
  (* cold, then warm, then a malformed request *)
  (match Client.batch addr [ "tinyA"; "tinyA"; "# comment"; "" ] with
  | [ Ok a; Ok b ] ->
    Alcotest.(check string) "cold outcome" "ok" a.Protocol.outcome;
    check_bool "first is cold" true a.Protocol.cold;
    check_bool "first is a miss" true (not a.Protocol.hit);
    Alcotest.(check string) "warm outcome" "ok" b.Protocol.outcome;
    check_bool "second hits" true b.Protocol.hit;
    check_bool "warm bypasses the flight" true (b.Protocol.flight = Protocol.No_flight);
    Alcotest.(check string) "model echoed" "tinyA" a.Protocol.model
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  (match Client.batch addr [ "nosuchmodel" ] with
  | [ Ok r ] ->
    Alcotest.(check string) "unknown model is typed" "error" r.Protocol.outcome;
    check_bool "has code" true (r.Protocol.code <> None)
  | _ -> Alcotest.fail "unknown model: expected one error response");
  let s = Daemon.stats d in
  check_int "served" 2 s.Daemon.served;
  check_int "failed" 1 s.Daemon.failed;
  check_int "hits" 1 s.Daemon.hits;
  check_int "one compile" 1 s.Daemon.compiles

(* The acceptance test of the PR: K identical cold requests arriving
   concurrently perform exactly one compile.  The compile is a real zoo
   model (hundreds of ms) while the clients arrive within a few ms, so
   the followers reliably find the leader in flight. *)
let test_single_flight_coalesces_requests () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let k = 4 in
  with_daemon (config ~workers:k dir) @@ fun d ->
  let addr = Daemon.address d in
  let clients =
    Array.init k (fun _ ->
        Domain.spawn (fun () -> Client.batch addr [ "MobileNet-V3" ]))
  in
  let responses =
    Array.to_list clients
    |> List.concat_map Domain.join
    |> List.map ok_response
  in
  check_int "k responses" k (List.length responses);
  List.iter
    (fun (r : Protocol.response) ->
      Alcotest.(check string) "every request succeeds" "ok" r.Protocol.outcome)
    responses;
  let leads =
    List.length (List.filter (fun r -> r.Protocol.flight = Protocol.Lead) responses)
  in
  let waits =
    List.length (List.filter (fun r -> r.Protocol.flight = Protocol.Wait) responses)
  in
  check_int "exactly one leader" 1 leads;
  check_int "everyone else coalesced" (k - 1) waits;
  let s = Daemon.stats d in
  check_int "exactly one compile" 1 s.Daemon.compiles;
  check_int "exactly one cache miss" 1 s.Daemon.cache_misses;
  check_int "coalesced" (k - 1) s.Daemon.coalesced;
  check_int "all served" k s.Daemon.served;
  (* and exactly one artifact was stored *)
  let entries =
    Sys.readdir (Filename.concat dir "cache")
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".gcd2art")
  in
  check_int "one cache entry" 1 (List.length entries)

(* Backpressure: one worker, queue depth one.  While the worker is
   inside a cold compile and the queue already holds a connection, the
   next connection is shed with a retryable rejection. *)
let test_backpressure_rejects_retryable () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_daemon (config ~workers:1 ~queue_depth:1 dir) @@ fun d ->
  let addr = Daemon.address d in
  let a = Domain.spawn (fun () -> Client.batch addr [ "MobileNet-V3" ]) in
  Unix.sleepf 0.1;
  (* worker is compiling A; this one parks in the queue *)
  let b = Domain.spawn (fun () -> Client.batch addr [ "MobileNet-V3" ]) in
  Unix.sleepf 0.05;
  (* queue full: shed *)
  let rejected = Client.batch addr [ "MobileNet-V3" ] in
  (match rejected with
  | [ Ok r ] ->
    Alcotest.(check string) "shed connection is rejected" "rejected"
      r.Protocol.outcome;
    (match Protocol.diag_of r with
    | Some diag ->
      check_bool "overloaded" true (diag.Gcd2.Diag.code = Gcd2.Diag.Overloaded);
      check_bool "rejection is retryable" true diag.Gcd2.Diag.retryable
    | None -> Alcotest.fail "rejection carries no diag")
  | rs -> Alcotest.failf "expected 1 rejection response, got %d" (List.length rs));
  (* the admitted connections are unaffected *)
  List.iter
    (fun r ->
      Alcotest.(check string) "admitted request served" "ok"
        (ok_response r).Protocol.outcome)
    (Domain.join a @ Domain.join b);
  let s = Daemon.stats d in
  check_int "one rejection" 1 s.Daemon.rejected;
  check_int "two served" 2 s.Daemon.served

(* Graceful shutdown: stop while one request is mid-compile and another
   connection is still queued; both must be served to EOF. *)
let test_graceful_shutdown_drains () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let d = Daemon.start (config ~workers:1 ~queue_depth:4 dir) in
  let addr = Daemon.address d in
  let a = Domain.spawn (fun () -> Client.batch addr [ "MobileNet-V3" ]) in
  Unix.sleepf 0.1;
  let b = Domain.spawn (fun () -> Client.batch addr [ "MobileNet-V3" ]) in
  Unix.sleepf 0.05;
  let s = Daemon.stop d in
  List.iter
    (fun r ->
      Alcotest.(check string) "request served through shutdown" "ok"
        (ok_response r).Protocol.outcome)
    (Domain.join a @ Domain.join b);
  check_int "both served" 2 s.Daemon.served;
  check_int "stop is idempotent" 2 (Daemon.stop d).Daemon.served;
  check_bool "socket removed" true
    (not (Sys.file_exists (Filename.concat dir "d.sock")))

(* ------------------------------------------------------------------ *)
(* Log line integrity *)

let outcomes = [ "ok"; "retried"; "degraded"; "timeout"; "error" ]

(* A captured log line is either a merged stats line or an outcome
   line; a torn line (two workers interleaving mid-line) matches
   neither shape. *)
let line_ok line =
  String.length line > 0
  && (String.starts_with ~prefix:"daemon: workers=" line
     ||
     match String.split_on_char ' ' line |> List.filter (( <> ) "") with
     | _model :: _fw :: _sel :: outcome :: _hit :: coldness :: _ ->
       List.mem outcome outcomes && (coldness = "cold" || coldness = "warm")
     | _ -> false)

let test_log_lines_never_tear () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let log_path = Filename.concat dir "daemon.log" in
  let log = open_out log_path in
  let reqs = [ "tinyA"; "tinyB"; "tinyA"; "tinyB"; "tinyA"; "tinyB" ] in
  let per_client = 4 in
  let clients = 3 in
  Logsink.with_redirect ~out:log ~err:log (fun () ->
      with_daemon
        (config ~workers:3 ~resolve:resolve_tiny ~log_outcomes:true
           ~stats_every:5 dir)
      @@ fun d ->
      let addr = Daemon.address d in
      (* prime the cache so the burst is all-warm and maximally chatty *)
      ignore (Client.batch addr [ "tinyA"; "tinyB" ]);
      let cs =
        Array.init clients (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_client do
                  List.iter
                    (fun r -> ignore (ok_response r))
                    (Client.batch addr reqs)
                done))
      in
      Array.iter Domain.join cs;
      ignore (Daemon.stop d));
  close_out log;
  let ic = open_in log_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_bool "log is non-trivial" true
    (List.length lines > clients * per_client * List.length reqs);
  List.iter
    (fun l -> check_bool (Printf.sprintf "intact line: %S" l) true (line_ok l))
    lines

(* ------------------------------------------------------------------ *)
(* Robustness (PR 10): health/stats commands, the worker watchdog, and
   the cross-process disk flight tier *)

module Fault = Gcd2_util.Fault
module Lease = Gcd2_store.Lease

let test_health_and_stats_commands () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_daemon (config ~resolve:resolve_tiny dir) @@ fun d ->
  let addr = Daemon.address d in
  (match Client.batch addr [ "health"; "stats"; "tinyA" ] with
  | [ Ok h; Ok s; Ok r ] ->
    Alcotest.(check string) "health outcome" "health" h.Protocol.outcome;
    let payload = Option.value h.Protocol.msg ~default:"" in
    check_bool "health names its workers" true
      (String.length payload > 0
      && Option.is_some
           (String.index_opt payload 'w' (* "workers=" *))
      && String.split_on_char ' ' payload
         |> List.exists (String.starts_with ~prefix:"workers="));
    Alcotest.(check string) "stats outcome" "stats" s.Protocol.outcome;
    check_bool "stats carries the merged line" true
      (match s.Protocol.msg with
      | Some m ->
        String.split_on_char ' ' m
        |> List.exists (String.starts_with ~prefix:"served=")
      | None -> false);
    (* command lines and compile lines interleave in one session *)
    Alcotest.(check string) "request after commands still served" "ok"
      r.Protocol.outcome
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs))

let test_worker_crash_respawns () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  with_daemon (config ~workers:1 ~resolve:resolve_tiny dir) @@ fun d ->
  let addr = Daemon.address d in
  (* every connection crashes its worker while the spec is active *)
  (match
     Fault.with_spec (Fault.parse_exn "seed=11,pool-worker=1") @@ fun () ->
     Client.batch addr [ "tinyA" ]
   with
  | [ Ok r ] ->
    Alcotest.(check string) "crash answered, not dropped" "error" r.Protocol.outcome;
    Alcotest.(check (option string)) "typed as worker-failed" (Some "worker-failed")
      r.Protocol.code;
    (match Protocol.diag_of r with
    | Some diag -> check_bool "worker crash is retryable" true diag.Gcd2.Diag.retryable
    | None -> Alcotest.fail "crash response carries no diag")
  | [ Error e ] -> Alcotest.failf "connection dropped instead of answered: %s" e
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* the watchdog respawned the sole worker: the pool still serves *)
  (match Client.batch addr [ "tinyA" ] with
  | [ Ok r ] -> Alcotest.(check string) "respawned worker serves" "ok" r.Protocol.outcome
  | _ -> Alcotest.fail "respawned worker did not answer");
  let s = Daemon.stats d in
  check_bool "respawn counted" true (s.Daemon.respawns >= 1)

(* Disk flight tier, in one process: a slow leader holds the digest's
   lease while a late follower polls; once the leader publishes the
   artifact the follower adopts instead of compiling. *)
let test_disk_flight_adopts () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let digest = "deadbeef01" in
  let art = Filename.concat dir "published.art" in
  let has_artifact () = Sys.file_exists art in
  let leader =
    Thread.create
      (fun () ->
        Flight.Disk.run ~dir ~digest ~has_artifact (fun _role ->
            Thread.delay 0.2;
            Out_channel.with_open_bin art (fun oc -> Out_channel.output_string oc "bits");
            "compiled"))
      ()
  in
  Thread.delay 0.05;
  let follower, frole =
    Flight.Disk.run ~dir ~digest ~has_artifact (fun role ->
        match role with
        | Flight.Disk.Adopted -> "adopted"
        | Flight.Disk.Led | Flight.Disk.Local -> "compiled")
  in
  Thread.join leader;
  Alcotest.(check string) "follower adopted the published artifact" "adopted" follower;
  check_bool "role is Adopted" true (frole = Flight.Disk.Adopted);
  check_bool "leader released its lease" true
    (Lease.state ~dir digest = Lease.Free)

(* A SIGKILLed leader's lease (dead pid) must be broken, not waited out. *)
let test_disk_flight_breaks_dead_lease () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let digest = "deadbeef02" in
  (* far above the kernel's pid_max: kill(pid, 0) is ESRCH, i.e. dead
     (forking a real corpse is off-limits once domains have run) *)
  let corpse = 999_999_999 in
  (match Lease.acquire ~owner:corpse ~dir digest with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "planting the dead lease failed");
  let t0 = Unix.gettimeofday () in
  let r, role =
    Flight.Disk.run ~dir ~digest ~has_artifact:(fun () -> false) (fun _ -> "compiled")
  in
  Alcotest.(check string) "request served" "compiled" r;
  check_bool "dead lease broken, caller led" true (role = Flight.Disk.Led);
  check_bool "broke immediately, no ttl wait" true (Unix.gettimeofday () -. t0 < 2.0);
  check_bool "no lease left behind" true (Lease.state ~dir digest = Lease.Free)

(* Lease-layer faults degrade to a local compile — never an error, never
   a wedge. *)
let test_disk_flight_fault_falls_back () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let r, role =
    Fault.with_spec (Fault.parse_exn "seed=12,flight-lease=1") @@ fun () ->
    Flight.Disk.run ~dir ~digest:"deadbeef03" ~has_artifact:(fun () -> false)
      (fun _ -> "compiled")
  in
  Alcotest.(check string) "served despite lease faults" "compiled" r;
  check_bool "fell back to a local compile" true (role = Flight.Disk.Local)

let tests =
  [
    Alcotest.test_case "bounded queue semantics" `Quick test_bqueue;
    Alcotest.test_case "flight coalesces concurrent callers" `Quick
      test_flight_coalesces;
    Alcotest.test_case "flight shares the leader's failure" `Quick
      test_flight_shares_failure;
    Alcotest.test_case "protocol render/parse roundtrip" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "daemon serves cold, warm and invalid" `Quick
      test_daemon_serves;
    Alcotest.test_case "single-flight: K requests, one compile" `Quick
      test_single_flight_coalesces_requests;
    Alcotest.test_case "backpressure rejection is retryable" `Quick
      test_backpressure_rejects_retryable;
    Alcotest.test_case "graceful shutdown drains the queue" `Quick
      test_graceful_shutdown_drains;
    Alcotest.test_case "log lines never tear" `Quick test_log_lines_never_tear;
    Alcotest.test_case "health and stats answered in-frame" `Quick
      test_health_and_stats_commands;
    Alcotest.test_case "worker crash answered and respawned" `Quick
      test_worker_crash_respawns;
    Alcotest.test_case "disk flight: follower adopts the leader's artifact" `Quick
      test_disk_flight_adopts;
    Alcotest.test_case "disk flight: dead leader's lease is broken" `Quick
      test_disk_flight_breaks_dead_lease;
    Alcotest.test_case "disk flight: lease faults fall back locally" `Quick
      test_disk_flight_fault_falls_back;
  ]
