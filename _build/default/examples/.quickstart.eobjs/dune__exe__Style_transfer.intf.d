examples/style_transfer.mli:
