examples/style_transfer.ml: Array Fmt Gcd2 Gcd2_codegen Gcd2_cost Gcd2_frameworks Gcd2_graph Gcd2_models Hashtbl List Option
