examples/kernel_explorer.ml: Array Fmt Gcd2_codegen Gcd2_cost Gcd2_isa Gcd2_kernels Gcd2_sched Gcd2_tensor Gcd2_util List Option Sys
