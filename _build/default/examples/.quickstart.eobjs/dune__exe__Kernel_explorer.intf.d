examples/kernel_explorer.mli:
