examples/quickstart.ml: Array Dump Fmt Gcd2 Gcd2_cost Gcd2_graph Gcd2_kernels Gcd2_tensor Gcd2_util
