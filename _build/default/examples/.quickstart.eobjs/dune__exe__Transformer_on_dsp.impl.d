examples/transformer_on_dsp.ml: Array Fmt Gcd2 Gcd2_cost Gcd2_frameworks Gcd2_graph Gcd2_models Hashtbl List Option
