examples/transformer_on_dsp.mli:
