examples/quickstart.mli:
