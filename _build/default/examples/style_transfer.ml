(* Style transfer on the DSP: the paper's motivating real-time scenario.
   FST runs 161 GMACs per 1024x1024 frame; the difference between the
   production frameworks and GCD2 is the difference between a slideshow
   and an interactive filter.

   This example compiles FST under TFLite-, SNPE- and GCD2-equivalent
   configurations, breaks the latency down by operator class, and shows
   which layout/instruction mix the global optimizer chose.

   Run with:  dune exec examples/style_transfer.exe *)

module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Plan = Gcd2_cost.Plan
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op
module Simd = Gcd2_codegen.Simd

let classify_op (op : Op.t) =
  match op with
  | Op.Conv2d _ -> "conv"
  | Op.Transposed_conv2d _ -> "upconv"
  | Op.Layer_norm -> "instance-norm"
  | Op.Add | Op.Mul | Op.Sub | Op.Div -> "elementwise"
  | Op.Relu | Op.Relu6 | Op.Hard_swish | Op.Sigmoid | Op.Tanh | Op.Gelu -> "activation"
  | Op.Pad_spatial _ | Op.Reshape _ | Op.Transpose _ -> "data-movement"
  | _ -> "other"

let () =
  let entry = Zoo.find "FST" in
  let graph = entry.Zoo.build () in
  Fmt.pr "Fast style transfer: %d operators, %.1f GMACs per frame@." (Graph.size graph)
    (float_of_int (Gcd2_graph.Flops.total_macs graph) /. 1e9);

  (* frame rates under the three stacks *)
  Fmt.pr "@.framework comparison (one 1024x1024 frame):@.";
  List.iter
    (fun config ->
      let c = F.compile config graph in
      let ms = Compiler.latency_ms c in
      Fmt.pr "  %-8s %7.1f ms  (%.2f fps)@." config.Compiler.name ms (1000.0 /. ms))
    [ F.tflite; F.snpe; F.gcd2 ];

  (* where the time goes under GCD2 *)
  let c = F.compile F.gcd2 graph in
  let per_class = Hashtbl.create 8 in
  Array.iter
    (fun (n : Graphcost.node_report) ->
      let key = classify_op n.Graphcost.node.Graph.op in
      let cur = Option.value (Hashtbl.find_opt per_class key) ~default:0.0 in
      Hashtbl.replace per_class key (cur +. n.Graphcost.cycles))
    c.Compiler.report.Graphcost.per_node;
  let total = c.Compiler.report.Graphcost.cycles in
  Fmt.pr "@.GCD2 latency breakdown by operator class:@.";
  Hashtbl.iter
    (fun k v -> Fmt.pr "  %-14s %5.1f%%@." k (100.0 *. v /. total))
    per_class;

  (* the instruction mix the global optimizer chose for the convolutions *)
  let counts = Hashtbl.create 4 in
  Array.iteri
    (fun v plans ->
      let plan = plans.(c.Compiler.assignment.(v)) in
      match plan.Plan.simd with
      | Some simd ->
        let key = Simd.name simd in
        Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
      | None -> ())
    c.Compiler.cost.Graphcost.plans;
  Fmt.pr "@.SIMD instruction mix across multiply-heavy operators:@.";
  Hashtbl.iter (fun k v -> Fmt.pr "  %-6s x%d@." k v) counts;
  Fmt.pr
    "@.real-time check: %s (paper: GCD2 made FST 4.4x faster than TFLite on a Snapdragon 865)@."
    (if Compiler.latency_ms c < 500.0 then "interactive-rate on the simulated DSP"
     else "below interactive rate")
