(* Transformers on a mobile DSP — the capability the paper claims first:
   "GCD2 for the first time enables mobile DSP execution of two DNNs
   (TinyBERT and Conformer) because it supports more operators than
   TFLite and SNPE, e.g., more variants of MatMul, and Pow."

   This example shows the mechanism: under the production delegates the
   transformer-specific operators (batched MatMul, Pow, LayerNorm, Gelu)
   bounce to the CPU, wrecking latency; GCD2 lowers all of them to DSP
   kernels.

   Run with:  dune exec examples/transformer_on_dsp.exe *)

module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op

let unsupported_by_delegates (op : Op.t) =
  match op with
  | Op.Layer_norm | Op.Gelu | Op.Pow _ | Op.Batch_matmul _ -> true
  | _ -> false

let analyze name =
  let entry = Zoo.find name in
  let graph = entry.Zoo.build () in
  let total = Graph.size graph in
  let missing = Graph.fold (fun a n -> if unsupported_by_delegates n.Graph.op then a + 1 else a) 0 graph in
  Fmt.pr "@.%s: %d operators, %d of them unsupported by the production DSP delegates@." name
    total missing;
  (* TFLite/SNPE: every unsupported operator is a CPU round trip *)
  let tflite = F.compile F.tflite graph in
  let gcd2 = F.compile F.gcd2 graph in
  let fallback_cycles =
    Array.fold_left
      (fun a (n : Graphcost.node_report) ->
        if unsupported_by_delegates n.Graphcost.node.Graph.op then a +. n.Graphcost.cycles
        else a)
      0.0 tflite.Compiler.report.Graphcost.per_node
  in
  Fmt.pr "  TFLite-style delegate: %7.1f ms (%.0f%% of it spent in CPU fallbacks)@."
    (Compiler.latency_ms tflite)
    (100.0 *. fallback_cycles /. tflite.Compiler.report.Graphcost.cycles);
  Fmt.pr "  GCD2 (all on DSP):     %7.1f ms (paper: %.1f ms)@."
    (Compiler.latency_ms gcd2) entry.Zoo.paper_gcd2_ms;
  gcd2

let () =
  let bert = analyze "TinyBERT" in
  let conf = analyze "Conformer" in
  (* per-operator-kind latency for TinyBERT under GCD2 *)
  Fmt.pr "@.TinyBERT on the DSP, top operator kinds by time:@.";
  let acc = Hashtbl.create 16 in
  Array.iter
    (fun (n : Graphcost.node_report) ->
      let key =
        match n.Graphcost.node.Graph.op with
        | Op.Matmul _ -> "matmul (projections/FFN)"
        | Op.Batch_matmul _ -> "batched matmul (attention)"
        | Op.Softmax -> "softmax"
        | Op.Layer_norm -> "layer norm"
        | Op.Gelu | Op.Tanh -> "activations"
        | Op.Reshape _ | Op.Transpose _ -> "head reshuffling"
        | _ -> "other"
      in
      Hashtbl.replace acc key
        (n.Graphcost.cycles +. Option.value (Hashtbl.find_opt acc key) ~default:0.0))
    bert.Compiler.report.Graphcost.per_node;
  let rows = Hashtbl.fold (fun k v l -> (k, v) :: l) acc [] in
  List.iter
    (fun (k, v) ->
      Fmt.pr "  %-28s %5.1f%%@." k (100.0 *. v /. bert.Compiler.report.Graphcost.cycles))
    (List.sort (fun (_, a) (_, b) -> compare b a) rows);
  (* real-time speech check for conformer: 15 s of audio *)
  let audio_seconds = 15.04 in
  let rtf = Compiler.latency_ms conf /. 1000.0 /. audio_seconds in
  Fmt.pr "@.Conformer real-time factor: %.3f (%.0fx faster than real time)@." rtf (1.0 /. rtf)
