(* Quickstart: build a small quantized CNN, compile it with GCD2, execute
   it on the simulated DSP, and check the result against the reference
   interpreter.

   Run with:  dune exec examples/quickstart.exe *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Rng = Gcd2_util.Rng
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op
module B = Graph.Builder
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime

let () =
  (* 1. Describe a model: a residual block plus a classifier head.
        Weights are attached directly to the compute nodes (quantized
        int8, symmetric). *)
  let rng = Rng.create 2022 in
  let wq = Q.make (1.0 /. 64.0) in
  let b = B.create () in
  let x = B.input b [| 1; 16; 16; 8 |] in
  let w1 = T.random ~quant:wq rng [| 3; 3; 8; 16 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:16 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let w2 = T.random ~quant:wq rng [| 1; 1; 16; 16 |] in
  let c2 = B.conv2d ~weight:w2 b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:16 in
  let s = B.add b Op.Add [ r1; c2 ] in
  let p = B.add b Op.Global_avg_pool [ s ] in
  let w3 = T.random ~quant:wq rng [| 16; 10 |] in
  let logits = B.matmul ~weight:w3 b p ~cout:10 in
  let _probs = B.add b Op.Softmax [ logits ] in
  let graph = B.finish b in
  Graph.validate graph;
  Fmt.pr "built a graph with %d operators@." (Graph.size graph);

  (* 2. Compile with the full GCD2 pipeline: activation fusion, per-operator
        plan enumeration, global instruction & layout selection (GCD2(13)),
        SDA VLIW packing. *)
  let compiled = Compiler.compile graph in
  Fmt.pr "%a@." Compiler.pp_summary compiled;

  (* 3. Inspect what the global optimizer chose per operator. *)
  Fmt.pr "@.per-operator execution plans:@.";
  Array.iteri
    (fun v plans ->
      let node = Graph.node compiled.Compiler.graph v in
      let plan = plans.(compiled.Compiler.assignment.(v)) in
      ignore plan;
      Fmt.pr "  %-28s -> %a@." (Op.name node.Graph.op) Gcd2_cost.Plan.pp
        compiled.Compiler.cost.Gcd2_cost.Graphcost.plans.(v).(compiled.Compiler.assignment.(v)))
    compiled.Compiler.cost.Gcd2_cost.Graphcost.plans;

  (* 4. Execute on the simulated DSP: generated VLIW kernels run in the
        functional simulator; the result must equal the reference
        interpreter bit for bit. *)
  let input = T.random rng [| 1; 16; 16; 8 |] in
  let outputs, stats = Runtime.run_with_stats compiled ~inputs:[ (0, input) ] in
  let reference = Gcd2_kernels.Interp.run compiled.Compiler.graph ~inputs:[ (0, input) ] in
  let last = Graph.size compiled.Compiler.graph - 1 in
  assert (T.equal_data outputs.(last) reference.(last));
  Fmt.pr
    "@.executed on the simulated DSP: %d kernels on the vector unit (%d cycles), %d host-staged operators@."
    stats.Runtime.vm_nodes stats.Runtime.vm_cycles stats.Runtime.host_nodes;
  Fmt.pr "DSP output matches the reference interpreter bit-for-bit.@.";
  Fmt.pr "@.class scores (int8): %a@."
    Fmt.(Dump.array int)
    outputs.(last).T.data
