(* Small fixed-width table printer shared by all experiments. *)

let line width = print_endline (String.make width '-')

let header title =
  print_newline ();
  line 78;
  Printf.printf "%s\n" title;
  line 78

let row fmt = Printf.printf fmt

let section s = Printf.printf "\n-- %s --\n" s

let note fmt = Printf.ksprintf (fun s -> Printf.printf "   note: %s\n" s) fmt

let ratio a b = if b = 0.0 then 0.0 else a /. b

let pp_opt_ms = function Some v -> Printf.sprintf "%8.1f" v | None -> "       -"
