bench/exp_figures.ml: Array Exp_tables Gcd2 Gcd2_codegen Gcd2_cost Gcd2_devices Gcd2_frameworks Gcd2_graph Gcd2_layout Gcd2_models Gcd2_sched Gcd2_util List Printf Report Sys
