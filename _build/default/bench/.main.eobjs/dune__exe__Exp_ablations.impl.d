bench/exp_ablations.ml: Array Fmt Gcd2 Gcd2_codegen Gcd2_cost Gcd2_frameworks Gcd2_graph Gcd2_isa Gcd2_layout Gcd2_models Gcd2_sched Gcd2_tensor List Report Sys
