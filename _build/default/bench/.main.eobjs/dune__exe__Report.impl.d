bench/report.ml: Printf String
