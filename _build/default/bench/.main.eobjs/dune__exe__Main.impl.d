bench/main.ml: Array Exp_ablations Exp_figures Exp_micro Exp_tables List Printf Sys
