bench/exp_tables.ml: Gcd2 Gcd2_codegen Gcd2_cost Gcd2_devices Gcd2_frameworks Gcd2_graph Gcd2_models Gcd2_sched Gcd2_tensor Gcd2_util Hashtbl List Report String
