bench/main.mli:
