(** Partitioned Boolean Quadratic Programming solver via Scholz-Eckstein
    graph reductions (R0/RI/RII exact, RN heuristic) — the alternative the
    paper weighs against its partitioning heuristic in Section IV-B.
    Exact on graphs of degree <= 2; near-optimal in practice. *)

val solve : Problem.t -> Solver.result
