(** The global instruction-and-layout selection problem (paper Equation 1),
    abstracted from DNN specifics: a DAG whose nodes each pick one of
    several execution plans; minimize total plan cost plus the
    data-transformation cost [TC] on every edge.  PBQP; NP-hard. *)

type t = {
  n : int;
  preds : int list array;  (** predecessor indices, all smaller than the node *)
  options : int array;  (** number of plans per node, >= 1 *)
  node_cost : int -> int -> float;  (** node, plan -> cycles *)
  edge_cost : int -> int -> int -> int -> float;  (** u, plan_u, v, plan_v -> TC *)
  desirable_edge : int -> int -> bool;
      (** paper Section IV-B: single-predecessor edges into layout
          transformation operators or profitable transformations *)
}

(** Structural checks; raises [Invalid_argument]. *)
val validate : t -> unit

(** Successor lists. *)
val succs : t -> int list array

(** Objective value of a full plan assignment. *)
val total_cost : t -> int array -> float

(** [crossing_edges p] — edges crossing between topological positions
    [q] and [q+1], for the partitioning heuristic. *)
val crossing_edges : t -> int array
