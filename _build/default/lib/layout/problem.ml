(** The global instruction-and-layout selection problem (paper Section
    IV-A, Equation 1), abstracted away from DNN specifics:

    a DAG of [n] nodes (indices are a topological order), each node [v]
    with [options.(v)] candidate execution plans; choosing plan [p] for
    [v] costs [node_cost v p]; an edge [(u, v)] additionally costs
    [edge_cost u pu v pv] (the data-transformation cost [TC], zero when
    the producer's output layout already suits the consumer).

    Minimize
    [sum_v node_cost(v, plan_v) + sum_{(u,v)} edge_cost(u, plan_u, v, plan_v)]

    — a Partitioned Boolean Quadratic Program, NP-hard in general. *)

type t = {
  n : int;
  preds : int list array;  (** predecessor indices, all smaller than the node *)
  options : int array;  (** number of plans per node, >= 1 *)
  node_cost : int -> int -> float;
  edge_cost : int -> int -> int -> int -> float;  (** u, plan_u, v, plan_v *)
  desirable_edge : int -> int -> bool;
      (** [(u, v)] is a desirable partitioning edge (paper Section IV-B):
          [v] has a single predecessor and is a layout-transformation
          operator, or the transformation along the edge is profitable *)
}

let validate t =
  if t.n < 0 then invalid_arg "Problem: negative size";
  if Array.length t.preds <> t.n || Array.length t.options <> t.n then
    invalid_arg "Problem: array sizes";
  Array.iteri
    (fun v ps ->
      if t.options.(v) < 1 then invalid_arg "Problem: node without plans";
      List.iter (fun u -> if u < 0 || u >= v then invalid_arg "Problem: not topological") ps)
    t.preds

(** Successor lists. *)
let succs t =
  let s = Array.make t.n [] in
  Array.iteri (fun v ps -> List.iter (fun u -> s.(u) <- v :: s.(u)) ps) t.preds;
  Array.map List.rev s

(** Total objective value of a full assignment. *)
let total_cost t plans =
  if Array.length plans <> t.n then invalid_arg "total_cost: wrong length";
  let acc = ref 0.0 in
  for v = 0 to t.n - 1 do
    acc := !acc +. t.node_cost v plans.(v);
    List.iter (fun u -> acc := !acc +. t.edge_cost u plans.(u) v plans.(v)) t.preds.(v)
  done;
  !acc

(** Number of edges crossing between position [p] and [p+1] in the
    topological order (used by the partitioning heuristic). *)
let crossing_edges t =
  (* crossing.(p) = edges (u, v) with u <= p < v *)
  let crossing = Array.make (max 1 t.n) 0 in
  Array.iteri
    (fun v ps ->
      List.iter
        (fun u ->
          for p = u to v - 1 do
            crossing.(p) <- crossing.(p) + 1
          done)
        ps)
    t.preds;
  crossing
