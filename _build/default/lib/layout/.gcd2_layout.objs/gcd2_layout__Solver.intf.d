lib/layout/solver.mli: Problem
