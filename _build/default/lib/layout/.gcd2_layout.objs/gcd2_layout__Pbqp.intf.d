lib/layout/pbqp.mli: Problem Solver
