lib/layout/problem.mli:
