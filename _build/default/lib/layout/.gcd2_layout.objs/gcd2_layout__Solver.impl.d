lib/layout/solver.ml: Array Char List Map Option Problem String
