lib/layout/pbqp.ml: Array List Problem Solver
