lib/layout/problem.ml: Array List
