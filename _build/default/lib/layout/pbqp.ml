(** Partitioned Boolean Quadratic Programming solver (Scholz & Eckstein
    style graph reductions), the alternative the paper weighs against its
    partitioning heuristic: "considering a PBQP solver, which is not
    guaranteed to provide an optimal solution but is in practice close, is
    an option" (Section IV-B).  Provided both for completeness and as an
    extra baseline in the Figure 10 bench.

    The selection problem maps onto PBQP directly: node cost vectors are
    the per-plan execution costs, edge cost matrices are the
    transformation costs [TC] between the endpoint plans.

    Reductions:
    - R0: a degree-0 node takes its cheapest plan.
    - RI: a degree-1 node folds its edge matrix into the neighbour's cost
      vector (exact).
    - RII: a degree-2 node folds into a new edge between its two
      neighbours (exact).
    - RN: otherwise, heuristically fix the plan minimizing the node's
      local cost (vector plus row-minima of incident edges) — the only
      lossy step. *)

(* Dense mutable working graph. *)
type node_state = {
  mutable vec : float array;  (** current cost vector *)
  mutable edges : (int * float array array) list;
      (** neighbour -> matrix indexed \[my plan\]\[their plan\] *)
  mutable alive : bool;
}

type decision =
  | Fixed of int * int  (** node, chosen plan (R0 / RN) *)
  | Dependent of int * int * int array
      (** node, neighbour, best plan of node for each neighbour plan (RI) *)
  | Dependent2 of int * int * int * int array array
      (** node, neighbours u and w, best plan for each (pu, pw) (RII) *)

let transpose m =
  let rows = Array.length m and cols = Array.length m.(0) in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let solve (p : Problem.t) =
  let n = p.Problem.n in
  if n = 0 then { Solver.plans = [||]; cost = 0.0 }
  else begin
    let nodes =
      Array.init n (fun v ->
          {
            vec = Array.init p.options.(v) (fun o -> p.node_cost v o);
            edges = [];
            alive = true;
          })
    in
    (* materialize edge matrices (u < v by construction) *)
    Array.iteri
      (fun v preds ->
        List.iter
          (fun u ->
            let m =
              Array.init p.options.(u) (fun pu ->
                  Array.init p.options.(v) (fun pv -> p.edge_cost u pu v pv))
            in
            (* combine parallel edges if any *)
            nodes.(u).edges <- (v, m) :: nodes.(u).edges;
            nodes.(v).edges <- (u, transpose m) :: nodes.(v).edges)
          preds)
      p.preds;
    let remove_edge a b =
      nodes.(a).edges <- List.filter (fun (x, _) -> x <> b) nodes.(a).edges
    in
    let add_matrix a b m =
      (* add matrix m (indexed [plan_a][plan_b]) onto the a-b edge,
         creating it if absent *)
      match List.assoc_opt b nodes.(a).edges with
      | Some existing ->
        Array.iteri (fun i row -> Array.iteri (fun j x -> existing.(i).(j) <- existing.(i).(j) +. x) row) m
      | None ->
        nodes.(a).edges <- (b, m) :: nodes.(a).edges;
        nodes.(b).edges <- (a, transpose m) :: nodes.(b).edges
    in
    let sync_transpose a b =
      (* keep b's view consistent with a's after in-place updates *)
      match (List.assoc_opt b nodes.(a).edges, List.assoc_opt a nodes.(b).edges) with
      | Some m, Some m' ->
        Array.iteri (fun i row -> Array.iteri (fun j x -> m'.(j).(i) <- x) row) m
      | _ -> ()
    in
    let stack = ref [] in
    let degree v = List.length nodes.(v).edges in
    let alive_count = ref n in
    while !alive_count > 0 do
      (* choose the lowest-degree alive node *)
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if nodes.(v).alive && (!best = -1 || degree v < degree !best) then best := v
      done;
      let v = !best in
      let nv = nodes.(v) in
      (match nv.edges with
      | [] ->
        (* R0 *)
        let bp = ref 0 in
        Array.iteri (fun o c -> if c < nv.vec.(!bp) then bp := o) nv.vec;
        stack := Fixed (v, !bp) :: !stack
      | [ (u, m) ] ->
        (* RI: fold into u *)
        let nu = nodes.(u) in
        let best_for = Array.make (Array.length nu.vec) 0 in
        Array.iteri
          (fun pu _ ->
            let bp = ref 0 and bc = ref infinity in
            Array.iteri
              (fun pv cv ->
                let c = cv +. m.(pv).(pu) in
                if c < !bc then begin
                  bc := c;
                  bp := pv
                end)
              nv.vec;
            nu.vec.(pu) <- nu.vec.(pu) +. !bc;
            best_for.(pu) <- !bp)
          nu.vec;
        remove_edge u v;
        stack := Dependent (v, u, best_for) :: !stack
      | [ (u, mu); (w, mw) ] ->
        (* RII: fold into a u-w edge *)
        let ku = Array.length nodes.(u).vec and kw = Array.length nodes.(w).vec in
        let best = Array.make_matrix ku kw 0 in
        let delta =
          Array.init ku (fun pu ->
              Array.init kw (fun pw ->
                  let bc = ref infinity in
                  Array.iteri
                    (fun pv cv ->
                      let c = cv +. mu.(pv).(pu) +. mw.(pv).(pw) in
                      if c < !bc then begin
                        bc := c;
                        best.(pu).(pw) <- pv
                      end)
                    nv.vec;
                  !bc))
        in
        remove_edge u v;
        remove_edge w v;
        add_matrix u w delta;
        sync_transpose u w;
        stack := Dependent2 (v, u, w, best) :: !stack
      | edges ->
        (* RN: heuristically fix v's plan by local cost, then fold each
           incident edge into the neighbour's vector as a row *)
        let local o =
          List.fold_left
            (fun acc (_, m) -> acc +. Array.fold_left min infinity m.(o))
            nv.vec.(o) edges
        in
        let bp = ref 0 in
        Array.iteri (fun o _ -> if local o < local !bp then bp := o) nv.vec;
        List.iter
          (fun (u, m) ->
            let nu = nodes.(u) in
            Array.iteri (fun pu _ -> nu.vec.(pu) <- nu.vec.(pu) +. m.(!bp).(pu)) nu.vec;
            remove_edge u v)
          edges;
        stack := Fixed (v, !bp) :: !stack);
      nv.alive <- false;
      nv.edges <- [];
      decr alive_count
    done;
    (* back-propagate *)
    let plans = Array.make n 0 in
    List.iter
      (fun d ->
        match d with
        | Fixed (v, o) -> plans.(v) <- o
        | Dependent (v, u, best_for) -> plans.(v) <- best_for.(plans.(u))
        | Dependent2 (v, u, w, best) -> plans.(v) <- best.(plans.(u)).(plans.(w)))
      !stack;
    { Solver.plans; cost = Problem.total_cost p plans }
  end
