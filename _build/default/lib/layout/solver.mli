(** Solvers for the global selection problem — the paper's baselines and
    its partitioning heuristic (Section IV-B, Figure 10). *)

type result = { plans : int array; cost : float }

(** Per-operator best plan, transformation costs ignored (the paper's
    [local optimal] baseline). *)
val local : Problem.t -> result

exception Too_large

(** k^n enumeration (the paper's [global optimal]); raises {!Too_large}
    beyond [max_states] (default 2e7) assignments. *)
val exhaustive : ?max_states:int -> Problem.t -> result

(** The paper's Equation 2: exact for (unions of) chains; raises
    [Invalid_argument] otherwise. *)
val chain_dp : Problem.t -> result

(** Exact DP whose state is the plan choice of live frontier nodes;
    exponential only in DAG width.  [fixed] supplies plans for nodes below
    [lo] when solving a window. *)
val frontier_dp :
  ?fixed:int array -> ?lo:int -> ?hi:int -> ?max_states:int -> Problem.t -> int array

(** Exact solve of the whole problem by frontier DP. *)
val optimal : Problem.t -> result

(** Cut positions for the partitioning heuristic: desirable partitioning
    edges plus complementary cuts bounding each part to [max_size]. *)
val partition_points : Problem.t -> max_size:int -> int list

(** The GCD2 heuristic (the paper's GCD2(k)): partition, then solve each
    part exactly conditioned on earlier parts. *)
val partitioned : ?max_size:int -> Problem.t -> result
