lib/frameworks/framework.mli: Gcd2 Gcd2_cost Gcd2_graph
