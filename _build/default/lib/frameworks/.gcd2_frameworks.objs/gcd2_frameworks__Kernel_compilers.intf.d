lib/frameworks/kernel_compilers.mli: Gcd2_codegen
