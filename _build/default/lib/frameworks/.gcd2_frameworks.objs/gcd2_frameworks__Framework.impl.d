lib/frameworks/framework.ml: Gcd2 Gcd2_codegen Gcd2_cost Gcd2_graph Gcd2_sched Gcd2_tensor
