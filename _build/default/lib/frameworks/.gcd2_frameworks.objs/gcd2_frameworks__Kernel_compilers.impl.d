lib/frameworks/kernel_compilers.ml: Gcd2_codegen Gcd2_cost Gcd2_isa Gcd2_sched Gcd2_tensor List
