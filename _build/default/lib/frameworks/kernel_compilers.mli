(** Kernel-level comparators — Halide, TVM and RAKE (paper Figure 7 and
    Table III) — reconstructed as codegen strategies on our machine model:
    generic loop-nest lowering, in-order packetization, their respective
    vectorization/unrolling habits. *)

module Simd = Gcd2_codegen.Simd
module Unroll = Gcd2_codegen.Unroll

type t = Halide | Tvm | Rake | Gcd_b | Gcd2_kernel

val name : t -> string
val all : t list

type result = {
  framework : t;
  simd : Simd.t;
  unroll : Unroll.setting;
  cycles : int;
  packets : int;  (** dynamic VLIW packet count (Figure 7, right) *)
  ms : float;
}

(** Implicit-GEMM dimensions of a convolution. *)
val conv_mkn :
  n:int -> h:int -> w:int -> c:int -> kh:int -> kw:int -> stride:int -> pad:int ->
  cout:int -> int * int * int

(** Compile one convolution kernel under a framework's strategy. *)
val conv : t -> m:int -> k:int -> n:int -> result
