(** Simulated baseline frameworks: compiler configurations reconstructing
    the stacks the paper compares against (TFLite, SNPE) and the ablated
    GCD2 variants its evaluation uses.  See DESIGN.md "Substitutions" for
    the modelled differences. *)

module Compiler = Gcd2.Compiler
module Graph = Gcd2_graph.Graph

(** hexagon_nn-style kernel options shared by TFLite and SNPE: uniform
    vrmpy/4-column kernels, in-order packetization, depth-32 channel
    padding, per-node RPC dispatch, CPU fallback for transformer ops. *)
val uniform_kernel_opcost : Gcd2_cost.Opcost.options

val tflite : Compiler.config
val snpe : Compiler.config
val gcd2 : Compiler.config

(** Tensor-compiler optimizations only, baseline packing (paper's GCD_b). *)
val gcd2_b : Compiler.config

(** The incremental ladder of Figure 9. *)
val no_opt : Compiler.config

val plus_selection : Compiler.config
val plus_vliw : Compiler.config
val plus_other : Compiler.config

(** SDA ablations of Figure 11. *)
val soft_to_hard : Compiler.config

val soft_to_none : Compiler.config

(** The end-to-end frameworks of Table IV. *)
val end_to_end : Compiler.config list

val compile : Compiler.config -> Graph.t -> Compiler.compiled
