(** Registers of the simulated mobile DSP: 32 scalar registers ([R 0..31],
    32-bit), 32 vector registers ([V 0..31], 1024-bit), and aligned vector
    pairs [P k] aliasing [V (2k+1)]:[V (2k)] (the paper's [v2:1]). *)

type t =
  | R of int  (** scalar register, 32-bit *)
  | V of int  (** vector register, 1024-bit = 128 bytes *)
  | P of int  (** vector pair [P k] = [V (2k+1)]:[V (2k)] *)

val scalar_count : int
val vector_count : int

(** Bytes per vector register (128). *)
val vector_bytes : int

val lanes_8 : int
val lanes_16 : int
val lanes_32 : int

val is_scalar : t -> bool

(** Well-formedness of the register index. *)
val validate : t -> bool

(** Physical vector registers covered (empty for scalars). *)
val vector_parts : t -> int list

(** Do two operands name overlapping storage?  (Pairs alias their two
    vector registers.) *)
val overlap : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
