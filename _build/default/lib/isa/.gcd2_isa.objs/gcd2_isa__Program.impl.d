lib/isa/program.ml: Fmt Instr List Packet
