lib/isa/instr.mli: Format Iclass Reg
