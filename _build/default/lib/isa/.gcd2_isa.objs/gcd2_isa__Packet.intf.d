lib/isa/packet.mli: Format Instr
