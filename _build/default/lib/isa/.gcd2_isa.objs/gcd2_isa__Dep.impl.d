lib/isa/dep.ml: Fmt Iclass Instr List Reg
