lib/isa/program.mli: Format Packet
