lib/isa/iclass.mli: Format
