lib/isa/dep.mli: Format Instr
