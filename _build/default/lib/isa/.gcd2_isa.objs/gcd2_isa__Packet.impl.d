lib/isa/packet.ml: Array Dep Fmt Iclass Instr List
