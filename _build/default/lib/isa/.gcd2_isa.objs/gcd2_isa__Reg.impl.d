lib/isa/reg.ml: Fmt List
