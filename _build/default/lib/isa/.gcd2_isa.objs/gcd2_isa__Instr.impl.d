lib/isa/instr.ml: Fmt Iclass Reg
