lib/isa/iclass.ml: Fmt
