(** Registers of the simulated mobile DSP.

    The machine has 32 scalar registers of 32 bits ([R 0] .. [R 31]) and 32
    vector registers of 1024 bits ([V 0] .. [V 31]).  Adjacent even/odd
    vector registers can be addressed as a 2048-bit pair [P k], which
    aliases [V (2k)] (low half) and [V (2k + 1)] (high half) — the paper's
    "vector pair" (e.g. [v2:1] in its Figure 5 stands for such a pair). *)

type t =
  | R of int  (** scalar register, 32-bit *)
  | V of int  (** vector register, 1024-bit = 128 bytes *)
  | P of int  (** vector pair [P k] = [V (2k+1)]:[V (2k)] *)

let scalar_count = 32
let vector_count = 32
let vector_bytes = 128
let lanes_8 = 128
let lanes_16 = 64
let lanes_32 = 32

let is_scalar = function R _ -> true | V _ | P _ -> false

let validate = function
  | R n -> n >= 0 && n < scalar_count
  | V n -> n >= 0 && n < vector_count
  | P n -> n >= 0 && n < vector_count / 2

(** Vector registers covered by a register operand (empty for scalars). *)
let vector_parts = function
  | R _ -> []
  | V n -> [ n ]
  | P n -> [ 2 * n; (2 * n) + 1 ]

(** [overlap a b] holds when the two register operands name (part of) the
    same physical storage; used by dependency analysis. *)
let overlap a b =
  match (a, b) with
  | R m, R n -> m = n
  | R _, (V _ | P _) | (V _ | P _), R _ -> false
  | _ ->
    let pa = vector_parts a and pb = vector_parts b in
    List.exists (fun x -> List.mem x pb) pa

let pp ppf = function
  | R n -> Fmt.pf ppf "r%d" n
  | V n -> Fmt.pf ppf "v%d" n
  | P n -> Fmt.pf ppf "v%d:%d" ((2 * n) + 1) (2 * n)

let to_string r = Fmt.str "%a" pp r
