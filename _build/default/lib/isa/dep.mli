(** Hard/soft dependency classification (paper Section IV-C, footnote 3).

    A {e hard} dependency forbids co-packing; a {e soft} one allows it at a
    stall penalty (the interlocked pipeline still computes the correct
    result).  Soft dependencies are only ever RAW or WAR. *)

type kind =
  | Hard
  | Soft of int  (** co-packing stall penalty in cycles *)

val pp_kind : Format.formatter -> kind -> unit

(** [classify i j] — with [i] before [j] in program order — the strongest
    dependency from [i] to [j], if any.  Memory accesses through different
    base registers are assumed disjoint (the code generator gives each
    buffer its own base register). *)
val classify : Instr.t -> Instr.t -> kind option
