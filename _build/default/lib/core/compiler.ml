(** The end-to-end GCD2 compiler (paper Figure 6):

    quantized model -> computational graph -> graph optimizations ->
    {b local plan enumeration} -> {b global layout & instruction
    selection} -> SIMD code-generation plan -> kernels packed by the
    {b SDA} scheduler -> latency/utilization report.

    The [selection] and [opcost] knobs expose every ablation the paper
    evaluates (local vs global selection, sub-graph size bounds,
    soft-dependency treatments, unrolling strategies, division lookup). *)

module Opcost = Gcd2_cost.Opcost
module Graphcost = Gcd2_cost.Graphcost
module Solver = Gcd2_layout.Solver
module Passes = Gcd2_graph.Passes
module Graph = Gcd2_graph.Graph

type selection =
  | Local  (** per-operator best plan, transformation costs ignored *)
  | Exhaustive  (** k^n global optimum (tiny graphs only) *)
  | Chain_dp  (** Equation 2; graph must be a chain *)
  | Optimal_dp  (** exact frontier DP over the whole graph *)
  | Partitioned of int  (** GCD2(k): cost-optimal partitioning, part size <= k *)
  | Pbqp  (** Scholz-Eckstein PBQP reductions (the paper's discussed alternative) *)

let pp_selection ppf = function
  | Local -> Fmt.string ppf "local"
  | Exhaustive -> Fmt.string ppf "exhaustive"
  | Chain_dp -> Fmt.string ppf "chain-dp"
  | Optimal_dp -> Fmt.string ppf "optimal-dp"
  | Partitioned k -> Fmt.pf ppf "gcd2(%d)" k
  | Pbqp -> Fmt.string ppf "pbqp"

type config = {
  name : string;
  opcost : Opcost.options;
  selection : selection;
  optimize_graph : bool;  (** activation fusion, identity elimination *)
}

(** The full GCD2 configuration (GCD2(13) selection, SDA packing,
    adaptive unrolling, division lookup). *)
let default =
  { name = "gcd2"; opcost = Opcost.gcd2; selection = Partitioned 13; optimize_graph = true }

type compiled = {
  config : config;
  graph : Graph.t;  (** graph after optimization passes *)
  cost : Graphcost.t;
  assignment : int array;  (** chosen plan index per node *)
  report : Graphcost.report;
  selection_seconds : float;  (** wall time spent in global selection *)
}

let solve selection (cost : Graphcost.t) =
  match selection with
  | Local -> Solver.local cost.Graphcost.problem
  | Exhaustive -> Solver.exhaustive cost.Graphcost.problem
  | Chain_dp -> Solver.chain_dp cost.Graphcost.problem
  | Optimal_dp -> Solver.optimal cost.Graphcost.problem
  | Partitioned k -> Solver.partitioned ~max_size:k cost.Graphcost.problem
  | Pbqp -> Gcd2_layout.Pbqp.solve cost.Graphcost.problem

let compile ?(config = default) (g : Graph.t) =
  Graph.validate g;
  let g = if config.optimize_graph then Passes.optimize g else g in
  let cost = Graphcost.build config.opcost g in
  let t0 = Sys.time () in
  let solved = solve config.selection cost in
  let selection_seconds = Sys.time () -. t0 in
  let report = Graphcost.report cost solved.Solver.plans in
  { config; graph = g; cost; assignment = solved.Solver.plans; report; selection_seconds }

(** Latency in milliseconds of a compiled model. *)
let latency_ms c = c.report.Graphcost.ms

let pp_summary ppf c =
  let r = c.report in
  Fmt.pf ppf
    "%s: %d ops, %.2f ms (%.0f cycles), util %.1f%%, %.2f GB/s, %.2f effective TOPS"
    c.config.name (Graph.size c.graph) r.Graphcost.ms r.Graphcost.cycles
    (100.0 *. r.Graphcost.utilization)
    r.Graphcost.bandwidth_gbs
    (Gcd2_cost.Config.tops ~macs:r.Graphcost.macs ~cycles:r.Graphcost.cycles)
