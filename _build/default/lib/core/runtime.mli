(** Execution of a compiled model.  Operators whose kernels the compiler
    fully lowers (matmul, conv-as-GEMM, elementwise, activations) run as
    generated VLIW programs on the simulated DSP under the exact chosen
    plan; the remaining staging operators run host-side with the
    reference semantics.  Every result is bit-identical to
    {!Gcd2_kernels.Interp} (the suite runs whole models both ways). *)

module T = Gcd2_tensor.Tensor

type stats = {
  mutable vm_nodes : int;  (** operators executed as DSP kernels *)
  mutable host_nodes : int;  (** operators staged host-side *)
  mutable vm_cycles : int;  (** simulator cycles across DSP kernels *)
}

(** Run a compiled model; [inputs] binds input-node ids to tensors. *)
val run_with_stats : Compiler.compiled -> inputs:(int * T.t) list -> T.t array * stats

val run : Compiler.compiled -> inputs:(int * T.t) list -> T.t array
