(** The end-to-end GCD2 compiler (paper Figure 6): graph optimizations,
    local plan enumeration, global layout & instruction selection, SDA
    packing, latency report.  The knobs expose every ablation of the
    paper's Section V. *)

module Opcost = Gcd2_cost.Opcost
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph

type selection =
  | Local  (** per-operator best plan, transformation costs ignored *)
  | Exhaustive  (** k^n global optimum (tiny graphs only) *)
  | Chain_dp  (** Equation 2; the graph must be a chain *)
  | Optimal_dp  (** exact frontier DP over the whole graph *)
  | Partitioned of int  (** GCD2(k): cost-optimal partitioning, parts <= k *)
  | Pbqp  (** Scholz-Eckstein PBQP reductions *)

val pp_selection : Format.formatter -> selection -> unit

type config = {
  name : string;
  opcost : Opcost.options;
  selection : selection;
  optimize_graph : bool;  (** activation fusion, identity elimination *)
}

(** The full GCD2 configuration: GCD2(13) selection, SDA packing, adaptive
    unrolling, division lookup. *)
val default : config

type compiled = {
  config : config;
  graph : Graph.t;  (** graph after optimization passes *)
  cost : Graphcost.t;
  assignment : int array;  (** chosen plan index per node *)
  report : Graphcost.report;
  selection_seconds : float;  (** wall time spent in global selection *)
}

val compile : ?config:config -> Graph.t -> compiled

(** Latency in milliseconds. *)
val latency_ms : compiled -> float

val pp_summary : Format.formatter -> compiled -> unit
