lib/core/runtime.ml: Array Compiler Fmt Gcd2_codegen Gcd2_cost Gcd2_graph Gcd2_kernels Gcd2_tensor Gcd2_util Gcd2_vm Graph List Op Option
