lib/core/compiler.mli: Format Gcd2_cost Gcd2_graph
