lib/core/runtime.mli: Compiler Gcd2_tensor
