lib/core/compiler.ml: Fmt Gcd2_cost Gcd2_graph Gcd2_layout Sys
