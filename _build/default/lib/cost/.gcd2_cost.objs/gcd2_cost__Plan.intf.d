lib/cost/plan.mli: Format Gcd2_codegen Gcd2_tensor
