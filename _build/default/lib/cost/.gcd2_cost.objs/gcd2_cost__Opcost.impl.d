lib/cost/opcost.ml: Array Config Float Flops Gcd2_codegen Gcd2_graph Gcd2_sched Gcd2_tensor Gcd2_util List Plan Streams
