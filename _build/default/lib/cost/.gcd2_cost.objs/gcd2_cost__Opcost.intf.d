lib/cost/opcost.mli: Gcd2_codegen Gcd2_graph Gcd2_sched Gcd2_tensor Plan
