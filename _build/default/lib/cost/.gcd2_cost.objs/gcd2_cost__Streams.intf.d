lib/cost/streams.mli: Gcd2_codegen Gcd2_sched
