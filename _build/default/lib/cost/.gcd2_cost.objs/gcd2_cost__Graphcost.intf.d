lib/cost/graphcost.mli: Gcd2_graph Gcd2_layout Opcost Plan
