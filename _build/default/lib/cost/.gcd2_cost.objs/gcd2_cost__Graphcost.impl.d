lib/cost/graphcost.ml: Array Config Gcd2_graph Gcd2_layout Gcd2_tensor List Op Opcost Plan
