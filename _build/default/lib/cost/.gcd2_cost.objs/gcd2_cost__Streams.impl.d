lib/cost/streams.ml: Array Gcd2_codegen Gcd2_isa Gcd2_sched Instr Program
