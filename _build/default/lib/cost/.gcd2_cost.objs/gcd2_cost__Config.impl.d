lib/cost/config.ml: Gcd2_tensor
