lib/cost/config.mli:
