lib/cost/plan.ml: Config Float Fmt Gcd2_codegen Gcd2_tensor
