lib/kernels/interp.ml: Array Float Fmt Gcd2_graph Gcd2_tensor Gcd2_util List Lut
