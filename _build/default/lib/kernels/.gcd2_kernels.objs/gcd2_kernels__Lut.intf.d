lib/kernels/lut.mli: Gcd2_graph Gcd2_tensor
