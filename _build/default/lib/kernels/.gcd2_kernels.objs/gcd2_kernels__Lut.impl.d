lib/kernels/lut.ml: Array Float Gcd2_graph Gcd2_tensor Gcd2_util
