lib/kernels/interp.mli: Gcd2_graph Gcd2_tensor
