(** 256-entry lookup tables for nonlinear functions.  On the DSP every
    transcendental activation (and division, via a reciprocal table)
    becomes a [Vlut]; the reference interpreter uses the same tables, so
    generated code is bit-exact by construction. *)

module Quant = Gcd2_tensor.Quant

(** [of_fn ~in_q ~out_q f] tabulates [quantize (f (dequantize q))] for
    every int8 [q]; entries are byte-encoded. *)
val of_fn : in_q:Quant.t -> out_q:Quant.t -> (float -> float) -> int array

(** Reference-side application (mirrors {!Gcd2_isa.Instr.Vlut}). *)
val apply : int array -> int -> int

val relu : float -> float
val relu6 : float -> float
val hswish : float -> float
val sigmoid : float -> float
val gelu : float -> float

val of_act : in_q:Quant.t -> out_q:Quant.t -> Gcd2_graph.Op.act -> int array
