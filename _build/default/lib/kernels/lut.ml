(** 256-entry lookup tables for nonlinear functions.

    On the DSP every transcendental activation (and division, one of the
    paper's "other optimizations": replacing an expensive division by a
    database lookup) becomes a [Vlut] instruction.  The reference
    interpreter uses the {e same} tables, so generated code is bit-exact
    against the reference by construction. *)

module Quant = Gcd2_tensor.Quant

(** [of_fn ~in_q ~out_q f] tabulates [quantize_out (f (dequantize_in q))]
    for every int8 input [q].  Entry index is the byte encoding of [q]
    (two's complement). *)
let of_fn ~in_q ~out_q f =
  Array.init 256 (fun byte ->
      let q = Gcd2_util.Saturate.sign_extend ~bits:8 byte in
      let x = Quant.dequantize in_q q in
      Quant.quantize out_q (f x) land 0xff)

(** Apply a table on the reference side (mirrors {!Gcd2_isa.Instr.Vlut}). *)
let apply table q =
  Gcd2_util.Saturate.sign_extend ~bits:8 table.(q land 0xff)

let relu x = Float.max 0.0 x
let relu6 x = Float.min 6.0 (Float.max 0.0 x)
let hswish x = x *. relu6 (x +. 3.0) /. 6.0
let sigmoid x = 1.0 /. (1.0 +. exp (-.x))
let gelu x = 0.5 *. x *. (1.0 +. Float.tanh (0.7978845608 *. (x +. (0.044715 *. x *. x *. x))))

let of_act ~in_q ~out_q (a : Gcd2_graph.Op.act) =
  match a with
  | Gcd2_graph.Op.A_relu -> of_fn ~in_q ~out_q relu
  | Gcd2_graph.Op.A_relu6 -> of_fn ~in_q ~out_q relu6
  | Gcd2_graph.Op.A_hswish -> of_fn ~in_q ~out_q hswish
