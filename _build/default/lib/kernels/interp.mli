(** Reference (golden) integer semantics for every operator: int8 inputs,
    int32 accumulation, fixed-point requantization.  The code generator
    must match these results bit-exactly for the operators it lowers to
    DSP kernels (checked by the test suite). *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Op = Gcd2_graph.Op
module Graph = Gcd2_graph.Graph

(** Row-major (m x k) times (k x n) with requantization. *)
val matmul_i8 :
  m:int -> k:int -> n:int -> int array -> int array -> mult:int -> shift:int -> int array

(** Per-output-channel requantization variant (the paper's future-work
    quantization refinement): column [j] uses [mults.(j)] with a common
    [shift]. *)
val matmul_i8_per_channel :
  m:int -> k:int -> n:int -> int array -> int array -> mults:int array -> shift:int ->
  int array

(** Patch extraction for convolution-as-GEMM; returns
    [(patches, rows, cols, oh, ow)].  Axes with kernel extent 1 take no
    padding. *)
val im2col :
  T.t -> kh:int -> kw:int -> stride:int -> pad:int -> int array * int * int * int * int

val conv2d :
  T.t -> weight:T.t -> kh:int -> kw:int -> stride:int -> pad:int -> cout:int ->
  act:Op.act option -> out_q:Q.t -> T.t

val depthwise_conv2d :
  T.t -> weight:T.t -> kh:int -> kw:int -> stride:int -> pad:int ->
  act:Op.act option -> out_q:Q.t -> T.t

val transposed_conv2d :
  T.t -> weight:T.t -> kh:int -> kw:int -> stride:int -> pad:int -> cout:int ->
  act:Op.act option -> out_q:Q.t -> T.t

val matmul : T.t -> weight:T.t -> cout:int -> act:Op.act option -> out_q:Q.t -> T.t
val batch_matmul : T.t -> T.t -> transpose_b:bool -> out_q:Q.t -> T.t

(** Elementwise with operand rescaling (clamped per operand, matching the
    vector kernels); division routes through the deterministic real
    computation that the reciprocal-lookup kernel approximates. *)
val binary_elementwise : [ `Add | `Sub | `Mul | `Div ] -> T.t -> T.t -> out_q:Q.t -> T.t

(** The (output quantization, real function) defining each pure unary
    operator; shared with the code generator so lookup tables agree. *)
val unary_spec : Op.t -> (Q.t * (float -> float)) option

val unary_lut : T.t -> out_q:Q.t -> (float -> float) -> T.t

(** Integer softmax / layer norm along the last axis. *)
val softmax : T.t -> T.t

val layer_norm : T.t -> T.t
val pool : mode:[ `Max | `Avg ] -> T.t -> kernel:int -> stride:int -> T.t
val global_avg_pool : T.t -> T.t
val transpose : T.t -> perm:int array -> T.t
val concat : T.t -> T.t -> axis:int -> T.t
val pad_spatial : T.t -> pad:int -> T.t
val upsample : T.t -> factor:int -> T.t

(** Evaluate one node given its input tensors (weights from the node). *)
val eval_node : Graph.node -> T.t list -> T.t

(** Run a whole graph; [inputs] binds input-node ids; returns per-node
    outputs. *)
val run : Graph.t -> inputs:(int * T.t) list -> T.t array
