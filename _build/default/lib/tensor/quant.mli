(** Symmetric int8 quantization parameters (TFLite-style): a quantized
    value [q] represents [scale * (q - zero)]. *)

type t = { scale : float; zero : int }

(** [make ?zero scale] — raises on non-positive scale. *)
val make : ?zero:int -> float -> t

(** scale 1/16, zero 0 — the default activation quantization. *)
val default : t

val dequantize : t -> int -> float
val quantize : t -> float -> int

(** Fixed-point multiplier for requantizing an int32 accumulator of
    [in_a * in_b] products into the [out] scale. *)
val requant_multiplier : in_a:t -> in_b:t -> out:t -> int * int

(** Multiplier rescaling a single int8 input into another scale. *)
val rescale_multiplier : from:t -> into:t -> int * int

(** Per-channel requantization multipliers normalized to a common shift
    (applied by {!Gcd2_isa.Instr.Vscalev}); returns [(mults, shift)]. *)
val per_channel_requant : in_a:t -> weight_scales:float array -> out:t -> int array * int

val pp : Format.formatter -> t -> unit
