(** Symmetric int8 quantization parameters (TFLite-style post-training
    quantization, which the paper applies identically across all compared
    frameworks).  A quantized value [q] represents the real value
    [scale * (q - zero)]; we use [zero = 0] (symmetric) everywhere except
    where a test exercises the general case. *)

module Sat = Gcd2_util.Saturate

type t = { scale : float; zero : int }

let make ?(zero = 0) scale =
  if scale <= 0.0 then invalid_arg "Quant.make: scale must be positive";
  { scale; zero }

let default = { scale = 1.0 /. 16.0; zero = 0 }

let dequantize t q = t.scale *. float_of_int (q - t.zero)

let quantize t x =
  Sat.sat8 (int_of_float (Float.round (x /. t.scale)) + t.zero)

(** Fixed-point multiplier for requantizing an int32 accumulator of
    products [in_a * in_b] into the [out] scale:
    [acc_scale = in_a.scale * in_b.scale], multiplier = acc_scale / out.scale. *)
let requant_multiplier ~in_a ~in_b ~out =
  Sat.quantize_multiplier (in_a.scale *. in_b.scale /. out.scale)

(** Multiplier for rescaling a single int8 input into another scale
    (elementwise adds first bring operands to a common scale). *)
let rescale_multiplier ~from ~into = Sat.quantize_multiplier (from.scale /. into.scale)

(** Per-channel requantization (per-output-channel weight scales, the
    quantization refinement the paper lists as future work): fixed-point
    multipliers normalized to one common shift so the vector engine can
    apply them with a single per-lane multiply ({!Gcd2_isa.Instr.Vscalev}).
    Returns [(mults, shift)]. *)
let per_channel_requant ~in_a ~weight_scales ~out =
  if Array.length weight_scales = 0 then invalid_arg "per_channel_requant: no channels";
  let pairs =
    Array.map
      (fun ws -> Sat.quantize_multiplier (in_a.scale *. ws /. out.scale))
      weight_scales
  in
  let smin = Array.fold_left (fun a (_, sh) -> min a sh) max_int pairs in
  let mults =
    Array.map (fun (m, sh) -> Sat.rounding_shift_right m (sh - smin)) pairs
  in
  (mults, smin)

let pp ppf t = Fmt.pf ppf "q(scale=%.6f, zero=%d)" t.scale t.zero
