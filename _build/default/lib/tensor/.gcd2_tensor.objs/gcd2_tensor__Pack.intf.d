lib/tensor/pack.mli: Layout Tensor
