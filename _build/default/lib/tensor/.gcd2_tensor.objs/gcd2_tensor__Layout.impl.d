lib/tensor/layout.ml: Float Fmt Gcd2_util
