lib/tensor/tensor.ml: Array Dump Fmt Gcd2_util Quant
