lib/tensor/pack.ml: Array Layout Tensor
