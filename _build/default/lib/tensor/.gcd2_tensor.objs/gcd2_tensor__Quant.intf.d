lib/tensor/quant.mli: Format
