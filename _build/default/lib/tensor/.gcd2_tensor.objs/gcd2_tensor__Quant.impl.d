lib/tensor/quant.ml: Array Float Fmt Gcd2_util
