lib/tensor/tensor.mli: Format Gcd2_util Quant
