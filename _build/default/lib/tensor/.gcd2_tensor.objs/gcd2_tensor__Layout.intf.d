lib/tensor/layout.mli: Format
