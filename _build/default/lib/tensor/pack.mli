(** Materialized layout buffers — what the generated DSP code actually
    loads and stores.  [pack] zero-pads; [unpack] recovers the logical
    matrix. *)

type buffer = {
  layout : Layout.t;
  rows : int;  (** logical (unpadded) rows *)
  cols : int;  (** logical (unpadded) columns *)
  bytes : int array;  (** int8 values, length {!Layout.padded_bytes} *)
}

(** Lay out a logical row-major [rows] x [cols] int8 matrix. *)
val pack : Layout.t -> rows:int -> cols:int -> int array -> buffer

(** Inverse of {!pack} (drops padding). *)
val unpack : buffer -> int array

(** Pack a tensor through its matrix view. *)
val pack_tensor : Layout.t -> Tensor.t -> buffer

(** Re-layout a buffer (the runtime transformation whose cost is
    {!Layout.transform_cycles}). *)
val convert : buffer -> Layout.t -> buffer
