(** Materialization of layout-specific int8 buffers (what the generated DSP
    code actually loads and stores).  [pack] pads with zeros; [unpack]
    recovers the logical row-major matrix. *)

type buffer = {
  layout : Layout.t;
  rows : int;  (** logical (unpadded) rows *)
  cols : int;  (** logical (unpadded) columns *)
  bytes : int array;  (** int8 values, length {!Layout.padded_bytes} *)
}

(** [pack layout ~rows ~cols data] lays out a logical row-major [rows] x
    [cols] int8 matrix. *)
let pack layout ~rows ~cols data =
  if Array.length data <> rows * cols then invalid_arg "Pack.pack: size mismatch";
  let bytes = Array.make (Layout.padded_bytes layout ~rows ~cols) 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      bytes.(Layout.offset layout ~rows ~cols ~r ~c) <- data.((r * cols) + c)
    done
  done;
  { layout; rows; cols; bytes }

(** Inverse of {!pack} (drops padding). *)
let unpack buf =
  let out = Array.make (buf.rows * buf.cols) 0 in
  for r = 0 to buf.rows - 1 do
    for c = 0 to buf.cols - 1 do
      out.((r * buf.cols) + c) <-
        buf.bytes.(Layout.offset buf.layout ~rows:buf.rows ~cols:buf.cols ~r ~c)
    done
  done;
  out

(** Pack a tensor through its matrix view. *)
let pack_tensor layout t =
  let rows, cols = Tensor.matrix_dims t in
  pack layout ~rows ~cols t.Tensor.data

(** Re-layout an existing buffer (the runtime transformation whose cost is
    {!Layout.transform_cycles}). *)
let convert buf dst_layout =
  if buf.layout = dst_layout then buf
  else pack dst_layout ~rows:buf.rows ~cols:buf.cols (unpack buf)
