lib/codegen/weights.mli: Simd
