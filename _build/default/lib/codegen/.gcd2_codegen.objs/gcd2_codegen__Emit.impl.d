lib/codegen/emit.ml: Array Gcd2_isa Gcd2_sched Instr List Program
