lib/codegen/eltwise.mli: Gcd2_isa Gcd2_sched Program
