lib/codegen/simd.mli: Format Gcd2_tensor
