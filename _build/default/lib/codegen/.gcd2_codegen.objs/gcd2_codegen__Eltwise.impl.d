lib/codegen/eltwise.ml: Emit Gcd2_isa Gcd2_sched Instr Program Regs
