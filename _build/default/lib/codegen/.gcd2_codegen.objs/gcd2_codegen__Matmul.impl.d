lib/codegen/matmul.ml: Array Emit Fmt Gcd2_isa Gcd2_sched Gcd2_tensor Gcd2_util Instr List Option Program Reg Regs Simd Weights
