lib/codegen/regs.mli: Gcd2_isa
