lib/codegen/weights.ml: Array Gcd2_tensor Gcd2_util Simd
