lib/codegen/matmul.mli: Gcd2_isa Gcd2_sched Program Simd
