lib/codegen/unroll.ml: Gcd2_tensor Gcd2_util List Matmul Simd
