lib/codegen/regs.ml: Fmt Gcd2_isa
