lib/codegen/testbench.ml: Array Gcd2_util Gcd2_vm Matmul Weights
