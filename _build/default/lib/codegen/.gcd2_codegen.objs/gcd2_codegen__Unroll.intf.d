lib/codegen/unroll.mli: Matmul Simd
