lib/codegen/testbench.mli: Matmul
