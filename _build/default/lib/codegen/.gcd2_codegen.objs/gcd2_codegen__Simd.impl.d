lib/codegen/simd.ml: Fmt Gcd2_tensor Gcd2_util
