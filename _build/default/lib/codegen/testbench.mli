(** Stage a matmul's operands into a simulator, run the generated kernel,
    return the logical result — used by tests, examples and benches. *)

type result = {
  data : int array;  (** logical row-major M x N int8 output *)
  cycles : int;
  packets : int;
  macs : int;
}

(** [run spec ~a ~w] — [a] row-major M x K, [w] row-major K x N;
    [per_channel] = [(mults, shift)] enables per-channel requantization. *)
val run :
  ?tables:(int * int array) list ->
  ?per_channel:int array * int ->
  Matmul.spec ->
  a:int array ->
  w:int array ->
  result
