(** Loop-unrolling selection (paper Section IV-C "Impact of Unrolling" and
    Figure 12): GCD2's shape-adaptive heuristic, the single-level
    baselines, and exhaustive search. *)

type setting = { un : int  (** output-column ("Out") unroll *); ug : int  (** reduction ("Mid") unroll *) }

type shape_class = Skinny | Near_square | Fat

val classify : m:int -> n:int -> shape_class
val shape_class_name : shape_class -> string

(** Clamp helpers (column grouping, register file, problem size). *)
val clamp_un : Simd.t -> n:int -> int -> int

val clamp_ug : k:int -> int -> int

(** The GCD2 heuristic. *)
val adaptive : Simd.t -> m:int -> k:int -> n:int -> setting

(** "Out": unroll only the output-column loop. *)
val fixed_out : Simd.t -> k:int -> n:int -> factor:int -> setting

(** "Mid": unroll only the reduction loop. *)
val fixed_mid : Simd.t -> k:int -> n:int -> factor:int -> setting

val none : Simd.t -> k:int -> n:int -> setting

(** Grid search minimizing generated-kernel cycles (Figure 12's expensive
    baseline). *)
val exhaustive : Matmul.spec -> setting
