(** Functional + timing simulator for the DSP of {!Gcd2_isa}.

    Instructions inside a packet are evaluated in program order.  Hard-
    dependent instructions are never co-packed (checked by the schedule
    verifier), and for the soft dependencies that {e are} co-packed the
    interlocked pipeline of the real machine produces exactly the
    program-order result, so this evaluation order is faithful.

    Timing: each executed packet contributes {!Gcd2_isa.Packet.cycles}
    (max member latency + soft-dependency stalls); packets do not overlap
    (paper footnote 5).  The cycle counter therefore always equals
    {!Gcd2_isa.Program.static_cycles} of the executed program — a property
    the test suite checks. *)

open Gcd2_isa
module Sat = Gcd2_util.Saturate

type counters = {
  mutable cycles : int;
  mutable packets : int;
  mutable instrs : int;
  mutable macs : int;  (** 8-bit multiply-accumulates executed *)
  mutable loaded_bytes : int;
  mutable stored_bytes : int;
}

type t = {
  sregs : int array;  (** 32 scalar registers, signed 32-bit values *)
  vregs : Bytes.t array;  (** 32 vector registers of 128 bytes *)
  mem : Bytes.t;
  mutable tables : (int * int array) list;
  counters : counters;
}

let create ?(mem_bytes = 1 lsl 22) () =
  {
    sregs = Array.make Reg.scalar_count 0;
    vregs = Array.init Reg.vector_count (fun _ -> Bytes.make Reg.vector_bytes '\000');
    mem = Bytes.make mem_bytes '\000';
    tables = [];
    counters =
      { cycles = 0; packets = 0; instrs = 0; macs = 0; loaded_bytes = 0; stored_bytes = 0 };
  }

let counters t = t.counters
let memory_size t = Bytes.length t.mem

(* ------------------------------------------------------------------ *)
(* Register access                                                     *)

let get_sreg t = function
  | Reg.R n -> t.sregs.(n)
  | r -> invalid_arg (Fmt.str "get_sreg: %a is not scalar" Reg.pp r)

let set_sreg t r v =
  match r with
  | Reg.R n -> t.sregs.(n) <- Sat.wrap32 v
  | r -> invalid_arg (Fmt.str "set_sreg: %a is not scalar" Reg.pp r)

(* A vector operand is a list of (physical register, byte offset) windows;
   pairs span two registers. *)
let operand_bytes = function
  | Reg.V _ -> Reg.vector_bytes
  | Reg.P _ -> 2 * Reg.vector_bytes
  | Reg.R _ -> invalid_arg "vector operand expected"

let get_byte t r i =
  match r with
  | Reg.V n -> Char.code (Bytes.get t.vregs.(n) i)
  | Reg.P k ->
    if i < Reg.vector_bytes then Char.code (Bytes.get t.vregs.(2 * k) i)
    else Char.code (Bytes.get t.vregs.((2 * k) + 1) (i - Reg.vector_bytes))
  | Reg.R _ -> invalid_arg "get_byte: scalar register"

let set_byte t r i v =
  let c = Char.chr (v land 0xff) in
  match r with
  | Reg.V n -> Bytes.set t.vregs.(n) i c
  | Reg.P k ->
    if i < Reg.vector_bytes then Bytes.set t.vregs.(2 * k) i c
    else Bytes.set t.vregs.((2 * k) + 1) (i - Reg.vector_bytes) c
  | Reg.R _ -> invalid_arg "set_byte: scalar register"

let lane_bytes = Instr.width_bytes

(* Little-endian signed lane read/write at an arbitrary width. *)
let get_lane t r ~width l =
  let b = lane_bytes width in
  let base = l * b in
  let rec go i acc = if i = b then acc else go (i + 1) (acc lor (get_byte t r (base + i) lsl (8 * i))) in
  Sat.sign_extend ~bits:(8 * b) (go 0 0)

let set_lane t r ~width l v =
  let b = lane_bytes width in
  let base = l * b in
  for i = 0 to b - 1 do
    set_byte t r (base + i) ((v asr (8 * i)) land 0xff)
  done

let lane_count r width = operand_bytes r / lane_bytes width

(* ------------------------------------------------------------------ *)
(* Memory access                                                       *)

let effective_address t (a : Instr.addr) = get_sreg t a.base + a.offset

let check_bounds t addr size =
  if addr < 0 || addr + size > Bytes.length t.mem then
    invalid_arg (Fmt.str "memory access out of bounds: [%d, %d)" addr (addr + size))

let mem_read8 t addr =
  check_bounds t addr 1;
  Char.code (Bytes.get t.mem addr)

let mem_write8 t addr v =
  check_bounds t addr 1;
  Bytes.set t.mem addr (Char.chr (v land 0xff))

let mem_read32 t addr =
  check_bounds t addr 4;
  let b i = Char.code (Bytes.get t.mem (addr + i)) in
  Sat.sign_extend ~bits:32 (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

let mem_write32 t addr v =
  check_bounds t addr 4;
  for i = 0 to 3 do
    Bytes.set t.mem (addr + i) (Char.chr ((v asr (8 * i)) land 0xff))
  done

(** Stage an int8 array into memory at [addr] (one byte per element). *)
let write_i8_array t ~addr data =
  check_bounds t addr (Array.length data);
  Array.iteri (fun i v -> Bytes.set t.mem (addr + i) (Char.chr (v land 0xff))) data

(** Read [len] int8 values from memory at [addr]. *)
let read_i8_array t ~addr ~len =
  check_bounds t addr len;
  Array.init len (fun i -> Sat.sign_extend ~bits:8 (Char.code (Bytes.get t.mem (addr + i))))

(** Stage an int32 array into memory at [addr] (4 bytes per element). *)
let write_i32_array t ~addr data =
  Array.iteri (fun i v -> mem_write32 t (addr + (4 * i)) v) data

let read_i32_array t ~addr ~len = Array.init len (fun i -> mem_read32 t (addr + (4 * i)))

(* ------------------------------------------------------------------ *)
(* Instruction semantics                                               *)

let scalar_byte v m = Sat.sign_extend ~bits:8 ((v asr (8 * m)) land 0xff)

let operand_value t = function Instr.Reg r -> get_sreg t r | Instr.Imm i -> i

let exec_salu op a b =
  match op with
  | Instr.Add -> Sat.wrap32 (a + b)
  | Instr.Sub -> Sat.wrap32 (a - b)
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> Sat.wrap32 (a lsl (b land 31))
  | Instr.Shr -> a asr (b land 31)
  | Instr.Min -> min a b
  | Instr.Max -> max a b

let exec_valu op width a b =
  let sat =
    match width with Instr.W8 -> Sat.sat8 | Instr.W16 -> Sat.sat16 | Instr.W32 -> Sat.sat32
  in
  match op with
  | Instr.Vadd -> sat (a + b)
  | Instr.Vsub -> sat (a - b)
  | Instr.Vmax -> max a b
  | Instr.Vmin -> min a b
  | Instr.Vavg -> (a + b + 1) asr 1
  | Instr.Vand -> a land b
  | Instr.Vor -> a lor b
  | Instr.Vxor -> a lxor b

let exec t instr =
  let c = t.counters in
  c.instrs <- c.instrs + 1;
  c.macs <- c.macs + Instr.macs instr;
  match instr with
  | Instr.Smovi (rd, imm) -> set_sreg t rd imm
  | Instr.Salu (op, rd, rs, o) -> set_sreg t rd (exec_salu op (get_sreg t rs) (operand_value t o))
  | Instr.Smul (rd, rs, o) -> set_sreg t rd (Sat.wrap32 (get_sreg t rs * operand_value t o))
  | Instr.Sload (rd, a) ->
    c.loaded_bytes <- c.loaded_bytes + 4;
    set_sreg t rd (mem_read32 t (effective_address t a))
  | Instr.Sstore (a, rs) ->
    c.stored_bytes <- c.stored_bytes + 4;
    mem_write32 t (effective_address t a) (get_sreg t rs)
  | Instr.Vload (vd, a) ->
    c.loaded_bytes <- c.loaded_bytes + Reg.vector_bytes;
    let addr = effective_address t a in
    check_bounds t addr Reg.vector_bytes;
    for i = 0 to Reg.vector_bytes - 1 do
      set_byte t vd i (mem_read8 t (addr + i))
    done
  | Instr.Vstore (a, vs) ->
    c.stored_bytes <- c.stored_bytes + Reg.vector_bytes;
    let addr = effective_address t a in
    check_bounds t addr Reg.vector_bytes;
    for i = 0 to Reg.vector_bytes - 1 do
      mem_write8 t (addr + i) (get_byte t vs i)
    done
  | Instr.Vmovi (vd, v) ->
    for i = 0 to operand_bytes vd - 1 do
      set_byte t vd i v
    done
  | Instr.Valu (op, width, vd, va, vb) ->
    let n = lane_count vd width in
    for l = 0 to n - 1 do
      set_lane t vd ~width l
        (exec_valu op width (get_lane t va ~width l) (get_lane t vb ~width l))
    done
  | Instr.Vaddw (pd, vs) ->
    for l = 0 to Reg.lanes_16 - 1 do
      let acc = get_lane t pd ~width:Instr.W32 l in
      let x = get_lane t vs ~width:Instr.W16 l in
      set_lane t pd ~width:Instr.W32 l (Sat.wrap32 (acc + x))
    done
  | Instr.Vmpy (pd, vs, rt) ->
    let rt_v = get_sreg t rt in
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpy: destination must be a pair"
    in
    for i = 0 to Reg.lanes_8 - 1 do
      let a = Sat.sign_extend ~bits:8 (get_byte t vs i) in
      let prod = a * scalar_byte rt_v (i mod 4) in
      let dst = if i mod 2 = 0 then lo else hi in
      let l = i / 2 in
      set_lane t dst ~width:Instr.W16 l
        (Sat.sat16 (get_lane t dst ~width:Instr.W16 l + prod))
    done
  | Instr.Vmpyb (pd, vs, rt, sel) ->
    let rt_v = get_sreg t rt in
    let wv = scalar_byte rt_v sel in
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpyb: destination must be a pair"
    in
    for i = 0 to Reg.lanes_8 - 1 do
      let a = Sat.sign_extend ~bits:8 (get_byte t vs i) in
      let dst = if i mod 2 = 0 then lo else hi in
      let l = i / 2 in
      set_lane t dst ~width:Instr.W16 l
        (Sat.sat16 (get_lane t dst ~width:Instr.W16 l + (a * wv)))
    done
  | Instr.Vmul (pd, va, vb) ->
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmul: destination must be a pair"
    in
    for i = 0 to Reg.lanes_8 - 1 do
      let a = Sat.sign_extend ~bits:8 (get_byte t va i) in
      let b = Sat.sign_extend ~bits:8 (get_byte t vb i) in
      let dst = if i mod 2 = 0 then lo else hi in
      let l = i / 2 in
      set_lane t dst ~width:Instr.W16 l
        (Sat.sat16 (get_lane t dst ~width:Instr.W16 l + (a * b)))
    done
  | Instr.Vmpa (pd, ps, rt) ->
    let rt_v = get_sreg t rt in
    let b m = scalar_byte rt_v m in
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpa: destination must be a pair"
    in
    let q0, q1 =
      match ps with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpa: source must be a pair"
    in
    let s8 r i = Sat.sign_extend ~bits:8 (get_byte t r i) in
    for j = 0 to Reg.lanes_16 - 1 do
      let l = get_lane t lo ~width:Instr.W16 j in
      set_lane t lo ~width:Instr.W16 j
        (Sat.sat16 (l + (s8 q0 (2 * j) * b 0) + (s8 q1 (2 * j) * b 1)));
      let h = get_lane t hi ~width:Instr.W16 j in
      set_lane t hi ~width:Instr.W16 j
        (Sat.sat16 (h + (s8 q0 ((2 * j) + 1) * b 2) + (s8 q1 ((2 * j) + 1) * b 3)))
    done
  | Instr.Vrmpy (vd, vs, rt) ->
    let rt_v = get_sreg t rt in
    for l = 0 to Reg.lanes_32 - 1 do
      let acc = ref (get_lane t vd ~width:Instr.W32 l) in
      for m = 0 to 3 do
        let a = Sat.sign_extend ~bits:8 (get_byte t vs ((4 * l) + m)) in
        acc := !acc + (a * scalar_byte rt_v m)
      done;
      set_lane t vd ~width:Instr.W32 l (Sat.wrap32 !acc)
    done
  | Instr.Vscale (vd, vs, mult, shift) ->
    for l = 0 to Reg.lanes_32 - 1 do
      set_lane t vd ~width:Instr.W32 l
        (Sat.apply_multiplier (get_lane t vs ~width:Instr.W32 l) (mult, shift))
    done
  | Instr.Vscalev (vd, vs, vm, shift) ->
    for l = 0 to Reg.lanes_32 - 1 do
      let mult = get_lane t vm ~width:Instr.W32 l in
      set_lane t vd ~width:Instr.W32 l
        (Sat.apply_multiplier (get_lane t vs ~width:Instr.W32 l) (mult, shift))
    done;
    ()
  | Instr.Vpack (vd, ps, w) ->
    (match w with
    | Instr.W32 ->
      for l = 0 to Reg.lanes_16 - 1 do
        set_lane t vd ~width:Instr.W16 l (Sat.sat16 (get_lane t ps ~width:Instr.W32 l))
      done
    | Instr.W16 ->
      for l = 0 to Reg.lanes_8 - 1 do
        set_lane t vd ~width:Instr.W8 l (Sat.sat8 (get_lane t ps ~width:Instr.W16 l))
      done
    | Instr.W8 -> invalid_arg "Vpack: cannot narrow 8-bit lanes")
  | Instr.Vshuff (pd, ps, width) ->
    let half = Reg.vector_bytes / lane_bytes width in
    (* Read the whole source pair first so pd = ps is well-defined. *)
    let src = Array.init (2 * half) (fun l -> get_lane t ps ~width l) in
    for i = 0 to half - 1 do
      set_lane t pd ~width (2 * i) src.(i);
      set_lane t pd ~width ((2 * i) + 1) src.(half + i)
    done
  | Instr.Vlut (vd, vs, id) ->
    let table =
      match List.assoc_opt id t.tables with
      | Some tbl -> tbl
      | None -> invalid_arg (Fmt.str "Vlut: unknown table %d" id)
    in
    let src = Array.init Reg.lanes_8 (fun i -> get_byte t vs i) in
    for i = 0 to Reg.lanes_8 - 1 do
      set_byte t vd i table.(src.(i) land 0xff)
    done
  | Instr.Vdup (vd, rs) ->
    let v = get_sreg t rs land 0xff in
    for i = 0 to operand_bytes vd - 1 do
      set_byte t vd i v
    done

(* ------------------------------------------------------------------ *)
(* Program execution                                                   *)

let exec_packet t (p : Packet.t) =
  t.counters.packets <- t.counters.packets + 1;
  t.counters.cycles <- t.counters.cycles + Packet.cycles p;
  List.iter (exec t) p

let rec exec_node t = function
  | Program.Block packets -> List.iter (exec_packet t) packets
  | Program.Loop { trip; body } ->
    for _ = 1 to trip do
      List.iter (exec_node t) body
    done

(** Run a whole program; registers and memory persist across calls. *)
let run t (prog : Program.t) =
  t.tables <- prog.Program.tables;
  List.iter (exec_node t) prog.Program.nodes
