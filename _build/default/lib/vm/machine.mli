(** Functional + timing simulator for the DSP.

    Instructions inside a packet evaluate in program order, which is
    exactly what the interlocked hardware computes for the co-packings the
    packers permit (hard-dependent instructions are never co-packed).
    Executed packets accumulate {!Gcd2_isa.Packet.cycles}, so the dynamic
    cycle counter always equals {!Gcd2_isa.Program.static_cycles} of the
    program — a property the test suite checks. *)

open Gcd2_isa

type counters = {
  mutable cycles : int;
  mutable packets : int;
  mutable instrs : int;
  mutable macs : int;  (** 8-bit multiply-accumulates executed *)
  mutable loaded_bytes : int;
  mutable stored_bytes : int;
}

type t

(** [create ~mem_bytes ()] — fresh machine with zeroed registers and
    memory (default 4 MiB). *)
val create : ?mem_bytes:int -> unit -> t

val counters : t -> counters
val memory_size : t -> int

val get_sreg : t -> Reg.t -> int
val set_sreg : t -> Reg.t -> int -> unit

(** Little-endian signed lane access into a vector register or pair. *)
val get_lane : t -> Reg.t -> width:Instr.width -> int -> int

val set_lane : t -> Reg.t -> width:Instr.width -> int -> int -> unit

(** Staging helpers (int8 = 1 byte/element, int32 = 4 bytes, little
    endian).  All memory access is bounds-checked. *)
val write_i8_array : t -> addr:int -> int array -> unit

val read_i8_array : t -> addr:int -> len:int -> int array
val write_i32_array : t -> addr:int -> int array -> unit
val read_i32_array : t -> addr:int -> len:int -> int array

(** Execute one instruction (updates counters). *)
val exec : t -> Instr.t -> unit

(** Run a whole program; registers and memory persist across calls. *)
val run : t -> Program.t -> unit
