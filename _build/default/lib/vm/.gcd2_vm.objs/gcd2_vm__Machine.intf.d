lib/vm/machine.mli: Gcd2_isa Instr Program Reg
