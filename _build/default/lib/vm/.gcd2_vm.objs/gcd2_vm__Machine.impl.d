lib/vm/machine.ml: Array Bytes Char Fmt Gcd2_isa Gcd2_util Instr List Packet Program Reg
