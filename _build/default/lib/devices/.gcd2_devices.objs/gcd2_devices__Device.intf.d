lib/devices/device.mli:
