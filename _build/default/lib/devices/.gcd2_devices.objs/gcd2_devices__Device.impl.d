lib/devices/device.ml: Float
