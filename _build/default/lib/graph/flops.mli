(** MAC and parameter counting (Table IV's #MACs / #Params columns). *)

val node_macs : Graph.t -> Graph.node -> int
val node_params : Graph.t -> Graph.node -> int
val total_macs : Graph.t -> int
val total_params : Graph.t -> int

(** Input + output activation bytes of a node (int8). *)
val node_activation_bytes : Graph.t -> Graph.node -> int
