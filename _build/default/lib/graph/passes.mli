(** Structural graph optimizations applied before compilation (the
    "existing framework" passes of the paper's Figure 6 workflow). *)

(** Fuse standalone activation nodes into their single-user producing
    compute node. *)
val fuse_activations : Graph.t -> Graph.t

(** Drop reshapes whose output shape equals their input shape. *)
val eliminate_identity_reshapes : Graph.t -> Graph.t

(** Remove nodes no listed output transitively depends on. *)
val dead_code_elimination : Graph.t -> outputs:int list -> Graph.t

(** The standard pre-compilation pipeline (identity elimination +
    activation fusion), with validation. *)
val optimize : Graph.t -> Graph.t
