(** Shape inference and validation for every operator. *)

exception Shape_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Shape_error s)) fmt

let numel dims = Array.fold_left ( * ) 1 dims

(* axes whose kernel extent is 1 take no padding ("same"-style padding
   per axis), which lets 1-D convolutions ride on the 2-D operators *)
let conv_out ~size ~k ~stride ~pad =
  let pad = if k = 1 then 0 else pad in
  let out = ((size + (2 * pad) - k) / stride) + 1 in
  if out <= 0 then fail "convolution output size %d is not positive" out;
  out

let nhwc name = function
  | [| n; h; w; c |] -> (n, h, w, c)
  | s -> fail "%s expects an NHWC input, got rank %d" name (Array.length s)

(** [infer op input_shapes] — output shape, or raises {!Shape_error}. *)
let infer (op : Op.t) (inputs : int array list) =
  let one () =
    match inputs with [ s ] -> s | _ -> fail "%s expects 1 input" (Op.name op)
  in
  let two () =
    match inputs with
    | [ a; b ] -> (a, b)
    | _ -> fail "%s expects 2 inputs" (Op.name op)
  in
  match op with
  | Op.Input { shape } | Op.Constant { shape } ->
    if inputs <> [] then fail "source operators take no inputs";
    Array.copy shape
  | Op.Conv2d { kh; kw; stride; pad; cout; _ } ->
    let n, h, w, _c = nhwc "conv2d" (one ()) in
    [| n; conv_out ~size:h ~k:kh ~stride ~pad; conv_out ~size:w ~k:kw ~stride ~pad; cout |]
  | Op.Depthwise_conv2d { kh; kw; stride; pad; _ } ->
    let n, h, w, c = nhwc "dwconv" (one ()) in
    [| n; conv_out ~size:h ~k:kh ~stride ~pad; conv_out ~size:w ~k:kw ~stride ~pad; c |]
  | Op.Transposed_conv2d { kh; kw; stride; pad; cout; _ } ->
    let n, h, w, _c = nhwc "tconv" (one ()) in
    let up s k = ((s - 1) * stride) - (2 * pad) + k in
    let oh = up h kh and ow = up w kw in
    if oh <= 0 || ow <= 0 then fail "transposed convolution output is not positive";
    [| n; oh; ow; cout |]
  | Op.Matmul { cout; _ } ->
    let s = one () in
    let r = Array.length s in
    if r < 1 then fail "matmul input must have rank >= 1";
    let out = Array.copy s in
    out.(r - 1) <- cout;
    out
  | Op.Batch_matmul { transpose_b } ->
    let a, b = two () in
    let ra = Array.length a and rb = Array.length b in
    if ra < 2 || rb < 2 || ra <> rb then fail "batch_matmul expects equal ranks >= 2";
    for i = 0 to ra - 3 do
      if a.(i) <> b.(i) then fail "batch_matmul batch dims differ"
    done;
    let k_a = a.(ra - 1) in
    let k_b, n = if transpose_b then (b.(rb - 1), b.(rb - 2)) else (b.(rb - 2), b.(rb - 1)) in
    if k_a <> k_b then fail "batch_matmul inner dims differ: %d vs %d" k_a k_b;
    let out = Array.copy a in
    out.(ra - 1) <- n;
    out
  | Op.Add | Op.Mul | Op.Sub | Op.Div ->
    let a, b = two () in
    (* allow exact match, scalar broadcast, or channel-broadcast of the
       second operand *)
    if a = b then Array.copy a
    else if numel b = 1 then Array.copy a
    else if Array.length b = 1 && b.(0) = a.(Array.length a - 1) then Array.copy a
    else
      fail "elementwise shapes differ: %a vs %a" Fmt.(Dump.array int) a
        Fmt.(Dump.array int) b
  | Op.Pow _ | Op.Relu | Op.Relu6 | Op.Hard_swish | Op.Sigmoid | Op.Tanh | Op.Gelu
  | Op.Softmax | Op.Layer_norm -> Array.copy (one ())
  | Op.Max_pool { kernel; stride } | Op.Avg_pool { kernel; stride } ->
    let n, h, w, c = nhwc "pool" (one ()) in
    [| n; conv_out ~size:h ~k:kernel ~stride ~pad:0; conv_out ~size:w ~k:kernel ~stride ~pad:0; c |]
  | Op.Global_avg_pool ->
    let n, _, _, c = nhwc "gap" (one ()) in
    [| n; 1; 1; c |]
  | Op.Reshape { shape } ->
    let s = one () in
    if numel shape <> numel s then
      fail "reshape element count mismatch: %d vs %d" (numel shape) (numel s);
    Array.copy shape
  | Op.Transpose { perm } ->
    let s = one () in
    if Array.length perm <> Array.length s then fail "transpose rank mismatch";
    let seen = Array.make (Array.length perm) false in
    Array.iter
      (fun p ->
        if p < 0 || p >= Array.length s || seen.(p) then fail "invalid permutation";
        seen.(p) <- true)
      perm;
    Array.map (fun p -> s.(p)) perm
  | Op.Concat { axis } ->
    let a, b = two () in
    if Array.length a <> Array.length b then fail "concat rank mismatch";
    if axis < 0 || axis >= Array.length a then fail "concat axis out of range";
    Array.iteri (fun i x -> if i <> axis && x <> b.(i) then fail "concat dims differ") a;
    let out = Array.copy a in
    out.(axis) <- a.(axis) + b.(axis);
    out
  | Op.Pad_spatial { pad } ->
    let n, h, w, c = nhwc "pad" (one ()) in
    [| n; h + (2 * pad); w + (2 * pad); c |]
  | Op.Upsample { factor } ->
    let n, h, w, c = nhwc "upsample" (one ()) in
    [| n; h * factor; w * factor; c |]
