(** Structural graph optimizations applied before compilation ("the
    existing framework" optimizations of the paper's Figure 6 workflow). *)

(* Rebuild a graph keeping nodes for which [keep] holds; inputs of removed
   nodes are redirected through [alias] (old id -> old id). *)
let rebuild (g : Graph.t) ~keep ~alias ~rewrite_op =
  let n = Graph.size g in
  let resolve i =
    let rec follow i = match alias.(i) with Some j -> follow j | None -> i in
    follow i
  in
  let new_id = Array.make n (-1) in
  let rev_nodes = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if keep.(i) then begin
      let node = Graph.node g i in
      let inputs = List.map (fun j -> new_id.(resolve j)) node.Graph.inputs in
      if List.exists (fun j -> j < 0) inputs then
        invalid_arg "Passes.rebuild: input removed but not aliased";
      let op = rewrite_op i node.Graph.op in
      rev_nodes :=
        { node with Graph.id = !count; inputs; op } :: !rev_nodes;
      new_id.(i) <- !count;
      incr count
    end
  done;
  { Graph.nodes = Array.of_list (List.rev !rev_nodes) }

(** Fuse standalone activation nodes into their producing compute node
    when the producer has a single user and no fused activation yet. *)
let fuse_activations (g : Graph.t) =
  let n = Graph.size g in
  let succ = Graph.successors g in
  let keep = Array.make n true in
  let alias = Array.make n None in
  let fused_act = Array.make n None in
  Graph.iter
    (fun node ->
      let act =
        match node.Graph.op with
        | Op.Relu -> Some Op.A_relu
        | Op.Relu6 -> Some Op.A_relu6
        | Op.Hard_swish -> Some Op.A_hswish
        | _ -> None
      in
      match (act, node.Graph.inputs) with
      | Some a, [ producer_id ] ->
        let producer = Graph.node g producer_id in
        let fusable =
          succ.(producer_id) = [ node.Graph.id ]
          && fused_act.(producer_id) = None
          &&
          match producer.Graph.op with
          | Op.Conv2d { act = None; _ }
          | Op.Depthwise_conv2d { act = None; _ }
          | Op.Transposed_conv2d { act = None; _ }
          | Op.Matmul { act = None; _ } -> true
          | _ -> false
        in
        if fusable then begin
          keep.(node.Graph.id) <- false;
          alias.(node.Graph.id) <- Some producer_id;
          fused_act.(producer_id) <- Some a
        end
      | _ -> ())
    g;
  let rewrite_op i op =
    match fused_act.(i) with
    | None -> op
    | Some a -> (
      match op with
      | Op.Conv2d c -> Op.Conv2d { c with act = Some a }
      | Op.Depthwise_conv2d c -> Op.Depthwise_conv2d { c with act = Some a }
      | Op.Transposed_conv2d c -> Op.Transposed_conv2d { c with act = Some a }
      | Op.Matmul m -> Op.Matmul { m with act = Some a }
      | _ -> op)
  in
  rebuild g ~keep ~alias ~rewrite_op

(** Drop reshapes whose output shape equals their input shape. *)
let eliminate_identity_reshapes (g : Graph.t) =
  let n = Graph.size g in
  let keep = Array.make n true in
  let alias = Array.make n None in
  Graph.iter
    (fun node ->
      match (node.Graph.op, node.Graph.inputs) with
      | Op.Reshape _, [ i ] when (Graph.node g i).Graph.out_shape = node.Graph.out_shape ->
        keep.(node.Graph.id) <- false;
        alias.(node.Graph.id) <- Some i
      | _ -> ())
    g;
  rebuild g ~keep ~alias ~rewrite_op:(fun _ op -> op)

(** Remove nodes that no (transitive) user in [outputs] depends on. *)
let dead_code_elimination (g : Graph.t) ~outputs =
  let n = Graph.size g in
  let keep = Array.make n false in
  let rec mark i =
    if not keep.(i) then begin
      keep.(i) <- true;
      List.iter mark (Graph.node g i).Graph.inputs
    end
  in
  List.iter mark outputs;
  rebuild g ~keep ~alias:(Array.make n None) ~rewrite_op:(fun _ op -> op)

(** The standard pre-compilation pipeline. *)
let optimize (g : Graph.t) =
  let g = eliminate_identity_reshapes g in
  let g = fuse_activations g in
  Graph.validate g;
  g
