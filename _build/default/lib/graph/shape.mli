(** Shape inference and validation for every operator. *)

exception Shape_error of string

(** [infer op input_shapes] — the output shape; raises {!Shape_error} on
    malformed combinations. *)
val infer : Op.t -> int array list -> int array
