(** DNN operators.  Feature maps are NHWC; weights are implicit operator
    parameters (attached to nodes when graphs execute functionally).
    Activations appear as standalone nodes or fused into the producing
    compute operator (see {!Passes.fuse_activations}). *)

type act = A_relu | A_relu6 | A_hswish

val act_name : act -> string

type pool = { kernel : int; stride : int }

type conv = {
  kh : int;
  kw : int;
  stride : int;
  pad : int;  (** applied per axis only where the kernel extent exceeds 1 *)
  cout : int;
  act : act option;
}

type t =
  | Input of { shape : int array }
  | Constant of { shape : int array }
  | Conv2d of conv
  | Depthwise_conv2d of { kh : int; kw : int; stride : int; pad : int; act : act option }
  | Transposed_conv2d of conv
  | Matmul of { cout : int; act : act option }  (** learned right operand *)
  | Batch_matmul of { transpose_b : bool }  (** two dynamic operands (attention) *)
  | Add
  | Mul
  | Sub
  | Div
  | Pow of float
  | Relu
  | Relu6
  | Hard_swish
  | Sigmoid
  | Tanh
  | Gelu
  | Softmax  (** along the last axis *)
  | Layer_norm  (** along the last axis *)
  | Max_pool of pool
  | Avg_pool of pool
  | Global_avg_pool
  | Reshape of { shape : int array }
  | Transpose of { perm : int array }
  | Concat of { axis : int }
  | Pad_spatial of { pad : int }
  | Upsample of { factor : int }  (** nearest-neighbour *)

(** Number of graph inputs the operator consumes. *)
val arity : t -> int

(** The paper's "layout transformation operators" (Reshape, Transpose) —
    anchors for desirable partitioning edges. *)
val is_layout_transform : t -> bool

(** Operators implemented through the SIMD multiply kernels. *)
val is_matmul_like : t -> bool

val name : t -> string
val pp : Format.formatter -> t -> unit
