(** DNN operators.  Feature maps are NHWC ([|n; h; w; c|]); weights are
    implicit parameters of the operator (their shapes derive from the
    operator attributes), matching how mobile inference frameworks
    serialize models.

    Activation functions can appear either as standalone nodes or fused
    into the producing compute operator (the fusion pass of
    {!Gcd2_graph.Passes}). *)

type act = A_relu | A_relu6 | A_hswish

let act_name = function A_relu -> "relu" | A_relu6 -> "relu6" | A_hswish -> "hswish"

type pool = { kernel : int; stride : int }

type conv = {
  kh : int;
  kw : int;
  stride : int;
  pad : int;
  cout : int;
  act : act option;
}

type t =
  | Input of { shape : int array }
  | Constant of { shape : int array }
  | Conv2d of conv
  | Depthwise_conv2d of { kh : int; kw : int; stride : int; pad : int; act : act option }
  | Transposed_conv2d of conv  (** stride acts as upsampling factor *)
  | Matmul of { cout : int; act : act option }  (** learned right operand, \[cin x cout\] *)
  | Batch_matmul of { transpose_b : bool }  (** two dynamic operands (attention) *)
  | Add
  | Mul
  | Sub
  | Div
  | Pow of float
  | Relu
  | Relu6
  | Hard_swish
  | Sigmoid
  | Tanh
  | Gelu
  | Softmax  (** along the last axis *)
  | Layer_norm  (** along the last axis *)
  | Max_pool of pool
  | Avg_pool of pool
  | Global_avg_pool
  | Reshape of { shape : int array }
  | Transpose of { perm : int array }
  | Concat of { axis : int }
  | Pad_spatial of { pad : int }  (** zero padding of H and W *)
  | Upsample of { factor : int }  (** nearest-neighbour *)

(** Number of graph inputs the operator consumes. *)
let arity = function
  | Input _ | Constant _ -> 0
  | Conv2d _ | Depthwise_conv2d _ | Transposed_conv2d _ | Matmul _ -> 1
  | Batch_matmul _ | Add | Mul | Sub | Div -> 2
  | Pow _ | Relu | Relu6 | Hard_swish | Sigmoid | Tanh | Gelu | Softmax | Layer_norm
  | Max_pool _ | Avg_pool _ | Global_avg_pool | Reshape _ | Transpose _ | Pad_spatial _
  | Upsample _ -> 1
  | Concat _ -> 2

(** Operators that perform no computation, only reshaping/re-laying-out
    data — the paper's "layout transformation operators" (its desirable
    partitioning edges end at these). *)
let is_layout_transform = function
  | Reshape _ | Transpose _ -> true
  | _ -> false

(** Compute-heavy operators implemented via the SIMD multiply kernels. *)
let is_matmul_like = function
  | Conv2d _ | Depthwise_conv2d _ | Transposed_conv2d _ | Matmul _ | Batch_matmul _ -> true
  | _ -> false

let name = function
  | Input _ -> "input"
  | Constant _ -> "const"
  | Conv2d c -> Fmt.str "conv2d %dx%d/%d c%d%s" c.kh c.kw c.stride c.cout
      (match c.act with Some a -> "+" ^ act_name a | None -> "")
  | Depthwise_conv2d c -> Fmt.str "dwconv %dx%d/%d" c.kh c.kw c.stride
  | Transposed_conv2d c -> Fmt.str "tconv %dx%d/%d c%d" c.kh c.kw c.stride c.cout
  | Matmul m -> Fmt.str "matmul c%d" m.cout
  | Batch_matmul { transpose_b } -> if transpose_b then "bmm_t" else "bmm"
  | Add -> "add"
  | Mul -> "mul"
  | Sub -> "sub"
  | Div -> "div"
  | Pow p -> Fmt.str "pow %.2f" p
  | Relu -> "relu"
  | Relu6 -> "relu6"
  | Hard_swish -> "hswish"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Gelu -> "gelu"
  | Softmax -> "softmax"
  | Layer_norm -> "layer_norm"
  | Max_pool p -> Fmt.str "maxpool %d/%d" p.kernel p.stride
  | Avg_pool p -> Fmt.str "avgpool %d/%d" p.kernel p.stride
  | Global_avg_pool -> "gap"
  | Reshape _ -> "reshape"
  | Transpose _ -> "transpose"
  | Concat { axis } -> Fmt.str "concat@%d" axis
  | Pad_spatial { pad } -> Fmt.str "pad %d" pad
  | Upsample { factor } -> Fmt.str "upsample x%d" factor

let pp ppf op = Fmt.string ppf (name op)
