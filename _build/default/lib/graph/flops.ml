(** MAC and parameter counting (the #MACs / #Params columns of the paper's
    Table IV). *)

let numel = Array.fold_left ( * ) 1

let in_shape g (n : Graph.node) =
  match n.Graph.inputs with
  | i :: _ -> (Graph.node g i).Graph.out_shape
  | [] -> [||]

(** Multiply-accumulate operations performed by one node. *)
let node_macs g (n : Graph.node) =
  match n.Graph.op with
  | Op.Conv2d { kh; kw; _ } ->
    let cin = (in_shape g n).(3) in
    numel n.out_shape * cin * kh * kw
  | Op.Depthwise_conv2d { kh; kw; _ } -> numel n.out_shape * kh * kw
  | Op.Transposed_conv2d { kh; kw; cout; _ } ->
    let s = in_shape g n in
    numel s * cout * kh * kw
  | Op.Matmul _ ->
    let s = in_shape g n in
    numel n.out_shape * s.(Array.length s - 1)
  | Op.Batch_matmul _ ->
    let s = in_shape g n in
    numel n.out_shape * s.(Array.length s - 1)
  | _ -> 0

(** Learned parameter count of one node (weights + bias). *)
let node_params g (n : Graph.node) =
  match n.Graph.op with
  | Op.Conv2d { kh; kw; cout; _ } ->
    let cin = (in_shape g n).(3) in
    (kh * kw * cin * cout) + cout
  | Op.Depthwise_conv2d { kh; kw; _ } ->
    let c = (in_shape g n).(3) in
    (kh * kw * c) + c
  | Op.Transposed_conv2d { kh; kw; cout; _ } ->
    let cin = (in_shape g n).(3) in
    (kh * kw * cin * cout) + cout
  | Op.Matmul { cout; _ } ->
    let s = in_shape g n in
    (s.(Array.length s - 1) * cout) + cout
  | _ -> 0

let total_macs g = Graph.fold (fun acc n -> acc + node_macs g n) 0 g
let total_params g = Graph.fold (fun acc n -> acc + node_params g n) 0 g

(** Bytes of activation traffic of a node: inputs read + output written
    (int8). *)
let node_activation_bytes g (n : Graph.node) =
  let input_bytes =
    List.fold_left (fun a i -> a + numel (Graph.node g i).Graph.out_shape) 0 n.inputs
  in
  input_bytes + numel n.out_shape
