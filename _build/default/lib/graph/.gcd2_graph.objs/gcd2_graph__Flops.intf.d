lib/graph/flops.mli: Graph
