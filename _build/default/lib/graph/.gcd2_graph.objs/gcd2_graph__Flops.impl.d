lib/graph/flops.ml: Array Graph List Op
