lib/graph/graph.ml: Array Dump Fmt Gcd2_tensor List Op Shape
