lib/graph/graph.mli: Format Gcd2_tensor Op
