lib/graph/op.ml: Fmt
