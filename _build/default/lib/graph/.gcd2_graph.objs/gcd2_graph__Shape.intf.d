lib/graph/shape.mli: Op
