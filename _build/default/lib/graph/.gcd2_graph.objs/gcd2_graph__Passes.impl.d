lib/graph/passes.ml: Array Graph List Op
