lib/graph/shape.ml: Array Dump Fmt Op
