lib/graph/op.mli: Format
