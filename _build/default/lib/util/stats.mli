(** Small numeric helpers for the benchmark harness. *)

val mean : float list -> float

(** Geometric mean (the paper's speedup aggregate). *)
val geomean : float list -> float

val maxf : float list -> float
val minf : float list -> float

(** Integer ceiling division. *)
val ceil_div : int -> int -> int

(** Round [a] up to the next multiple of [b]. *)
val round_up : int -> int -> int
