(** Small statistics helpers for the benchmark harness. *)

let mean xs =
  if xs = [] then 0.0
  else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean, the aggregate the paper reports for speedups. *)
let geomean xs =
  if xs = [] then 0.0
  else begin
    let logs = List.map (fun x -> if x <= 0.0 then 0.0 else log x) xs in
    exp (mean logs)
  end

let maxf xs = List.fold_left Float.max neg_infinity xs
let minf xs = List.fold_left Float.min infinity xs

(** Integer ceiling division. *)
let ceil_div a b = (a + b - 1) / b

(** Round [a] up to the next multiple of [b]. *)
let round_up a b = ceil_div a b * b
