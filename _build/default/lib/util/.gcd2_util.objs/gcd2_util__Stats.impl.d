lib/util/stats.ml: Float List
