lib/util/rng.mli:
