lib/util/stats.mli:
