lib/util/saturate.ml: Float
