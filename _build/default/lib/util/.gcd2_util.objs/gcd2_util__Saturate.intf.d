lib/util/saturate.mli:
