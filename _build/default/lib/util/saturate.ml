(** Saturating fixed-point arithmetic used by both the reference kernels and
    the DSP simulator.  All values are plain OCaml [int]s carrying the logical
    value; these helpers clamp them to the range of the simulated lane
    width. *)

let i8_min = -128
let i8_max = 127
let i16_min = -32768
let i16_max = 32767
let i32_min = -0x8000_0000
let i32_max = 0x7fff_ffff

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

(** [sat8 x] saturates [x] to signed 8-bit range. *)
let sat8 x = clamp ~lo:i8_min ~hi:i8_max x

(** [sat16 x] saturates [x] to signed 16-bit range. *)
let sat16 x = clamp ~lo:i16_min ~hi:i16_max x

(** [sat32 x] saturates [x] to signed 32-bit range. *)
let sat32 x = clamp ~lo:i32_min ~hi:i32_max x

(** [wrap32 x] wraps [x] to signed 32-bit two's-complement, the behaviour of
    non-saturating scalar arithmetic on the DSP. *)
let wrap32 x =
  let m = x land 0xffff_ffff in
  if m land 0x8000_0000 <> 0 then m - 0x1_0000_0000 else m

(** Sign-extend the low [bits] bits of [x]. *)
let sign_extend ~bits x =
  let m = x land ((1 lsl bits) - 1) in
  if m land (1 lsl (bits - 1)) <> 0 then m - (1 lsl bits) else m

(** [rounding_shift_right x n] arithmetic right shift with round-to-nearest
    (ties away from zero), as used by requantization. [n >= 0]. *)
let rounding_shift_right x n =
  if n = 0 then x
  else begin
    let half = 1 lsl (n - 1) in
    if x >= 0 then (x + half) asr n else - (((- x) + half) asr n)
  end

(** Fixed-point requantization multiplier: the pair [(mult, shift)] encodes a
    real scale [s = mult / 2^shift] with [mult] a signed 31-bit integer.
    [quantize_multiplier s] computes such a pair for [0 < s < 1]. *)
let quantize_multiplier s =
  if s <= 0.0 then invalid_arg "quantize_multiplier: scale must be positive";
  let rec norm s shift =
    if s >= 0.5 || shift >= 31 then (s, shift) else norm (s *. 2.0) (shift + 1)
  in
  let rec shrink s shift =
    if s < 1.0 || shift <= 0 then (s, shift) else shrink (s /. 2.0) (shift - 1)
  in
  let s, shift = norm s 0 in
  let s, shift = shrink s shift in
  let mult = int_of_float (Float.round (s *. 2147483648.0)) in
  let mult, shift = if mult = 0x8000_0000 then (mult / 2, shift - 1) else (mult, shift) in
  (mult, shift + 31)

(** [apply_multiplier x (mult, shift)] computes
    [round (x * mult / 2^shift)] with saturation to 32 bits, mirroring the
    DSP's fixed-point scaling instruction. *)
let apply_multiplier x (mult, shift) =
  (* Products of a 32-bit accumulator and a 31-bit multiplier fit in OCaml's
     63-bit native ints, so the computation below is exact. *)
  sat32 (rounding_shift_right (x * mult) shift)

(** Requantize a 32-bit accumulator to int8:
    [requantize acc ~mult ~shift ~zero] = sat8 (round (acc * s) + zero). *)
let requantize acc ~mult ~shift ~zero =
  sat8 (apply_multiplier acc (mult, shift) + zero)
