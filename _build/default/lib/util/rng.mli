(** Deterministic splitmix64 pseudo-random generator; every experiment
    seeds its own instance so results are exactly reproducible. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** [int t bound] draws uniformly from [0, bound). *)
val int : t -> int -> int

(** Uniform signed value in [-127, 127] (symmetric quantized range). *)
val int8 : t -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** Fill an array with symmetric int8 values. *)
val fill_int8 : t -> int array -> unit
