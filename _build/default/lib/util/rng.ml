(** Deterministic splitmix64 random-number generator.  Every experiment in
    the benchmark harness seeds its own generator so results are exactly
    reproducible run to run. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] draws a uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  v mod bound

(** [int8 t] draws a uniform signed 8-bit value in [-127, 127] (symmetric
    quantized range, avoiding -128 as quantizers conventionally do). *)
let int8 t = int t 255 - 127

(** [float t] draws a uniform float in [0, 1). *)
let float t =
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v /. 9007199254740992.0

(** [fill_int8 t arr] fills [arr] with symmetric int8 values. *)
let fill_int8 t arr =
  for i = 0 to Array.length arr - 1 do
    arr.(i) <- int8 t
  done
