(** Saturating fixed-point arithmetic shared by the reference kernels and
    the DSP simulator.  Values are plain OCaml [int]s carrying the logical
    value; these helpers clamp or wrap them to simulated lane widths. *)

val i8_min : int
val i8_max : int
val i16_min : int
val i16_max : int
val i32_min : int
val i32_max : int

val clamp : lo:int -> hi:int -> int -> int

(** Saturate to signed 8-bit range. *)
val sat8 : int -> int

(** Saturate to signed 16-bit range. *)
val sat16 : int -> int

(** Saturate to signed 32-bit range. *)
val sat32 : int -> int

(** Wrap to signed 32-bit two's complement (non-saturating scalar ops). *)
val wrap32 : int -> int

(** [sign_extend ~bits x] sign-extends the low [bits] bits of [x]. *)
val sign_extend : bits:int -> int -> int

(** Arithmetic right shift with round-to-nearest, ties away from zero. *)
val rounding_shift_right : int -> int -> int

(** [quantize_multiplier s] encodes a positive real scale as a fixed-point
    pair [(mult, shift)] with [s = mult / 2^shift] and [mult] a signed
    31-bit integer. *)
val quantize_multiplier : float -> int * int

(** [apply_multiplier x (mult, shift)] computes
    [sat32 (round (x * mult / 2^shift))] exactly. *)
val apply_multiplier : int -> int * int -> int

(** Requantize a 32-bit accumulator to int8:
    [sat8 (round (acc * mult / 2^shift) + zero)]. *)
val requantize : int -> mult:int -> shift:int -> zero:int -> int
