(** Image-classification models of Table IV (224x224x3 inputs). *)

val mobilenet_v3 : unit -> Gcd2_graph.Graph.t
val efficientnet_b0 : unit -> Gcd2_graph.Graph.t
val resnet50 : unit -> Gcd2_graph.Graph.t
