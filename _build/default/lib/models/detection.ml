(** Object-detection models of Table IV: EfficientDet-d0 (2-D, BiFPN — the
    822-operator graph that motivates bounded-sub-graph selection) and
    PixOr (3-D detection from a bird's-eye-view LiDAR grid). *)

open Gcd2_graph
module B = Graph.Builder

(* Separable convolution, the BiFPN workhorse. *)
let sep_conv ?act b x ~cout =
  let h = Blocks.dwconv b x ~k:3 ~stride:1 in
  Blocks.conv ?act b h ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout

(* Weighted feature fusion: per-input scalar gates, sum, activation,
   separable conv. *)
let fuse2 b ~cout x y =
  let gx = Blocks.scalar_const b 0.5 and gy = Blocks.scalar_const b 0.5 in
  let x = B.add b Op.Mul [ x; gx ] in
  let y = B.add b Op.Mul [ y; gy ] in
  let s = B.add b Op.Add [ x; y ] in
  (* fast-normalized fusion: divide by the gate sum (+eps) *)
  let norm = Blocks.scalar_const b 1.0 in
  let s = B.add b Op.Div [ s; norm ] in
  let s = B.add b Op.Hard_swish [ s ] in
  sep_conv b s ~cout

let efficientdet_d0 () =
  let b = B.create () in
  let x = B.input b [| 1; 512; 512; 3 |] in
  (* EfficientNet-b0 backbone trunk (reduced head), tapping P3/P4/P5 *)
  let x = Blocks.conv ~act:`Relu6 b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:32 in
  let block x ~cin ~e ~cout ~k ~stride =
    Blocks.inverted_residual ~se:true ~act:`Relu6 b x ~cin ~exp:(cin * e) ~cout ~k ~stride
  in
  let x = block x ~cin:32 ~e:1 ~cout:16 ~k:3 ~stride:1 in
  let x = block x ~cin:16 ~e:6 ~cout:24 ~k:3 ~stride:2 in
  let x = block x ~cin:24 ~e:6 ~cout:24 ~k:3 ~stride:1 in
  let x = block x ~cin:24 ~e:6 ~cout:40 ~k:5 ~stride:2 in
  let p3_trunk = block x ~cin:40 ~e:6 ~cout:40 ~k:5 ~stride:1 in
  let x = block p3_trunk ~cin:40 ~e:6 ~cout:80 ~k:3 ~stride:2 in
  let x = block x ~cin:80 ~e:6 ~cout:80 ~k:3 ~stride:1 in
  let x = block x ~cin:80 ~e:6 ~cout:112 ~k:5 ~stride:1 in
  let p4_trunk = block x ~cin:112 ~e:6 ~cout:112 ~k:5 ~stride:1 in
  let x = block p4_trunk ~cin:112 ~e:6 ~cout:192 ~k:5 ~stride:2 in
  let x = block x ~cin:192 ~e:6 ~cout:192 ~k:5 ~stride:1 in
  let p5_trunk = block x ~cin:192 ~e:6 ~cout:320 ~k:3 ~stride:1 in
  (* lateral 1x1s into the BiFPN width (64) + extra levels P6, P7 *)
  let w = 64 in
  let p3 = Blocks.conv b p3_trunk ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:w in
  let p4 = Blocks.conv b p4_trunk ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:w in
  let p5 = Blocks.conv b p5_trunk ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:w in
  let p6 = B.add b (Op.Max_pool { kernel = 2; stride = 2 }) [ p5 ] in
  let p7 = B.add b (Op.Max_pool { kernel = 2; stride = 2 }) [ p6 ] in
  (* three BiFPN layers *)
  let bifpn (p3, p4, p5, p6, p7) =
    let up x = B.add b (Op.Upsample { factor = 2 }) [ x ] in
    let down x = B.add b (Op.Max_pool { kernel = 2; stride = 2 }) [ x ] in
    (* top-down *)
    let p6_td = fuse2 b ~cout:w p6 (up p7) in
    let p5_td = fuse2 b ~cout:w p5 (up p6_td) in
    let p4_td = fuse2 b ~cout:w p4 (up p5_td) in
    let p3_out = fuse2 b ~cout:w p3 (up p4_td) in
    (* bottom-up *)
    let p4_out = fuse2 b ~cout:w p4_td (down p3_out) in
    let p5_out = fuse2 b ~cout:w p5_td (down p4_out) in
    let p6_out = fuse2 b ~cout:w p6_td (down p5_out) in
    let p7_out = fuse2 b ~cout:w p7 (down p6_out) in
    (p3_out, p4_out, p5_out, p6_out, p7_out)
  in
  let levels = ref (p3, p4, p5, p6, p7) in
  for _ = 1 to 3 do
    levels := bifpn !levels
  done;
  let l3, l4, l5, l6, l7 = !levels in
  (* class + box heads: 3 separable convs then prediction, shared across
     levels (so emitted per level) *)
  List.iter
    (fun p ->
      let head x cout_final =
        let h = sep_conv ~act:`Hswish b x ~cout:w in
        let h = sep_conv ~act:`Hswish b h ~cout:w in
        let h = sep_conv ~act:`Hswish b h ~cout:w in
        ignore (Blocks.conv b h ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:cout_final)
      in
      head p (9 * 90);
      (* class scores *)
      head p (9 * 4) (* box regression *))
    [ l3; l4; l5; l6; l7 ];
  B.finish b

(** PixOr: single-shot 3-D detector on a 800x704x36 BEV grid. *)
let pixor () =
  let b = B.create () in
  let x = B.input b [| 1; 800; 704; 36 |] in
  (* backbone: resnet-ish with early downsampling *)
  let x = Blocks.conv ~act:`Relu b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:24 in
  let x = Blocks.conv ~act:`Relu b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:24 in
  let stage x ~cin ~mid ~cout ~blocks ~stride =
    let x = ref (Blocks.resnet_bottleneck b x ~cin ~mid ~cout ~stride) in
    for _ = 2 to blocks do
      x := Blocks.resnet_bottleneck b !x ~cin:cout ~mid ~cout ~stride:1
    done;
    !x
  in
  let c2 = stage x ~cin:24 ~mid:16 ~cout:64 ~blocks:3 ~stride:2 in
  let c3 = stage c2 ~cin:64 ~mid:24 ~cout:96 ~blocks:6 ~stride:2 in
  let c4 = stage c3 ~cin:96 ~mid:32 ~cout:128 ~blocks:3 ~stride:2 in
  (* FPN-style decoder back to stride 4 *)
  let u1 = B.add b (Op.Upsample { factor = 2 }) [ c4 ] in
  let l1 = Blocks.conv b c3 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:128 in
  let m1 = B.add b Op.Add [ u1; l1 ] in
  let m1 = Blocks.conv ~act:`Relu b m1 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:64 in
  let u2 = B.add b (Op.Upsample { factor = 2 }) [ m1 ] in
  let l2 = Blocks.conv b c2 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:64 in
  let m2 = B.add b Op.Add [ u2; l2 ] in
  let m2 = Blocks.conv ~act:`Relu b m2 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:48 in
  (* header: 4 shared convs then classification + regression maps *)
  let h = ref m2 in
  for _ = 1 to 4 do
    h := Blocks.conv ~act:`Relu b !h ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:48
  done;
  let cls = Blocks.conv b !h ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:1 in
  let _ = B.add b Op.Sigmoid [ cls ] in
  let _reg = Blocks.conv b !h ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:6 in
  B.finish b
