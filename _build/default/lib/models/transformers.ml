(** Transformer models of Table IV: TinyBERT (NLP) and Conformer (speech
    recognition) — the two models GCD2 runs on a mobile DSP for the first
    time (they need operator coverage beyond TFLite/SNPE: batched MatMul
    variants, Pow, LayerNorm). *)

open Gcd2_graph
module B = Graph.Builder

(** TinyBERT-style encoder: 6 layers, hidden 264, FF 1056, sequence 256.
    Embedding lookup happens outside the DSP graph (it is a table gather);
    the graph input is the embedded sequence. *)
let tinybert ?(seq = 256) ?(dim = 264) ?(layers = 6) ?(ff = 1056) () =
  let b = B.create () in
  let x = B.input b [| seq; dim |] in
  (* embedding post-processing: layer norm with explicit variance ops, the
     Pow operator the paper calls out as unsupported by other DSPs' stacks *)
  let sq = B.add b (Op.Pow 2.0) [ x ] in
  let mixed = B.add b Op.Add [ x; sq ] in
  let x = B.add b Op.Layer_norm [ mixed ] in
  let x = ref x in
  for _ = 1 to layers do
    x := Blocks.encoder_layer ~bias:true ~mask:true b !x ~seq ~dim ~heads:12 ~ff
  done;
  (* pooler + classifier *)
  let pooled = B.matmul b !x ~cout:dim in
  let pooled = B.add b Op.Tanh [ pooled ] in
  let logits = B.matmul b pooled ~cout:2 in
  let _ = B.add b Op.Softmax [ logits ] in
  B.finish b

(* One conformer block: half-FF, MHSA, convolution module, half-FF,
   final layer norm (Gulati et al. 2020). *)
let conformer_block b x ~seq ~dim ~heads ~ff =
  let half = Blocks.scalar_const b 0.5 in
  (* FF module 1 (half-step) *)
  let h = B.add b Op.Layer_norm [ x ] in
  let h = B.matmul b h ~cout:ff in
  let h = B.add b Op.Hard_swish [ h ] in
  let h = B.matmul b h ~cout:dim in
  let h = B.add b Op.Mul [ h; half ] in
  let x = B.add b Op.Add [ x; h ] in
  (* MHSA module *)
  let h = B.add b Op.Layer_norm [ x ] in
  let a = Blocks.attention b h ~seq ~dim ~heads in
  let x = B.add b Op.Add [ x; a ] in
  (* convolution module: pointwise expand, depthwise over time, pointwise *)
  let h = B.add b Op.Layer_norm [ x ] in
  let h = B.matmul b h ~cout:(2 * dim) in
  let h = B.add b Op.Sigmoid [ h ] in
  (* gated linear unit approximated by sigmoid + mul *)
  let g = B.matmul b h ~cout:dim in
  let h = B.add b Op.Mul [ g; Blocks.scalar_const b 1.0 ] in
  let h = B.add b (Op.Reshape { shape = [| 1; seq; 1; dim |] }) [ h ] in
  let h = B.add b (Op.Depthwise_conv2d { kh = 9; kw = 1; stride = 1; pad = 4; act = None }) [ h ] in
  let h = B.add b (Op.Reshape { shape = [| seq; dim |] }) [ h ] in
  let h = B.add b Op.Hard_swish [ h ] in
  let h = B.matmul b h ~cout:dim in
  let x = B.add b Op.Add [ x; h ] in
  (* FF module 2 (half-step) + closing norm *)
  let h = B.add b Op.Layer_norm [ x ] in
  let h = B.matmul b h ~cout:ff in
  let h = B.add b Op.Hard_swish [ h ] in
  let h = B.matmul b h ~cout:dim in
  let h = B.add b Op.Mul [ h; half ] in
  let x = B.add b Op.Add [ x; h ] in
  B.add b Op.Layer_norm [ x ]

(** Conformer encoder: convolutional subsampling then 16 blocks, d=56,
    ~15 s of audio (1504 frames after subsampling). *)
let conformer ?(seq = 1504) ?(dim = 56) ?(blocks = 16) () =
  let b = B.create () in
  (* 4x time subsampling over 80-band filterbanks *)
  let x = B.input b [| 1; 4 * seq; 80; 1 |] in
  let x = Blocks.conv ~act:`Relu b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:32 in
  let x = Blocks.conv ~act:`Relu b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:32 in
  let x = B.add b (Op.Reshape { shape = [| seq; 32 * 20 |] }) [ x ] in
  let x = B.matmul b x ~cout:dim in
  let x = ref x in
  for _ = 1 to blocks do
    x := conformer_block b !x ~seq ~dim ~heads:4 ~ff:(4 * dim)
  done;
  (* CTC head over characters *)
  let logits = B.matmul b !x ~cout:32 in
  let _ = B.add b Op.Softmax [ logits ] in
  B.finish b
