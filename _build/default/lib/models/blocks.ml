(** Shared building blocks for the model zoo.  Batch-norms are folded into
    the preceding convolution (standard for quantized inference graphs);
    activations are separate nodes, as mobile converters emit them — the
    compiler's fusion pass merges them. *)

open Gcd2_graph
module B = Graph.Builder

let scalar_const b v =
  ignore v;
  B.constant b [| 1 |]

(** conv + activation node. *)
let conv ?act b x ~kh ~kw ~stride ~pad ~cout =
  let c = B.conv2d b x ~kh ~kw ~stride ~pad ~cout in
  match act with
  | None -> c
  | Some `Relu -> B.add b Op.Relu [ c ]
  | Some `Relu6 -> B.add b Op.Relu6 [ c ]
  | Some `Hswish -> B.add b Op.Hard_swish [ c ]
  | Some `Sigmoid -> B.add b Op.Sigmoid [ c ]
  | Some `Tanh -> B.add b Op.Tanh [ c ]
  | Some `Gelu -> B.add b Op.Gelu [ c ]

let dwconv ?act b x ~k ~stride =
  (* mobile converters emit an explicit pad before strided depthwise
     convolutions *)
  let x, pad =
    if stride > 1 && k > 1 then (B.add b (Op.Pad_spatial { pad = k / 2 }) [ x ], 0)
    else (x, k / 2)
  in
  let c = B.dwconv b x ~kh:k ~kw:k ~stride ~pad in
  match act with
  | None -> c
  | Some `Relu -> B.add b Op.Relu [ c ]
  | Some `Relu6 -> B.add b Op.Relu6 [ c ]
  | Some `Hswish -> B.add b Op.Hard_swish [ c ]
  | Some `Sigmoid -> B.add b Op.Sigmoid [ c ]
  | Some `Tanh -> B.add b Op.Tanh [ c ]
  | Some `Gelu -> B.add b Op.Gelu [ c ]

(** Squeeze-and-excitation: GAP -> bottleneck FC -> expand FC -> gate.
    The hard-sigmoid gate appears decomposed (add, relu6, scale), as
    TFLite converters emit it. *)
let se_block b x ~channels ~reduce =
  let pooled = B.add b Op.Global_avg_pool [ x ] in
  let squeezed = B.add b (Op.Matmul { cout = max 8 (channels / reduce); act = None }) [ pooled ] in
  let squeezed = B.add b Op.Relu [ squeezed ] in
  let expanded = B.add b (Op.Matmul { cout = channels; act = None }) [ squeezed ] in
  let gate = B.add b Op.Add [ expanded; scalar_const b 3.0 ] in
  let gate = B.add b Op.Relu6 [ gate ] in
  let gate = B.add b Op.Mul [ gate; scalar_const b (1.0 /. 6.0) ] in
  let gate = B.add b (Op.Reshape { shape = [| channels |] }) [ gate ] in
  B.add b Op.Mul [ x; gate ]

(** Inverted-residual bottleneck (MobileNet/EfficientNet). *)
let inverted_residual ?(se = false) ?(act = `Relu6) b x ~cin ~exp ~cout ~k ~stride =
  let h = if exp <> cin then conv ~act b x ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:exp else x in
  let h = dwconv ~act b h ~k ~stride in
  let h = if se then se_block b h ~channels:exp ~reduce:4 else h in
  let h = conv b h ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout in
  if stride = 1 && cin = cout then B.add b Op.Add [ x; h ] else h

(** ResNet bottleneck (1x1 reduce, 3x3, 1x1 expand + skip). *)
let resnet_bottleneck b x ~cin ~mid ~cout ~stride =
  let h = conv ~act:`Relu b x ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:mid in
  let h = conv ~act:`Relu b h ~kh:3 ~kw:3 ~stride ~pad:1 ~cout:mid in
  let h = conv b h ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout in
  let skip =
    if stride <> 1 || cin <> cout then conv b x ~kh:1 ~kw:1 ~stride ~pad:0 ~cout else x
  in
  let s = B.add b Op.Add [ skip; h ] in
  B.add b Op.Relu [ s ]

(** Plain residual block of two 3x3 convolutions (style transfer / GANs). *)
let residual_3x3 b x ~channels =
  let h = conv ~act:`Relu b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:channels in
  let h = conv b h ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:channels in
  B.add b Op.Add [ x; h ]

(** Linear layer with an explicit bias-add node (how converters emit
    fully-connected layers before fusion). *)
let linear ?(bias = false) b x ~cout =
  let h = B.matmul b x ~cout in
  if bias then B.add b Op.Add [ h; scalar_const b 0.0 ] else h

(** Multi-head self-attention (pre-norm transformer flavour).  [mask] adds
    an attention-mask node on the scores; [bias] emits bias-adds after
    every projection. *)
let attention ?(bias = false) ?(mask = false) b x ~seq ~dim ~heads =
  let dh = dim / heads in
  let q = linear ~bias b x ~cout:dim in
  let k = linear ~bias b x ~cout:dim in
  let v = linear ~bias b x ~cout:dim in
  let split t =
    let t = B.add b (Op.Reshape { shape = [| seq; heads; dh |] }) [ t ] in
    B.add b (Op.Transpose { perm = [| 1; 0; 2 |] }) [ t ]
  in
  let qh = split q and kh = split k and vh = split v in
  let scores = B.add b (Op.Batch_matmul { transpose_b = true }) [ qh; kh ] in
  let scale = scalar_const b (1.0 /. sqrt (float_of_int dh)) in
  let scores = B.add b Op.Mul [ scores; scale ] in
  let scores =
    if mask then B.add b Op.Add [ scores; scalar_const b 0.0 ] else scores
  in
  let probs = B.add b Op.Softmax [ scores ] in
  let ctx = B.add b (Op.Batch_matmul { transpose_b = false }) [ probs; vh ] in
  let ctx = B.add b (Op.Transpose { perm = [| 1; 0; 2 |] }) [ ctx ] in
  let ctx = B.add b (Op.Reshape { shape = [| seq; dim |] }) [ ctx ] in
  linear ~bias b ctx ~cout:dim

(** Transformer feed-forward with residual + layer norm. *)
let ffn ?(bias = false) ?(act = `Gelu) b x ~dim ~hidden =
  let h = linear ~bias b x ~cout:hidden in
  let h =
    B.add b (match act with `Gelu -> Op.Gelu | `Relu -> Op.Relu | `Hswish -> Op.Hard_swish) [ h ]
  in
  let h = linear ~bias b h ~cout:dim in
  let s = B.add b Op.Add [ x; h ] in
  B.add b Op.Layer_norm [ s ]

(** Transformer encoder layer (post-norm). *)
let encoder_layer ?(bias = false) ?(mask = false) b x ~seq ~dim ~heads ~ff =
  let a = attention ~bias ~mask b x ~seq ~dim ~heads in
  let s = B.add b Op.Add [ x; a ] in
  let s = B.add b Op.Layer_norm [ s ] in
  ffn ~bias b s ~dim ~hidden:ff
