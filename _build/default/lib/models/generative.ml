(** Image-generation models of Table IV: FST (fast style transfer,
    Johnson et al.), CycleGAN's ResNet generator, and the WDSR-b
    super-resolution network.  The first two run at high resolution, which
    is what gives them their hundreds of GMACs. *)

open Gcd2_graph
module B = Graph.Builder

(* instance normalization (kept as an explicit node, as converters emit
   it for style-transfer/GAN models) followed by an optional activation *)
let inorm ?act b x =
  let n = B.add b Op.Layer_norm [ x ] in
  match act with
  | Some `Relu -> B.add b Op.Relu [ n ]
  | Some `Tanh -> B.add b Op.Tanh [ n ]
  | None -> n

(* reflection-padded convolution (pad is its own node) *)
let pad_conv ?act b x ~k ~stride ~cout =
  let x = if k > 1 then B.add b (Op.Pad_spatial { pad = k / 2 }) [ x ] else x in
  Blocks.conv ?act b x ~kh:k ~kw:k ~stride ~pad:0 ~cout

let pad_residual b x ~channels =
  let h = pad_conv b x ~k:3 ~stride:1 ~cout:channels in
  let h = inorm ~act:`Relu b h in
  let h = pad_conv b h ~k:3 ~stride:1 ~cout:channels in
  let h = inorm b h in
  B.add b Op.Add [ x; h ]

(** Fast style transfer at 1024x1024 (161 GMACs in the paper). *)
let fst () =
  let b = B.create () in
  let x = B.input b [| 1; 1024; 1024; 3 |] in
  let x = pad_conv b x ~k:9 ~stride:1 ~cout:32 in
  let x = inorm ~act:`Relu b x in
  let x = Blocks.conv b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:64 in
  let x = inorm ~act:`Relu b x in
  let x = Blocks.conv b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:128 in
  let x = inorm ~act:`Relu b x in
  let x = ref x in
  for _ = 1 to 5 do
    x := pad_residual b !x ~channels:128
  done;
  let x = B.tconv b !x ~kh:4 ~kw:4 ~stride:2 ~pad:1 ~cout:64 in
  let x = inorm ~act:`Relu b x in
  let x = B.tconv b x ~kh:4 ~kw:4 ~stride:2 ~pad:1 ~cout:32 in
  let x = inorm ~act:`Relu b x in
  let x = pad_conv b x ~k:9 ~stride:1 ~cout:3 in
  let _ = B.add b Op.Tanh [ x ] in
  B.finish b

(** CycleGAN ResNet-9-blocks generator at 512x512 (186 GMACs). *)
let cyclegan () =
  let b = B.create () in
  let x = B.input b [| 1; 512; 512; 3 |] in
  let x = pad_conv b x ~k:7 ~stride:1 ~cout:64 in
  let x = inorm ~act:`Relu b x in
  let x = Blocks.conv b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:128 in
  let x = inorm ~act:`Relu b x in
  let x = Blocks.conv b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:256 in
  let x = inorm ~act:`Relu b x in
  let x = ref x in
  for _ = 1 to 9 do
    x := pad_residual b !x ~channels:256
  done;
  let x = B.tconv b !x ~kh:4 ~kw:4 ~stride:2 ~pad:1 ~cout:128 in
  let x = inorm ~act:`Relu b x in
  let x = B.tconv b x ~kh:4 ~kw:4 ~stride:2 ~pad:1 ~cout:64 in
  let x = inorm ~act:`Relu b x in
  let x = pad_conv b x ~k:7 ~stride:1 ~cout:3 in
  let _ = B.add b Op.Tanh [ x ] in
  B.finish b

(** WDSR-b x2 super-resolution on a 960x540 input (tiny parameter count,
    large spatial extent — the model whose widely varying feature-map
    shapes give GCD2 its biggest win in the paper). *)
let wdsr_b () =
  let b = B.create () in
  let x = B.input b [| 1; 540; 960; 3 |] in
  let head = Blocks.conv b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:16 in
  (* wide-activation low-rank residual blocks *)
  let body = ref head in
  for _ = 1 to 3 do
    let h = Blocks.conv ~act:`Relu b !body ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:96 in
    let h = Blocks.conv b h ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:12 in
    let h = Blocks.conv b h ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:16 in
    body := B.add b Op.Add [ !body; h ]
  done;
  (* upsampling branch: conv to scale^2 * 3 channels, then pixel shuffle
     (modelled as reshape + upsample) *)
  let up = Blocks.conv b !body ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:12 in
  let up = B.add b (Op.Upsample { factor = 2 }) [ up ] in
  let up = Blocks.conv b up ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:3 in
  (* global skip: bicubic-ish upsample of the input *)
  let skip = Blocks.conv b x ~kh:5 ~kw:5 ~stride:1 ~pad:2 ~cout:12 in
  let skip = B.add b (Op.Upsample { factor = 2 }) [ skip ] in
  let skip = Blocks.conv b skip ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:3 in
  let _ = B.add b Op.Add [ up; skip ] in
  B.finish b
