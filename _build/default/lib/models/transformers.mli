(** Transformer models of Table IV — the two DNNs GCD2 runs on a mobile
    DSP for the first time. *)

val tinybert : ?seq:int -> ?dim:int -> ?layers:int -> ?ff:int -> unit -> Gcd2_graph.Graph.t
val conformer : ?seq:int -> ?dim:int -> ?blocks:int -> unit -> Gcd2_graph.Graph.t
