(** Object-detection models of Table IV: EfficientDet-d0 (BiFPN, the
    largest graph) and PixOr (bird's-eye-view LiDAR). *)

val efficientdet_d0 : unit -> Gcd2_graph.Graph.t
val pixor : unit -> Gcd2_graph.Graph.t
