(** The model zoo: the ten DNNs of the paper's Table IV, with the paper's
    reported metadata so the harness can print paper-vs-measured rows. *)

type task =
  | Classification
  | Style_transfer
  | Image_translation
  | Super_resolution
  | Detection_2d
  | Detection_3d
  | Nlp
  | Speech

val task_name : task -> string

type entry = {
  name : string;
  kind : string;  (** 2D CNN / GAN / Transformer *)
  task : task;
  build : unit -> Gcd2_graph.Graph.t;
  paper_gmacs : float;
  paper_ops : int;
  paper_tflite_ms : float option;  (** None where Table IV shows "-" *)
  paper_snpe_ms : float option;
  paper_gcd2_ms : float;
}

val all : entry list

(** Case-insensitive lookup; raises [Invalid_argument] when unknown. *)
val find : string -> entry

val names : string list
