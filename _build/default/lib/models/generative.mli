(** Image-generation models of Table IV: fast style transfer (1024x1024),
    CycleGAN's generator (512x512), WDSR-b super resolution (960x540). *)

val fst : unit -> Gcd2_graph.Graph.t
val cyclegan : unit -> Gcd2_graph.Graph.t
val wdsr_b : unit -> Gcd2_graph.Graph.t
