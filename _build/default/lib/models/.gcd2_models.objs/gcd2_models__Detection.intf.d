lib/models/detection.mli: Gcd2_graph
