lib/models/generative.ml: Blocks Gcd2_graph Graph Op
