lib/models/zoo.ml: Classification Detection Fmt Gcd2_graph Generative List String Transformers
