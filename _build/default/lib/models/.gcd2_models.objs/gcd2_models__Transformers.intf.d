lib/models/transformers.mli: Gcd2_graph
