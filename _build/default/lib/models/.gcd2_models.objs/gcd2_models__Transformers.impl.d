lib/models/transformers.ml: Blocks Gcd2_graph Graph Op
