lib/models/classification.mli: Gcd2_graph
