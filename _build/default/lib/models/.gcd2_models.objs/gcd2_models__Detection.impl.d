lib/models/detection.ml: Blocks Gcd2_graph Graph List Op
