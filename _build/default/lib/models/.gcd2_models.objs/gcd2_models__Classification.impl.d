lib/models/classification.ml: Blocks Gcd2_graph Graph List Op
