lib/models/zoo.mli: Gcd2_graph
