lib/models/generative.mli: Gcd2_graph
