lib/models/blocks.ml: Gcd2_graph Graph Op
