(** Image-classification models of the paper's Table IV: MobileNet-V3
    (large), EfficientNet-b0 and ResNet-50, all at 224x224x3. *)

open Gcd2_graph
module B = Graph.Builder

(** MobileNet-V3-Large (Howard et al. 2019), batch-norms folded. *)
let mobilenet_v3 () =
  let b = B.create () in
  let x = B.input b [| 1; 224; 224; 3 |] in
  let x = Blocks.conv ~act:`Hswish b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:16 in
  (* (kernel, expansion, out, SE, activation, stride) *)
  let specs =
    [
      (3, 16, 16, false, `Relu, 1);
      (3, 64, 24, false, `Relu, 2);
      (3, 72, 24, false, `Relu, 1);
      (5, 72, 40, true, `Relu, 2);
      (5, 120, 40, true, `Relu, 1);
      (5, 120, 40, true, `Relu, 1);
      (3, 240, 80, false, `Hswish, 2);
      (3, 200, 80, false, `Hswish, 1);
      (3, 184, 80, false, `Hswish, 1);
      (3, 184, 80, false, `Hswish, 1);
      (3, 480, 112, true, `Hswish, 1);
      (3, 672, 112, true, `Hswish, 1);
      (5, 672, 160, true, `Hswish, 2);
      (5, 960, 160, true, `Hswish, 1);
      (5, 960, 160, true, `Hswish, 1);
    ]
  in
  let x, _ =
    List.fold_left
      (fun (x, cin) (k, exp, cout, se, act, stride) ->
        (Blocks.inverted_residual ~se ~act b x ~cin ~exp ~cout ~k ~stride, cout))
      (x, 16) specs
  in
  let x = Blocks.conv ~act:`Hswish b x ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:960 in
  let x = B.add b Op.Global_avg_pool [ x ] in
  let x = B.matmul b x ~cout:1280 in
  let x = B.add b Op.Hard_swish [ x ] in
  let x = B.matmul b x ~cout:1000 in
  let _ = B.add b Op.Softmax [ x ] in
  B.finish b

(** EfficientNet-b0 (Tan & Le 2019). *)
let efficientnet_b0 () =
  let b = B.create () in
  let x = B.input b [| 1; 224; 224; 3 |] in
  let x = Blocks.conv ~act:`Relu6 b x ~kh:3 ~kw:3 ~stride:2 ~pad:1 ~cout:32 in
  (* (kernel, expansion factor, out channels, repeats, stride) *)
  let stages =
    [
      (3, 1, 16, 1, 1);
      (3, 6, 24, 2, 2);
      (5, 6, 40, 2, 2);
      (3, 6, 80, 3, 2);
      (5, 6, 112, 3, 1);
      (5, 6, 192, 4, 2);
      (3, 6, 320, 1, 1);
    ]
  in
  let x, _ =
    List.fold_left
      (fun (x, cin) (k, e, cout, repeats, stride) ->
        let x = ref x and c = ref cin in
        for r = 0 to repeats - 1 do
          let s = if r = 0 then stride else 1 in
          x :=
            Blocks.inverted_residual ~se:true ~act:`Relu6 b !x ~cin:!c ~exp:(!c * e) ~cout
              ~k ~stride:s;
          c := cout
        done;
        (!x, !c))
      (x, 32) stages
  in
  let x = Blocks.conv ~act:`Relu6 b x ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:1280 in
  let x = B.add b Op.Global_avg_pool [ x ] in
  let x = B.matmul b x ~cout:1000 in
  let _ = B.add b Op.Softmax [ x ] in
  B.finish b

(** ResNet-50 (He et al. 2016). *)
let resnet50 () =
  let b = B.create () in
  let x = B.input b [| 1; 224; 224; 3 |] in
  let x = Blocks.conv ~act:`Relu b x ~kh:7 ~kw:7 ~stride:2 ~pad:3 ~cout:64 in
  let x = B.add b (Op.Max_pool { kernel = 2; stride = 2 }) [ x ] in
  let stage x ~cin ~mid ~cout ~blocks ~stride =
    let x = ref (Blocks.resnet_bottleneck b x ~cin ~mid ~cout ~stride) in
    for _ = 2 to blocks do
      x := Blocks.resnet_bottleneck b !x ~cin:cout ~mid ~cout ~stride:1
    done;
    !x
  in
  let x = stage x ~cin:64 ~mid:64 ~cout:256 ~blocks:3 ~stride:1 in
  let x = stage x ~cin:256 ~mid:128 ~cout:512 ~blocks:4 ~stride:2 in
  let x = stage x ~cin:512 ~mid:256 ~cout:1024 ~blocks:6 ~stride:2 in
  let x = stage x ~cin:1024 ~mid:512 ~cout:2048 ~blocks:3 ~stride:2 in
  let x = B.add b Op.Global_avg_pool [ x ] in
  let x = B.matmul b x ~cout:1000 in
  let _ = B.add b Op.Softmax [ x ] in
  B.finish b
