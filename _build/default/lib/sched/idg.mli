(** Instruction Dependency Graph (the paper's IDG, Figure 5): vertices are
    the instructions of one basic block, edges the hard/soft dependencies.
    Program order is already a topological order. *)

open Gcd2_isa

type t = {
  instrs : Instr.t array;
  succ : (int * Dep.kind) list array;  (** outgoing edges per instruction *)
  pred : (int * Dep.kind) list array;  (** incoming edges *)
  order : int array;  (** longest hop distance from an entry (paper's [i.order]) *)
  ancestors : int array;  (** transitive predecessor count (paper's [i.pred]) *)
}

val build : Instr.t array -> t
val size : t -> int

(** Maximum-total-latency path through the still-[alive] vertices, entry
    side first.  Raises [Invalid_argument] on an empty graph. *)
val critical_path : t -> bool array -> int list
