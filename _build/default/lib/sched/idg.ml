(** Instruction Dependency Graph (the paper's IDG, Figure 5).

    Vertices are instructions of one basic block, edges are the hard/soft
    dependencies of {!Gcd2_isa.Dep}.  Instructions only depend on earlier
    instructions, so program order is already a topological order. *)

open Gcd2_isa

type t = {
  instrs : Instr.t array;
  succ : (int * Dep.kind) list array;  (** outgoing edges, by instruction index *)
  pred : (int * Dep.kind) list array;  (** incoming edges *)
  order : int array;  (** longest hop-distance from an entry (paper's [i.order]) *)
  ancestors : int array;  (** number of transitive predecessors (paper's [i.pred]) *)
}

let build instrs =
  let n = Array.length instrs in
  let succ = Array.make n [] and pred = Array.make n [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match Dep.classify instrs.(i) instrs.(j) with
      | Some kind ->
        succ.(i) <- (j, kind) :: succ.(i);
        pred.(j) <- (i, kind) :: pred.(j)
      | None -> ()
    done
  done;
  let order = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter (fun (i, _) -> order.(j) <- max order.(j) (order.(i) + 1)) pred.(j)
  done;
  (* Ancestor sets as bitmasks over instruction indices; blocks are small
     (hundreds of instructions), so an int-array bitset is plenty. *)
  let words = (n + 62) / 63 in
  let anc = Array.make_matrix n words 0 in
  let ancestors = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter
      (fun (i, _) ->
        for w = 0 to words - 1 do
          anc.(j).(w) <- anc.(j).(w) lor anc.(i).(w)
        done;
        anc.(j).(i / 63) <- anc.(j).(i / 63) lor (1 lsl (i mod 63)))
      pred.(j);
    let count = ref 0 in
    for w = 0 to words - 1 do
      let rec popcount x acc = if x = 0 then acc else popcount (x land (x - 1)) (acc + 1) in
      count := !count + popcount anc.(j).(w) 0
    done;
    ancestors.(j) <- !count
  done;
  { instrs; succ; pred; order; ancestors }

let size t = Array.length t.instrs

(** [critical_path t alive] — the maximum-total-latency path through the
    vertices for which [alive] holds, as a list of indices from entry side
    to exit side.  Raises [Invalid_argument] if nothing is alive. *)
let critical_path t alive =
  let n = size t in
  (* down.(i) = latency of the heaviest alive path starting at i. *)
  let down = Array.make n 0 and next = Array.make n (-1) in
  for i = n - 1 downto 0 do
    if alive.(i) then begin
      down.(i) <- Instr.latency t.instrs.(i);
      List.iter
        (fun (j, _) ->
          if alive.(j) && down.(i) < Instr.latency t.instrs.(i) + down.(j) then begin
            down.(i) <- Instr.latency t.instrs.(i) + down.(j);
            next.(i) <- j
          end)
        t.succ.(i)
    end
  done;
  let start = ref (-1) in
  for i = 0 to n - 1 do
    if alive.(i) && (!start = -1 || down.(i) > down.(!start)) then start := i
  done;
  if !start = -1 then invalid_arg "Idg.critical_path: empty graph";
  let rec walk i acc = if i = -1 then List.rev acc else walk next.(i) (i :: acc) in
  walk !start []
