lib/sched/idg.ml: Array Dep Gcd2_isa Instr List
