lib/sched/packer.ml: Array Dep Fmt Gcd2_isa Idg Instr List Option Packet
