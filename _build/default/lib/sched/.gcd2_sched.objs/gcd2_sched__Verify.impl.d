lib/sched/verify.ml: Array Dep Fmt Gcd2_isa Idg List Packet
