lib/sched/idg.mli: Dep Gcd2_isa Instr
