lib/sched/packer.mli: Format Gcd2_isa Instr Packet
