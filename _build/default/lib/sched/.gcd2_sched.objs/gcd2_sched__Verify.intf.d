lib/sched/verify.mli: Format Gcd2_isa Instr
