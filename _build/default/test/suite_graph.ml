(* Tests for Gcd2_graph: shape inference, builder validation, passes
   (fusion, dce), MAC counting. *)

open Gcd2_graph
module B = Graph.Builder

let shape = Alcotest.(array int)

let infer op ins = Shape.infer op ins

let test_conv_shapes () =
  Alcotest.check shape "stride 1 same pad" [| 1; 8; 8; 16 |]
    (infer (Op.Conv2d { kh = 3; kw = 3; stride = 1; pad = 1; cout = 16; act = None })
       [ [| 1; 8; 8; 4 |] ]);
  Alcotest.check shape "stride 2" [| 1; 4; 4; 16 |]
    (infer (Op.Conv2d { kh = 3; kw = 3; stride = 2; pad = 1; cout = 16; act = None })
       [ [| 1; 8; 8; 4 |] ]);
  Alcotest.check shape "7x7 stride 2 pad 3" [| 1; 112; 112; 64 |]
    (infer (Op.Conv2d { kh = 7; kw = 7; stride = 2; pad = 3; cout = 64; act = None })
       [ [| 1; 224; 224; 3 |] ]);
  (* kernel-1 axes take no padding *)
  Alcotest.check shape "1-d over time" [| 1; 10; 1; 8 |]
    (infer (Op.Depthwise_conv2d { kh = 9; kw = 1; stride = 1; pad = 4; act = None })
       [ [| 1; 10; 1; 8 |] ])

let test_tconv_shape () =
  Alcotest.check shape "2x upsample" [| 1; 16; 16; 8 |]
    (infer (Op.Transposed_conv2d { kh = 4; kw = 4; stride = 2; pad = 1; cout = 8; act = None })
       [ [| 1; 8; 8; 4 |] ])

let test_matmul_shapes () =
  Alcotest.check shape "2d" [| 5; 7 |] (infer (Op.Matmul { cout = 7; act = None }) [ [| 5; 3 |] ]);
  Alcotest.check shape "batched bmm" [| 4; 6; 6 |]
    (infer (Op.Batch_matmul { transpose_b = true }) [ [| 4; 6; 8 |]; [| 4; 6; 8 |] ]);
  Alcotest.check shape "bmm plain" [| 4; 6; 5 |]
    (infer (Op.Batch_matmul { transpose_b = false }) [ [| 4; 6; 8 |]; [| 4; 8; 5 |] ])

let test_elementwise_broadcast () =
  Alcotest.check shape "same shapes" [| 2; 3 |] (infer Op.Add [ [| 2; 3 |]; [| 2; 3 |] ]);
  Alcotest.check shape "scalar broadcast" [| 2; 3 |] (infer Op.Mul [ [| 2; 3 |]; [| 1 |] ]);
  Alcotest.check shape "channel broadcast" [| 2; 3 |] (infer Op.Mul [ [| 2; 3 |]; [| 3 |] ]);
  Alcotest.check_raises "mismatch rejected"
    (Shape.Shape_error "elementwise shapes differ: [|2; 3|] vs [|3; 2|]") (fun () ->
      ignore (infer Op.Add [ [| 2; 3 |]; [| 3; 2 |] ]))

let test_shape_errors () =
  let fails op ins =
    match infer op ins with
    | exception Shape.Shape_error _ -> ()
    | _ -> Alcotest.fail "expected shape error"
  in
  fails (Op.Conv2d { kh = 9; kw = 9; stride = 1; pad = 0; cout = 4; act = None })
    [ [| 1; 4; 4; 2 |] ];
  fails (Op.Reshape { shape = [| 5 |] }) [ [| 2; 3 |] ];
  fails (Op.Transpose { perm = [| 0; 0 |] }) [ [| 2; 3 |] ];
  fails (Op.Concat { axis = 1 }) [ [| 2; 3 |]; [| 3; 3 |] ];
  fails (Op.Batch_matmul { transpose_b = false }) [ [| 2; 3; 4 |]; [| 2; 5; 6 |] ]

let test_builder_arity_check () =
  let b = B.create () in
  let x = B.input b [| 1; 4; 4; 2 |] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Builder.add: add expects 2 inputs, got 1") (fun () ->
      ignore (B.add b Op.Add [ x ]))

let test_validate_rejects_cycles () =
  (* a graph referencing a later node is not topologically ordered *)
  let g =
    {
      Graph.nodes =
        [|
          {
            Graph.id = 0;
            name = "bad";
            op = Op.Relu;
            inputs = [ 0 ];
            out_shape = [| 1 |];
            weight = None;
          };
        |];
    }
  in
  Alcotest.check_raises "self reference"
    (Invalid_argument "Graph.validate: not topologically ordered") (fun () ->
      Graph.validate g)

let small_graph () =
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let c = B.conv2d b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r = B.add b Op.Relu [ c ] in
  let c2 = B.conv2d b r ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:8 in
  let r2 = B.add b Op.Relu6 [ c2 ] in
  let _ = B.add b Op.Add [ r; r2 ] in
  B.finish b

let test_fusion () =
  let g = small_graph () in
  let fused = Passes.fuse_activations g in
  Graph.validate fused;
  (* both activations fuse: each one is its convolution's only user (the
     relu node's own fan-out does not matter, its users re-wire to the
     fused conv) *)
  Alcotest.(check int) "two activations fused away" (Graph.size g - 2) (Graph.size fused);
  let has_fused =
    Graph.fold
      (fun acc n ->
        match n.Graph.op with Op.Conv2d { act = Some Op.A_relu6; _ } -> true | _ -> acc)
      false fused
  in
  Alcotest.(check bool) "conv carries the fused relu6" true has_fused

let test_dce () =
  let b = B.create () in
  let x = B.input b [| 4; 4 |] in
  let keep = B.add b Op.Relu [ x ] in
  let _dead = B.add b Op.Tanh [ x ] in
  let g = B.finish b in
  let pruned = Passes.dead_code_elimination g ~outputs:[ keep ] in
  Alcotest.(check int) "dead node removed" 2 (Graph.size pruned)

let test_identity_reshape_elimination () =
  let b = B.create () in
  let x = B.input b [| 4; 4 |] in
  let same = B.add b (Op.Reshape { shape = [| 4; 4 |] }) [ x ] in
  let _ = B.add b Op.Relu [ same ] in
  let g = B.finish b in
  let out = Passes.eliminate_identity_reshapes g in
  Graph.validate out;
  Alcotest.(check int) "reshape removed" 2 (Graph.size out)

let test_macs () =
  let b = B.create () in
  let x = B.input b [| 1; 4; 4; 2 |] in
  let c = B.conv2d b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let _ = B.add b (Op.Depthwise_conv2d { kh = 3; kw = 3; stride = 1; pad = 1; act = None }) [ c ] in
  let g = B.finish b in
  (* conv: 4*4*8 outputs x 2*9 macs; dw: 4*4*8 x 9 *)
  Alcotest.(check int) "total macs" ((16 * 8 * 18) + (16 * 8 * 9)) (Flops.total_macs g);
  Alcotest.(check int) "conv params" ((9 * 2 * 8) + 8) (Flops.node_params g (Graph.node g 1))

let test_successors_outputs () =
  let g = small_graph () in
  let succ = Graph.successors g in
  Alcotest.(check (list int)) "relu feeds conv2 and add" [ 3; 5 ] succ.(2);
  Alcotest.(check (list int)) "single output" [ 5 ] (Graph.outputs g)

let tests =
  [
    Alcotest.test_case "conv shape inference" `Quick test_conv_shapes;
    Alcotest.test_case "transposed conv shape" `Quick test_tconv_shape;
    Alcotest.test_case "matmul shapes" `Quick test_matmul_shapes;
    Alcotest.test_case "elementwise broadcast" `Quick test_elementwise_broadcast;
    Alcotest.test_case "shape errors" `Quick test_shape_errors;
    Alcotest.test_case "builder arity check" `Quick test_builder_arity_check;
    Alcotest.test_case "validation rejects bad graphs" `Quick test_validate_rejects_cycles;
    Alcotest.test_case "activation fusion" `Quick test_fusion;
    Alcotest.test_case "dead code elimination" `Quick test_dce;
    Alcotest.test_case "identity reshape elimination" `Quick test_identity_reshape_elimination;
    Alcotest.test_case "mac and param counting" `Quick test_macs;
    Alcotest.test_case "successors and outputs" `Quick test_successors_outputs;
  ]
