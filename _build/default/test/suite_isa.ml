(* Tests for Gcd2_isa: registers, slot model, dependency classification,
   packet legality and timing. *)

open Gcd2_isa

let r n = Reg.R n
let v n = Reg.V n
let p n = Reg.P n
let addr base offset = { Instr.base; offset }

let test_reg_overlap () =
  let check = Alcotest.(check bool) in
  check "pair covers low vector" true (Reg.overlap (p 0) (v 0));
  check "pair covers high vector" true (Reg.overlap (p 0) (v 1));
  check "pair does not cover next vector" false (Reg.overlap (p 0) (v 2));
  check "scalar vs vector disjoint" false (Reg.overlap (r 0) (v 0));
  check "same scalar overlaps" true (Reg.overlap (r 3) (r 3));
  check "pairs sharing a vector" true (Reg.overlap (p 0) (p 0));
  check "disjoint pairs" false (Reg.overlap (p 0) (p 1))

let test_reg_validate () =
  let check = Alcotest.(check bool) in
  check "r31 valid" true (Reg.validate (r 31));
  check "r32 invalid" false (Reg.validate (r 32));
  check "v31 valid" true (Reg.validate (v 31));
  check "p15 valid" true (Reg.validate (p 15));
  check "p16 invalid" false (Reg.validate (p 16))

let vload d a = Instr.Vload (v d, addr (r a) 0)
let vstore a s = Instr.Vstore (addr (r a) 0, v s)
let salu d s = Instr.Salu (Instr.Add, r d, r s, Instr.Imm 1)

let test_slots () =
  let check = Alcotest.(check bool) in
  (* Two narrowing packs need the single shift slot: unpackable (the
     paper's "packing two shift operations together is not allowed"). *)
  check "two vpack infeasible" false
    (Packet.slots_feasible [ Instr.Vpack (v 0, p 1, Instr.W32); Instr.Vpack (v 1, p 2, Instr.W32) ]);
  check "two loads feasible" true (Packet.slots_feasible [ vload 0 1; vload 2 3 ]);
  check "two loads + store infeasible" false
    (Packet.slots_feasible [ vload 0 1; vload 2 3; vstore 4 5 ]);
  check "load + store feasible" true (Packet.slots_feasible [ vload 0 1; vstore 4 5 ]);
  check "three multiplies infeasible" false
    (Packet.slots_feasible
       [ Instr.Vmpy (p 1, v 0, r 0); Instr.Vmpy (p 2, v 0, r 0); Instr.Vmpy (p 3, v 0, r 0) ]);
  check "four salu feasible" true
    (Packet.slots_feasible [ salu 0 1; salu 2 3; salu 4 5; salu 6 7 ]);
  check "five instructions infeasible" false
    (Packet.slots_feasible [ salu 0 1; salu 2 3; salu 4 5; salu 6 7; salu 8 9 ]);
  (* mixed: store, load, vmpy, vperm fills slots 0..3 exactly *)
  check "full mixed packet feasible" true
    (Packet.slots_feasible
       [ vstore 4 5; vload 0 1; Instr.Vmpy (p 3, v 2, r 0); Instr.Vshuff (p 4, p 5, Instr.W16) ])

let dep_kind = Alcotest.testable Dep.pp_kind ( = )

let test_dep_classify () =
  let check name want i j = Alcotest.(check (option dep_kind)) name want (Dep.classify i j) in
  (* load -> consumer: soft (paper fig 4a) *)
  check "load to alu is soft" (Some (Dep.Soft 2))
    (Instr.Sload (r 1, addr (r 0) 0))
    (Instr.Salu (Instr.Add, r 3, r 2, Instr.Reg (r 1)));
  (* scalar alu -> consumer: soft *)
  check "salu to consumer is soft" (Some (Dep.Soft 1))
    (Instr.Salu (Instr.Add, r 1, r 0, Instr.Imm 4))
    (Instr.Sload (r 2, addr (r 1) 0));
  (* vector alu -> store: soft (paper fig 4b) *)
  check "valu to store is soft" (Some (Dep.Soft 1))
    (Instr.Valu (Instr.Vadd, Instr.W8, v 1, v 2, v 3))
    (Instr.Vstore (addr (r 0) 0, v 1));
  (* vector alu -> vector alu: hard *)
  check "valu to valu is hard" (Some Dep.Hard)
    (Instr.Valu (Instr.Vadd, Instr.W8, v 1, v 2, v 3))
    (Instr.Valu (Instr.Vadd, Instr.W8, v 4, v 1, v 3));
  (* vmpy -> consumer: forwards with a 2-cycle bubble (soft) *)
  check "vmpy result use is soft" (Some (Dep.Soft 2))
    (Instr.Vmpy (p 1, v 0, r 0))
    (Instr.Vpack (v 6, p 1, Instr.W16));
  (* deep reducing multiply -> consumer: hard *)
  check "vrmpy result use is hard" (Some Dep.Hard)
    (Instr.Vrmpy (v 1, v 0, r 0))
    (Instr.Vscale (v 2, v 1, 5, 3));
  (* WAW: hard *)
  check "waw is hard" (Some Dep.Hard)
    (Instr.Smovi (r 1, 0))
    (Instr.Smovi (r 1, 1));
  (* WAR: soft with no penalty *)
  check "war is free soft" (Some (Dep.Soft 0))
    (Instr.Salu (Instr.Add, r 2, r 1, Instr.Imm 0))
    (Instr.Smovi (r 1, 5));
  (* pair aliasing: writing p0 conflicts with a read of v1 *)
  check "pair alias raw" (Some (Dep.Soft 2))
    (Instr.Vmpy (p 0, v 2, r 0))
    (Instr.Valu (Instr.Vadd, Instr.W16, v 4, v 1, v 3));
  check "independent instructions" None
    (Instr.Salu (Instr.Add, r 1, r 0, Instr.Imm 0))
    (Instr.Salu (Instr.Add, r 3, r 2, Instr.Imm 0))

let test_mem_dep () =
  let check name want i j = Alcotest.(check (option dep_kind)) name want (Dep.classify i j) in
  check "store then overlapping load, same base" (Some Dep.Hard)
    (Instr.Vstore (addr (r 0) 0, v 1))
    (Instr.Vload (v 2, addr (r 0) 64));
  check "store then disjoint load, same base" None
    (Instr.Vstore (addr (r 0) 0, v 1))
    (Instr.Vload (v 2, addr (r 0) 128));
  check "different bases assumed disjoint" None
    (Instr.Vstore (addr (r 0) 0, v 1))
    (Instr.Vload (v 2, addr (r 1) 0));
  check "load load never conflict" None
    (Instr.Vload (v 1, addr (r 0) 0))
    (Instr.Vload (v 2, addr (r 0) 0))

let test_packet_cycles_fig4 () =
  (* Paper figure 4: two dependent 3-cycle instructions packed together
     take 4 cycles; unpacked they take 3 + 3 = 6. *)
  let i1 = Instr.Salu (Instr.Add, r 1, r 0, Instr.Imm 1) in
  let i2 = Instr.Salu (Instr.Add, r 2, r 1, Instr.Imm 2) in
  Alcotest.(check int) "packed soft pair" 4 (Packet.cycles [ i1; i2 ]);
  Alcotest.(check int) "unpacked total" 6 (Packet.cycles [ i1 ] + Packet.cycles [ i2 ]);
  (* independent instructions: packet costs just the max latency *)
  let i3 = Instr.Salu (Instr.Add, r 4, r 3, Instr.Imm 1) in
  Alcotest.(check int) "independent pair" 3 (Packet.cycles [ i1; i3 ])

let test_packet_soft_chain () =
  (* a -> b -> c all soft: stalls accumulate along the chain. *)
  let a = Instr.Salu (Instr.Add, r 1, r 0, Instr.Imm 1) in
  let b = Instr.Salu (Instr.Add, r 2, r 1, Instr.Imm 1) in
  let c = Instr.Sstore (addr (r 3) 0, r 2) in
  Alcotest.(check int) "soft chain of three" 5 (Packet.cycles [ a; b; c ])

let test_packet_legality () =
  let i1 = Instr.Vrmpy (v 1, v 0, r 0) in
  let i2 = Instr.Vscale (v 2, v 1, 5, 3) in
  Alcotest.(check bool) "hard pair not legal" false (Packet.legal [ i1; i2 ]);
  Alcotest.(check bool) "soft pair legal" true
    (Packet.legal
       [ Instr.Salu (Instr.Add, r 1, r 0, Instr.Imm 1);
         Instr.Salu (Instr.Add, r 2, r 1, Instr.Imm 2) ])

let test_program_stats () =
  let load = Instr.Vload (v 0, addr (r 0) 0) in
  let mac = Instr.Vrmpy (v 1, v 0, r 1) in
  let store = Instr.Vstore (addr (r 2) 0, v 1) in
  let body = Program.Block [ [ load ]; [ mac ]; [ store ] ] in
  let prog = Program.make "t" [ Program.Loop { trip = 10; body = [ body ] } ] in
  Alcotest.(check int) "instr count" 30 (Program.instr_count prog);
  Alcotest.(check int) "packet count" 30 (Program.packet_count prog);
  Alcotest.(check int) "macs" 1280 (Program.macs prog);
  Alcotest.(check int) "load bytes" 1280 (Program.load_bytes prog);
  Alcotest.(check int) "store bytes" 1280 (Program.store_bytes prog);
  Alcotest.(check int) "static packets ignore trip" 3 (Program.static_packet_count prog);
  Alcotest.(check int) "cycles"
    (10 * (Packet.cycles [ load ] + Packet.cycles [ mac ] + Packet.cycles [ store ]))
    (Program.static_cycles prog)

let tests =
  [
    Alcotest.test_case "register overlap" `Quick test_reg_overlap;
    Alcotest.test_case "register validation" `Quick test_reg_validate;
    Alcotest.test_case "slot feasibility" `Quick test_slots;
    Alcotest.test_case "dependency classification" `Quick test_dep_classify;
    Alcotest.test_case "memory dependencies" `Quick test_mem_dep;
    Alcotest.test_case "packet cycles (paper fig 4)" `Quick test_packet_cycles_fig4;
    Alcotest.test_case "soft chains accumulate stalls" `Quick test_packet_soft_chain;
    Alcotest.test_case "packet legality" `Quick test_packet_legality;
    Alcotest.test_case "program statistics" `Quick test_program_stats;
  ]
