(* Tests for the model zoo: every Table IV model must build, validate, and
   land near the paper's reported operator and MAC counts. *)

module Zoo = Gcd2_models.Zoo
module Graph = Gcd2_graph.Graph
module Flops = Gcd2_graph.Flops
module Op = Gcd2_graph.Op

let with_model name f =
  let e = Zoo.find name in
  let g = e.Zoo.build () in
  Graph.validate g;
  f e g

let test_all_build_and_validate () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.build () in
      Graph.validate g)
    Zoo.all

let test_op_counts_near_paper () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.build () in
      let ops = Graph.size g in
      let ratio = float_of_int ops /. float_of_int e.Zoo.paper_ops in
      if ratio < 0.55 || ratio > 1.45 then
        Alcotest.failf "%s: %d ops vs paper %d (ratio %.2f)" e.Zoo.name ops e.Zoo.paper_ops
          ratio)
    Zoo.all

let test_macs_near_paper () =
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.build () in
      let gmacs = float_of_int (Flops.total_macs g) /. 1e9 in
      let ratio = gmacs /. e.Zoo.paper_gmacs in
      if ratio < 0.6 || ratio > 1.45 then
        Alcotest.failf "%s: %.2f GMACs vs paper %.2f (ratio %.2f)" e.Zoo.name gmacs
          e.Zoo.paper_gmacs ratio)
    Zoo.all

let count_ops pred g = Graph.fold (fun acc n -> if pred n.Graph.op then acc + 1 else acc) 0 g

let test_tinybert_has_transformer_ops () =
  with_model "TinyBERT" (fun _ g ->
      Alcotest.(check bool) "has pow" true
        (count_ops (function Op.Pow _ -> true | _ -> false) g > 0);
      Alcotest.(check bool) "has batch matmul" true
        (count_ops (function Op.Batch_matmul _ -> true | _ -> false) g >= 12);
      Alcotest.(check bool) "has softmax" true
        (count_ops (function Op.Softmax -> true | _ -> false) g >= 6);
      Alcotest.(check bool) "has layer norm" true
        (count_ops (function Op.Layer_norm -> true | _ -> false) g >= 12))

let test_conformer_structure () =
  with_model "Conformer" (fun _ g ->
      Alcotest.(check bool) "has depthwise (conv module)" true
        (count_ops (function Op.Depthwise_conv2d _ -> true | _ -> false) g >= 16);
      Alcotest.(check bool) "hundreds of operators" true (Graph.size g > 500))

let test_mobilenet_structure () =
  with_model "MobileNet-V3" (fun _ g ->
      Alcotest.(check bool) "has depthwise" true
        (count_ops (function Op.Depthwise_conv2d _ -> true | _ -> false) g = 15);
      Alcotest.(check bool) "has hswish" true
        (count_ops (function Op.Hard_swish -> true | _ -> false) g > 10))

let test_resnet_structure () =
  with_model "ResNet-50" (fun _ g ->
      Alcotest.(check int) "53 convolutions" 53
        (count_ops (function Op.Conv2d _ -> true | _ -> false) g);
      Alcotest.(check int) "16 residual adds" 16
        (count_ops (function Op.Add -> true | _ -> false) g))

let test_efficientdet_is_largest () =
  with_model "EfficientDet-d0" (fun _ g ->
      List.iter
        (fun (other : Zoo.entry) ->
          if other.Zoo.name <> "EfficientDet-d0" && other.Zoo.name <> "Conformer" then begin
            let og = other.Zoo.build () in
            if Graph.size og >= Graph.size g then
              Alcotest.failf "%s has more ops than EfficientDet" other.Zoo.name
          end)
        Zoo.all)

let test_fst_macs_dominated_by_convs () =
  with_model "FST" (fun _ g ->
      let conv_macs =
        Graph.fold
          (fun acc n ->
            match n.Graph.op with
            | Op.Conv2d _ | Op.Transposed_conv2d _ -> acc + Flops.node_macs g n
            | _ -> acc)
          0 g
      in
      Alcotest.(check bool) "conv-dominated" true
        (float_of_int conv_macs > 0.95 *. float_of_int (Flops.total_macs g)))

let test_find () =
  Alcotest.(check string) "case-insensitive find" "ResNet-50" (Zoo.find "resnet-50").Zoo.name;
  Alcotest.check_raises "unknown model" (Invalid_argument "Zoo.find: unknown model \"nope\"")
    (fun () -> ignore (Zoo.find "nope"))

let test_wdsr_tiny_params () =
  with_model "WDSR-b" (fun _ g ->
      let params = Flops.total_params g in
      Alcotest.(check bool) "small parameter count" true (params < 100_000))

let tests =
  [
    Alcotest.test_case "all models build + validate" `Quick test_all_build_and_validate;
    Alcotest.test_case "operator counts near table IV" `Quick test_op_counts_near_paper;
    Alcotest.test_case "mac counts near table IV" `Quick test_macs_near_paper;
    Alcotest.test_case "tinybert transformer ops" `Quick test_tinybert_has_transformer_ops;
    Alcotest.test_case "conformer structure" `Quick test_conformer_structure;
    Alcotest.test_case "mobilenet structure" `Quick test_mobilenet_structure;
    Alcotest.test_case "resnet structure" `Quick test_resnet_structure;
    Alcotest.test_case "efficientdet is the largest cnn" `Quick test_efficientdet_is_largest;
    Alcotest.test_case "fst is conv-dominated" `Quick test_fst_macs_dominated_by_convs;
    Alcotest.test_case "zoo lookup" `Quick test_find;
    Alcotest.test_case "wdsr has tiny params" `Quick test_wdsr_tiny_params;
  ]
