test/suite_kernels.ml: Alcotest Array Fmt Gcd2_graph Gcd2_kernels Gcd2_tensor Gcd2_util List Op
