test/suite_core.ml: Alcotest Array Gcd2 Gcd2_graph Gcd2_kernels Gcd2_tensor Gcd2_util Graph List Op QCheck QCheck_alcotest
