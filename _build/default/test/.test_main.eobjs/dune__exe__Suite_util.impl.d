test/suite_util.ml: Alcotest Float Gcd2_util List QCheck QCheck_alcotest Rng Saturate Stats
