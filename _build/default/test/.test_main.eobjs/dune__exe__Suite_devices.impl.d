test/suite_devices.ml: Alcotest Fmt Gcd2_devices List
