test/suite_tensor.ml: Alcotest Array Fmt Gcd2_tensor Gcd2_util Hashtbl List QCheck QCheck_alcotest
