test/suite_frameworks.ml: Alcotest Gcd2 Gcd2_frameworks Gcd2_models List
