test/suite_cost.ml: Alcotest Array Gcd2_cost Gcd2_graph Gcd2_layout Gcd2_tensor Graph List Op
