test/suite_eltwise.ml: Alcotest Array Fmt Gcd2_codegen Gcd2_graph Gcd2_kernels Gcd2_sched Gcd2_tensor Gcd2_util Gcd2_vm List QCheck QCheck_alcotest
