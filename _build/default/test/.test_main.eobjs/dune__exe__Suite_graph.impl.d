test/suite_graph.ml: Alcotest Array Flops Gcd2_graph Graph Op Passes Shape
