test/suite_vm.ml: Alcotest Array Float Fmt Gcd2_isa Gcd2_util Gcd2_vm Instr List Program Reg
