test/suite_layout.ml: Alcotest Array Float Fmt Fun Gcd2_layout Gcd2_util List QCheck QCheck_alcotest
