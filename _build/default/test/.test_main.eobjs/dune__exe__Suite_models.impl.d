test/suite_models.ml: Alcotest Gcd2_graph Gcd2_models List
