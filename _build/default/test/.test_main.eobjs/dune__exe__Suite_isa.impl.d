test/suite_isa.ml: Alcotest Dep Gcd2_isa Instr Packet Program Reg
