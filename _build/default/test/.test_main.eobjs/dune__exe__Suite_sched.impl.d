test/suite_sched.ml: Alcotest Array Fmt Gcd2_isa Gcd2_sched Gcd2_util Gcd2_vm Idg Instr List Packer Packet Program QCheck QCheck_alcotest Reg String Verify
