(* Tests for Gcd2_cost: plan enumeration, roofline, problem construction
   and reporting. *)

module Opcost = Gcd2_cost.Opcost
module Plan = Gcd2_cost.Plan
module Config = Gcd2_cost.Config
module Graphcost = Gcd2_cost.Graphcost
module Layout = Gcd2_tensor.Layout
open Gcd2_graph
module B = Graph.Builder

let small_graph () =
  let b = B.create () in
  let x = B.input b [| 1; 16; 16; 8 |] in
  let c1 = B.conv2d b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:16 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let c2 = B.conv2d b r1 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:16 in
  let s = B.add b Op.Add [ r1; c2 ] in
  let p = B.add b Op.Global_avg_pool [ s ] in
  let m = B.matmul b p ~cout:10 in
  let _ = B.add b Op.Softmax [ m ] in
  B.finish b

let test_plans_for_every_op () =
  let g = small_graph () in
  Graph.iter
    (fun node ->
      let plans = Opcost.plans Opcost.gcd2 g node in
      if Array.length plans = 0 then Alcotest.failf "no plans for %s" node.Graph.name;
      Array.iter
        (fun p ->
          if Plan.cycles p < 0.0 then Alcotest.failf "negative cost for %s" node.Graph.name)
        plans)
    g

let test_conv_has_three_simd_plans () =
  let g = small_graph () in
  let conv = Graph.node g 1 in
  let plans = Opcost.plans Opcost.gcd2 g conv in
  Alcotest.(check int) "one plan per simd" 3 (Array.length plans);
  let layouts = Array.to_list (Array.map (fun p -> p.Plan.layout) plans) in
  Alcotest.(check bool) "col1 present" true (List.mem Layout.Col1 layouts);
  Alcotest.(check bool) "col2 present" true (List.mem Layout.Col2 layouts);
  Alcotest.(check bool) "col4 present" true (List.mem Layout.Col4 layouts)

let test_dispatch_overhead_included () =
  let g = small_graph () in
  let conv = Graph.node g 1 in
  let with_d = Opcost.plans Opcost.gcd2 g conv in
  let without = Opcost.plans { Opcost.gcd2 with Opcost.dispatch_us = 0.0 } g conv in
  let diff = (Plan.cycles with_d.(0)) -. (Plan.cycles without.(0)) in
  Alcotest.(check (float 1.0)) "dispatch cycles" (Config.cycles_of_us 15.0) diff

let test_channel_padding_costs_more () =
  let g = small_graph () in
  let conv = Graph.node g 1 in
  let narrow = Opcost.plans Opcost.gcd2 g conv in
  let padded = Opcost.plans { Opcost.gcd2 with Opcost.channel_pad = 32 } g conv in
  (* cin 8 -> 32 means ~4x the reduction work *)
  Alcotest.(check bool) "depth-32 padding is slower" true
    (padded.(0).Plan.compute_cycles > 1.5 *. narrow.(0).Plan.compute_cycles)

let test_fallback_plan () =
  let options =
    { Opcost.gcd2 with Opcost.supported = (function Op.Relu -> false | _ -> true) }
  in
  let g = small_graph () in
  let relu = Graph.node g 2 in
  let plans = Opcost.plans options g relu in
  Alcotest.(check int) "single fallback plan" 1 (Array.length plans);
  Alcotest.(check bool) "fallback is expensive" true
    (Plan.cycles plans.(0) > Config.cycles_of_us 120.0)

let test_problem_valid_and_reportable () =
  let g = small_graph () in
  let cost = Graphcost.build Opcost.gcd2 g in
  let r = Gcd2_layout.Solver.local cost.Graphcost.problem in
  let report = Graphcost.report cost r.Gcd2_layout.Solver.plans in
  Alcotest.(check bool) "positive time" true (report.Graphcost.ms > 0.0);
  Alcotest.(check bool) "utilization sane" true
    (report.Graphcost.utilization >= 0.0 && report.Graphcost.utilization <= 1.0);
  Alcotest.(check bool) "macs counted" true (report.Graphcost.macs > 0)

let test_edge_cost_zero_same_layout () =
  let g = small_graph () in
  let cost = Graphcost.build Opcost.gcd2 g in
  let p = cost.Graphcost.problem in
  (* conv (node 1) -> relu (node 2): find plan indices with equal layouts *)
  let plans1 = cost.Graphcost.plans.(1) and plans2 = cost.Graphcost.plans.(2) in
  Array.iteri
    (fun i p1 ->
      Array.iteri
        (fun j p2 ->
          let tc = p.Gcd2_layout.Problem.edge_cost 1 i 2 j in
          if p1.Plan.layout = p2.Plan.layout then
            Alcotest.(check (float 0.0)) "same layout free" 0.0 tc
          else Alcotest.(check bool) "transform costs" true (tc > 0.0))
        plans2)
    plans1

let test_global_beats_local () =
  let g = small_graph () in
  let cost = Graphcost.build Opcost.gcd2 g in
  let local = Gcd2_layout.Solver.local cost.Graphcost.problem in
  let optimal = Gcd2_layout.Solver.optimal cost.Graphcost.problem in
  Alcotest.(check bool) "optimal <= local" true
    (optimal.Gcd2_layout.Solver.cost <= local.Gcd2_layout.Solver.cost +. 1e-6)

let test_tops_scale () =
  let t = Config.tops ~macs:1_000_000_000 ~cycles:Config.model_cycles_per_sec in
  Alcotest.(check (float 1e-9)) "1 GMAC in 1 s = 0.002 TOPS" 0.002 t

let tests =
  [
    Alcotest.test_case "plans for every operator" `Quick test_plans_for_every_op;
    Alcotest.test_case "conv enumerates all instructions" `Quick test_conv_has_three_simd_plans;
    Alcotest.test_case "dispatch overhead" `Quick test_dispatch_overhead_included;
    Alcotest.test_case "depth-32 channel padding" `Quick test_channel_padding_costs_more;
    Alcotest.test_case "cpu fallback plan" `Quick test_fallback_plan;
    Alcotest.test_case "problem + report" `Quick test_problem_valid_and_reportable;
    Alcotest.test_case "edge costs per layout pair" `Quick test_edge_cost_zero_same_layout;
    Alcotest.test_case "global no worse than local" `Quick test_global_beats_local;
    Alcotest.test_case "tops conversion" `Quick test_tops_scale;
  ]
