(* Direct tests for the elementwise kernel generators: bit-exactness
   against the reference semantics for every layout, with and without
   operand rescaling, fused activations, and across packing strategies. *)

module Eltwise = Gcd2_codegen.Eltwise
module Machine = Gcd2_vm.Machine
module Layout = Gcd2_tensor.Layout
module Pack = Gcd2_tensor.Pack
module Q = Gcd2_tensor.Quant
module Sat = Gcd2_util.Saturate
module Rng = Gcd2_util.Rng
module Lut = Gcd2_kernels.Lut
module Packer = Gcd2_sched.Packer

(* Stage packed operands, run the kernel, unpack the result. *)
let run_kernel ?(tables = []) op spec layout ~rows ~cols a b =
  let pa = (Pack.pack layout ~rows ~cols a).Pack.bytes in
  let bytes = Array.length pa in
  let align = Gcd2_util.Stats.round_up bytes 128 in
  let m = Machine.create ~mem_bytes:(max 4096 ((3 * align) + 256)) () in
  Machine.write_i8_array m ~addr:0 pa;
  (match b with
  | Some b -> Machine.write_i8_array m ~addr:align (Pack.pack layout ~rows ~cols b).Pack.bytes
  | None -> ());
  let prog =
    match op with
    | `Binary bop ->
      Eltwise.binary ~tables bop spec { Eltwise.a_base = 0; b_base = align; out_base = 2 * align }
    | `Unary t -> Eltwise.unary ~tables ~table:t spec ~in_base:0 ~out_base:(2 * align)
  in
  Machine.run m prog;
  Pack.unpack
    { Pack.layout; rows; cols; bytes = Machine.read_i8_array m ~addr:(2 * align) ~len:bytes }

let rescale_table ?(negate = false) q_mult =
  Array.init 256 (fun byte ->
      let q = Sat.sign_extend ~bits:8 byte in
      let v = Sat.apply_multiplier q q_mult in
      Sat.sat8 (if negate then -v else v) land 0xff)

let vectors_for layout ~rows ~cols =
  Gcd2_util.Stats.ceil_div (Layout.padded_bytes layout ~rows ~cols) 128

let random_pair seed n =
  let rng = Rng.create seed in
  (Array.init n (fun _ -> Rng.int8 rng), Array.init n (fun _ -> Rng.int8 rng))

let test_add_all_layouts () =
  let rows, cols = (37, 11) in
  let a, b = random_pair 1 (rows * cols) in
  let want = Array.map2 (fun x y -> Sat.sat8 (x + y)) a b in
  List.iter
    (fun layout ->
      let spec =
        Eltwise.default_spec ~vectors:(vectors_for layout ~rows ~cols) ()
      in
      let got = run_kernel (`Binary Eltwise.Badd) spec layout ~rows ~cols a (Some b) in
      Alcotest.(check (array int)) (Layout.name layout) want got)
    Layout.all

let test_add_with_rescale () =
  (* operand A at scale 1/32 rescaled into output scale 1/16 *)
  let rows, cols = (16, 8) in
  let a, b = random_pair 2 (rows * cols) in
  let qa = Q.make (1.0 /. 32.0) and out = Q.default in
  let ma = Q.rescale_multiplier ~from:qa ~into:out in
  let table = rescale_table ma in
  let spec =
    {
      (Eltwise.default_spec ~vectors:(vectors_for Layout.Col1 ~rows ~cols) ()) with
      Eltwise.rescale_a = Some 2;
    }
  in
  let got =
    run_kernel ~tables:[ (2, table) ] (`Binary Eltwise.Badd) spec Layout.Col1 ~rows ~cols a
      (Some b)
  in
  let want =
    Array.map2 (fun x y -> Sat.sat8 (Sat.sat8 (Sat.apply_multiplier x ma) + y)) a b
  in
  Alcotest.(check (array int)) "rescaled add" want got

let test_sub_via_negating_table () =
  let rows, cols = (8, 16) in
  let a, b = random_pair 3 (rows * cols) in
  let identity = Q.rescale_multiplier ~from:Q.default ~into:Q.default in
  let table = rescale_table ~negate:true identity in
  let spec =
    {
      (Eltwise.default_spec ~vectors:(vectors_for Layout.Col4 ~rows ~cols) ()) with
      Eltwise.rescale_b = Some 3;
    }
  in
  let got =
    run_kernel ~tables:[ (3, table) ] (`Binary Eltwise.Badd) spec Layout.Col4 ~rows ~cols a
      (Some b)
  in
  let want =
    Array.map2
      (fun x y -> Sat.sat8 (x + Sat.sat8 (-Sat.apply_multiplier y identity)))
      a b
  in
  Alcotest.(check (array int)) "negating-table subtract" want got

let test_plain_vsub () =
  let rows, cols = (12, 12) in
  let a, b = random_pair 4 (rows * cols) in
  let spec = Eltwise.default_spec ~vectors:(vectors_for Layout.Col2 ~rows ~cols) () in
  let got = run_kernel (`Binary Eltwise.Bsub) spec Layout.Col2 ~rows ~cols a (Some b) in
  let want = Array.map2 (fun x y -> Sat.sat8 (x - y)) a b in
  Alcotest.(check (array int)) "vector subtract" want got

let test_mul_requant () =
  let rows, cols = (24, 6) in
  let a, b = random_pair 5 (rows * cols) in
  let mult, shift = Q.requant_multiplier ~in_a:Q.default ~in_b:Q.default ~out:Q.default in
  let spec =
    {
      (Eltwise.default_spec ~vectors:(vectors_for Layout.Col1 ~rows ~cols) ()) with
      Eltwise.mult;
      shift;
    }
  in
  let got = run_kernel (`Binary Eltwise.Bmul) spec Layout.Col1 ~rows ~cols a (Some b) in
  let want = Array.map2 (fun x y -> Sat.requantize (x * y) ~mult ~shift ~zero:0) a b in
  Alcotest.(check (array int)) "requantized multiply" want got

let test_mul_with_activation () =
  let rows, cols = (16, 16) in
  let a, b = random_pair 6 (rows * cols) in
  let mult, shift = Q.requant_multiplier ~in_a:Q.default ~in_b:Q.default ~out:Q.default in
  let act = Lut.of_act ~in_q:Q.default ~out_q:Q.default Gcd2_graph.Op.A_relu in
  let spec =
    {
      (Eltwise.default_spec ~vectors:(vectors_for Layout.Row_major ~rows ~cols) ()) with
      Eltwise.mult;
      shift;
      act_table = Some 1;
    }
  in
  let got =
    run_kernel ~tables:[ (1, act) ] (`Binary Eltwise.Bmul) spec Layout.Row_major ~rows ~cols a
      (Some b)
  in
  let want =
    Array.map2
      (fun x y -> Lut.apply act (Sat.requantize (x * y) ~mult ~shift ~zero:0))
      a b
  in
  Alcotest.(check (array int)) "multiply + fused relu" want got

let test_unary_all_layouts () =
  let rows, cols = (19, 7) in
  let a, _ = random_pair 7 (rows * cols) in
  let table = Lut.of_fn ~in_q:Q.default ~out_q:Q.default Lut.hswish in
  let want = Array.map (fun q -> Lut.apply table q) a in
  List.iter
    (fun layout ->
      let spec = Eltwise.default_spec ~vectors:(vectors_for layout ~rows ~cols) () in
      let got =
        run_kernel ~tables:[ (1, table) ] (`Unary 1) spec layout ~rows ~cols a None
      in
      Alcotest.(check (array int)) (Layout.name layout) want got)
    Layout.all

let test_strategies_agree () =
  let rows, cols = (32, 9) in
  let a, b = random_pair 8 (rows * cols) in
  let results =
    List.map
      (fun strategy ->
        let spec =
          Eltwise.default_spec ~strategy ~vectors:(vectors_for Layout.Col1 ~rows ~cols) ()
        in
        run_kernel (`Binary Eltwise.Badd) spec Layout.Col1 ~rows ~cols a (Some b))
      [ Packer.sda; Packer.Soft_to_hard; Packer.Soft_to_none; Packer.List_topdown; Packer.In_order ]
  in
  match results with
  | first :: rest ->
    List.iteri
      (fun i r -> Alcotest.(check (array int)) (Fmt.str "strategy %d" i) first r)
      rest
  | [] -> ()

let test_unroll_tail () =
  (* vector counts not divisible by the unroll exercise the tail path *)
  let rows, cols = (129, 3) in
  let a, b = random_pair 9 (rows * cols) in
  List.iter
    (fun uv ->
      let spec =
        { (Eltwise.default_spec ~vectors:(vectors_for Layout.Col1 ~rows ~cols) ()) with Eltwise.uv }
      in
      let got = run_kernel (`Binary Eltwise.Badd) spec Layout.Col1 ~rows ~cols a (Some b) in
      let want = Array.map2 (fun x y -> Sat.sat8 (x + y)) a b in
      Alcotest.(check (array int)) (Fmt.str "uv=%d" uv) want got)
    [ 1; 2; 3; 4 ]

let qcheck_add_random =
  QCheck.Test.make ~name:"elementwise add bit-exact on random shapes" ~count:40
    QCheck.(triple (int_range 1 80) (int_range 1 12) (int_range 0 3))
    (fun (rows, cols, li) ->
      let layout = List.nth Layout.all li in
      let a, b = random_pair ((rows * 100) + cols) (rows * cols) in
      let spec = Eltwise.default_spec ~vectors:(vectors_for layout ~rows ~cols) () in
      let got = run_kernel (`Binary Eltwise.Badd) spec layout ~rows ~cols a (Some b) in
      got = Array.map2 (fun x y -> Sat.sat8 (x + y)) a b)

let tests =
  [
    Alcotest.test_case "add across layouts" `Quick test_add_all_layouts;
    Alcotest.test_case "add with operand rescale" `Quick test_add_with_rescale;
    Alcotest.test_case "subtract via negating table" `Quick test_sub_via_negating_table;
    Alcotest.test_case "plain vector subtract" `Quick test_plain_vsub;
    Alcotest.test_case "requantized multiply" `Quick test_mul_requant;
    Alcotest.test_case "multiply with fused activation" `Quick test_mul_with_activation;
    Alcotest.test_case "unary lut across layouts" `Quick test_unary_all_layouts;
    Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
    Alcotest.test_case "unroll tails" `Quick test_unroll_tail;
    QCheck_alcotest.to_alcotest qcheck_add_random;
  ]
