(* Tests for Gcd2_layout: the global selection solvers.  The key property:
   frontier DP is exact (matches exhaustive enumeration) on random DAGs,
   chain DP matches on chains, and the GCD2 partitioned heuristic is never
   worse than local-optimal and close to optimal. *)

module Problem = Gcd2_layout.Problem
module Solver = Gcd2_layout.Solver

(* Deterministic pseudo-random problems. *)
let random_problem ?(max_plans = 3) ~seed ~n ~chain () =
  let rng = Gcd2_util.Rng.create seed in
  let preds =
    Array.init n (fun v ->
        if v = 0 then []
        else if chain then [ v - 1 ]
        else begin
          (* 1-2 predecessors among the recent nodes: DNN-like narrow DAG *)
          let p1 = max 0 (v - 1 - Gcd2_util.Rng.int rng (min v 3)) in
          if v > 2 && Gcd2_util.Rng.int rng 4 = 0 then
            let p2 = max 0 (v - 1 - Gcd2_util.Rng.int rng (min v 5)) in
            if p2 = p1 then [ p1 ] else [ min p1 p2; max p1 p2 ]
          else [ p1 ]
        end)
  in
  let options = Array.init n (fun _ -> 1 + Gcd2_util.Rng.int rng max_plans) in
  (* random but fixed cost tables *)
  let node_tbl =
    Array.init n (fun v -> Array.init options.(v) (fun _ -> float_of_int (10 + Gcd2_util.Rng.int rng 90)))
  in
  let edge_seed = Gcd2_util.Rng.int rng 1000000 in
  let edge_cost u pu v pv =
    if pu = pv then 0.0
    else
      (* deterministic hash-based transform cost *)
      let h = (u * 131) + (pu * 17) + (v * 13) + (pv * 7) + edge_seed in
      float_of_int (5 + (h mod 40))
  in
  {
    Problem.n;
    preds;
    options;
    node_cost = (fun v p -> node_tbl.(v).(p));
    edge_cost;
    desirable_edge = (fun _ _ -> false);
  }

let test_validate () =
  let p = random_problem ~seed:1 ~n:10 ~chain:false () in
  Problem.validate p;
  Alcotest.(check pass) "random problem validates" () ()

let test_total_cost_empty () =
  let p = random_problem ~seed:1 ~n:0 ~chain:true () in
  Alcotest.(check (float 0.0)) "empty graph costs nothing" 0.0 (Solver.local p).Solver.cost

let test_local_ignores_edges () =
  let p = random_problem ~seed:2 ~n:12 ~chain:true () in
  let r = Solver.local p in
  (* every node individually at its cheapest plan *)
  Array.iteri
    (fun v plan ->
      for o = 0 to p.Problem.options.(v) - 1 do
        if p.Problem.node_cost v o < p.Problem.node_cost v plan then
          Alcotest.failf "node %d: local picked %d but %d is cheaper" v plan o
      done)
    r.Solver.plans

let test_chain_dp_matches_exhaustive () =
  for seed = 1 to 10 do
    let p = random_problem ~seed ~n:8 ~chain:true () in
    let dp = Solver.chain_dp p in
    let ex = Solver.exhaustive p in
    Alcotest.(check (float 1e-9))
      (Fmt.str "seed %d" seed)
      ex.Solver.cost dp.Solver.cost
  done

let test_frontier_dp_matches_exhaustive () =
  for seed = 1 to 15 do
    let p = random_problem ~seed ~n:9 ~chain:false () in
    let dp = Solver.optimal p in
    let ex = Solver.exhaustive p in
    Alcotest.(check (float 1e-9))
      (Fmt.str "seed %d" seed)
      ex.Solver.cost dp.Solver.cost
  done

let test_partitioned_quality () =
  for seed = 1 to 10 do
    let p = random_problem ~seed ~n:30 ~chain:false () in
    let part = Solver.partitioned ~max_size:10 p in
    let loc = Solver.local p in
    let opt = Solver.optimal p in
    if part.Solver.cost > loc.Solver.cost +. 1e-9 then
      Alcotest.failf "seed %d: partitioned %.1f worse than local %.1f" seed part.cost loc.cost;
    if part.Solver.cost < opt.Solver.cost -. 1e-9 then
      Alcotest.failf "seed %d: partitioned beat the optimum?!" seed;
    (* the paper's finding: partitioned solutions are near-optimal *)
    if part.Solver.cost > opt.Solver.cost *. 1.10 then
      Alcotest.failf "seed %d: partitioned %.1f more than 10%% off optimal %.1f" seed
        part.cost opt.cost
  done

let test_exhaustive_guard () =
  let p = random_problem ~max_plans:3 ~seed:3 ~n:40 ~chain:false () in
  (* force all nodes to 3 plans so the space is 3^40 *)
  let p = { p with Problem.options = Array.make 40 3 } in
  Alcotest.check_raises "too large" Solver.Too_large (fun () ->
      ignore (Solver.exhaustive ~max_states:1000 p))

let test_partition_points_respect_max () =
  let p = random_problem ~seed:5 ~n:40 ~chain:false () in
  let cuts = Solver.partition_points p ~max_size:8 in
  let rec check lo = function
    | [] -> Alcotest.(check bool) "last part bounded-ish" true (p.Problem.n - lo <= 16)
    | c :: rest ->
      if c - lo + 1 > 8 then Alcotest.failf "part [%d, %d] exceeds max size" lo c;
      check (c + 1) rest
  in
  check 0 cuts

let test_desirable_edges_used () =
  (* A chain with an explicitly desirable edge must cut there. *)
  let p = random_problem ~seed:6 ~n:12 ~chain:true () in
  let p = { p with Problem.desirable_edge = (fun u v -> u = 5 && v = 6) } in
  let cuts = Solver.partition_points p ~max_size:8 in
  Alcotest.(check bool) "cut at the desirable edge" true (List.mem 5 cuts)

let qcheck_frontier_exact =
  QCheck.Test.make ~name:"frontier dp is exact on random dags" ~count:40
    QCheck.(pair (int_range 1 8) (int_range 0 10000))
    (fun (n, seed) ->
      let p = random_problem ~seed ~n ~chain:false () in
      let dp = Solver.optimal p in
      let ex = Solver.exhaustive p in
      Float.abs (dp.Solver.cost -. ex.Solver.cost) < 1e-9)

let qcheck_assignments_complete =
  QCheck.Test.make ~name:"solvers assign a plan to every node" ~count:40
    QCheck.(pair (int_range 1 20) (int_range 0 10000))
    (fun (n, seed) ->
      let p = random_problem ~seed ~n ~chain:false () in
      List.for_all
        (fun (r : Solver.result) ->
          Array.length r.Solver.plans = n
          && Array.for_all (fun x -> x >= 0) r.Solver.plans
          && Array.to_list r.Solver.plans
             |> List.mapi (fun v o -> o < p.Problem.options.(v))
             |> List.for_all (fun b -> b))
        [ Solver.local p; Solver.optimal p; Solver.partitioned ~max_size:7 p ])

let tests =
  [
    Alcotest.test_case "problem validation" `Quick test_validate;
    Alcotest.test_case "empty problem" `Quick test_total_cost_empty;
    Alcotest.test_case "local optimal semantics" `Quick test_local_ignores_edges;
    Alcotest.test_case "chain dp = exhaustive (eq. 2)" `Quick test_chain_dp_matches_exhaustive;
    Alcotest.test_case "frontier dp = exhaustive" `Quick test_frontier_dp_matches_exhaustive;
    Alcotest.test_case "partitioned between local and optimal" `Quick test_partitioned_quality;
    Alcotest.test_case "exhaustive blow-up guard" `Quick test_exhaustive_guard;
    Alcotest.test_case "partition size bound" `Quick test_partition_points_respect_max;
    Alcotest.test_case "desirable edges drive cuts" `Quick test_desirable_edges_used;
    QCheck_alcotest.to_alcotest qcheck_frontier_exact;
    QCheck_alcotest.to_alcotest qcheck_assignments_complete;
  ]

(* ------------------------------------------------------------------ *)
(* PBQP solver (paper section IV-B's alternative)                      *)

module Pbqp = Gcd2_layout.Pbqp

let test_pbqp_matches_optimal_on_trees () =
  (* chains have max degree 2: only exact reductions fire *)
  for seed = 1 to 10 do
    let p = random_problem ~seed ~n:10 ~chain:true () in
    let pb = Pbqp.solve p in
    let opt = Solver.optimal p in
    Alcotest.(check (float 1e-9))
      (Fmt.str "seed %d" seed)
      opt.Solver.cost pb.Solver.cost
  done

let test_pbqp_quality_on_dags () =
  for seed = 1 to 12 do
    let p = random_problem ~seed ~n:20 ~chain:false () in
    let pb = Pbqp.solve p in
    let opt = Solver.optimal p in
    let loc = Solver.local p in
    if pb.Solver.cost < opt.Solver.cost -. 1e-9 then
      Alcotest.failf "seed %d: pbqp beat the optimum?!" seed;
    if pb.Solver.cost > loc.Solver.cost +. 1e-9 then
      Alcotest.failf "seed %d: pbqp %.1f worse than local %.1f" seed pb.Solver.cost
        loc.Solver.cost;
    (* "in practice close" (the paper) *)
    if pb.Solver.cost > opt.Solver.cost *. 1.15 then
      Alcotest.failf "seed %d: pbqp %.1f more than 15%% off optimal %.1f" seed pb.Solver.cost
        opt.Solver.cost
  done

let qcheck_pbqp_valid =
  QCheck.Test.make ~name:"pbqp assigns valid plans" ~count:40
    QCheck.(pair (int_range 1 25) (int_range 0 10000))
    (fun (n, seed) ->
      let p = random_problem ~seed ~n ~chain:false () in
      let r = Pbqp.solve p in
      Array.length r.Solver.plans = n
      && Array.to_list r.Solver.plans
         |> List.mapi (fun v o -> o >= 0 && o < p.Problem.options.(v))
         |> List.for_all Fun.id)

let tests =
  tests
  @ [
      Alcotest.test_case "pbqp exact on chains" `Quick test_pbqp_matches_optimal_on_trees;
      Alcotest.test_case "pbqp near-optimal on dags" `Quick test_pbqp_quality_on_dags;
      QCheck_alcotest.to_alcotest qcheck_pbqp_valid;
    ]
