(* Tests for Gcd2_tensor: layouts (paper figure 2 offsets), packing
   roundtrips, quantization, tensors. *)

module Layout = Gcd2_tensor.Layout
module Pack = Gcd2_tensor.Pack
module Quant = Gcd2_tensor.Quant
module T = Gcd2_tensor.Tensor
module Rng = Gcd2_util.Rng

let test_fig2_offsets_col1 () =
  (* paper figure 2a: 128-row panels stored column-major *)
  let off r c = Layout.offset Layout.Col1 ~rows:256 ~cols:4 ~r ~c in
  Alcotest.(check int) "(0,0)" 0 (off 0 0);
  Alcotest.(check int) "(1,0)" 1 (off 1 0);
  Alcotest.(check int) "(0,1)" 128 (off 0 1);
  Alcotest.(check int) "(127,3)" ((3 * 128) + 127) (off 127 3);
  (* second panel starts after 128 rows x 4 cols *)
  Alcotest.(check int) "(128,0)" 512 (off 128 0)

let test_fig2_offsets_col2 () =
  (* paper figure 2b: 64-row panels, 2 adjacent columns interleave *)
  let off r c = Layout.offset Layout.Col2 ~rows:64 ~cols:4 ~r ~c in
  Alcotest.(check int) "(0,0)" 0 (off 0 0);
  Alcotest.(check int) "(0,1)" 1 (off 0 1);
  Alcotest.(check int) "(1,0)" 2 (off 1 0);
  Alcotest.(check int) "(63,1)" 127 (off 63 1);
  Alcotest.(check int) "(0,2)" 128 (off 0 2);
  Alcotest.(check int) "(0,3)" 129 (off 0 3)

let test_fig2_offsets_col4 () =
  (* paper figure 2c: 32-row panels, 4 adjacent columns interleave *)
  let off r c = Layout.offset Layout.Col4 ~rows:32 ~cols:8 ~r ~c in
  Alcotest.(check int) "(0,0..3)" 0 (off 0 0);
  Alcotest.(check int) "(0,3)" 3 (off 0 3);
  Alcotest.(check int) "(1,0)" 4 (off 1 0);
  Alcotest.(check int) "(31,3)" 127 (off 31 3);
  Alcotest.(check int) "(0,4)" 128 (off 0 4)

let test_padding () =
  Alcotest.(check int) "col1 pads rows to 128" (128 * 4)
    (Layout.padded_bytes Layout.Col1 ~rows:100 ~cols:4);
  Alcotest.(check int) "col2 pads rows to 64 and cols to 2" (64 * 2)
    (Layout.padded_bytes Layout.Col2 ~rows:33 ~cols:1);
  Alcotest.(check int) "col4 pads rows to 32 and cols to 4" (32 * 4)
    (Layout.padded_bytes Layout.Col4 ~rows:5 ~cols:3);
  Alcotest.(check int) "row-major never pads" (100 * 3)
    (Layout.padded_bytes Layout.Row_major ~rows:100 ~cols:3)

let test_pack_roundtrip () =
  let rng = Rng.create 5 in
  List.iter
    (fun layout ->
      List.iter
        (fun (rows, cols) ->
          let data = Array.init (rows * cols) (fun _ -> Rng.int8 rng) in
          let buf = Pack.pack layout ~rows ~cols data in
          Alcotest.(check (array int))
            (Fmt.str "%s %dx%d" (Layout.name layout) rows cols)
            data (Pack.unpack buf))
        [ (1, 1); (7, 3); (64, 2); (129, 5); (200, 17) ])
    Layout.all

let test_pack_convert () =
  let rng = Rng.create 6 in
  let data = Array.init (150 * 6) (fun _ -> Rng.int8 rng) in
  let buf = Pack.pack Layout.Col1 ~rows:150 ~cols:6 data in
  let converted = Pack.convert buf Layout.Col4 in
  Alcotest.(check (array int)) "convert preserves contents" data (Pack.unpack converted)

let test_transform_cost () =
  Alcotest.(check int) "same layout free" 0
    (Layout.transform_cycles ~src:Layout.Col1 ~dst:Layout.Col1 ~rows:128 ~cols:128);
  let c = Layout.transform_cycles ~src:Layout.Col1 ~dst:Layout.Col4 ~rows:128 ~cols:128 in
  Alcotest.(check bool) "transform proportional to traffic" true
    (c > 16384 && c < 16384 * 4)

let test_quant_roundtrip () =
  let q = Quant.make (1.0 /. 16.0) in
  for v = -127 to 127 do
    Alcotest.(check int)
      (Fmt.str "roundtrip %d" v)
      v
      (Quant.quantize q (Quant.dequantize q v))
  done

let test_quant_invalid () =
  Alcotest.check_raises "non-positive scale"
    (Invalid_argument "Quant.make: scale must be positive") (fun () ->
      ignore (Quant.make 0.0))

let test_tensor_ops () =
  let t = T.create [| 2; 3; 4 |] in
  Alcotest.(check int) "numel" 24 (T.numel t);
  Alcotest.(check int) "rank" 3 (T.rank t);
  T.set t [| 1; 2; 3 |] 42;
  Alcotest.(check int) "get/set" 42 (T.get t [| 1; 2; 3 |]);
  Alcotest.(check (pair int int)) "matrix view" (6, 4) (T.matrix_dims t);
  let r = T.reshape t [| 6; 4 |] in
  Alcotest.(check int) "reshape preserves data" 42 (T.get r [| 5; 3 |]);
  Alcotest.check_raises "bad reshape"
    (Invalid_argument "Tensor.reshape: element count mismatch") (fun () ->
      ignore (T.reshape t [| 5; 5 |]))

let test_tensor_saturates () =
  let t = T.create [| 2 |] in
  T.set t [| 0 |] 1000;
  Alcotest.(check int) "set saturates to int8" 127 (T.get t [| 0 |])

let qcheck_offsets_bijective =
  QCheck.Test.make ~name:"layout offsets are a bijection" ~count:50
    QCheck.(triple (int_range 1 150) (int_range 1 9) (int_range 0 3))
    (fun (rows, cols, l) ->
      let layout = List.nth Layout.all l in
      let seen = Hashtbl.create 97 in
      let ok = ref true in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          let o = Layout.offset layout ~rows ~cols ~r ~c in
          if o < 0 || o >= Layout.padded_bytes layout ~rows ~cols then ok := false;
          if Hashtbl.mem seen o then ok := false;
          Hashtbl.add seen o ()
        done
      done;
      !ok)

let tests =
  [
    Alcotest.test_case "1-column offsets (fig 2a)" `Quick test_fig2_offsets_col1;
    Alcotest.test_case "2-column offsets (fig 2b)" `Quick test_fig2_offsets_col2;
    Alcotest.test_case "4-column offsets (fig 2c)" `Quick test_fig2_offsets_col4;
    Alcotest.test_case "padding rules" `Quick test_padding;
    Alcotest.test_case "pack/unpack roundtrip" `Quick test_pack_roundtrip;
    Alcotest.test_case "layout conversion" `Quick test_pack_convert;
    Alcotest.test_case "transform cost" `Quick test_transform_cost;
    Alcotest.test_case "quantization roundtrip" `Quick test_quant_roundtrip;
    Alcotest.test_case "quantization validation" `Quick test_quant_invalid;
    Alcotest.test_case "tensor operations" `Quick test_tensor_ops;
    Alcotest.test_case "tensor saturation" `Quick test_tensor_saturates;
    QCheck_alcotest.to_alcotest qcheck_offsets_bijective;
  ]
