(* Tests for the simulated baseline frameworks and kernel compilers: the
   orderings the paper reports must hold on our machine model. *)

module F = Gcd2_frameworks.Framework
module K = Gcd2_frameworks.Kernel_compilers
module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler

let latency config g = Compiler.latency_ms (F.compile config g)

let test_gcd2_beats_production_frameworks () =
  (* the headline Table IV ordering, on the two cheapest-to-compile models *)
  List.iter
    (fun name ->
      let g = (Zoo.find name).Zoo.build () in
      let t = latency F.tflite g and s = latency F.snpe g and gc = latency F.gcd2 g in
      if not (gc < s && s <= t) then
        Alcotest.failf "%s: expected gcd2 < snpe <= tflite, got %.2f %.2f %.2f" name gc s t)
    [ "MobileNet-V3"; "ResNet-50" ]

let test_ablation_ladder_monotone () =
  (* Figure 9: each added optimization may only help. *)
  let g = (Zoo.find "ResNet-50").Zoo.build () in
  let steps = [ F.no_opt; F.plus_selection; F.plus_vliw; F.plus_other ] in
  let ms = List.map (fun c -> latency c g) steps in
  let rec check = function
    | a :: b :: rest ->
      if b > 1.02 *. a then
        Alcotest.failf "ablation got slower: %.3f -> %.3f ms" a b;
      check (b :: rest)
    | _ -> ()
  in
  check ms

let test_sda_ablations () =
  (* Figure 11: SDA no worse than either degraded treatment. *)
  let g = (Zoo.find "MobileNet-V3").Zoo.build () in
  let sda = latency F.gcd2 g in
  let hard = latency F.soft_to_hard g in
  let none = latency F.soft_to_none g in
  if sda > hard +. 1e-6 then Alcotest.failf "sda %.3f > soft_to_hard %.3f" sda hard;
  if sda > none +. 1e-6 then Alcotest.failf "sda %.3f > soft_to_none %.3f" sda none

let test_gcd2b_between () =
  (* GCD_b (tensor opts only) sits between the baselines and full GCD2.
     SDA is a heuristic, so allow it a 2% slack on any particular model
     (it wins clearly in aggregate; see the Figure 7/11 benches). *)
  let g = (Zoo.find "MobileNet-V3").Zoo.build () in
  let gb = latency F.gcd2_b g and gc = latency F.gcd2 g in
  Alcotest.(check bool) "gcd2 <= 1.02 * gcd2_b" true (gc <= 1.02 *. gb)

(* ---- kernel compilers (Figure 7 / Table III) ---- *)

let resnet_first_conv = K.conv_mkn ~n:1 ~h:224 ~w:224 ~c:3 ~kh:7 ~kw:7 ~stride:2 ~pad:3 ~cout:64

let test_kernel_orderings () =
  let m, k, n = resnet_first_conv in
  let r f = K.conv f ~m ~k ~n in
  let halide = r K.Halide and tvm = r K.Tvm and gb = r K.Gcd_b and g2 = r K.Gcd2_kernel in
  Alcotest.(check bool) "tvm <= halide (unroll search)" true
    (tvm.K.cycles <= halide.K.cycles);
  Alcotest.(check bool) "gcd_b <= tvm (instruction selection)" true
    (gb.K.cycles <= tvm.K.cycles);
  Alcotest.(check bool) "gcd2 within 2%% of gcd_b or better" true
    (float_of_int g2.K.cycles <= 1.02 *. float_of_int gb.K.cycles);
  Alcotest.(check bool) "gcd2 uses fewer packets than halide" true
    (g2.K.packets < halide.K.packets)

let test_rake_vs_gcd2_instruction_choice () =
  (* Table III: on some ResNet-50 shapes RAKE (instruction-count driven)
     picks a different instruction than GCD2 (cycle driven), and GCD2's
     kernel is faster. *)
  let shapes =
    [
      K.conv_mkn ~n:1 ~h:224 ~w:224 ~c:3 ~kh:7 ~kw:7 ~stride:2 ~pad:3 ~cout:64;
      K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:64 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:64;
      K.conv_mkn ~n:1 ~h:28 ~w:28 ~c:128 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:128;
    ]
  in
  let any_differs = ref false in
  List.iter
    (fun (m, k, n) ->
      let rake = K.conv K.Rake ~m ~k ~n in
      let gcd2 = K.conv K.Gcd2_kernel ~m ~k ~n in
      if rake.K.simd <> gcd2.K.simd then any_differs := true;
      if gcd2.K.cycles > rake.K.cycles then
        Alcotest.failf "gcd2 slower than rake on %dx%dx%d" m k n)
    shapes;
  Alcotest.(check bool) "instruction choices diverge somewhere" true !any_differs

let test_kernel_results_have_ms () =
  let m, k, n = resnet_first_conv in
  List.iter
    (fun f ->
      let r = K.conv f ~m ~k ~n in
      Alcotest.(check bool) (K.name f ^ " has positive ms") true (r.K.ms > 0.0))
    K.all

let test_transformers_unsupported_by_baselines () =
  (* the CPU-fallback mechanism makes TFLite/SNPE dramatically slower than
     GCD2 on the transformer models (in the paper they cannot run at all) *)
  let g = (Zoo.find "TinyBERT").Zoo.build () in
  let t = latency F.tflite g and gc = latency F.gcd2 g in
  Alcotest.(check bool) "tflite pays heavy fallbacks" true (t > 2.0 *. gc)

let tests =
  [
    Alcotest.test_case "table IV ordering" `Slow test_gcd2_beats_production_frameworks;
    Alcotest.test_case "figure 9 ladder monotone" `Slow test_ablation_ladder_monotone;
    Alcotest.test_case "figure 11 sda ablations" `Slow test_sda_ablations;
    Alcotest.test_case "gcd_b between baselines and gcd2" `Slow test_gcd2b_between;
    Alcotest.test_case "figure 7 kernel orderings" `Quick test_kernel_orderings;
    Alcotest.test_case "table III rake divergence" `Quick test_rake_vs_gcd2_instruction_choice;
    Alcotest.test_case "kernel results well-formed" `Quick test_kernel_results_have_ms;
    Alcotest.test_case "transformer fallbacks" `Slow test_transformers_unsupported_by_baselines;
  ]
