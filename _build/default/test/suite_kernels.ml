(* Tests for Gcd2_kernels: the reference interpreter's integer semantics.
   These are the golden definitions everything else is checked against, so
   they get their own sanity checks (hand-computed cases, algebraic
   properties, LUT consistency). *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Sat = Gcd2_util.Saturate
module Rng = Gcd2_util.Rng
module Interp = Gcd2_kernels.Interp
module Lut = Gcd2_kernels.Lut
open Gcd2_graph

let identity_mult = Sat.quantize_multiplier 1.0

let test_matmul_hand_computed () =
  (* 2x2 * 2x2 with identity requant *)
  let a = [| 1; 2; 3; 4 |] and w = [| 5; 6; 7; 8 |] in
  let mult, shift = identity_mult in
  Alcotest.(check (array int)) "exact small product" [| 19; 22; 43; 50 |]
    (Interp.matmul_i8 ~m:2 ~k:2 ~n:2 a w ~mult ~shift)

let test_matmul_requant_saturates () =
  let a = Array.make 16 127 and w = Array.make 16 127 in
  let mult, shift = identity_mult in
  let out = Interp.matmul_i8 ~m:4 ~k:4 ~n:4 a w ~mult ~shift in
  Array.iter (fun v -> Alcotest.(check int) "saturated" 127 v) out

let test_im2col_identity_for_1x1 () =
  let rng = Rng.create 3 in
  let x = T.random rng [| 1; 4; 5; 3 |] in
  let patches, rows, cols, oh, ow = Interp.im2col x ~kh:1 ~kw:1 ~stride:1 ~pad:0 in
  Alcotest.(check (pair int int)) "dims" (20, 3) (rows, cols);
  Alcotest.(check (pair int int)) "spatial" (4, 5) (oh, ow);
  Alcotest.(check (array int)) "1x1 im2col is the identity" x.T.data patches

let test_im2col_padding_zeroes () =
  let x = T.of_array [| 1; 1; 1; 1 |] [| 9 |] in
  let patches, rows, cols, _, _ = Interp.im2col x ~kh:3 ~kw:3 ~stride:1 ~pad:1 in
  Alcotest.(check (pair int int)) "one padded patch" (1, 9) (rows, cols);
  Alcotest.(check (array int)) "centre value, zero border"
    [| 0; 0; 0; 0; 9; 0; 0; 0; 0 |] patches

let test_conv_equals_matmul_on_1x1 () =
  (* a 1x1 convolution is exactly a matmul over pixels *)
  let rng = Rng.create 4 in
  let x = T.random rng [| 1; 3; 3; 4 |] in
  let w = T.random ~quant:(Q.make (1.0 /. 64.0)) rng [| 1; 1; 4; 6 |] in
  let out_q = Q.default in
  let conv = Interp.conv2d x ~weight:w ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:6 ~act:None ~out_q in
  let mm =
    Interp.matmul (T.reshape x [| 9; 4 |]) ~weight:(T.reshape w [| 4; 6 |]) ~cout:6 ~act:None
      ~out_q
  in
  Alcotest.(check (array int)) "agree" mm.T.data conv.T.data

let test_depthwise_identity_kernel () =
  (* a 1x1 depthwise conv with unit weights (in weight scale) rescales *)
  let x = T.of_array [| 1; 2; 2; 2 |] [| 8; -8; 16; -16; 24; -24; 32; -32 |] in
  let wq = Q.make (1.0 /. 64.0) in
  let w = T.of_array ~quant:wq [| 1; 1; 2 |] [| 64; 64 |] in
  (* weight value = 64 * (1/64) = 1.0 *)
  let out = Interp.depthwise_conv2d x ~weight:w ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~act:None ~out_q:x.T.quant in
  Alcotest.(check (array int)) "identity" x.T.data out.T.data

let test_add_commutes () =
  let rng = Rng.create 9 in
  let a = T.random rng [| 4; 4 |] and b = T.random rng [| 4; 4 |] in
  let x = Interp.binary_elementwise `Add a b ~out_q:Q.default in
  let y = Interp.binary_elementwise `Add b a ~out_q:Q.default in
  Alcotest.(check (array int)) "a+b = b+a" x.T.data y.T.data

let test_mul_by_zero () =
  let rng = Rng.create 10 in
  let a = T.random rng [| 8 |] in
  let z = T.of_array [| 8 |] (Array.make 8 0) in
  let out = Interp.binary_elementwise `Mul a z ~out_q:Q.default in
  Array.iter (fun v -> Alcotest.(check int) "zero" 0 v) out.T.data

let test_softmax_properties () =
  let rng = Rng.create 11 in
  let x = T.random rng [| 4; 16 |] in
  let s = Interp.softmax x in
  (* rows approximately sum to 1.0 in the output scale (1/128) *)
  for r = 0 to 3 do
    let sum = ref 0 in
    for c = 0 to 15 do
      sum := !sum + s.T.data.((r * 16) + c)
    done;
    if abs (!sum - 128) > 16 then Alcotest.failf "row %d sums to %d/128" r !sum
  done;
  (* monotone: bigger input, bigger probability *)
  let x2 = T.of_array [| 1; 4 |] [| 10; 20; 30; 40 |] in
  let s2 = Interp.softmax x2 in
  for i = 0 to 2 do
    if s2.T.data.(i) > s2.T.data.(i + 1) then Alcotest.fail "softmax not monotone"
  done

let test_layer_norm_centers () =
  let x = T.of_array [| 1; 8 |] [| 10; 20; 30; 40; 50; 60; 70; 80 |] in
  let n = Interp.layer_norm x in
  let sum = Array.fold_left ( + ) 0 n.T.data in
  Alcotest.(check bool) "approximately centered" true (abs sum <= 8);
  Alcotest.(check bool) "antisymmetric-ish" true
    (n.T.data.(0) < 0 && n.T.data.(7) > 0)

let test_pools () =
  let x = T.of_array [| 1; 2; 2; 1 |] [| 1; 5; 3; 7 |] in
  let mx = Interp.pool ~mode:`Max x ~kernel:2 ~stride:2 in
  Alcotest.(check (array int)) "max" [| 7 |] mx.T.data;
  let av = Interp.pool ~mode:`Avg x ~kernel:2 ~stride:2 in
  Alcotest.(check (array int)) "avg" [| 4 |] av.T.data;
  let g = Interp.global_avg_pool x in
  Alcotest.(check (array int)) "gap" [| 4 |] g.T.data

let test_transpose_involution () =
  let rng = Rng.create 12 in
  let x = T.random rng [| 3; 4; 5 |] in
  let t = Interp.transpose x ~perm:[| 2; 0; 1 |] in
  let back = Interp.transpose t ~perm:[| 1; 2; 0 |] in
  Alcotest.(check (array int)) "roundtrip" x.T.data back.T.data;
  Alcotest.check Alcotest.(array int) "dims permuted" [| 5; 3; 4 |] t.T.dims

let test_concat_upsample_pad () =
  let a = T.of_array [| 1; 2 |] [| 1; 2 |] and b = T.of_array [| 1; 2 |] [| 3; 4 |] in
  let c = Interp.concat a b ~axis:1 in
  Alcotest.(check (array int)) "concat" [| 1; 2; 3; 4 |] c.T.data;
  let x = T.of_array [| 1; 1; 1; 1 |] [| 9 |] in
  let u = Interp.upsample x ~factor:2 in
  Alcotest.(check (array int)) "upsample" [| 9; 9; 9; 9 |] u.T.data;
  let p = Interp.pad_spatial x ~pad:1 in
  Alcotest.(check int) "padded numel" 9 (T.numel p);
  Alcotest.(check int) "centre kept" 9 (T.get p [| 0; 1; 1; 0 |])

let test_lut_consistency () =
  (* relu via the LUT equals relu computed directly *)
  let q = Q.default in
  let table = Lut.of_fn ~in_q:q ~out_q:q Lut.relu in
  for v = -127 to 127 do
    let got = Lut.apply table v in
    let want = Q.quantize q (Lut.relu (Q.dequantize q v)) in
    Alcotest.(check int) (Fmt.str "relu(%d)" v) want got
  done

let test_unary_spec_covers_unaries () =
  List.iter
    (fun op ->
      match Interp.unary_spec op with
      | Some _ -> ()
      | None -> Alcotest.failf "no unary spec for %s" (Op.name op))
    [ Op.Relu; Op.Relu6; Op.Hard_swish; Op.Sigmoid; Op.Tanh; Op.Gelu; Op.Pow 2.0 ]

let test_graph_run_missing_input () =
  let b = Gcd2_graph.Graph.Builder.create () in
  let _ = Gcd2_graph.Graph.Builder.input b [| 2; 2 |] in
  let g = Gcd2_graph.Graph.Builder.finish b in
  Alcotest.check_raises "missing input" (Invalid_argument "Interp.run: missing input 0")
    (fun () -> ignore (Interp.run g ~inputs:[]))

let tests =
  [
    Alcotest.test_case "matmul hand-computed" `Quick test_matmul_hand_computed;
    Alcotest.test_case "matmul saturation" `Quick test_matmul_requant_saturates;
    Alcotest.test_case "im2col identity on 1x1" `Quick test_im2col_identity_for_1x1;
    Alcotest.test_case "im2col zero padding" `Quick test_im2col_padding_zeroes;
    Alcotest.test_case "1x1 conv = matmul" `Quick test_conv_equals_matmul_on_1x1;
    Alcotest.test_case "depthwise identity" `Quick test_depthwise_identity_kernel;
    Alcotest.test_case "add commutes" `Quick test_add_commutes;
    Alcotest.test_case "mul by zero" `Quick test_mul_by_zero;
    Alcotest.test_case "softmax properties" `Quick test_softmax_properties;
    Alcotest.test_case "layer norm centers" `Quick test_layer_norm_centers;
    Alcotest.test_case "pooling" `Quick test_pools;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "concat / upsample / pad" `Quick test_concat_upsample_pad;
    Alcotest.test_case "lut consistency" `Quick test_lut_consistency;
    Alcotest.test_case "unary specs" `Quick test_unary_spec_covers_unaries;
    Alcotest.test_case "missing input error" `Quick test_graph_run_missing_input;
  ]
