(* Kernel explorer: pick a convolution shape and inspect what the compiler
   does with it at every level — candidate instructions and layouts,
   padding, generated inner loop, packed VLIW schedule, cycle costs —
   then execute the chosen kernel on the simulator and check it against
   the reference matmul.

   Run with:  dune exec examples/kernel_explorer.exe -- [M K N]
   (defaults to the 64x64x1x1 convolution of ResNet-50: M=3136 K=64 N=64,
   scaled down for display) *)

module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Unroll = Gcd2_codegen.Unroll
module Weights = Gcd2_codegen.Weights
module Testbench = Gcd2_codegen.Testbench
module Layout = Gcd2_tensor.Layout
module Packer = Gcd2_sched.Packer
module Program = Gcd2_isa.Program
module Interp = Gcd2_kernels.Interp
module Rng = Gcd2_util.Rng
module Sat = Gcd2_util.Saturate

let usage () =
  prerr_endline "usage: kernel_explorer [M K N]";
  exit 1

let () =
  let m, k, n =
    match Sys.argv with
    | [| _ |] -> (256, 64, 64)
    | [| _; m; k; n |] -> (
      try (int_of_string m, int_of_string k, int_of_string n) with _ -> usage ())
    | _ -> usage ()
  in
  Fmt.pr "exploring C[%d x %d] = A[%d x %d] * W[%d x %d]@.@." m n m k k n;

  (* 1. the three candidate execution plans *)
  Fmt.pr "candidate SIMD instructions and layouts:@.";
  let mult, shift = Sat.quantize_multiplier 0.05 in
  let spec_of simd =
    let u = Unroll.adaptive simd ~m ~k ~n in
    {
      Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
      m;
      k;
      n;
      mult;
      shift;
      act_table = None;
      strategy = Packer.sda;
      un = u.Unroll.un;
      ug = u.Unroll.ug;
      abuf = u.Unroll.abuf;
      wbuf = u.Unroll.wbuf;
      addressing = Matmul.Bump;
    }
  in
  let best = ref None in
  List.iter
    (fun simd ->
      let spec = spec_of simd in
      let cycles = Matmul.cycles spec in
      let mp, kp, np = Simd.padded_mkn simd ~m ~k ~n in
      let pad_pct =
        100.0
        *. (float_of_int (Simd.padded_data_bytes simd ~m ~k ~n)
            /. float_of_int ((m * k) + (k * n) + (m * n))
           -. 1.0)
      in
      Fmt.pr "  %-6s layout %-9s padded %4dx%3dx%3d (+%4.0f%% data)  unroll un=%d ug=%d  %8d cycles@."
        (Simd.name simd)
        (Layout.name (Simd.layout simd))
        mp kp np pad_pct spec.Matmul.un spec.Matmul.ug cycles;
      match !best with
      | Some (_, c) when c <= cycles -> ()
      | _ -> best := Some (spec, cycles))
    Simd.all;
  let spec, best_cycles = Option.get !best in
  Fmt.pr "@.chosen: %s (%d cycles, %.1f effective GMAC/s)@." (Simd.name spec.Matmul.simd)
    best_cycles
    (float_of_int (m * k * n)
    /. (float_of_int best_cycles /. Gcd2_cost.Config.model_cycles_per_sec)
    /. 1e9);

  (* 2. the packed inner loop, as the scheduler emitted it *)
  let prog = Matmul.generate spec { Matmul.a_base = 0; w_base = 65536; c_base = 131072 } in
  let rec innermost nodes =
    List.fold_left
      (fun acc node ->
        match node with
        | Program.Block _ -> acc
        | Program.Loop { body = [ Program.Block ps ]; trip } -> Some (trip, ps)
        | Program.Loop { body; _ } -> ( match innermost body with Some x -> Some x | None -> acc))
      None nodes
  in
  (match innermost prog.Program.nodes with
  | Some (trip, packets) ->
    Fmt.pr "@.innermost loop (trip %d), %d packets:@." trip (List.length packets);
    List.iteri
      (fun i p ->
        Fmt.pr "  %2d (%d cyc) %a@." i (Gcd2_isa.Packet.cycles p) Gcd2_isa.Packet.pp p)
      packets
  | None -> Fmt.pr "@.(no inner loop at this size)@.");

  (* 3. how the packing strategies compare on this kernel *)
  Fmt.pr "@.packing strategy comparison on this kernel:@.";
  List.iter
    (fun (name, strategy) ->
      let c = Matmul.cycles { spec with Matmul.strategy = strategy } in
      Fmt.pr "  %-14s %8d cycles (%.2fx vs SDA)@." name c
        (float_of_int c /. float_of_int best_cycles))
    [
      ("sda", Packer.sda);
      ("soft_to_hard", Packer.Soft_to_hard);
      ("soft_to_none", Packer.Soft_to_none);
      ("in_order", Packer.In_order);
    ];

  (* 4. execute on the simulator and verify (small shapes only) *)
  if m * k + k * n <= 1 lsl 20 then begin
    let rng = Rng.create 7 in
    let a = Array.init (m * k) (fun _ -> Rng.int8 rng) in
    let w = Array.init (k * n) (fun _ -> Rng.int8 rng) in
    let res = Testbench.run spec ~a ~w in
    let want = Interp.matmul_i8 ~m ~k ~n a w ~mult ~shift in
    assert (res.Testbench.data = want);
    Fmt.pr
      "@.executed on the simulator: %d packets, %d cycles, %d MACs - bit-exact vs the reference@."
      res.Testbench.packets res.Testbench.cycles res.Testbench.macs
  end
  else Fmt.pr "@.(too large to execute functionally here; cycle model only)@."
