(* gcd2 — command-line front end.

     gcd2 list                         models in the zoo
     gcd2 compile MODEL [options]      compile and report
     gcd2 compare MODEL                TFLite vs SNPE vs GCD2
     gcd2 kernel -m M -k K -n N        explore one matmul/conv kernel
*)

open Cmdliner

module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op
module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Unroll = Gcd2_codegen.Unroll
module Packer = Gcd2_sched.Packer

(* ---------------- list ---------------- *)

let list_cmd =
  let doc = "List the models of the zoo (the paper's Table IV workloads)." in
  let run () =
    Fmt.pr "%-16s %-12s %-20s %8s %6s@." "name" "type" "task" "GMACs" "#ops";
    List.iter
      (fun (e : Zoo.entry) ->
        let g = e.Zoo.build () in
        Fmt.pr "%-16s %-12s %-20s %8.2f %6d@." e.Zoo.name e.Zoo.kind
          (Zoo.task_name e.Zoo.task)
          (float_of_int (Gcd2_graph.Flops.total_macs g) /. 1e9)
          (Graph.size g))
      Zoo.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------------- compile ---------------- *)

let model_arg =
  let doc = "Model name from the zoo (see `gcd2 list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let framework_arg =
  let doc = "Framework configuration: gcd2, gcd2_b, tflite, snpe, no_opt." in
  Arg.(value & opt string "gcd2" & info [ "f"; "framework" ] ~docv:"NAME" ~doc)

let selection_arg =
  let doc =
    "Global selection: local, optimal, or a sub-graph bound for the GCD2 \
     partitioning heuristic (e.g. 13 or 17)."
  in
  Arg.(value & opt string "13" & info [ "s"; "selection" ] ~docv:"MODE" ~doc)

let verbose_arg =
  let doc = "Print the chosen execution plan of every operator." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let trace_arg =
  let doc =
    "Print the compile trace: per-pass wall time plus the counters the \
     deeper layers record (fused nodes, partitions, packets, stalls)."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let dump_after_arg =
  let doc =
    "Dump the intermediate artifact after the named pass (repeatable; see \
     the pass names printed by --trace, e.g. fuse-activations or \
     'select:gcd2(13)')."
  in
  Arg.(value & opt_all string [] & info [ "dump-after" ] ~docv:"PASS" ~doc)

let config_of ~framework ~selection =
  let base =
    match String.lowercase_ascii framework with
    | "gcd2" -> F.gcd2
    | "gcd2_b" | "gcdb" -> F.gcd2_b
    | "tflite" -> F.tflite
    | "snpe" -> F.snpe
    | "no_opt" | "noopt" -> F.no_opt
    | other -> invalid_arg (Fmt.str "unknown framework %S" other)
  in
  let selection =
    match String.lowercase_ascii selection with
    | "local" -> Compiler.Local
    | "optimal" -> Compiler.Optimal_dp
    | k -> (
      match int_of_string_opt k with
      | Some k when k > 0 -> Compiler.Partitioned k
      | _ -> invalid_arg (Fmt.str "bad selection %S" k))
  in
  { base with Compiler.selection }

let compile_run model framework selection verbose trace dump_after =
  let entry = Zoo.find model in
  let config = config_of ~framework ~selection in
  let c =
    Compiler.compile ~config ~dump_after ~dump_ppf:Fmt.stdout (entry.Zoo.build ())
  in
  Fmt.pr "%a@." Compiler.pp_summary c;
  Fmt.pr "selection: %a in %.3f s@." Compiler.pp_selection config.Compiler.selection
    c.Compiler.selection_seconds;
  if trace then Fmt.pr "@.%a@." Compiler.pp_trace c;
  Fmt.pr "paper reports %.1f ms for GCD2 on this model@." entry.Zoo.paper_gcd2_ms;
  if verbose then begin
    Fmt.pr "@.%-4s %-26s %-24s %10s@." "id" "operator" "plan" "cycles";
    Array.iter
      (fun (n : Graphcost.node_report) ->
        Fmt.pr "%-4d %-26s %-24s %10.0f@." n.Graphcost.node.Graph.id
          (Op.name n.Graphcost.node.Graph.op)
          (Fmt.str "%a" Gcd2_cost.Plan.pp n.Graphcost.plan)
          n.Graphcost.cycles)
      c.Compiler.report.Graphcost.per_node
  end

let compile_cmd =
  let doc = "Compile a zoo model and report latency/utilization." in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const compile_run $ model_arg $ framework_arg $ selection_arg $ verbose_arg
      $ trace_arg $ dump_after_arg)

(* ---------------- compare ---------------- *)

let compare_run model =
  let entry = Zoo.find model in
  let g = entry.Zoo.build () in
  Fmt.pr "%-8s %10s %8s@." "stack" "ms" "fps";
  List.iter
    (fun config ->
      let c = Compiler.compile ~config g in
      let ms = Compiler.latency_ms c in
      Fmt.pr "%-8s %10.2f %8.1f@." config.Compiler.name ms (1000.0 /. ms))
    [ F.tflite; F.snpe; F.gcd2_b; F.gcd2 ]

let compare_cmd =
  let doc = "Compare TFLite / SNPE / GCD_b / GCD2 on one model." in
  Cmd.v (Cmd.info "compare" ~doc) Term.(const compare_run $ model_arg)

(* ---------------- kernel ---------------- *)

let dim name = Arg.(value & opt int 128 & info [ name ] ~docv:"N" ~doc:("dimension " ^ name))

let kernel_run m k n =
  Fmt.pr "C[%d x %d] = A[%d x %d] * W[%d x %d]@.@." m n m k k n;
  Fmt.pr "%-6s %-10s %10s %10s %8s@." "instr" "layout" "cycles" "packets" "pad%";
  List.iter
    (fun simd ->
      let u = Unroll.adaptive simd ~m ~k ~n in
      let spec =
        {
          Matmul.simd;
          m;
          k;
          n;
          mult = 1 lsl 30;
          shift = 30;
          act_table = None;
          strategy = Packer.sda;
          un = u.Unroll.un;
          ug = u.Unroll.ug;
          addressing = Matmul.Bump;
        }
      in
      let prog = Matmul.generate spec { Matmul.a_base = 0; w_base = 0; c_base = 0 } in
      let pad =
        100.0
        *. (float_of_int (Simd.padded_data_bytes simd ~m ~k ~n)
            /. float_of_int ((m * k) + (k * n) + (m * n))
           -. 1.0)
      in
      Fmt.pr "%-6s %-10s %10d %10d %7.1f%%@." (Simd.name simd)
        (Gcd2_tensor.Layout.name (Simd.layout simd))
        (Gcd2_isa.Program.static_cycles prog)
        (Gcd2_isa.Program.packet_count prog)
        pad)
    Simd.all

let kernel_cmd =
  let doc = "Show the three SIMD implementation choices for one matmul shape." in
  Cmd.v (Cmd.info "kernel" ~doc) Term.(const kernel_run $ dim "m" $ dim "k" $ dim "n")

(* ---------------- main ---------------- *)

let () =
  let doc = "GCD2: a globally optimizing DNN compiler for a simulated mobile DSP" in
  let info = Cmd.info "gcd2" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; compile_cmd; compare_cmd; kernel_cmd ]))
