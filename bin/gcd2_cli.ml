(* gcd2 — command-line front end.

     gcd2 list                         models in the zoo
     gcd2 compile MODEL [options]      compile and report (--cache-dir to reuse artifacts)
     gcd2 serve [MODELS...]            batch-serve compile requests through the cache
     gcd2 compare MODEL                TFLite vs SNPE vs GCD2
     gcd2 kernel -m M -k K -n N        explore one matmul/conv kernel
*)

open Cmdliner

module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime
module T = Gcd2_tensor.Tensor
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op
module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Unroll = Gcd2_codegen.Unroll
module Packer = Gcd2_sched.Packer
module Cache = Gcd2_store.Cache
module Stats = Gcd2_util.Stats
module Trace = Gcd2_util.Trace
module Fault = Gcd2_util.Fault
module Diag = Gcd2.Diag
module Serve = Gcd2_serve.Serve
module Desc = Gcd2_devices.Desc
module Place = Gcd2.Place

(* ---------------- list ---------------- *)

let list_cmd =
  let doc = "List the models of the zoo (the paper's Table IV workloads)." in
  let run () =
    Fmt.pr "%-16s %-12s %-20s %8s %6s@." "name" "type" "task" "GMACs" "#ops";
    List.iter
      (fun (e : Zoo.entry) ->
        let g = e.Zoo.build () in
        Fmt.pr "%-16s %-12s %-20s %8.2f %6d@." e.Zoo.name e.Zoo.kind
          (Zoo.task_name e.Zoo.task)
          (float_of_int (Gcd2_graph.Flops.total_macs g) /. 1e9)
          (Graph.size g))
      Zoo.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------------- compile ---------------- *)

let model_arg =
  let doc = "Model name from the zoo (see `gcd2 list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let framework_arg =
  let doc = "Framework configuration: gcd2, gcd2_b, tflite, snpe, no_opt." in
  Arg.(value & opt string "gcd2" & info [ "f"; "framework" ] ~docv:"NAME" ~doc)

let selection_arg =
  let doc =
    "Global selection: local, optimal, or a sub-graph bound for the GCD2 \
     partitioning heuristic (e.g. 13 or 17)."
  in
  Arg.(value & opt string "13" & info [ "s"; "selection" ] ~docv:"MODE" ~doc)

let device_arg =
  let doc =
    "Target machine description: hexagon698, hexagon-g2 (default \\$GCD2_DEVICE, \
     else hexagon698)."
  in
  Arg.(value & opt (some string) None & info [ "device" ] ~docv:"NAME" ~doc)

(* An unknown device name is an invalid request; a malformed GCD2_DEVICE
   must fail loudly at startup like GCD2_FAULTS does. *)
let resolve_device = function
  | Some name -> (
    match Desc.find name with
    | Some d -> d
    | None ->
      Fmt.epr "gcd2: %a@." Diag.pp
        (Diag.make Diag.Invalid_request
           (Fmt.str "unknown device %S (known: %s)" name (String.concat ", " Desc.names)));
      exit 1)
  | None -> (
    match Desc.default () with
    | d -> d
    | exception Invalid_argument msg ->
      Fmt.epr "gcd2: %s@." msg;
      exit 2)

module Autotune = Gcd2_codegen.Autotune

let tune_arg =
  let doc =
    "Autotune kernel shapes: search the validated (un, ug, abuf, wbuf) tile space \
     under a budget of $(docv) full kernel costings per problem (default \
     " ^ string_of_int Autotune.default_budget ^ "), instead of the shape-adaptive \
     heuristic alone.  Never worse than the heuristic in modeled cycles; tuned \
     compiles have their own cache fingerprint."
  in
  Arg.(
    value
    & opt ~vopt:(Some Autotune.default_budget) (some int) None
    & info [ "tune" ] ~docv:"BUDGET" ~doc)

let tune_verify_arg =
  let doc =
    "With tuning, run each tuned winner on the fast VM against the heuristic kernel \
     and fall back on any output mismatch (implies --tune)."
  in
  Arg.(value & flag & info [ "tune-verify" ] ~doc)

(* --tune-verify alone implies tuning at the default budget *)
let resolve_tune ~tune ~tune_verify =
  match (tune, tune_verify) with
  | None, false -> None
  | budget, verify ->
    Some { Autotune.budget = Option.value budget ~default:Autotune.default_budget; verify }

let with_tune tune (config : Compiler.config) =
  { config with Compiler.opcost = { config.Compiler.opcost with Gcd2_cost.Opcost.tune } }

let verbose_arg =
  let doc = "Print the chosen execution plan of every operator." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let trace_arg =
  let doc =
    "Print the compile trace: per-pass wall time plus the counters the \
     deeper layers record (fused nodes, partitions, packets, stalls)."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let dump_after_arg =
  let doc =
    "Dump the intermediate artifact after the named pass (repeatable; see \
     the pass names printed by --trace, e.g. fuse-activations or \
     'select:gcd2(13)')."
  in
  Arg.(value & opt_all string [] & info [ "dump-after" ] ~docv:"PASS" ~doc)

let cache_dir_arg =
  let doc = "Reuse compiled artifacts from the content-addressed cache rooted at $(docv) \
             (created as needed)." in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let cache_arg =
  let doc = "Enable the compile cache at its default location (\\$GCD2_CACHE_DIR, else \
             \\$XDG_CACHE_HOME/gcd2, else ~/.cache/gcd2)." in
  Arg.(value & flag & info [ "cache" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for plan enumeration (default \\$GCD2_JOBS, else 1). Affects \
     wall time only: the compiled result is identical for every value and cache \
     entries are shared across worker counts."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_cache_dir ~cache_dir ~cache =
  match cache_dir with
  | Some _ -> cache_dir
  | None -> if cache then Some (Cache.default_dir ()) else None

(* A malformed GCD2_FAULTS must fail loudly at startup, not silently
   run the process fault-free (or blow up mid-compile). *)
let check_fault_env () =
  match Fault.env_error () with
  | Some e ->
    Fmt.epr "gcd2: %s@." e;
    exit 2
  | None -> ()

let config_of ~framework ~selection =
  match Serve.config_of ~framework ~selection () with
  | Ok config -> config
  | Error d ->
    Fmt.epr "gcd2: %a@." Diag.pp d;
    exit 1

(* An unknown model name is an invalid request, not a crash ([Zoo.find]
   raises Invalid_argument, which cmdliner would report as an internal
   error). *)
let find_model model =
  match Zoo.find model with
  | entry -> entry
  | exception Invalid_argument msg ->
    Fmt.epr "gcd2: %a@." Diag.pp (Diag.make ~model Diag.Invalid_request msg);
    exit 1

let compile_run model framework selection device tune tune_verify verbose trace dump_after
    cache_dir cache jobs =
  check_fault_env ();
  let entry = find_model model in
  let config =
    with_tune (resolve_tune ~tune ~tune_verify)
      (Compiler.with_device (resolve_device device) (config_of ~framework ~selection))
  in
  let c =
    match
      Compiler.compile_result ~config ~dump_after ~dump_ppf:Fmt.stdout
        ?cache_dir:(resolve_cache_dir ~cache_dir ~cache)
        ?jobs
        (entry.Zoo.build ())
    with
    | Ok c -> c
    | Error d ->
      Fmt.epr "gcd2: compile failed: %a@." Diag.pp d;
      exit 1
  in
  Fmt.pr "%a@." Compiler.pp_summary c;
  Fmt.pr "selection: %a in %.3f s@." Compiler.pp_selection config.Compiler.selection
    c.Compiler.selection_seconds;
  if trace then Fmt.pr "@.%a@." Compiler.pp_trace c;
  Fmt.pr "paper reports %.1f ms for GCD2 on this model@." entry.Zoo.paper_gcd2_ms;
  if verbose then begin
    Fmt.pr "@.%-4s %-26s %-24s %10s@." "id" "operator" "plan" "cycles";
    Array.iter
      (fun (n : Graphcost.node_report) ->
        Fmt.pr "%-4d %-26s %-24s %10.0f@." n.Graphcost.node.Graph.id
          (Op.name n.Graphcost.node.Graph.op)
          (Fmt.str "%a" Gcd2_cost.Plan.pp n.Graphcost.plan)
          n.Graphcost.cycles)
      c.Compiler.report.Graphcost.per_node
  end

let compile_cmd =
  let doc = "Compile a zoo model and report latency/utilization." in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const compile_run $ model_arg $ framework_arg $ selection_arg $ device_arg
      $ tune_arg $ tune_verify_arg $ verbose_arg $ trace_arg $ dump_after_arg
      $ cache_dir_arg $ cache_arg $ jobs_arg)

(* ---------------- serve ---------------- *)

let read_request_lines ic =
  let rec go acc =
    match In_channel.input_line ic with
    | Some line -> go (line :: acc)
    | None -> List.rev acc
  in
  go []

(* One structured outcome line per request, shared with the daemon
   (Serve.outcome_line) and emitted through the process-wide serialized
   writer so concurrent emitters can never tear a line. *)
let print_served (r : Serve.served) =
  Gcd2_util.Logsink.emit (Serve.outcome_line r)

let serve_run models requests_file framework selection device tune tune_verify repeat
    cache_dir no_cache deadline_ms retries backoff_ms =
  check_fault_env ();
  let device = (resolve_device device).Desc.name in
  let tune = resolve_tune ~tune ~tune_verify in
  let cache_dir =
    if no_cache then None
    else Some (match cache_dir with Some d -> d | None -> Cache.default_dir ())
  in
  let from_file =
    match requests_file with
    | Some path ->
      In_channel.with_open_text path (fun ic ->
          Serve.parse_lines ~framework ~selection ~device ?tune (read_request_lines ic))
    | None -> ([], [])
  in
  let (file_requests, parse_errors), from_stdin =
    if models = [] && requests_file = None then begin
      (* no positional models and no request file: serve stdin as the
         request stream, one request per line until EOF *)
      Fmt.epr
        "reading requests from stdin (MODEL [FRAMEWORK [SELECTION]] [device=NAME] \
         [tune=SPEC] [seq=N] per line)...@.";
      ( Serve.parse_lines ~framework ~selection ~device ?tune
          (read_request_lines In_channel.stdin),
        true )
    end
    else (from_file, false)
  in
  ignore from_stdin;
  let requests =
    List.map (fun m -> Serve.request ~framework ~selection ~device ?tune m) models
    @ file_requests
  in
  let requests = List.concat (List.init (max 1 repeat) (fun _ -> requests)) in
  (* malformed request lines are errors with their line number, not
     silently dropped requests *)
  List.iter
    (fun (e : Serve.parse_error) ->
      Fmt.pr "%-16s %-8s %-10s %-8s   code=%s line=%d   %s: %S@." "-" "-" "-" "error"
        (Diag.code_name Diag.Invalid_request)
        e.Serve.line e.Serve.reason e.Serve.text)
    parse_errors;
  let policy =
    { Serve.cache_dir; deadline_ms; retries; backoff_ms; jobs = None }
  in
  (match cache_dir with
  | Some d -> Fmt.pr "serving %d requests (cache: %s)@." (List.length requests) d
  | None -> Fmt.pr "serving %d requests (cache disabled)@." (List.length requests));
  (match deadline_ms with
  | Some ms -> Fmt.pr "deadline  %.0f ms per request, %d retries@." ms retries
  | None -> ());
  if Fault.active () then Fmt.pr "fault injection active (GCD2_FAULTS)@.";
  let _, report = Serve.run_batch ~on_result:print_served policy requests in
  let parse_errors_n = List.length parse_errors in
  Fmt.pr "@.-- serving report --@.";
  Fmt.pr "requests  %d  (ok %d, retried %d, degraded %d, timeouts %d, errors %d)@."
    (report.Serve.requests + parse_errors_n)
    report.Serve.ok report.Serve.retried report.Serve.degraded report.Serve.timeouts
    (report.Serve.errors + parse_errors_n);
  if report.Serve.ok > 0 then begin
    Fmt.pr "cache     %d hits / %d misses  (%.1f%% hit rate)@." report.Serve.hits
      report.Serve.misses
      (100.0 *. float_of_int report.Serve.hits /. float_of_int report.Serve.ok);
    (* cold and warm compiles are different populations (first-compile
       kernel costing vs memo/cache reuse), and failed requests are
       excluded from both by construction: their wall time measures the
       failure path, not the service *)
    let bucket label lat =
      if lat <> [] then
        Fmt.pr
          "%s  %4d reqs  p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, max %.1f ms, mean %.1f ms@."
          label (List.length lat) (Stats.p50 lat) (Stats.p95 lat) (Stats.p99 lat)
          (Stats.maxf lat) (Stats.mean lat)
    in
    bucket "cold     " report.Serve.cold_ms;
    bucket "warm     " report.Serve.warm_ms
  end;
  if report.Serve.errors + report.Serve.timeouts + parse_errors_n > 0 then exit 1

let serve_cmd =
  let doc =
    "Serve a batch of compile requests through the content-addressed artifact cache \
     and report hit rate and request-latency percentiles.  Requests are isolated: \
     transient failures are retried with backoff, an unusable cache degrades to \
     uncached compiles, corrupt entries are quarantined and recompiled, and the \
     exit status is nonzero when any request ultimately fails."
  in
  let models_arg =
    let doc = "Models to serve (repeatable; see `gcd2 list`)." in
    Arg.(value & pos_all string [] & info [] ~docv:"MODEL" ~doc)
  in
  let requests_arg =
    let doc =
      "Read requests from $(docv), one `MODEL [FRAMEWORK [SELECTION]]` per line, \
       plus optional positionless `device=NAME`, `tune=SPEC` and `seq=N` fields \
       anywhere on the line (SPEC: a budget, `on`, `BUDGET+verify`, or `off` to \
       override a batch-wide --tune; N: a positive dynamic sequence length for \
       sequence-parametric models, padded to its power-of-two shape bucket so one \
       cached artifact serves every length in the bucket; whole-line `#` comments \
       and blank lines ignored; lines with trailing garbage, inline `#` tokens, \
       duplicated fields, unknown device names, malformed tune specs or \
       non-positive seq values are errors).  Without models and without this \
       option, requests are read from standard input."
    in
    Arg.(value & opt (some file) None & info [ "requests" ] ~docv:"FILE" ~doc)
  in
  let repeat_arg =
    let doc = "Serve the request list $(docv) times (warm requests hit the cache)." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the cache (every request cold-compiles; for comparison)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-request wall-clock deadline in milliseconds; an expired request is \
       cancelled at the next pipeline checkpoint and reported as a timeout."
    in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let retries_arg =
    let doc = "Retries (beyond the first attempt) for retryable failures." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Base retry backoff in milliseconds, doubled per retry." in
    Arg.(value & opt float 25.0 & info [ "retry-backoff-ms" ] ~docv:"MS" ~doc)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ models_arg $ requests_arg $ framework_arg $ selection_arg
      $ device_arg $ tune_arg $ tune_verify_arg $ repeat_arg $ cache_dir_arg
      $ no_cache_arg $ deadline_arg $ retries_arg $ backoff_arg)

(* ---------------- daemon / client ---------------- *)

module Daemon = Gcd2_daemon.Daemon
module Dclient = Gcd2_daemon.Client
module Protocol = Gcd2_daemon.Protocol
module Logsink = Gcd2_util.Logsink

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "gcd2d.sock"

let socket_arg =
  let doc = "Unix socket path the daemon listens on (default also for `client`)." in
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp_arg =
  let doc =
    "Listen on (or connect to) TCP $(docv) instead of the Unix socket; \
     PORT 0 lets the daemon pick a free port (printed at startup)."
  in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let parse_address ~socket ~tcp =
  match tcp with
  | None -> Daemon.Unix_sock socket
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | None ->
      Fmt.epr "gcd2: --tcp expects HOST:PORT, got %S@." spec;
      exit 1
    | Some i -> (
      let host = String.sub spec 0 i in
      match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
      | Some port -> Daemon.Tcp ((if host = "" then "127.0.0.1" else host), port)
      | None ->
        Fmt.epr "gcd2: --tcp expects a numeric port, got %S@." spec;
        exit 1))

let daemon_run socket tcp workers queue_depth framework selection device tune tune_verify
    cache_dir cache no_cache deadline_ms retries backoff_ms jobs stats_every quiet
    cache_max_bytes janitor_interval_s =
  check_fault_env ();
  let device = (resolve_device device).Desc.name in
  let tune = resolve_tune ~tune ~tune_verify in
  let cache_dir =
    if no_cache then None
    else
      Some
        (match resolve_cache_dir ~cache_dir ~cache with
        | Some d -> d
        | None -> Cache.default_dir ())
  in
  let cfg =
    {
      Daemon.address = parse_address ~socket ~tcp;
      workers;
      queue_depth;
      policy = { Serve.cache_dir; deadline_ms; retries; backoff_ms; jobs };
      framework;
      selection;
      device;
      tune;
      resolve = None;
      stats_every;
      log_outcomes = not quiet;
      cache_max_bytes;
      janitor_interval_s;
      lease_ttl_s = Gcd2_store.Lease.default_ttl_s;
    }
  in
  let d = Daemon.start cfg in
  Logsink.emit
    (Fmt.str "daemon: listening on %a  (workers=%d queue-depth=%d cache=%s%s)"
       Daemon.pp_address (Daemon.address d) workers queue_depth
       (match cache_dir with Some dir -> dir | None -> "disabled")
       (if Fault.active () then " faults=on" else ""));
  let stop = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler;
  while not (Atomic.get stop) do
    Unix.sleepf 0.2
  done;
  let st = Daemon.stop d in
  Logsink.emit (Daemon.stats_line d st)

let daemon_cmd =
  let doc =
    "Run the concurrent serve daemon: a multi-domain server that answers serve \
     request lines over a Unix or TCP socket, with a bounded admission queue \
     (overload is answered with a retryable `rejected` response), single-flight \
     deduplication of identical in-flight compiles, and the full per-request \
     policy of `gcd2 serve` (deadline, retries, degradation, verification).  \
     Stop with SIGINT/SIGTERM: the queue drains before the daemon exits."
  in
  let workers_arg =
    let doc = "Worker domains serving connections concurrently." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_depth_arg =
    let doc = "Admission-queue capacity; a full queue rejects new connections." in
    Arg.(value & opt int 16 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request wall-clock deadline in milliseconds." in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let retries_arg =
    let doc = "Retries (beyond the first attempt) for retryable failures." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Base retry backoff in milliseconds, doubled per retry." in
    Arg.(value & opt float 25.0 & info [ "retry-backoff-ms" ] ~docv:"MS" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the artifact cache (every request compiles)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let stats_every_arg =
    let doc = "Emit a merged `daemon:` stats line every $(docv) responses (0 = never)." in
    Arg.(value & opt int 100 & info [ "stats-every" ] ~docv:"N" ~doc)
  in
  let quiet_arg =
    let doc = "Do not log one outcome line per served request." in
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc)
  in
  let cache_max_bytes_arg =
    let doc =
      "Cache-directory size budget in bytes: the janitor LRU-evicts the \
       least-recently-used entries past it (entries under an active compile \
       lease are never evicted).  Unset = unbounded."
    in
    Arg.(value & opt (some int) None & info [ "cache-max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let janitor_interval_arg =
    let doc =
      "Seconds between janitor sweeps of the cache directory (stale .tmp \
       debris, aged .bad quarantine files, dead-leader .lease files, size \
       budget); 0 disables the periodic sweep (the startup sweep still runs)."
    in
    Arg.(value & opt float 60.0 & info [ "janitor-interval-s" ] ~docv:"S" ~doc)
  in
  Cmd.v (Cmd.info "daemon" ~doc)
    Term.(
      const daemon_run $ socket_arg $ tcp_arg $ workers_arg $ queue_depth_arg
      $ framework_arg $ selection_arg $ device_arg $ tune_arg $ tune_verify_arg
      $ cache_dir_arg $ cache_arg $ no_cache_arg $ deadline_arg $ retries_arg
      $ backoff_arg $ jobs_arg $ stats_every_arg $ quiet_arg $ cache_max_bytes_arg
      $ janitor_interval_arg)

let client_run socket tcp models =
  let address = parse_address ~socket ~tcp in
  let lines = if models = [] then read_request_lines In_channel.stdin else models in
  match Dclient.batch address lines with
  | exception Unix.Unix_error (e, _, _) ->
    Fmt.epr "gcd2: cannot reach daemon at %a: %s@." Daemon.pp_address address
      (Unix.error_message e);
    exit 1
  | responses ->
    let failed = ref 0 in
    List.iter
      (fun resp ->
        match resp with
        | Ok (r : Protocol.response) ->
          Logsink.emit (Protocol.render r);
          (match r.Protocol.outcome with
          | "ok" | "retried" | "degraded" | "health" | "stats" -> ()
          | _ -> incr failed)
        | Error e ->
          Logsink.emit_err ("gcd2: bad response: " ^ e);
          incr failed)
      responses;
    if !failed > 0 then exit 1

let client_cmd =
  let doc =
    "Send request lines to a running `gcd2 daemon` and print one framed response \
     line per request (models as arguments, or request lines on standard input).  \
     Exits nonzero if any request fails or is rejected."
  in
  let models_arg =
    let doc = "Models to request (default: read request lines from stdin)." in
    Arg.(value & pos_all string [] & info [] ~docv:"MODEL" ~doc)
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const client_run $ socket_arg $ tcp_arg $ models_arg)

(* ---------------- compare ---------------- *)

(* Above this budget a single simulated inference takes minutes even on
   the fast engine, so `compare` only measures wall time by default on
   models below it; `--infer` forces the measurement. *)
let compare_infer_budget_gmacs = 2.0

(* Device comparison: modeled latency of the gcd2 configuration on every
   requested device, over one model or the whole zoo, then — for a single
   model — the cross-device placement the joint selection problem picks. *)
let compare_devices_run names model =
  let devices =
    String.split_on_char ',' names
    |> List.map String.trim
    |> List.filter (fun n -> n <> "")
    |> List.map (fun n -> resolve_device (Some n))
  in
  if devices = [] then begin
    Fmt.epr "gcd2: --devices needs at least one device name@.";
    exit 1
  end;
  let entries =
    match model with Some m -> [ find_model m ] | None -> Zoo.all
  in
  Fmt.pr "%-16s" "model";
  List.iter (fun (d : Desc.t) -> Fmt.pr " %14s" d.Desc.name) devices;
  if List.length devices > 1 then Fmt.pr " %9s" "speedup";
  Fmt.pr "@.";
  let baseline = List.hd devices in
  let wins = Array.make (List.length devices) 0 in
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.build () in
      let mss =
        List.map
          (fun d ->
            Compiler.latency_ms (Compiler.compile ~config:(Compiler.with_device d F.gcd2) g))
          devices
      in
      let base_ms = List.hd mss in
      Fmt.pr "%-16s" e.Zoo.name;
      List.iteri
        (fun i ms ->
          if i > 0 && ms < base_ms then wins.(i) <- wins.(i) + 1;
          Fmt.pr " %11.2f ms" ms)
        mss;
      if List.length mss > 1 then
        Fmt.pr " %8.2fx" (base_ms /. List.nth mss (List.length mss - 1));
      Fmt.pr "@.")
    entries;
  let n = List.length entries in
  List.iteri
    (fun i (d : Desc.t) ->
      if i > 0 then
        Fmt.pr "%s: modeled latency below %s on %d/%d models@." d.Desc.name
          baseline.Desc.name wins.(i) n)
    devices;
  (* for a single model the per-device tables are small enough to also
     solve the joint placement problem and show the split *)
  match (model, devices) with
  | Some _, _ :: _ :: _ ->
    let g = (List.hd entries).Zoo.build () in
    let p = Place.place ~devices g in
    Fmt.pr "@.%a@." Place.pp p
  | _ -> ()

let compare_run model devices force_infer =
  match devices with
  | Some names -> compare_devices_run names model
  | None ->
  let model =
    match model with
    | Some m -> m
    | None ->
      Fmt.epr "gcd2: MODEL is required unless --devices is given@.";
      exit 1
  in
  let entry = find_model model in
  let g = Zoo.with_random_weights (entry.Zoo.build ()) in
  let gmacs = float_of_int (Gcd2_graph.Flops.total_macs g) /. 1e9 in
  let measure = force_infer || gmacs <= compare_infer_budget_gmacs in
  (* One shared random input set: the modeled latency column is static, but
     the inference columns come from actually running each compiled model
     on the simulated DSP. *)
  let rng = Gcd2_util.Rng.create 42 in
  let inputs =
    let acc = ref [] in
    Graph.iter
      (fun node ->
        match node.Graph.op with
        | Op.Input { shape } -> acc := (node.Graph.id, T.random rng shape) :: !acc
        | _ -> ())
      g;
    List.rev !acc
  in
  Fmt.pr "%-8s %10s %8s %10s %5s %5s %12s@." "stack" "ms" "fps" "infer-ms" "vm" "host"
    "vm-cycles";
  List.iter
    (fun config ->
      let c = Compiler.compile ~config g in
      let ms = Compiler.latency_ms c in
      if measure then begin
        let t0 = Trace.now () in
        let _, stats = Runtime.run_with_stats c ~inputs in
        let infer_ms = 1000.0 *. (Trace.now () -. t0) in
        Fmt.pr "%-8s %10.2f %8.1f %10.1f %5d %5d %12d@." config.Compiler.name ms
          (1000.0 /. ms) infer_ms stats.Runtime.vm_nodes stats.Runtime.host_nodes
          stats.Runtime.vm_cycles
      end
      else
        Fmt.pr "%-8s %10.2f %8.1f %10s %5s %5s %12s@." config.Compiler.name ms
          (1000.0 /. ms) "-" "-" "-" "-")
    [ F.tflite; F.snpe; F.gcd2_b; F.gcd2 ];
  if not measure then
    Fmt.pr "(%.1f GMACs > %.1f: simulated inference skipped; pass --infer to run it)@."
      gmacs compare_infer_budget_gmacs

let infer_arg =
  let doc =
    "Measure simulated inference wall time even on models above the default GMAC budget."
  in
  Arg.(value & flag & info [ "infer" ] ~doc)

let compare_cmd =
  let doc =
    "Compare TFLite / SNPE / GCD_b / GCD2 on one model, or — with --devices — \
     compare machine descriptions on one model or the whole zoo."
  in
  let model_opt_arg =
    let doc = "Model name from the zoo (optional with --devices: defaults to every model)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)
  in
  let devices_arg =
    let doc =
      "Compare machine descriptions instead of frameworks: comma-separated device \
       names (e.g. hexagon698,hexagon-g2); the first is the speedup baseline."
    in
    Arg.(value & opt (some string) None & info [ "devices" ] ~docv:"A,B" ~doc)
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const compare_run $ model_opt_arg $ devices_arg $ infer_arg)

(* ---------------- kernel ---------------- *)

let dim name = Arg.(value & opt int 128 & info [ name ] ~docv:"N" ~doc:("dimension " ^ name))

let kernel_run m k n =
  Fmt.pr "C[%d x %d] = A[%d x %d] * W[%d x %d]@.@." m n m k k n;
  Fmt.pr "%-6s %-10s %10s %10s %8s@." "instr" "layout" "cycles" "packets" "pad%";
  List.iter
    (fun simd ->
      let u = Unroll.adaptive simd ~m ~k ~n in
      let spec =
        {
          Matmul.device = Desc.hexagon698;
          simd;
          m;
          k;
          n;
          mult = 1 lsl 30;
          shift = 30;
          act_table = None;
          strategy = Packer.sda;
          un = u.Unroll.un;
          ug = u.Unroll.ug;
          abuf = u.Unroll.abuf;
          wbuf = u.Unroll.wbuf;
          addressing = Matmul.Bump;
        }
      in
      let prog = Matmul.generate spec { Matmul.a_base = 0; w_base = 0; c_base = 0 } in
      let pad =
        100.0
        *. (float_of_int (Simd.padded_data_bytes simd ~m ~k ~n)
            /. float_of_int ((m * k) + (k * n) + (m * n))
           -. 1.0)
      in
      Fmt.pr "%-6s %-10s %10d %10d %7.1f%%@." (Simd.name simd)
        (Gcd2_tensor.Layout.name (Simd.layout simd))
        (Gcd2_isa.Program.static_cycles prog)
        (Gcd2_isa.Program.packet_count prog)
        pad)
    Simd.all

let kernel_cmd =
  let doc = "Show the three SIMD implementation choices for one matmul shape." in
  Cmd.v (Cmd.info "kernel" ~doc) Term.(const kernel_run $ dim "m" $ dim "k" $ dim "n")

(* ---------------- main ---------------- *)

let () =
  let doc = "GCD2: a globally optimizing DNN compiler for a simulated mobile DSP" in
  let info = Cmd.info "gcd2" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; compile_cmd; serve_cmd; daemon_cmd; client_cmd; compare_cmd;
            kernel_cmd ]))
