(* Compile-cache benchmark: cold-vs-warm compile wall time per zoo model
   through a throwaway cache directory.  Not part of the paper — it
   characterizes the artifact store (lib/store): how much of a compile a
   verified cache hit saves, and what the artifact costs on disk. *)

module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler
module Trace = Gcd2_util.Trace
module Stats = Gcd2_util.Stats

let temp_cache_dir () =
  let f = Filename.temp_file "gcd2-bench-cache" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let timed f =
  let t0 = Trace.now () in
  let v = f () in
  (v, Trace.now () -. t0)

let run () =
  let dir = temp_cache_dir () in
  Printf.printf "\n== Compile cache: cold vs warm compile per zoo model ==\n";
  Printf.printf "   (content-addressed artifact store under %s)\n" dir;
  Printf.printf "   (cold = memo tables cleared first; warm = verified cache hit)\n\n";
  Printf.printf "   %-18s %10s %10s %9s %12s\n" "model" "cold (s)" "warm (s)" "speedup"
    "artifact";
  let speedups =
    List.map
      (fun (e : Zoo.entry) ->
        (* Cold must mean memo-cold too: earlier models in this loop warm
           the kernel-cost memo tables for shared specs, which would make
           the "cold" column silently measure a part-warm compile. *)
        Gcd2_util.Memo.clear_all ();
        let cold, cold_s =
          timed (fun () -> Compiler.compile ~cache_dir:dir (e.Zoo.build ()))
        in
        let warm, warm_s =
          timed (fun () -> Compiler.compile ~cache_dir:dir (e.Zoo.build ()))
        in
        if not (Compiler.from_cache warm) then
          Printf.printf "   %-18s WARM COMPILE MISSED THE CACHE\n" e.Zoo.name;
        let bytes = Trace.counter cold.Compiler.trace "cache-bytes" in
        let speedup = cold_s /. Float.max warm_s 1e-9 in
        Printf.printf "   %-18s %10.3f %10.4f %8.0fx %9d KB\n" e.Zoo.name cold_s warm_s
          speedup (bytes / 1024);
        speedup)
      Zoo.all
  in
  Printf.printf "\n   geomean speedup %.0fx over %d models\n"
    (Stats.geomean speedups) (List.length speedups)
