(* VM benchmark ("vm"): per-opcode instruction throughput of the
   translated engine against the reference interpreter, and whole-model
   inference wall time over the zoo with both engines — asserting along
   the way that per-node outputs and execution statistics are
   bit-identical.  Writes BENCH_vm.json so the numbers can be tracked
   across revisions.

   "vm-smoke" is the CI variant: tiny iteration counts and a small
   synthetic model so both engines are exercised in well under a second
   of simulated work. *)

module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime
module Trace = Gcd2_util.Trace
module Stats = Gcd2_util.Stats
module Rng = Gcd2_util.Rng
module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Machine = Gcd2_vm.Machine
module Instr = Gcd2_isa.Instr
module Reg = Gcd2_isa.Reg
module Program = Gcd2_isa.Program
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op
module B = Graph.Builder

let timed f =
  let t0 = Trace.now () in
  let v = f () in
  (v, Trace.now () -. t0)

(* ---------------- per-opcode throughput ---------------- *)

(* One instruction per packet, replayed by a hardware loop: the loop body
   is translated once and executed [trip] times, so the measured rate is
   the steady-state per-instruction cost of each engine. *)
let opcodes : (string * Instr.t) list =
  let r n = Reg.R n and v n = Reg.V n and p n = Reg.P n in
  let at n off = { Instr.base = r n; offset = off } in
  [
    ("Salu.add", Instr.Salu (Instr.Add, r 1, r 1, Instr.Imm 1));
    ("Smul", Instr.Smul (r 1, r 1, Instr.Imm 3));
    ("Sload", Instr.Sload (r 1, at 0 0));
    ("Sstore", Instr.Sstore (at 0 64, r 1));
    ("Vload", Instr.Vload (v 0, at 0 128));
    ("Vstore", Instr.Vstore (at 0 256, v 0));
    ("Valu.add.b", Instr.Valu (Instr.Vadd, Instr.W8, v 1, v 0, v 1));
    ("Valu.max.h", Instr.Valu (Instr.Vmax, Instr.W16, v 1, v 0, v 1));
    ("Valu.add.w", Instr.Valu (Instr.Vadd, Instr.W32, v 1, v 0, v 1));
    ("Vaddw", Instr.Vaddw (p 1, v 0));
    ("Vmpy", Instr.Vmpy (p 2, v 0, r 2));
    ("Vmpyb", Instr.Vmpyb (p 2, v 0, r 2, 1));
    ("Vmul", Instr.Vmul (p 2, v 0, v 1));
    ("Vmpa", Instr.Vmpa (p 2, p 3, r 2));
    ("Vrmpy", Instr.Vrmpy (v 1, v 0, r 2));
    ("Vscale", Instr.Vscale (v 1, v 0, 1 lsl 20, 21));
    ("Vscalev", Instr.Vscalev (v 1, v 0, v 8, 21));
    ("Vpack.w", Instr.Vpack (v 1, p 2, Instr.W32));
    ("Vshuff.h", Instr.Vshuff (p 2, p 3, Instr.W16));
    ("Vlut", Instr.Vlut (v 1, v 0, 1));
    ("Vdup", Instr.Vdup (v 1, r 2));
  ]

type op_row = {
  op : string;
  fast_ips : float;  (** translated engine, instructions / second *)
  ref_ips : float;  (** reference interpreter, instructions / second *)
  fast_macs_s : float;
  op_speedup : float;
}

let throughput_program instr ~trip =
  let tables = [ (1, Array.init 256 (fun i -> (i * 7) land 0xff)) ] in
  Program.make ~tables "opcode-throughput"
    [ Program.Loop { trip; body = [ Program.Block [ [ instr ] ] ] } ]

(* Rate under one engine: executed instructions (from the machine's own
   counter) per second of wall time, over [reps] runs of the program. *)
let rate engine prog ~reps =
  let saved = Machine.engine () in
  Machine.set_engine engine;
  let m = Machine.create ~mem_bytes:4096 () in
  Machine.set_sreg m (Reg.R 2) 0x01020304;
  (* warm-up run: pays translation (or nothing) outside the clock *)
  Machine.run m prog;
  let (), dt =
    timed (fun () ->
        for _ = 1 to reps do
          Machine.run m prog
        done)
  in
  Machine.set_engine saved;
  let c = Machine.counters m in
  let frac = float_of_int reps /. float_of_int (reps + 1) in
  ( float_of_int c.Machine.instrs *. frac /. dt,
    float_of_int c.Machine.macs *. frac /. dt )

let measure_opcode ~trip ~reps (op, instr) =
  let prog = throughput_program instr ~trip in
  let fast_ips, fast_macs_s = rate Machine.Translated prog ~reps in
  (* the reference interpreter is much slower: fewer timed repetitions *)
  let ref_ips, _ = rate Machine.Reference prog ~reps:(max 1 (reps / 8)) in
  { op; fast_ips; ref_ips; fast_macs_s; op_speedup = fast_ips /. ref_ips }

(* ---------------- whole-model inference ---------------- *)

type model_row = {
  name : string;
  nodes : int;
  vm_nodes : int;
  host_nodes : int;
  vm_cycles : int;
  kinds : (string * Runtime.kind_stat) list;
      (** host-vs-VM split per operator kind, sorted by kind *)
  fast_s : float;
  ref_s : float;
  speedup : float;
}

let inputs_of g =
  let rng = Rng.create 42 in
  let acc = ref [] in
  Graph.iter
    (fun node ->
      match node.Graph.op with
      | Op.Input { shape } -> acc := (node.Graph.id, T.random rng shape) :: !acc
      | _ -> ())
    g;
  List.rev !acc

let check_identical name (vm : T.t array) (vm_ref : T.t array) (s : Runtime.stats)
    (s_ref : Runtime.stats) =
  if Array.length vm <> Array.length vm_ref then
    failwith (name ^ ": node count differs between engines");
  Array.iteri
    (fun i (a : T.t) ->
      let b = vm_ref.(i) in
      if a.T.dims <> b.T.dims || a.T.data <> b.T.data then
        failwith (Printf.sprintf "%s: node %d output differs between engines" name i))
    vm;
  if
    s.Runtime.vm_cycles <> s_ref.Runtime.vm_cycles
    || s.Runtime.vm_nodes <> s_ref.Runtime.vm_nodes
    || s.Runtime.host_nodes <> s_ref.Runtime.host_nodes
  then failwith (name ^ ": execution stats differ between engines");
  let kinds (s : Runtime.stats) =
    List.sort compare
      (Hashtbl.fold
         (fun k (v : Runtime.kind_stat) acc ->
           (k, v.Runtime.k_vm, v.Runtime.k_host, v.Runtime.k_cycles) :: acc)
         s.Runtime.kinds [])
  in
  if kinds s <> kinds s_ref then
    failwith (name ^ ": per-kind stats differ between engines")

(* Each engine's leg is timed at steady state: an untimed warm-up run
   pays the one-time per-process and per-model costs (major-heap growth,
   page faults, and on the fast engine decode+translation) outside the
   clock, then the timed run measures serving-loop behaviour.  Both
   engines get exactly the same treatment. *)
let steady_run c ~inputs =
  ignore (Runtime.run_with_stats c ~inputs);
  timed (fun () -> Runtime.run_with_stats c ~inputs)

let measure_model name (g : Graph.t) =
  let c = Compiler.compile g in
  let inputs = inputs_of g in
  let saved = Machine.engine () in
  Machine.set_engine Machine.Translated;
  let (vm, stats), fast_s = steady_run c ~inputs in
  Machine.set_engine Machine.Reference;
  let (vm_ref, stats_ref), ref_s = steady_run c ~inputs in
  Machine.set_engine saved;
  check_identical name vm vm_ref stats stats_ref;
  {
    name;
    nodes = Graph.size g;
    vm_nodes = stats.Runtime.vm_nodes;
    host_nodes = stats.Runtime.host_nodes;
    vm_cycles = stats.Runtime.vm_cycles;
    kinds =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats.Runtime.kinds []);
    fast_s;
    ref_s;
    speedup = ref_s /. fast_s;
  }

(* The reference interpreter makes the biggest zoo members (FST at 140
   GMACs of simulated work...) impractical to run twice; the wall-time
   table covers the models below a MAC budget and says so. *)
let model_budget_gmacs = 2.0

let zoo_models () =
  List.filter_map
    (fun (e : Zoo.entry) ->
      if e.Zoo.paper_gmacs <= model_budget_gmacs then
        Some (e.Zoo.name, Zoo.with_random_weights (e.Zoo.build ()))
      else None)
    Zoo.all

(* Small synthetic CNN for the CI smoke: conv + relu + add + matmul hits
   the matmul, eltwise and LUT kernel paths in a few milliseconds. *)
let smoke_model () =
  let rng = Rng.create 3 in
  let weight_q = Q.make (1.0 /. 64.0) in
  let b = B.create () in
  let x = B.input b [| 1; 8; 8; 4 |] in
  let w1 = T.random ~quant:weight_q rng [| 3; 3; 4; 8 |] in
  let c1 = B.conv2d ~weight:w1 b x ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:8 in
  let r1 = B.add b Op.Relu [ c1 ] in
  let s = B.add b Op.Add [ r1; c1 ] in
  let flat = B.add b (Op.Reshape { shape = [| 64; 8 |] }) [ s ] in
  let w2 = T.random ~quant:weight_q rng [| 8; 10 |] in
  let _ = B.matmul ~weight:w2 b flat ~cout:10 in
  B.finish b

(* ---------------- reporting ---------------- *)

let json_of op_rows model_rows geomean =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"vm\",\n  \"opcodes\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"op\": %S, \"fast_instrs_s\": %.0f, \"ref_instrs_s\": %.0f, \
            \"fast_macs_s\": %.0f, \"speedup\": %.2f}%s\n"
           r.op r.fast_ips r.ref_ips r.fast_macs_s r.op_speedup
           (if i = List.length op_rows - 1 then "" else ",")))
    op_rows;
  Buffer.add_string b "  ],\n  \"models\": [\n";
  List.iteri
    (fun i r ->
      let kinds_json =
        String.concat ", "
          (List.map
             (fun (k, (ks : Runtime.kind_stat)) ->
               Printf.sprintf "%S: {\"vm\": %d, \"host\": %d, \"vm_cycles\": %d}" k
                 ks.Runtime.k_vm ks.Runtime.k_host ks.Runtime.k_cycles)
             r.kinds)
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"nodes\": %d, \"vm_nodes\": %d, \"host_nodes\": %d, \
            \"vm_cycles\": %d, \"fast_s\": %.6f, \"ref_s\": %.6f, \"speedup\": %.2f, \
            \"kinds\": {%s}}%s\n"
           r.name r.nodes r.vm_nodes r.host_nodes r.vm_cycles r.fast_s r.ref_s r.speedup
           kinds_json
           (if i = List.length model_rows - 1 then "" else ",")))
    model_rows;
  Buffer.add_string b (Printf.sprintf "  ],\n  \"geomean_speedup\": %.3f\n}\n" geomean);
  Buffer.contents b

let print_opcodes op_rows =
  Printf.printf "   %-12s %14s %14s %14s %9s\n" "opcode" "fast (i/s)" "ref (i/s)"
    "fast MAC/s" "speedup";
  List.iter
    (fun r ->
      Printf.printf "   %-12s %14.2e %14.2e %14.2e %8.1fx\n" r.op r.fast_ips r.ref_ips
        r.fast_macs_s r.op_speedup)
    op_rows

let print_models model_rows geomean =
  Printf.printf "\n   %-18s %5s %4s %5s %12s %10s %10s %9s\n" "model" "nodes" "vm"
    "host" "vm-cycles" "fast (s)" "ref (s)" "speedup";
  List.iter
    (fun r ->
      Printf.printf "   %-18s %5d %4d %5d %12d %10.3f %10.3f %8.1fx\n" r.name r.nodes
        r.vm_nodes r.host_nodes r.vm_cycles r.fast_s r.ref_s r.speedup)
    model_rows;
  Printf.printf "\n   geomean whole-model speedup: %.2fx\n" geomean

let run_with ~trip ~reps ~models ~label ~write_json () =
  Report.header
    (label ^ ": translated engine vs reference interpreter (outputs bit-identical)");
  let op_rows = List.map (measure_opcode ~trip ~reps) opcodes in
  print_opcodes op_rows;
  let model_rows = List.map (fun (name, g) -> measure_model name g) models in
  let geomean = Stats.geomean (List.map (fun r -> r.speedup) model_rows) in
  print_models model_rows geomean;
  Printf.printf
    "   (steady-state wall times: per engine, one untimed warm-up run then one timed \
     run;\n    models capped at %.1f GMACs: the reference engine sets the cost)\n"
    model_budget_gmacs;
  if write_json then begin
    let path = "BENCH_vm.json" in
    let oc = open_out path in
    output_string oc (json_of op_rows model_rows geomean);
    close_out oc;
    Printf.printf "   wrote %s (%d opcodes, %d models) for trajectory tracking\n" path
      (List.length op_rows) (List.length model_rows)
  end

let run () =
  run_with ~trip:20_000 ~reps:8 ~models:(zoo_models ()) ~label:"vm" ~write_json:true ()

(* CI smoke: both engines on every opcode and a small whole model, no
   JSON (CI must not dirty the tree), small enough for `make check`. *)
let smoke () =
  run_with ~trip:200 ~reps:2
    ~models:[ ("smoke-cnn", smoke_model ()) ]
    ~label:"vm-smoke" ~write_json:false ()
