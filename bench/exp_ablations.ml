(* Ablations of this implementation's own design choices (beyond the
   paper's figures): layout-specialized addressing, the partition size
   bound, SDA's w parameter, per-channel requantization overhead, and the
   sensitivity of the headline result to the dispatch-overhead constant. *)

module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Opcost = Gcd2_cost.Opcost
module Solver = Gcd2_layout.Solver
module Matmul = Gcd2_codegen.Matmul
module Simd = Gcd2_codegen.Simd
module Unroll = Gcd2_codegen.Unroll
module Packer = Gcd2_sched.Packer
module Q = Gcd2_tensor.Quant

let spec ?(addressing = Matmul.Bump) ?(strategy = Packer.sda) simd ~m ~k ~n =
  let u = Unroll.adaptive simd ~m ~k ~n in
  {
    Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
    m;
    k;
    n;
    mult = 1 lsl 30;
    shift = 30;
    act_table = None;
    strategy;
    un = u.Unroll.un;
    ug = u.Unroll.ug;
    abuf = u.Unroll.abuf;
    wbuf = u.Unroll.wbuf;
    addressing;
  }

let run () =
  Report.header "Ablation A - layout-specialized addressing (pointer bumps vs recompute)";
  Report.row "%-18s | %10s %10s | %6s\n" "kernel" "bump" "recompute" "cost";
  List.iter
    (fun (m, k, n) ->
      List.iter
        (fun simd ->
          let bump = Matmul.cycles (spec ~addressing:Matmul.Bump simd ~m ~k ~n) in
          let rec_ = Matmul.cycles (spec ~addressing:Matmul.Recompute simd ~m ~k ~n) in
          Report.row "%5dx%4dx%3d %-5s | %10d %10d | %5.2fx\n" m k n (Simd.name simd) bump
            rec_
            (float_of_int rec_ /. float_of_int bump))
        Simd.all)
    [ (3136, 64, 64); (784, 1152, 128) ];
  Report.note "generic lowering costs 1.3-2x — why the stock compilers trail even before packing";

  Report.header "Ablation B - partition size bound (GCD2(k) sweep on ResNet-50)";
  let g = Gcd2_graph.Passes.optimize ((Zoo.find "ResNet-50").Zoo.build ()) in
  let cost = Graphcost.build Opcost.gcd2 g in
  let p = cost.Graphcost.problem in
  let eval plans = (Graphcost.report cost plans).Graphcost.ms in
  let optimal = eval (Solver.optimal p).Solver.plans in
  Report.row "%6s | %10s | %12s | %10s\n" "k" "ms" "vs optimal" "solve (s)";
  List.iter
    (fun k ->
      let t0 = Gcd2_util.Trace.now () in
      let r = Solver.partitioned ~max_size:k p in
      let dt = Gcd2_util.Trace.now () -. t0 in
      let ms = eval r.Solver.plans in
      Report.row "%6d | %10.3f | %11.2f%% | %10.4f\n" k ms
        (100.0 *. ((ms /. optimal) -. 1.0))
        dt)
    [ 3; 5; 9; 13; 17; 25; 40 ];
  Report.note "the paper's k=13 already sits on the optimum; tiny parts lose the cross-edge context";

  Report.header "Ablation C - SDA parameter w (Equation 4 depth-vs-latency weight)";
  Report.row "%6s | %12s %12s %12s\n" "w" "vmpy" "vmpa" "vrmpy";
  List.iter
    (fun w ->
      let c simd =
        Matmul.cycles (spec ~strategy:(Packer.Sda { w; p = Packer.default_p }) simd ~m:128 ~k:64 ~n:8)
      in
      Report.row "%6.2f | %12d %12d %12d\n" w (c Simd.I_vmpy) (c Simd.I_vmpa) (c Simd.I_vrmpy))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ];
  Report.note "the tuned default is w=0.3; large w over-prioritizes depth and loses latency grouping";

  Report.header "Ablation D - per-channel requantization overhead (future work, implemented)";
  Report.row "%-18s | %10s %12s | %8s\n" "kernel" "uniform" "per-channel" "overhead";
  List.iter
    (fun (m, k, n) ->
      List.iter
        (fun simd ->
          let s = spec simd ~m ~k ~n in
          let uni = Matmul.cycles s in
          let scales = Array.init n (fun j -> (1.0 +. float_of_int j) /. 256.0) in
          let mults, shift =
            Q.per_channel_requant ~in_a:Q.default ~weight_scales:scales ~out:Q.default
          in
          let prog =
            Matmul.generate ~per_channel:(mults, shift) ~q_base:0
              { s with Matmul.shift }
              { Matmul.a_base = 0; w_base = 0; c_base = 0 }
          in
          let pc = Gcd2_isa.Program.static_cycles prog in
          Report.row "%5dx%4dx%3d %-5s | %10d %12d | %+7.2f%%\n" m k n (Simd.name simd) uni pc
            (100.0 *. ((float_of_int pc /. float_of_int uni) -. 1.0)))
        Simd.all)
    [ (512, 64, 32); (3136, 64, 64) ];
  Report.note "per-channel quantization costs ~0-3%% of kernel time (one vector load + per-lane multiply per output tile)";

  Report.header "Ablation E - dispatch-overhead sensitivity (Table IV geomean vs dispatch cost)";
  Report.row "%14s | %12s %12s | %s\n" "gcd2 us/op" "GCD2 ms" "OverTFLite" "(ResNet-50)";
  let g50 = (Zoo.find "ResNet-50").Zoo.build () in
  let tflite_ms = Compiler.latency_ms (F.compile F.tflite g50) in
  List.iter
    (fun us ->
      let config =
        {
          F.gcd2 with
          Compiler.name = Fmt.str "gcd2@%.0fus" us;
          opcost = { Opcost.gcd2 with Opcost.dispatch_us = us };
        }
      in
      let ms = Compiler.latency_ms (Compiler.compile ~config g50) in
      Report.row "%14.1f | %12.2f %11.2fx |\n" us ms (tflite_ms /. ms))
    [ 0.0; 5.0; 15.0; 30.0; 60.0 ];
  Report.note
    "the calibrated 15 us/operator (compiled runtime) leaves the headline speedup between 1.9x and 3.2x across the plausible range"
