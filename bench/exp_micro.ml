(* Bechamel micro-benchmarks of the compiler's core algorithms: how long
   the optimizations themselves take (the paper reports compilation times
   of 5-25 minutes for full models on-device; these measure our
   implementations). *)

open Bechamel
open Toolkit

module Packer = Gcd2_sched.Packer
module Matmul = Gcd2_codegen.Matmul
module Simd = Gcd2_codegen.Simd
module Solver = Gcd2_layout.Solver
module Graphcost = Gcd2_cost.Graphcost
module Machine = Gcd2_vm.Machine
module Zoo = Gcd2_models.Zoo

(* A representative inner-loop block to pack (from the vmpy kernel). *)
let kernel_block =
  lazy
    (let spec =
       {
         Matmul.device = Gcd2_devices.Desc.hexagon698;
         simd = Simd.I_vmpy;
         m = 128;
         k = 64;
         n = 8;
         mult = 1 lsl 30;
         shift = 30;
         act_table = None;
         strategy = Packer.sda;
         un = 4;
         ug = 2;
         abuf = 2;
         wbuf = 2;
         addressing = Matmul.Bump;
       }
     in
     let prog = Matmul.generate spec { Matmul.a_base = 0; w_base = 0; c_base = 0 } in
     (* flatten the innermost block back to an instruction array *)
     let rec find nodes =
       List.fold_left
         (fun acc node ->
           match node with
           | Gcd2_isa.Program.Block _ -> acc
           | Gcd2_isa.Program.Loop { body = [ Gcd2_isa.Program.Block ps ]; _ } ->
             Some (Array.of_list (List.concat ps))
           | Gcd2_isa.Program.Loop { body; _ } -> (
             match find body with Some x -> Some x | None -> acc))
         None nodes
     in
     match find prog.Gcd2_isa.Program.nodes with
     | Some instrs -> instrs
     | None -> [||])

let mobilenet_cost =
  lazy
    (let g = (Zoo.find "MobileNet-V3").Zoo.build () in
     let g = Gcd2_graph.Passes.optimize g in
     Graphcost.build Gcd2_cost.Opcost.gcd2 g)

let test_sda_packing =
  Test.make ~name:"sda packing (vmpy inner block)"
    (Staged.stage (fun () -> ignore (Packer.pack Packer.sda (Lazy.force kernel_block))))

let test_list_packing =
  Test.make ~name:"list packing (same block)"
    (Staged.stage (fun () -> ignore (Packer.pack Packer.List_topdown (Lazy.force kernel_block))))

let test_codegen =
  Test.make ~name:"matmul codegen + packing (128x64x8)"
    (Staged.stage (fun () ->
         ignore
           (Matmul.cycles
              {
                Matmul.device = Gcd2_devices.Desc.hexagon698;
                simd = Simd.I_vrmpy;
                m = 128;
                k = 64;
                n = 8;
                mult = 1 lsl 30;
                shift = 30;
                act_table = None;
                strategy = Packer.sda;
                un = 8;
                ug = 1;
                abuf = 2;
                wbuf = 2;
                addressing = Matmul.Bump;
              })))

let test_partitioned_selection =
  Test.make ~name:"global selection gcd2(13) (MobileNet-V3)"
    (Staged.stage (fun () ->
         let cost = Lazy.force mobilenet_cost in
         ignore (Solver.partitioned ~max_size:13 cost.Graphcost.problem)))

let test_local_selection =
  Test.make ~name:"local selection (MobileNet-V3)"
    (Staged.stage (fun () ->
         let cost = Lazy.force mobilenet_cost in
         ignore (Solver.local cost.Graphcost.problem)))

let test_vm_matmul =
  Test.make ~name:"vm execution of a 32x32x8 matmul kernel"
    (Staged.stage (fun () ->
         let rng = Gcd2_util.Rng.create 1 in
         let a = Array.init (32 * 32) (fun _ -> Gcd2_util.Rng.int8 rng) in
         let w = Array.init (32 * 8) (fun _ -> Gcd2_util.Rng.int8 rng) in
         ignore
           (Gcd2_codegen.Testbench.run
              {
                Matmul.device = Gcd2_devices.Desc.hexagon698;
                simd = Simd.I_vrmpy;
                m = 32;
                k = 32;
                n = 8;
                mult = 1 lsl 30;
                shift = 30;
                act_table = None;
                strategy = Packer.sda;
                un = 8;
                ug = 1;
                abuf = 2;
                wbuf = 2;
                addressing = Matmul.Bump;
              }
              ~a ~w)))

(* ------------------------------------------------------------------ *)
(* pack-scaling: incremental vs reference SDA packer wall time as the
   block grows.  Blocks are the vmpy inner block tiled back-to-back; the
   copies reuse the same registers, so the packer sees one long block
   threaded by WAW/RAW dependences rather than k independent ones. *)

let replicate k block = Array.concat (List.init k (fun _ -> block))

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let time_pack pack block =
  let reps = max 3 (2000 / max 1 (Array.length block)) in
  let samples =
    List.init reps (fun _ ->
        let t0 = Gcd2_util.Trace.now () in
        ignore (pack Packer.sda block);
        Gcd2_util.Trace.now () -. t0)
  in
  median samples

let pack_scaling () =
  Report.header "pack-scaling: incremental vs reference SDA packer (median wall time)";
  let base = Lazy.force kernel_block in
  Report.row "   base block: %d instructions (vmpy inner block)\n\n" (Array.length base);
  Report.row "   %8s %14s %14s %9s\n" "instrs" "incremental" "reference" "speedup";
  List.iter
    (fun k ->
      let block = replicate k base in
      let inc = time_pack Packer.pack_indices block in
      let reference = time_pack Packer.pack_indices_reference block in
      Report.row "   %8d %11.3f ms %11.3f ms %8.1fx\n" (Array.length block)
        (inc *. 1e3) (reference *. 1e3)
        (reference /. Float.max inc 1e-9))
    [ 1; 2; 4; 8; 16 ]

let benchmark () =
  let tests =
    [
      test_sda_packing;
      test_list_packing;
      test_codegen;
      test_partitioned_selection;
      test_local_selection;
      test_vm_matmul;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw =
    List.map
      (fun test -> Benchmark.all cfg instances test)
      (List.map (fun t -> Test.make_grouped ~name:(Test.name t) [ t ]) tests)
  in
  let results =
    List.map (fun r -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) Instance.monotonic_clock r) raw
  in
  Report.header "Micro-benchmarks (bechamel, monotonic clock)";
  List.iter2
    (fun test result ->
      Hashtbl.iter
        (fun name ols ->
          ignore name;
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] ->
            Report.row "%-44s %12.1f ns/run\n" (Test.name test) est
          | _ -> Report.row "%-44s %12s\n" (Test.name test) "n/a")
        result)
    tests results;
  pack_scaling ()
