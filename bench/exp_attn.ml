(* Transformer benchmark ("attn"): the sequence models of the zoo
   compiled with the transformer kernels off (batched MatMul, Softmax
   and LayerNorm priced by the pre-kernel heuristics and executed on
   the host interpreter) and on (the default GCD2 configuration:
   row-operator and batched-MatMul kernels costed from generated
   programs and executed on the simulated DSP), then run end-to-end on
   the translated engine under both assignments.  The table reports the host-vs-VM node flip, the
   simulated DSP cycles, the cost model's end-to-end latency for both
   configurations, and the measured inference wall time.  Writes
   BENCH_attn.json so the flip and the speedup are tracked across
   revisions.

   "attn-smoke" is the CI variant: TinyBERT at a small bucketed
   sequence length (seq=32 exercises the shape-bucket padding path),
   asserting the majority-DSP flip rather than printing a table. *)

module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler
module Runtime = Gcd2.Runtime
module Opcost = Gcd2_cost.Opcost
module Trace = Gcd2_util.Trace
module Rng = Gcd2_util.Rng
module T = Gcd2_tensor.Tensor
module Machine = Gcd2_vm.Machine
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op

let timed f =
  let t0 = Trace.now () in
  let v = f () in
  (v, Trace.now () -. t0)

(* The comparison baseline is the default configuration with only the
   transformer kernels withheld — same selection, same packing, same
   device — so the delta is attributable to the new kernels alone. *)
let config_off =
  {
    Compiler.default with
    Compiler.name = "gcd2-no-attn";
    opcost = { Compiler.default.Compiler.opcost with Opcost.attn_kernels = false };
  }

let inputs_of g =
  let rng = Rng.create 42 in
  let acc = ref [] in
  Graph.iter
    (fun node ->
      match node.Graph.op with
      | Op.Input { shape } -> acc := (node.Graph.id, T.random rng shape) :: !acc
      | _ -> ())
    g;
  List.rev !acc

type leg = {
  vm_nodes : int;
  host_nodes : int;
  vm_cycles : int;
  latency_ms : float;  (** cost model's end-to-end estimate *)
  wall_s : float;  (** measured steady-state inference wall time *)
}

type row = {
  name : string;
  nodes : int;
  off : leg;
  on_ : leg;
  kinds : (string * Runtime.kind_stat) list;  (** per-kind split, kernels on *)
}

let measure_leg config g ~inputs =
  let c = Compiler.compile ~config g in
  let saved = Machine.engine () in
  Machine.set_engine Machine.Translated;
  (* untimed warm-up pays decode+translation outside the clock *)
  ignore (Runtime.run_with_stats c ~inputs);
  let (_, stats), wall_s = timed (fun () -> Runtime.run_with_stats c ~inputs) in
  Machine.set_engine saved;
  ( {
      vm_nodes = stats.Runtime.vm_nodes;
      host_nodes = stats.Runtime.host_nodes;
      vm_cycles = stats.Runtime.vm_cycles;
      latency_ms = Compiler.latency_ms c;
      wall_s;
    },
    stats )

let measure name g =
  let inputs = inputs_of g in
  let off, _ = measure_leg config_off g ~inputs in
  let on_, stats = measure_leg Compiler.default g ~inputs in
  {
    name;
    nodes = Graph.size g;
    off;
    on_;
    kinds =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats.Runtime.kinds []);
  }

let seq_models () =
  List.filter_map
    (fun (e : Zoo.entry) ->
      match e.Zoo.seq_build with
      | Some _ -> Some (e.Zoo.name, Zoo.with_random_weights (e.Zoo.build ()))
      | None -> None)
    Zoo.all

(* ---------------- reporting ---------------- *)

let json_of rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"attn\",\n  \"models\": [\n";
  List.iteri
    (fun i r ->
      let leg_json (l : leg) =
        Printf.sprintf
          "{\"vm_nodes\": %d, \"host_nodes\": %d, \"vm_cycles\": %d, \
           \"latency_ms\": %.6f, \"wall_s\": %.6f}"
          l.vm_nodes l.host_nodes l.vm_cycles l.latency_ms l.wall_s
      in
      let kinds_json =
        String.concat ", "
          (List.map
             (fun (k, (ks : Runtime.kind_stat)) ->
               Printf.sprintf "%S: {\"vm\": %d, \"host\": %d, \"vm_cycles\": %d}" k
                 ks.Runtime.k_vm ks.Runtime.k_host ks.Runtime.k_cycles)
             r.kinds)
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"nodes\": %d, \"kernels_off\": %s, \"kernels_on\": %s, \
            \"wall_speedup\": %.3f, \"kinds\": {%s}}%s\n"
           r.name r.nodes (leg_json r.off) (leg_json r.on_)
           (r.off.wall_s /. r.on_.wall_s)
           kinds_json
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let print_rows rows =
  Printf.printf "   %-12s %7s  %11s %11s %14s %12s %9s\n" "model" "kernels" "vm/host"
    "vm-cycles" "latency (ms)" "wall (s)" "speedup";
  List.iter
    (fun r ->
      let line label (l : leg) speedup =
        Printf.printf "   %-12s %7s  %5d/%-5d %11d %14.4f %12.4f %s\n" r.name label
          l.vm_nodes l.host_nodes l.vm_cycles l.latency_ms l.wall_s speedup
      in
      line "off" r.off "";
      line "on" r.on_ (Printf.sprintf "%8.2fx" (r.off.wall_s /. r.on_.wall_s)))
    rows;
  print_newline ();
  List.iter
    (fun r ->
      let attn_kinds =
        List.filter (fun (k, _) -> List.mem k [ "bmm"; "softmax"; "layer_norm" ]) r.kinds
      in
      Printf.printf "   %s per-kind (kernels on): %s\n" r.name
        (String.concat "; "
           (List.map
              (fun (k, (ks : Runtime.kind_stat)) ->
                Printf.sprintf "%s vm=%d host=%d cycles=%d" k ks.Runtime.k_vm
                  ks.Runtime.k_host ks.Runtime.k_cycles)
              attn_kinds)))
    rows

let run () =
  Report.header
    "attn: transformer kernels off vs on (batched MatMul / Softmax / LayerNorm)";
  let rows = List.map (fun (name, g) -> measure name g) (seq_models ()) in
  print_rows rows;
  Printf.printf
    "   (speedup: measured inference wall time, kernels off / kernels on — the off\n\
    \    leg runs the attention ops on the host interpreter, the on leg on the\n\
    \    simulated DSP; the latency column is each leg's own cost-model estimate,\n\
    \    not comparable across legs since the kernels re-price the row operators)\n";
  let path = "BENCH_attn.json" in
  let oc = open_out path in
  output_string oc (json_of rows);
  close_out oc;
  Printf.printf "   wrote %s (%d models) for trajectory tracking\n" path
    (List.length rows)

(* CI smoke: TinyBERT at a bucketed sequence length must flip
   majority-DSP with the kernels on — both untuned and under a
   small-budget autotune, so the tuner's walk over the new kernel plans
   is exercised too.  No JSON (CI must not dirty the tree). *)
let smoke () =
  Report.header "attn-smoke: TinyBERT seq=32 majority-DSP flip";
  let g = Zoo.with_random_weights (Zoo.build ~seq:32 "TinyBERT") in
  let r = measure "TinyBERT-32" g in
  Printf.printf
    "   kernels off: vm=%d host=%d wall=%.4f s; on: vm=%d host=%d wall=%.4f s\n"
    r.off.vm_nodes r.off.host_nodes r.off.wall_s r.on_.vm_nodes r.on_.host_nodes
    r.on_.wall_s;
  if r.on_.vm_nodes <= r.on_.host_nodes then
    failwith "attn-smoke: transformer kernels did not flip TinyBERT majority-DSP";
  if r.on_.vm_nodes <= r.off.vm_nodes then
    failwith "attn-smoke: transformer kernels did not move nodes onto the DSP";
  let tuned_config =
    {
      Compiler.default with
      Compiler.name = "gcd2-tuned";
      opcost =
        {
          Compiler.default.Compiler.opcost with
          Opcost.tune = Some { Gcd2_codegen.Autotune.budget = 4; verify = false };
        };
    }
  in
  let tuned, _ = measure_leg tuned_config g ~inputs:(inputs_of g) in
  Printf.printf "   tuned (budget 4): vm=%d host=%d latency=%.4f ms\n" tuned.vm_nodes
    tuned.host_nodes tuned.latency_ms;
  if tuned.vm_nodes <= tuned.host_nodes then
    failwith "attn-smoke: tuned compile lost the majority-DSP flip";
  if tuned.latency_ms > r.on_.latency_ms then
    failwith "attn-smoke: tuned schedule worse than the heuristic";
  Printf.printf "   ok: majority-DSP (%d vm / %d host), wall %.4f -> %.4f s (%.2fx)\n"
    r.on_.vm_nodes r.on_.host_nodes r.off.wall_s r.on_.wall_s
    (r.off.wall_s /. r.on_.wall_s)
