(* Load generator for the serve daemon ("serve-load"): zipf-distributed
   zoo-model traffic against a live daemon, swept over worker counts.

   Clients are sessions: open a connection, send a handful of requests
   with a short think time between them, close, repeat until the clock
   runs out.  The think time is what makes worker count matter on a
   small machine — while one session thinks, its worker is parked on
   client I/O, and only another worker can serve another session; with
   think >> per-request CPU the warm throughput scales ~linearly in
   workers until the CPU saturates.  Latencies are measured client-side
   (send to response, excluding think), recorded into per-client
   mergeable histograms (Gcd2_util.Stats.Hist), split cold/warm by the
   response's cold flag, and merged for the report.

   Writes BENCH_serve.json with one row per worker count, including the
   throughput ratio against the 1-worker row.  "serve-load-smoke" is the
   CI variant: shorter clock, workers 1 and 4.

   Environment overrides: GCD2_SERVE_LOAD_WORKERS (comma-separated
   worker counts), GCD2_SERVE_LOAD_MS (timed phase per worker count),
   GCD2_SERVE_LOAD_CLIENTS, GCD2_SERVE_LOAD_THINK_MS. *)

module Daemon = Gcd2_daemon.Daemon
module Client = Gcd2_daemon.Client
module Protocol = Gcd2_daemon.Protocol
module Serve = Gcd2_serve.Serve
module Hist = Gcd2_util.Stats.Hist
module Rng = Gcd2_util.Rng
module Trace = Gcd2_util.Trace

(* the zipf head of the zoo: small models, so the warm phase is
   request-rate-bound rather than one giant compile *)
let models = [| "MobileNet-V3"; "WDSR-b"; "TinyBERT"; "EfficientNet-b0" |]

let zipf_cdf n s =
  let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let sample cdf rng =
  let u = Rng.float rng in
  let n = Array.length cdf in
  let rec find i = if i >= n - 1 || u < cdf.(i) then i else find (i + 1) in
  find 0

let env_int name d =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v -> v
  | None -> d

let env_float name d =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v -> v
  | None -> d

let env_workers d =
  match Sys.getenv_opt "GCD2_SERVE_LOAD_WORKERS" with
  | None -> d
  | Some s -> (
    match
      String.split_on_char ',' s
      |> List.filter (fun x -> x <> "")
      |> List.map int_of_string_opt
    with
    | [] -> d
    | l when List.for_all Option.is_some l -> List.map Option.get l
    | _ -> d)

type acc = {
  warm : Hist.t;
  cold : Hist.t;
  mutable ok : int;
  mutable failed : int;
  mutable rejected : int;
  mutable coalesced : int;
}

let acc_create () =
  {
    warm = Hist.create ();
    cold = Hist.create ();
    ok = 0;
    failed = 0;
    rejected = 0;
    coalesced = 0;
  }

(* One client thread: sessions of [session_len] zipf-sampled requests
   with [think_ms] of think time after each response, until [deadline].
   A rejected connection (backpressure) is retried after a short backoff
   — the retryable contract of the overloaded diagnostic. *)
let client_thread addr acc seed ~deadline ~think_ms ~session_len () =
  let rng = Rng.create seed in
  let cdf = zipf_cdf (Array.length models) 1.1 in
  let rec sessions () =
    if Trace.now () < deadline then begin
      (match Client.open_conn addr with
      | exception _ -> Thread.delay 0.025
      | conn ->
        let rejected = ref false in
        (try
           let rec go n =
             if n > 0 && Trace.now () < deadline && not !rejected then begin
               let m = models.(sample cdf rng) in
               let t0 = Trace.now () in
               (match Client.request conn m with
               | Ok r -> (
                 let ms = (Trace.now () -. t0) *. 1000. in
                 match r.Protocol.outcome with
                 | "ok" | "retried" | "degraded" ->
                   acc.ok <- acc.ok + 1;
                   if r.Protocol.flight = Protocol.Wait then
                     acc.coalesced <- acc.coalesced + 1;
                   Hist.add (if r.Protocol.cold then acc.cold else acc.warm) ms
                 | "rejected" ->
                   acc.rejected <- acc.rejected + 1;
                   rejected := true
                 | o ->
                   acc.failed <- acc.failed + 1;
                   Gcd2_util.Logsink.emit_err
                     (Printf.sprintf
                        "serve-load: %s -> outcome=%s code=%s msg=%s" m o
                        (Option.value r.Protocol.code ~default:"-")
                        (Option.value r.Protocol.msg ~default:"-")))
               | Error e ->
                 acc.failed <- acc.failed + 1;
                 Gcd2_util.Logsink.emit_err
                   (Printf.sprintf "serve-load: %s -> transport error: %s" m e));
               if not !rejected then Thread.delay (think_ms /. 1000.);
               go (n - 1)
             end
           in
           go session_len
         with _ -> ());
        Client.close conn;
        if !rejected then Thread.delay 0.025);
      sessions ()
    end
  in
  sessions ()

type row = {
  workers : int;
  elapsed_s : float;
  ok : int;
  failed : int;
  client_rejected : int;
  rps : float;
  warm_p50 : float;
  warm_p95 : float;
  warm_p99 : float;
  cold_p50 : float;
  cold_p95 : float;
  cold_p99 : float;
  st : Daemon.stats;
}

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let run_one ~workers ~clients ~duration_ms ~think_ms ~session_len =
  let tag = Printf.sprintf "gcd2-serve-load-%d-%d" (Unix.getpid ()) workers in
  let cache_dir = Filename.concat (Filename.get_temp_dir_name ()) tag in
  if not (Sys.file_exists cache_dir) then Unix.mkdir cache_dir 0o755;
  let sock = Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".sock") in
  let cfg =
    {
      (Daemon.default_config (Daemon.Unix_sock sock)) with
      workers;
      queue_depth = (2 * clients) + 4;
      policy =
        { Serve.default_policy with cache_dir = Some cache_dir; jobs = Some 1 };
    }
  in
  let d = Daemon.start cfg in
  let addr = Daemon.address d in
  (* prime: one cold pass over the mix, so the timed phase is warm *)
  let prime = Client.batch addr (Array.to_list models) in
  let cold_prime = Hist.create () in
  List.iter
    (fun r ->
      match r with
      | Ok (r : Protocol.response) -> Hist.add cold_prime r.Protocol.ms
      | Error _ -> ())
    prime;
  let accs = Array.init clients (fun _ -> acc_create ()) in
  let t0 = Trace.now () in
  let deadline = t0 +. (duration_ms /. 1000.) in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (client_thread addr accs.(i) (0x5EED + (977 * i)) ~deadline ~think_ms
             ~session_len)
          ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Trace.now () -. t0 in
  let st = Daemon.stop d in
  rm_rf cache_dir;
  let warm = Hist.create () and cold = Hist.copy cold_prime in
  let ok = ref 0 and failed = ref 0 and rejected = ref 0 in
  Array.iter
    (fun a ->
      Hist.merge_into ~into:warm a.warm;
      Hist.merge_into ~into:cold a.cold;
      ok := !ok + a.ok;
      failed := !failed + a.failed;
      rejected := !rejected + a.rejected)
    accs;
  {
    workers;
    elapsed_s;
    ok = !ok;
    failed = !failed;
    client_rejected = !rejected;
    rps = (if elapsed_s > 0. then float_of_int !ok /. elapsed_s else 0.);
    warm_p50 = Hist.p50 warm;
    warm_p95 = Hist.p95 warm;
    warm_p99 = Hist.p99 warm;
    cold_p50 = Hist.p50 cold;
    cold_p95 = Hist.p95 cold;
    cold_p99 = Hist.p99 cold;
    st;
  }

let json_of rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"serve-load\",\n  \"rows\": [\n";
  let base = (List.hd rows).rps in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workers\": %d, \"rps\": %.1f, \"scaling\": %.2f, \"ok\": %d, \
            \"failed\": %d, \"rejected\": %d, \"coalesced\": %d, \"compiles\": \
            %d, \"hits\": %d, \"warm_p50_ms\": %.3f, \"warm_p95_ms\": %.3f, \
            \"warm_p99_ms\": %.3f, \"cold_p50_ms\": %.1f, \"cold_p95_ms\": \
            %.1f, \"cold_p99_ms\": %.1f}%s\n"
           r.workers r.rps
           (if base > 0. then r.rps /. base else 0.)
           r.ok r.failed r.st.Daemon.rejected r.st.Daemon.coalesced
           r.st.Daemon.compiles r.st.Daemon.hits r.warm_p50 r.warm_p95
           r.warm_p99 r.cold_p50 r.cold_p95 r.cold_p99
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run_on ~workers_list ~duration_ms =
  (* a roomy minor heap (8 MB/domain instead of the 256 KB default)
     keeps artifact-decode allocation from turning into a stop-the-world
     minor-GC storm across the worker domains — on a small machine the
     barriers, not the compiles, would otherwise cap throughput *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20 };
  let clients = env_int "GCD2_SERVE_LOAD_CLIENTS" 8 in
  let think_ms = env_float "GCD2_SERVE_LOAD_THINK_MS" 20.0 in
  let duration_ms = env_float "GCD2_SERVE_LOAD_MS" duration_ms in
  let workers_list = env_workers workers_list in
  let session_len = 10 in
  Report.header
    (Printf.sprintf
       "serve-load: zipf traffic, %d clients, %.0f ms think, %.0f ms timed \
        phase per worker count"
       clients think_ms duration_ms);
  Printf.printf "   %-8s %9s %8s %6s %6s %6s %9s %9s %9s\n" "workers" "req/s"
    "scaling" "ok" "fail" "rej" "warm_p50" "warm_p95" "warm_p99";
  let rows =
    List.map
      (fun workers ->
        let r = run_one ~workers ~clients ~duration_ms ~think_ms ~session_len in
        r)
      workers_list
  in
  let base = (List.hd rows).rps in
  List.iter
    (fun r ->
      Printf.printf "   %-8d %9.1f %7.2fx %6d %6d %6d %7.2fms %7.2fms %7.2fms\n"
        r.workers r.rps
        (if base > 0. then r.rps /. base else 0.)
        r.ok r.failed r.st.Daemon.rejected r.warm_p50 r.warm_p95 r.warm_p99)
    rows;
  (match (rows, List.rev rows) with
  | one :: _, top :: _ when top.workers > one.workers ->
    Report.note "%d workers serve %.2fx the requests/s of %d worker%s"
      top.workers
      (if one.rps > 0. then top.rps /. one.rps else 0.)
      one.workers
      (if one.workers = 1 then "" else "s")
  | _ -> ());
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (json_of rows);
  close_out oc;
  Printf.printf "\n   wrote %s (%d worker counts)\n" path (List.length rows)

let run () = run_on ~workers_list:[ 1; 2; 4 ] ~duration_ms:3000.0

(* CI variant: two worker counts, shorter clock — still long enough for
   the 4-vs-1 scaling ratio to be meaningful. *)
let smoke () = run_on ~workers_list:[ 1; 4 ] ~duration_ms:1200.0
