(* Cross-device benchmark ("devices"): modeled latency of the gcd2
   configuration for every zoo model on every built-in machine
   description.  The first device (hexagon698) is the speedup baseline.
   Writes BENCH_devices.json so per-device trajectories can be tracked
   across revisions like compile and vm.  "devices-smoke" runs the same
   measurement on a three-model subset for CI. *)

module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Desc = Gcd2_devices.Desc

type cell = { device : string; ms : float; cycles : float; utilization : float }
type row = { name : string; cells : cell list }

let measure devices (e : Zoo.entry) =
  let g = e.Zoo.build () in
  {
    name = e.Zoo.name;
    cells =
      List.map
        (fun (d : Desc.t) ->
          let c = Compiler.compile ~config:(Compiler.with_device d Compiler.default) g in
          {
            device = d.Desc.name;
            ms = Compiler.latency_ms c;
            cycles = c.Compiler.report.Graphcost.cycles;
            utilization = c.Compiler.report.Graphcost.utilization;
          })
        devices;
  }

let json_of devices rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"devices\",\n  \"devices\": [";
  List.iteri
    (fun i (d : Desc.t) ->
      Buffer.add_string b
        (Printf.sprintf "%S%s" d.Desc.name
           (if i = List.length devices - 1 then "" else ", ")))
    devices;
  Buffer.add_string b "],\n  \"models\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b (Printf.sprintf "    {\"name\": %S, \"results\": [" r.name);
      List.iteri
        (fun j c ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"device\": %S, \"ms\": %.6f, \"cycles\": %.0f, \"utilization\": %.4f}%s"
               c.device c.ms c.cycles c.utilization
               (if j = List.length r.cells - 1 then "" else ", ")))
        r.cells;
      Buffer.add_string b
        (Printf.sprintf "]}%s\n" (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run_on entries =
  let devices = Desc.builtins in
  Report.header "devices: modeled latency per machine description (gcd2 config)";
  Printf.printf "   %-18s" "model";
  List.iter (fun (d : Desc.t) -> Printf.printf " %14s" d.Desc.name) devices;
  Printf.printf " %9s\n" "speedup";
  let rows = List.map (measure devices) entries in
  let wins = Array.make (List.length devices) 0 in
  List.iter
    (fun r ->
      let base = (List.hd r.cells).ms in
      Printf.printf "   %-18s" r.name;
      List.iteri
        (fun i c ->
          if i > 0 && c.ms < base then wins.(i) <- wins.(i) + 1;
          Printf.printf " %11.2f ms" c.ms)
        r.cells;
      let last = List.nth r.cells (List.length r.cells - 1) in
      Printf.printf " %8.2fx\n" (base /. last.ms))
    rows;
  let baseline = (List.hd devices).Desc.name in
  List.iteri
    (fun i (d : Desc.t) ->
      if i > 0 then
        Printf.printf "\n   %s: modeled latency below %s on %d/%d models\n" d.Desc.name
          baseline wins.(i) (List.length rows))
    devices;
  let path = "BENCH_devices.json" in
  let oc = open_out path in
  output_string oc (json_of devices rows);
  close_out oc;
  Printf.printf "\n   wrote %s (%d models x %d devices)\n" path (List.length rows)
    (List.length devices)

let run () = run_on Zoo.all

(* CI variant: the three cheapest-to-compile models keep the smoke under
   a few seconds while still exercising every built-in descriptor. *)
let smoke () =
  run_on
    (List.filter
       (fun (e : Zoo.entry) ->
         List.mem e.Zoo.name [ "MobileNet-V3"; "EfficientNet-b0"; "TinyBERT" ])
       Zoo.all)
