(* Autotuner benchmark ("tune"): modeled latency of the gcd2
   configuration with the budgeted kernel-shape autotuner
   (Gcd2_codegen.Autotune) against the shape-adaptive heuristic, for
   every zoo model (Table-4-style).  Tuned is never worse than the
   heuristic by construction (the heuristic is always costed first), so
   any regression here is a bug and fails the experiment.  Writes
   BENCH_codegen.json so the tuned-vs-heuristic trajectory can be
   tracked across revisions.  "tune-smoke" runs a tiny budget on two
   models for CI; "zoo-goldens" prints the zoo golden literals of
   test/suite_desc.ml for sanctioned regenerations. *)

module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Opcost = Gcd2_cost.Opcost
module Autotune = Gcd2_codegen.Autotune
module Trace = Gcd2_util.Trace

type row = {
  name : string;
  heuristic_ms : float;
  tuned_ms : float;
  heuristic_cycles : float;
  tuned_cycles : float;
  candidates : int;
  pruned : int;
  costed : int;
  verified : int;
}

let with_tune tune (config : Compiler.config) =
  { config with Compiler.opcost = { config.Compiler.opcost with Opcost.tune } }

let measure ~budget (e : Zoo.entry) =
  let g = e.Zoo.build () in
  let heuristic = Compiler.compile g in
  let tuned =
    Compiler.compile
      ~config:
        (with_tune (Some { Autotune.budget; verify = false }) Compiler.default)
      g
  in
  let counter n = Trace.counter tuned.Compiler.trace n in
  {
    name = e.Zoo.name;
    heuristic_ms = Compiler.latency_ms heuristic;
    tuned_ms = Compiler.latency_ms tuned;
    heuristic_cycles = heuristic.Compiler.report.Graphcost.cycles;
    tuned_cycles = tuned.Compiler.report.Graphcost.cycles;
    candidates = counter "tune-candidates";
    pruned = counter "tune-pruned";
    costed = counter "tune-costed";
    verified = counter "tune-vm-verified";
  }

let improvement_pct r =
  if r.heuristic_cycles = 0.0 then 0.0
  else 100.0 *. (1.0 -. (r.tuned_cycles /. r.heuristic_cycles))

let json_of ~budget rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"experiment\": \"tune\",\n  \"budget\": %d,\n  \"models\": [\n"
       budget);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"heuristic_ms\": %.6f, \"tuned_ms\": %.6f, \
            \"heuristic_cycles\": %.0f, \"tuned_cycles\": %.0f, \
            \"improvement_pct\": %.4f, \"candidates\": %d, \"pruned\": %d, \
            \"costed\": %d}%s\n"
           r.name r.heuristic_ms r.tuned_ms r.heuristic_cycles r.tuned_cycles
           (improvement_pct r) r.candidates r.pruned r.costed
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run_on ?(write_json = true) ~budget entries =
  Report.header
    (Printf.sprintf "tune: budgeted kernel-shape autotuning vs adaptive heuristic \
                     (budget %d)" budget);
  Printf.printf "   %-18s %12s %12s %8s %10s %8s %8s\n" "model" "heuristic" "tuned"
    "delta" "candidates" "pruned" "costed";
  let rows = List.map (measure ~budget) entries in
  let improved = ref 0 and regressed = ref 0 in
  List.iter
    (fun r ->
      let pct = improvement_pct r in
      if pct > 1.0 then incr improved;
      if r.tuned_cycles > r.heuristic_cycles then incr regressed;
      Printf.printf "   %-18s %9.2f ms %9.2f ms %+7.2f%% %10d %8d %8d\n" r.name
        r.heuristic_ms r.tuned_ms (-.pct) r.candidates r.pruned r.costed)
    rows;
  Printf.printf "\n   >1%% modeled-cycle improvement on %d/%d models\n" !improved
    (List.length rows);
  if write_json then begin
    let path = "BENCH_codegen.json" in
    let oc = open_out path in
    output_string oc (json_of ~budget rows);
    close_out oc;
    Printf.printf "   wrote %s (%d models, budget %d)\n" path (List.length rows) budget
  end;
  (* tuned <= heuristic holds by construction (the heuristic setting is
     always costed first); a regression means the tuner returned a
     setting it never costed *)
  if !regressed > 0 then begin
    Printf.printf "   FAIL: tuned modeled cycles above the heuristic on %d models\n"
      !regressed;
    exit 1
  end

let run () = run_on ~budget:Autotune.default_budget Zoo.all

(* CI variant: a tiny budget on the two cheapest-to-compile models keeps
   the smoke in seconds while still walking the full tune path
   (enumerate, prune, cost, rank) and checking tuned <= heuristic. *)
let smoke () =
  run_on ~write_json:false ~budget:8
    (List.filter
       (fun (e : Zoo.entry) -> List.mem e.Zoo.name [ "MobileNet-V3"; "TinyBERT" ])
       Zoo.all)

(* Regenerate the zoo golden literals of test/suite_desc.ml (exact %h
   cycles/ms and the MD5 of the plan assignment under the default
   configuration).  Goldens move only when a change is sanctioned to
   move them — paste the output over the [goldens] list and record the
   delta in the commit. *)
let goldens () =
  Report.header "zoo goldens (default config): paste into test/suite_desc.ml";
  List.iter
    (fun (e : Zoo.entry) ->
      let c = Compiler.compile (e.Zoo.build ()) in
      let asg =
        String.concat ","
          (Array.to_list (Array.map string_of_int c.Compiler.assignment))
      in
      Printf.printf "    (%S, \"%h\", \"%h\",\n     %S);\n" e.Zoo.name
        c.Compiler.report.Graphcost.cycles c.Compiler.report.Graphcost.ms
        (Stdlib.Digest.to_hex (Stdlib.Digest.string asg)))
    Zoo.all
