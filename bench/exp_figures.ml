(* Reproduction of the paper's evaluation figures (7 through 13).
   Figures 1-6 are explanatory diagrams, reproduced as library
   documentation rather than experiments. *)

module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module K = Gcd2_frameworks.Kernel_compilers
module D = Gcd2_devices.Device.Context
module Compiler = Gcd2.Compiler
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph
module Solver = Gcd2_layout.Solver
module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Unroll = Gcd2_codegen.Unroll
module Packer = Gcd2_sched.Packer
module Stats = Gcd2_util.Stats
module Flops = Gcd2_graph.Flops

let compiled = Exp_tables.compiled
let latency = Exp_tables.latency

(* the 5 representative models used by figures 8, 9 and 11 *)
let representative = [ "EfficientNet-b0"; "ResNet-50"; "FST"; "WDSR-b"; "PixOr" ]

(* ------------------------------------------------------------------ *)

let resnet_convs =
  (* the first 8 unique Conv2d operators of ResNet-50 *)
  [
    K.conv_mkn ~n:1 ~h:224 ~w:224 ~c:3 ~kh:7 ~kw:7 ~stride:2 ~pad:3 ~cout:64;
    K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:64 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:64;
    K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:64 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:64;
    K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:64 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:256;
    K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:256 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:64;
    K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:256 ~kh:1 ~kw:1 ~stride:2 ~pad:0 ~cout:512;
    K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:256 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:128;
    K.conv_mkn ~n:1 ~h:28 ~w:28 ~c:128 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:128;
  ]

let fig7 () =
  Report.header
    "Figure 7 - Kernel speedup and packet count vs Halide/TVM/RAKE (ResNet-50 convs, normalized by Halide)";
  Report.row "%-4s | %7s %7s %7s %7s %7s | packets: %5s %5s %5s %5s %5s\n" "conv" "Halide"
    "TVM" "RAKE" "GCDb" "GCD2" "Hld" "TVM" "RAKE" "GCDb" "GCD2";
  let sums = Array.make 5 0.0 and psums = Array.make 5 0.0 in
  List.iteri
    (fun i (m, k, n) ->
      let rs = List.map (fun f -> K.conv f ~m ~k ~n) K.all in
      let base = (List.hd rs).K.cycles in
      let pbase = (List.hd rs).K.packets in
      let speed r = float_of_int base /. float_of_int r.K.cycles in
      let pk r = float_of_int r.K.packets /. float_of_int pbase in
      List.iteri
        (fun j r ->
          sums.(j) <- sums.(j) +. speed r;
          psums.(j) <- psums.(j) +. pk r)
        rs;
      Report.row "C%-3d | %7.2f %7.2f %7.2f %7.2f %7.2f |          %5.2f %5.2f %5.2f %5.2f %5.2f\n"
        i (speed (List.nth rs 0)) (speed (List.nth rs 1)) (speed (List.nth rs 2))
        (speed (List.nth rs 3)) (speed (List.nth rs 4)) (pk (List.nth rs 0))
        (pk (List.nth rs 1)) (pk (List.nth rs 2)) (pk (List.nth rs 3)) (pk (List.nth rs 4)))
    resnet_convs;
  let n = float_of_int (List.length resnet_convs) in
  Report.row "%-4s | %7.2f %7.2f %7.2f %7.2f %7.2f | mean packets %.2f %.2f %.2f %.2f %.2f\n"
    "avg" (sums.(0) /. n) (sums.(1) /. n) (sums.(2) /. n) (sums.(3) /. n) (sums.(4) /. n)
    (psums.(0) /. n) (psums.(1) /. n) (psums.(2) /. n) (psums.(3) /. n) (psums.(4) /. n);
  Report.note "paper: GCD2 up to 4.5x/3.4x/4.0x over Halide/TVM/RAKE; 25%%/19%%/21%% fewer packets"

(* ------------------------------------------------------------------ *)

let fig8 () =
  Report.header "Figure 8 - DSP utilization and memory bandwidth, relative to GCD2 (=100)";
  Report.row "%-16s | %7s %7s %7s | %7s %7s %7s\n" "model" "T util" "S util" "G util"
    "T bw" "S bw" "G bw";
  List.iter
    (fun name ->
      let e = Zoo.find name in
      let r cfg = (compiled cfg e).Compiler.report in
      let t = r F.tflite and s = r F.snpe and g = r F.gcd2 in
      (* utilization = useful-work throughput: the model's true MACs per
         unit time (padding and fallbacks produce no useful work) *)
      let true_macs = Gcd2_graph.Flops.total_macs (compiled F.gcd2 e).Compiler.graph in
      let util (x : Graphcost.report) = float_of_int true_macs /. x.Graphcost.cycles in
      let bw (x : Graphcost.report) = x.Graphcost.bandwidth_gbs in
      Report.row "%-16s | %6.0f%% %6.0f%% %6.0f%% | %6.0f%% %6.0f%% %6.0f%%\n" e.Zoo.name
        (100.0 *. util t /. util g)
        (100.0 *. util s /. util g)
        100.0
        (100.0 *. bw t /. bw g)
        (100.0 *. bw s /. bw g)
        100.0)
    representative;
  Report.note "paper: TFLite 88-93%% / SNPE 89-95%% of GCD2's utilization; 86-93%% / 90-94%% of its bandwidth";
  Report.note
    "our simulation separates overheads the on-device profiler cannot (padding waste, RPC gaps), so the relative gaps are wider than the paper's; the ordering (GCD2 highest on both axes) is the reproduced result"

(* ------------------------------------------------------------------ *)

let fig9 () =
  Report.header "Figure 9 - Incremental optimization breakdown (speedup over no-opt)";
  Report.row "%-16s | %7s %8s %7s %7s | util%% (no-opt -> full) | bw GB/s\n" "model" "no-opt"
    "+select" "+vliw" "+other";
  List.iter
    (fun name ->
      let e = Zoo.find name in
      let steps = [ F.no_opt; F.plus_selection; F.plus_vliw; F.plus_other ] in
      let cs = List.map (fun cfg -> compiled cfg e) steps in
      let ms = List.map Compiler.latency_ms cs in
      let base = List.hd ms in
      let util c = 100.0 *. c.Compiler.report.Graphcost.utilization in
      let bw c = c.Compiler.report.Graphcost.bandwidth_gbs in
      Report.row "%-16s | %6.2fx %7.2fx %6.2fx %6.2fx | %5.1f -> %5.1f | %5.1f -> %5.1f\n"
        e.Zoo.name 1.0
        (base /. List.nth ms 1)
        (base /. List.nth ms 2)
        (base /. List.nth ms 3)
        (util (List.hd cs))
        (util (List.nth cs 3))
        (bw (List.hd cs))
        (bw (List.nth cs 3)))
    representative;
  Report.note
    "paper: selection 1.4-2.9x, +VLIW another 1.2-2.0x, +other 1.1-1.4x; selection moves utilization most"

(* ------------------------------------------------------------------ *)

(* Prefixes of ResNet-50's (optimized) graph with the first n operators. *)
let resnet_prefix n =
  let full = (compiled F.gcd2 (Zoo.find "ResNet-50")).Compiler.graph in
  { Graph.nodes = Array.sub full.Graph.nodes 0 n }

let time f =
  let t0 = Gcd2_util.Trace.now () in
  let r = f () in
  (r, Gcd2_util.Trace.now () -. t0)

let fig10 () =
  Report.header
    "Figure 10 - Layout selection: speedup over local-optimal and search time vs #operators";
  Report.row "%4s | %8s %8s %8s %8s %8s | %10s %10s %10s\n" "#ops" "local" "GCD2(13)"
    "GCD2(17)" "pbqp" "global" "t13 (s)" "t17 (s)" "t exh (s)";
  List.iter
    (fun n ->
      let g = resnet_prefix n in
      let cost = Graphcost.build Gcd2_cost.Opcost.gcd2 g in
      let p = cost.Graphcost.problem in
      let eval plans = (Graphcost.report cost plans).Graphcost.cycles in
      let local = eval (Solver.local p).Solver.plans in
      let s13, t13 = time (fun () -> Solver.partitioned ~max_size:13 p) in
      let s17, t17 = time (fun () -> Solver.partitioned ~max_size:17 p) in
      let pbqp = Gcd2_layout.Pbqp.solve p in
      (* the exhaustive global optimum blows up exponentially; run it
         while feasible, otherwise report the exact frontier-DP optimum
         and extrapolate the enumeration time *)
      let exhaustive_result =
        match time (fun () -> Solver.exhaustive ~max_states:20_000_000 p) with
        | r, t -> Some (r, t)
        | exception Solver.Too_large -> None
      in
      let global_cycles, t_str =
        match exhaustive_result with
        | Some (r, t) -> (eval r.Solver.plans, Printf.sprintf "%10.2f" t)
        | None ->
          (* frontier DP gives the same optimum without enumeration *)
          let opt = Solver.optimal p in
          let space =
            Array.fold_left
              (fun a k -> a *. float_of_int k)
              1.0 p.Gcd2_layout.Problem.options
          in
          (eval opt.Solver.plans, Printf.sprintf "~%.0e" (space /. 2e7))
      in
      Report.row "%4d | %8.2f %8.2f %8.2f %8.2f %8.2f | %10.4f %10.4f %10s\n" n 1.0
        (local /. eval s13.Solver.plans)
        (local /. eval s17.Solver.plans)
        (local /. eval pbqp.Solver.plans)
        (local /. global_cycles) t13 t17 t_str)
    [ 10; 15; 20; 25 ];
  Report.note
    "search-time column for the exhaustive solver is measured when feasible, otherwise extrapolated (seconds ~ states/2e7); the paper reports >80 h at 25 operators"

(* ------------------------------------------------------------------ *)

let fig11 () =
  Report.header "Figure 11 - SDA packing vs soft_to_hard / soft_to_none (speedup over soft_to_hard)";
  Report.row "%-16s | %13s %13s %8s\n" "model" "soft_to_hard" "soft_to_none" "SDA";
  List.iter
    (fun name ->
      let e = Zoo.find name in
      (* hold the instruction/layout/unroll selection fixed at GCD2's
         choice and repack the same kernels under each treatment — the
         paper varies only the packing algorithm *)
      let c = compiled F.gcd2 e in
      let assignment = c.Compiler.assignment in
      let ms_under strategy =
        let options = { Gcd2_cost.Opcost.gcd2 with Gcd2_cost.Opcost.strategy } in
        let cost = Graphcost.build options c.Compiler.graph in
        (Graphcost.report cost assignment).Graphcost.ms
      in
      let hard = ms_under Packer.Soft_to_hard in
      let none = ms_under Packer.Soft_to_none in
      let sda = Compiler.latency_ms c in
      Report.row "%-16s | %12.2fx %12.2fx %7.2fx\n" e.Zoo.name 1.0 (hard /. none) (hard /. sda))
    representative;
  Report.section "same comparison with unrolling disabled (dependence-bound kernels)";
  Report.row "%-16s | %13s %13s %8s\n" "model" "soft_to_hard" "soft_to_none" "SDA";
  List.iter
    (fun name ->
      let e = Zoo.find name in
      let c = compiled F.gcd2 e in
      let ms_under strategy =
        let options =
          {
            Gcd2_cost.Opcost.gcd2 with
            Gcd2_cost.Opcost.strategy;
            unroll_mode = `None;
          }
        in
        let cost = Graphcost.build options c.Compiler.graph in
        (Graphcost.report cost c.Compiler.assignment).Graphcost.ms
      in
      let hard = ms_under Packer.Soft_to_hard in
      let none = ms_under Packer.Soft_to_none in
      let sda = ms_under Packer.sda in
      Report.row "%-16s | %12.2fx %12.2fx %7.2fx\n" e.Zoo.name 1.0 (hard /. none) (hard /. sda))
    representative;
  Report.note "paper: SDA up to 2.1x over soft_to_hard and 1.4x over soft_to_none";
  Report.note
    "with GCD2's shape-adaptive unrolling the kernels carry enough independent work that soft-blind packing loses little; the paper-sized gaps appear when kernels are dependence-bound (second panel)"

(* ------------------------------------------------------------------ *)

let unroll_kernels =
  (* eight matmul kernels O1..O8 of varying shape *)
  [
    (512, 256, 64); (1024, 128, 128); (4096, 64, 32); (256, 512, 256);
    (2048, 96, 48); (128, 128, 512); (8192, 32, 16); (640, 320, 96);
  ]

let matmul_cycles simd ~m ~k ~n (u : Unroll.setting) =
  Matmul.cycles
    {
      Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
      m;
      k;
      n;
      mult = 1 lsl 30;
      shift = 30;
      act_table = None;
      strategy = Packer.sda;
      un = u.Unroll.un;
      ug = u.Unroll.ug;
      abuf = u.Unroll.abuf;
      wbuf = u.Unroll.wbuf;
      addressing = Matmul.Bump;
    }

let fig12 () =
  Report.header "Figure 12a - Unroll factor sweep on one MatMul kernel (speedup over factor 1)";
  let m, k, n = (1024, 256, 64) in
  let simd = Simd.I_vmpy in
  let base = matmul_cycles simd ~m ~k ~n (Unroll.none simd ~k ~n) in
  Report.row "%8s | %8s %8s\n" "factor" "Out" "Mid";
  List.iter
    (fun f ->
      let out = matmul_cycles simd ~m ~k ~n (Unroll.fixed_out simd ~k ~n ~factor:f) in
      let mid = matmul_cycles simd ~m ~k ~n (Unroll.fixed_mid simd ~k ~n ~factor:f) in
      Report.row "%8d | %7.2fx %7.2fx\n" f
        (float_of_int base /. float_of_int out)
        (float_of_int base /. float_of_int mid))
    [ 1; 2; 4; 8 ];
  let adaptive = Unroll.adaptive simd ~m ~k ~n in
  Report.row "GCD2 adaptive picks un=%d ug=%d (shape class: %s)\n" adaptive.Unroll.un
    adaptive.Unroll.ug
    (Unroll.shape_class_name (Unroll.classify ~m ~n));
  Report.header "Figure 12b - Unroll strategies across 8 MatMul kernels (speedup over no unroll)";
  Report.row "%-4s | %8s %8s %8s %11s %8s | search ms (exh vs gcd2)\n" "krn" "none" "Out"
    "Mid" "Exhaustive" "GCD2";
  List.iteri
    (fun i (m, k, n) ->
      let simd = Simd.I_vmpy in
      let base = matmul_cycles simd ~m ~k ~n (Unroll.none simd ~k ~n) in
      let speed u = float_of_int base /. float_of_int (matmul_cycles simd ~m ~k ~n u) in
      let spec =
        {
          Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
          m;
          k;
          n;
          mult = 1 lsl 30;
          shift = 30;
          act_table = None;
          strategy = Packer.sda;
          un = 1;
          ug = 1;
          abuf = 2;
          wbuf = 2;
          addressing = Matmul.Bump;
        }
      in
      let exh, t_exh = time (fun () -> Unroll.exhaustive spec) in
      let adaptive, t_ad = time (fun () -> Unroll.adaptive simd ~m ~k ~n) in
      Report.row "O%-3d | %8.2f %8.2f %8.2f %11.2f %8.2f | %8.2f vs %.4f\n" (i + 1) 1.0
        (speed (Unroll.fixed_out simd ~k ~n ~factor:4))
        (speed (Unroll.fixed_mid simd ~k ~n ~factor:4))
        (speed exh) (speed adaptive) (t_exh *. 1e3) (t_ad *. 1e3))
    unroll_kernels;
  Report.note
    "paper: GCD2's shape-adaptive settings match exhaustive search (best 4-4) at a fraction of the search time"

(* ------------------------------------------------------------------ *)

let fig13 () =
  Report.header "Figure 13 - Power and energy efficiency (frames per Watt)";
  Report.row "%-16s | %9s %9s %9s %9s | %8s %8s %8s %8s\n" "model" "GPU W" "T-DSP W"
    "S-DSP W" "G-DSP W" "GPU fpw" "T fpw" "S fpw" "G fpw";
  List.iter
    (fun name ->
      let e = Zoo.find name in
      let g = e.Zoo.build () in
      let gmacs = float_of_int (Flops.total_macs g) /. 1e9 in
      let ops = Graph.size g in
      let gpu_ms = D.xpu_latency_ms D.gpu ~gmacs ~ops in
      let gpu_w = D.gpu_power_w ~gmacs in
      let fpw_of cfg =
        let c = compiled cfg e in
        let ms = Compiler.latency_ms c in
        let w = D.dsp_power_w ~utilization:c.Compiler.report.Graphcost.utilization in
        (w, D.dsp_fps ~latency_ms:ms /. w)
      in
      let tw, tf = fpw_of F.tflite in
      let sw, sf = fpw_of F.snpe in
      let gw, gf = fpw_of F.gcd2 in
      Report.row "%-16s | %9.2f %9.2f %9.2f %9.2f | %8.1f %8.1f %8.1f %8.1f\n" e.Zoo.name
        gpu_w tw sw gw
        (1000.0 /. gpu_ms /. gpu_w)
        tf sf gf)
    [ "EfficientNet-b0"; "ResNet-50"; "PixOr"; "CycleGAN" ];
  Report.note
    "paper: GCD2-DSP draws ~7%% more than TFLite/SNPE-DSP but is 1.7x/1.5x more energy-efficient, and 2.9x vs the GPU"
