(* Compile-time benchmark ("compile"): per-zoo-model cold compile wall
   time at jobs:1, split into total and the build-costs pass that
   dominates it, plus the same-process warm recompile that kernel-cost
   memoization makes a distinct population.  Writes BENCH_compile.json
   so the numbers can be tracked across revisions. *)

module Zoo = Gcd2_models.Zoo
module Compiler = Gcd2.Compiler
module Trace = Gcd2_util.Trace
module Memo = Gcd2_util.Memo

let timed f =
  let t0 = Trace.now () in
  let v = f () in
  (v, Trace.now () -. t0)

type row = {
  name : string;
  cold_s : float;
  build_costs_s : float;
  warm_s : float;
  memo_hits : int;
  memo_misses : int;
  latency_ms : float;
}

let measure (e : Zoo.entry) =
  (* cold = process-cold: memo tables cleared, no artifact cache *)
  Memo.clear_all ();
  let cold, cold_s = timed (fun () -> Compiler.compile (e.Zoo.build ())) in
  (* warm = same process, memo tables kept: what a repeat request costs
     inside one serve process even without the artifact cache *)
  let _, warm_s = timed (fun () -> Compiler.compile (e.Zoo.build ())) in
  {
    name = e.Zoo.name;
    cold_s;
    build_costs_s = Trace.span_seconds cold.Compiler.trace "build-costs";
    warm_s;
    memo_hits = Trace.counter cold.Compiler.trace "memo-hits";
    memo_misses = Trace.counter cold.Compiler.trace "memo-misses";
    latency_ms = Compiler.latency_ms cold;
  }

let json_of rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"compile\",\n  \"models\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"cold_s\": %.6f, \"build_costs_s\": %.6f, \
            \"warm_s\": %.6f, \"memo_hits\": %d, \"memo_misses\": %d, \
            \"latency_ms\": %.6f}%s\n"
           r.name r.cold_s r.build_costs_s r.warm_s r.memo_hits r.memo_misses
           r.latency_ms
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run () =
  Report.header "compile: per-model cold compile wall time (jobs:1)";
  Printf.printf "   (cold = memo tables cleared first; warm = same-process recompile)\n\n";
  Printf.printf "   %-18s %10s %14s %10s %7s %7s\n" "model" "cold (s)"
    "build-costs" "warm (s)" "hits" "misses";
  let rows = List.map measure Zoo.all in
  List.iter
    (fun r ->
      Printf.printf "   %-18s %10.3f %14.3f %10.4f %7d %7d\n" r.name r.cold_s
        r.build_costs_s r.warm_s r.memo_hits r.memo_misses)
    rows;
  let path = "BENCH_compile.json" in
  let oc = open_out path in
  output_string oc (json_of rows);
  close_out oc;
  Printf.printf "\n   wrote %s (%d models) for trajectory tracking\n" path
    (List.length rows)
