(* Small fixed-width table printer shared by all experiments. *)

let line width = print_endline (String.make width '-')

let header title =
  print_newline ();
  line 78;
  Printf.printf "%s\n" title;
  line 78

let row fmt = Printf.printf fmt

let section s = Printf.printf "\n-- %s --\n" s

let note fmt = Printf.ksprintf (fun s -> Printf.printf "   note: %s\n" s) fmt

let ratio a b = if b = 0.0 then 0.0 else a /. b

let pp_opt_ms = function Some v -> Printf.sprintf "%8.1f" v | None -> "       -"

(* Per-pass compile timing columns, driven by the traces that
   [Compiler.compile] records: one column per top-level pass. *)

module Trace = Gcd2_util.Trace

let phase_names traces =
  List.fold_left
    (fun acc tr ->
      List.fold_left
        (fun acc (n, _) -> if List.mem n acc then acc else acc @ [ n ])
        acc (Trace.top_spans tr))
    [] traces

let phase_width name = max 9 (String.length name)

let phase_header ~label_width names =
  Printf.printf "%-*s" label_width "model";
  List.iter (fun n -> Printf.printf " %*s" (phase_width n) n) names;
  Printf.printf " %9s\n" "total"

let phase_row ~label_width label trace names =
  Printf.printf "%-*s" label_width label;
  List.iter (fun n -> Printf.printf " %*.4f" (phase_width n) (Trace.span_seconds trace n)) names;
  Printf.printf " %9.4f\n" (Trace.total_seconds trace)
