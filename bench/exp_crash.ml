(* Kill-chaos harness ("crash" / "crash-smoke"): real daemon processes,
   real SIGKILL, one shared artifact store.

   What the serve stack promises under process death (PR 10) and this
   harness actually enforces:

   - a daemon SIGKILLed mid-compile/mid-write never corrupts the store:
     a restarted daemon serves the same request with bit-identical
     results (the response's model-latency field is compared exactly
     against a fault-free baseline);
   - no permanent wedge: the in-flight client of a killed daemon gets a
     fast transport error, never a hang, and a second daemon sharing
     the store takes over a SIGKILLed leader's key within the lease
     staleness bound;
   - the janitor converges the directory afterwards: zero .tmp debris,
     no stale leases, entry bytes within the size budget.

   The daemons are the actual CLI binary (`gcd2 daemon`) spawned with
   Unix.create_process — forking a multi-domain OCaml process is not
   safe, and the point is to kill what production runs.  Recovery time
   (restart to first successful serve of the killed compile) is
   recorded into BENCH_serve.json under a "crash" key.

   Environment overrides: GCD2_CRASH_ROUNDS (kill rounds),
   GCD2_CRASH_TIMEOUT_S (watchdog bound for the whole experiment). *)

module Daemon = Gcd2_daemon.Daemon
module Client = Gcd2_daemon.Client
module Protocol = Gcd2_daemon.Protocol
module Serve = Gcd2_serve.Serve
module Compiler = Gcd2.Compiler
module Cache = Gcd2_store.Cache
module Lease = Gcd2_store.Lease
module Janitor = Gcd2_store.Janitor
module Trace = Gcd2_util.Trace
module Rng = Gcd2_util.Rng

let models = [| "MobileNet-V3"; "WDSR-b" |]

let env_int name d =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v -> v
  | None -> d

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("crash: FAIL " ^ s); exit 1) fmt
let assert_ msg ok = if not ok then fail "%s" msg

(* ------------------------------------------------------------------ *)
(* Spawning the real CLI                                               *)

let cli_exe () =
  let candidates =
    (match Sys.getenv_opt "GCD2_CLI" with Some p -> [ p ] | None -> [])
    @ [
        Filename.concat (Filename.dirname Sys.executable_name) "../bin/gcd2_cli.exe";
        "./_build/default/bin/gcd2_cli.exe";
      ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> fail "gcd2 CLI binary not found (looked at: %s)" (String.concat ", " candidates)

type daemon_proc = { pid : int; addr : Daemon.address }

let devnull = lazy (Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0)

let spawn_daemon ?(extra = []) ~sock ~cache_dir () =
  let cli = cli_exe () in
  let args =
    [
      cli; "daemon"; "--socket"; sock; "--cache-dir"; cache_dir; "--workers"; "2";
      "--jobs"; "1"; "--deadline-ms"; "20000"; "--stats-every"; "0"; "--quiet";
    ]
    @ extra
  in
  let null = Lazy.force devnull in
  let pid = Unix.create_process cli (Array.of_list args) null null null in
  { pid; addr = Daemon.Unix_sock sock }

let sigkill d =
  (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] d.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

let sigterm d =
  (try Unix.kill d.pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] d.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

(* Poll the health command until the daemon answers (it sweeps the
   store before listening, so readiness includes the startup janitor
   pass). *)
let wait_ready ?(timeout_s = 15.0) d =
  let t0 = Trace.now () in
  let rec go () =
    if Trace.now () -. t0 > timeout_s then
      fail "daemon pid %d not ready after %.0fs" d.pid timeout_s
    else
      match Client.batch d.addr [ "health" ] with
      | [ Ok r ] when r.Protocol.outcome = "health" -> ()
      | _ | (exception _) ->
        Thread.delay 0.025;
        go ()
  in
  go ()

(* One request against a live daemon: outcome and the exact latency
   field (the bit-identity witness). *)
let request_one d model =
  match Client.batch d.addr [ model ] with
  | [ Ok r ] -> Ok r
  | [ Error e ] -> Error e
  | _ -> Error "connection died before a response"
  | exception e -> Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Store-side probes (bench links the store library, so the harness can
   compute the digest a daemon will use and inspect its entry/lease)   *)

let compile_config () =
  match Serve.config_of ~device:"hexagon698" ~framework:"gcd2" ~selection:"13" () with
  | Ok c -> c
  | Error d -> fail "config_of failed: %s" d.Gcd2.Diag.message

let digest_of model =
  Compiler.fingerprint (compile_config ()) (Gcd2_models.Zoo.build model)

let dir_files dir =
  match Sys.readdir dir with x -> Array.to_list x | exception Sys_error _ -> []

let tmp_files dir =
  List.filter
    (fun f ->
      Filename.check_suffix f ".tmp"
      || Filename.check_suffix f ".lease-tmp"
      || Filename.check_suffix f ".lease-hb"
      || Filename.check_suffix f ".lease-broken")
    (dir_files dir)

let entry_bytes dir =
  List.fold_left
    (fun acc f ->
      if Filename.check_suffix f ".gcd2art" then
        acc + (Unix.stat (Filename.concat dir f)).Unix.st_size
      else acc)
    0 (dir_files dir)

let remove_entry dir digest =
  let p = Cache.entry_path dir digest in
  (try Sys.remove p with Sys_error _ -> ());
  try Sys.remove (Cache.quarantine_path p) with Sys_error _ -> ()

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* BENCH_serve.json "crash" key                                        *)

let find_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = if i + n > h then None else if String.sub hay i n = needle then Some i else go (i + 1) in
  go 0

let update_bench_json crash_json =
  let path = "BENCH_serve.json" in
  let base =
    if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all
    else "{\n  \"experiment\": \"serve-load\",\n  \"rows\": []\n}\n"
  in
  (* idempotent: drop a "crash" key a previous run appended *)
  let base =
    match find_sub base ",\n  \"crash\":" with
    | Some i -> String.sub base 0 i ^ "\n}\n"
    | None -> base
  in
  match String.rindex_opt base '}' with
  | None -> ()
  | Some i ->
    let out = String.sub base 0 i ^ ",\n  \"crash\": " ^ crash_json ^ "\n}\n" in
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc out)

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)

let run_rounds ~rounds =
  let timeout_s = float_of_int (env_int "GCD2_CRASH_TIMEOUT_S" 300) in
  (* watchdog: a wedged request or daemon must fail the experiment, not
     hang CI *)
  let _watchdog =
    Thread.create
      (fun () ->
        Thread.delay timeout_s;
        prerr_endline "crash: FAIL watchdog: experiment exceeded its time bound";
        exit 2)
      ()
  in
  let tag = Printf.sprintf "gcd2-crash-%d" (Unix.getpid ()) in
  let work = Filename.concat (Filename.get_temp_dir_name ()) tag in
  rm_rf work;
  Unix.mkdir work 0o755;
  let cache_dir = Filename.concat work "cache" in
  Unix.mkdir cache_dir 0o755;
  let sock n = Filename.concat work (Printf.sprintf "d%s.sock" n) in
  Report.header
    (Printf.sprintf "crash: SIGKILL chaos over real daemon processes (%d rounds)" rounds);

  (* -------- phase A: fault-free baseline latencies -------- *)
  let d0 = spawn_daemon ~sock:(sock "0") ~cache_dir () in
  wait_ready d0;
  let baseline = Hashtbl.create 4 in
  Array.iter
    (fun m ->
      match request_one d0 m with
      | Ok r when r.Protocol.outcome = "ok" ->
        Hashtbl.replace baseline m r.Protocol.lat
      | Ok r -> fail "baseline %s: outcome=%s" m r.Protocol.outcome
      | Error e -> fail "baseline %s: %s" m e)
    models;
  sigterm d0;
  Printf.printf "   baseline: %d models compiled fault-free\n%!" (Array.length models);

  (* -------- phase B: SIGKILL mid-compile, restart, recover -------- *)
  let rng = Rng.create 20260808 in
  let recovery_ms = ref [] in
  let identical = ref true in
  for round = 1 to rounds do
    let model = models.(round mod Array.length models) in
    let digest = digest_of model in
    remove_entry cache_dir digest;
    let d = spawn_daemon ~sock:(sock (string_of_int round)) ~cache_dir () in
    wait_ready d;
    (* fire the cold request from a thread, then kill the daemon under
       it mid-compile *)
    let req_result = ref (Error "request thread never ran") in
    let req_done = ref false in
    let th =
      Thread.create
        (fun () ->
          req_result := request_one d model;
          req_done := true)
        ()
    in
    Unix.sleepf (0.01 +. (0.001 *. float_of_int (Rng.int rng 120)));
    sigkill d;
    (* no wedge: the killed daemon's client must resolve promptly *)
    let t_kill = Trace.now () in
    Thread.join th;
    let unwedge_s = Trace.now () -. t_kill in
    assert_
      (Printf.sprintf "round %d: client wedged %.1fs after SIGKILL" round unwedge_s)
      (unwedge_s < 10.0);
    (match !req_result with
    | Ok r when r.Protocol.outcome = "ok" ->
      (* the compile won the race against the kill: fine, the store must
         then hold a decodable entry (checked below by the restart) *)
      ()
    | Ok _ | Error _ -> ());
    (* a SIGKILLed leader must never leave a *live* lease behind *)
    (match Lease.state ~dir:cache_dir digest with
    | Lease.Held pid ->
      assert_
        (Printf.sprintf "round %d: live lease (pid %d) survives its dead owner" round pid)
        false
    | Lease.Free | Lease.Stale _ -> ());
    (* restart over whatever the kill left (possibly a torn .tmp, a
       stale lease, a half-primed store) and re-serve the same request *)
    let t_restart = Trace.now () in
    let d2 = spawn_daemon ~sock:(sock (string_of_int round ^ "r")) ~cache_dir () in
    wait_ready d2;
    (match request_one d2 model with
    | Ok r when r.Protocol.outcome = "ok" ->
      let ms = 1000.0 *. (Trace.now () -. t_restart) in
      recovery_ms := ms :: !recovery_ms;
      if r.Protocol.lat <> Hashtbl.find baseline model then begin
        identical := false;
        fail "round %d: recovered %s served different bits (lat %s vs baseline %s)" round
          model
          (match r.Protocol.lat with Some l -> string_of_float l | None -> "-")
          (match Hashtbl.find baseline model with
          | Some l -> string_of_float l
          | None -> "-")
      end
    | Ok r ->
      fail "round %d: recovery outcome=%s code=%s" round r.Protocol.outcome
        (Option.value r.Protocol.code ~default:"-")
    | Error e -> fail "round %d: recovery failed: %s" round e);
    (* leave this daemon SIGKILLed too: its debris feeds the final
       janitor-convergence check *)
    sigkill d2;
    Printf.printf "   round %d: killed mid-%s, recovered in %.0f ms, bits identical\n%!"
      round model (List.hd !recovery_ms)
  done;

  (* -------- phase C: lease takeover across two live daemons -------- *)
  let model = models.(0) in
  let digest = digest_of model in
  remove_entry cache_dir digest;
  let da = spawn_daemon ~sock:(sock "a") ~cache_dir () in
  let db = spawn_daemon ~sock:(sock "b") ~cache_dir () in
  wait_ready da;
  wait_ready db;
  let ra = ref (Error "never ran") and rb = ref (Error "never ran") in
  let ta = Thread.create (fun () -> ra := request_one da model) () in
  Unix.sleepf 0.04;
  let t_b0 = Trace.now () in
  let tb = Thread.create (fun () -> rb := request_one db model) () in
  Unix.sleepf 0.04;
  (* kill A while it (most likely) holds the digest's lease; B must
     detect the dead pid, break the lease, and still answer *)
  sigkill da;
  Thread.join ta;
  Thread.join tb;
  let takeover_ms = 1000.0 *. (Trace.now () -. t_b0) in
  (match !rb with
  | Ok r when r.Protocol.outcome = "ok" ->
    assert_ "takeover: different bits" (r.Protocol.lat = Hashtbl.find baseline model)
  | Ok r -> fail "takeover: outcome=%s" r.Protocol.outcome
  | Error e -> fail "takeover: %s" e);
  sigterm db;
  Printf.printf "   takeover: peer daemon answered %.0f ms after its leader was killed\n%!"
    takeover_ms;

  (* -------- phase D: janitor converges the wreckage -------- *)
  (* whatever the kills left, plus seeded debris the sweeps must clear *)
  let plant name contents =
    let p = Filename.concat cache_dir name in
    Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc contents)
  in
  plant "gcd2art-torn-write.tmp" "torn";
  plant (digest_of models.(1) ^ ".gcd2art.bad") "poisoned bytes";
  plant "deadbeef.lease" "pid=999999999 stamp=0.0\n";
  let budget = entry_bytes cache_dir - 1 in
  let jcfg =
    {
      Janitor.max_bytes = Some budget;
      tmp_max_age_s = 0.0;
      bad_max_age_s = 0.0;
      lease_ttl_s = 1.0;
    }
  in
  let report = Janitor.sweep ~dir:cache_dir jcfg in
  Printf.printf "   %s\n%!" (Janitor.report_line report);
  let tmp_after = List.length (tmp_files cache_dir) in
  let bytes_after = entry_bytes cache_dir in
  assert_ "janitor left .tmp debris" (tmp_after = 0);
  assert_
    (Printf.sprintf "janitor left %d bytes over the %d budget" bytes_after budget)
    (bytes_after <= budget);
  assert_ "janitor evicted nothing despite an over-budget store" (report.Janitor.evicted >= 1);
  assert_ "janitor left a stale lease"
    (List.for_all
       (fun f -> not (Filename.check_suffix f ".lease"))
       (dir_files cache_dir));
  assert_ "janitor swept no quarantine files" (report.Janitor.bad_removed >= 1);
  assert_ "janitor sweep reported errors" (report.Janitor.errors = 0);

  (* -------- report -------- *)
  let rec_ms = List.rev !recovery_ms in
  let sorted = List.sort compare rec_ms in
  let p50 = match sorted with [] -> 0.0 | l -> List.nth l (List.length l / 2) in
  let max_ms = List.fold_left Float.max 0.0 sorted in
  Report.note "%d SIGKILL rounds, recovery p50=%.0f ms max=%.0f ms, takeover=%.0f ms"
    rounds p50 max_ms takeover_ms;
  update_bench_json
    (Printf.sprintf
       "{\"rounds\": %d, \"recovery_ms_p50\": %.1f, \"recovery_ms_max\": %.1f, \
        \"takeover_ms\": %.1f, \"bit_identical\": %b, \"tmp_after\": %d, \
        \"bytes_after\": %d, \"budget\": %d}"
       rounds p50 max_ms takeover_ms !identical tmp_after bytes_after budget);
  Printf.printf "   updated BENCH_serve.json (crash key)\n";
  rm_rf cache_dir;
  rm_rf work

let run () = run_rounds ~rounds:(env_int "GCD2_CRASH_ROUNDS" 6)
let smoke () = run_rounds ~rounds:(env_int "GCD2_CRASH_ROUNDS" 3)
