(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section V).  Run with no arguments for the full set, or
   name experiments: table1..table5, fig7..fig13, micro, pack-scaling,
   compile, cache.

   Outputs print measured rows next to the paper's reported values;
   EXPERIMENTS.md records the comparison and known residuals. *)

let experiments =
  [
    ("table1", Exp_tables.table1);
    ("table2", Exp_tables.table2);
    ("table3", Exp_tables.table3);
    ("table4", Exp_tables.table4);
    ("table5", Exp_tables.table5);
    ("fig7", Exp_figures.fig7);
    ("fig8", Exp_figures.fig8);
    ("fig9", Exp_figures.fig9);
    ("fig10", Exp_figures.fig10);
    ("fig11", Exp_figures.fig11);
    ("fig12", Exp_figures.fig12);
    ("fig13", Exp_figures.fig13);
    ("ablations", Exp_ablations.run);
    ("micro", Exp_micro.benchmark);
    ("pack-scaling", Exp_micro.pack_scaling);
    ("compile", Exp_compile.run);
    ("cache", Exp_cache.run);
    ("vm", Exp_vm.run);
    ("vm-smoke", Exp_vm.smoke);
    ("devices", Exp_devices.run);
    ("devices-smoke", Exp_devices.smoke);
    ("serve-load", Exp_serve.run);
    ("serve-load-smoke", Exp_serve.smoke);
    ("attn", Exp_attn.run);
    ("attn-smoke", Exp_attn.smoke);
    ("tune", Exp_tune.run);
    ("tune-smoke", Exp_tune.smoke);
    ("crash", Exp_crash.run);
    ("crash-smoke", Exp_crash.smoke);
    ("zoo-goldens", Exp_tune.goldens);
  ]

let usage () =
  print_endline "usage: bench/main.exe [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) experiments;
  print_endline
    "  all (default: every table, figure and ablation; micro, pack-scaling, compile and cache must be asked for explicitly)"

let run name =
  match List.assoc_opt name experiments with
  | Some f ->
    let t0 = Gcd2_util.Trace.now () in
    f ();
    Printf.printf "   [%s finished in %.1f s]\n%!" name (Gcd2_util.Trace.now () -. t0)
  | None ->
    Printf.printf "unknown experiment %S\n" name;
    usage ();
    exit 1

let default_set =
  [ "table1"; "table2"; "table3"; "table4"; "table5"; "fig7"; "fig8"; "fig9"; "fig10";
    "fig11"; "fig12"; "fig13"; "ablations" ]

let () =
  match Array.to_list Sys.argv with
  | _ :: [] | _ :: [ "all" ] ->
    print_endline "GCD2 reproduction - regenerating every table and figure of the paper";
    List.iter run default_set
  | _ :: [ "--help" ] | _ :: [ "-h" ] -> usage ()
  | _ :: names -> List.iter run names
  | [] -> usage ()
