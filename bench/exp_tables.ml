(* Reproduction of the paper's Tables I, II, III, IV and V.  Each function
   prints the measured rows next to the paper's reported values; the
   harness never asserts equality with the paper — EXPERIMENTS.md records
   the comparison. *)

module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module K = Gcd2_frameworks.Kernel_compilers
module D = Gcd2_devices.Device.Context
module Compiler = Gcd2.Compiler
module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Packer = Gcd2_sched.Packer
module Stats = Gcd2_util.Stats
module Flops = Gcd2_graph.Flops

(* Memoized compiles: several experiments reuse the same configurations. *)
let compile_cache : (string, Compiler.compiled) Hashtbl.t = Hashtbl.create 64

let compiled config (e : Zoo.entry) =
  let key = config.Compiler.name ^ "/" ^ e.Zoo.name in
  match Hashtbl.find_opt compile_cache key with
  | Some c -> c
  | None ->
    let c = F.compile config (e.Zoo.build ()) in
    Hashtbl.add compile_cache key c;
    c

let latency config e = Compiler.latency_ms (compiled config e)

(* The paper marks models the production frameworks cannot execute on the
   DSP; in our simulation those models spend most of their time in CPU
   fallbacks. *)
let baseline_supports (e : Zoo.entry) =
  match e.Zoo.task with Zoo.Nlp | Zoo.Speech -> false | _ -> true

(* ------------------------------------------------------------------ *)

let table1 () =
  Report.header
    "Table I - Latency and power: mobile CPU vs GPU vs DSP (TFLite baseline)";
  Report.row "%-16s %6s | %8s %8s %8s | %6s %6s %6s | paper dsp\n" "model" "GMACs"
    "CPU ms" "GPU ms" "DSP ms" "pCPU" "pGPU" "pDSP";
  List.iter
    (fun name ->
      let e = Zoo.find name in
      let g = e.Zoo.build () in
      let gmacs = float_of_int (Flops.total_macs g) /. 1e9 in
      let ops = Gcd2_graph.Graph.size g in
      let cpu = D.xpu_latency_ms D.cpu ~gmacs ~ops in
      let gpu = D.xpu_latency_ms D.gpu ~gmacs ~ops in
      let c = compiled F.tflite e in
      let dsp = Compiler.latency_ms c in
      let p_dsp = D.dsp_power_w ~utilization:c.Compiler.report.Gcd2_cost.Graphcost.utilization in
      let p_cpu = D.cpu_power_w ~gmacs and p_gpu = D.gpu_power_w ~gmacs in
      Report.row "%-16s %6.1f | %8.1f %8.1f %8.1f | %5.1fx %5.1fx %5.1fx | %s\n" e.Zoo.name
        gmacs cpu gpu dsp (p_cpu /. p_dsp) (p_gpu /. p_dsp) 1.0
        (Report.pp_opt_ms e.Zoo.paper_tflite_ms))
    [ "EfficientNet-b0"; "ResNet-50"; "PixOr"; "CycleGAN" ];
  Report.note "power columns are relative to the DSP, as in the paper"

(* ------------------------------------------------------------------ *)

let table2 () =
  Report.header
    "Table II - Matmul latency & padded data size per SIMD instruction (normalized by vmpy)";
  Report.row "%4s %4s %4s | %6s %6s %6s | %6s %6s %6s | paper lat (vmpa vrmpy)\n" "M" "K"
    "N" "vmpy" "vmpa" "vrmpy" "dvmpy" "dvmpa" "dvrmp";
  let paper = [ (32, (0.79, 0.63)); (64, (0.69, 0.76)); (96, (1.06, 0.89)); (128, (1.10, 1.23)) ] in
  List.iter
    (fun d ->
      let cycles simd =
        let un = max 2 (Gcd2_tensor.Layout.column_group (Simd.layout simd)) in
        float_of_int
          (Matmul.cycles
             {
               Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
               m = d;
               k = d;
               n = d;
               mult = 1 lsl 30;
               shift = 30;
               act_table = None;
               strategy = Packer.sda;
               un;
               ug = 2;
               abuf = 2;
               wbuf = 2;
               addressing = Matmul.Bump;
             })
      in
      let data simd = float_of_int (Simd.padded_data_bytes simd ~m:d ~k:d ~n:d) in
      let base_c = cycles Simd.I_vmpy and base_d = data Simd.I_vmpy in
      let pa, pr = List.assoc d paper in
      Report.row "%4d %4d %4d | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f | (%.2f %.2f)\n" d d d
        1.0
        (cycles Simd.I_vmpa /. base_c)
        (cycles Simd.I_vrmpy /. base_c)
        1.0
        (data Simd.I_vmpa /. base_d)
        (data Simd.I_vrmpy /. base_d)
        pa pr)
    [ 32; 64; 96; 128 ]

(* ------------------------------------------------------------------ *)

let table3_shapes =
  [
    ("1x3x224x224 w64x3x7x7", K.conv_mkn ~n:1 ~h:224 ~w:224 ~c:3 ~kh:7 ~kw:7 ~stride:2 ~pad:3 ~cout:64);
    ("1x64x56x56 w64x64x1x1", K.conv_mkn ~n:1 ~h:56 ~w:56 ~c:64 ~kh:1 ~kw:1 ~stride:1 ~pad:0 ~cout:64);
    ("1x128x28x28 w128x128x3x3", K.conv_mkn ~n:1 ~h:28 ~w:28 ~c:128 ~kh:3 ~kw:3 ~stride:1 ~pad:1 ~cout:128);
  ]

let table3 () =
  Report.header "Table III - Instruction selection: RAKE vs GCD2 (ResNet-50 Conv2d kernels)";
  Report.row "%-26s | %6s %6s | %9s | paper speedup\n" "conv" "RAKE" "GCD2" "Ours/RAKE";
  let paper = [ 1.63; 1.98; 2.06 ] in
  List.iteri
    (fun i (label, (m, k, n)) ->
      let rake = K.conv K.Rake ~m ~k ~n in
      let g2 = K.conv K.Gcd2_kernel ~m ~k ~n in
      Report.row "%-26s | %6s %6s | %8.2fx | %.2fx\n" label (Simd.name rake.K.simd)
        (Simd.name g2.K.simd)
        (Report.ratio (float_of_int rake.K.cycles) (float_of_int g2.K.cycles))
        (List.nth paper i))
    table3_shapes

(* ------------------------------------------------------------------ *)

let table4 () =
  Report.header "Table IV - End-to-end latency: TFLite vs SNPE vs GCD2 (all 10 models)";
  Report.row "%-16s %6s %5s | %8s %8s %8s | %5s %5s | paper(T S G)\n" "model" "GMACs"
    "#ops" "TFLite" "SNPE" "GCD2" "OverT" "OverS";
  let speedups_t = ref [] and speedups_s = ref [] in
  List.iter
    (fun (e : Zoo.entry) ->
      let g = e.Zoo.build () in
      let gmacs = float_of_int (Flops.total_macs g) /. 1e9 in
      let ops = Gcd2_graph.Graph.size g in
      let gc = latency F.gcd2 e in
      let supported = baseline_supports e in
      let t = if supported then Some (latency F.tflite e) else None in
      let s =
        if supported && e.Zoo.paper_snpe_ms <> None then Some (latency F.snpe e) else None
      in
      let over = function Some x -> x /. gc | None -> nan in
      (match t with Some x -> speedups_t := (x /. gc) :: !speedups_t | None -> ());
      (match s with Some x -> speedups_s := (x /. gc) :: !speedups_s | None -> ());
      Report.row "%-16s %6.1f %5d | %s %s %8.1f | %5.1f %5.1f | (%s %s %.0f)\n" e.Zoo.name
        gmacs ops (Report.pp_opt_ms t) (Report.pp_opt_ms s) gc (over t) (over s)
        (Report.pp_opt_ms e.Zoo.paper_tflite_ms |> String.trim)
        (Report.pp_opt_ms e.Zoo.paper_snpe_ms |> String.trim)
        e.Zoo.paper_gcd2_ms)
    Zoo.all;
  Report.row "%-16s %12s speedup geomean: OverT %.2f (paper 2.8)  OverS %.2f (paper 2.1)\n"
    "" ""
    (Stats.geomean !speedups_t)
    (Stats.geomean !speedups_s);
  Report.section "compile-phase wall time (GCD2, seconds)";
  let traced = List.map (fun (e : Zoo.entry) -> (e.Zoo.name, (compiled F.gcd2 e).Compiler.trace)) Zoo.all in
  let phases = Report.phase_names (List.map snd traced) in
  Report.phase_header ~label_width:17 phases;
  List.iter (fun (name, tr) -> Report.phase_row ~label_width:17 name tr phases) traced;
  Report.note
    "TinyBERT/Conformer: TFLite and SNPE cannot run them on the DSP (CPU fallbacks); shown as '-' per the paper"

(* ------------------------------------------------------------------ *)

let table5 () =
  Report.header "Table V - Embedded accelerators vs GCD2 on ResNet-50";
  Report.row "%-22s %8s | %6s %8s %6s\n" "platform" "dtype" "FPS" "power W" "FPW";
  List.iter
    (fun a ->
      Report.row "%-22s %8s | %6.1f %8.1f %6.1f\n" a.D.name a.D.dtype a.D.fps a.D.power_w
        (D.fpw a))
    [ D.edgetpu; D.jetson_fp16; D.jetson_int8 ];
  let c = compiled F.gcd2 (Zoo.find "ResNet-50") in
  let ms = Compiler.latency_ms c in
  let util = c.Compiler.report.Gcd2_cost.Graphcost.utilization in
  Report.row "%-22s %8s | %6.1f %8.1f %6.1f\n" "GCD2 (this work, DSP)" "int8"
    (D.dsp_fps ~latency_ms:ms)
    (D.dsp_power_w ~utilization:util)
    (D.dsp_fpw ~latency_ms:ms ~utilization:util);
  Report.note "paper: EdgeTPU 17.8/2.0/8.9; Jetson fp16 291/30/9.7, int8 1100/30/36.7; GCD2 141/2.6/54.2"
