(** An execution plan for one operator (the paper's [ep_i(O)]): the SIMD
    instruction implementing it, the layout its tensors use, its unroll
    setting, and the roofline cost components. *)

module Layout = Gcd2_tensor.Layout
module Simd = Gcd2_codegen.Simd
module Unroll = Gcd2_codegen.Unroll

(** Marshaled into compile artifacts: any layout change requires updating
    {!Gcd2_store.Artifact}[.layout], or stale cache entries decode as
    garbage. *)
type t = {
  layout : Layout.t;  (** input/output data layout *)
  simd : Simd.t option;  (** multiply instruction, when applicable *)
  unroll : Unroll.setting option;
  compute_cycles : float;  (** vector-unit busy cycles (packed schedule) *)
  staging_cycles : float;  (** host gathers/scatters, dispatch, fallbacks *)
  mem_bytes : float;  (** activation + weight traffic, padding included *)
  macs : int;
}

(** Roofline node time: max(compute, memory) plus serial staging; the
    memory arm uses [desc]'s DDR bandwidth (default hexagon698). *)
val cycles : ?desc:Gcd2_devices.Desc.t -> t -> float

val pp : Format.formatter -> t -> unit
