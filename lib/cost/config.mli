(** Machine-level constants of the simulated platform, calibrated once so
    absolute latencies land in the paper's range (every comparison is
    relative; see DESIGN.md "Substitutions"). *)

(** Model cycles per wall-clock second.  The machine model follows the
    paper's timing rules literally (packets never overlap), undercounting
    the silicon's inter-packet pipelining; this constant maps model cycles
    to wall clock and is calibrated so GCD2's ResNet-50 lands at ~7 ms. *)
val model_cycles_per_sec : float

(** DDR bandwidth, bytes per model cycle (~30 GB/s). *)
val ddr_bytes_per_cycle : float

(** Local staging (im2col gathers, scatter-adds), bytes per cycle. *)
val gather_bytes_per_cycle : float

val ms_of_cycles : float -> float
val cycles_of_ms : float -> float

(** Cycles per microsecond (per-operator dispatch overheads). *)
val cycles_of_us : float -> float

(** Wall-clock-referred effective tera-ops (2 ops per MAC). *)
val tops : macs:int -> cycles:float -> float

(** {!tops} calibrated by a device descriptor's clock. *)
val tops_on : Gcd2_devices.Desc.t -> macs:int -> cycles:float -> float
