(** Cost streams: representative generated-and-packed instruction
    sequences for operators that the runtime stages host-side (depthwise
    convolution taps, pooling windows, reductions).  Only their cycle
    counts are consumed — the register/class mix is what matters, since
    the packer and the latency model turn it into time. *)

open Gcd2_isa
module Packer = Gcd2_sched.Packer
module Emit = Gcd2_codegen.Emit
module Eltwise = Gcd2_codegen.Eltwise
module Regs = Gcd2_codegen.Regs
module Desc = Gcd2_devices.Desc

(** Elementwise vector-unroll policy: pin [uv] (the historical value is
    2) or cost the candidate unrolls and take the cheapest.  Part of
    {!Gcd2_cost.Opcost.options} and of the request fingerprint. *)
type uv_choice = [ `Fixed of int | `Costed ]

let pp_uv_choice ppf = function
  | `Fixed u -> Fmt.pf ppf "fixed:%d" u
  | `Costed -> Fmt.string ppf "costed"

(* The unrolls [`Costed] sweeps ({!Eltwise.validate} accepts 1..4). *)
let uv_candidates = [ 1; 2; 3; 4 ]

(* Each costing below is memoized (Gcd2_util.Memo) on the complete set of
   parameters that reach the emitter — the memo key IS the argument
   tuple.  A new parameter to any [*_cycles] must be added to that
   table's key tuple, or distinct streams will alias one cached count.
   The device descriptor leads every key: two devices must never share a
   cached count (vector width and latencies both flow into it). *)
let unary_memo : (Desc.t * Packer.strategy * int * int, float) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "stream-unary"

let binary_memo :
    (Desc.t * Packer.strategy * Eltwise.binary * int * int, float) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "stream-binary"

let dwconv_memo : (Desc.t * Packer.strategy * int * int, float) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "stream-dwconv"

let pool_memo : (Desc.t * Packer.strategy * int * int, float) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "stream-pool"

(* Cost one unary pass at a pinned unroll. *)
let unary_cycles_at ~device ~strategy ~vectors uv =
  Gcd2_util.Memo.find_or_add unary_memo (device, strategy, uv, vectors) (fun () ->
      let s = { (Eltwise.default_spec ~strategy ~device ~vectors ()) with Eltwise.uv = uv } in
      let prog = Eltwise.unary ~table:0 s ~in_base:0 ~out_base:0 in
      float_of_int (Program.static_cycles ~desc:device prog))

let binary_cycles_at ~device ~strategy ~op ~vectors uv =
  Gcd2_util.Memo.find_or_add binary_memo (device, strategy, op, uv, vectors) (fun () ->
      let s = { (Eltwise.default_spec ~strategy ~device ~vectors ()) with Eltwise.uv = uv } in
      let prog =
        Eltwise.binary op s { Eltwise.a_base = 0; b_base = 4096; out_base = 8192 }
      in
      float_of_int (Program.static_cycles ~desc:device prog))

(* Deterministic argmin over the candidate unrolls: strict improvement
   only, so ties resolve to the smallest uv. *)
let argmin_uv cost =
  List.fold_left
    (fun (bu, bc) u ->
      let c = cost u in
      if c < bc then (u, c) else (bu, bc))
    (List.hd uv_candidates, cost (List.hd uv_candidates))
    (List.tl uv_candidates)

(** The vector unroll a {!uv_choice} resolves to for a unary pass over
    [vectors] — what the runtime executes with, so execution and costing
    agree (outputs are unroll-independent either way). *)
let unary_uv ?(uv = `Fixed 2) ~device ~strategy ~vectors () =
  match uv with
  | `Fixed u -> u
  | `Costed ->
    if vectors <= 0 then 2
    else fst (argmin_uv (unary_cycles_at ~device ~strategy ~vectors))

(** Likewise for a binary pass. *)
let binary_uv ?(uv = `Fixed 2) ~device ~strategy ~op ~vectors () =
  match uv with
  | `Fixed u -> u
  | `Costed ->
    if vectors <= 0 then 2
    else fst (argmin_uv (binary_cycles_at ~device ~strategy ~op ~vectors))

(** Cycles of a unary pass (load, table lookup, store) over [vectors]
    device-width vectors.  [uv] defaults to the historical pinned unroll
    of 2; [`Costed] sweeps {!uv_candidates} (memoized per unroll) and
    takes the cheapest. *)
let unary_cycles ~uv ~device ~strategy ~vectors =
  if vectors <= 0 then 0.0
  else
    match uv with
    | `Fixed u -> unary_cycles_at ~device ~strategy ~vectors u
    | `Costed -> snd (argmin_uv (unary_cycles_at ~device ~strategy ~vectors))

(** Cycles of a binary elementwise pass ([uv] as in {!unary_cycles}). *)
let binary_cycles ~uv ~device ~strategy ~op ~vectors =
  if vectors <= 0 then 0.0
  else
    match uv with
    | `Fixed u -> binary_cycles_at ~device ~strategy ~op ~vectors u
    | `Costed -> snd (argmin_uv (binary_cycles_at ~device ~strategy ~op ~vectors))

(** Depthwise convolution stream: per output vector, one shifted load and
    one cyclic multiply per tap, a 16->32 drain every other tap, and the
    requantize/store epilogue.  Weight words are loaded once per tap per
    panel, amortized across the pixel dimension. *)
let dwconv_cycles ~device ~strategy ~vectors ~taps =
  if vectors <= 0 then 0.0
  else
    Gcd2_util.Memo.find_or_add dwconv_memo (device, strategy, vectors, taps) @@ fun () ->
    let vb = device.Desc.vector_bytes in
    let pool = Regs.create ~desc:device () in
    let ra = Regs.scalar pool and ro = Regs.scalar pool and rw = Regs.scalar pool in
    let rwv = [| Regs.scalar pool; Regs.scalar pool |] in
    let va = [| Regs.vector pool; Regs.vector pool |] in
    let tmp = Regs.pair pool and acc_e = Regs.pair pool and acc_o = Regs.pair pool in
    let pk = Regs.pair pool in
    let outv = Regs.vector pool in
    let e = Emit.create () in
    Emit.vzero e tmp;
    Emit.vzero e acc_e;
    Emit.vzero e acc_o;
    for t = 0 to taps - 1 do
      Emit.sload e rwv.(t mod 2) rw (t * 4);
      Emit.vload e va.(t mod 2) ra (t * vb);
      Emit.vmpy e tmp va.(t mod 2) rwv.(t mod 2);
      if t mod 2 = 1 || t = taps - 1 then begin
        let t_lo, t_hi = Regs.halves tmp in
        Emit.vaddw e acc_e t_lo;
        Emit.vaddw e acc_o t_hi;
        Emit.vzero e tmp
      end
    done;
    let sc = (1 lsl 30, 30) in
    let e_lo, e_hi = Regs.halves acc_e and o_lo, o_hi = Regs.halves acc_o in
    Emit.vscale e e_lo e_lo sc;
    Emit.vscale e e_hi e_hi sc;
    Emit.vscale e o_lo o_lo sc;
    Emit.vscale e o_hi o_hi sc;
    let pk_lo, pk_hi = Regs.halves pk in
    Emit.vpack e pk_lo acc_e Instr.W32;
    Emit.vpack e pk_hi acc_o Instr.W32;
    Emit.vshuff e tmp pk Instr.W16;
    Emit.vpack e outv tmp Instr.W16;
    Emit.vstore e ro 0 outv;
    Emit.bump e ra vb;
    Emit.bump e ro vb;
    let body = Emit.block ~desc:device ~strategy e in
    let prog = Program.make "dwconv_stream" [ Emit.loop ~trip:vectors [ body ] ] in
    float_of_int (Program.static_cycles ~desc:device prog)

(** Pooling stream: per output vector, one load and one lane-wise
    max/average per window position. *)
let pool_cycles ~device ~strategy ~vectors ~window =
  if vectors <= 0 then 0.0
  else
    Gcd2_util.Memo.find_or_add pool_memo (device, strategy, vectors, window) @@ fun () ->
    let vb = device.Desc.vector_bytes in
    let pool = Regs.create ~desc:device () in
    let ra = Regs.scalar pool and ro = Regs.scalar pool in
    let acc = Regs.vector pool in
    let va = [| Regs.vector pool; Regs.vector pool |] in
    let e = Emit.create () in
    Emit.vload e acc ra 0;
    for t = 1 to window - 1 do
      Emit.vload e va.(t mod 2) ra (t * vb);
      Emit.emit e (Instr.Valu (Instr.Vmax, Instr.W8, acc, acc, va.(t mod 2)))
    done;
    Emit.vstore e ro 0 acc;
    Emit.bump e ra vb;
    Emit.bump e ro vb;
    let body = Emit.block ~desc:device ~strategy e in
    let prog = Program.make "pool_stream" [ Emit.loop ~trip:vectors [ body ] ] in
    float_of_int (Program.static_cycles ~desc:device prog)

(** Pure data-movement cost in cycles (layout repacking, transpose,
    concat, padding): one load, one permute and one store per vector,
    about two operations per packet once scheduled. *)
let copy_cycles ~vectors = 6.0 *. float_of_int vectors
