(** Builds the global selection problem (paper Equation 1) for a graph and
    turns a solved assignment into a latency / utilization / bandwidth
    report. *)

module Problem = Gcd2_layout.Problem
module Graph = Gcd2_graph.Graph

type t = {
  graph : Graph.t;
  options : Opcost.options;
  plans : Plan.t array array;  (** per node *)
  problem : Problem.t;
}

(** Transformation cost [TC] along an edge, sized by the producer's output
    tensor and priced at the device's DDR bandwidth. *)
val edge_tc :
  Gcd2_devices.Desc.t ->
  Graph.t -> Plan.t array array -> int -> int -> int -> int -> float

(** [build ?jobs options g] — enumerate every node's plan table and
    assemble the selection problem.  [jobs] (default 1) sets the worker
    count for the per-node enumeration ({!Gcd2_util.Pool}); it changes
    wall time only — the result is identical for every value. *)
val build : ?jobs:int -> Opcost.options -> Graph.t -> t

(** Assemble the selection problem from already-enumerated plan tables —
    the cheap tail of {!build}, for rebuilding a [t] from a cached
    artifact's stored plans without re-running plan enumeration. *)
val of_plans : Opcost.options -> Graph.t -> Plan.t array array -> t

type node_report = {
  node : Graph.node;
  plan : Plan.t;
  transform_in : float;  (** TC paid on incoming edges, cycles *)
  cycles : float;  (** roofline node time + incoming transforms *)
}

(** Marshaled into compile artifacts: any layout change requires updating
    {!Gcd2_store.Artifact}[.layout], or stale cache entries decode as
    garbage. *)
type report = {
  per_node : node_report array;
  cycles : float;
  compute_cycles : float;  (** vector-unit busy (kernels + transforms) *)
  staging_cycles : float;
  mem_bytes : float;
  macs : int;
  ms : float;
  utilization : float;  (** busy fraction of total time *)
  bandwidth_gbs : float;  (** achieved DDR traffic, GB/s *)
}

(** Evaluate a full plan assignment. *)
val report : t -> int array -> report
