(** Per-operator execution-plan enumeration (the paper's "local analysis
    of possible implementations and associated layouts", Section IV-A).
    Multiply-heavy operators get one plan per candidate SIMD instruction,
    costed by generating and packing their kernels; layout-flexible
    operators get one plan per candidate layout, costed from streams over
    the padded buffers. *)

module Layout = Gcd2_tensor.Layout
module Simd = Gcd2_codegen.Simd
module Packer = Gcd2_sched.Packer
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op

type unroll_mode = [ `None | `Out of int | `Mid of int | `Adaptive | `Exhaustive ]

type options = {
  device : Gcd2_devices.Desc.t;
      (** target machine description: vector width and padding, slot
          masks/latencies (through the generated kernels), DDR and gather
          bandwidth, dispatch clock *)
  strategy : Packer.strategy;  (** VLIW packing inside kernels *)
  unroll_mode : unroll_mode;
  tune : Gcd2_codegen.Autotune.config option;
      (** when set, multiply kernels search the codegen-shape space
          ({!Gcd2_codegen.Tile}) under this budget instead of taking the
          [unroll_mode] heuristic's single setting *)
  eltwise_uv : Streams.uv_choice;
      (** elementwise vector unroll: pinned (historically [`Fixed 2]) or
          costed per stream *)
  layouts : Layout.t list;  (** candidates for layout-flexible operators *)
  simds : Simd.t list;  (** candidates for multiply operators *)
  lut_division : bool;  (** division -> reciprocal table lookup *)
  attn_kernels : bool;
      (** transformer row operators (softmax, layer_norm) and batched
          matmul get DSP vector kernels, costed from their generated
          programs; off models kernel libraries that bounce them to the
          CPU *)
  dispatch_us : float;  (** per-operator invocation overhead *)
  channel_pad : int;
      (** channel granularity the kernel library pads to (32 models
          hexagon_nn's depth-32 format; 1 = GCD2's own layouts) *)
  supported : Op.t -> bool;
      (** operators the DSP backend implements; others fall back to the
          CPU with a round trip through shared memory *)
}

(** The full GCD2 configuration on the paper's hexagon698; retarget with
    [{ gcd2 with device }]. *)
val gcd2 : options

(** Matrix view of a shape: rows = leading dims product, cols = last. *)
val mat_dims : int array -> int * int

(** Enumerate the execution plans of one node. *)
val plans : options -> Graph.t -> Graph.node -> Plan.t array

(** The generator spec behind a chosen matmul-family plan — the same
    dimensions and knobs {!plans} costed it with, so
    [Gcd2_codegen.Matmul.generate] on it reproduces the packed kernel
    whose cycle count the plan carries.  [None] for plans that do not
    run on the SIMD multiply unit. *)
val plan_spec :
  options -> Graph.t -> Graph.node -> Plan.t -> Gcd2_codegen.Matmul.spec option
