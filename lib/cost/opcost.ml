(** Per-operator execution-plan enumeration (the paper's "local analysis
    of possible implementations and associated layouts", Section IV-A).

    Multiply-heavy operators get one plan per candidate SIMD instruction
    (vmpy/1-column, vmpa/2-column, vrmpy/4-column), each costed by
    generating and packing its actual kernel.  Layout-flexible operators
    (elementwise, activations, reductions, depthwise) get one plan per
    candidate layout, costed from representative streams over the padded
    buffer.  Sources and layout-transformation operators anchor the
    row-major interchange format. *)

module Layout = Gcd2_tensor.Layout
module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Weights = Gcd2_codegen.Weights
module Unroll = Gcd2_codegen.Unroll
module Autotune = Gcd2_codegen.Autotune
module Eltwise = Gcd2_codegen.Eltwise
module Packer = Gcd2_sched.Packer
module Stats = Gcd2_util.Stats
module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op
module Desc = Gcd2_devices.Desc
open Gcd2_graph

type unroll_mode = [ `None | `Out of int | `Mid of int | `Adaptive | `Exhaustive ]

type options = {
  device : Desc.t;
      (** target machine description: vector width and padding, slot
          masks/latencies (through the kernels it generates), DDR and
          gather bandwidth, dispatch clock *)
  strategy : Packer.strategy;  (** VLIW packing used inside kernels *)
  unroll_mode : unroll_mode;
  tune : Autotune.config option;
      (** when set, multiply kernels search the full codegen-shape space
          ({!Gcd2_codegen.Tile}) under this budget instead of taking the
          [unroll_mode] heuristic's single setting; never worse than
          [`Adaptive] in modeled cycles *)
  eltwise_uv : Streams.uv_choice;
      (** elementwise vector unroll: pinned (historically [`Fixed 2]) or
          costed per stream *)
  layouts : Layout.t list;  (** candidate layouts for layout-flexible ops *)
  simds : Simd.t list;  (** candidate instructions for multiply operators *)
  lut_division : bool;  (** replace division by a reciprocal table lookup *)
  attn_kernels : bool;
      (** transformer ops on the DSP: batched-matmul slices through the
          tiled Matmul generator, Softmax/LayerNorm through the Rowops
          vector kernels (costed from their generated programs), and
          broadcast elementwise staged on the VM.  Off for the baseline
          frameworks — exactly the coverage gap that keeps transformers
          on TFLite/SNPE's CPU path (Table IV). *)
  dispatch_us : float;
      (** per-operator invocation overhead (runtime dispatch, cache warmup,
          quantization-parameter marshalling).  Production delegates that
          RPC into the DSP per node pay much more than a fully compiled
          runtime. *)
  channel_pad : int;
      (** channel granularity the kernel library pads to (hexagon_nn's
          depth-32 activation format wastes work on narrow tensors; GCD2's
          layouts pad only to the SIMD group) *)
  supported : Op.t -> bool;
      (** operators the DSP backend implements; others fall back to the
          CPU with a round trip through shared memory (the mechanism that
          keeps transformers off TFLite/SNPE's DSP path, Table IV) *)
}

(** Full GCD2 configuration (on the paper's hexagon698; retarget with
    [{ gcd2 with device }]). *)
let gcd2 =
  {
    device = Desc.hexagon698;
    strategy = Packer.sda;
    unroll_mode = `Adaptive;
    tune = None;
    eltwise_uv = `Fixed 2;
    layouts = [ Layout.Row_major; Layout.Col1; Layout.Col2; Layout.Col4 ];
    simds = Simd.all;
    lut_division = true;
    attn_kernels = true;
    dispatch_us = 15.0;
    channel_pad = 1;
    supported = (fun _ -> true);
  }

(* ------------------------------------------------------------------ *)

let mat_dims dims =
  match Array.length dims with
  | 0 -> (1, 1)
  | 1 -> (1, dims.(0))
  | r -> (Array.fold_left ( * ) 1 (Array.sub dims 0 (r - 1)), dims.(r - 1))

let vectors_of (device : Desc.t) layout dims =
  let rows, cols = mat_dims dims in
  Stats.ceil_div
    (Layout.padded_bytes ~desc:device layout ~rows ~cols)
    device.Desc.vector_bytes

let padded_bytes_of device layout dims =
  let rows, cols = mat_dims dims in
  Layout.padded_bytes ~desc:device layout ~rows ~cols

let numel = Array.fold_left ( * ) 1

(* ------------------------------------------------------------------ *)
(* Multiply-like plans                                                 *)

let unroll_for options base_spec ~m ~k ~n =
  let simd = base_spec.Matmul.simd in
  match options.tune with
  | Some cfg -> Autotune.tune cfg base_spec
  | None -> (
    match options.unroll_mode with
    | `Adaptive -> Unroll.adaptive simd ~m ~k ~n
    | `None -> Unroll.none simd ~k ~n
    | `Out f -> Unroll.fixed_out simd ~k ~n ~factor:f
    | `Mid f -> Unroll.fixed_mid simd ~k ~n ~factor:f
    | `Exhaustive -> Unroll.exhaustive base_spec)

(** One plan per candidate SIMD instruction for a (possibly batched)
    matmul of [m] x [k] x [n], with optional fused activation, extra
    host staging cycles and extra memory traffic. *)
let matmul_plans options ~m ~k ~n ~act ~batch ~staging ~extra_bytes ~extra_macs =
  let device = options.device in
  List.map
    (fun simd ->
      let group = Layout.column_group (Simd.layout simd) in
      let base =
        {
          Matmul.device;
          simd;
          m;
          k;
          n;
          mult = 1 lsl 30;
          shift = 30;
          act_table = (if act then Some 1 else None);
          strategy = options.strategy;
          un = group;
          ug = 1;
          abuf = 2;
          wbuf = 2;
          addressing = Matmul.Bump;
        }
      in
      let u = unroll_for options base ~m ~k ~n in
      let spec =
        { base with Matmul.un = u.Unroll.un; ug = u.Unroll.ug; abuf = u.Unroll.abuf; wbuf = u.Unroll.wbuf }
      in
      let kernel = float_of_int (Matmul.cycles spec) in
      let bytes =
        float_of_int
          (batch
           *(Weights.activation_bytes ~desc:device simd ~m ~k
             + Weights.prepacked_bytes simd ~k ~n
             + Weights.output_bytes ~desc:device simd ~m ~n))
        +. extra_bytes
      in
      {
        Plan.layout = Simd.layout simd;
        simd = Some simd;
        unroll = Some u;
        compute_cycles = float_of_int batch *. kernel;
        staging_cycles = staging;
        mem_bytes = bytes;
        macs = (batch * m * k * n) + extra_macs;
      })
    options.simds
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Layout-flexible plans                                               *)

let flexible_plans options dims_in dims_out ~cycles_of ~bytes_mult ~macs =
  let device = options.device in
  List.map
    (fun layout ->
      let vin = vectors_of device layout dims_in
      and vout = vectors_of device layout dims_out in
      {
        Plan.layout;
        simd = None;
        unroll = None;
        compute_cycles = cycles_of ~vin ~vout;
        staging_cycles = 0.0;
        mem_bytes =
          bytes_mult
          *. float_of_int
               (padded_bytes_of device layout dims_in
               + padded_bytes_of device layout dims_out);
        macs;
      })
    options.layouts
  |> Array.of_list

let source_plan =
  [|
    {
      Plan.layout = Layout.Row_major;
      simd = None;
      unroll = None;
      compute_cycles = 0.0;
      staging_cycles = 0.0;
      mem_bytes = 0.0;
      macs = 0;
    };
  |]

(* ------------------------------------------------------------------ *)
(* CPU fallback for unsupported operators                              *)

(* Dequantize + evaluate on the CPU + requantize, with the tensor shipped
   both ways through shared memory: a fixed round-trip plus byte-rate
   terms. *)
let fallback_plan options dims_in dims_out =
  let bytes = float_of_int (numel dims_in + numel dims_out) in
  let transfer = bytes /. options.device.Desc.ddr_bytes_per_cycle in
  let cpu_bytes_per_cycle = 0.4 in
  let cpu = bytes /. cpu_bytes_per_cycle in
  let round_trip = Desc.cycles_of_us options.device 120.0 in
  [|
    {
      Plan.layout = Layout.Row_major;
      simd = None;
      unroll = None;
      compute_cycles = 0.0;
      staging_cycles = transfer +. cpu +. round_trip;
      mem_bytes = 2.0 *. bytes;
      macs = 0;
    };
  |]

(* ------------------------------------------------------------------ *)

(** Enumerate the execution plans of one node. *)
let plans options (g : Graph.t) (node : Graph.node) =
  let strategy = options.strategy and device = options.device in
  let pad_channels c = Stats.round_up c options.channel_pad in
  let with_dispatch plans =
    match node.Graph.op with
    | Op.Input _ | Op.Constant _ -> plans
    | _ ->
      let d = Desc.cycles_of_us device options.dispatch_us in
      Array.map (fun p -> { p with Plan.staging_cycles = p.Plan.staging_cycles +. d }) plans
  in
  let fallback_or plans =
    match node.Graph.op with
    | Op.Input _ | Op.Constant _ -> plans ()
    | op when options.supported op -> plans ()
    | _ ->
      let din =
        match node.Graph.inputs with
        | i :: _ -> (Graph.node g i).Graph.out_shape
        | [] -> [||]
      in
      fallback_plan options din node.Graph.out_shape
  in
  with_dispatch @@ fallback_or @@ fun () ->
  let in_dims () =
    match node.Graph.inputs with
    | i :: _ -> (Graph.node g i).Graph.out_shape
    | [] -> [||]
  in
  let out_dims = node.Graph.out_shape in
  match node.Graph.op with
  | Op.Input _ | Op.Constant _ -> source_plan
  | Op.Conv2d { kh; kw; stride; pad = _; cout; act } ->
    let din = in_dims () in
    let cin = pad_channels din.(3) in
    let m = out_dims.(0) * out_dims.(1) * out_dims.(2) in
    let k = kh * kw * cin in
    let n = pad_channels cout in
    let windowed = kh > 1 || kw > 1 || stride > 1 in
    let staging =
      if windowed then float_of_int (m * k) /. device.Desc.gather_bytes_per_cycle else 0.0
    in
    matmul_plans options ~m ~k ~n ~act:(act <> None) ~batch:1 ~staging ~extra_bytes:0.0
      ~extra_macs:0
  | Op.Depthwise_conv2d { kh; kw; act = _; _ } ->
    let taps = kh * kw in
    let macs = Flops.node_macs g node in
    let c = out_dims.(Array.length out_dims - 1) in
    let ratio = float_of_int (pad_channels c) /. float_of_int c in
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout ->
        Streams.dwconv_cycles ~device ~strategy
          ~vectors:(int_of_float (Float.ceil (float_of_int vout *. ratio)))
          ~taps)
      ~bytes_mult:ratio ~macs
  | Op.Transposed_conv2d { kh; kw; cout; act; _ } ->
    let din = in_dims () in
    let m = din.(0) * din.(1) * din.(2) in
    let cin = din.(3) in
    let k = cin and n = cout * kh * kw in
    (* scatter-add of the kh*kw shifted partial outputs happens host-side *)
    let staging =
      float_of_int (numel out_dims * kh * kw) /. device.Desc.gather_bytes_per_cycle
    in
    matmul_plans options ~m ~k ~n ~act:(act <> None) ~batch:1 ~staging ~extra_bytes:0.0
      ~extra_macs:0
  | Op.Matmul { cout; act } ->
    let din = in_dims () in
    let m, k = mat_dims din in
    matmul_plans options ~m ~k:(pad_channels k) ~n:(pad_channels cout) ~act:(act <> None)
      ~batch:1 ~staging:0.0 ~extra_bytes:0.0 ~extra_macs:0
  | Op.Batch_matmul _ ->
    let din = in_dims () in
    let r = Array.length din in
    let batch = numel (Array.sub din 0 (r - 2)) in
    let m = din.(r - 2) and k = din.(r - 1) in
    let n = out_dims.(r - 1) in
    (* the dynamic right operand must be prepacked at run time *)
    let staging = float_of_int (batch * k * n) /. device.Desc.gather_bytes_per_cycle in
    matmul_plans options ~m ~k ~n ~act:false ~batch ~staging ~extra_bytes:0.0 ~extra_macs:0
  | Op.Add | Op.Sub ->
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout ->
        Streams.binary_cycles ~uv:options.eltwise_uv ~device ~strategy ~op:Eltwise.Badd ~vectors:vout)
      ~bytes_mult:1.5 ~macs:0
  | Op.Mul ->
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout ->
        Streams.binary_cycles ~uv:options.eltwise_uv ~device ~strategy ~op:Eltwise.Bmul ~vectors:vout)
      ~bytes_mult:1.5 ~macs:(numel out_dims)
  | Op.Div ->
    if options.lut_division then
      (* reciprocal lookup + multiply, the paper's "other optimization" *)
      flexible_plans options (in_dims ()) out_dims
        ~cycles_of:(fun ~vin:_ ~vout ->
          Streams.unary_cycles ~uv:options.eltwise_uv ~device ~strategy ~vectors:vout
          +. Streams.binary_cycles ~uv:options.eltwise_uv ~device ~strategy ~op:Eltwise.Bmul ~vectors:vout)
        ~bytes_mult:1.5 ~macs:(numel out_dims)
    else
      (* element-by-element scalar division *)
      flexible_plans options (in_dims ()) out_dims
        ~cycles_of:(fun ~vin:_ ~vout:_ -> 12.0 *. float_of_int (numel out_dims))
        ~bytes_mult:1.5 ~macs:0
  | Op.Pow _ | Op.Relu | Op.Relu6 | Op.Hard_swish | Op.Sigmoid | Op.Tanh | Op.Gelu ->
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout -> Streams.unary_cycles ~uv:options.eltwise_uv ~device ~strategy ~vectors:vout)
      ~bytes_mult:1.0 ~macs:0
  | Op.Softmax when options.attn_kernels ->
    (* costed from the generated-and-packed Rowops programs (both
       passes x row groups), like the multiply kernels; bytes_mult
       covers the transposed staging + exponential + output scratch *)
    let rows, cols = mat_dims out_dims in
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout:_ ->
        Gcd2_codegen.Rowops.softmax_cycles ~device ~strategy ~rows ~cols)
      ~bytes_mult:3.0 ~macs:0
  | Op.Softmax ->
    let rows, _ = mat_dims out_dims in
    let per_row = if options.lut_division then 3.0 else 16.0 in
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout ->
        (4.0 *. Streams.unary_cycles ~uv:options.eltwise_uv ~device ~strategy ~vectors:vout)
        +. (per_row *. float_of_int rows))
      ~bytes_mult:2.0 ~macs:0
  | Op.Layer_norm when options.attn_kernels ->
    let rows, cols = mat_dims out_dims in
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout:_ ->
        Gcd2_codegen.Rowops.layer_norm_cycles ~device ~strategy ~rows ~cols)
      ~bytes_mult:3.0 ~macs:0
  | Op.Layer_norm ->
    let rows, _ = mat_dims out_dims in
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout ->
        (4.0 *. Streams.unary_cycles ~uv:options.eltwise_uv ~device ~strategy ~vectors:vout)
        +. (8.0 *. float_of_int rows))
      ~bytes_mult:2.0 ~macs:0
  | Op.Max_pool { kernel; _ } | Op.Avg_pool { kernel; _ } ->
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin:_ ~vout ->
        Streams.pool_cycles ~device ~strategy ~vectors:vout ~window:(kernel * kernel))
      ~bytes_mult:1.0 ~macs:0
  | Op.Global_avg_pool ->
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin ~vout:_ -> Streams.unary_cycles ~uv:options.eltwise_uv ~device ~strategy ~vectors:vin)
      ~bytes_mult:1.0 ~macs:0
  | Op.Reshape _ ->
    (* pure view in the interchange layout; physical repack in blocked
       layouts because the panel structure depends on the dimensions *)
    List.map
      (fun layout ->
        let c =
          if layout = Layout.Row_major then 0.0
          else
            Streams.copy_cycles
              ~vectors:(vectors_of device layout (in_dims ()) + vectors_of device layout out_dims)
        in
        {
          Plan.layout;
          simd = None;
          unroll = None;
          compute_cycles = c;
          staging_cycles = 0.0;
          mem_bytes = (if c = 0.0 then 0.0 else 2.0 *. float_of_int (numel out_dims));
          macs = 0;
        })
      options.layouts
    |> Array.of_list
  | Op.Transpose _ | Op.Concat _ | Op.Pad_spatial _ | Op.Upsample _ ->
    flexible_plans options (in_dims ()) out_dims
      ~cycles_of:(fun ~vin ~vout -> Streams.copy_cycles ~vectors:(vin + vout))
      ~bytes_mult:1.0 ~macs:0

(* ------------------------------------------------------------------ *)

(** The generator spec behind a chosen matmul-family plan — the same
    dimensions and knobs {!matmul_plans} costed the plan with, so
    [Matmul.generate] on it reproduces the packed kernel whose cycle
    count the plan carries.  [None] for plans that do not run on the
    SIMD multiply unit (flexible/host/fallback plans). *)
let plan_spec options (g : Graph.t) (node : Graph.node) (plan : Plan.t) =
  match (plan.Plan.simd, plan.Plan.unroll) with
  | Some simd, Some u ->
    let pad_channels c = Stats.round_up c options.channel_pad in
    let in_dims =
      match node.Graph.inputs with
      | i :: _ -> (Graph.node g i).Graph.out_shape
      | [] -> [||]
    in
    let out_dims = node.Graph.out_shape in
    let mkn =
      match node.Graph.op with
      | Op.Conv2d { kh; kw; cout; _ } ->
        let cin = pad_channels in_dims.(3) in
        Some
          (out_dims.(0) * out_dims.(1) * out_dims.(2), kh * kw * cin, pad_channels cout)
      | Op.Transposed_conv2d { kh; kw; cout; _ } ->
        Some (in_dims.(0) * in_dims.(1) * in_dims.(2), in_dims.(3), cout * kh * kw)
      | Op.Matmul { cout; _ } ->
        let m, k = mat_dims in_dims in
        Some (m, pad_channels k, pad_channels cout)
      | Op.Batch_matmul _ ->
        let r = Array.length in_dims in
        Some (in_dims.(r - 2), in_dims.(r - 1), out_dims.(Array.length out_dims - 1))
      | _ -> None
    in
    Option.map
      (fun (m, k, n) ->
        let act =
          match node.Graph.op with
          | Op.Conv2d { act; _ } | Op.Transposed_conv2d { act; _ } | Op.Matmul { act; _ }
            -> act <> None
          | _ -> false
        in
        {
          Matmul.device = options.device;
          simd;
          m;
          k;
          n;
          mult = 1 lsl 30;
          shift = 30;
          act_table = (if act then Some 1 else None);
          strategy = options.strategy;
          un = u.Unroll.un;
          ug = u.Unroll.ug;
          abuf = u.Unroll.abuf;
          wbuf = u.Unroll.wbuf;
          addressing = Matmul.Bump;
        })
      mkn
  | _ -> None
