(** An execution plan for one operator (the paper's [ep_i(O)]): which SIMD
    instruction implements it (for multiply-heavy operators), the layout
    its inputs must arrive in and its output is produced in, and the cost
    components the roofline combines. *)

module Layout = Gcd2_tensor.Layout
module Simd = Gcd2_codegen.Simd
module Unroll = Gcd2_codegen.Unroll

(* Marshaled into compile artifacts (with Layout.t, Simd.t and
   Unroll.setting inside): any change to this type's layout requires
   updating Gcd2_store.Artifact.layout, or stale cache entries decode as
   garbage. *)
type t = {
  layout : Layout.t;  (** input/output data layout *)
  simd : Simd.t option;  (** multiply instruction, when applicable *)
  unroll : Unroll.setting option;
  compute_cycles : float;  (** vector-unit busy cycles (packed schedule) *)
  staging_cycles : float;  (** host-side gathers/scatters (im2col etc.) *)
  mem_bytes : float;  (** activation + weight traffic, padding included *)
  macs : int;
}

(** Roofline node cost: the DSP overlaps compute with DDR traffic, so a
    node takes the max of its compute and memory time, plus any serial
    staging.  The memory arm uses the target device's sustained DDR
    bandwidth; the default is the hexagon698 calibration
    ({!Config.ddr_bytes_per_cycle}). *)
let cycles ?(desc = Gcd2_devices.Desc.hexagon698) t =
  Float.max t.compute_cycles
    (t.mem_bytes /. desc.Gcd2_devices.Desc.ddr_bytes_per_cycle)
  +. t.staging_cycles

let pp ppf t =
  Fmt.pf ppf "%a%a: %.0f cyc, %.0f B"
    Layout.pp t.layout
    Fmt.(option (fun ppf s -> Fmt.pf ppf "/%a" Simd.pp s))
    t.simd t.compute_cycles t.mem_bytes
