(** Cost streams: representative generated-and-packed instruction
    sequences for host-staged operators; only cycle counts are consumed,
    but the class mix is real so the packer and latency model price them
    faithfully.  Every costing takes the target device and folds it into
    its memo key, so two devices never share a cached count. *)

module Packer = Gcd2_sched.Packer
module Eltwise = Gcd2_codegen.Eltwise

(** Elementwise vector-unroll policy: pin [uv] (historically 2) or cost
    the candidate unrolls and take the cheapest.  Part of
    {!Gcd2_cost.Opcost.options} and of the request fingerprint. *)
type uv_choice = [ `Fixed of int | `Costed ]

val pp_uv_choice : Format.formatter -> uv_choice -> unit

(** The unrolls [`Costed] sweeps (within {!Eltwise.validate}'s 1..4). *)
val uv_candidates : int list

(** The unroll a {!uv_choice} resolves to (deterministic: ties take the
    smallest), so the runtime can execute with the costed unroll. *)
val unary_uv :
  ?uv:uv_choice ->
  device:Gcd2_devices.Desc.t -> strategy:Packer.strategy -> vectors:int -> unit -> int

val binary_uv :
  ?uv:uv_choice ->
  device:Gcd2_devices.Desc.t ->
  strategy:Packer.strategy ->
  op:Eltwise.binary ->
  vectors:int ->
  unit ->
  int

(** One unary pass (load, lookup, store) over [vectors] vectors.
    [`Fixed 2] is the historical pinned unroll. *)
val unary_cycles :
  uv:uv_choice ->
  device:Gcd2_devices.Desc.t -> strategy:Packer.strategy -> vectors:int -> float

val binary_cycles :
  uv:uv_choice ->
  device:Gcd2_devices.Desc.t ->
  strategy:Packer.strategy ->
  op:Eltwise.binary ->
  vectors:int ->
  float

(** Depthwise convolution: a shifted load + cyclic multiply per tap, with
    drains and the requantize/store epilogue. *)
val dwconv_cycles :
  device:Gcd2_devices.Desc.t ->
  strategy:Packer.strategy ->
  vectors:int ->
  taps:int ->
  float

(** Pooling: one load and lane-wise max/avg per window position. *)
val pool_cycles :
  device:Gcd2_devices.Desc.t ->
  strategy:Packer.strategy ->
  vectors:int ->
  window:int ->
  float

(** Pure data movement (repack/transpose/concat/pad). *)
val copy_cycles : vectors:int -> float
