(** Cost streams: representative generated-and-packed instruction
    sequences for host-staged operators; only cycle counts are consumed,
    but the class mix is real so the packer and latency model price them
    faithfully.  Every costing takes the target device and folds it into
    its memo key, so two devices never share a cached count. *)

module Packer = Gcd2_sched.Packer
module Eltwise = Gcd2_codegen.Eltwise

(** One unary pass (load, lookup, store) over [vectors] vectors. *)
val unary_cycles :
  device:Gcd2_devices.Desc.t -> strategy:Packer.strategy -> vectors:int -> float

val binary_cycles :
  device:Gcd2_devices.Desc.t ->
  strategy:Packer.strategy ->
  op:Eltwise.binary ->
  vectors:int ->
  float

(** Depthwise convolution: a shifted load + cyclic multiply per tap, with
    drains and the requantize/store epilogue. *)
val dwconv_cycles :
  device:Gcd2_devices.Desc.t ->
  strategy:Packer.strategy ->
  vectors:int ->
  taps:int ->
  float

(** Pooling: one load and lane-wise max/avg per window position. *)
val pool_cycles :
  device:Gcd2_devices.Desc.t ->
  strategy:Packer.strategy ->
  vectors:int ->
  window:int ->
  float

(** Pure data movement (repack/transpose/concat/pad). *)
val copy_cycles : vectors:int -> float
