(** Machine-level constants of the simulated DSP platform.

    The clock and memory bandwidth are calibrated once so that absolute
    latencies land in the paper's millisecond range for ResNet-50; every
    reported comparison is relative, so these constants scale all systems
    identically (see DESIGN.md, substitutions table). *)

(** Model cycles per wall-clock second.

    Our machine model follows the paper's timing rules literally — packets
    never overlap (footnote 5), so a packet takes its max member latency —
    which undercounts the deep inter-packet pipelining of the silicon.
    This single constant maps model cycles to wall clock; it is calibrated
    once so that GCD2's ResNet-50 lands at the paper's ~7 ms, and it
    scales every compared system identically (all results are relative).
    See DESIGN.md, "Substitutions". *)
let model_cycles_per_sec = 30.0e9

(** Sustained DDR bandwidth available to the DSP, bytes per model cycle
    (~30 GB/s; must stay consistent with
    {!Gcd2_tensor.Layout.ddr_bytes_per_cycle}). *)
let ddr_bytes_per_cycle = Gcd2_tensor.Layout.ddr_bytes_per_cycle

(** Local staging (im2col gathers, scatter-adds) out of TCM/L2, bytes per
    cycle. *)
let gather_bytes_per_cycle = 8.0

let ms_of_cycles cycles = cycles /. (model_cycles_per_sec /. 1e3)

(** Cycles corresponding to a microsecond of wall clock (used for
    per-operator dispatch overheads). *)
let cycles_of_us us = us *. model_cycles_per_sec /. 1e6

let cycles_of_ms ms = ms *. model_cycles_per_sec /. 1e3

(** Effective tera-ops (2 ops per MAC) for a node that executes [macs]
    MACs in [cycles] — wall-clock-referred, comparable to the paper's
    "1.51 TOPS for an individual layer". *)
let tops ~macs ~cycles =
  if cycles <= 0.0 then 0.0
  else 2.0 *. float_of_int macs /. (cycles /. model_cycles_per_sec) /. 1e12

(** Device-calibrated variant of {!tops} ([Gcd2_devices.Desc] carries the
    per-device clock; the module-level functions above remain the
    hexagon698 calibration the historical constants encoded). *)
let tops_on (d : Gcd2_devices.Desc.t) ~macs ~cycles =
  if cycles <= 0.0 then 0.0
  else
    2.0 *. float_of_int macs
    /. (cycles /. d.Gcd2_devices.Desc.model_cycles_per_sec)
    /. 1e12
