(** Builds the global selection problem (Equation 1) for a computational
    graph, and turns a solved assignment into a latency / utilization /
    bandwidth report. *)

module Layout = Gcd2_tensor.Layout
module Problem = Gcd2_layout.Problem
module Graph = Gcd2_graph.Graph
module Desc = Gcd2_devices.Desc
open Gcd2_graph

type t = {
  graph : Graph.t;
  options : Opcost.options;
  plans : Plan.t array array;  (** per node *)
  problem : Problem.t;
}

let mat_dims = Opcost.mat_dims

(** Transformation cost [TC] along an edge: converting the producer's
    output from the layout of its plan to the layout the consumer's plan
    expects, sized by the producer's output tensor and priced at the
    device's DDR bandwidth. *)
let edge_tc (device : Desc.t) (g : Graph.t) plans u pu v pv =
  let src = plans.(u).(pu).Plan.layout and dst = plans.(v).(pv).Plan.layout in
  if src = dst then 0.0
  else begin
    let rows, cols = mat_dims (Graph.node g u).Graph.out_shape in
    float_of_int (Layout.transform_cycles_on device ~src ~dst ~rows ~cols)
  end

(** Assemble the selection problem from already-enumerated plan tables —
    the cheap tail of {!build}, split out so a cached compile can rebuild
    the (closure-bearing, hence unserializable) problem from stored
    plans without re-running plan enumeration. *)
let of_plans options (g : Graph.t) plans =
  let n = Graph.size g in
  if Array.length plans <> n then invalid_arg "Graphcost.of_plans: plan table size mismatch";
  let device = options.Opcost.device in
  let preds = Array.init n (fun v -> (Graph.node g v).Graph.inputs) in
  let node_cost v p = Plan.cycles ~desc:device plans.(v).(p) in
  let edge_cost u pu v pv = edge_tc device g plans u pu v pv in
  let plan_costs v = Array.map (Plan.cycles ~desc:device) plans.(v) in
  let desirable_edge u v =
    let node = Graph.node g v in
    List.length node.Graph.inputs = 1
    && (Op.is_layout_transform node.Graph.op
       ||
       (* profitable transformation: the spread between this operator's
          best and worst plan exceeds the cost of converting its input *)
       let costs = plan_costs v in
       let ci = ref 0 and cx = ref 0 in
       Array.iteri
         (fun i c ->
           if c < costs.(!ci) then ci := i;
           if c > costs.(!cx) then cx := i)
         costs;
       let rows, cols = mat_dims (Graph.node g u).Graph.out_shape in
       let tc =
         Layout.transform_cycles_on device ~src:plans.(v).(!cx).Plan.layout
           ~dst:plans.(v).(!ci).Plan.layout ~rows ~cols
       in
       costs.(!cx) -. costs.(!ci) > float_of_int tc)
  in
  let problem =
    {
      Problem.n;
      preds;
      options = Array.map Array.length plans;
      node_cost;
      edge_cost;
      desirable_edge;
    }
  in
  Problem.validate problem;
  { graph = g; options; plans; problem }

(* Plan enumeration is per-node independent (kernel generation + packing
   + roofline arithmetic; the only shared state is the domain-safe memo
   tables), so the node loop maps over a Pool.  The pool writes result
   [v] into slot [v] whatever the worker count — [jobs] only changes
   wall time, never the plan tables. *)
let build ?(jobs = 1) options (g : Graph.t) =
  let n = Graph.size g in
  let nodes = Array.init n (Graph.node g) in
  of_plans options g
    (Gcd2_util.Pool.map_array ~jobs (fun node -> Opcost.plans options g node) nodes)

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

type node_report = {
  node : Graph.node;
  plan : Plan.t;
  transform_in : float;  (** TC paid on incoming edges, cycles *)
  cycles : float;  (** roofline node time + incoming transforms *)
}

(* [report] (with the node_reports inside) is marshaled into compile
   artifacts: any change to its layout requires updating
   Gcd2_store.Artifact.layout, or stale cache entries decode as garbage. *)
type report = {
  per_node : node_report array;
  cycles : float;
  compute_cycles : float;  (** vector-unit busy (kernels + transforms) *)
  staging_cycles : float;
  mem_bytes : float;
  macs : int;
  ms : float;
  utilization : float;  (** busy fraction of total time *)
  bandwidth_gbs : float;  (** achieved DDR traffic, GB/s *)
}

(** Evaluate a full plan assignment. *)
let report t assignment =
  let g = t.graph in
  let device = t.options.Opcost.device in
  let per_node =
    Array.mapi
      (fun v node ->
        let plan = t.plans.(v).(assignment.(v)) in
        let transform_in =
          List.fold_left
            (fun acc u ->
              acc +. edge_tc device g t.plans u assignment.(u) v assignment.(v))
            0.0 node.Graph.inputs
        in
        { node; plan; transform_in; cycles = Plan.cycles ~desc:device plan +. transform_in })
      g.Graph.nodes
  in
  let total = Array.fold_left (fun a (n : node_report) -> a +. n.cycles) 0.0 per_node in
  (* busy time of the vector unit: kernels plus layout conversions; the
     dispatch/staging overheads and memory-bound residue are the idle time
     the profiler's "DSP utilization" exposes *)
  let compute =
    Array.fold_left
      (fun a (n : node_report) -> a +. n.plan.Plan.compute_cycles +. n.transform_in)
      0.0 per_node
  in
  let staging = Array.fold_left (fun a (n : node_report) -> a +. n.plan.Plan.staging_cycles) 0.0 per_node in
  let bytes =
    Array.fold_left
      (fun a (n : node_report) ->
        (* layout conversions are pure memory traffic at the DDR rate *)
        a +. n.plan.Plan.mem_bytes +. (n.transform_in *. device.Desc.ddr_bytes_per_cycle))
      0.0 per_node
  in
  let macs = Array.fold_left (fun a (n : node_report) -> a + n.plan.Plan.macs) 0 per_node in
  let seconds = Desc.ms_of_cycles device total /. 1e3 in
  {
    per_node;
    cycles = total;
    compute_cycles = compute;
    staging_cycles = staging;
    mem_bytes = bytes;
    macs;
    ms = Desc.ms_of_cycles device total;
    utilization = (if total > 0.0 then compute /. total else 0.0);
    bandwidth_gbs = (if total > 0.0 then bytes /. 1e9 /. seconds else 0.0);
  }
