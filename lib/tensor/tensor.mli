(** Quantized int8 tensors, stored row-major in logical order. *)

(** Marshaled into compile artifacts as graph weights: any layout change
    requires updating {!Gcd2_store.Artifact}[.layout], or stale cache
    entries decode as garbage. *)
type t = {
  dims : int array;
  data : int array;  (** int8 values, logical row-major order *)
  quant : Quant.t;
}

val create : ?quant:Quant.t -> int array -> t

(** [of_array dims data] — raises when sizes disagree. *)
val of_array : ?quant:Quant.t -> int array -> int array -> t

(** Random symmetric int8 contents. *)
val random : ?quant:Quant.t -> Gcd2_util.Rng.t -> int array -> t

val numel : t -> int
val rank : t -> int

(** Matrix view: rows = product of leading dims, cols = last dim. *)
val matrix_dims : t -> int * int

val get : t -> int array -> int

(** [set] saturates the stored value to int8. *)
val set : t -> int array -> int -> unit

val get_flat : t -> int -> int
val set_flat : t -> int -> int -> unit

(** Dequantized view, for float comparisons in tests. *)
val to_float : t -> float array

val reshape : t -> int array -> t
val copy : t -> t
val equal_data : t -> t -> bool
val pp : Format.formatter -> t -> unit
