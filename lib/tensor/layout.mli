(** The paper's dense matrix layouts (Figure 2) feeding the SIMD multiply
    instructions: 1-column (vmpy), 2-column (vmpa), 4-column (vrmpy), plus
    the row-major interchange format.  Tensors of any rank are viewed as a
    matrix (rows = product of leading dims, cols = last dim). *)

type t = Row_major | Col1 | Col2 | Col4

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit

(** Rows per panel: one vector load's worth of rows for the device's
    vector width (128 / 64 / 32 on the default 128-byte
    {!Gcd2_devices.Desc.hexagon698}; 1 for row-major). *)
val panel_rows : ?desc:Gcd2_devices.Desc.t -> t -> int

(** Columns stored adjacently within a panel (1 / 2 / 4). *)
val column_group : t -> int

(** Dimensions after padding to panel/group granularity. *)
val padded_dims : ?desc:Gcd2_devices.Desc.t -> t -> rows:int -> cols:int -> int * int

(** Bytes of an int8 matrix in this layout, padding included. *)
val padded_bytes : ?desc:Gcd2_devices.Desc.t -> t -> rows:int -> cols:int -> int

(** Linear byte offset of element [(r, c)] (paper Figure 2). *)
val offset : ?desc:Gcd2_devices.Desc.t -> t -> rows:int -> cols:int -> r:int -> c:int -> int

(** Sustained DDR bandwidth of the default device, bytes per model cycle
    (see {!Gcd2_cost.Config.model_cycles_per_sec} for the calibration;
    per-device rates live in {!Gcd2_devices.Desc.t}[.ddr_bytes_per_cycle]). *)
val ddr_bytes_per_cycle : float

(** The paper's data-transformation cost [TC]: cycles to convert a matrix
    between layouts (zero when equal) — memory traffic over the device's
    DDR rate. *)
val transform_cycles_on : Gcd2_devices.Desc.t -> src:t -> dst:t -> rows:int -> cols:int -> int

(** {!transform_cycles_on} on the default {!Gcd2_devices.Desc.hexagon698}. *)
val transform_cycles : src:t -> dst:t -> rows:int -> cols:int -> int
