(** The paper's dense matrix layouts (its Figure 2), which feed the three
    SIMD multiply instructions:

    - {b 1-column} ([Col1], for [vmpy]): panels of 128 rows stored
      column-major, so one 128-byte vector load fetches 128 rows of a
      single column.  Rows pad to a multiple of 128.
    - {b 2-column} ([Col2], for [vmpa]): panels of 64 rows; two adjacent
      columns interleave within a panel, so a vector-pair load fetches
      64 rows of 4 columns.  Rows pad to 64, columns to 2.
    - {b 4-column} ([Col4], for [vrmpy]): panels of 32 rows; four adjacent
      columns interleave, so one vector load fetches 32 rows of 4 columns.
      Rows pad to 32, columns to 4.
    - [Row_major] is the framework-interchange layout (no padding).

    A tensor of any rank is viewed as a matrix: rows = product of the
    leading dimensions, columns = the last (channel/feature) dimension. *)

module Stats = Gcd2_util.Stats
module Desc = Gcd2_devices.Desc

type t = Row_major | Col1 | Col2 | Col4

let all = [ Row_major; Col1; Col2; Col4 ]

let name = function
  | Row_major -> "row-major"
  | Col1 -> "1-column"
  | Col2 -> "2-column"
  | Col4 -> "4-column"

let pp ppf l = Fmt.string ppf (name l)

(** Rows per panel: one vector load's worth of rows ([vector_bytes] over
    the column group, so 128/64/32 on the default 128-byte device). *)
let panel_rows ?(desc = Desc.hexagon698) l =
  let vb = desc.Desc.vector_bytes in
  match l with Row_major -> 1 | Col1 -> vb | Col2 -> vb / 2 | Col4 -> vb / 4

(** Columns stored adjacently within a panel. *)
let column_group = function Row_major -> 1 | Col1 -> 1 | Col2 -> 2 | Col4 -> 4

(** Dimensions after padding to the layout's panel/group granularity. *)
let padded_dims ?desc l ~rows ~cols =
  match l with
  | Row_major -> (rows, cols)
  | _ -> (Stats.round_up rows (panel_rows ?desc l), Stats.round_up cols (column_group l))

(** Bytes occupied by an int8 matrix in this layout (padding included). *)
let padded_bytes ?desc l ~rows ~cols =
  let r, c = padded_dims ?desc l ~rows ~cols in
  r * c

(** Linear byte offset of element [(r, c)] (paper Figure 2). *)
let offset ?desc l ~rows ~cols ~r ~c =
  let _, pc = padded_dims ?desc l ~rows ~cols in
  match l with
  | Row_major -> (r * cols) + c
  | _ ->
    let pr = panel_rows ?desc l and g = column_group l in
    let panel = r / pr and r_in = r mod pr in
    let group = c / g and c_in = c mod g in
    (panel * pr * pc) + (group * pr * g) + (r_in * g) + c_in

(** Sustained DDR bandwidth in bytes per model cycle.  Model cycles map to
    wall clock through {!Gcd2_cost.Config.model_cycles_per_sec}; at that
    rate a ~30 GB/s mobile memory system delivers about one byte per
    cycle, which is what makes layout conversions as expensive relative to
    compute as they are on the real platform. *)
let ddr_bytes_per_cycle = 1.0

(** Estimated cycles to convert a [rows] x [cols] int8 matrix from layout
    [src] to layout [dst] — the paper's data-transformation cost
    [TC(ep_i, ep_j)], zero when no conversion is needed.  Repacking streams
    the source and destination buffers through memory (the permute slot is
    never the bottleneck), so the cost is the traffic over the DDR rate. *)
let transform_cycles_on (desc : Desc.t) ~src ~dst ~rows ~cols =
  if src = dst then 0
  else begin
    let bytes = padded_bytes ~desc src ~rows ~cols + padded_bytes ~desc dst ~rows ~cols in
    int_of_float (Float.ceil (float_of_int bytes /. desc.Desc.ddr_bytes_per_cycle))
  end

let transform_cycles ~src ~dst ~rows ~cols =
  transform_cycles_on Desc.hexagon698 ~src ~dst ~rows ~cols
