(** Quantized int8 tensors.  Data is stored row-major in logical order;
    {!Pack} materializes layout-specific buffers for the DSP. *)

module Rng = Gcd2_util.Rng

(* Marshaled into compile artifacts as graph weights (and digested by
   Gcd2_store.Fingerprint): any change to this type's layout requires
   updating Gcd2_store.Artifact.layout, or stale cache entries decode as
   garbage. *)
type t = {
  dims : int array;
  data : int array;  (** int8 values, logical row-major order *)
  quant : Quant.t;
}

let numel_of dims = Array.fold_left ( * ) 1 dims

let create ?(quant = Quant.default) dims =
  if Array.exists (fun d -> d <= 0) dims then
    invalid_arg "Tensor.create: dimensions must be positive";
  { dims; data = Array.make (numel_of dims) 0; quant }

let of_array ?(quant = Quant.default) dims data =
  if Array.length data <> numel_of dims then
    invalid_arg "Tensor.of_array: data length does not match dims";
  { dims; data; quant }

let random ?(quant = Quant.default) rng dims =
  let t = create ~quant dims in
  Rng.fill_int8 rng t.data;
  t

let numel t = numel_of t.dims
let rank t = Array.length t.dims

(** Matrix view: rows = product of leading dims, cols = last dim. *)
let matrix_dims t =
  match Array.length t.dims with
  | 0 -> (1, 1)
  | 1 -> (1, t.dims.(0))
  | n -> (numel_of (Array.sub t.dims 0 (n - 1)), t.dims.(n - 1))

let linear_index t idx =
  if Array.length idx <> Array.length t.dims then
    invalid_arg "Tensor.linear_index: rank mismatch";
  let off = ref 0 in
  Array.iteri
    (fun i x ->
      if x < 0 || x >= t.dims.(i) then invalid_arg "Tensor.linear_index: out of bounds";
      off := (!off * t.dims.(i)) + x)
    idx;
  !off

let get t idx = t.data.(linear_index t idx)
let set t idx v = t.data.(linear_index t idx) <- Gcd2_util.Saturate.sat8 v

let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- Gcd2_util.Saturate.sat8 v

(** Real-valued view (dequantized), for comparing against float references
    in tests. *)
let to_float t = Array.map (fun q -> Quant.dequantize t.quant q) t.data

let reshape t dims =
  if numel_of dims <> numel t then invalid_arg "Tensor.reshape: element count mismatch";
  { t with dims }

let copy t = { t with data = Array.copy t.data }

let equal_data a b = a.data = b.data && a.dims = b.dims

let pp ppf t =
  Fmt.pf ppf "tensor%a %a" Fmt.(Dump.array int) t.dims Quant.pp t.quant
