(** The hardened batch-serving loop behind [gcd2 serve].

    A request is one line — [MODEL [FRAMEWORK [SELECTION]]], plus an
    optional positionless [device=NAME] field naming the target machine
    description — and a batch is served request by request with
    per-request isolation: no
    outcome of one request (a fault, a poisoned cache entry, an expired
    deadline) can crash the loop or corrupt another request's answer.
    Each request runs under a {e policy}:

    - a wall-clock deadline ([deadline_ms]), enforced by the pipeline's
      cancellation checks and reported as a [deadline-exceeded]
      diagnostic;
    - bounded retries with exponential backoff for {e retryable}
      diagnostics (transient cache I/O, a crashed worker domain);
    - graceful degradation: when the artifact cache stays unusable
      after the retries ([cache-io]), the request is recompiled
      {e uncached} (logged once per batch) rather than failed — and a
      corrupt cache entry is quarantined by {!Gcd2_store.Cache} and
      recompiled transparently;
    - verification: any request served through a degraded or retried
      path re-reads the stored artifact with fault injection disabled
      and checks it against the served compile, so a damaged cache can
      cost time but never serve wrong bits.

    Every request produces a {!served} outcome — [ok] / [retried] /
    [degraded] / [timeout] / [error] — with the typed {!Gcd2.Diag}
    diagnostic on failure; failed requests are excluded from the latency
    populations of the {!report}. *)

module Compiler = Gcd2.Compiler
module Diag = Gcd2.Diag

type request = {
  model : string;
  framework : string;
  selection : string;
  device : string;  (** machine-description name ({!Gcd2_devices.Desc}) *)
  tune : Gcd2_codegen.Autotune.config option;
      (** kernel-shape autotuning ({!Gcd2_codegen.Autotune}); [None]
          compiles with the shape-adaptive heuristic *)
  seq : int option;
      (** dynamic sequence length for sequence-parametric models; served
          from its {!seq_bucket} (the resolver builds the model at the
          bucket), [None] for the model's native shape *)
  line : int;  (** 1-based source line of the request file; 0 when synthetic *)
}

(** [request ?framework ?selection ?device ?tune ?seq ?line model] — a
    request with the default framework/selection/device
    (["gcd2"] / ["13"] / ["hexagon698"]) and tuning off. *)
val request :
  ?framework:string -> ?selection:string -> ?device:string ->
  ?tune:Gcd2_codegen.Autotune.config -> ?seq:int -> ?line:int -> string ->
  request

(** The shape bucket a dynamic sequence length is served from: the
    smallest power of two >= the length, floor 16 (the model builder
    additionally clamps to its native maximum).  The cold/warm and
    single-flight bookkeeping key on the bucket, never the raw length,
    so one compiled artifact serves every length in its bucket. *)
val seq_bucket : int -> int

type parse_error = { line : int; text : string; reason : string }

(** Parse one request line.  [Ok None] for blank lines and whole-line
    [#] comments; [Error _] for a line with more than three positional
    tokens (trailing garbage), an inline [#] token ([model #comment] is
    an error, not a request for framework ["#comment"]), a duplicated
    [device=]/[tune=]/[seq=] field, a [device=NAME] naming an unknown
    device, a malformed [tune=SPEC], or a [seq=N] that is not a positive
    integer — malformed requests are reported with their line number,
    never silently dropped.  A single [device=NAME], [tune=SPEC] or
    [seq=N] token may appear anywhere on the line; [device=]/[tune=]
    override [device] / [tune] ([tune=off] forces tuning off; other
    specs as in {!Gcd2_codegen.Autotune.of_string}). *)
val parse_line :
  framework:string -> selection:string -> device:string ->
  ?tune:Gcd2_codegen.Autotune.config -> line:int -> string ->
  (request option, parse_error) result

(** Parse a request file's lines (numbered from [first_line], default 1),
    returning the well-formed requests and every malformed line.
    [device] (default ["hexagon698"]) and [tune] (default off) apply to
    lines without a [device=] / [tune=] field. *)
val parse_lines :
  framework:string -> selection:string -> ?device:string ->
  ?tune:Gcd2_codegen.Autotune.config -> ?first_line:int ->
  string list -> request list * parse_error list

(** Resolve framework/selection/device names to a compiler
    configuration (the device via {!Gcd2.Compiler.with_device}; [tune]
    lands in {!Gcd2_cost.Opcost.options} and thus in the request
    fingerprint); unknown names are an [Invalid_request] diagnostic. *)
val config_of :
  ?device:string -> ?tune:Gcd2_codegen.Autotune.config ->
  framework:string -> selection:string -> unit ->
  (Compiler.config, Diag.t) result

type policy = {
  cache_dir : string option;  (** artifact cache; [None] serves uncached *)
  deadline_ms : float option;  (** per-request wall-clock budget *)
  retries : int;  (** max retries (beyond the first attempt) of retryable failures *)
  backoff_ms : float;  (** base backoff, doubled per retry, clipped to the deadline *)
  jobs : int option;  (** worker domains per compile (default: compiler default) *)
}

(** No cache, no deadline, 2 retries, 25 ms base backoff. *)
val default_policy : policy

type outcome =
  | Ok_  (** served, first attempt, no degradation *)
  | Retried  (** served after retrying a transient failure *)
  | Degraded  (** served via a degraded path (uncached fallback or quarantined entry) *)
  | Timed_out  (** the request's deadline expired *)
  | Failed  (** a typed, permanent failure *)

(** ["ok"] / ["retried"] / ["degraded"] / ["timeout"] / ["error"]. *)
val outcome_name : outcome -> string

type served = {
  request : request;
  outcome : outcome;
  diag : Diag.t option;  (** the final diagnostic of a failed/timed-out request *)
  compiled : Compiler.compiled option;  (** the served compile on success *)
  hit : bool;  (** answered from the artifact cache *)
  cold : bool;  (** first compile of this request in the process *)
  ms : float;  (** request wall time, including retries and backoff *)
  attempts : int;
  quarantined : int;  (** corrupt cache entries quarantined while serving it *)
  uncached : bool;  (** served by the uncached-fallback degradation *)
  verified : bool;  (** stored artifact re-checked after a degraded/retried path *)
}

(** The compile step of the serving loop, pluggable so a front end can
    wrap it (the daemon's single-flight deduplication) while the
    deadline/retry/degradation machinery applies unchanged.  The
    function must honour the policy fields it is handed ([cache_dir] is
    [None] on the uncached-fallback attempt) and return every failure as
    a typed [Error] — {!default_compile} is
    {!Gcd2.Compiler.compile_result}. *)
type compile_fn =
  config:Compiler.config ->
  cache_dir:string option ->
  jobs:int option ->
  deadline_ms:float option ->
  Gcd2_graph.Graph.t ->
  (Compiler.compiled, Diag.t) result

val default_compile : compile_fn

(** Serve one request under [policy].  [resolve] maps the model name
    (and the optional sequence length, already as requested — the
    default resolver {!Gcd2_models.Zoo.build} pads it to its bucket) to
    its graph; [compile] is the compile step (default
    {!default_compile}); [cold] marks the first compile of this request
    in the process (latency bookkeeping only).  Never raises: every
    failure is a {!served} with a diagnostic. *)
val serve_one :
  ?resolve:(?seq:int -> string -> Gcd2_graph.Graph.t) ->
  ?compile:compile_fn ->
  policy ->
  cold:bool ->
  request ->
  served

type report = {
  requests : int;
  ok : int;  (** served, including retried/degraded *)
  errors : int;
  timeouts : int;
  retried : int;
  degraded : int;
  hits : int;
  misses : int;  (** cache misses among served requests *)
  cold_ms : float list;  (** latencies of served cold requests only *)
  warm_ms : float list;  (** latencies of served warm requests only *)
}

(** Serve a batch in order, tracking cold/warm per distinct request and
    calling [on_result] after each.  The latency populations of the
    report contain {e only} successfully served requests — failures are
    excluded by construction, not by accident. *)
val run_batch :
  ?resolve:(?seq:int -> string -> Gcd2_graph.Graph.t) ->
  ?compile:compile_fn ->
  ?on_result:(served -> unit) ->
  policy ->
  request list ->
  served list * report

(** Re-arm the once-per-batch "cache unusable" degradation log line
    ({!run_batch} does this itself; a long-lived daemon calls it when it
    wants the next degradation reported again). *)
val reset_degradation_log : unit -> unit

(** One structured outcome line (no trailing newline): model, framework,
    selection, outcome, hit/miss, cold/warm, wall time, then the
    optional fields (model latency, device, attempts, quarantines,
    uncached fallback, [extra], and the diagnostic of a failed request).
    Shared by [gcd2 serve] and the daemon so both logs read the same;
    emit it through {!Gcd2_util.Logsink} under concurrency. *)
val outcome_line : ?extra:string -> served -> string
