(** The hardened batch-serving loop (see the interface for the policy
    model: deadline, bounded retry, graceful degradation, verification). *)

module Compiler = Gcd2.Compiler
module Diag = Gcd2.Diag
module Zoo = Gcd2_models.Zoo
module F = Gcd2_frameworks.Framework
module Cache = Gcd2_store.Cache
module Artifact = Gcd2_store.Artifact
module Graphcost = Gcd2_cost.Graphcost
module Trace = Gcd2_util.Trace
module Fault = Gcd2_util.Fault
module Desc = Gcd2_devices.Desc
module Autotune = Gcd2_codegen.Autotune

type request = {
  model : string;
  framework : string;
  selection : string;
  device : string;
  tune : Autotune.config option;
  seq : int option;
  line : int;
}

let request ?(framework = "gcd2") ?(selection = "13") ?(device = "hexagon698") ?tune
    ?seq ?(line = 0) model =
  { model; framework; selection; device; tune; seq; line }

(* The shape bucket a dynamic sequence length is served from (unclamped;
   the model builder additionally clamps to its native maximum).  Keying
   the cold/warm and single-flight bookkeeping on the bucket — never the
   raw length — is what lets one compiled artifact serve every length in
   its bucket. *)
let seq_bucket seq =
  let rec next p = if p >= seq then p else next (2 * p) in
  next 16

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

type parse_error = { line : int; text : string; reason : string }

let parse_line ~framework ~selection ~device ?tune ~line text =
  let trimmed = String.trim text in
  let error reason = Error { line; text = trimmed; reason } in
  if trimmed = "" || trimmed.[0] = '#' then Ok None
  else
    let tokens =
      String.split_on_char ' ' trimmed
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun t -> t <> "")
    in
    (* `model #comment` must be an error, not framework="#comment": an
       inline comment was almost certainly meant, and guessing silently
       mis-parses the request *)
    match List.find_opt (fun t -> t.[0] = '#') tokens with
    | Some tok ->
      error (Fmt.str "inline comment %S not allowed (comments must start the line)" tok)
    | None -> (
      (* the [device=NAME], [tune=SPEC] and [seq=N] fields are
         positionless — pull them out before the positional
         MODEL [FRAMEWORK [SELECTION]] match *)
      let device_tokens, tokens =
        List.partition (String.starts_with ~prefix:"device=") tokens
      in
      let tune_tokens, tokens =
        List.partition (String.starts_with ~prefix:"tune=") tokens
      in
      let seq_tokens, tokens =
        List.partition (String.starts_with ~prefix:"seq=") tokens
      in
      match (device_tokens, tune_tokens, seq_tokens) with
      | (_ :: _ :: _), _, _ ->
        error
          (Fmt.str "duplicate device= field: %S" (String.concat " " device_tokens))
      | _, (_ :: _ :: _), _ ->
        error (Fmt.str "duplicate tune= field: %S" (String.concat " " tune_tokens))
      | _, _, (_ :: _ :: _) ->
        error (Fmt.str "duplicate seq= field: %S" (String.concat " " seq_tokens))
      | (([] | [ _ ]) as dev), (([] | [ _ ]) as tn), (([] | [ _ ]) as sq) -> (
        let named =
          match dev with
          | [ tok ] -> Some (String.sub tok 7 (String.length tok - 7))
          | _ -> None
        in
        (* an unknown device (or malformed tune/seq spec) is a per-line
           error, not a served failure: the request never names a valid
           target, so reject it here with its line number *)
        match named with
        | Some name when Desc.find name = None ->
          error
            (Fmt.str "unknown device %S (known: %s)" name (String.concat ", " Desc.names))
        | _ -> (
          let device = Option.value named ~default:device in
          match
            match sq with
            | [ tok ] -> (
              let spec = String.sub tok 4 (String.length tok - 4) in
              match int_of_string_opt spec with
              | Some s when s > 0 -> Ok (Some s)
              | Some _ | None ->
                Error
                  (Fmt.str "invalid seq= field %S (expected a positive integer)" spec))
            | _ -> Ok None
          with
          | Error reason -> error reason
          | Ok seq -> (
            match
              match tn with
              | [ tok ] -> (
                let spec = String.sub tok 5 (String.length tok - 5) in
                (* `tune=off` lets a request line force tuning off even
                   when the batch default enables it *)
                match String.lowercase_ascii spec with
                | "off" | "none" -> Ok None
                | _ -> Result.map Option.some (Autotune.of_string spec))
              | _ -> Ok tune
            with
            | Error reason -> error reason
            | Ok tune -> (
              match tokens with
              | [] -> Ok None
              | [ model ] ->
                Ok (Some { model; framework; selection; device; tune; seq; line })
              | [ model; framework ] ->
                Ok (Some { model; framework; selection; device; tune; seq; line })
              | [ model; framework; selection ] ->
                Ok (Some { model; framework; selection; device; tune; seq; line })
              | _ :: _ :: _ :: garbage ->
                error
                  (Fmt.str "trailing garbage after SELECTION: %S"
                     (String.concat " " garbage)))))))

let parse_lines ~framework ~selection ?(device = "hexagon698") ?tune ?(first_line = 1)
    lines =
  let requests, errors =
    List.fold_left
      (fun ((requests, errors), line) text ->
        ( (match parse_line ~framework ~selection ~device ?tune ~line text with
          | Ok None -> (requests, errors)
          | Ok (Some r) -> (r :: requests, errors)
          | Error e -> (requests, e :: errors)),
          line + 1 ))
      ((([], []) : request list * parse_error list), first_line)
      lines
    |> fst
  in
  (List.rev requests, List.rev errors)

(* ------------------------------------------------------------------ *)
(* Request -> compiler configuration                                   *)

let config_of ?(device = "hexagon698") ?tune ~framework ~selection () =
  let invalid msg = Error (Diag.make Diag.Invalid_request msg) in
  match
    match String.lowercase_ascii framework with
    | "gcd2" -> Some F.gcd2
    | "gcd2_b" | "gcdb" -> Some F.gcd2_b
    | "tflite" -> Some F.tflite
    | "snpe" -> Some F.snpe
    | "no_opt" | "noopt" -> Some F.no_opt
    | _ -> None
  with
  | None -> invalid (Fmt.str "unknown framework %S" framework)
  | Some base -> (
    match Desc.find device with
    | None ->
      invalid (Fmt.str "unknown device %S (known: %s)" device (String.concat ", " Desc.names))
    | Some desc -> (
      let base = Compiler.with_device desc base in
      let base =
        { base with Compiler.opcost = { base.Compiler.opcost with Gcd2_cost.Opcost.tune } }
      in
      match String.lowercase_ascii selection with
      | "local" -> Ok { base with Compiler.selection = Compiler.Local }
      | "optimal" -> Ok { base with Compiler.selection = Compiler.Optimal_dp }
      | k -> (
        match int_of_string_opt k with
        | Some k when k > 0 -> Ok { base with Compiler.selection = Compiler.Partitioned k }
        | _ -> invalid (Fmt.str "bad selection %S" selection))))

(* ------------------------------------------------------------------ *)
(* Policy and outcomes                                                 *)

type policy = {
  cache_dir : string option;
  deadline_ms : float option;
  retries : int;
  backoff_ms : float;
  jobs : int option;
}

let default_policy =
  { cache_dir = None; deadline_ms = None; retries = 2; backoff_ms = 25.0; jobs = None }

type outcome = Ok_ | Retried | Degraded | Timed_out | Failed

let outcome_name = function
  | Ok_ -> "ok"
  | Retried -> "retried"
  | Degraded -> "degraded"
  | Timed_out -> "timeout"
  | Failed -> "error"

type served = {
  request : request;
  outcome : outcome;
  diag : Diag.t option;
  compiled : Compiler.compiled option;
  hit : bool;
  cold : bool;
  ms : float;
  attempts : int;
  quarantined : int;
  uncached : bool;
  verified : bool;
}

(* ------------------------------------------------------------------ *)
(* Serving one request                                                 *)

let default_resolve ?seq model = Zoo.build ?seq model

(* The uncached-fallback degradation is logged once per batch (reset by
   [run_batch]), not once per poisoned request: a dead cache directory
   would otherwise log on every request of the batch.  The flag is
   atomic and the line goes through the mutex-guarded {!Logsink}: under
   the multi-domain daemon several workers hit a dead cache at once, and
   their log lines must neither tear nor multiply. *)
let degradation_logged = Atomic.make false

let reset_degradation_log () = Atomic.set degradation_logged false

let log_degradation d =
  if not (Atomic.exchange degradation_logged true) then
    Gcd2_util.Logsink.emit_err
      (Fmt.str "serve: cache unusable (%a); continuing uncached" Diag.pp d)

(* After a degraded or retried path, re-read the stored artifact with
   fault injection disabled and check it against the compile actually
   served: a damaged cache may cost retries and recompiles, never wrong
   bits. *)
let verify_against_store ~dir config graph (c : Compiler.compiled) =
  Fault.with_disabled @@ fun () ->
  let digest = Compiler.fingerprint config graph in
  match Artifact.load ~expect_digest:digest ~path:(Cache.entry_path dir digest) () with
  | Ok (art, _) ->
    art.Artifact.assignment = c.Compiler.assignment
    && art.Artifact.report.Graphcost.ms = c.Compiler.report.Graphcost.ms
    && art.Artifact.report.Graphcost.cycles = c.Compiler.report.Graphcost.cycles
  | Error _ -> false

(* The compile step is pluggable so a front end can wrap it without
   re-implementing the policy machinery: the daemon passes a
   single-flight wrapper here, and the deadline/retry/degradation loop
   below applies to it unchanged. *)
type compile_fn =
  config:Compiler.config ->
  cache_dir:string option ->
  jobs:int option ->
  deadline_ms:float option ->
  Gcd2_graph.Graph.t ->
  (Compiler.compiled, Diag.t) result

let default_compile ~config ~cache_dir ~jobs ~deadline_ms g =
  Compiler.compile_result ~config ?cache_dir ?jobs ?deadline_ms g

let serve_one ?(resolve = default_resolve) ?(compile = default_compile) policy ~cold
    (request : request) =
  let t0 = Trace.now () in
  let elapsed_ms () = 1000.0 *. (Trace.now () -. t0) in
  let fail ?(attempts = 1) d =
    let d = Diag.with_model request.model d in
    {
      request;
      outcome = (if d.Diag.code = Diag.Deadline_exceeded then Timed_out else Failed);
      diag = Some d;
      compiled = None;
      hit = false;
      cold;
      ms = elapsed_ms ();
      attempts;
      quarantined = 0;
      uncached = false;
      verified = false;
    }
  in
  match
    match
      config_of ~device:request.device ?tune:request.tune ~framework:request.framework
        ~selection:request.selection ()
    with
    | Error d -> Error d
    | Ok config -> (
      match resolve ?seq:request.seq request.model with
      | g -> Ok (config, g)
      | exception Invalid_argument msg -> Error (Diag.make Diag.Invalid_request msg)
      | exception exn -> Error (Diag.of_exn exn))
  with
  | Error d -> fail d
  | Ok (config, graph) ->
    let deadline = Option.map (fun ms -> t0 +. (ms /. 1000.0)) policy.deadline_ms in
    let remaining_ms () =
      Option.map (fun d -> 1000.0 *. (d -. Trace.now ())) deadline
    in
    let backoff k =
      let ms = policy.backoff_ms *. (2.0 ** float_of_int k) in
      let ms =
        match remaining_ms () with
        | Some r -> Float.min ms (Float.max 0.0 r)
        | None -> ms
      in
      if ms > 0.0 then Unix.sleepf (ms /. 1000.0)
    in
    let attempts = ref 0 in
    let rec attempt ~cache_dir k =
      incr attempts;
      match remaining_ms () with
      | Some r when r <= 0.0 ->
        Error (Diag.make Diag.Deadline_exceeded "deadline expired before the attempt")
      | rem -> (
        match compile ~config ~cache_dir ~jobs:policy.jobs ~deadline_ms:rem graph with
        | Ok c -> Ok (c, cache_dir)
        | Error d when d.Diag.retryable && k < policy.retries ->
          backoff k;
          attempt ~cache_dir (k + 1)
        | Error d when d.Diag.code = Diag.Cache_io && cache_dir <> None ->
          (* retries exhausted on a cache failure: the cache is unusable
             for this request, so degrade to an uncached compile rather
             than failing it *)
          log_degradation d;
          attempt ~cache_dir:None 0
        | Error d -> Error d)
    in
    (match attempt ~cache_dir:policy.cache_dir 0 with
    | Error d -> fail ~attempts:!attempts d
    | Ok (c, used_cache_dir) ->
      let quarantined = Trace.counter c.Compiler.trace "cache-quarantined" in
      let uncached = used_cache_dir = None && policy.cache_dir <> None in
      let retried = !attempts > 1 in
      let degraded = uncached || quarantined > 0 in
      let store_suppressed = Trace.counter c.Compiler.trace "cache-store-suppressed" > 0 in
      let verified =
        match used_cache_dir with
        | Some dir when (degraded || retried) && not store_suppressed ->
          verify_against_store ~dir config graph c
        | _ -> true  (* nothing stored out-of-band to check against *)
      in
      if not verified then
        fail ~attempts:!attempts
          (Diag.make Diag.Internal "stored artifact does not match the served compile")
      else
        {
          request;
          outcome = (if degraded then Degraded else if retried then Retried else Ok_);
          diag = None;
          compiled = Some c;
          hit = Compiler.from_cache c;
          cold;
          ms = elapsed_ms ();
          attempts = !attempts;
          quarantined;
          uncached;
          verified;
        })

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)

type report = {
  requests : int;
  ok : int;
  errors : int;
  timeouts : int;
  retried : int;
  degraded : int;
  hits : int;
  misses : int;
  cold_ms : float list;
  warm_ms : float list;
}

let report_of results =
  let count f = List.length (List.filter f results) in
  let ok r = r.diag = None in
  {
    requests = List.length results;
    ok = count ok;
    errors = count (fun r -> r.outcome = Failed);
    timeouts = count (fun r -> r.outcome = Timed_out);
    retried = count (fun r -> r.outcome = Retried);
    degraded = count (fun r -> r.outcome = Degraded);
    hits = count (fun r -> ok r && r.hit);
    misses = count (fun r -> ok r && not r.hit);
    (* only served requests enter the latency populations: a failed
       request's wall time measures the failure path, not the service *)
    cold_ms = List.filter_map (fun r -> if ok r && r.cold then Some r.ms else None) results;
    warm_ms =
      List.filter_map (fun r -> if ok r && not r.cold then Some r.ms else None) results;
  }

let run_batch ?resolve ?compile ?(on_result = fun _ -> ()) policy requests =
  reset_degradation_log ();
  let seen = Hashtbl.create 16 in
  let results =
    List.map
      (fun (r : request) ->
        (* the key carries the shape bucket, not the raw sequence
           length: two lengths in one bucket resolve to the same graph,
           so the second is warm *)
        let key =
          (r.model, r.framework, r.selection, r.device, r.tune,
           Option.map seq_bucket r.seq)
        in
        let cold = not (Hashtbl.mem seen key) in
        Hashtbl.replace seen key ();
        let served = serve_one ?resolve ?compile policy ~cold r in
        on_result served;
        served)
      requests
  in
  (results, report_of results)

(* ------------------------------------------------------------------ *)
(* Outcome lines                                                       *)

(* One structured line per served request — the shared rendering behind
   `gcd2 serve` and the daemon's log, emitted through the mutex-guarded
   {!Gcd2_util.Logsink} so concurrent workers never tear it. *)
let outcome_line ?(extra = "") (r : served) =
  let b = Buffer.create 96 in
  let req = r.request in
  Buffer.add_string b
    (Fmt.str "%-16s %-8s %-10s %-8s %5s %-4s %10.1f ms" req.model req.framework
       req.selection (outcome_name r.outcome)
       (match r.diag with Some _ -> "-" | None -> if r.hit then "hit" else "miss")
       (if r.cold then "cold" else "warm")
       r.ms);
  (match r.compiled with
  | Some c -> Buffer.add_string b (Fmt.str "   model %8.2f ms" (Compiler.latency_ms c))
  | None -> ());
  if req.device <> "hexagon698" then Buffer.add_string b ("   device=" ^ req.device);
  (match req.tune with
  | Some t -> Buffer.add_string b ("   tune=" ^ Autotune.to_string t)
  | None -> ());
  (match req.seq with
  | Some s -> Buffer.add_string b (Fmt.str "   seq=%d(bucket %d)" s (seq_bucket s))
  | None -> ());
  if r.attempts > 1 then Buffer.add_string b (Fmt.str "   attempts=%d" r.attempts);
  if r.quarantined > 0 then Buffer.add_string b (Fmt.str "   quarantined=%d" r.quarantined);
  if r.uncached then Buffer.add_string b "   uncached";
  if extra <> "" then Buffer.add_string b ("   " ^ extra);
  (match r.diag with
  | Some d ->
    Buffer.add_string b (Fmt.str "   code=%s" (Diag.code_name d.Diag.code));
    (match req.line with 0 -> () | n -> Buffer.add_string b (Fmt.str " line=%d" n));
    Buffer.add_string b ("   " ^ d.Diag.message)
  | None -> ());
  Buffer.contents b
