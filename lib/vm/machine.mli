(** Functional + timing simulator for the DSP.

    Instructions inside a packet evaluate in program order, which is
    exactly what the interlocked hardware computes for the co-packings the
    packers permit (hard-dependent instructions are never co-packed).
    Executed packets accumulate {!Gcd2_isa.Packet.cycles}, so the dynamic
    cycle counter always equals {!Gcd2_isa.Program.static_cycles} of the
    program — a property the test suite checks.

    Two engines compute these semantics: the {e reference} interpreter
    (one dispatch per executed instruction) and the {e translated} engine
    (each instruction decoded once into a closure over the concrete
    operand [Bytes] windows, cached per program).  They produce
    bit-identical registers, memory and counters; {!run} dispatches on the
    global {!engine} selection, default {!Translated}. *)

open Gcd2_isa

type counters = {
  mutable cycles : int;
  mutable packets : int;
  mutable instrs : int;
  mutable macs : int;  (** 8-bit multiply-accumulates executed *)
  mutable loaded_bytes : int;
  mutable stored_bytes : int;
}

type t

(** Can this device's programs execute on the simulator?  The ISA
    semantics and the translated engine's specialized loops are fixed to
    the hexagon698 register file (128-byte vectors, 32+32 registers);
    wider descriptors are costed analytically, never run. *)
val executable : Gcd2_devices.Desc.t -> bool

(** [create ?desc ~mem_bytes ()] — fresh machine with zeroed registers
    and memory (default 4 MiB).  [desc] (default hexagon698) must satisfy
    {!executable}; raises [Invalid_argument] otherwise. *)
val create : ?desc:Gcd2_devices.Desc.t -> ?mem_bytes:int -> unit -> t

val counters : t -> counters
val memory_size : t -> int

val get_sreg : t -> Reg.t -> int
val set_sreg : t -> Reg.t -> int -> unit

(** Little-endian signed lane access into a vector register or pair. *)
val get_lane : t -> Reg.t -> width:Instr.width -> int -> int

val set_lane : t -> Reg.t -> width:Instr.width -> int -> int -> unit

(** Staging helpers (int8 = 1 byte/element, int32 = 4 bytes, little
    endian).  All memory access is bounds-checked. *)
val write_i8_array : t -> addr:int -> int array -> unit

val read_i8_array : t -> addr:int -> len:int -> int array
val write_i16_array : t -> addr:int -> int array -> unit
val write_i32_array : t -> addr:int -> int array -> unit
val read_i32_array : t -> addr:int -> len:int -> int array

(** Execute one instruction (updates counters).  Single-instruction
    stepping always uses the reference interpreter. *)
val exec : t -> Instr.t -> unit

(** The reference interpreter for one instruction — the semantic ground
    truth the translated engine is differentially tested against. *)
val exec_reference : t -> Instr.t -> unit

(** Run a whole program through the reference interpreter, regardless of
    the selected {!engine}. *)
val run_reference : t -> Program.t -> unit

(** Run a whole program; registers and memory persist across calls.
    Under the default {!Translated} engine the program is decoded once
    into specialized closures (cached on the machine, keyed by
    {!Gcd2_isa.Program.same} identity) and replayed on every call. *)
val run : t -> Program.t -> unit

(** {2 Engine selection}

    Global switch so benchmarks and CI smokes can reproduce the
    pre-translation baseline.  [Reference] also makes {!scratch} return
    fresh machines, matching the historical allocate-per-node behaviour
    for honest A/B timing. *)

type engine = Translated | Reference

val set_engine : engine -> unit
val engine : unit -> engine

(** {2 Scratch machines} *)

(** [reset ~mem_bytes t] restores [t] to the state of
    [create ~mem_bytes ()]: zeroed registers, counters, tables and the
    first [mem_bytes] of memory, growing the backing store on demand.
    Bounds checks apply to the logical [mem_bytes] size, so a reused
    machine faults exactly like a fresh one.  The translation cache is
    kept. *)
val reset : ?mem_bytes:int -> t -> unit

(** [scratch ?desc ~mem_bytes ()] — a domain-local machine, {!reset} and
    ready: per-node runners reuse it instead of allocating a fresh
    multi-MiB machine per node.  Machines are kept per device (keyed by
    the descriptor name), so two devices never share registers, memory or
    translation caches.  [desc] must satisfy {!executable}.  Under the
    [Reference] engine this returns a fresh {!create} instead. *)
val scratch : ?desc:Gcd2_devices.Desc.t -> ?mem_bytes:int -> unit -> t
