(** Functional + timing simulator for the DSP of {!Gcd2_isa}.

    Instructions inside a packet are evaluated in program order.  Hard-
    dependent instructions are never co-packed (checked by the schedule
    verifier), and for the soft dependencies that {e are} co-packed the
    interlocked pipeline of the real machine produces exactly the
    program-order result, so this evaluation order is faithful.

    Timing: each executed packet contributes {!Gcd2_isa.Packet.cycles}
    (max member latency + soft-dependency stalls); packets do not overlap
    (paper footnote 5).  The cycle counter therefore always equals
    {!Gcd2_isa.Program.static_cycles} of the executed program — a property
    the test suite checks.

    Two engines compute these semantics:

    - the {e reference} interpreter ({!exec_reference}/{!run_reference}):
      one dispatch per executed instruction, per-byte polymorphic register
      access — simple, obviously faithful, slow;
    - the {e translated} engine (the default {!run}): every instruction of
      a program is decoded {e once} into a closure specialized over the
      concrete [Bytes] windows of its operands (register numbers resolved,
      lane loops specialized per width with word-wide reads/writes, memory
      ops bounds-checked once per execution, [Vlut] tables resolved at
      decode time) and the closure is replayed on every execution — loop
      bodies are translated once and run [trip] times, and repeated
      {!run}s of the same program reuse the cached translation.

    Both engines produce bit-identical registers, memory and counters (a
    qcheck differential property in the suite); any instruction shape the
    translator does not recognize falls back to a closure around the
    reference interpreter, so the fast path can never change semantics. *)

open Gcd2_isa
module Sat = Gcd2_util.Saturate
module Desc = Gcd2_devices.Desc

type counters = {
  mutable cycles : int;
  mutable packets : int;
  mutable instrs : int;
  mutable macs : int;  (** 8-bit multiply-accumulates executed *)
  mutable loaded_bytes : int;
  mutable stored_bytes : int;
}

type exec_fn = unit -> unit

type t = {
  sregs : int array;  (** 32 scalar registers, signed 32-bit values *)
  vregs : Bytes.t array;  (** 32 vector registers of 128 bytes *)
  mutable mem : Bytes.t;  (** physical backing store, may exceed mem_limit *)
  mutable mem_limit : int;
      (** logical memory size: all bounds checks use this, so a reused
          scratch machine behaves exactly like a fresh machine of this
          size even when the backing store is larger *)
  mutable tables : (int * int array) list;
  counters : counters;
  translations : (int, (Program.t * exec_fn) list) Hashtbl.t;
      (** decode cache: {!Gcd2_isa.Program.identity_hash} buckets,
          confirmed by {!Gcd2_isa.Program.same} *)
  mutable cached_translations : int;
}

(** Can this device's programs execute on the simulator?  The ISA
    semantics (lane counts, packet shapes, the translated engine's
    specialized loops) are fixed to the hexagon698 register file; wider
    descriptors are costed analytically, never run. *)
let executable (d : Desc.t) =
  d.Desc.vector_bytes = Reg.vector_bytes
  && d.Desc.scalar_count = Reg.scalar_count
  && d.Desc.vector_count = Reg.vector_count

let check_executable d =
  if not (executable d) then
    invalid_arg
      (Fmt.str
         "Machine: device %s (%dB vectors, %d/%d regs) is not executable — the \
          simulator runs the %dB hexagon698 ISA only"
         d.Desc.name d.Desc.vector_bytes d.Desc.scalar_count d.Desc.vector_count
         Reg.vector_bytes)

let create ?(desc = Desc.hexagon698) ?(mem_bytes = 1 lsl 22) () =
  check_executable desc;
  {
    sregs = Array.make Reg.scalar_count 0;
    vregs = Array.init Reg.vector_count (fun _ -> Bytes.make Reg.vector_bytes '\000');
    mem = Bytes.make mem_bytes '\000';
    mem_limit = mem_bytes;
    tables = [];
    counters =
      { cycles = 0; packets = 0; instrs = 0; macs = 0; loaded_bytes = 0; stored_bytes = 0 };
    translations = Hashtbl.create 16;
    cached_translations = 0;
  }

let counters t = t.counters
let memory_size t = t.mem_limit

(* ------------------------------------------------------------------ *)
(* Register access                                                     *)

let get_sreg t = function
  | Reg.R n -> t.sregs.(n)
  | r -> invalid_arg (Fmt.str "get_sreg: %a is not scalar" Reg.pp r)

let set_sreg t r v =
  match r with
  | Reg.R n -> t.sregs.(n) <- Sat.wrap32 v
  | r -> invalid_arg (Fmt.str "set_sreg: %a is not scalar" Reg.pp r)

(* A vector operand is a list of (physical register, byte offset) windows;
   pairs span two registers. *)
let operand_bytes = function
  | Reg.V _ -> Reg.vector_bytes
  | Reg.P _ -> 2 * Reg.vector_bytes
  | Reg.R _ -> invalid_arg "vector operand expected"

let get_byte t r i =
  match r with
  | Reg.V n -> Char.code (Bytes.get t.vregs.(n) i)
  | Reg.P k ->
    if i < Reg.vector_bytes then Char.code (Bytes.get t.vregs.(2 * k) i)
    else Char.code (Bytes.get t.vregs.((2 * k) + 1) (i - Reg.vector_bytes))
  | Reg.R _ -> invalid_arg "get_byte: scalar register"

let set_byte t r i v =
  let c = Char.chr (v land 0xff) in
  match r with
  | Reg.V n -> Bytes.set t.vregs.(n) i c
  | Reg.P k ->
    if i < Reg.vector_bytes then Bytes.set t.vregs.(2 * k) i c
    else Bytes.set t.vregs.((2 * k) + 1) (i - Reg.vector_bytes) c
  | Reg.R _ -> invalid_arg "set_byte: scalar register"

let lane_bytes = Instr.width_bytes

(* Little-endian signed lane read/write at an arbitrary width. *)
let get_lane t r ~width l =
  let b = lane_bytes width in
  let base = l * b in
  let rec go i acc = if i = b then acc else go (i + 1) (acc lor (get_byte t r (base + i) lsl (8 * i))) in
  Sat.sign_extend ~bits:(8 * b) (go 0 0)

let set_lane t r ~width l v =
  let b = lane_bytes width in
  let base = l * b in
  for i = 0 to b - 1 do
    set_byte t r (base + i) ((v asr (8 * i)) land 0xff)
  done

let lane_count r width = operand_bytes r / lane_bytes width

(* ------------------------------------------------------------------ *)
(* Memory access                                                       *)

let effective_address t (a : Instr.addr) = get_sreg t a.base + a.offset

let check_bounds t addr size =
  if addr < 0 || addr + size > t.mem_limit then
    invalid_arg (Fmt.str "memory access out of bounds: [%d, %d)" addr (addr + size))

let mem_read32 t addr =
  check_bounds t addr 4;
  let b i = Char.code (Bytes.get t.mem (addr + i)) in
  Sat.sign_extend ~bits:32 (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

let mem_write32 t addr v =
  check_bounds t addr 4;
  for i = 0 to 3 do
    Bytes.set t.mem (addr + i) (Char.chr ((v asr (8 * i)) land 0xff))
  done

(** Stage an int8 array into memory at [addr] (one byte per element). *)
let write_i8_array t ~addr data =
  check_bounds t addr (Array.length data);
  Array.iteri (fun i v -> Bytes.set t.mem (addr + i) (Char.chr (v land 0xff))) data

(** Read [len] int8 values from memory at [addr]. *)
let read_i8_array t ~addr ~len =
  check_bounds t addr len;
  Array.init len (fun i -> Sat.sign_extend ~bits:8 (Char.code (Bytes.get t.mem (addr + i))))

(** Stage an int16 array into memory at [addr] (2 bytes per element,
    little endian) — 16-bit lane staging for the row-operator kernels. *)
let write_i16_array t ~addr data =
  check_bounds t addr (2 * Array.length data);
  Array.iteri
    (fun i v ->
      Bytes.set t.mem (addr + (2 * i)) (Char.chr (v land 0xff));
      Bytes.set t.mem (addr + (2 * i) + 1) (Char.chr ((v asr 8) land 0xff)))
    data

(** Stage an int32 array into memory at [addr] (4 bytes per element). *)
let write_i32_array t ~addr data =
  Array.iteri (fun i v -> mem_write32 t (addr + (4 * i)) v) data

let read_i32_array t ~addr ~len = Array.init len (fun i -> mem_read32 t (addr + (4 * i)))

(* ------------------------------------------------------------------ *)
(* Instruction semantics (reference interpreter)                       *)

let scalar_byte v m = Sat.sign_extend ~bits:8 ((v asr (8 * m)) land 0xff)

let operand_value t = function Instr.Reg r -> get_sreg t r | Instr.Imm i -> i

let exec_salu op a b =
  match op with
  | Instr.Add -> Sat.wrap32 (a + b)
  | Instr.Sub -> Sat.wrap32 (a - b)
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> Sat.wrap32 (a lsl (b land 31))
  | Instr.Shr -> a asr (b land 31)
  | Instr.Min -> min a b
  | Instr.Max -> max a b

let exec_valu op width a b =
  let sat =
    match width with Instr.W8 -> Sat.sat8 | Instr.W16 -> Sat.sat16 | Instr.W32 -> Sat.sat32
  in
  match op with
  | Instr.Vadd -> sat (a + b)
  | Instr.Vsub -> sat (a - b)
  | Instr.Vmax -> max a b
  | Instr.Vmin -> min a b
  | Instr.Vavg -> (a + b + 1) asr 1
  | Instr.Vand -> a land b
  | Instr.Vor -> a lor b
  | Instr.Vxor -> a lxor b

let exec_reference t instr =
  let c = t.counters in
  c.instrs <- c.instrs + 1;
  c.macs <- c.macs + Instr.macs instr;
  match instr with
  | Instr.Smovi (rd, imm) -> set_sreg t rd imm
  | Instr.Salu (op, rd, rs, o) -> set_sreg t rd (exec_salu op (get_sreg t rs) (operand_value t o))
  | Instr.Smul (rd, rs, o) -> set_sreg t rd (Sat.wrap32 (get_sreg t rs * operand_value t o))
  | Instr.Sload (rd, a) ->
    c.loaded_bytes <- c.loaded_bytes + 4;
    set_sreg t rd (mem_read32 t (effective_address t a))
  | Instr.Sstore (a, rs) ->
    c.stored_bytes <- c.stored_bytes + 4;
    mem_write32 t (effective_address t a) (get_sreg t rs)
  | Instr.Vload (vd, a) ->
    c.loaded_bytes <- c.loaded_bytes + Reg.vector_bytes;
    let addr = effective_address t a in
    (* bounds checked once for the whole transfer, then direct byte access *)
    check_bounds t addr Reg.vector_bytes;
    for i = 0 to Reg.vector_bytes - 1 do
      set_byte t vd i (Char.code (Bytes.get t.mem (addr + i)))
    done
  | Instr.Vstore (a, vs) ->
    c.stored_bytes <- c.stored_bytes + Reg.vector_bytes;
    let addr = effective_address t a in
    check_bounds t addr Reg.vector_bytes;
    for i = 0 to Reg.vector_bytes - 1 do
      Bytes.set t.mem (addr + i) (Char.chr (get_byte t vs i land 0xff))
    done
  | Instr.Vmovi (vd, v) ->
    for i = 0 to operand_bytes vd - 1 do
      set_byte t vd i v
    done
  | Instr.Valu (op, width, vd, va, vb) ->
    let n = lane_count vd width in
    for l = 0 to n - 1 do
      set_lane t vd ~width l
        (exec_valu op width (get_lane t va ~width l) (get_lane t vb ~width l))
    done
  | Instr.Vaddw (pd, vs) ->
    for l = 0 to Reg.lanes_16 - 1 do
      let acc = get_lane t pd ~width:Instr.W32 l in
      let x = get_lane t vs ~width:Instr.W16 l in
      set_lane t pd ~width:Instr.W32 l (Sat.wrap32 (acc + x))
    done
  | Instr.Vmpy (pd, vs, rt) ->
    let rt_v = get_sreg t rt in
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpy: destination must be a pair"
    in
    for i = 0 to Reg.lanes_8 - 1 do
      let a = Sat.sign_extend ~bits:8 (get_byte t vs i) in
      let prod = a * scalar_byte rt_v (i mod 4) in
      let dst = if i mod 2 = 0 then lo else hi in
      let l = i / 2 in
      set_lane t dst ~width:Instr.W16 l
        (Sat.sat16 (get_lane t dst ~width:Instr.W16 l + prod))
    done
  | Instr.Vmpyb (pd, vs, rt, sel) ->
    let rt_v = get_sreg t rt in
    let wv = scalar_byte rt_v sel in
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpyb: destination must be a pair"
    in
    for i = 0 to Reg.lanes_8 - 1 do
      let a = Sat.sign_extend ~bits:8 (get_byte t vs i) in
      let dst = if i mod 2 = 0 then lo else hi in
      let l = i / 2 in
      set_lane t dst ~width:Instr.W16 l
        (Sat.sat16 (get_lane t dst ~width:Instr.W16 l + (a * wv)))
    done
  | Instr.Vmul (pd, va, vb) ->
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmul: destination must be a pair"
    in
    for i = 0 to Reg.lanes_8 - 1 do
      let a = Sat.sign_extend ~bits:8 (get_byte t va i) in
      let b = Sat.sign_extend ~bits:8 (get_byte t vb i) in
      let dst = if i mod 2 = 0 then lo else hi in
      let l = i / 2 in
      set_lane t dst ~width:Instr.W16 l
        (Sat.sat16 (get_lane t dst ~width:Instr.W16 l + (a * b)))
    done
  | Instr.Vmpa (pd, ps, rt) ->
    let rt_v = get_sreg t rt in
    let b m = scalar_byte rt_v m in
    let lo, hi =
      match pd with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpa: destination must be a pair"
    in
    let q0, q1 =
      match ps with
      | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
      | _ -> invalid_arg "Vmpa: source must be a pair"
    in
    let s8 r i = Sat.sign_extend ~bits:8 (get_byte t r i) in
    for j = 0 to Reg.lanes_16 - 1 do
      let l = get_lane t lo ~width:Instr.W16 j in
      set_lane t lo ~width:Instr.W16 j
        (Sat.sat16 (l + (s8 q0 (2 * j) * b 0) + (s8 q1 (2 * j) * b 1)));
      let h = get_lane t hi ~width:Instr.W16 j in
      set_lane t hi ~width:Instr.W16 j
        (Sat.sat16 (h + (s8 q0 ((2 * j) + 1) * b 2) + (s8 q1 ((2 * j) + 1) * b 3)))
    done
  | Instr.Vrmpy (vd, vs, rt) ->
    let rt_v = get_sreg t rt in
    for l = 0 to Reg.lanes_32 - 1 do
      let acc = ref (get_lane t vd ~width:Instr.W32 l) in
      for m = 0 to 3 do
        let a = Sat.sign_extend ~bits:8 (get_byte t vs ((4 * l) + m)) in
        acc := !acc + (a * scalar_byte rt_v m)
      done;
      set_lane t vd ~width:Instr.W32 l (Sat.wrap32 !acc)
    done
  | Instr.Vscale (vd, vs, mult, shift) ->
    for l = 0 to Reg.lanes_32 - 1 do
      set_lane t vd ~width:Instr.W32 l
        (Sat.apply_multiplier (get_lane t vs ~width:Instr.W32 l) (mult, shift))
    done
  | Instr.Vscalev (vd, vs, vm, shift) ->
    for l = 0 to Reg.lanes_32 - 1 do
      let mult = get_lane t vm ~width:Instr.W32 l in
      set_lane t vd ~width:Instr.W32 l
        (Sat.apply_multiplier (get_lane t vs ~width:Instr.W32 l) (mult, shift))
    done
  | Instr.Vpack (vd, ps, w) ->
    (match w with
    | Instr.W32 ->
      for l = 0 to Reg.lanes_16 - 1 do
        set_lane t vd ~width:Instr.W16 l (Sat.sat16 (get_lane t ps ~width:Instr.W32 l))
      done
    | Instr.W16 ->
      for l = 0 to Reg.lanes_8 - 1 do
        set_lane t vd ~width:Instr.W8 l (Sat.sat8 (get_lane t ps ~width:Instr.W16 l))
      done
    | Instr.W8 -> invalid_arg "Vpack: cannot narrow 8-bit lanes")
  | Instr.Vshuff (pd, ps, width) ->
    let half = Reg.vector_bytes / lane_bytes width in
    (* Read the whole source pair first so pd = ps is well-defined. *)
    let src = Array.init (2 * half) (fun l -> get_lane t ps ~width l) in
    for i = 0 to half - 1 do
      set_lane t pd ~width (2 * i) src.(i);
      set_lane t pd ~width ((2 * i) + 1) src.(half + i)
    done
  | Instr.Vlut (vd, vs, id) ->
    let table =
      match List.assoc_opt id t.tables with
      | Some tbl -> tbl
      | None -> invalid_arg (Fmt.str "Vlut: unknown table %d" id)
    in
    let src = Array.init Reg.lanes_8 (fun i -> get_byte t vs i) in
    for i = 0 to Reg.lanes_8 - 1 do
      set_byte t vd i table.(src.(i) land 0xff)
    done
  | Instr.Vdup (vd, rs) ->
    let v = get_sreg t rs land 0xff in
    for i = 0 to operand_bytes vd - 1 do
      set_byte t vd i v
    done

(* Single-instruction stepping is inherently the reference path. *)
let exec = exec_reference

(* ------------------------------------------------------------------ *)
(* Reference program execution                                         *)

let exec_packet t (p : Packet.t) =
  t.counters.packets <- t.counters.packets + 1;
  t.counters.cycles <- t.counters.cycles + Packet.cycles p;
  List.iter (exec_reference t) p

let rec exec_node t = function
  | Program.Block packets -> List.iter (exec_packet t) packets
  | Program.Loop { trip; body } ->
    for _ = 1 to trip do
      List.iter (exec_node t) body
    done

let run_reference t (prog : Program.t) =
  t.tables <- prog.Program.tables;
  List.iter (exec_node t) prog.Program.nodes

(* ------------------------------------------------------------------ *)
(* Translated execution engine                                         *)

(* Word-wide little-endian lane primitives over a concrete 128-byte
   register window.  Reads are sign-extended exactly like [get_lane];
   writes truncate exactly like [set_lane].  The 32-bit forms compose two
   16-bit accesses because the [Bytes] 32-bit primitives traffic in boxed
   [int32]s, which would allocate on every lane. *)
let sx8 v = (v lxor 0x80) - 0x80
let clamp8 v = if v < -128 then -128 else if v > 127 then 127 else v
let clamp16 v = if v < -32768 then -32768 else if v > 32767 then 32767 else v
let g8 b i = Char.code (Bytes.unsafe_get b i)
let s8 b i = sx8 (Char.code (Bytes.unsafe_get b i))
let put8 b i v = Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff))
let g16 = Bytes.get_int16_le
let p16 = Bytes.set_int16_le
let g32 b o = Bytes.get_uint16_le b o lor (Bytes.get_int16_le b (o + 2) lsl 16)

let p32 b o v =
  Bytes.set_int16_le b o v;
  Bytes.set_int16_le b (o + 2) (v asr 16)

(* Unchecked 32-bit lane access for the hottest inner loops: closures
   only use these on whole-register windows (exactly [vb] bytes), where
   every lane offset is in bounds by construction.  Composing bytes
   keeps the value an immediate [int] (the [Bytes] 32-bit primitives
   box an [int32]). *)
let ug32 b o =
  g8 b o lor (g8 b (o + 1) lsl 8) lor (g8 b (o + 2) lsl 16) lor (s8 b (o + 3) lsl 24)

let up32 b o v =
  put8 b o v;
  put8 b (o + 1) (v asr 8);
  put8 b (o + 2) (v asr 16);
  put8 b (o + 3) (v asr 24)

(* Decode-time specialization of the ALU lane function: the reference's
   [exec_valu] matches on op and width (and builds the saturator) on
   every lane; here the closure is built once per decoded instruction. *)
let valu_fn op width : int -> int -> int =
  let sat =
    match width with
    | Instr.W8 -> clamp8
    | Instr.W16 -> clamp16
    | Instr.W32 -> Sat.sat32
  in
  match op with
  | Instr.Vadd -> fun a b -> sat (a + b)
  | Instr.Vsub -> fun a b -> sat (a - b)
  | Instr.Vmax -> fun a b -> if a > b then a else b
  | Instr.Vmin -> fun a b -> if a < b then a else b
  | Instr.Vavg -> fun a b -> (a + b + 1) asr 1
  | Instr.Vand -> ( land )
  | Instr.Vor -> ( lor )
  | Instr.Vxor -> ( lxor )

(* Same move for the scalar ALU: the binary function is resolved once at
   decode; [Sat.wrap32] stays at the write like [set_sreg] does. *)
let salu_fn op : int -> int -> int =
  match op with
  | Instr.Add -> ( + )
  | Instr.Sub -> ( - )
  | Instr.And -> ( land )
  | Instr.Or -> ( lor )
  | Instr.Xor -> ( lxor )
  | Instr.Shl -> fun a b -> a lsl (b land 31)
  | Instr.Shr -> fun a b -> a asr (b land 31)
  | Instr.Min -> fun a b -> if a < b then a else b
  | Instr.Max -> fun a b -> if a > b then a else b

(* Decode-time operand resolution.  [None] means the operand does not
   have the shape the specialized closure expects (wrong register kind or
   an out-of-range index); the instruction then falls back to the
   reference interpreter, which raises or misbehaves in exactly the
   documented way — at execution time, not decode time. *)
let sreg_index = function
  | Reg.R n when n >= 0 && n < Reg.scalar_count -> Some n
  | _ -> None

(* First-128-bytes window: whole V register, or the low half of a pair
   (all byte-lane reads/writes below 128 land there). *)
let low_window t = function
  | Reg.V n when n >= 0 && n < Reg.vector_count -> Some t.vregs.(n)
  | Reg.P k when k >= 0 && (2 * k) + 1 < Reg.vector_count -> Some t.vregs.(2 * k)
  | _ -> None

let pair_windows t = function
  | Reg.P k when k >= 0 && (2 * k) + 1 < Reg.vector_count ->
    Some (t.vregs.(2 * k), t.vregs.((2 * k) + 1))
  | _ -> None

(* Every 128-byte segment of the operand, in ascending lane order. *)
let all_segments t = function
  | Reg.V n when n >= 0 && n < Reg.vector_count -> Some [| t.vregs.(n) |]
  | Reg.P k when k >= 0 && (2 * k) + 1 < Reg.vector_count ->
    Some [| t.vregs.(2 * k); t.vregs.((2 * k) + 1) |]
  | _ -> None

(* Translate one instruction into a specialized closure.  Counter updates
   are baked in per instruction (not per packet) so that even a program
   aborted mid-packet by a bounds fault leaves counters bit-identical to
   the reference interpreter.  Lane loops preserve the reference's exact
   read/write order, which is what makes aliased operands (e.g. a source
   vector inside the destination pair) behave identically. *)
let translate_instr t ~tables (instr : Instr.t) : exec_fn =
  let c = t.counters in
  let s = t.sregs in
  let vb = Reg.vector_bytes in
  let fallback = fun () -> exec_reference t instr in
  match instr with
  | Instr.Smovi (rd, imm) -> (
    match sreg_index rd with
    | Some d ->
      let v = Sat.wrap32 imm in
      fun () ->
        c.instrs <- c.instrs + 1;
        Array.unsafe_set s d v
    | None -> fallback)
  | Instr.Salu (op, rd, rs, o) -> (
    match (sreg_index rd, sreg_index rs, o) with
    | Some d, Some r, Instr.Imm i ->
      let f = salu_fn op in
      fun () ->
        c.instrs <- c.instrs + 1;
        Array.unsafe_set s d (Sat.wrap32 (f (Array.unsafe_get s r) i))
    | Some d, Some r, Instr.Reg ro -> (
      match sreg_index ro with
      | Some oi ->
        let f = salu_fn op in
        fun () ->
          c.instrs <- c.instrs + 1;
          Array.unsafe_set s d (Sat.wrap32 (f (Array.unsafe_get s r) (Array.unsafe_get s oi)))
      | None -> fallback)
    | _ -> fallback)
  | Instr.Smul (rd, rs, o) -> (
    match (sreg_index rd, sreg_index rs, o) with
    | Some d, Some r, Instr.Imm i ->
      fun () ->
        c.instrs <- c.instrs + 1;
        Array.unsafe_set s d (Sat.wrap32 (Array.unsafe_get s r * i))
    | Some d, Some r, Instr.Reg ro -> (
      match sreg_index ro with
      | Some oi ->
        fun () ->
          c.instrs <- c.instrs + 1;
          Array.unsafe_set s d (Sat.wrap32 (Array.unsafe_get s r * Array.unsafe_get s oi))
      | None -> fallback)
    | _ -> fallback)
  | Instr.Sload (rd, a) -> (
    match (sreg_index rd, sreg_index a.Instr.base) with
    | Some d, Some b ->
      let off = a.Instr.offset in
      fun () ->
        c.instrs <- c.instrs + 1;
        c.loaded_bytes <- c.loaded_bytes + 4;
        let addr = Array.unsafe_get s b + off in
        check_bounds t addr 4;
        Array.unsafe_set s d (g32 t.mem addr)
    | _ -> fallback)
  | Instr.Sstore (a, rs) -> (
    match (sreg_index a.Instr.base, sreg_index rs) with
    | Some b, Some r ->
      let off = a.Instr.offset in
      fun () ->
        c.instrs <- c.instrs + 1;
        c.stored_bytes <- c.stored_bytes + 4;
        let addr = Array.unsafe_get s b + off in
        check_bounds t addr 4;
        p32 t.mem addr (Array.unsafe_get s r)
    | _ -> fallback)
  | Instr.Vload (vd, a) -> (
    match (low_window t vd, sreg_index a.Instr.base) with
    | Some dst, Some b ->
      let off = a.Instr.offset in
      fun () ->
        c.instrs <- c.instrs + 1;
        c.loaded_bytes <- c.loaded_bytes + vb;
        let addr = Array.unsafe_get s b + off in
        check_bounds t addr vb;
        Bytes.blit t.mem addr dst 0 vb
    | _ -> fallback)
  | Instr.Vstore (a, vs) -> (
    match (low_window t vs, sreg_index a.Instr.base) with
    | Some src, Some b ->
      let off = a.Instr.offset in
      fun () ->
        c.instrs <- c.instrs + 1;
        c.stored_bytes <- c.stored_bytes + vb;
        let addr = Array.unsafe_get s b + off in
        check_bounds t addr vb;
        Bytes.blit src 0 t.mem addr vb
    | _ -> fallback)
  | Instr.Vmovi (vd, v) -> (
    match all_segments t vd with
    | Some segs ->
      let ch = Char.chr (v land 0xff) in
      fun () ->
        c.instrs <- c.instrs + 1;
        Array.iter (fun b -> Bytes.fill b 0 vb ch) segs
    | None -> fallback)
  | Instr.Valu (op, width, vd, va, vb') -> (
    match (all_segments t vd, all_segments t va, all_segments t vb') with
    | Some d, Some a, Some b
      when Array.length d = Array.length a && Array.length d = Array.length b -> (
      let nseg = Array.length d in
      let f = valu_fn op width in
      match width with
      | Instr.W8 ->
        fun () ->
          c.instrs <- c.instrs + 1;
          for sg = 0 to nseg - 1 do
            let db = Array.unsafe_get d sg
            and ab = Array.unsafe_get a sg
            and bb = Array.unsafe_get b sg in
            for i = 0 to vb - 1 do
              put8 db i (f (s8 ab i) (s8 bb i))
            done
          done
      | Instr.W16 ->
        fun () ->
          c.instrs <- c.instrs + 1;
          for sg = 0 to nseg - 1 do
            let db = Array.unsafe_get d sg
            and ab = Array.unsafe_get a sg
            and bb = Array.unsafe_get b sg in
            for i = 0 to (vb / 2) - 1 do
              p16 db (2 * i) (f (g16 ab (2 * i)) (g16 bb (2 * i)))
            done
          done
      | Instr.W32 ->
        fun () ->
          c.instrs <- c.instrs + 1;
          for sg = 0 to nseg - 1 do
            let db = Array.unsafe_get d sg
            and ab = Array.unsafe_get a sg
            and bb = Array.unsafe_get b sg in
            for i = 0 to (vb / 4) - 1 do
              p32 db (4 * i) (f (g32 ab (4 * i)) (g32 bb (4 * i)))
            done
          done)
    | _ -> fallback)
  | Instr.Vaddw (pd, vs) -> (
    match (pair_windows t pd, low_window t vs) with
    | Some (lo, hi), Some src ->
      fun () ->
        c.instrs <- c.instrs + 1;
        for l = 0 to 31 do
          p32 lo (4 * l) (Sat.wrap32 (g32 lo (4 * l) + g16 src (2 * l)))
        done;
        for l = 32 to 63 do
          p32 hi ((4 * l) - vb) (Sat.wrap32 (g32 hi ((4 * l) - vb) + g16 src (2 * l)))
        done
    | _ -> fallback)
  | Instr.Vmpy (pd, vs, rt) -> (
    match (pair_windows t pd, low_window t vs, sreg_index rt) with
    | Some (lo, hi), Some src, Some rti ->
      fun () ->
        c.instrs <- c.instrs + 1;
        c.macs <- c.macs + 128;
        let rv = Array.unsafe_get s rti in
        let b0 = sx8 (rv land 0xff)
        and b1 = sx8 ((rv asr 8) land 0xff)
        and b2 = sx8 ((rv asr 16) land 0xff)
        and b3 = sx8 ((rv asr 24) land 0xff) in
        for j = 0 to 63 do
          let i = 2 * j in
          let o = 2 * j in
          let we, wo = if i land 3 = 0 then (b0, b1) else (b2, b3) in
          p16 lo o (clamp16 (g16 lo o + (s8 src i * we)));
          p16 hi o (clamp16 (g16 hi o + (s8 src (i + 1) * wo)))
        done
    | _ -> fallback)
  | Instr.Vmpyb (pd, vs, rt, sel) -> (
    match (pair_windows t pd, low_window t vs, sreg_index rt) with
    | Some (lo, hi), Some src, Some rti when sel >= 0 && sel <= 3 ->
      fun () ->
        c.instrs <- c.instrs + 1;
        c.macs <- c.macs + 128;
        let w = sx8 ((Array.unsafe_get s rti asr (8 * sel)) land 0xff) in
        for j = 0 to 63 do
          let i = 2 * j in
          let o = 2 * j in
          p16 lo o (clamp16 (g16 lo o + (s8 src i * w)));
          p16 hi o (clamp16 (g16 hi o + (s8 src (i + 1) * w)))
        done
    | _ -> fallback)
  | Instr.Vmul (pd, va, vbr) -> (
    match (pair_windows t pd, low_window t va, low_window t vbr) with
    | Some (lo, hi), Some ab, Some bb ->
      fun () ->
        c.instrs <- c.instrs + 1;
        c.macs <- c.macs + 128;
        for j = 0 to 63 do
          let i = 2 * j in
          let o = 2 * j in
          p16 lo o (clamp16 (g16 lo o + (s8 ab i * s8 bb i)));
          p16 hi o (clamp16 (g16 hi o + (s8 ab (i + 1) * s8 bb (i + 1))))
        done
    | _ -> fallback)
  | Instr.Vmpa (pd, ps, rt) -> (
    match (pair_windows t pd, pair_windows t ps, sreg_index rt) with
    | Some (lo, hi), Some (q0, q1), Some rti ->
      fun () ->
        c.instrs <- c.instrs + 1;
        c.macs <- c.macs + 256;
        let rv = Array.unsafe_get s rti in
        let b0 = sx8 (rv land 0xff)
        and b1 = sx8 ((rv asr 8) land 0xff)
        and b2 = sx8 ((rv asr 16) land 0xff)
        and b3 = sx8 ((rv asr 24) land 0xff) in
        for j = 0 to 63 do
          let o = 2 * j in
          p16 lo o (clamp16 (g16 lo o + (s8 q0 (2 * j) * b0) + (s8 q1 (2 * j) * b1)));
          p16 hi o
            (clamp16 (g16 hi o + (s8 q0 ((2 * j) + 1) * b2) + (s8 q1 ((2 * j) + 1) * b3)))
        done
    | _ -> fallback)
  | Instr.Vrmpy (vd, vs, rt) -> (
    match (low_window t vd, low_window t vs, sreg_index rt) with
    | Some dst, Some src, Some rti ->
      fun () ->
        c.instrs <- c.instrs + 1;
        c.macs <- c.macs + 128;
        let rv = Array.unsafe_get s rti in
        let b0 = sx8 (rv land 0xff)
        and b1 = sx8 ((rv asr 8) land 0xff)
        and b2 = sx8 ((rv asr 16) land 0xff)
        and b3 = sx8 ((rv asr 24) land 0xff) in
        for l = 0 to 31 do
          let i = 4 * l in
          let acc =
            g32 dst i + (s8 src i * b0)
            + (s8 src (i + 1) * b1)
            + (s8 src (i + 2) * b2)
            + (s8 src (i + 3) * b3)
          in
          p32 dst i (Sat.wrap32 acc)
        done
    | _ -> fallback)
  | Instr.Vscale (vd, vs, mult, shift) -> (
    match (low_window t vd, low_window t vs) with
    | Some dst, Some src when shift >= 0 ->
      (* [Sat.rounding_shift_right x 0 = x], which the general formula with
         [half = 0] also yields, so one decode-time [half] covers all
         non-negative shifts. *)
      let half = if shift = 0 then 0 else 1 lsl (shift - 1) in
      fun () ->
        c.instrs <- c.instrs + 1;
        for l = 0 to 31 do
          let x = g32 src (4 * l) * mult in
          let y = if x >= 0 then (x + half) asr shift else -((-x + half) asr shift) in
          p32 dst (4 * l) (Sat.sat32 y)
        done
    | _ -> fallback)
  | Instr.Vscalev (vd, vs, vm, shift) -> (
    match (low_window t vd, low_window t vs, low_window t vm) with
    | Some dst, Some src, Some mb when shift >= 0 ->
      let half = if shift = 0 then 0 else 1 lsl (shift - 1) in
      (* The per-lane multiplier made this the worst translated-engine
         speedup of any opcode: three checked 16-bit reads plus two
         checked writes per lane, and a data-dependent rounding branch.
         Unchecked composed accesses ([ug32]/[up32] — whole-register
         windows, offsets in bounds by construction), branchless
         round-away-from-zero (products of two 32-bit lanes fit in 62
         bits, so [asr 62] is the sign mask) and an inlined 32-bit clamp
         keep the loop free of bounds checks, branches and calls. *)
      fun () ->
        c.instrs <- c.instrs + 1;
        for l = 0 to 31 do
          let o = 4 * l in
          let x = ug32 src o * ug32 mb o in
          let sgn = x asr 62 in
          let y0 = (((x lxor sgn) - sgn + half) asr shift) lxor sgn in
          let y = y0 - sgn in
          let y =
            if y < -0x80000000 then -0x80000000
            else if y > 0x7fffffff then 0x7fffffff
            else y
          in
          up32 dst o y
        done
    | _ -> fallback)
  | Instr.Vpack (vd, ps, w) -> (
    match (low_window t vd, pair_windows t ps, w) with
    | Some dst, Some (plo, phi), Instr.W32 ->
      fun () ->
        c.instrs <- c.instrs + 1;
        for l = 0 to 31 do
          p16 dst (2 * l) (clamp16 (g32 plo (4 * l)))
        done;
        for l = 32 to 63 do
          p16 dst (2 * l) (clamp16 (g32 phi ((4 * l) - vb)))
        done
    | Some dst, Some (plo, phi), Instr.W16 ->
      fun () ->
        c.instrs <- c.instrs + 1;
        for l = 0 to 63 do
          put8 dst l (clamp8 (g16 plo (2 * l)))
        done;
        for l = 64 to 127 do
          put8 dst l (clamp8 (g16 phi ((2 * l) - vb)))
        done
    | _, _, _ -> fallback)
  | Instr.Vshuff (pd, ps, width) -> (
    match (pair_windows t pd, pair_windows t ps) with
    | Some (dlo, dhi), Some (slo, shi) ->
      let bl = lane_bytes width in
      let half = vb / bl in
      let get, put =
        match width with
        | Instr.W8 -> ((g8 : Bytes.t -> int -> int), put8)
        | Instr.W16 -> (Bytes.get_uint16_le, (p16 : Bytes.t -> int -> int -> unit))
        | Instr.W32 -> (g32, p32)
      in
      let tmp = Array.make (2 * half) 0 in
      fun () ->
        c.instrs <- c.instrs + 1;
        (* snapshot first so pd = ps is well-defined, like the reference *)
        for l = 0 to half - 1 do
          tmp.(l) <- get slo (l * bl);
          tmp.(half + l) <- get shi (l * bl)
        done;
        let wr j v =
          let base = j * bl in
          if base < vb then put dlo base v else put dhi (base - vb) v
        in
        for i = 0 to half - 1 do
          wr (2 * i) tmp.(i);
          wr ((2 * i) + 1) tmp.(half + i)
        done
    | _ -> fallback)
  | Instr.Vlut (vd, vs, id) -> (
    match (low_window t vd, low_window t vs, List.assoc_opt id tables) with
    | Some dst, Some src, Some table when Array.length table >= 256 ->
      (* The reference snapshots all 128 source bytes before writing; only
         an aliased destination can observe the difference, so the copy is
         paid only in that case. *)
      let tmp = if dst == src then Some (Bytes.create vb) else None in
      fun () ->
        c.instrs <- c.instrs + 1;
        let sb =
          match tmp with
          | Some b ->
            Bytes.blit src 0 b 0 vb;
            b
          | None -> src
        in
        for i = 0 to vb - 1 do
          put8 dst i (Array.unsafe_get table (g8 sb i))
        done
    | _ -> fallback)
  | Instr.Vdup (vd, rs) -> (
    match (all_segments t vd, sreg_index rs) with
    | Some segs, Some ri ->
      fun () ->
        c.instrs <- c.instrs + 1;
        let ch = Char.unsafe_chr (Array.unsafe_get s ri land 0xff) in
        Array.iter (fun b -> Bytes.fill b 0 vb ch) segs
    | _ -> fallback)

(* Packet/node translation: packet-level counters (packets, cycles) are
   static, so each packet contributes one prologue closure with the
   precomputed cycle cost, followed by its member instructions. *)
let translate_packet t ~tables (p : Packet.t) : exec_fn list =
  let c = t.counters in
  let cyc = Packet.cycles p in
  let prologue () =
    c.packets <- c.packets + 1;
    c.cycles <- c.cycles + cyc
  in
  prologue :: List.map (translate_instr t ~tables) p

let rec translate_node t ~tables = function
  | Program.Block packets ->
    let fns = Array.of_list (List.concat_map (translate_packet t ~tables) packets) in
    let n = Array.length fns in
    fun () ->
      for i = 0 to n - 1 do
        (Array.unsafe_get fns i) ()
      done
  | Program.Loop { trip; body } ->
    let fns = Array.of_list (List.map (translate_node t ~tables) body) in
    let n = Array.length fns in
    fun () ->
      for _ = 1 to trip do
        for i = 0 to n - 1 do
          (Array.unsafe_get fns i) ()
        done
      done

let translate t (prog : Program.t) : exec_fn =
  let tables = prog.Program.tables in
  let fns = Array.of_list (List.map (translate_node t ~tables) prog.Program.nodes) in
  let n = Array.length fns in
  fun () ->
    for i = 0 to n - 1 do
      (Array.unsafe_get fns i) ()
    done

(* Decode cache: translations are per-machine (closures capture this
   machine's registers) and keyed by program identity.  The cap only
   bounds memory on pathological workloads; one compiled model's kernels
   fit comfortably. *)
let max_cached_translations = 512

let translation t prog =
  let key = Program.identity_hash prog in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.translations key) in
  match List.find_opt (fun (p, _) -> Program.same p prog) bucket with
  | Some (_, fn) -> fn
  | None ->
    let fn = translate t prog in
    if t.cached_translations >= max_cached_translations then begin
      Hashtbl.reset t.translations;
      t.cached_translations <- 0
    end;
    let bucket = Option.value ~default:[] (Hashtbl.find_opt t.translations key) in
    Hashtbl.replace t.translations key ((prog, fn) :: bucket);
    t.cached_translations <- t.cached_translations + 1;
    fn

(* ------------------------------------------------------------------ *)
(* Engine selection and program execution                              *)

type engine = Translated | Reference

(* Global so the benchmark harness (and CI smoke) can reproduce the
   pre-translation baseline — reference dispatch AND a fresh machine per
   [scratch] request — without threading a flag through every layer. *)
let engine_state = ref Translated
let set_engine e = engine_state := e
let engine () = !engine_state

(** Run a whole program; registers and memory persist across calls. *)
let run t (prog : Program.t) =
  Gcd2_util.Fault.fire "vm-run";
  t.tables <- prog.Program.tables;
  match !engine_state with
  | Reference -> List.iter (exec_node t) prog.Program.nodes
  | Translated -> (translation t prog) ()

(* ------------------------------------------------------------------ *)
(* Scratch machines                                                    *)

let reset ?(mem_bytes = 1 lsl 22) t =
  if Bytes.length t.mem < mem_bytes then begin
    (* next power of two, so repeated growth is amortized; a freshly
       allocated Bytes is already zeroed *)
    let cap = ref (max 1 (Bytes.length t.mem)) in
    while !cap < mem_bytes do
      cap := !cap * 2
    done;
    t.mem <- Bytes.make !cap '\000'
  end
  else Bytes.fill t.mem 0 mem_bytes '\000';
  t.mem_limit <- mem_bytes;
  Array.fill t.sregs 0 (Array.length t.sregs) 0;
  Array.iter (fun v -> Bytes.fill v 0 (Bytes.length v) '\000') t.vregs;
  t.tables <- [];
  let c = t.counters in
  c.cycles <- 0;
  c.packets <- 0;
  c.instrs <- 0;
  c.macs <- 0;
  c.loaded_bytes <- 0;
  c.stored_bytes <- 0

(* One scratch machine per (domain, device): the table is domain-local,
   keyed by the descriptor's name, so two devices never share registers,
   memory or translation caches. *)
let scratch_key : (string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let scratch ?(desc = Desc.hexagon698) ?(mem_bytes = 1 lsl 22) () =
  check_executable desc;
  match !engine_state with
  | Reference -> create ~desc ~mem_bytes ()
  | Translated ->
    let table = Domain.DLS.get scratch_key in
    let m =
      match Hashtbl.find_opt table desc.Desc.name with
      | Some m -> m
      | None ->
        let m = create ~desc ~mem_bytes:4096 () in
        Hashtbl.replace table desc.Desc.name m;
        m
    in
    reset ~mem_bytes m;
    m
