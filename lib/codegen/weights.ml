(** Compile-time weight prepacking and activation/output staging for the
    matmul kernels.

    Each SIMD choice wants its weights as little-endian 4-byte words the
    kernel can [Sload] straight into the multiply's scalar operand:

    - [vmpy]: four consecutive-k weights per word; the kernel's
      byte-select multiply ([Vmpyb]) broadcasts one byte per reduction
      step (the "splat one element" of paper Figure 2a); word (g, n) at
      [n*(Kp/4) + g].
    - [vmpa]: four consecutive-k weights of one column in the lane order
      the instruction consumes: (k0, k2, k1, k3); word (g, n) at
      [n*(Kp/4) + g].
    - [vrmpy]: four consecutive-k weights in natural order (k0..k3); word
      (g, n) at [n*(Kp/4) + g]. *)

module Layout = Gcd2_tensor.Layout
module Pack = Gcd2_tensor.Pack
module Stats = Gcd2_util.Stats

(** K and N as the kernel actually iterates them. *)
let padded_kn simd ~k ~n =
  let kp = Stats.round_up k (Simd.k_pad simd) in
  let np = Stats.round_up n (Layout.column_group (Simd.layout simd)) in
  (kp, np)

let word b0 b1 b2 b3 =
  (b0 land 0xff) lor ((b1 land 0xff) lsl 8) lor ((b2 land 0xff) lsl 16)
  lor ((b3 land 0xff) lsl 24)

(** [prepack simd ~k ~n w] — [w] is the logical row-major K x N weight
    matrix; the result is a byte array of 4-byte words as described above
    (indexable with {!word_offset}). *)
let prepack simd ~k ~n w =
  if Array.length w <> k * n then invalid_arg "Weights.prepack: size mismatch";
  let kp, np = padded_kn simd ~k ~n in
  let at kk nn = if kk < k && nn < n then w.((kk * n) + nn) else 0 in
  let words =
    match simd with
    | Simd.I_vmpy | Simd.I_vrmpy ->
      let groups = kp / 4 in
      Array.init (np * groups) (fun i ->
          let nn = i / groups and g = i mod groups in
          word (at (4 * g) nn) (at ((4 * g) + 1) nn) (at ((4 * g) + 2) nn)
            (at ((4 * g) + 3) nn))
    | Simd.I_vmpa ->
      let groups = kp / 4 in
      Array.init (np * groups) (fun i ->
          let nn = i / groups and g = i mod groups in
          word (at (4 * g) nn) (at ((4 * g) + 2) nn) (at ((4 * g) + 1) nn)
            (at ((4 * g) + 3) nn))
  in
  (* flatten to bytes *)
  let bytes = Array.make (4 * Array.length words) 0 in
  Array.iteri
    (fun i wd ->
      bytes.(4 * i) <- wd land 0xff;
      bytes.((4 * i) + 1) <- (wd lsr 8) land 0xff;
      bytes.((4 * i) + 2) <- (wd lsr 16) land 0xff;
      bytes.((4 * i) + 3) <- (wd lsr 24) land 0xff)
    words;
  bytes

(** Byte size of the prepacked weight buffer. *)
let prepacked_bytes simd ~k ~n =
  let kp, np = padded_kn simd ~k ~n in
  ignore simd;
  4 * np * (kp / 4)

(** Byte stride between two consecutive output columns' weight streams. *)
let column_stride simd ~k =
  let kp = Stats.round_up k (Simd.k_pad simd) in
  ignore simd;
  4 * (kp / 4)

(** Pack an M x K activation matrix for the kernel (layout of the SIMD
    choice, K padded to the kernel granularity). *)
let pack_activations simd ~m ~k a =
  if Array.length a <> m * k then invalid_arg "Weights.pack_activations: size mismatch";
  let kp, _ = padded_kn simd ~k ~n:1 in
  let padded =
    if kp = k then a
    else
      Array.init (m * kp) (fun i ->
          let r = i / kp and c = i mod kp in
          if c < k then a.((r * k) + c) else 0)
  in
  (Pack.pack (Simd.layout simd) ~rows:m ~cols:kp padded).Pack.bytes

let activation_bytes ?desc simd ~m ~k =
  let kp, _ = padded_kn simd ~k ~n:1 in
  Layout.padded_bytes ?desc (Simd.layout simd) ~rows:m ~cols:kp

(** Output buffer size (int8, layout-padded M x N). *)
let output_bytes ?desc simd ~m ~n =
  Layout.padded_bytes ?desc (Simd.layout simd) ~rows:m ~cols:n

(** Recover the logical row-major M x N matrix from the kernel's output
    buffer. *)
let unpack_output simd ~m ~n bytes =
  Pack.unpack { Pack.layout = Simd.layout simd; rows = m; cols = n; bytes }

(* little-endian W32 lanes into a byte array *)
let blit_w32 bytes off v =
  for i = 0 to 3 do
    bytes.(off + i) <- (v asr (8 * i)) land 0xff
  done

(** Prepack per-channel requantization multipliers as the vectors the
    kernels' [Vscalev] epilogues load: for [vmpy]/[vmpa], one 32-lane
    splat vector per output column; for [vrmpy], two vectors per 4-column
    group whose lanes alternate between the group's column pairs (matching
    the post-shuffle lane order). *)
let prepack_channel_mults simd ~n mults =
  if Array.length mults <> n then invalid_arg "prepack_channel_mults: size mismatch";
  let _, np = padded_kn simd ~k:4 ~n in
  let at j = if j < n then mults.(j) else 0 in
  match simd with
  | Simd.I_vmpy | Simd.I_vmpa ->
    let bytes = Array.make (np * 128) 0 in
    for j = 0 to np - 1 do
      for l = 0 to 31 do
        blit_w32 bytes ((j * 128) + (4 * l)) (at j)
      done
    done;
    bytes
  | Simd.I_vrmpy ->
    let groups = np / 4 in
    let bytes = Array.make (groups * 256) 0 in
    for g = 0 to groups - 1 do
      for l = 0 to 31 do
        (* vector A: columns 4g / 4g+1 alternating; vector B: 4g+2 / 4g+3 *)
        blit_w32 bytes ((g * 256) + (4 * l)) (at ((4 * g) + (l mod 2)));
        blit_w32 bytes ((g * 256) + 128 + (4 * l)) (at ((4 * g) + 2 + (l mod 2)))
      done
    done;
    bytes
