(** Bump allocator for physical registers during kernel emission.  Unroll
    limits keep kernels within the register file; exhaustion raises. *)

module Reg = Gcd2_isa.Reg

exception Out_of_registers of string

type t

(** [create ()] — fresh allocator sized to the device's register files
    (default {!Gcd2_devices.Desc.hexagon698}). *)
val create : ?desc:Gcd2_devices.Desc.t -> unit -> t
val scalar : t -> Reg.t
val vector : t -> Reg.t

(** Aligned even/odd vector pair. *)
val pair : t -> Reg.t

(** Low/high vector halves of a pair. *)
val halves : Reg.t -> Reg.t * Reg.t

val free_vectors : t -> int
val free_scalars : t -> int
