(** Row-operator kernels: Softmax and LayerNorm along the last axis.

    Both stage a group of rows {e transposed} — one vector per column,
    lane [r] = row [r] — so the row-wise reductions (max, sum, sum of
    squares) become per-lane accumulations across column vectors and
    never need a cross-lane tree.  A group is [vector_bytes] rows for
    Softmax (8-bit lanes) and [vector_bytes / 2] rows for LayerNorm
    (16-bit lanes, because centering [x - mean] spans [-255, 255]).

    Each operator is two programs with a host step between them, because
    the per-row scalars (Softmax's reciprocal of the exponential sum,
    LayerNorm's mean and fused normalize-affine multiplier) must be
    computed from pass-1 results and staged as [Vscalev] multiplier
    vectors for pass 2.  The division itself is a per-row scalar (one per
    128 staged rows), host-computed like the other staging operators
    DESIGN.md documents; everything O(rows x cols) runs on the DSP.

    Bit-exactness with {!Gcd2_kernels.Interp} rests on three ISA facts:
    [Valu] subtracts saturate exactly like the reference's clamp,
    [Vscalev] lanes compute [Sat.apply_multiplier], and the pack chain
    [sat8 (sat16 v) = sat8 v] (nested monotone clamps). *)

open Gcd2_isa
module Packer = Gcd2_sched.Packer
module Desc = Gcd2_devices.Desc
module Machine = Gcd2_vm.Machine
module Sat = Gcd2_util.Saturate

module Lut = Gcd2_kernels.Lut

let exp_table_id = 1

(* The integer steps (exponential table, reciprocal, mean, normalize-
   affine multiplier) live in Gcd2_kernels.Lut, shared with the
   reference interpreter so both sides are bit-exact by construction. *)
let exp_table ~scale = Lut.softmax_exp_table ~scale
let recip_of_sum = Lut.softmax_recip
let rounded_mean = Lut.rounded_mean
let layer_norm_multiplier = Lut.layer_norm_multiplier

(* 16-bit saturating accumulators ([Vmul] into a pair) hold at most
   [32767 / 127] exponential bytes; drain every [chunk] columns into the
   32-bit row sums ([Vaddw]). *)
let sum_chunk = 128

(* ------------------------------------------------------------------ *)
(* Program generation *)

(* Memoized on every parameter that reaches the emitter (the Streams
   discipline); programs are shared across nodes and groups, so the VM's
   decode cache sees one identity per shape.  The exponential table bakes
   the input scale into pass 1, hence the scale bits in its key. *)
let softmax_p1_memo :
    (Desc.t * Packer.strategy * int * int64, Program.t) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "rowops-softmax-p1"

let softmax_p2_memo : (Desc.t * Packer.strategy * int, Program.t) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "rowops-softmax-p2"

let layer_norm_p1_memo : (Desc.t * Packer.strategy * int, Program.t) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "rowops-ln-p1"

let layer_norm_p2_memo : (Desc.t * Packer.strategy * int, Program.t) Gcd2_util.Memo.t =
  Gcd2_util.Memo.create "rowops-ln-p2"

(* Group-scratch layout, in units of [vector_bytes]: input columns first,
   then (operator-specific) intermediate and output columns, then the
   sum/affine staging vectors.  All bases are vector-aligned. *)
let softmax_bases ~vb ~cols =
  let xt = 0 in
  let e = cols * vb in
  let out = 2 * cols * vb in
  let sums = 3 * cols * vb in
  let recip = sums + (4 * vb) in
  (xt, e, out, sums, recip, recip + (4 * vb) + 256)

let layer_norm_bases ~vb ~cols =
  let xt = 0 in
  let out = cols * vb in
  let sums = 2 * cols * vb in
  let aff = sums + (4 * vb) in
  (xt, out, sums, aff, aff + (3 * vb) + 256)

(* Pass 1: per-lane row max over all columns, then exponentials (stored
   for pass 2) accumulated into 32-bit per-row sums.  [Vmul] splits a
   vector's bytes even/odd into a pair's 16-bit lanes, so the sums come
   out row-interleaved: lane [l] of the first stored pair is row [2l],
   of the second row [2l+1]. *)
let softmax_p1 ~device ~strategy ~cols ~scale =
  let key = (device, strategy, cols, Int64.bits_of_float scale) in
  Gcd2_util.Memo.find_or_add softmax_p1_memo key (fun () ->
      let vb = device.Desc.vector_bytes in
      let xt_base, e_base, _, sum_base, _, _ = softmax_bases ~vb ~cols in
      let pool = Regs.create ~desc:device () in
      let rx = Regs.scalar pool and re = Regs.scalar pool and rs = Regs.scalar pool in
      let xv = Regs.vector pool and maxv = Regs.vector pool and dv = Regs.vector pool in
      let ones = Regs.vector pool in
      let pd = Regs.pair pool and sa = Regs.pair pool and sb = Regs.pair pool in
      let pd_lo, pd_hi = Regs.halves pd in
      let sa_lo, sa_hi = Regs.halves sa and sb_lo, sb_hi = Regs.halves sb in
      let block e = Emit.block ~desc:device ~strategy e in
      let init =
        let e = Emit.create () in
        Emit.movi e rx xt_base;
        Emit.movi e re e_base;
        Emit.movi e rs sum_base;
        Emit.vmovi e maxv (-128);
        Emit.vmovi e ones 1;
        Emit.vzero e pd;
        Emit.vzero e sa;
        Emit.vzero e sb;
        block e
      in
      let max_body =
        let e = Emit.create () in
        Emit.vload e xv rx 0;
        Emit.valu e Instr.Vmax ~width:Instr.W8 maxv maxv xv;
        Emit.bump e rx vb;
        block e
      in
      let reset =
        let e = Emit.create () in
        Emit.movi e rx xt_base;
        block e
      in
      let col_body =
        let e = Emit.create () in
        Emit.vload e xv rx 0;
        (* saturating byte subtract: d = sat8 (x - max) in [-128, 0] *)
        Emit.valu e Instr.Vsub ~width:Instr.W8 dv xv maxv;
        Emit.vlut e dv dv exp_table_id;
        Emit.vstore e re 0 dv;
        Emit.vmul e pd dv ones;
        Emit.bump e rx vb;
        Emit.bump e re vb;
        block e
      in
      let drain =
        let e = Emit.create () in
        Emit.vaddw e sa pd_lo;
        Emit.vaddw e sb pd_hi;
        Emit.vzero e pd;
        block e
      in
      let store =
        let e = Emit.create () in
        Emit.vstore e rs 0 sa_lo;
        Emit.vstore e rs vb sa_hi;
        Emit.vstore e rs (2 * vb) sb_lo;
        Emit.vstore e rs (3 * vb) sb_hi;
        block e
      in
      let full = cols / sum_chunk and rest = cols mod sum_chunk in
      let nodes =
        [ init; Emit.loop ~trip:cols [ max_body ]; reset ]
        @ (if full > 0 then
             [ Emit.loop ~trip:full [ Emit.loop ~trip:sum_chunk [ col_body ]; drain ] ]
           else [])
        @ (if rest > 0 then [ Emit.loop ~trip:rest [ col_body ]; drain ] else [])
        @ [ store ]
      in
      Program.make ~tables:[ (exp_table_id, exp_table ~scale) ] "softmax_p1" nodes)

(* Pass 2: reload the stored exponentials, widen each column to 32-bit
   lanes, scale by the staged per-row reciprocal vectors (shift 15) and
   pack back to bytes.  The byte widening inherits [Vmul]'s even/odd
   interleave, so output byte [i] of a column is row [2i] (i < vb/2) or
   row [2 (i - vb/2) + 1]; the host gather below undoes it. *)
let softmax_p2 ~device ~strategy ~cols =
  Gcd2_util.Memo.find_or_add softmax_p2_memo (device, strategy, cols) (fun () ->
      let vb = device.Desc.vector_bytes in
      let _, e_base, out_base, _, recip_base, _ = softmax_bases ~vb ~cols in
      let pool = Regs.create ~desc:device () in
      let re = Regs.scalar pool and ro = Regs.scalar pool and rs = Regs.scalar pool in
      let ev = Regs.vector pool and ones = Regs.vector pool in
      let w0 = Regs.vector pool and w1 = Regs.vector pool in
      let w2 = Regs.vector pool and w3 = Regs.vector pool in
      let pd = Regs.pair pool and qa = Regs.pair pool and qb = Regs.pair pool in
      let u = Regs.pair pool in
      let outv = Regs.vector pool in
      let pd_lo, pd_hi = Regs.halves pd in
      let qa_lo, qa_hi = Regs.halves qa and qb_lo, qb_hi = Regs.halves qb in
      let u_lo, u_hi = Regs.halves u in
      let block e = Emit.block ~desc:device ~strategy e in
      let init =
        let e = Emit.create () in
        Emit.movi e re e_base;
        Emit.movi e ro out_base;
        Emit.movi e rs recip_base;
        Emit.vload e w0 rs 0;
        Emit.vload e w1 rs vb;
        Emit.vload e w2 rs (2 * vb);
        Emit.vload e w3 rs (3 * vb);
        Emit.vmovi e ones 1;
        block e
      in
      let col_body =
        let e = Emit.create () in
        Emit.vload e ev re 0;
        Emit.vzero e pd;
        Emit.vmul e pd ev ones;
        Emit.vzero e qa;
        Emit.vaddw e qa pd_lo;
        Emit.vzero e qb;
        Emit.vaddw e qb pd_hi;
        Emit.vscalev e qa_lo qa_lo w0 15;
        Emit.vscalev e qa_hi qa_hi w1 15;
        Emit.vscalev e qb_lo qb_lo w2 15;
        Emit.vscalev e qb_hi qb_hi w3 15;
        Emit.vpack e u_lo qa Instr.W32;
        Emit.vpack e u_hi qb Instr.W32;
        Emit.vpack e outv u Instr.W16;
        Emit.vstore e ro 0 outv;
        Emit.bump e re vb;
        Emit.bump e ro vb;
        block e
      in
      Program.make "softmax_p2" [ init; Emit.loop ~trip:cols [ col_body ] ])

(* LayerNorm pass 1: per-lane sum and sum of squares.  Columns are
   16-bit lanes; [Vaddw] widens positionally to 32-bit row sums and
   [Vscalev] at shift 0 squares each lane exactly. *)
let layer_norm_p1 ~device ~strategy ~cols =
  Gcd2_util.Memo.find_or_add layer_norm_p1_memo (device, strategy, cols) (fun () ->
      let vb = device.Desc.vector_bytes in
      let xt_base, _, sum_base, _, _ = layer_norm_bases ~vb ~cols in
      let pool = Regs.create ~desc:device () in
      let rx = Regs.scalar pool and rs = Regs.scalar pool in
      let xv = Regs.vector pool in
      let sp = Regs.pair pool and sq = Regs.pair pool and p = Regs.pair pool in
      let sp_lo, sp_hi = Regs.halves sp and sq_lo, sq_hi = Regs.halves sq in
      let p_lo, p_hi = Regs.halves p in
      let block e = Emit.block ~desc:device ~strategy e in
      let init =
        let e = Emit.create () in
        Emit.movi e rx xt_base;
        Emit.movi e rs sum_base;
        Emit.vzero e sp;
        Emit.vzero e sq;
        block e
      in
      let col_body =
        let e = Emit.create () in
        Emit.vload e xv rx 0;
        Emit.vaddw e sp xv;
        Emit.vzero e p;
        Emit.vaddw e p xv;
        Emit.vscalev e p_lo p_lo p_lo 0;
        Emit.vscalev e p_hi p_hi p_hi 0;
        Emit.valu e Instr.Vadd ~width:Instr.W32 sq_lo sq_lo p_lo;
        Emit.valu e Instr.Vadd ~width:Instr.W32 sq_hi sq_hi p_hi;
        Emit.bump e rx vb;
        block e
      in
      let store =
        let e = Emit.create () in
        Emit.vstore e rs 0 sp_lo;
        Emit.vstore e rs vb sp_hi;
        Emit.vstore e rs (2 * vb) sq_lo;
        Emit.vstore e rs (3 * vb) sq_hi;
        block e
      in
      Program.make "layer_norm_p1" [ init; Emit.loop ~trip:cols [ col_body ]; store ])

(* LayerNorm pass 2: center against the staged per-row mean (exact in 16
   bits), widen, apply the fused normalize-affine multiplier at shift 15
   and pack.  Lanes stay positional throughout — no interleave. *)
let layer_norm_p2 ~device ~strategy ~cols =
  Gcd2_util.Memo.find_or_add layer_norm_p2_memo (device, strategy, cols) (fun () ->
      let vb = device.Desc.vector_bytes in
      let xt_base, out_base, _, aff_base, _ = layer_norm_bases ~vb ~cols in
      let pool = Regs.create ~desc:device () in
      let rx = Regs.scalar pool and ro = Regs.scalar pool and rs = Regs.scalar pool in
      let xv = Regs.vector pool and meanv = Regs.vector pool and dv = Regs.vector pool in
      let nm_lo = Regs.vector pool and nm_hi = Regs.vector pool in
      let p = Regs.pair pool and u = Regs.pair pool in
      let outv = Regs.vector pool in
      let p_lo, p_hi = Regs.halves p in
      let u_lo, _ = Regs.halves u in
      let block e = Emit.block ~desc:device ~strategy e in
      let init =
        let e = Emit.create () in
        Emit.movi e rx xt_base;
        Emit.movi e ro out_base;
        Emit.movi e rs aff_base;
        Emit.vload e meanv rs 0;
        Emit.vload e nm_lo rs vb;
        Emit.vload e nm_hi rs (2 * vb);
        (* the pair's high half stays zero: only the low vb/2 output
           bytes of each column are rows *)
        Emit.vzero e u;
        block e
      in
      let col_body =
        let e = Emit.create () in
        Emit.vload e xv rx 0;
        Emit.valu e Instr.Vsub ~width:Instr.W16 dv xv meanv;
        Emit.vzero e p;
        Emit.vaddw e p dv;
        Emit.vscalev e p_lo p_lo nm_lo 15;
        Emit.vscalev e p_hi p_hi nm_hi 15;
        Emit.vpack e u_lo p Instr.W32;
        Emit.vpack e outv u Instr.W16;
        Emit.vstore e ro 0 outv;
        Emit.bump e rx vb;
        Emit.bump e ro vb;
        block e
      in
      Program.make "layer_norm_p2" [ init; Emit.loop ~trip:cols [ col_body ] ])

(* ------------------------------------------------------------------ *)
(* Costing *)

let ceil_div a b = (a + b - 1) / b

(** Modeled cycles for a whole Softmax node: both passes, times the
    number of row groups.  Device-parameterized like the Matmul
    generator: wider descriptors are costed on their own vector width,
    only hexagon698 programs ever execute. *)
let softmax_cycles ~device ~strategy ~rows ~cols =
  let vb = device.Desc.vector_bytes in
  let groups = ceil_div rows vb in
  let p1 = softmax_p1 ~device ~strategy ~cols ~scale:1.0 in
  let p2 = softmax_p2 ~device ~strategy ~cols in
  let per_group =
    Program.static_cycles ~desc:device p1 + Program.static_cycles ~desc:device p2
  in
  float_of_int (groups * per_group)

(** Modeled cycles for a whole LayerNorm node. *)
let layer_norm_cycles ~device ~strategy ~rows ~cols =
  let vb = device.Desc.vector_bytes in
  let groups = ceil_div rows (vb / 2) in
  let p1 = layer_norm_p1 ~device ~strategy ~cols in
  let p2 = layer_norm_p2 ~device ~strategy ~cols in
  let per_group =
    Program.static_cycles ~desc:device p1 + Program.static_cycles ~desc:device p2
  in
  float_of_int (groups * per_group)

(* ------------------------------------------------------------------ *)
(* Execution (hexagon698 only, like Testbench) *)

(** Execute Softmax on the simulated DSP: [x] row-major [rows * cols],
    [scale] the input quantization scale.  Returns the row-major int8
    output (quant 1/128) and the executed cycle count. *)
let run_softmax ~strategy ~rows ~cols ~scale x =
  let device = Desc.hexagon698 in
  let vb = device.Desc.vector_bytes in
  let half = vb / 2 and q = vb / 4 in
  let p1 = softmax_p1 ~device ~strategy ~cols ~scale in
  let p2 = softmax_p2 ~device ~strategy ~cols in
  let xt_base, _, out_base, sum_base, recip_base, mem_bytes =
    softmax_bases ~vb ~cols
  in
  let m = Machine.scratch ~mem_bytes:(max 4096 mem_bytes) () in
  let out = Array.make (rows * cols) 0 in
  let xt = Array.make (cols * vb) 0 in
  let wv = Array.make (4 * q) 0 in
  for g = 0 to ceil_div rows vb - 1 do
    let r0 = g * vb in
    let nr = min vb (rows - r0) in
    Array.fill xt 0 (Array.length xt) 0;
    for c = 0 to cols - 1 do
      for l = 0 to nr - 1 do
        xt.((c * vb) + l) <- x.(((r0 + l) * cols) + c)
      done
    done;
    Machine.write_i8_array m ~addr:xt_base xt;
    Machine.run m p1;
    let sums = Machine.read_i32_array m ~addr:sum_base ~len:vb in
    (* row r's sum: lane r/2 of the first pair (r even) or second (odd) *)
    let recip r = recip_of_sum sums.((if r land 1 = 0 then 0 else half) + (r / 2)) in
    for j = 0 to q - 1 do
      wv.(j) <- (if 2 * j < nr then recip (2 * j) else 0);
      wv.(q + j) <- (if 2 * (q + j) < nr then recip (2 * (q + j)) else 0);
      wv.((2 * q) + j) <- (if (2 * j) + 1 < nr then recip ((2 * j) + 1) else 0);
      wv.((3 * q) + j) <- (if (2 * (q + j)) + 1 < nr then recip ((2 * (q + j)) + 1) else 0)
    done;
    Machine.write_i32_array m ~addr:recip_base wv;
    Machine.run m p2;
    let buf = Machine.read_i8_array m ~addr:out_base ~len:(cols * vb) in
    for c = 0 to cols - 1 do
      for l = 0 to nr - 1 do
        let pos = if l land 1 = 0 then l / 2 else half + (l / 2) in
        out.(((r0 + l) * cols) + c) <- buf.((c * vb) + pos)
      done
    done
  done;
  (out, (Machine.counters m).Machine.cycles)

(** Execute LayerNorm on the simulated DSP: [x] row-major [rows * cols]
    at quantization [scale]; output quant [out_scale].  Returns the
    row-major int8 output and the executed cycle count. *)
let run_layer_norm ~strategy ~rows ~cols ~scale ~out_scale x =
  let device = Desc.hexagon698 in
  let vb = device.Desc.vector_bytes in
  let rows_g = vb / 2 and q = vb / 4 in
  let p1 = layer_norm_p1 ~device ~strategy ~cols in
  let p2 = layer_norm_p2 ~device ~strategy ~cols in
  let xt_base, out_base, sum_base, aff_base, mem_bytes = layer_norm_bases ~vb ~cols in
  let m = Machine.scratch ~mem_bytes:(max 4096 mem_bytes) () in
  let out = Array.make (rows * cols) 0 in
  let xt = Array.make (cols * rows_g) 0 in
  let meanv = Array.make rows_g 0 in
  let nmv = Array.make (2 * q) 0 in
  for g = 0 to ceil_div rows rows_g - 1 do
    let r0 = g * rows_g in
    let nr = min rows_g (rows - r0) in
    Array.fill xt 0 (Array.length xt) 0;
    for c = 0 to cols - 1 do
      for l = 0 to nr - 1 do
        xt.((c * rows_g) + l) <- x.(((r0 + l) * cols) + c)
      done
    done;
    Machine.write_i16_array m ~addr:xt_base xt;
    Machine.run m p1;
    let sums = Machine.read_i32_array m ~addr:sum_base ~len:vb in
    Array.fill meanv 0 rows_g 0;
    Array.fill nmv 0 (2 * q) 0;
    for l = 0 to nr - 1 do
      let mean, nm =
        layer_norm_multiplier ~scale ~out_scale ~cols ~sum:sums.(l)
          ~sumsq:sums.(rows_g + l)
      in
      meanv.(l) <- mean;
      nmv.(l) <- nm
    done;
    Machine.write_i16_array m ~addr:aff_base meanv;
    Machine.write_i32_array m ~addr:(aff_base + vb) nmv;
    Machine.run m p2;
    let buf = Machine.read_i8_array m ~addr:out_base ~len:(cols * vb) in
    for c = 0 to cols - 1 do
      for l = 0 to nr - 1 do
        out.(((r0 + l) * cols) + c) <- buf.((c * vb) + l)
      done
    done
  done;
  (out, (Machine.counters m).Machine.cycles)
