(** Budgeted kernel-shape autotuning over {!Tile.space}: heuristic
    baseline always costed first (tuned is never worse), lower-bound
    pruning before full costings, optional VM verification of the
    winner.  See the implementation's module documentation for the trace
    counters. *)

type config = {
  budget : int;  (** max full kernel costings per (problem, SIMD choice) *)
  verify : bool;
      (** run the winner on the fast VM against the heuristic kernel on
          deterministic data; fall back on mismatch.  Costs a full
          problem-size execution per tuned kernel — a debugging aid, not
          a default. *)
}

val default_budget : int

(** [{ budget = default_budget; verify = false }]. *)
val default : config

(** ["BUDGET"] or ["BUDGET+verify"] — inverse of {!of_string}. *)
val to_string : config -> string

(** Parse a request-line tune spec: a positive budget (["32"]), ["on"]
    (the default budget), ["verify"] / ["BUDGET+verify"] (VM-verify the
    winner).  [Error reason] on anything else. *)
val of_string : string -> (config, string) result

(** Best setting within budget; never worse than {!Unroll.adaptive} in
    modeled cycles.  The spec's own unroll/rotation knobs are ignored. *)
val tune : config -> Matmul.spec -> Unroll.setting
