(** Loop-unrolling selection (paper Section IV-C, "Impact of Unrolling").

    GCD2's heuristic classifies the output tensor shape into skinny /
    near-square / fat and picks a preset pair of factors: the
    output-column unroll ("Out", how many columns of C are produced per
    tile) and the reduction unroll ("Mid", how many k-groups per loop
    body).  The alternatives evaluated in the paper's Figure 12 are also
    provided: fixed single-level unrolling and exhaustive search. *)

type setting = { un : int; ug : int }

type shape_class = Skinny | Near_square | Fat

let classify ~m ~n =
  if n * 4 <= m then Skinny else if m * 4 <= n then Fat else Near_square

let shape_class_name = function
  | Skinny -> "skinny"
  | Near_square -> "near-square"
  | Fat -> "fat"

(* Clamp a column unroll to the simd's constraints and the (padded)
   problem width. *)
let clamp_un simd ~n un =
  let group = Gcd2_tensor.Layout.column_group (Simd.layout simd) in
  let np = Gcd2_util.Stats.round_up n group in
  let un = min un (Matmul.max_un simd) in
  let un = min un np in
  max group (un - (un mod group))

let clamp_ug ~k ug =
  let groups = Gcd2_util.Stats.round_up k 4 / 4 in
  (* the generators accept at most 4 unrolled k-groups *)
  max 1 (min (min ug 4) groups)

(** The GCD2 shape-adaptive heuristic.  Both factors are driven by the
    output shape through the clamps: the column unroll maxes out against
    register pressure and the (padded) output width — skinny outputs get
    small tiles, fat outputs wide ones — and the reduction unroll deepens
    to the scheduler's window except when the reduction is shallow. *)
let adaptive simd ~m ~k ~n =
  Gcd2_util.Trace.in_span "unroll" @@ fun () ->
  let un = clamp_un simd ~n (Matmul.max_un simd) in
  ignore (classify ~m ~n);
  { un; ug = clamp_ug ~k 4 }

(** "Out": unroll only the output-column loop by [factor]. *)
let fixed_out simd ~k ~n ~factor = { un = clamp_un simd ~n factor; ug = clamp_ug ~k 1 }

(** "Mid": unroll only the reduction loop by [factor]. *)
let fixed_mid simd ~k ~n ~factor =
  { un = clamp_un simd ~n 1; ug = clamp_ug ~k factor }

(** No unrolling at all. *)
let none simd ~k ~n = { un = clamp_un simd ~n 1; ug = clamp_ug ~k 1 }

(** Exhaustive grid search minimizing the generated kernel's cycle count —
    the expensive baseline of Figure 12. *)
let exhaustive (base : Matmul.spec) =
  Gcd2_util.Trace.in_span "unroll" @@ fun () ->
  let simd = base.Matmul.simd in
  let group = Gcd2_tensor.Layout.column_group (Simd.layout simd) in
  let uns =
    List.filter
      (fun u -> u mod group = 0 && u <= Matmul.max_un simd && u = clamp_un simd ~n:base.n u)
      [ 1; 2; 4; 8 ]
  in
  let ugs = List.filter (fun g -> g = clamp_ug ~k:base.k g) [ 1; 2; 3; 4 ] in
  let best = ref None in
  List.iter
    (fun un ->
      List.iter
        (fun ug ->
          let cycles = Matmul.cycles { base with Matmul.un; ug } in
          match !best with
          | Some (_, c) when c <= cycles -> ()
          | _ -> best := Some ({ un; ug }, cycles))
        ugs)
    uns;
  match !best with Some (s, _) -> s | None -> none simd ~k:base.k ~n:base.n
