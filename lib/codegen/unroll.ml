(** Loop-unrolling selection (paper Section IV-C, "Impact of Unrolling").

    GCD2's heuristic classifies the output tensor shape into skinny /
    near-square / fat and picks a preset pair of factors: the
    output-column unroll ("Out", how many columns of C are produced per
    tile) and the reduction unroll ("Mid", how many k-groups per loop
    body).  The alternatives evaluated in the paper's Figure 12 are also
    provided: fixed single-level unrolling and exhaustive search.

    A [setting] also carries the generator's register-rotation depths
    ([abuf]/[wbuf], {!Matmul.spec}); every heuristic pins them to the
    historical double-buffer depth of 2 — only the autotuner
    ({!Autotune}) searches them. *)

type setting = { un : int; ug : int; abuf : int; wbuf : int }

type shape_class = Skinny | Near_square | Fat

let classify ~m ~n =
  if n * 4 <= m then Skinny else if m * 4 <= n then Fat else Near_square

let shape_class_name = function
  | Skinny -> "skinny"
  | Near_square -> "near-square"
  | Fat -> "fat"

(* Clamp a column unroll to the simd's constraints and the (padded)
   problem width. *)
let clamp_un simd ~n un =
  let group = Gcd2_tensor.Layout.column_group (Simd.layout simd) in
  let np = Gcd2_util.Stats.round_up n group in
  let un = min un (Matmul.max_un simd) in
  let un = min un np in
  max group (un - (un mod group))

let clamp_ug ?(limit = 4) ~k ug =
  let groups = Gcd2_util.Stats.round_up k 4 / 4 in
  (* the heuristics stay within the paper's 4-group scheduler window;
     the autotuner passes [limit = Matmul.max_ug] *)
  max 1 (min (min ug limit) groups)

(** The GCD2 shape-adaptive heuristic: classify the output shape and take
    the class's preset factor pair.  Skinny and near-square outputs go
    deep on the reduction ("Mid") unroll — their column unroll is already
    throttled by the (padded) output width through the clamp — while fat
    outputs spend the budget on the output-column ("Out") unroll and keep
    the reduction window shallow. *)
let adaptive simd ~m ~k ~n =
  Gcd2_util.Trace.in_span "unroll" @@ fun () ->
  let un_pref, ug_pref =
    match classify ~m ~n with
    | Skinny | Near_square -> (Matmul.max_un simd, 4)
    | Fat -> (Matmul.max_un simd, 2)
  in
  { un = clamp_un simd ~n un_pref; ug = clamp_ug ~k ug_pref; abuf = 2; wbuf = 2 }

(** "Out": unroll only the output-column loop by [factor]. *)
let fixed_out simd ~k ~n ~factor =
  { un = clamp_un simd ~n factor; ug = clamp_ug ~k 1; abuf = 2; wbuf = 2 }

(** "Mid": unroll only the reduction loop by [factor]. *)
let fixed_mid simd ~k ~n ~factor =
  { un = clamp_un simd ~n 1; ug = clamp_ug ~k factor; abuf = 2; wbuf = 2 }

(** No unrolling at all. *)
let none simd ~k ~n =
  { un = clamp_un simd ~n 1; ug = clamp_ug ~k 1; abuf = 2; wbuf = 2 }

(** The shared (un, ug) candidate enumeration behind both the Figure-12
    exhaustive baseline and the autotuner — one helper so the two grids
    cannot drift.  [extended:false] is the paper's grid, [1;2;4;8] x
    [1..4], filtered by the clamps; [extended:true] widens it to every
    whole-group column unroll up to {!Matmul.max_un} and reduction
    unrolls up to {!Matmul.max_ug}.  Order is deterministic: columns
    outer (ascending), reduction inner (ascending) — exhaustive's
    tie-break (first minimum wins) depends on it. *)
let grid ?(extended = false) simd ~k ~n =
  let group = Gcd2_tensor.Layout.column_group (Simd.layout simd) in
  let uns =
    if extended then List.init (Matmul.max_un simd / group) (fun i -> (i + 1) * group)
    else [ 1; 2; 4; 8 ]
  in
  let uns =
    List.filter
      (fun u -> u mod group = 0 && u <= Matmul.max_un simd && u = clamp_un simd ~n u)
      uns
  in
  let limit = if extended then Matmul.max_ug else 4 in
  let ugs =
    List.filter (fun g -> g = clamp_ug ~limit ~k g) (List.init limit (fun i -> i + 1))
  in
  List.concat_map (fun un -> List.map (fun ug -> (un, ug)) ugs) uns

(** Exhaustive grid search minimizing the generated kernel's cycle count —
    the expensive baseline of Figure 12. *)
let exhaustive (base : Matmul.spec) =
  Gcd2_util.Trace.in_span "unroll" @@ fun () ->
  let simd = base.Matmul.simd in
  let best = ref None in
  List.iter
    (fun (un, ug) ->
      let cycles = Matmul.cycles { base with Matmul.un; ug; abuf = 2; wbuf = 2 } in
      match !best with
      | Some (_, c) when c <= cycles -> ()
      | _ -> best := Some ({ un; ug; abuf = 2; wbuf = 2 }, cycles))
    (grid simd ~k:base.k ~n:base.n);
  match !best with Some (s, _) -> s | None -> none simd ~k:base.k ~n:base.n
