(** Matmul kernel generators, one per SIMD choice (paper Figure 2): lower
    C = A (MxK) * W (KxN) with int8 operands, int32 accumulation,
    fixed-point requantization and optional fused activation into a
    loop-tree of VLIW packets.  Generated code is bit-exact against
    {!Gcd2_kernels.Interp.matmul_i8} (the test suite executes it). *)

open Gcd2_isa
module Packer = Gcd2_sched.Packer

type addressing =
  | Bump  (** pointer increments folded into immediates (GCD2's codegen) *)
  | Recompute
      (** generic loop-nest lowering: every access re-derives its address
          through the scalar unit (models the stock compilers) *)

type spec = {
  device : Gcd2_devices.Desc.t;
      (** target device (vector width, slots, latencies) — part of the
          memo key of {!cycles}, so two devices never share a costing *)
  simd : Simd.t;
  m : int;
  k : int;
  n : int;
  mult : int;  (** requantization fixed-point multiplier *)
  shift : int;
  act_table : int option;  (** table id of a fused-activation [Vlut] *)
  strategy : Packer.strategy;
  un : int;  (** output-column unroll *)
  ug : int;  (** reduction k-group unroll *)
  abuf : int;  (** activation-register rotation depth (historically 2) *)
  wbuf : int;  (** weight-register rotation depth per column (historically 2) *)
  addressing : addressing;
}

type buffers = { a_base : int; w_base : int; c_base : int }

(** Register-pressure bound on the column unroll. *)
val max_un : Simd.t -> int

(** Deepest reduction unroll the generators accept (the heuristics stay
    within the paper's window of 4; the autotuner may go to this). *)
val max_ug : int

(** Deepest register rotation ([abuf]/[wbuf]) the generators accept. *)
val max_rot : int

(** Raises [Invalid_argument] on out-of-range unroll / rotation knobs. *)
val validate_spec : spec -> unit

(** Scalar and vector registers one kernel instantiation claims,
    mirroring the generators' allocation order (pair alignment
    included). *)
val reg_demand : ?per_channel:bool -> spec -> int * int

(** Does {!reg_demand} fit the device's register files?  Heuristic
    settings fit by construction; autotuner candidates must check. *)
val fits_registers : ?per_channel:bool -> spec -> bool

(** Generate the kernel program ([tables] must hold the fused-activation
    table when [act_table] is set).  [per_channel] enables per-output-
    channel requantization: [(mults, shift)] from
    {!Gcd2_tensor.Quant.per_channel_requant}, with the multiplier vectors
    prepacked at [q_base] ({!Weights.prepack_channel_mults}); the uniform
    [mult]/[shift] of the spec are then ignored.  Raises on invalid unroll
    settings. *)
val generate :
  ?tables:(int * int array) list ->
  ?per_channel:int array * int ->
  ?q_base:int ->
  spec ->
  buffers ->
  Program.t

(** Static cycles of the kernel (buffer addresses do not affect it). *)
val cycles : spec -> int
