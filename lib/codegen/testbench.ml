(** Convenience driver: stage a matmul's operands into a simulator, run the
    generated kernel, and return the logical row-major result.  Used by the
    test suite, the examples and the benchmark harness. *)

module Machine = Gcd2_vm.Machine

type result = {
  data : int array;  (** logical row-major M x N int8 output *)
  cycles : int;
  packets : int;
  macs : int;
}

(** [run spec ~a ~w] — [a] row-major M x K, [w] row-major K x N.
    [per_channel] stages prepacked multiplier vectors and generates the
    per-channel-requantizing kernel. *)
let run ?(tables = []) ?per_channel (spec : Matmul.spec) ~a ~w =
  let packed_a = Weights.pack_activations spec.Matmul.simd ~m:spec.m ~k:spec.k a in
  let packed_w = Weights.prepack spec.simd ~k:spec.k ~n:spec.n w in
  let out_bytes = Weights.output_bytes spec.simd ~m:spec.m ~n:spec.n in
  let align x = Gcd2_util.Stats.round_up x 128 in
  let a_base = 0 in
  let w_base = align (a_base + Array.length packed_a) in
  let c_base = align (w_base + Array.length packed_w) in
  let packed_q =
    match per_channel with
    | None -> [||]
    | Some (mults, _) -> Weights.prepack_channel_mults spec.simd ~n:spec.n mults
  in
  let q_base = align (c_base + out_bytes) in
  let mem_bytes = align (q_base + Array.length packed_q) + 256 in
  let m = Machine.scratch ~mem_bytes:(max mem_bytes 4096) () in
  Machine.write_i8_array m ~addr:a_base packed_a;
  Machine.write_i8_array m ~addr:w_base packed_w;
  if Array.length packed_q > 0 then Machine.write_i8_array m ~addr:q_base packed_q;
  let prog =
    Matmul.generate ~tables ?per_channel ~q_base spec { Matmul.a_base; w_base; c_base }
  in
  Machine.run m prog;
  let raw = Machine.read_i8_array m ~addr:c_base ~len:out_bytes in
  let data = Weights.unpack_output spec.simd ~m:spec.m ~n:spec.n raw in
  let c = Machine.counters m in
  { data; cycles = c.Machine.cycles; packets = c.Machine.packets; macs = c.Machine.macs }
