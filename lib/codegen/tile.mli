(** The searchable codegen-shape space behind the autotuner: validated
    candidates (spec invariants, register files, VTCM working set) and a
    cheap packing lower bound for incumbent-relative pruning. *)

(** VTCM working set of one output tile streaming through a panel
    (activation strip, prepacked weight streams, output vectors,
    in-flight rotation windows). *)
val footprint_bytes : Matmul.spec -> int

(** Spec invariants + register files + VTCM capacity. *)
val feasible : ?per_channel:bool -> Matmul.spec -> bool

(** Every feasible {!Unroll.setting} for the spec's problem, most
    promising first (deep/wide unrolls lead; rotations fan out from the
    historical (2,2)).  Deterministic; built on {!Unroll.grid}. *)
val space : Matmul.spec -> Unroll.setting list

(** Trip-weighted instruction counts per class
    ({!Gcd2_devices.Desc.iclass_count} entries, {!Gcd2_isa.Iclass.index}
    order); deliberately partial so the bound below stays sound. *)
val class_counts : Matmul.spec -> int array

(** Lower bound on the kernel's packed cycles — always
    [<= Matmul.cycles s].  Per-class counts over slot capacity, and the
    total over the packet width. *)
val lower_bound : Matmul.spec -> int
