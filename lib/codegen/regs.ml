(** Tiny bump allocator for physical registers used while emitting a
    kernel.  Kernels are generated with unroll factors already bounded by
    {!Unroll}, so exhaustion means a generator bug; we raise rather than
    spill (the unroll heuristic's job is precisely to stay within the
    register file — paper Section IV-C, "Impact of Unrolling"). *)

module Reg = Gcd2_isa.Reg
module Desc = Gcd2_devices.Desc

exception Out_of_registers of string

type t = {
  mutable next_scalar : int;
  mutable next_vector : int;
  scalar_limit : int;
  vector_limit : int;
}

(* r0/r1 are reserved as always-zero / scratch conventions are not needed;
   allocate everything from 0.  The register-file sizes come from the
   device descriptor (the default matches {!Reg.scalar_count} /
   {!Reg.vector_count}). *)
let create ?(desc = Desc.hexagon698) () =
  {
    next_scalar = 0;
    next_vector = 0;
    scalar_limit = desc.Desc.scalar_count;
    vector_limit = desc.Desc.vector_count;
  }

let scalar t =
  if t.next_scalar >= t.scalar_limit then raise (Out_of_registers "scalar");
  let r = Reg.R t.next_scalar in
  t.next_scalar <- t.next_scalar + 1;
  r

let vector t =
  if t.next_vector >= t.vector_limit then raise (Out_of_registers "vector");
  let v = Reg.V t.next_vector in
  t.next_vector <- t.next_vector + 1;
  v

(** Allocate an aligned even/odd pair; returns the pair register. *)
let pair t =
  if t.next_vector mod 2 = 1 then t.next_vector <- t.next_vector + 1;
  if t.next_vector + 2 > t.vector_limit then raise (Out_of_registers "vector pair");
  let p = Reg.P (t.next_vector / 2) in
  t.next_vector <- t.next_vector + 2;
  p

(** Low/high vector halves of a pair. *)
let halves = function
  | Reg.P k -> (Reg.V (2 * k), Reg.V ((2 * k) + 1))
  | r -> invalid_arg (Fmt.str "Regs.halves: %a is not a pair" Reg.pp r)

(** Remaining capacity, used by the unroll limiter. *)
let free_vectors t = t.vector_limit - t.next_vector
let free_scalars t = t.scalar_limit - t.next_scalar
