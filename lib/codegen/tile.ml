(** The searchable codegen-shape space behind the autotuner.

    A candidate is a full {!Unroll.setting}: the output-column ("Out")
    and reduction ("Mid") unrolls of the paper's Figure 12 plus the
    generators' register-rotation depths ([abuf]/[wbuf]), which the
    heuristics pin to the historical double-buffer depth of 2.  The
    space is validated, not merely enumerated — a candidate must

    - satisfy the generator's spec invariants ({!Matmul.validate_spec}),
    - fit the device's register files ({!Matmul.fits_registers}), and
    - keep the tile's working set within VTCM
      ({!Gcd2_devices.Desc.t.vtcm_bytes});

    and each one carries a cheap packing lower bound so the tuner can
    discard candidates that cannot beat its incumbent without paying for
    kernel generation. *)

module Desc = Gcd2_devices.Desc
module Stats = Gcd2_util.Stats

(* ------------------------------------------------------------------ *)
(* VTCM working set                                                    *)

(** Bytes the kernel keeps live in VTCM while one output tile streams
    through a panel: the panel's activation strip (the full padded
    reduction extent — the k loop re-reads it per panel), the prepacked
    weight streams of the [un] unrolled columns, the tile's output
    vectors, and the in-flight rotation windows ([abuf] activation
    vectors, [wbuf] weight words per column).  Deliberately excludes
    whole-tensor staging: that is the scheduler's concern, not the
    kernel's. *)
let footprint_bytes (s : Matmul.spec) =
  let vb = s.device.Desc.vector_bytes in
  let kp, _ = Weights.padded_kn s.simd ~k:s.k ~n:s.n in
  let panel = Simd.panel_rows ~desc:s.device s.simd in
  let group = Gcd2_tensor.Layout.column_group (Simd.layout s.simd) in
  let act_strip = panel * kp in
  let weights = s.un * Weights.column_stride s.simd ~k:s.k in
  let out = Stats.ceil_div s.un group * vb in
  let in_flight = (s.abuf * 4 * vb) + (s.un * s.wbuf * 4) in
  act_strip + weights + out + in_flight

(* ------------------------------------------------------------------ *)
(* Feasibility                                                         *)

(** Is the spec one the generator accepts, that fits the register files,
    and whose working set fits VTCM?  The tuner only costs feasible
    candidates; the qcheck suite checks every feasible candidate really
    generates. *)
let feasible ?per_channel (s : Matmul.spec) =
  match Matmul.validate_spec s with
  | exception Invalid_argument _ -> false
  | () ->
    Matmul.fits_registers ?per_channel s
    && footprint_bytes s <= s.device.Desc.vtcm_bytes

(* ------------------------------------------------------------------ *)
(* Candidate space                                                     *)

(* Rotation-depth pairs, nearest the historical (2,2) first: the
   incumbent-relative pruning works best when early candidates are
   likely winners. *)
let rotations =
  let all =
    List.concat_map
      (fun a -> List.map (fun w -> (a, w)) (List.init Matmul.max_rot (fun i -> i + 1)))
      (List.init Matmul.max_rot (fun i -> i + 1))
  in
  let dist (a, w) = abs (a - 2) + abs (w - 2) in
  List.stable_sort (fun p q -> compare (dist p, p) (dist q, q)) all

(** Every feasible {!Unroll.setting} for [base]'s problem, most
    promising first: deep reduction unrolls and wide column unrolls
    lead (longer straight-line blocks pack denser under zero-overhead
    loops), rotation depths fan out from the historical (2,2).  The
    order is deterministic; the unroll grid is shared with the
    Figure-12 exhaustive baseline ({!Unroll.grid}). *)
let space (base : Matmul.spec) =
  let grid = Unroll.grid ~extended:true base.Matmul.simd ~k:base.Matmul.k ~n:base.Matmul.n in
  let grid =
    List.stable_sort (fun (un, ug) (un', ug') -> compare (-ug, -un) (-ug', -un')) grid
  in
  List.concat_map
    (fun (un, ug) ->
      List.filter_map
        (fun (abuf, wbuf) ->
          let setting = { Unroll.un; ug; abuf; wbuf } in
          if feasible { base with Matmul.un; ug; abuf; wbuf } then Some setting else None)
        rotations)
    grid

(* ------------------------------------------------------------------ *)
(* Packing lower bound                                                 *)

(* Trip-weighted instruction counts per class for the generators' loop
   structure (mirrors Matmul's emit_* shapes).  Counting is deliberately
   partial — init blocks, pointer bumps and per-channel extras are
   omitted — so dividing by slot capacity stays a true lower bound. *)
let class_counts (s : Matmul.spec) =
  let kp, np = Weights.padded_kn s.simd ~k:s.k ~n:s.n in
  let panel = Simd.panel_rows ~desc:s.device s.simd in
  let panels = Stats.round_up s.m panel / panel in
  let groups = kp / 4 in
  let act = match s.act_table with Some _ -> 1 | None -> 0 in
  (* one panel pass of a tile of [width] output columns; the k loop
     always computes [s.un] columns (remainder tiles only narrow the
     zero/epilogue blocks, mirroring the generators) *)
  let per_panel width =
    let counts = Array.make Desc.iclass_count 0 in
    let add c n = counts.(Gcd2_isa.Iclass.index c) <- counts.(Gcd2_isa.Iclass.index c) + n in
    (match s.simd with
    | Simd.I_vmpy ->
      add Gcd2_isa.Iclass.Ld (groups * (s.un + 4));
      add Gcd2_isa.Iclass.Vmpy ((groups * 4 * s.un) + (4 * width));
      add Gcd2_isa.Iclass.Valu ((groups * 6 * s.un) + (3 * width));
      add Gcd2_isa.Iclass.Vshift (3 * width);
      add Gcd2_isa.Iclass.Vperm ((1 + act) * width);
      add Gcd2_isa.Iclass.St width
    | Simd.I_vmpa ->
      let pairs = width / 2 in
      add Gcd2_isa.Iclass.Ld (groups * (s.un + 2));
      add Gcd2_isa.Iclass.Vmpy_deep (groups * s.un);
      add Gcd2_isa.Iclass.Vmpy (4 * pairs);
      add Gcd2_isa.Iclass.Valu ((groups * 3 * s.un) + (2 * pairs) + (3 * width));
      add Gcd2_isa.Iclass.Vshift (3 * pairs);
      add Gcd2_isa.Iclass.Vperm ((1 + act) * pairs);
      add Gcd2_isa.Iclass.St pairs
    | Simd.I_vrmpy ->
      let quads = width / 4 in
      add Gcd2_isa.Iclass.Ld (groups * (s.un + 1));
      add Gcd2_isa.Iclass.Vmpy_deep (groups * s.un);
      add Gcd2_isa.Iclass.Vmpy (4 * quads);
      add Gcd2_isa.Iclass.Valu width;
      add Gcd2_isa.Iclass.Vshift (3 * quads);
      add Gcd2_isa.Iclass.Vperm ((3 + act) * quads);
      add Gcd2_isa.Iclass.St quads);
    counts
  in
  let totals = Array.make Desc.iclass_count 0 in
  let accumulate trips arr = Array.iteri (fun i n -> totals.(i) <- totals.(i) + (trips * n)) arr in
  let full_tiles = np / s.un and rem = np mod s.un in
  if full_tiles > 0 then accumulate (full_tiles * panels) (per_panel s.un);
  if rem > 0 then accumulate panels (per_panel rem);
  totals

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 m

(** A cheap lower bound on the kernel's packed cycles.  A packet costs
    its maximum member latency plus intra-packet stalls
    ({!Gcd2_isa.Packet.cycles}), so two ratios are unbeatable by any
    schedule:

    - per class, at least [ceil (count / issue-slots)] distinct packets
      carry the class, and each of those costs at least the class's
      latency;
    - per slot subset [S], the classes whose masks lie inside [S] share
      its [|S|] issue slots, so at least [ceil (sum / |S|)] packets
      carry one of them, each costing at least the cheapest latency
      among those classes ([S] = all slots is the packet-width bound).

    All terms undercount (init blocks, pointer bumps, per-channel extras
    and every stall are omitted), so the maximum stays a true lower
    bound — strictly [<= Matmul.cycles s] (the qcheck suite enforces
    it).  The tuner prunes candidates whose bound already exceeds the
    incumbent. *)
let lower_bound (s : Matmul.spec) =
  let counts = class_counts s in
  let d = s.device in
  let best = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        let slots = max 1 (popcount d.Desc.slot_masks.(i)) in
        let lat = max 1 d.Desc.latencies.(i) in
        best := max !best (Stats.ceil_div n slots * lat)
      end)
    counts;
  for sset = 1 to (1 lsl d.Desc.slot_count) - 1 do
    let sum = ref 0 and min_lat = ref max_int in
    Array.iteri
      (fun i n ->
        if n > 0 && d.Desc.slot_masks.(i) land lnot sset = 0 then begin
          sum := !sum + n;
          min_lat := min !min_lat (max 1 d.Desc.latencies.(i))
        end)
      counts;
    if !sum > 0 then best := max !best (Stats.ceil_div !sum (popcount sset) * !min_lat)
  done;
  !best
