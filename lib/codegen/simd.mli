(** The SIMD multiply instruction choices and the layout each requires
    (paper Section III). *)

module Layout = Gcd2_tensor.Layout

type t = I_vmpy | I_vmpa | I_vrmpy

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit

(** Layout required for activations and produced for outputs. *)
val layout : t -> Layout.t

val of_layout : Layout.t -> t option

(** Rows per vector operation (the layout's panel height on the device;
    default {!Gcd2_devices.Desc.hexagon698}). *)
val panel_rows : ?desc:Gcd2_devices.Desc.t -> t -> int

(** Reduction-dimension padding granularity (4 for all kernels: one
    weight word covers four reduction steps). *)
val k_pad : t -> int

(** Padded M, K, N for C = A(MxK) * W(KxN) under this choice. *)
val padded_mkn : ?desc:Gcd2_devices.Desc.t -> t -> m:int -> k:int -> n:int -> int * int * int

(** Total padded int8 bytes of A, W and C (the paper's Table II "Total
    Data Size w/ Pad"). *)
val padded_data_bytes : ?desc:Gcd2_devices.Desc.t -> t -> m:int -> k:int -> n:int -> int
