(** Compile-time weight prepacking and activation/output staging for the
    matmul kernels: weights become 4-byte words the kernels [Sload]
    directly into the multiplies' scalar operands (byte orders per
    instruction; see the implementation notes). *)

(** K and N as the kernel iterates them (padded). *)
val padded_kn : Simd.t -> k:int -> n:int -> int * int

(** [prepack simd ~k ~n w] — [w] row-major K x N; result is the byte
    buffer of packed weight words. *)
val prepack : Simd.t -> k:int -> n:int -> int array -> int array

val prepacked_bytes : Simd.t -> k:int -> n:int -> int

(** Byte stride between consecutive output columns' weight streams. *)
val column_stride : Simd.t -> k:int -> int

(** Pack an M x K activation matrix (kernel layout, K padded). *)
val pack_activations : Simd.t -> m:int -> k:int -> int array -> int array

val activation_bytes : ?desc:Gcd2_devices.Desc.t -> Simd.t -> m:int -> k:int -> int

(** Output buffer size (int8, layout-padded M x N). *)
val output_bytes : ?desc:Gcd2_devices.Desc.t -> Simd.t -> m:int -> n:int -> int

(** Recover the logical row-major M x N matrix from the output buffer. *)
val unpack_output : Simd.t -> m:int -> n:int -> int array -> int array

(** Prepack per-channel requantization multipliers as the vectors the
    kernels' [Vscalev] epilogues load (see {!Matmul.generate}). *)
val prepack_channel_mults : Simd.t -> n:int -> int array -> int array
