(** Matmul kernel generators — one per SIMD choice (paper Figure 2).

    Each generator lowers C = A (MxK) * W (KxN) with int8 operands, int32
    accumulation, fixed-point requantization and optional fused activation
    into a loop-tree of VLIW packets.  A and C live in the SIMD choice's
    layout ({!Simd.layout}); W is prepacked by {!Weights}.

    Loop structure (all three kernels):
    {v
      for tile of [un] output columns:        (weights held in scalar regs)
        for panel of rows:                    (panel height = layout's)
          zero accumulators
          for k-group:                        ([ug] groups unrolled)
            load activation vector(s), load weight words, multiply
          requantize + permute + store the output vectors
    v}

    The reduction ("Mid") unroll [ug] and the output-column ("Out") unroll
    [un] are the two factors of the paper's Figure 12. *)

open Gcd2_isa
module Packer = Gcd2_sched.Packer
module Stats = Gcd2_util.Stats
module Desc = Gcd2_devices.Desc

type addressing =
  | Bump  (** pointer increments folded into immediates (GCD2's codegen) *)
  | Recompute
      (** every memory access recomputes its address through the scalar
          unit — the generic loop-nest lowering of compilers that do not
          specialize addressing to the layout *)

(* [spec] is the memo key of [cycles] (Gcd2_util.Memo): it must stay pure
   data and keep determining the emitted loop nest completely — a new
   field that changes generation enters the key automatically *because*
   the whole record is the key; never memoize on a projection of it. *)
type spec = {
  device : Desc.t;  (** target device (vector width, slots, latencies) *)
  simd : Simd.t;
  m : int;
  k : int;
  n : int;
  mult : int;  (** requantization fixed-point multiplier *)
  shift : int;  (** requantization shift *)
  act_table : int option;  (** table id of a fused-activation [Vlut] *)
  strategy : Packer.strategy;
  un : int;  (** output-column unroll *)
  ug : int;  (** reduction k-group unroll *)
  abuf : int;  (** activation-register rotation depth (historically 2) *)
  wbuf : int;  (** weight-register rotation depth per column (historically 2) *)
  addressing : addressing;
}

type buffers = { a_base : int; w_base : int; c_base : int }

(** Registers-per-column requirements limit the column unroll. *)
let max_un = function Simd.I_vmpy -> 4 | Simd.I_vmpa -> 4 | Simd.I_vrmpy -> 8

(** Deepest reduction unroll the generators accept.  The shape-driven
    heuristics stay within the paper's scheduler window of 4
    ({!Unroll.clamp_ug}); the autotuner may go deeper. *)
let max_ug = 8

(** Deepest register-rotation the generators accept for either operand
    stream.  Depth 2 is the historical double-buffer; deeper rotation
    lengthens the reuse distance the packer must respect, shallower
    (depth 1) serializes every load against the previous use. *)
let max_rot = 4

(* Unroll values must respect the output-column grouping so that a tile
   always produces whole output vectors. *)
let group_of simd = Gcd2_tensor.Layout.column_group (Simd.layout simd)

let validate_spec s =
  if s.m <= 0 || s.k <= 0 || s.n <= 0 then invalid_arg "Matmul: dimensions must be positive";
  if s.un <= 0 || s.un > max_un s.simd then invalid_arg "Matmul: bad column unroll";
  if s.un mod group_of s.simd <> 0 then invalid_arg "Matmul: unroll must cover whole groups";
  if s.ug <= 0 || s.ug > max_ug then invalid_arg "Matmul: bad k unroll";
  if s.abuf <= 0 || s.abuf > max_rot then invalid_arg "Matmul: bad activation rotation";
  if s.wbuf <= 0 || s.wbuf > max_rot then invalid_arg "Matmul: bad weight rotation"

(* Register demand of one kernel instantiation, mirroring the allocation
   order of the generators below exactly (including the even alignment a
   vector pair forces).  Any register the generators claim must be
   counted here — the qcheck suite cross-checks this against actual
   generation, so the two cannot drift silently. *)
let reg_demand ?(per_channel = false) s =
  let scalars =
    2 (* ra, r_out *) + s.un (* rw *)
    + (s.un * s.wbuf) (* rwv *)
    + (match s.addressing with Bump -> 0 | Recompute -> 2)
    + if per_channel then 1 else 0
  in
  let pair_align n = n + (n mod 2) in
  let vectors =
    match s.simd with
    | Simd.I_vmpy ->
      (* va singles, then pairs (pk + 3 per column), outv, pc.vq *)
      pair_align s.abuf + 2 + (6 * s.un) + 1 + if per_channel then 1 else 0
    | Simd.I_vmpa ->
      (* va is abuf pairs *)
      (2 * s.abuf) + 2 + (6 * s.un) + 1 + if per_channel then 1 else 0
    | Simd.I_vrmpy ->
      (* va singles, acc pairs (un/2), the pack pair, outv, pc.vq/vq2 *)
      pair_align s.abuf + s.un + 2 + 1 + if per_channel then 2 else 0
  in
  (scalars, vectors)

(** Does the spec's register demand fit the device's register files?
    The unroll heuristics stay inside by construction; the autotuner's
    deeper rotations and unrolls must check. *)
let fits_registers ?per_channel s =
  let scalars, vectors = reg_demand ?per_channel s in
  scalars <= s.device.Desc.scalar_count && vectors <= s.device.Desc.vector_count

(* ------------------------------------------------------------------ *)
(* Common generator skeleton                                           *)

(* Per-simd parameters wired into the skeleton. *)
type kernel_shape = {
  panel : int;  (** rows per panel *)
  k_per_group : int;  (** reduction columns consumed per k-group *)
  group_bytes : int;  (** activation bytes consumed per k-group *)
}

(* Panel height is one vector load's worth of rows; a k-group always
   spans 4 reduction columns, so its activation footprint is the panel
   times 4 columns — [vector_bytes]-proportional throughout (the default
   128-byte device gives the paper's 512/256/128). *)
let shape_of (d : Desc.t) simd =
  let vb = d.Desc.vector_bytes in
  match simd with
  | Simd.I_vmpy -> { panel = vb; k_per_group = 4; group_bytes = 4 * vb }
  | Simd.I_vmpa -> { panel = vb / 2; k_per_group = 4; group_bytes = 2 * vb }
  | Simd.I_vrmpy -> { panel = vb / 4; k_per_group = 4; group_bytes = vb }

(* Address scratch registers for the Recompute mode (round-robin pair so
   consecutive loads keep some ILP). *)
type addr_regs = { scratch : Reg.t array; mutable next : int }

(* Per-channel requantization state: a pointer into the prepacked
   multiplier-vector buffer, vector registers holding the current
   multiplier vectors, and the common shift. *)
type pc_info = {
  r_q : Reg.t;
  mutable vq : Reg.t;  (* allocated after the kernel's accumulators *)
  mutable vq2 : Reg.t option;
  q_shift : int;
}

(* State threaded through one kernel instantiation. *)
type ctx = {
  s : spec;
  ks : kernel_shape;
  kp : int;  (** padded K *)
  np : int;  (** padded N *)
  panels : int;
  groups : int;  (** total k-groups = kp / k_per_group *)
  w_stride : int;  (** weight bytes per output column *)
  ra : Reg.t;
  r_out : Reg.t;
  rw : Reg.t array;  (** one weight pointer per unrolled column *)
  rwv : Reg.t array array;  (** weight value regs, [column].(group mod wbuf) *)
  addr : addr_regs option;
  pc : pc_info option;  (** per-channel requantization, when enabled *)
  q_base : int;
}

(* Emit a scalar or vector load; under Recompute addressing, materialize
   the effective address through the scalar ALU first. *)
let emit_load ctx e kind dst base offset =
  let do_load base offset =
    match kind with
    | `Vector -> Emit.vload e dst base offset
    | `Scalar -> Emit.sload e dst base offset
  in
  match ctx.addr with
  | None -> do_load base offset
  | Some a ->
    (* affine index arithmetic: scale the index, add the base *)
    let r = a.scratch.(a.next) in
    a.next <- (a.next + 1) mod Array.length a.scratch;
    Emit.emit e (Gcd2_isa.Instr.Smul (r, base, Gcd2_isa.Instr.Imm 1));
    Emit.addi e r r offset;
    do_load r 0

let make_ctx s =
  validate_spec s;
  let ks = shape_of s.device s.simd in
  let kp, np = Weights.padded_kn s.simd ~k:s.k ~n:s.n in
  let mp = Stats.round_up s.m ks.panel in
  {
    s;
    ks;
    kp;
    np;
    panels = mp / ks.panel;
    groups = kp / ks.k_per_group;
    w_stride = Weights.column_stride s.simd ~k:s.k;
    ra = Reg.R 0 (* placeholders, replaced below *);
    r_out = Reg.R 0;
    rw = [||];
    rwv = [||];
    addr = None;
    pc = None;
    q_base = 0;
  }

let with_regs ?per_channel ?(q_base = 0) ctx pool ~ra ~r_out ~rw ~rwv =
  let addr =
    match ctx.s.addressing with
    | Bump -> None
    | Recompute -> Some { scratch = [| Regs.scalar pool; Regs.scalar pool |]; next = 0 }
  in
  let pc =
    match per_channel with
    | None -> None
    | Some (_, q_shift) ->
      (* the multiplier vectors are allocated by [alloc_pc_vectors] after
         the kernel claims its accumulators, to avoid pair-alignment waste *)
      Some { r_q = Regs.scalar pool; vq = Reg.V 0; vq2 = None; q_shift }
  in
  { ctx with ra; r_out; rw; rwv; addr; pc; q_base }

(* Claim the per-channel multiplier vector registers (call once all other
   vector registers are allocated). *)
let alloc_pc_vectors ctx pool =
  match ctx.pc with
  | None -> ()
  | Some pc ->
    pc.vq <- Regs.vector pool;
    if ctx.s.simd = Simd.I_vrmpy then pc.vq2 <- Some (Regs.vector pool)

(* ------------------------------------------------------------------ *)
(* vmpy (1-column layout)                                              *)

(* Column-j accumulator set for vmpy/vmpa: a 16-bit scratch pair and two
   32-bit pairs (even/odd lanes or k-even/k-odd partials). *)
type wide_accs = { tmp : Reg.t; acc_e : Reg.t; acc_o : Reg.t }

(* Scale a list of 32-bit vector halves belonging to output column [j]
   (tile-relative): uniform immediates, or a per-channel multiplier vector
   loaded from the prepacked buffer. *)
let emit_scale_column e ctx ~j halves =
  match ctx.pc with
  | None ->
    let sc = (ctx.s.mult, ctx.s.shift) in
    List.iter (fun h -> Emit.vscale e h h sc) halves
  | Some pc ->
    let vb = ctx.s.device.Desc.vector_bytes in
    Emit.vload e pc.vq pc.r_q (j * vb);
    List.iter (fun h -> Emit.emit e (Instr.Vscalev (h, h, pc.vq, pc.q_shift))) halves

let emit_requant_store_wide e ctx ~j ~pk ~outv ~accs ~store_offset =
  (* Shared by vmpy and vmpa: both end with two 32-bit pairs whose packed
     halves interleave (W16) into the final output vector; all lanes
     belong to one output column. *)
  let e_lo, e_hi = Regs.halves accs.acc_e and o_lo, o_hi = Regs.halves accs.acc_o in
  emit_scale_column e ctx ~j [ e_lo; e_hi; o_lo; o_hi ];
  let pk_lo, pk_hi = Regs.halves pk in
  Emit.vpack e pk_lo accs.acc_e Instr.W32;
  Emit.vpack e pk_hi accs.acc_o Instr.W32;
  Emit.vshuff e accs.tmp pk Instr.W16;
  Emit.vpack e outv accs.tmp Instr.W16;
  (match ctx.s.act_table with Some id -> Emit.vlut e outv outv id | None -> ());
  Emit.vstore e ctx.r_out store_offset outv

let generate_vmpy ?per_channel ?q_base ctx (b : buffers) =
  let s = ctx.s in
  let desc = s.device in
  let vb = desc.Desc.vector_bytes in
  let pool = Regs.create ~desc () in
  let ra = Regs.scalar pool and r_out = Regs.scalar pool in
  let rw = Array.init s.un (fun _ -> Regs.scalar pool) in
  let rwv = Array.init s.un (fun _ -> Array.init s.wbuf (fun _ -> Regs.scalar pool)) in
  let ctx = with_regs ?per_channel ?q_base ctx pool ~ra ~r_out ~rw ~rwv in
  let va = Array.init s.abuf (fun _ -> Regs.vector pool) in
  let pk = Regs.pair pool in
  let accs =
    Array.init s.un (fun _ ->
        { tmp = Regs.pair pool; acc_e = Regs.pair pool; acc_o = Regs.pair pool })
  in
  let outv = Regs.vector pool in
  alloc_pc_vectors ctx pool;
  let strategy = s.strategy in
  (* One k-group = 4 reduction steps sharing a single weight word per
     column ([Vmpyb] selects the byte); the 16-bit scratch drains into the
     32-bit accumulators every 2 steps (two int8 products fit in 16 bits
     without saturating). *)
  let emit_group e g_idx =
    for j = 0 to s.un - 1 do
      emit_load ctx e `Scalar ctx.rwv.(j).(g_idx mod s.wbuf) ctx.rw.(j) (g_idx * 4)
    done;
    for half = 0 to 1 do
      for d = 0 to 1 do
        let sel = (2 * half) + d in
        let step = (4 * g_idx) + sel in
        emit_load ctx e `Vector va.(step mod s.abuf) ctx.ra (step * vb);
        for j = 0 to s.un - 1 do
          Emit.emit e
            (Instr.Vmpyb
               (accs.(j).tmp, va.(step mod s.abuf), ctx.rwv.(j).(g_idx mod s.wbuf), sel))
        done
      done;
      for j = 0 to s.un - 1 do
        let t_lo, t_hi = Regs.halves accs.(j).tmp in
        Emit.vaddw e accs.(j).acc_e t_lo;
        Emit.vaddw e accs.(j).acc_o t_hi;
        Emit.vzero e accs.(j).tmp
      done
    done
  in
  let k_block n_groups =
    let e = Emit.create () in
    for g = 0 to n_groups - 1 do
      emit_group e g
    done;
    Emit.bump e ctx.ra (n_groups * ctx.ks.group_bytes);
    Array.iter (fun r -> Emit.bump e r (n_groups * 4)) ctx.rw;
    Emit.block ~desc ~strategy e
  in
  let zero_block width =
    let e = Emit.create () in
    for j = 0 to width - 1 do
      Emit.vzero e accs.(j).tmp;
      Emit.vzero e accs.(j).acc_e;
      Emit.vzero e accs.(j).acc_o
    done;
    Emit.block ~desc ~strategy e
  in
  let epilogue_block width =
    let e = Emit.create () in
    for j = 0 to width - 1 do
      emit_requant_store_wide e ctx ~j ~pk ~outv ~accs:accs.(j) ~store_offset:(j * vb)
    done;
    (* next panel: weights restart, output advances one panel row-stride *)
    Array.iter (fun r -> Emit.bump e r (- (4 * ctx.groups))) ctx.rw;
    Emit.bump e ctx.r_out (ctx.ks.panel * ctx.np);
    Emit.block ~desc ~strategy e
  in
  let panel_loop width =
    let full = ctx.groups / s.ug and rest = ctx.groups mod s.ug in
    let body =
      [ zero_block width ]
      @ (if full > 0 then [ Emit.loop ~trip:full [ k_block s.ug ] ] else [])
      @ (if rest > 0 then [ k_block rest ] else [])
      @ [ epilogue_block width ]
    in
    Emit.loop ~trip:ctx.panels body
  in
  let tile_bumps width =
    let e = Emit.create () in
    Emit.bump e ctx.ra (-ctx.ks.panel * ctx.kp * ctx.panels);
    Array.iter (fun r -> Emit.bump e r (width * ctx.w_stride)) ctx.rw;
    Emit.bump e ctx.r_out ((width * vb) - (ctx.ks.panel * ctx.np * ctx.panels));
    (match ctx.pc with Some pc -> Emit.bump e pc.r_q (width * vb) | None -> ());
    Emit.block ~desc ~strategy e
  in
  let init =
    let e = Emit.create () in
    Emit.movi e ctx.ra b.a_base;
    Emit.movi e ctx.r_out b.c_base;
    Array.iteri (fun j r -> Emit.movi e r (b.w_base + (j * ctx.w_stride))) ctx.rw;
    (match ctx.pc with Some pc -> Emit.movi e pc.r_q ctx.q_base | None -> ());
    Emit.block ~desc ~strategy e
  in
  let full_tiles = ctx.np / s.un and rem = ctx.np mod s.un in
  let segments =
    (if full_tiles > 0 then
       [ Emit.loop ~trip:full_tiles [ panel_loop s.un; tile_bumps s.un ] ]
     else [])
    @ if rem > 0 then [ panel_loop rem; tile_bumps rem ] else []
  in
  (init :: segments, pool)

(* ------------------------------------------------------------------ *)
(* vmpa (2-column layout)                                              *)

let generate_vmpa ?per_channel ?q_base ctx (b : buffers) =
  let s = ctx.s in
  let desc = s.device in
  let vb = desc.Desc.vector_bytes in
  let pool = Regs.create ~desc () in
  let ra = Regs.scalar pool and r_out = Regs.scalar pool in
  let rw = Array.init s.un (fun _ -> Regs.scalar pool) in
  let rwv = Array.init s.un (fun _ -> Array.init s.wbuf (fun _ -> Regs.scalar pool)) in
  let ctx = with_regs ?per_channel ?q_base ctx pool ~ra ~r_out ~rw ~rwv in
  let va = Array.init s.abuf (fun _ -> Regs.pair pool) in
  let pk = Regs.pair pool in
  let accs =
    Array.init s.un (fun _ ->
        { tmp = Regs.pair pool; acc_e = Regs.pair pool; acc_o = Regs.pair pool })
  in
  let outv = Regs.vector pool in
  alloc_pc_vectors ctx pool;
  let strategy = s.strategy in
  let emit_group e g =
    let vp = va.(g mod s.abuf) in
    let v_lo, v_hi = Regs.halves vp in
    emit_load ctx e `Vector v_lo ctx.ra (g * ctx.ks.group_bytes);
    emit_load ctx e `Vector v_hi ctx.ra ((g * ctx.ks.group_bytes) + vb);
    for j = 0 to s.un - 1 do
      emit_load ctx e `Scalar ctx.rwv.(j).(g mod s.wbuf) ctx.rw.(j) (g * 4);
      Emit.vmpa e accs.(j).tmp vp ctx.rwv.(j).(g mod s.wbuf);
      let t_lo, t_hi = Regs.halves accs.(j).tmp in
      Emit.vaddw e accs.(j).acc_e t_lo;
      Emit.vaddw e accs.(j).acc_o t_hi;
      Emit.vzero e accs.(j).tmp
    done
  in
  let k_block n_groups =
    let e = Emit.create () in
    for g = 0 to n_groups - 1 do
      emit_group e g
    done;
    Emit.bump e ctx.ra (n_groups * ctx.ks.group_bytes);
    Array.iter (fun r -> Emit.bump e r (n_groups * 4)) ctx.rw;
    Emit.block ~desc ~strategy e
  in
  let zero_block width =
    let e = Emit.create () in
    for j = 0 to width - 1 do
      Emit.vzero e accs.(j).tmp;
      Emit.vzero e accs.(j).acc_e;
      Emit.vzero e accs.(j).acc_o
    done;
    Emit.block ~desc ~strategy e
  in
  let epilogue_block width =
    let e = Emit.create () in
    (* merge k-even/k-odd partials, then interleave column pairs *)
    for jp = 0 to (width / 2) - 1 do
      let a0 = accs.(2 * jp) and a1 = accs.((2 * jp) + 1) in
      Emit.vadd e ~width:Instr.W32 a0.acc_e a0.acc_e a0.acc_o;
      Emit.vadd e ~width:Instr.W32 a1.acc_e a1.acc_e a1.acc_o;
      let lo0, hi0 = Regs.halves a0.acc_e and lo1, hi1 = Regs.halves a1.acc_e in
      emit_scale_column e ctx ~j:(2 * jp) [ lo0; hi0 ];
      emit_scale_column e ctx ~j:((2 * jp) + 1) [ lo1; hi1 ];
      let pk_lo, pk_hi = Regs.halves pk in
      Emit.vpack e pk_lo a0.acc_e Instr.W32;
      Emit.vpack e pk_hi a1.acc_e Instr.W32;
      Emit.vshuff e a0.tmp pk Instr.W16;
      Emit.vpack e outv a0.tmp Instr.W16;
      (match s.act_table with Some id -> Emit.vlut e outv outv id | None -> ());
      Emit.vstore e ctx.r_out (jp * vb) outv
    done;
    Array.iter (fun r -> Emit.bump e r (- (4 * ctx.groups))) ctx.rw;
    Emit.bump e ctx.r_out (ctx.ks.panel * ctx.np);
    Emit.block ~desc ~strategy e
  in
  let panel_loop width =
    let full = ctx.groups / s.ug and rest = ctx.groups mod s.ug in
    let body =
      [ zero_block width ]
      @ (if full > 0 then [ Emit.loop ~trip:full [ k_block s.ug ] ] else [])
      @ (if rest > 0 then [ k_block rest ] else [])
      @ [ epilogue_block width ]
    in
    Emit.loop ~trip:ctx.panels body
  in
  let tile_bumps width =
    let e = Emit.create () in
    Emit.bump e ctx.ra (-ctx.ks.panel * ctx.kp * ctx.panels);
    Array.iter (fun r -> Emit.bump e r (width * ctx.w_stride)) ctx.rw;
    Emit.bump e ctx.r_out ((width / 2 * vb) - (ctx.ks.panel * ctx.np * ctx.panels));
    (match ctx.pc with Some pc -> Emit.bump e pc.r_q (width * vb) | None -> ());
    Emit.block ~desc ~strategy e
  in
  let init =
    let e = Emit.create () in
    Emit.movi e ctx.ra b.a_base;
    Emit.movi e ctx.r_out b.c_base;
    Array.iteri (fun j r -> Emit.movi e r (b.w_base + (j * ctx.w_stride))) ctx.rw;
    (match ctx.pc with Some pc -> Emit.movi e pc.r_q ctx.q_base | None -> ());
    Emit.block ~desc ~strategy e
  in
  let full_tiles = ctx.np / s.un and rem = ctx.np mod s.un in
  let segments =
    (if full_tiles > 0 then
       [ Emit.loop ~trip:full_tiles [ panel_loop s.un; tile_bumps s.un ] ]
     else [])
    @ if rem > 0 then [ panel_loop rem; tile_bumps rem ] else []
  in
  (init :: segments, pool)

(* ------------------------------------------------------------------ *)
(* vrmpy (4-column layout)                                             *)

let generate_vrmpy ?per_channel ?q_base ctx (b : buffers) =
  let s = ctx.s in
  let desc = s.device in
  let vb = desc.Desc.vector_bytes in
  let pool = Regs.create ~desc () in
  let ra = Regs.scalar pool and r_out = Regs.scalar pool in
  let rw = Array.init s.un (fun _ -> Regs.scalar pool) in
  let rwv = Array.init s.un (fun _ -> Array.init s.wbuf (fun _ -> Regs.scalar pool)) in
  let ctx = with_regs ?per_channel ?q_base ctx pool ~ra ~r_out ~rw ~rwv in
  let va = Array.init s.abuf (fun _ -> Regs.vector pool) in
  (* accumulators in adjacent pairs: columns (4q .. 4q+3) use pairs (pa, pb) *)
  let acc_pairs = Array.init (s.un / 2) (fun _ -> Regs.pair pool) in
  let acc j =
    let lo, hi = Regs.halves acc_pairs.(j / 2) in
    if j mod 2 = 0 then lo else hi
  in
  let pc = Regs.pair pool in
  let outv = Regs.vector pool in
  alloc_pc_vectors ctx pool;
  let strategy = s.strategy in
  let emit_group e g =
    emit_load ctx e `Vector va.(g mod s.abuf) ctx.ra (g * ctx.ks.group_bytes);
    for j = 0 to s.un - 1 do
      emit_load ctx e `Scalar ctx.rwv.(j).(g mod s.wbuf) ctx.rw.(j) (g * 4);
      Emit.vrmpy e (acc j) va.(g mod s.abuf) ctx.rwv.(j).(g mod s.wbuf)
    done
  in
  let k_block n_groups =
    let e = Emit.create () in
    for g = 0 to n_groups - 1 do
      emit_group e g
    done;
    Emit.bump e ctx.ra (n_groups * ctx.ks.group_bytes);
    Array.iter (fun r -> Emit.bump e r (n_groups * 4)) ctx.rw;
    Emit.block ~desc ~strategy e
  in
  let zero_block width =
    let e = Emit.create () in
    for j = 0 to width - 1 do
      Emit.vzero e (acc j)
    done;
    Emit.block ~desc ~strategy e
  in
  let epilogue_block width =
    let e = Emit.create () in
    for q = 0 to (width / 4) - 1 do
      let pa = acc_pairs.(2 * q) and pb = acc_pairs.((2 * q) + 1) in
      Emit.vshuff e pa pa Instr.W32;
      Emit.vshuff e pb pb Instr.W32;
      let a_lo, a_hi = Regs.halves pa and b_lo, b_hi = Regs.halves pb in
      (match ctx.pc with
      | None ->
        let sc = (s.mult, s.shift) in
        Emit.vscale e a_lo a_lo sc;
        Emit.vscale e a_hi a_hi sc;
        Emit.vscale e b_lo b_lo sc;
        Emit.vscale e b_hi b_hi sc
      | Some pc ->
        (* after the W32 shuffle the lanes alternate between the group's
           column pairs; the prepacked buffer interleaves the multipliers
           the same way (two vectors per 4-column group) *)
        let vq2 = Option.get pc.vq2 in
        Emit.vload e pc.vq pc.r_q (q * 2 * vb);
        Emit.vload e vq2 pc.r_q ((q * 2 * vb) + vb);
        Emit.emit e (Instr.Vscalev (a_lo, a_lo, pc.vq, pc.q_shift));
        Emit.emit e (Instr.Vscalev (a_hi, a_hi, pc.vq, pc.q_shift));
        Emit.emit e (Instr.Vscalev (b_lo, b_lo, vq2, pc.q_shift));
        Emit.emit e (Instr.Vscalev (b_hi, b_hi, vq2, pc.q_shift)));
      let pc_lo, pc_hi = Regs.halves pc in
      Emit.vpack e pc_lo pa Instr.W32;
      Emit.vpack e pc_hi pb Instr.W32;
      Emit.vshuff e pc pc Instr.W32;
      Emit.vpack e outv pc Instr.W16;
      (match s.act_table with Some id -> Emit.vlut e outv outv id | None -> ());
      Emit.vstore e ctx.r_out (q * vb) outv
    done;
    Array.iter (fun r -> Emit.bump e r (- (4 * ctx.groups))) ctx.rw;
    Emit.bump e ctx.r_out (ctx.ks.panel * ctx.np);
    Emit.block ~desc ~strategy e
  in
  let panel_loop width =
    let full = ctx.groups / s.ug and rest = ctx.groups mod s.ug in
    let body =
      [ zero_block width ]
      @ (if full > 0 then [ Emit.loop ~trip:full [ k_block s.ug ] ] else [])
      @ (if rest > 0 then [ k_block rest ] else [])
      @ [ epilogue_block width ]
    in
    Emit.loop ~trip:ctx.panels body
  in
  let tile_bumps width =
    let e = Emit.create () in
    Emit.bump e ctx.ra (-ctx.ks.panel * ctx.kp * ctx.panels);
    Array.iter (fun r -> Emit.bump e r (width * ctx.w_stride)) ctx.rw;
    Emit.bump e ctx.r_out ((width / 4 * vb) - (ctx.ks.panel * ctx.np * ctx.panels));
    (match ctx.pc with Some pc -> Emit.bump e pc.r_q (width / 4 * 2 * vb) | None -> ());
    Emit.block ~desc ~strategy e
  in
  let init =
    let e = Emit.create () in
    Emit.movi e ctx.ra b.a_base;
    Emit.movi e ctx.r_out b.c_base;
    Array.iteri (fun j r -> Emit.movi e r (b.w_base + (j * ctx.w_stride))) ctx.rw;
    (match ctx.pc with Some pc -> Emit.movi e pc.r_q ctx.q_base | None -> ());
    Emit.block ~desc ~strategy e
  in
  let full_tiles = ctx.np / s.un and rem = ctx.np mod s.un in
  let segments =
    (if full_tiles > 0 then
       [ Emit.loop ~trip:full_tiles [ panel_loop s.un; tile_bumps s.un ] ]
     else [])
    @ if rem > 0 then [ panel_loop rem; tile_bumps rem ] else []
  in
  (init :: segments, pool)

(* ------------------------------------------------------------------ *)

(** Generate the kernel program.  [tables] should already contain the
    fused-activation table if [act_table] is set.  [per_channel] enables
    per-output-channel requantization: [(mults, shift)] as produced by
    {!Gcd2_tensor.Quant.per_channel_requant}, with the multiplier vectors
    prepacked at [q_base] ({!Weights.prepack_channel_mults}). *)
let generate ?(tables = []) ?per_channel ?q_base spec buffers =
  Gcd2_util.Trace.in_span "matmul-emit" @@ fun () ->
  let ctx = make_ctx spec in
  let nodes, _pool =
    match spec.simd with
    | Simd.I_vmpy -> generate_vmpy ?per_channel ?q_base ctx buffers
    | Simd.I_vmpa -> generate_vmpa ?per_channel ?q_base ctx buffers
    | Simd.I_vrmpy -> generate_vrmpy ?per_channel ?q_base ctx buffers
  in
  Program.make ~tables (Fmt.str "matmul_%s_%dx%dx%d" (Simd.name spec.simd) spec.m spec.k spec.n)
    nodes

(* Generating and SDA-packing a kernel is ~99% of a cold compile, and the
   spec determines the program exactly, so each unique spec is costed
   once per process.  Plan enumeration repeats specs heavily (every conv
   of a given shape, every unroll candidate revisited per node). *)
let cycles_memo : (spec, int) Gcd2_util.Memo.t = Gcd2_util.Memo.create "matmul-cycles"

(** Static cycle count of the kernel (buffer addresses do not affect it).
    Memoized by the full [spec] — the generator is deterministic, so the
    first costing of a spec answers every later one. *)
let cycles spec =
  Gcd2_util.Memo.find_or_add cycles_memo spec (fun () ->
      Program.static_cycles ~desc:spec.device
        (generate spec { a_base = 0; w_base = 0; c_base = 0 }))
