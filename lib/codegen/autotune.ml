(** Budgeted kernel-shape autotuning.

    The shape-adaptive heuristic ({!Unroll.adaptive}) picks one loop
    nest per SIMD choice; the tuner instead searches {!Tile.space} — the
    validated (un, ug, abuf, wbuf) candidates — under a budget of full
    kernel costings.  Per candidate, in promising-first order:

    - {!Tile.lower_bound} is compared against the incumbent's cycles; a
      candidate that cannot win is discarded for free (it consumes no
      budget),
    - otherwise the candidate is generated + packed ({!Matmul.cycles},
      memoized process-wide) and replaces the incumbent when strictly
      cheaper.

    The heuristic's setting is always costed first, so the tuned result
    is never worse than the heuristic ("tuned <= adaptive" holds by
    construction).  With [verify] set, the winner additionally runs on
    the fast VM against the heuristic kernel on deterministic data, and
    any output mismatch falls back to the heuristic (candidates only
    reshape the loop nest, so a mismatch means a generator bug — the
    qcheck suite keeps this path cold).

    Ambient trace counters: [tune-candidates] (feasible candidates
    considered), [tune-costed] (budget actually spent), [tune-pruned]
    (discarded by the lower bound), [tune-vm-verified] (VM verification
    runs). *)

module Trace = Gcd2_util.Trace

type config = {
  budget : int;  (** max full kernel costings per (problem, SIMD choice) *)
  verify : bool;  (** run the winner on the VM against the heuristic *)
}

(** Enough budget to cover the deep-unroll frontier of every SIMD choice
    while keeping tuned compiles within a small multiple of a heuristic
    compile (kernel costings are memoized process-wide, so repeated
    shapes tune once). *)
let default_budget = 32

let default = { budget = default_budget; verify = false }

(* Round-trip textual form, used by request lines (`tune=...`) and the
   daemon's single-flight key. *)
let to_string t =
  if t.verify then Printf.sprintf "%d+verify" t.budget else string_of_int t.budget

let of_string s =
  let error () =
    Error
      (Printf.sprintf "bad tune spec %S (want BUDGET[+verify], `on` or `verify`)" s)
  in
  let budget_of = function
    | "" | "on" -> Some default_budget
    | b -> ( match int_of_string_opt b with Some n when n >= 1 -> Some n | _ -> None)
  in
  match String.split_on_char '+' (String.lowercase_ascii (String.trim s)) with
  | [ "verify" ] -> Ok { default with verify = true }
  | [ b ] -> (
    match budget_of b with Some budget -> Ok { budget; verify = false } | None -> error ())
  | [ b; "verify" ] -> (
    match budget_of b with Some budget -> Ok { budget; verify = true } | None -> error ())
  | _ -> error ()

(* Deterministic operand data for VM verification: no RNG dependency,
   full int8 range, co-prime strides so rows/columns do not repeat. *)
let verify_operand n = Array.init n (fun i -> (((i * 37) + ((i * i) mod 101)) mod 256) - 128)

(* Outputs must be bit-identical across candidates: the knobs only
   reshape the loop nest.  Fused-activation tables live outside the
   kernel, so verification strips them and compares raw requantized
   outputs. *)
let vm_outputs_equal baseline_spec tuned_spec =
  let base = { baseline_spec with Matmul.act_table = None } in
  let tuned = { tuned_spec with Matmul.act_table = None } in
  let a = verify_operand (base.Matmul.m * base.Matmul.k) in
  let w = verify_operand (base.Matmul.k * base.Matmul.n) in
  Trace.count "tune-vm-verified" 1;
  let r_base = Testbench.run base ~a ~w in
  let r_tuned = Testbench.run tuned ~a ~w in
  r_base.Testbench.data = r_tuned.Testbench.data

let spec_with (base : Matmul.spec) (u : Unroll.setting) =
  { base with Matmul.un = u.Unroll.un; ug = u.Unroll.ug; abuf = u.Unroll.abuf; wbuf = u.Unroll.wbuf }

(** [tune config base] — the best {!Unroll.setting} found for [base]'s
    problem within [config.budget] kernel costings; never worse than
    {!Unroll.adaptive} (modeled cycles).  [base]'s own [un]/[ug]/[abuf]/
    [wbuf] are ignored. *)
let tune config (base : Matmul.spec) =
  Trace.in_span "autotune" @@ fun () ->
  let baseline =
    Unroll.adaptive base.Matmul.simd ~m:base.Matmul.m ~k:base.Matmul.k ~n:base.Matmul.n
  in
  let best = ref baseline and best_cycles = ref (Matmul.cycles (spec_with base baseline)) in
  let costed = ref 1 in
  let consider u =
    if u <> baseline then begin
      Trace.count "tune-candidates" 1;
      let s = spec_with base u in
      if Tile.lower_bound s >= !best_cycles then Trace.count "tune-pruned" 1
      else if !costed < config.budget then begin
        incr costed;
        Trace.count "tune-costed" 1;
        let c = Matmul.cycles s in
        if c < !best_cycles then begin
          best := u;
          best_cycles := c
        end
      end
    end
  in
  List.iter consider (Tile.space base);
  if config.verify && !best <> baseline
     && not (vm_outputs_equal (spec_with base baseline) (spec_with base !best))
  then baseline
  else !best
