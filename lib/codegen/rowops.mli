(** Row-operator kernels (Softmax, LayerNorm along the last axis): rows
    staged transposed so row reductions are per-lane accumulations, two
    programs per operator with a host step staging the per-row scalars
    (reciprocal / mean + normalize-affine multiplier) between them.
    Bit-identical to {!Gcd2_kernels.Interp}; see the implementation for
    the ISA facts that carry the proof. *)

module Packer = Gcd2_sched.Packer
module Desc = Gcd2_devices.Desc

(** The shared host/DSP exponential table: index = raw byte of the
    saturated delta [sat8 (x - rowmax)], entry = [round (exp (scale * d)
    * 127)] clamped to a signed byte. *)
val exp_table : scale:float -> int array

(** Fixed-point reciprocal of a row's exponential sum (shift 15, output
    quant 1/128); 0 for empty/padding rows. *)
val recip_of_sum : int -> int

(** Integer round-half-away-from-zero mean, shared with the reference. *)
val rounded_mean : int -> int -> int

(** [layer_norm_multiplier ~scale ~out_scale ~cols ~sum ~sumsq] — the
    per-row (mean, fused normalize-affine multiplier at shift 15) from
    pass-1 row sums. *)
val layer_norm_multiplier :
  scale:float -> out_scale:float -> cols:int -> sum:int -> sumsq:int -> int * int

(** Modeled cycles for a whole node (both passes x row groups), memoized;
    device-parameterized like the Matmul generator. *)
val softmax_cycles :
  device:Desc.t -> strategy:Packer.strategy -> rows:int -> cols:int -> float

val layer_norm_cycles :
  device:Desc.t -> strategy:Packer.strategy -> rows:int -> cols:int -> float

(** Execute on the simulated DSP (hexagon698, like {!Testbench}): input
    row-major [rows * cols] int8 at quantization [scale].  Returns the
    row-major int8 output and the executed cycle count.  Softmax output
    quant is 1/128; LayerNorm's is [out_scale]. *)
val run_softmax :
  strategy:Packer.strategy ->
  rows:int ->
  cols:int ->
  scale:float ->
  int array ->
  int array * int

val run_layer_norm :
  strategy:Packer.strategy ->
  rows:int ->
  cols:int ->
  scale:float ->
  out_scale:float ->
  int array ->
  int array * int
