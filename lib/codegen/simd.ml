(** The SIMD multiply instruction choices the compiler selects among for a
    matmul-like operator, and the data layout each requires (paper
    Section III).  The K-padding granularity comes from how each kernel
    walks the reduction dimension: [vmpy] drains its 16-bit accumulator
    every 2 steps, while [vmpa]/[vrmpy] consume groups of 4 columns. *)

module Layout = Gcd2_tensor.Layout

type t = I_vmpy | I_vmpa | I_vrmpy

let all = [ I_vmpy; I_vmpa; I_vrmpy ]

let name = function I_vmpy -> "vmpy" | I_vmpa -> "vmpa" | I_vrmpy -> "vrmpy"
let pp ppf t = Fmt.string ppf (name t)

(** Layout required for the activations (and produced for the output). *)
let layout = function I_vmpy -> Layout.Col1 | I_vmpa -> Layout.Col2 | I_vrmpy -> Layout.Col4

let of_layout = function
  | Layout.Col1 -> Some I_vmpy
  | Layout.Col2 -> Some I_vmpa
  | Layout.Col4 -> Some I_vrmpy
  | Layout.Row_major -> None

(** Rows processed per vector operation (the layout's panel height on the
    device). *)
let panel_rows ?desc t = Layout.panel_rows ?desc (layout t)

(** Reduction-dimension padding required by the kernel. *)
let k_pad = function I_vmpy -> 4 | I_vmpa -> 4 | I_vrmpy -> 4

(** Padded problem dimensions for C = A(MxK) * W(KxN) under this choice.
    M pads to the panel height, K to the kernel's reduction granularity,
    N to the output layout's column group. *)
let padded_mkn ?desc t ~m ~k ~n =
  let module S = Gcd2_util.Stats in
  ( S.round_up m (panel_rows ?desc t),
    S.round_up k (k_pad t),
    S.round_up n (Layout.column_group (layout t)) )

(** Total int8 bytes (with padding) of A, W and C — the "Total Data Size
    w/ Pad" column of the paper's Table II. *)
let padded_data_bytes ?desc t ~m ~k ~n =
  let mp, kp, np = padded_mkn ?desc t ~m ~k ~n in
  (mp * kp) + (kp * np) + (mp * np)
