(** Elementwise kernels: binary add/sub/mul and unary table-lookup
    operators (activations, [Pow], reciprocal for the division-to-lookup
    optimization).

    These kernels are layout-oblivious: both operands and the result use
    the same layout, so the kernel simply streams the padded buffers
    vector by vector — which is exactly why elementwise operators give the
    global layout optimizer freedom (any layout works, only neighbours'
    transform costs matter, paper Section IV-A).

    Operand rescaling (bringing both int8 inputs to the output scale
    before an add/sub) is a unary int8->int8 map and therefore a [Vlut];
    when an operand already has the output scale the lookup is skipped. *)

open Gcd2_isa
module Packer = Gcd2_sched.Packer
module Desc = Gcd2_devices.Desc

type binary = Badd | Bsub | Bmul

type spec = {
  device : Desc.t;  (** target device (vector width, slots, latencies) *)
  vectors : int;  (** vectors to process (padded buffer size / vector bytes) *)
  uv : int;  (** vector unroll *)
  strategy : Packer.strategy;
  rescale_a : int option;  (** table id rescaling operand A into the output scale *)
  rescale_b : int option;  (** likewise for B (already negated for [Bsub]) *)
  act_table : int option;
  mult : int;  (** requantization multiplier, [Bmul] only *)
  shift : int;
}

type buffers = { a_base : int; b_base : int; out_base : int }

let validate s =
  if s.vectors <= 0 then invalid_arg "Eltwise: no data";
  if s.uv <= 0 || s.uv > 4 then invalid_arg "Eltwise: bad unroll"

(* Emit the body for [count] vectors starting at pointer offset 0;
   pointers advance by [count] vectors' worth of bytes at the end. *)
let binary_body op s ~ra ~rb ~ro ~regs count =
  let e = Emit.create () in
  let vbytes = s.device.Desc.vector_bytes in
  let va, vb, tmp, acc_e, acc_o, pk, outv = regs in
  for d = 0 to count - 1 do
    let off = d * vbytes in
    Emit.vload e va ra off;
    Emit.vload e vb rb off;
    (match s.rescale_a with Some id -> Emit.vlut e va va id | None -> ());
    (match s.rescale_b with Some id -> Emit.vlut e vb vb id | None -> ());
    (match op with
    | Badd | Bsub ->
      (* subtraction is an add of the negated-rescale of B; when B needs no
         rescale we use the true vector subtract *)
      let vop = if op = Bsub && s.rescale_b = None then Instr.Vsub else Instr.Vadd in
      Emit.emit e (Instr.Valu (vop, Instr.W8, outv, va, vb));
      (match s.act_table with Some id -> Emit.vlut e outv outv id | None -> ());
      Emit.vstore e ro off outv
    | Bmul ->
      Emit.vzero e tmp;
      Emit.vzero e acc_e;
      Emit.vzero e acc_o;
      Emit.vmul e tmp va vb;
      let t_lo, t_hi = Regs.halves tmp in
      Emit.vaddw e acc_e t_lo;
      Emit.vaddw e acc_o t_hi;
      let sc = (s.mult, s.shift) in
      let e_lo, e_hi = Regs.halves acc_e and o_lo, o_hi = Regs.halves acc_o in
      Emit.vscale e e_lo e_lo sc;
      Emit.vscale e e_hi e_hi sc;
      Emit.vscale e o_lo o_lo sc;
      Emit.vscale e o_hi o_hi sc;
      let pk_lo, pk_hi = Regs.halves pk in
      Emit.vpack e pk_lo acc_e Instr.W32;
      Emit.vpack e pk_hi acc_o Instr.W32;
      Emit.vshuff e tmp pk Instr.W16;
      Emit.vpack e outv tmp Instr.W16;
      (match s.act_table with Some id -> Emit.vlut e outv outv id | None -> ());
      Emit.vstore e ro off outv)
  done;
  Emit.bump e ra (count * vbytes);
  Emit.bump e rb (count * vbytes);
  Emit.bump e ro (count * vbytes);
  Emit.block ~desc:s.device ~strategy:s.strategy e

(** Generate a binary elementwise kernel. *)
let binary ?(tables = []) op s (b : buffers) =
  Gcd2_util.Trace.in_span "eltwise-emit" @@ fun () ->
  validate s;
  let pool = Regs.create ~desc:s.device () in
  let ra = Regs.scalar pool and rb = Regs.scalar pool and ro = Regs.scalar pool in
  let va = Regs.vector pool and vb = Regs.vector pool in
  let tmp = Regs.pair pool and acc_e = Regs.pair pool and acc_o = Regs.pair pool in
  let pk = Regs.pair pool in
  let outv = Regs.vector pool in
  let regs = (va, vb, tmp, acc_e, acc_o, pk, outv) in
  let init =
    let e = Emit.create () in
    Emit.movi e ra b.a_base;
    Emit.movi e rb b.b_base;
    Emit.movi e ro b.out_base;
    Emit.block ~desc:s.device ~strategy:s.strategy e
  in
  let full = s.vectors / s.uv and rest = s.vectors mod s.uv in
  let nodes =
    [ init ]
    @ (if full > 0 then
         [ Emit.loop ~trip:full [ binary_body op s ~ra ~rb ~ro ~regs s.uv ] ]
       else [])
    @ if rest > 0 then [ binary_body op s ~ra ~rb ~ro ~regs rest ] else []
  in
  let name =
    match op with Badd -> "eltwise_add" | Bsub -> "eltwise_sub" | Bmul -> "eltwise_mul"
  in
  Program.make ~tables name nodes

(** Generate a unary lookup kernel ([table] maps input bytes to output
    bytes): activations, [Pow], reciprocal, requantize. *)
let unary ?(tables = []) ~table s ~in_base ~out_base =
  Gcd2_util.Trace.in_span "eltwise-emit" @@ fun () ->
  validate s;
  let vbytes = s.device.Desc.vector_bytes in
  let pool = Regs.create ~desc:s.device () in
  let ra = Regs.scalar pool and ro = Regs.scalar pool in
  let va = Regs.vector pool in
  let body count =
    let e = Emit.create () in
    for d = 0 to count - 1 do
      Emit.vload e va ra (d * vbytes);
      Emit.vlut e va va table;
      Emit.vstore e ro (d * vbytes) va
    done;
    Emit.bump e ra (count * vbytes);
    Emit.bump e ro (count * vbytes);
    Emit.block ~desc:s.device ~strategy:s.strategy e
  in
  let init =
    let e = Emit.create () in
    Emit.movi e ra in_base;
    Emit.movi e ro out_base;
    Emit.block ~desc:s.device ~strategy:s.strategy e
  in
  let full = s.vectors / s.uv and rest = s.vectors mod s.uv in
  let nodes =
    [ init ]
    @ (if full > 0 then [ Emit.loop ~trip:full [ body s.uv ] ] else [])
    @ if rest > 0 then [ body rest ] else []
  in
  Program.make ~tables "eltwise_unary" nodes

let default_spec ?(strategy = Packer.sda) ?(device = Desc.hexagon698) ~vectors () =
  {
    device;
    vectors;
    uv = 2;
    strategy;
    rescale_a = None;
    rescale_b = None;
    act_table = None;
    mult = 1 lsl 30;
    shift = 30;
  }
