(** Emission helpers: collect instructions into blocks, pack them with a
    chosen strategy, and assemble loop-tree programs. *)

open Gcd2_isa
module Packer = Gcd2_sched.Packer

type t = { mutable rev_instrs : Instr.t list }

let create () = { rev_instrs = [] }

let emit t i = t.rev_instrs <- i :: t.rev_instrs

let instrs t = Array.of_list (List.rev t.rev_instrs)

(** Close the buffer into a packed basic block (packed for the device;
    default {!Gcd2_devices.Desc.hexagon698}). *)
let block ?desc ~strategy t =
  let is = instrs t in
  t.rev_instrs <- [];
  Program.Block (Packer.pack ?desc strategy is)

(* Shorthands *)

let addr base offset = { Instr.base; offset }
let movi t rd imm = emit t (Instr.Smovi (rd, imm))
let addi t rd rs imm = emit t (Instr.Salu (Instr.Add, rd, rs, Instr.Imm imm))
let bump t r imm = if imm <> 0 then addi t r r imm
let sload t rd base offset = emit t (Instr.Sload (rd, addr base offset))
let vload t vd base offset = emit t (Instr.Vload (vd, addr base offset))
let vstore t base offset vs = emit t (Instr.Vstore (addr base offset, vs))
let vzero t vd = emit t (Instr.Vmovi (vd, 0))
let vmovi t vd b = emit t (Instr.Vmovi (vd, b))
let valu t op ~width vd va vb = emit t (Instr.Valu (op, width, vd, va, vb))
let vscalev t vd vs vm shift = emit t (Instr.Vscalev (vd, vs, vm, shift))
let vmpy t pd vs rt = emit t (Instr.Vmpy (pd, vs, rt))
let vmul t pd va vb = emit t (Instr.Vmul (pd, va, vb))
let vmpa t pd ps rt = emit t (Instr.Vmpa (pd, ps, rt))
let vrmpy t vd vs rt = emit t (Instr.Vrmpy (vd, vs, rt))
let vaddw t pd vs = emit t (Instr.Vaddw (pd, vs))
let vadd t ~width vd va vb = emit t (Instr.Valu (Instr.Vadd, width, vd, va, vb))
let vscale t vd vs (mult, shift) = emit t (Instr.Vscale (vd, vs, mult, shift))
let vpack t vd ps width = emit t (Instr.Vpack (vd, ps, width))
let vshuff t pd ps width = emit t (Instr.Vshuff (pd, ps, width))
let vlut t vd vs id = emit t (Instr.Vlut (vd, vs, id))

let loop ~trip body = Program.Loop { trip; body }
