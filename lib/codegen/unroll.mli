(** Loop-unrolling selection (paper Section IV-C "Impact of Unrolling" and
    Figure 12): GCD2's shape-adaptive heuristic, the single-level
    baselines, and exhaustive search.  Settings also carry the
    register-rotation depths the generators honour; heuristics pin them
    to the historical 2, the autotuner searches them. *)

type setting = {
  un : int;  (** output-column ("Out") unroll *)
  ug : int;  (** reduction ("Mid") unroll *)
  abuf : int;  (** activation-register rotation depth *)
  wbuf : int;  (** weight-register rotation depth *)
}

type shape_class = Skinny | Near_square | Fat

val classify : m:int -> n:int -> shape_class
val shape_class_name : shape_class -> string

(** Clamp helpers (column grouping, register file, problem size). *)
val clamp_un : Simd.t -> n:int -> int -> int

(** [limit] defaults to the paper's 4-group scheduler window; the
    autotuner passes {!Matmul.max_ug}. *)
val clamp_ug : ?limit:int -> k:int -> int -> int

(** The GCD2 heuristic: class-driven preset factors. *)
val adaptive : Simd.t -> m:int -> k:int -> n:int -> setting

(** "Out": unroll only the output-column loop. *)
val fixed_out : Simd.t -> k:int -> n:int -> factor:int -> setting

(** "Mid": unroll only the reduction loop. *)
val fixed_mid : Simd.t -> k:int -> n:int -> factor:int -> setting

val none : Simd.t -> k:int -> n:int -> setting

(** Shared (un, ug) enumeration behind {!exhaustive} and the autotuner —
    [extended:false] is the Figure-12 grid, [extended:true] the tuner's
    wider space.  Deterministic order: columns outer, reduction inner,
    both ascending. *)
val grid : ?extended:bool -> Simd.t -> k:int -> n:int -> (int * int) list

(** Grid search minimizing generated-kernel cycles (Figure 12's expensive
    baseline). *)
val exhaustive : Matmul.spec -> setting
