(** Elementwise kernels (binary add/sub/mul, unary table lookups) — the
    layout-oblivious operators that give the global optimizer freedom.
    Operand rescaling is a byte lookup ([Vlut]); multiplication requants
    through the widening pipeline. *)

open Gcd2_isa
module Packer = Gcd2_sched.Packer

type binary = Badd | Bsub | Bmul

type spec = {
  device : Gcd2_devices.Desc.t;
      (** target device (vector width, slots, latencies) — part of every
          memo key built from this spec *)
  vectors : int;  (** vectors to process (padded buffer size / vector bytes) *)
  uv : int;  (** vector unroll *)
  strategy : Packer.strategy;
  rescale_a : int option;  (** table id rescaling operand A into the output scale *)
  rescale_b : int option;  (** likewise for B (negating for subtraction) *)
  act_table : int option;
  mult : int;  (** requantization multiplier ([Bmul] only) *)
  shift : int;
}

type buffers = { a_base : int; b_base : int; out_base : int }

val binary : ?tables:(int * int array) list -> binary -> spec -> buffers -> Program.t

val unary :
  ?tables:(int * int array) list -> table:int -> spec -> in_base:int -> out_base:int ->
  Program.t

val default_spec :
  ?strategy:Packer.strategy -> ?device:Gcd2_devices.Desc.t -> vectors:int -> unit -> spec
