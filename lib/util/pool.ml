(** Fixed-size domain pool for deterministic data-parallel maps (see the
    interface). *)

let default_jobs () =
  match Sys.getenv_opt "GCD2_JOBS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> 1)

let map_array ?(jobs = 1) f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then
    Array.map
      (fun x ->
        Deadline.check ();
        f x)
      arr
  else begin
    let w = min jobs n in
    let results = Array.make n None in
    let errors = Array.make w None in
    let traced = Trace.enabled () in
    let worker_traces =
      Array.init w (fun i ->
          if traced then Some (Trace.create (Printf.sprintf "worker-%d" i)) else None)
    in
    (* Static interleaved partition: worker [wi] owns indices [wi], [wi+w],
       ... — deterministic ownership (no work-stealing), so each worker's
       task set, and therefore the by-index merge below, never depends on
       scheduling. *)
    (* Worker domains inherit neither the ambient trace nor the ambient
       deadline; the parent's deadline is captured here and re-installed
       in every worker so a cancellation fires mid-enumeration, not only
       at the next pass boundary. *)
    let deadline = Deadline.get () in
    (* fault suppression is domain-local like the deadline: a pool
       spawned inside a verification pass must stay fault-free too *)
    let suppressed = Fault.suppressed () in
    let run_worker wi =
      let body () =
        Fault.fire "pool-worker";
        let i = ref wi in
        while !i < n do
          Deadline.check ();
          results.(!i) <- Some (f arr.(!i));
          i := !i + w
        done
      in
      let body () =
        Fault.with_suppression suppressed (fun () ->
            Deadline.with_deadline deadline body)
      in
      try
        match worker_traces.(wi) with
        | Some t -> Trace.with_ambient t body
        | None -> body ()
      with e -> errors.(wi) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let domains = Array.init (w - 1) (fun k -> Domain.spawn (fun () -> run_worker (k + 1))) in
    run_worker 0;
    Array.iter Domain.join domains;
    if traced then begin
      Trace.count "pool-workers" w;
      Trace.count "pool-tasks" n;
      (* worker-order absorption keeps the merged span tree reproducible *)
      Array.iter
        (function Some t -> Trace.absorb (Trace.root t) | None -> ())
        worker_traces
    end;
    Array.iter
      (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end
