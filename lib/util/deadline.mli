(** Ambient wall-clock deadlines for cooperative cancellation.

    A deadline is an absolute {!Trace.now} timestamp installed for the
    dynamic extent of a computation; long-running phases poll {!check}
    at their natural boundaries (the pipeline before each pass, the
    worker pool before each task) and abandon the work by raising
    {!Expired}.  Like the ambient {!Trace}, the installed deadline is
    domain-local — {!Pool} captures the parent's deadline and
    re-installs it in every worker domain. *)

exception Expired of { deadline : float; now : float }

(** [with_deadline d f] — run [f] under absolute deadline [d] ([None]
    removes any inherited deadline); the previous deadline is restored
    afterwards, also on raise. *)
val with_deadline : float option -> (unit -> 'a) -> 'a

(** The deadline currently in force in this domain, if any. *)
val get : unit -> float option

(** Raise {!Expired} when the current deadline has passed; otherwise
    (or without a deadline) return unit. *)
val check : unit -> unit
