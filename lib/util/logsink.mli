(** Mutex-guarded whole-line log writer.

    Structured outcome, stats and degradation lines are the service's
    observable surface; under a multi-domain server, two workers
    printing through bare [Format]/[output_string] calls can interleave
    mid-line and produce torn, unparseable records.  Every serve/daemon
    log line therefore goes through this module: one process-wide mutex,
    one whole line per call, flushed before the mutex is released — a
    reader of the stream sees complete lines in some serial order,
    always.

    Two logical channels: {!emit} (outcome/stats lines, default
    [stdout]) and {!emit_err} (diagnostics and warnings, default
    [stderr]).  Both are guarded by the {e same} mutex, so lines cannot
    tear even when both channels point at the same terminal or file.
    Tests and benches retarget the channels with {!with_redirect} and
    assert line integrity on the capture. *)

(** [emit line] — write [line ^ "\n"] to the out channel, atomically
    with respect to every other emit, and flush. *)
val emit : string -> unit

(** [emit_err line] — same, to the error channel. *)
val emit_err : string -> unit

(** Permanently retarget either channel (a daemon pointing its log at a
    file). *)
val redirect : ?out:out_channel -> ?err:out_channel -> unit -> unit

(** [with_redirect ?out ?err f] — run [f] with the channels retargeted,
    restoring the previous targets afterwards, also on raise. *)
val with_redirect : ?out:out_channel -> ?err:out_channel -> (unit -> 'a) -> 'a
