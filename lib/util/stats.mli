(** Small numeric helpers for the benchmark harness. *)

val mean : float list -> float

(** Geometric mean (the paper's speedup aggregate). *)
val geomean : float list -> float

val maxf : float list -> float
val minf : float list -> float

(** [percentile p xs] — nearest-rank percentile (inclusive), [p] in
    [0..100]: the smallest element with at least [p]% of the sample at
    or below it.  Sorts a copy; [0.0] on an empty sample. *)
val percentile : float -> float list -> float

val p50 : float list -> float
val p95 : float list -> float
val p99 : float list -> float

(** Integer ceiling division. *)
val ceil_div : int -> int -> int

(** Round [a] up to the next multiple of [b]. *)
val round_up : int -> int -> int

(** Mergeable fixed-layout log-bucket latency histogram.

    A histogram is a fixed array of counts over a geometric bucket
    layout shared by every instance ({!Hist.sub_octave} buckets per
    factor of two from {!Hist.lo_ms} to {!Hist.hi_ms}, plus underflow
    and overflow buckets), so per-worker histograms combine with an
    elementwise sum — associative, commutative, and O(buckets) — without
    retaining a single sample.  Percentile queries return the lower edge
    of the bucket holding the nearest-rank sample, i.e. an estimate
    within one bucket ratio (2{^ 1/8} ≈ 9%) of the exact nearest-rank
    percentile. *)
module Hist : sig
  type t

  (** Buckets per factor of two (8: ≈9% relative resolution). *)
  val sub_octave : int

  (** Lower/upper bounds of the interior buckets, in milliseconds. *)
  val lo_ms : float

  val hi_ms : float

  (** Total bucket count, including underflow and overflow. *)
  val buckets : int

  (** An empty histogram. *)
  val create : unit -> t

  (** Record one latency (milliseconds; non-positive values land in the
      underflow bucket). *)
  val add : t -> float -> unit

  (** The bucket index a latency lands in ([0] = underflow,
      [buckets - 1] = overflow).  Exposed for tests. *)
  val bucket_of : float -> int

  (** Lower edge (ms) of bucket [i] — the value percentile queries
      report.  Exposed for tests. *)
  val bucket_floor : int -> float

  (** Samples recorded. *)
  val count : t -> int

  (** Pure merge: a fresh histogram holding both sample sets. *)
  val merge : t -> t -> t

  (** In-place merge of [src] into [into]. *)
  val merge_into : into:t -> t -> unit

  val copy : t -> t

  (** The raw bucket counts (a copy), for tests and serialization. *)
  val counts : t -> int array

  (** Nearest-rank percentile estimate (lower bucket edge); [0.0] on an
      empty histogram, mirroring {!Stats.percentile}. *)
  val percentile : float -> t -> float

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float
end
