(** Small numeric helpers for the benchmark harness. *)

val mean : float list -> float

(** Geometric mean (the paper's speedup aggregate). *)
val geomean : float list -> float

val maxf : float list -> float
val minf : float list -> float

(** [percentile p xs] — nearest-rank percentile (inclusive), [p] in
    [0..100]: the smallest element with at least [p]% of the sample at
    or below it.  Sorts a copy; [0.0] on an empty sample. *)
val percentile : float -> float list -> float

val p50 : float list -> float
val p95 : float list -> float
val p99 : float list -> float

(** Integer ceiling division. *)
val ceil_div : int -> int -> int

(** Round [a] up to the next multiple of [b]. *)
val round_up : int -> int -> int
