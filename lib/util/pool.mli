(** Fixed-size domain pool: data-parallel maps over arrays on OCaml 5
    [Domain]s with deterministic results.

    {!map_array} distributes indices over a fixed worker count by static
    interleaving (worker [i] owns indices [i], [i+jobs], ...) and writes
    each result into its own slot, so the output array is the same value
    as [Array.map f] regardless of scheduling — parallelism is
    observable only as wall time (plus the [pool-workers] / [pool-tasks]
    trace counters).  Workers never share mutable state through the
    pool; [f] must be domain-safe (pure, or internally synchronized like
    {!Memo} tables).

    Tracing: the ambient {!Trace} is domain-local, so each worker runs
    under its own trace; after the join the parent absorbs every
    worker's span tree, in worker order, into its innermost open span
    ({!Trace.absorb}).  A worker exception is re-raised in the caller
    (first worker in index order wins) after all workers have joined. *)

(** Worker count from the [GCD2_JOBS] environment variable (a positive
    integer), defaulting to 1 — sequential — when unset or malformed. *)
val default_jobs : unit -> int

(** [map_array ~jobs f arr] — [Array.map f arr], computed by [min jobs
    (Array.length arr)] domains ([jobs <= 1] runs sequentially in the
    calling domain, spawning nothing). *)
val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
