(** Content-keyed memo tables for deterministic computations (see the
    interface for the model and the key discipline). *)

type ('a, 'b) t = {
  memo_name : string;
  lock : Mutex.t;
  tbl : ('a, 'b) Hashtbl.t;
}

(* Every table registers its clear function so benchmarks can restore a
   true cold state ({!clear_all}) without knowing which modules memoize. *)
let registry : (unit -> unit) list ref = ref []
let registry_lock = Mutex.create ()

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let create name =
  let t = { memo_name = name; lock = Mutex.create (); tbl = Hashtbl.create 64 } in
  locked registry_lock (fun () ->
      registry := (fun () -> locked t.lock (fun () -> Hashtbl.reset t.tbl)) :: !registry);
  t

let name t = t.memo_name
let size t = locked t.lock (fun () -> Hashtbl.length t.tbl)
let clear t = locked t.lock (fun () -> Hashtbl.reset t.tbl)
let clear_all () = List.iter (fun f -> f ()) (locked registry_lock (fun () -> !registry))

let find_or_add t key f =
  (* [memo-lookup] fault: pretend the entry is absent (a lost/evicted
     memo) and recompute.  Values are deterministic in their keys, so a
     forced miss may only cost time, never change a result — which is
     exactly what the chaos suite asserts. *)
  let forced_miss = Fault.active () && Fault.hit "memo-lookup" in
  if forced_miss then Trace.count "memo-faults" 1;
  match
    if forced_miss then None else locked t.lock (fun () -> Hashtbl.find_opt t.tbl key)
  with
  | Some v ->
    Trace.count "memo-hits" 1;
    v
  | None ->
    (* Computed outside the lock: a racing domain may duplicate the work,
       but the value is deterministic in the key, so whichever insert wins
       stores the same answer — and costing runs are far too long to
       serialize behind one global mutex. *)
    let v = f () in
    locked t.lock (fun () -> if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v);
    Trace.count "memo-misses" 1;
    v
