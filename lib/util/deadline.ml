(** Ambient wall-clock deadlines (see the interface). *)

exception Expired of { deadline : float; now : float }

let () =
  Printexc.register_printer (function
    | Expired { deadline; now } ->
      Some
        (Printf.sprintf "Gcd2_util.Deadline.Expired(%.1f ms past the deadline)"
           (1000.0 *. (now -. deadline)))
    | _ -> None)

(* Domain-local, like the ambient trace: a freshly spawned domain has no
   deadline until its pool re-installs the parent's. *)
let ambient : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get () = Domain.DLS.get ambient

let with_deadline d f =
  let saved = get () in
  Domain.DLS.set ambient d;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let check () =
  match get () with
  | Some deadline ->
    let now = Trace.now () in
    if now > deadline then raise (Expired { deadline; now })
  | None -> ()
