(** Content-keyed memo tables for deterministic computations.

    A table maps a {e complete} description of a computation (its key) to
    the computed value.  The contract mirrors the artifact store's
    fingerprints one layer down: the key must determine the value
    exactly, so a lookup can stand in for the computation bit-for-bit.
    The main clients are the kernel costings — a {!Gcd2_codegen.Matmul}
    generator spec determines the emitted loop nest, hence its packed
    cycle count; costing each {e unique} spec once collapses the
    hundreds of per-node kernel generations of a cold compile into the
    dozens that are actually distinct.

    {b Key discipline}: always key by the full spec value (a pure-data
    record), never by a hand-picked subset of its fields — a new spec
    field then enters the key automatically.  Where a key must be
    assembled by hand (tuples over a function's arguments), every
    argument that can change the result must be a component; the spec
    types carry bump-reminder comments pointing here.

    Tables are domain-safe: lookups and inserts are serialized by a
    per-table mutex, while the computation itself runs unlocked (two
    domains racing on the same key both compute; the duplicate insert is
    dropped — values are deterministic, so no caller can observe the
    race).  Hits and misses are recorded against the ambient {!Trace} as
    [memo-hits] / [memo-misses] counters.

    Values live for the whole process, deliberately: a serving loop
    compiling many models reuses kernel costings across requests.
    Benchmarks measuring a {e cold} compile must call {!clear_all}
    first — "first kernel of a shape" and "repeat kernel" now cost very
    different amounts. *)

type ('a, 'b) t

(** [create name] — a fresh empty table, registered for {!clear_all}.
    Keys use structural equality and hashing, so they must be pure data
    (no functions, no cyclic values). *)
val create : string -> ('a, 'b) t

val name : ('a, 'b) t -> string

(** Number of memoized entries. *)
val size : ('a, 'b) t -> int

(** [find_or_add t key f] — the memoized value of [key], computing it
    with [f] on first use.  Records a [memo-hits] or [memo-misses]
    ambient trace count. *)
val find_or_add : ('a, 'b) t -> 'a -> (unit -> 'b) -> 'b

val clear : ('a, 'b) t -> unit

(** Empty every table ever {!create}d — restores the process to a true
    cold-compile state (benchmarks; tests that measure miss paths). *)
val clear_all : unit -> unit
