(** Wall-clock span tracing for the compiler pipeline.

    A trace is a tree of named spans.  Each span accumulates monotonic
    wall-clock seconds ({!now} is [Unix.gettimeofday] — never
    [Sys.time], which reports CPU time and misreports I/O-bound or
    multi-threaded phases), an invocation count, and named integer
    counters.  Spans with the same name under the same parent merge, so
    hot instrumentation points (one per generated kernel, say) stay
    compact in the tree.

    Two ways to record:

    - explicitly, against a trace value: {!with_span}, {!add};
    - ambiently, from code that has no trace in scope (the packer, the
      kernel generators): {!in_span} and {!count} are no-ops unless a
      trace has been installed with {!with_ambient}.

    Closed spans stream to a pluggable {!sink}: silent (default), one
    text line per close, or one JSON object per close (JSON-lines). *)

(** Wall-clock timestamp in seconds. *)
val now : unit -> float

type sink =
  | Silent
  | Text of Format.formatter  (** one line per closed span *)
  | Jsonl of Format.formatter  (** one JSON object per closed span *)

type span = {
  span_name : string;
  mutable seconds : float;  (** total wall time over all invocations *)
  mutable calls : int;
  mutable counters : (string * int) list;  (** insertion order *)
  mutable children : span list;  (** first-opened order *)
}

type t

(** [create ?sink name] — a fresh trace whose root span is [name]. *)
val create : ?sink:sink -> string -> t

val root : t -> span

(** [run_root t f] times [f] into the root span itself. *)
val run_root : t -> (unit -> 'a) -> 'a

(** [with_span t name f] runs [f] inside a child span [name] of the
    innermost open span, accumulating its wall time (also on raise). *)
val with_span : t -> string -> (unit -> 'a) -> 'a

(** [add t key n] adds [n] to counter [key] of the innermost open span. *)
val add : t -> string -> int -> unit

(** {2 Ambient instrumentation} *)

(** [with_ambient t f] installs [t] as the ambient trace for the
    duration of [f] (restored on exit, also on raise). *)
val with_ambient : t -> (unit -> 'a) -> 'a

(** Is an ambient trace installed?  Lets hot paths skip computing
    counter values that would be discarded. *)
val enabled : unit -> bool

(** Ambient {!add}; no-op without an ambient trace. *)
val count : string -> int -> unit

(** Ambient {!with_span}; just runs the thunk without an ambient trace. *)
val in_span : string -> (unit -> 'a) -> 'a

(** [absorb src] merges the counters and children of span [src] into the
    innermost open span of the ambient trace (no-op without one).  This
    is how a parallel phase folds its per-worker span trees back into
    the parent: each worker domain records into its own trace (the
    ambient trace is domain-local — traces themselves are unlocked
    single-domain structures), and the parent absorbs each worker's root
    span after the join, in worker order.  Same-named spans merge, so
    the result reads like the sequential tree; the absorbed seconds sum
    worker wall time and may legitimately exceed the enclosing span's
    wall time when workers overlap. *)
val absorb : span -> unit

(** Ambient {!span_seconds}: seconds recorded so far on the first span
    named [name] of the ambient trace; 0 without one.  Lets a late pass
    read an earlier pass's wall time without a trace in scope. *)
val ambient_span_seconds : string -> float

(** {2 Queries} *)

(** Depth-first search for the first span named [name]. *)
val find : t -> string -> span option

(** Seconds of the first span named [name]; 0 when absent. *)
val span_seconds : t -> string -> float

(** Counter [key] summed over every span of the tree. *)
val counter : t -> string -> int

(** All counter keys, in first-seen depth-first order. *)
val counter_names : t -> string list

(** Direct children of the root: [(name, seconds)] in order. *)
val top_spans : t -> (string * float) list

(** Wall time recorded on the root span. *)
val total_seconds : t -> float

(** Indented tree: per-span seconds, calls and counters. *)
val pp : Format.formatter -> t -> unit
