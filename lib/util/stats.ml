(** Small statistics helpers for the benchmark harness. *)

let mean xs =
  if xs = [] then 0.0
  else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean, the aggregate the paper reports for speedups. *)
let geomean xs =
  if xs = [] then 0.0
  else begin
    let logs = List.map (fun x -> if x <= 0.0 then 0.0 else log x) xs in
    exp (mean logs)
  end

let maxf xs = List.fold_left Float.max neg_infinity xs
let minf xs = List.fold_left Float.min infinity xs

(** Nearest-rank percentile (inclusive): the smallest element of [xs]
    such that at least [p] percent of the sample is <= it.  Works on a
    sorted copy; [0.0] on an empty sample (matching {!mean}). *)
let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let p50 xs = percentile 50.0 xs
let p95 xs = percentile 95.0 xs
let p99 xs = percentile 99.0 xs

(** Integer ceiling division. *)
let ceil_div a b = (a + b - 1) / b

(** Round [a] up to the next multiple of [b]. *)
let round_up a b = ceil_div a b * b

(* ------------------------------------------------------------------ *)
(* Mergeable log-bucket latency histograms                             *)

module Hist = struct
  (* Fixed geometric bucket layout: [sub_octave] buckets per factor of
     two, spanning [lo_ms, hi_ms).  The layout is a module-level
     constant, never per-instance state, so any two histograms merge by
     summing their count arrays — no rebinning, no retained samples. *)
  let sub_octave = 8
  let lo_ms = 1e-3
  let hi_ms = 1e6

  (* log2(hi/lo) * sub_octave interior buckets, plus an underflow bucket
     (index 0, everything <= lo including non-positive values) and an
     overflow bucket (last index, everything >= hi). *)
  let interior =
    int_of_float (Float.ceil (Float.log2 (hi_ms /. lo_ms) *. float_of_int sub_octave))

  let buckets = interior + 2

  type t = { counts : int array; mutable total : int }

  let create () = { counts = Array.make buckets 0; total = 0 }

  let bucket_of ms =
    if ms <= lo_ms then 0
    else if ms >= hi_ms then buckets - 1
    else
      let i = int_of_float (Float.log2 (ms /. lo_ms) *. float_of_int sub_octave) in
      1 + max 0 (min (interior - 1) i)

  (* Lower edge of bucket [i]; the value a percentile query reports.
     Reporting the edge (not a midpoint) keeps the estimate a value that
     is provably <= the true nearest-rank percentile's bucket upper
     bound, i.e. within one bucket ratio (2^(1/8) ~ 9%) of exact. *)
  let bucket_floor i =
    if i <= 0 then 0.0
    else if i >= buckets - 1 then hi_ms
    else lo_ms *. Float.pow 2.0 (float_of_int (i - 1) /. float_of_int sub_octave)

  let add t ms =
    let i = bucket_of ms in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let count t = t.total

  (* Pure merge: a fresh histogram holding both samples.  Associative
     and commutative by construction (elementwise integer sums), which
     is what lets per-worker histograms fold in any order. *)
  let merge a b =
    { counts = Array.map2 ( + ) a.counts b.counts; total = a.total + b.total }

  (* In-place variant for the hot path (a worker folding a request into
     its own histogram uses [add]; the stats emitter folds workers into
     an accumulator with this). *)
  let merge_into ~into src =
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.total <- into.total + src.total

  let copy t = { counts = Array.copy t.counts; total = t.total }
  let counts t = Array.copy t.counts

  (* Nearest-rank percentile over the bucket counts, mirroring
     {!percentile}: the lower edge of the bucket holding the rank-th
     sample; 0.0 on an empty histogram. *)
  let percentile p t =
    if t.total = 0 then 0.0
    else begin
      let rank =
        max 1 (min t.total (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.total))))
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < rank && !i < buckets do
        seen := !seen + t.counts.(!i);
        incr i
      done;
      bucket_floor (!i - 1)
    end

  let p50 t = percentile 50.0 t
  let p95 t = percentile 95.0 t
  let p99 t = percentile 99.0 t
end
