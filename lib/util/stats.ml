(** Small statistics helpers for the benchmark harness. *)

let mean xs =
  if xs = [] then 0.0
  else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean, the aggregate the paper reports for speedups. *)
let geomean xs =
  if xs = [] then 0.0
  else begin
    let logs = List.map (fun x -> if x <= 0.0 then 0.0 else log x) xs in
    exp (mean logs)
  end

let maxf xs = List.fold_left Float.max neg_infinity xs
let minf xs = List.fold_left Float.min infinity xs

(** Nearest-rank percentile (inclusive): the smallest element of [xs]
    such that at least [p] percent of the sample is <= it.  Works on a
    sorted copy; [0.0] on an empty sample (matching {!mean}). *)
let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let p50 xs = percentile 50.0 xs
let p95 xs = percentile 95.0 xs
let p99 xs = percentile 99.0 xs

(** Integer ceiling division. *)
let ceil_div a b = (a + b - 1) / b

(** Round [a] up to the next multiple of [b]. *)
let round_up a b = ceil_div a b * b
