(** Mutex-guarded whole-line log writer (see the interface). *)

(* One process-wide mutex covering both channels: out and err lines from
   concurrent domains must not interleave with each other either (a
   stats line half-printed into an outcome line is torn whichever
   channel each was aimed at when both end up on a terminal). *)
let mu = Mutex.create ()

type channels = { mutable out : out_channel; mutable err : out_channel }

let chans = { out = stdout; err = stderr }

let emit_to ch line =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      output_string ch line;
      output_char ch '\n';
      flush ch)

let emit line = emit_to chans.out line
let emit_err line = emit_to chans.err line

let redirect ?out ?err () =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      (match out with Some ch -> chans.out <- ch | None -> ());
      match err with Some ch -> chans.err <- ch | None -> ())

let with_redirect ?out ?err f =
  Mutex.lock mu;
  let saved_out = chans.out and saved_err = chans.err in
  (match out with Some ch -> chans.out <- ch | None -> ());
  (match err with Some ch -> chans.err <- ch | None -> ());
  Mutex.unlock mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock mu;
      chans.out <- saved_out;
      chans.err <- saved_err;
      Mutex.unlock mu)
    f
