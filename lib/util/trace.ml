(** Wall-clock span tracing (see the interface for the model). *)

let now () = Unix.gettimeofday ()

type sink =
  | Silent
  | Text of Format.formatter
  | Jsonl of Format.formatter

type span = {
  span_name : string;
  mutable seconds : float;
  mutable calls : int;
  mutable counters : (string * int) list;
  mutable children : span list;
}

type t = {
  root_span : span;
  mutable stack : span list;  (** open spans, innermost first; root at the bottom *)
  sink : sink;
}

let make_span name =
  { span_name = name; seconds = 0.0; calls = 0; counters = []; children = [] }

let create ?(sink = Silent) name =
  let root_span = make_span name in
  { root_span; stack = [ root_span ]; sink }

let root t = t.root_span

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let child_span parent name =
  match List.find_opt (fun s -> s.span_name = name) parent.children with
  | Some s -> s
  | None ->
    let s = make_span name in
    parent.children <- parent.children @ [ s ];
    s

let path t =
  String.concat "/" (List.rev_map (fun s -> s.span_name) t.stack)

let emit t span dt =
  match t.sink with
  | Silent -> ()
  | Text ppf ->
    Format.fprintf ppf "[trace] %s %.6fs" (path t) dt;
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) span.counters;
    Format.fprintf ppf "@."
  | Jsonl ppf ->
    Format.fprintf ppf {|{"span":"%s","path":"%s","seconds":%.6f,"calls":%d|}
      span.span_name (path t) dt span.calls;
    if span.counters <> [] then begin
      Format.fprintf ppf {|,"counters":{|};
      List.iteri
        (fun i (k, v) -> Format.fprintf ppf {|%s"%s":%d|} (if i > 0 then "," else "") k v)
        span.counters;
      Format.fprintf ppf "}"
    end;
    Format.fprintf ppf "}@."

let time_into t span f =
  let t0 = now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = now () -. t0 in
      span.seconds <- span.seconds +. dt;
      span.calls <- span.calls + 1;
      emit t span dt;
      t.stack <- List.tl t.stack)
    f

let with_span t name f =
  let parent = match t.stack with s :: _ -> s | [] -> t.root_span in
  let span = child_span parent name in
  t.stack <- span :: t.stack;
  time_into t span f

let run_root t f =
  t.stack <- [ t.root_span ];
  time_into t t.root_span f

let add t key n =
  let span = match t.stack with s :: _ -> s | [] -> t.root_span in
  let rec bump = function
    | [] -> [ (key, n) ]
    | (k, v) :: rest when k = key -> (k, v + n) :: rest
    | kv :: rest -> kv :: bump rest
  in
  span.counters <- bump span.counters

(* ------------------------------------------------------------------ *)
(* Ambient instrumentation                                             *)

(* Domain-local, not a global ref: traces are single-domain structures
   (mutable spans, no locks), so each worker domain of a parallel phase
   must record into its own trace.  A freshly spawned domain starts with
   no ambient trace; {!Pool} installs a per-worker one and the parent
   absorbs the worker span trees after the join. *)
let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_ambient () = Domain.DLS.get ambient

let with_ambient t f =
  let saved = get_ambient () in
  Domain.DLS.set ambient (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient saved) f

let enabled () = get_ambient () <> None

let count key n = match get_ambient () with Some t -> add t key n | None -> ()

let in_span name f =
  match get_ambient () with Some t -> with_span t name f | None -> f ()

(* ------------------------------------------------------------------ *)
(* Merging (parallel phases)                                           *)

let add_to_span span key n =
  let rec bump = function
    | [] -> [ (key, n) ]
    | (k, v) :: rest when k = key -> (k, v + n) :: rest
    | kv :: rest -> kv :: bump rest
  in
  span.counters <- bump span.counters

let rec merge_span dst src =
  dst.seconds <- dst.seconds +. src.seconds;
  dst.calls <- dst.calls + src.calls;
  List.iter (fun (k, v) -> add_to_span dst k v) src.counters;
  List.iter (fun c -> merge_span (child_span dst c.span_name) c) src.children

(** Merge the counters and children of [src] (a worker trace's root
    span) into the innermost open span of the ambient trace. *)
let absorb src =
  match get_ambient () with
  | None -> ()
  | Some t ->
    let dst = match t.stack with s :: _ -> s | [] -> t.root_span in
    List.iter (fun (k, v) -> add_to_span dst k v) src.counters;
    List.iter (fun c -> merge_span (child_span dst c.span_name) c) src.children

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let find t name =
  let rec go s =
    if s.span_name = name then Some s
    else
      List.fold_left (fun acc c -> match acc with Some _ -> acc | None -> go c) None s.children
  in
  go t.root_span

let span_seconds t name = match find t name with Some s -> s.seconds | None -> 0.0

let ambient_span_seconds name =
  match get_ambient () with Some t -> span_seconds t name | None -> 0.0

let fold t ~init ~f =
  let rec go acc s = List.fold_left go (f acc s) s.children in
  go init t.root_span

let counter t key =
  fold t ~init:0 ~f:(fun acc s ->
      match List.assoc_opt key s.counters with Some v -> acc + v | None -> acc)

let counter_names t =
  List.rev
    (fold t ~init:[] ~f:(fun acc s ->
         List.fold_left
           (fun acc (k, _) -> if List.mem k acc then acc else k :: acc)
           acc s.counters))

let top_spans t = List.map (fun s -> (s.span_name, s.seconds)) t.root_span.children

let total_seconds t = t.root_span.seconds

let pp ppf t =
  let rec go indent s =
    Format.fprintf ppf "%s%-*s %10.4f s" indent
      (max 1 (34 - String.length indent))
      s.span_name s.seconds;
    if s.calls > 1 then Format.fprintf ppf "  (%d calls)" s.calls;
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) s.counters;
    Format.fprintf ppf "@\n";
    List.iter (go (indent ^ "  ")) s.children
  in
  go "" t.root_span
