(** Deterministic fault-injection registry (see the interface for the
    model and the point catalog). *)

exception Injected of { point : string; nth : int }

let () =
  Printexc.register_printer (function
    | Injected { point; nth } ->
      Some (Printf.sprintf "Gcd2_util.Fault.Injected(%s, #%d)" point nth)
    | _ -> None)

let points =
  [
    "cache-read";
    "cache-write";
    "artifact-decode";
    "vm-run";
    "memo-lookup";
    "pool-worker";
    "flight-lease";
    "janitor-unlink";
  ]

let check_point p =
  if not (List.mem p points) then
    invalid_arg (Printf.sprintf "Fault: unknown injection point %S" p)

(* ------------------------------------------------------------------ *)
(* Specs                                                               *)

type spec = {
  seed : int;
  rules : (string * float) list;  (** point -> failure probability, spec order *)
}

let none = { seed = 0; rules = [] }

let parse s =
  let tokens =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ';')
    |> List.concat_map (String.split_on_char ' ')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  let rec go acc = function
    | [] -> Ok { acc with rules = List.rev acc.rules }
    | tok :: rest -> (
      match String.index_opt tok '=' with
      | None -> Error (Printf.sprintf "expected KEY=VALUE, got %S" tok)
      | Some i -> (
        let key = String.sub tok 0 i in
        let value = String.sub tok (i + 1) (String.length tok - i - 1) in
        match key with
        | "seed" -> (
          match int_of_string_opt value with
          | Some seed -> go { acc with seed } rest
          | None -> Error (Printf.sprintf "bad seed %S" value))
        | p when List.mem p points -> (
          match float_of_string_opt value with
          | Some prob when prob >= 0.0 && prob <= 1.0 ->
            go { acc with rules = (p, prob) :: acc.rules } rest
          | _ -> Error (Printf.sprintf "bad probability %S for point %s" value p))
        | p ->
          Error
            (Printf.sprintf "unknown injection point %S (points: %s)" p
               (String.concat ", " points))))
  in
  go none tokens

let parse_exn s =
  match parse s with Ok spec -> spec | Error e -> invalid_arg ("Fault.parse: " ^ e)

let to_string spec =
  String.concat ","
    (Printf.sprintf "seed=%d" spec.seed
    :: List.map (fun (p, prob) -> Printf.sprintf "%s=%g" p prob) spec.rules)

(* ------------------------------------------------------------------ *)
(* Installed state                                                     *)

(* One independent deterministic stream per point, so the injections a
   point sees depend only on the seed and on how many times that point
   was consulted — never on what the other points (or other domains'
   call interleavings against other points) did. *)
type stream = {
  prob : float;
  rng : Rng.t;
  mutable calls : int;
  mutable injected : int;
}

type installed = { spec : spec; streams : (string * stream) list }

let lock = Mutex.create ()
let current : installed option ref = ref None
let is_active = Atomic.make false
let env_err : string option ref = ref None

(* Suppression is domain-local: a worker domain running out-of-band
   verification under [with_disabled] must not blind the injection
   checks of requests being served concurrently on other domains (and a
   plain shared counter would lose cross-domain updates anyway). *)
let disabled_key = Domain.DLS.new_key (fun () -> 0)

let install spec =
  let streams =
    List.map
      (fun (p, prob) ->
        (p, { prob; rng = Rng.create (Hashtbl.hash (spec.seed, p)); calls = 0; injected = 0 }))
      spec.rules
  in
  Mutex.lock lock;
  current := (if spec.rules = [] then None else Some { spec; streams });
  Atomic.set is_active (spec.rules <> []);
  Mutex.unlock lock

let configure spec = install spec
let clear () = install none

let with_spec spec f =
  Mutex.lock lock;
  let saved = !current and saved_active = Atomic.get is_active in
  Mutex.unlock lock;
  install spec;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock lock;
      current := saved;
      Atomic.set is_active saved_active;
      Mutex.unlock lock)
    f

let with_disabled f =
  Domain.DLS.set disabled_key (Domain.DLS.get disabled_key + 1);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set disabled_key (Domain.DLS.get disabled_key - 1))
    f

let suppressed () = Domain.DLS.get disabled_key > 0
let with_suppression s f = if s then with_disabled f else f ()

let env_error () = !env_err

(* The environment spec is read once, at program start.  A malformed
   value must not silently run the process fault-free: [is_active] is
   forced on so the first injection check raises the parse error. *)
let () =
  match Sys.getenv_opt "GCD2_FAULTS" with
  | None | Some "" -> ()
  | Some s -> (
    match parse s with
    | Ok spec -> install spec
    | Error e ->
      env_err := Some (Printf.sprintf "GCD2_FAULTS: %s" e);
      Atomic.set is_active true)

let active () = Atomic.get is_active

(* [f stream] runs under the lock against [p]'s stream; [None] when
   injection is off (inactive, disabled, or no rule for [p]). *)
let with_stream p f =
  check_point p;
  if not (Atomic.get is_active) then None
  else
    match !env_err with
    | Some e -> invalid_arg e
    | None ->
      if Domain.DLS.get disabled_key > 0 then None
      else begin
        Mutex.lock lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock)
          (fun () ->
            match !current with
            | None -> None
            | Some inst -> (
              match List.assoc_opt p inst.streams with
              | None -> None
              | Some s -> Some (f s)))
      end

let draw s =
  s.calls <- s.calls + 1;
  if Rng.float s.rng < s.prob then begin
    s.injected <- s.injected + 1;
    true
  end
  else false

let hit p = match with_stream p draw with Some true -> true | _ -> false

let fire p =
  match with_stream p (fun s -> if draw s then Some s.injected else None) with
  | Some (Some nth) -> raise (Injected { point = p; nth })
  | _ -> ()

let corrupt p b =
  let bitpos =
    with_stream p (fun s ->
        if draw s && Bytes.length b > 0 then Some (Rng.int s.rng (8 * Bytes.length b))
        else None)
  in
  match bitpos with
  | Some (Some bit) ->
    let b = Bytes.copy b in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    b
  | _ -> b

let calls p = match with_stream p (fun s -> s.calls) with Some n -> n | None -> 0
let injections p = match with_stream p (fun s -> s.injected) with Some n -> n | None -> 0
