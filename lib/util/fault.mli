(** Deterministic fault injection for robustness testing.

    The reliability layer of the stack (cache quarantine, serve retries,
    graceful degradation) is only trustworthy if its failure paths are
    exercised — so every I/O or isolation boundary of the system declares
    a named {e injection point} and asks this registry whether to fail.
    In production the registry is empty and every check is a single
    boolean load; under a {e fault spec} (normally from the
    [GCD2_FAULTS] environment variable) each point fails with its
    configured probability, drawn from a per-point stream seeded by the
    spec — the same spec over the same call sequence injects exactly the
    same faults, so every chaos-test failure replays.

    The injection points, and what an injection means at each:

    - [cache-read] — {!Gcd2_store.Cache.lookup} raises {!Injected}
      before touching the entry (a transient read error);
    - [cache-write] — [Artifact.save] raises between writing the temp
      file and the atomic rename (a transient write error; the temp file
      must not leak);
    - [artifact-decode] — the bytes read by [Artifact.load] get one bit
      flipped before decoding (silent media corruption; the checksum
      must catch it and the cache must quarantine the entry);
    - [vm-run] — [Machine.run] raises on entry (a simulated execution
      fault);
    - [memo-lookup] — [Memo.find_or_add] pretends the entry is absent
      and recomputes (a lost memo entry; results must not change);
    - [pool-worker] — a [Pool] worker domain raises at startup (a
      crashed worker); the daemon worker loop consults the same point,
      so its watchdog/respawn path is chaos-testable;
    - [flight-lease] — a cross-process lease operation
      ([Gcd2_store.Lease.acquire]/[break]) raises {!Injected} (a lease
      I/O race; the flight disk tier must fall back to compiling
      locally, never wedge);
    - [janitor-unlink] — a janitor sweep unlink raises before removing
      the file (a sweep race with a concurrent process; the sweep must
      count the error and keep going, never abort the pass).

    Spec syntax (comma/semicolon/space separated):
    ["seed=42,cache-read=0.5,artifact-decode=1"] — [seed] (default 0)
    seeds the per-point streams; every other key is an injection point
    mapped to its failure probability in [[0, 1]]. *)

(** Raised by a firing injection point.  [point] is the point name,
    [nth] counts this point's injections so far (1-based). *)
exception Injected of { point : string; nth : int }

(** The catalog of injection points.  {!hit}/{!fire}/{!corrupt} reject
    names outside it, so a typo at a call site or in a spec cannot
    silently disable a fault. *)
val points : string list

type spec

(** The empty spec: no point ever fails. *)
val none : spec

val parse : string -> (spec, string) result

(** [parse] or [Invalid_argument]. *)
val parse_exn : string -> spec

val to_string : spec -> string

(** Install [spec] process-wide (all domains), resetting every
    per-point stream and counter. *)
val configure : spec -> unit

(** Remove any installed spec ([configure none]). *)
val clear : unit -> unit

(** [with_spec spec f] — run [f] under [spec], restoring the previously
    installed spec (and its stream positions) afterwards, also on raise. *)
val with_spec : spec -> (unit -> 'a) -> 'a

(** [with_disabled f] — run [f] with injection suppressed (streams do
    not advance).  Used by out-of-band verification (e.g. the serve
    loop re-checking a degraded artifact) that must observe the real
    system, not the chaos.  Suppression is {e domain-local}: a daemon
    worker verifying one request never blinds the injection checks of
    requests being served concurrently on other domains. *)
val with_disabled : (unit -> 'a) -> 'a

(** Is injection suppressed in the calling domain?  Freshly spawned
    domains do not inherit suppression — a parallel phase captures this
    and re-installs it in its workers with {!with_suppression}, the way
    {!Gcd2_util.Pool} re-installs the ambient deadline. *)
val suppressed : unit -> bool

(** [with_suppression s f] — run [f] under suppression when [s];
    plain [f ()] otherwise. *)
val with_suppression : bool -> (unit -> 'a) -> 'a

(** The parse error of the [GCD2_FAULTS] environment variable, if it
    was set but unparseable.  A malformed spec must fail loudly, not
    silently disable the chaos: every {!hit}/{!fire}/{!corrupt} raises
    [Invalid_argument] until it is fixed, and front ends check this at
    startup to report it nicely. *)
val env_error : unit -> string option

(** Is any fault spec installed?  One boolean load — hot paths guard
    their injection checks with it. *)
val active : unit -> bool

(** [hit point] — should this call site fail now?  Advances [point]'s
    stream; false when inactive, disabled, or the point has no rule. *)
val hit : string -> bool

(** [fire point] — raise {!Injected} when {!hit}. *)
val fire : string -> unit

(** [corrupt point b] — when {!hit}, a copy of [b] with one
    deterministically chosen bit flipped; [b] itself otherwise. *)
val corrupt : string -> bytes -> bytes

(** Times [point] was consulted / actually injected under the current
    spec. *)
val calls : string -> int

val injections : string -> int
