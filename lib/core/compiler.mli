(** The end-to-end GCD2 compiler (paper Figure 6), expressed as an
    instrumented {!Pipeline} of named passes: [validate], the graph
    optimizations ([eliminate-identity-reshapes], [fuse-activations]),
    [build-costs] (plan enumeration — kernel generation, unrolling and
    SDA packing), [select:<strategy>], [report].  Every compile carries
    a {!Gcd2_util.Trace} with per-pass wall time and the counters the
    deeper layers record (fused nodes, partitions, packets, stalls).
    The knobs expose every ablation of the paper's Section V.

    With [?cache_dir] the pipeline gains a [cache-lookup] /
    [cache-store] pair consulting the {!Gcd2_store.Cache}
    content-addressed artifact store.  [cache-lookup] runs right after
    the (cheap) graph optimizations, so the request digest is computed
    over the op universe the expensive passes actually see; a verified
    hit then satisfies every expensive pass ([build-costs], [select] and
    [report] do not run at all) and the compile is reconstructed from
    the stored artifact, bit-identical to the cold compile that stored
    it.  Hits, misses and bytes moved are recorded as [cache-hits] /
    [cache-misses] / [cache-bytes] trace counters; any corrupt or stale
    entry is silently a miss. *)

module Opcost = Gcd2_cost.Opcost
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph
module Trace = Gcd2_util.Trace

type selection =
  | Local  (** per-operator best plan, transformation costs ignored *)
  | Exhaustive  (** k^n global optimum (tiny graphs only) *)
  | Chain_dp  (** Equation 2; the graph must be a chain *)
  | Optimal_dp  (** exact frontier DP over the whole graph *)
  | Partitioned of int  (** GCD2(k): cost-optimal partitioning, parts <= k *)
  | Pbqp  (** Scholz-Eckstein PBQP reductions *)

val pp_selection : Format.formatter -> selection -> unit

type config = {
  name : string;
  opcost : Opcost.options;
  selection : selection;
  optimize_graph : bool;  (** activation fusion, identity elimination *)
}

(** The full GCD2 configuration: GCD2(13) selection, SDA packing, adaptive
    unrolling, division lookup, targeting
    {!Gcd2_devices.Desc.hexagon698}. *)
val default : config

(** Retarget a configuration to another device: plan enumeration, the
    roofline, layout-transform pricing and the request fingerprint all
    follow the descriptor. *)
val with_device : Gcd2_devices.Desc.t -> config -> config

(** The device a configuration targets. *)
val device : config -> Gcd2_devices.Desc.t

type compiled = {
  config : config;
  graph : Graph.t;  (** graph after optimization passes *)
  cost : Graphcost.t;
  assignment : int array;  (** chosen plan index per node *)
  report : Graphcost.report;
  selection_seconds : float;  (** wall time spent in global selection *)
  trace : Trace.t;  (** per-pass wall time and counters of this compile *)
}

(** Pass names of a configuration, in execution order (the [select] pass
    is named after the strategy, e.g. ["select:gcd2(13)"]; with
    [?cache_dir], [cache-lookup] follows the graph optimizations and
    [cache-store] closes the list). *)
val pass_names : ?cache_dir:string -> config -> string list

(** Content-address of the request [(g, config, disable)] — the key
    under which the compile cache stores/finds its artifact
    ({!Gcd2_store.Fingerprint.request}).  [g] is the input graph; the
    digest is computed over its optimized form, the op universe plan
    enumeration and selection actually see.  [disable] (default [[]])
    must match the [?disable] list the compile runs with: an ablated
    compile never shares an entry with a full one. *)
val fingerprint : ?disable:string list -> config -> Graph.t -> string

(** [compile_result ?config ?sink ?disable ?dump_after ?dump_ppf
    ?cache_dir ?jobs ?deadline_ms g] runs the pass pipeline over [g].

    - [sink] streams every closed trace span (default {!Trace.Silent});
    - [disable] skips the named passes (only the optional graph
      optimizations may be disabled safely — disabling a structural
      pass yields an [Invalid_request] diagnostic);
    - [dump_after] prints the artifact after each named pass to
      [dump_ppf] (default stderr);
    - [cache_dir] enables the content-addressed compile cache rooted at
      that directory (created on first store);
    - [jobs] (default [$GCD2_JOBS], else 1) sets the worker count of
      plan enumeration ({!Gcd2_util.Pool}).  Semantically inert: the
      compiled result is identical for every value, and [jobs] is
      deliberately excluded from {!fingerprint}, so compiles at
      different worker counts share cache entries;
    - [deadline_ms] bounds the compile's wall clock: an ambient
      {!Gcd2_util.Deadline} is installed and checked before every pass
      and every plan-enumeration task, and an expired deadline comes
      back as a [Deadline_exceeded] diagnostic.

    Every failure is a typed [Error] ({!Diag.t}) carrying the error
    code, the failing pass, a message and whether a retry can help —
    the pipeline never lets a raw exception cross this boundary. *)
val compile_result :
  ?config:config ->
  ?sink:Trace.sink ->
  ?disable:string list ->
  ?dump_after:string list ->
  ?dump_ppf:Format.formatter ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?deadline_ms:float ->
  Graph.t ->
  (compiled, Diag.t) result

(** The raising face of {!compile_result}: identical behaviour, but a
    failure raises {!Diag.Error} instead of returning [Error]. *)
val compile :
  ?config:config ->
  ?sink:Trace.sink ->
  ?disable:string list ->
  ?dump_after:string list ->
  ?dump_ppf:Format.formatter ->
  ?cache_dir:string ->
  ?jobs:int ->
  ?deadline_ms:float ->
  Graph.t ->
  compiled

(** Was this compile answered from the on-disk cache? *)
val from_cache : compiled -> bool

(** Latency in milliseconds. *)
val latency_ms : compiled -> float

(** One line of per-pass compile seconds. *)
val pp_phases : Format.formatter -> compiled -> unit

(** The full trace tree: per-pass and per-sub-span wall time, call
    counts and counters. *)
val pp_trace : Format.formatter -> compiled -> unit

val pp_summary : Format.formatter -> compiled -> unit
