(** The end-to-end GCD2 compiler (paper Figure 6), expressed as an
    instrumented {!Pipeline} of named passes: [validate], the graph
    optimizations ([eliminate-identity-reshapes], [fuse-activations]),
    [build-costs] (plan enumeration — kernel generation, unrolling and
    SDA packing), [select:<strategy>], [report].  Every compile carries
    a {!Gcd2_util.Trace} with per-pass wall time and the counters the
    deeper layers record (fused nodes, partitions, packets, stalls).
    The knobs expose every ablation of the paper's Section V. *)

module Opcost = Gcd2_cost.Opcost
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph
module Trace = Gcd2_util.Trace

type selection =
  | Local  (** per-operator best plan, transformation costs ignored *)
  | Exhaustive  (** k^n global optimum (tiny graphs only) *)
  | Chain_dp  (** Equation 2; the graph must be a chain *)
  | Optimal_dp  (** exact frontier DP over the whole graph *)
  | Partitioned of int  (** GCD2(k): cost-optimal partitioning, parts <= k *)
  | Pbqp  (** Scholz-Eckstein PBQP reductions *)

val pp_selection : Format.formatter -> selection -> unit

type config = {
  name : string;
  opcost : Opcost.options;
  selection : selection;
  optimize_graph : bool;  (** activation fusion, identity elimination *)
}

(** The full GCD2 configuration: GCD2(13) selection, SDA packing, adaptive
    unrolling, division lookup. *)
val default : config

type compiled = {
  config : config;
  graph : Graph.t;  (** graph after optimization passes *)
  cost : Graphcost.t;
  assignment : int array;  (** chosen plan index per node *)
  report : Graphcost.report;
  selection_seconds : float;  (** wall time spent in global selection *)
  trace : Trace.t;  (** per-pass wall time and counters of this compile *)
}

(** Pass names of a configuration, in execution order (the [select] pass
    is named after the strategy, e.g. ["select:gcd2(13)"]). *)
val pass_names : config -> string list

(** [compile ?config ?sink ?disable ?dump_after ?dump_ppf g] runs the
    pass pipeline over [g].

    - [sink] streams every closed trace span (default {!Trace.Silent});
    - [disable] skips the named passes (only the optional graph
      optimizations may be disabled safely — disabling a structural pass
      raises [Invalid_argument]);
    - [dump_after] prints the artifact after each named pass to
      [dump_ppf] (default stderr). *)
val compile :
  ?config:config ->
  ?sink:Trace.sink ->
  ?disable:string list ->
  ?dump_after:string list ->
  ?dump_ppf:Format.formatter ->
  Graph.t ->
  compiled

(** Latency in milliseconds. *)
val latency_ms : compiled -> float

(** One line of per-pass compile seconds. *)
val pp_phases : Format.formatter -> compiled -> unit

(** The full trace tree: per-pass and per-sub-span wall time, call
    counts and counters. *)
val pp_trace : Format.formatter -> compiled -> unit

val pp_summary : Format.formatter -> compiled -> unit
