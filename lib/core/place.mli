(** Cross-device placement: cost every node's execution plans on every
    device in a list and pick a (device, plan) pair per node with the
    existing global selection machinery (the per-device plan tables are
    flattened into one Equation-1 problem).  Intra-device edges pay the
    usual layout-transformation cost; cross-device edges ship the
    producer's output through shared memory at the slower DDR rate plus
    the consumer-side layout conversion.  The paper's host-vs-DSP split
    is the degenerate two-device case. *)

module Desc = Gcd2_devices.Desc
module Graphcost = Gcd2_cost.Graphcost
module Graph = Gcd2_graph.Graph

(** One node's placement: chosen device, plan index within that device's
    table, and the node's modeled cycles there. *)
type choice = { device : Desc.t; plan : int; cycles : float }

type placement = {
  devices : Desc.t array;
  costs : Graphcost.t array;  (** per-device single-device costings, same order *)
  choices : choice array;  (** per node *)
  objective : float;  (** solved objective over the joint problem *)
  per_device : (string * int) list;  (** nodes assigned to each device *)
}

(** [place ?max_size ?jobs ?sink ~devices g] — run the placement
    pipeline: one [build-costs:<name>] pass per device, then the joint
    [place] selection pass ([Solver.partitioned], part size [max_size],
    default 13).  Raises [Invalid_argument] on an empty device list. *)
val place :
  ?max_size:int ->
  ?jobs:int ->
  ?sink:Gcd2_util.Trace.sink ->
  devices:Desc.t list ->
  Graph.t ->
  placement

val pp : Format.formatter -> placement -> unit
