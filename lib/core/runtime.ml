(** Execution of a compiled model.

    Operators whose kernels the compiler fully lowers (matmul,
    convolution-as-GEMM, elementwise, activations) run as generated VLIW
    programs on the simulated DSP, under the exact plan (instruction,
    layout, unroll, packing) the global optimizer chose; the remaining
    data-staging operators (im2col gathers, pooling windows, reductions,
    reshapes) execute host-side with the reference semantics, as DESIGN.md
    documents.  Either way every operator's results are bit-identical to
    {!Gcd2_kernels.Interp} — the test suite runs whole models both ways
    and compares. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Pack = Gcd2_tensor.Pack
module Sat = Gcd2_util.Saturate
module Interp = Gcd2_kernels.Interp
module Lut = Gcd2_kernels.Lut
module Matmul = Gcd2_codegen.Matmul
module Testbench = Gcd2_codegen.Testbench
module Eltwise = Gcd2_codegen.Eltwise
module Machine = Gcd2_vm.Machine
module Plan = Gcd2_cost.Plan
open Gcd2_graph

(** Performance counters accumulated over the DSP-executed kernels. *)
type stats = { mutable vm_nodes : int; mutable host_nodes : int; mutable vm_cycles : int }

let rescale_table ?(negate = false) q_mult =
  Array.init 256 (fun byte ->
      let q = Sat.sign_extend ~bits:8 byte in
      let v = Sat.apply_multiplier q q_mult in
      Sat.sat8 (if negate then -v else v) land 0xff)

let is_identity_scale ~from ~into = from.Q.scale = into.Q.scale && from.Q.zero = into.Q.zero

(* ---------------- matmul-family on the VM ---------------- *)

let run_matmul ~stats ~options ~plan ~act (x : T.t) (w : T.t) ~m ~k ~n ~out_dims =
  let out_q = Q.default in
  let mult, shift = Q.requant_multiplier ~in_a:x.T.quant ~in_b:w.T.quant ~out:out_q in
  let tables, act_table =
    match act with
    | Some a -> ([ (1, Lut.of_act ~in_q:out_q ~out_q a) ], Some 1)
    | None -> ([], None)
  in
  let simd = Option.get plan.Plan.simd in
  let u = Option.get plan.Plan.unroll in
  (* the simulated DSP executes the hexagon698 ISA (128-byte vectors)
     whatever device the compile was costed for; wider targets are
     modeled analytically, not run *)
  let spec =
    {
      Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
      m;
      k;
      n;
      mult;
      shift;
      act_table;
      strategy = options.Gcd2_cost.Opcost.strategy;
      un = u.Gcd2_codegen.Unroll.un;
      ug = u.Gcd2_codegen.Unroll.ug;
      abuf = u.Gcd2_codegen.Unroll.abuf;
      wbuf = u.Gcd2_codegen.Unroll.wbuf;
      addressing = Matmul.Bump;
    }
  in
  let res = Testbench.run ~tables spec ~a:x.T.data ~w:w.T.data in
  stats.vm_nodes <- stats.vm_nodes + 1;
  stats.vm_cycles <- stats.vm_cycles + res.Testbench.cycles;
  T.of_array ~quant:out_q out_dims res.Testbench.data

(* ---------------- elementwise on the VM ---------------- *)

let stage_eltwise ~stats ~tables ~spec op layout ~rows ~cols a_data b_data =
  let packed_a = (Pack.pack layout ~rows ~cols a_data).Pack.bytes in
  let bytes = Array.length packed_a in
  let align x = Gcd2_util.Stats.round_up x 128 in
  let a_base = 0 in
  let b_base = align bytes in
  let out_base = 2 * align bytes in
  let m = Machine.scratch ~mem_bytes:(max 4096 ((3 * align bytes) + 256)) () in
  Machine.write_i8_array m ~addr:a_base packed_a;
  (match b_data with
  | Some b -> Machine.write_i8_array m ~addr:b_base (Pack.pack layout ~rows ~cols b).Pack.bytes
  | None -> ());
  let prog =
    match op with
    | `Binary bop -> Eltwise.binary ~tables bop spec { Eltwise.a_base; b_base; out_base }
    | `Unary table -> Eltwise.unary ~tables ~table spec ~in_base:a_base ~out_base
  in
  Machine.run m prog;
  let out_bytes = Machine.read_i8_array m ~addr:out_base ~len:bytes in
  stats.vm_nodes <- stats.vm_nodes + 1;
  stats.vm_cycles <- stats.vm_cycles + (Machine.counters m).Machine.cycles;
  Pack.unpack { Pack.layout; rows; cols; bytes = out_bytes }

let run_binary ~stats ~options ~plan op (a : T.t) (b : T.t) =
  let out_q = Q.default in
  let layout = plan.Plan.layout in
  let rows, cols = T.matrix_dims a in
  let vectors =
    Gcd2_util.Stats.ceil_div (Gcd2_tensor.Layout.padded_bytes layout ~rows ~cols) 128
  in
  let base_spec =
    Eltwise.default_spec ~strategy:options.Gcd2_cost.Opcost.strategy ~vectors ()
  in
  let tables = ref [] in
  let add_table id t = tables := (id, t) :: !tables in
  let spec, bop =
    match op with
    | `Add | `Sub ->
      let neg = op = `Sub in
      let ra =
        if is_identity_scale ~from:a.T.quant ~into:out_q then None
        else begin
          add_table 2 (rescale_table (Q.rescale_multiplier ~from:a.T.quant ~into:out_q));
          Some 2
        end
      in
      (* subtraction always rescales B through the (negating) table so the
         reference's clamp-then-add semantics hold even at -128 *)
      let rb =
        if (not neg) && is_identity_scale ~from:b.T.quant ~into:out_q then None
        else begin
          add_table 3
            (rescale_table ~negate:neg (Q.rescale_multiplier ~from:b.T.quant ~into:out_q));
          Some 3
        end
      in
      ({ base_spec with Eltwise.rescale_a = ra; rescale_b = rb }, Eltwise.Badd)
    | `Mul ->
      let mult, shift = Q.requant_multiplier ~in_a:a.T.quant ~in_b:b.T.quant ~out:out_q in
      ({ base_spec with Eltwise.mult; shift }, Eltwise.Bmul)
  in
  (* execute with the unroll the cost model chose (outputs are
     unroll-independent; this keeps executed and costed programs equal) *)
  let spec =
    { spec with
      Eltwise.uv =
        Gcd2_cost.Streams.binary_uv ~uv:options.Gcd2_cost.Opcost.eltwise_uv
          ~device:spec.Eltwise.device ~strategy:spec.Eltwise.strategy ~op:bop ~vectors ()
    }
  in
  let data =
    stage_eltwise ~stats ~tables:!tables ~spec (`Binary bop) layout ~rows ~cols a.T.data
      (Some b.T.data)
  in
  T.of_array ~quant:out_q (Array.copy a.T.dims) data

let run_unary ~stats ~options ~plan node_op (x : T.t) =
  match Interp.unary_spec node_op with
  | None -> None
  | Some (out_q, f) ->
    let layout = plan.Plan.layout in
    let rows, cols = T.matrix_dims x in
    let vectors =
      Gcd2_util.Stats.ceil_div (Gcd2_tensor.Layout.padded_bytes layout ~rows ~cols) 128
    in
    let spec = Eltwise.default_spec ~strategy:options.Gcd2_cost.Opcost.strategy ~vectors () in
    let spec =
      { spec with
        Eltwise.uv =
          Gcd2_cost.Streams.unary_uv ~uv:options.Gcd2_cost.Opcost.eltwise_uv
            ~device:spec.Eltwise.device ~strategy:spec.Eltwise.strategy ~vectors ()
      }
    in
    let table = Lut.of_fn ~in_q:x.T.quant ~out_q f in
    let data =
      stage_eltwise ~stats ~tables:[ (1, table) ] ~spec (`Unary 1) layout ~rows ~cols
        x.T.data None
    in
    Some (T.of_array ~quant:out_q (Array.copy x.T.dims) data)

(* ---------------- the driver ---------------- *)

let weight_of (node : Graph.node) =
  match node.Graph.weight with
  | Some w -> w
  | None -> invalid_arg (Fmt.str "Runtime: node %s has no weights" node.Graph.name)

(** Run a compiled model on the simulated DSP.  Returns all per-node
    outputs plus the VM execution statistics. *)
let run_with_stats (c : Compiler.compiled) ~inputs =
  let g = c.Compiler.graph in
  let options = c.Compiler.config.Compiler.opcost in
  let stats = { vm_nodes = 0; host_nodes = 0; vm_cycles = 0 } in
  let vals = Array.make (Graph.size g) None in
  let value i =
    match vals.(i) with Some t -> t | None -> invalid_arg "Runtime: dangling input"
  in
  Graph.iter
    (fun node ->
      let plan = c.Compiler.cost.Gcd2_cost.Graphcost.plans.(node.Graph.id).(c.Compiler.assignment.(node.Graph.id)) in
      let host () =
        stats.host_nodes <- stats.host_nodes + 1;
        Interp.eval_node node (List.map value node.Graph.inputs)
      in
      let result =
        match node.Graph.op with
        | Op.Input { shape } -> (
          match List.assoc_opt node.Graph.id inputs with
          | Some t ->
            if t.T.dims <> shape then invalid_arg "Runtime: input shape mismatch";
            t
          | None -> invalid_arg (Fmt.str "Runtime: missing input %d" node.Graph.id))
        | Op.Matmul { cout; act } when plan.Plan.simd <> None ->
          let x = value (List.hd node.Graph.inputs) in
          let m, k = T.matrix_dims x in
          run_matmul ~stats ~options ~plan ~act x (weight_of node) ~m ~k ~n:cout
            ~out_dims:(Array.copy node.Graph.out_shape)
        | Op.Conv2d { kh; kw; stride; pad; cout; act } when plan.Plan.simd <> None ->
          let x = value (List.hd node.Graph.inputs) in
          let patches, rows, cols, _, _ = Interp.im2col x ~kh ~kw ~stride ~pad in
          let staged = T.of_array ~quant:x.T.quant [| rows; cols |] patches in
          let w = weight_of node in
          let w2 = T.reshape w [| cols; cout |] in
          run_matmul ~stats ~options ~plan ~act staged w2 ~m:rows ~k:cols ~n:cout
            ~out_dims:(Array.copy node.Graph.out_shape)
        | Op.Add when (value (List.hd node.Graph.inputs)).T.dims
                      = (value (List.nth node.Graph.inputs 1)).T.dims ->
          let a = value (List.hd node.Graph.inputs) in
          let b = value (List.nth node.Graph.inputs 1) in
          run_binary ~stats ~options ~plan `Add a b
        | Op.Sub when (value (List.hd node.Graph.inputs)).T.dims
                      = (value (List.nth node.Graph.inputs 1)).T.dims ->
          let a = value (List.hd node.Graph.inputs) in
          let b = value (List.nth node.Graph.inputs 1) in
          run_binary ~stats ~options ~plan `Sub a b
        | Op.Mul when (value (List.hd node.Graph.inputs)).T.dims
                      = (value (List.nth node.Graph.inputs 1)).T.dims ->
          let a = value (List.hd node.Graph.inputs) in
          let b = value (List.nth node.Graph.inputs 1) in
          run_binary ~stats ~options ~plan `Mul a b
        | (Op.Pow _ | Op.Relu | Op.Relu6 | Op.Hard_swish | Op.Sigmoid | Op.Tanh | Op.Gelu)
          as op -> (
          let x = value (List.hd node.Graph.inputs) in
          match run_unary ~stats ~options ~plan op x with
          | Some t -> t
          | None -> host ())
        | _ -> host ()
      in
      vals.(node.Graph.id) <- Some result)
    g;
  let outputs =
    Array.map
      (function Some t -> t | None -> invalid_arg "Runtime: unevaluated node")
      vals
  in
  if Gcd2_util.Trace.enabled () then begin
    Gcd2_util.Trace.count "vm-nodes" stats.vm_nodes;
    Gcd2_util.Trace.count "host-nodes" stats.host_nodes;
    Gcd2_util.Trace.count "vm-cycles" stats.vm_cycles
  end;
  (outputs, stats)

let run c ~inputs = fst (run_with_stats c ~inputs)
