(** Execution of a compiled model.

    Operators whose kernels the compiler fully lowers (matmul,
    convolution-as-GEMM, elementwise, activations) run as generated VLIW
    programs on the simulated DSP, under the exact plan (instruction,
    layout, unroll, packing) the global optimizer chose; the remaining
    data-staging operators (im2col gathers, pooling windows, reductions,
    reshapes) execute host-side with the reference semantics, as DESIGN.md
    documents.  Either way every operator's results are bit-identical to
    {!Gcd2_kernels.Interp} — the test suite runs whole models both ways
    and compares. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Pack = Gcd2_tensor.Pack
module Sat = Gcd2_util.Saturate
module Interp = Gcd2_kernels.Interp
module Lut = Gcd2_kernels.Lut
module Matmul = Gcd2_codegen.Matmul
module Testbench = Gcd2_codegen.Testbench
module Eltwise = Gcd2_codegen.Eltwise
module Machine = Gcd2_vm.Machine
module Plan = Gcd2_cost.Plan
open Gcd2_graph

(** Performance counters accumulated over the DSP-executed kernels. *)
type kind_stat = { mutable k_vm : int; mutable k_host : int; mutable k_cycles : int }

type stats = {
  mutable vm_nodes : int;
  mutable host_nodes : int;
  mutable vm_cycles : int;
  kinds : (string, kind_stat) Hashtbl.t;
}

(* Coarse operator kind for the per-kind split: the operator family
   without its shape parameters, so all conv2d nodes share one row. *)
let kind_of (op : Op.t) =
  match op with
  | Op.Input _ -> "input"
  | Op.Constant _ -> "const"
  | Op.Conv2d _ -> "conv2d"
  | Op.Depthwise_conv2d _ -> "dwconv"
  | Op.Transposed_conv2d _ -> "tconv"
  | Op.Matmul _ -> "matmul"
  | Op.Batch_matmul _ -> "bmm"
  | Op.Add -> "add"
  | Op.Mul -> "mul"
  | Op.Sub -> "sub"
  | Op.Div -> "div"
  | Op.Pow _ -> "pow"
  | Op.Relu -> "relu"
  | Op.Relu6 -> "relu6"
  | Op.Hard_swish -> "hswish"
  | Op.Sigmoid -> "sigmoid"
  | Op.Tanh -> "tanh"
  | Op.Gelu -> "gelu"
  | Op.Softmax -> "softmax"
  | Op.Layer_norm -> "layer_norm"
  | Op.Max_pool _ -> "maxpool"
  | Op.Avg_pool _ -> "avgpool"
  | Op.Global_avg_pool -> "gap"
  | Op.Reshape _ -> "reshape"
  | Op.Transpose _ -> "transpose"
  | Op.Concat _ -> "concat"
  | Op.Pad_spatial _ -> "pad"
  | Op.Upsample _ -> "upsample"

let kind_stats stats kind =
  match Hashtbl.find_opt stats.kinds kind with
  | Some k -> k
  | None ->
    let k = { k_vm = 0; k_host = 0; k_cycles = 0 } in
    Hashtbl.add stats.kinds kind k;
    k

let rescale_table ?(negate = false) q_mult =
  Array.init 256 (fun byte ->
      let q = Sat.sign_extend ~bits:8 byte in
      let v = Sat.apply_multiplier q q_mult in
      Sat.sat8 (if negate then -v else v) land 0xff)

let is_identity_scale ~from ~into = from.Q.scale = into.Q.scale && from.Q.zero = into.Q.zero

(* ---------------- matmul-family on the VM ---------------- *)

let run_matmul ~stats ~options ~plan ~act (x : T.t) (w : T.t) ~m ~k ~n ~out_dims =
  let out_q = Q.default in
  let mult, shift = Q.requant_multiplier ~in_a:x.T.quant ~in_b:w.T.quant ~out:out_q in
  let tables, act_table =
    match act with
    | Some a -> ([ (1, Lut.of_act ~in_q:out_q ~out_q a) ], Some 1)
    | None -> ([], None)
  in
  let simd = Option.get plan.Plan.simd in
  let u = Option.get plan.Plan.unroll in
  (* the simulated DSP executes the hexagon698 ISA (128-byte vectors)
     whatever device the compile was costed for; wider targets are
     modeled analytically, not run *)
  let spec =
    {
      Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
      m;
      k;
      n;
      mult;
      shift;
      act_table;
      strategy = options.Gcd2_cost.Opcost.strategy;
      un = u.Gcd2_codegen.Unroll.un;
      ug = u.Gcd2_codegen.Unroll.ug;
      abuf = u.Gcd2_codegen.Unroll.abuf;
      wbuf = u.Gcd2_codegen.Unroll.wbuf;
      addressing = Matmul.Bump;
    }
  in
  let res = Testbench.run ~tables spec ~a:x.T.data ~w:w.T.data in
  stats.vm_nodes <- stats.vm_nodes + 1;
  stats.vm_cycles <- stats.vm_cycles + res.Testbench.cycles;
  T.of_array ~quant:out_q out_dims res.Testbench.data

(* Batched matmul: the two operands are both dynamic (attention scores
   and values), so each batch slice reuses the tiled matmul generator
   with the slice's B staged as the weight matrix — host-transposed
   first when the graph asks for B^T, exactly as the reference indexes
   it. *)
let run_batch_matmul ~stats ~options ~plan ~transpose_b (a : T.t) (b : T.t) =
  let out_q = Q.default in
  let ra = Array.length a.T.dims in
  let batch = Array.fold_left ( * ) 1 (Array.sub a.T.dims 0 (ra - 2)) in
  let m = a.T.dims.(ra - 2) and k = a.T.dims.(ra - 1) in
  let n = if transpose_b then b.T.dims.(ra - 2) else b.T.dims.(ra - 1) in
  let mult, shift = Q.requant_multiplier ~in_a:a.T.quant ~in_b:b.T.quant ~out:out_q in
  let simd = Option.get plan.Plan.simd in
  let u = Option.get plan.Plan.unroll in
  let spec =
    {
      Matmul.device = Gcd2_devices.Desc.hexagon698;
      simd;
      m;
      k;
      n;
      mult;
      shift;
      act_table = None;
      strategy = options.Gcd2_cost.Opcost.strategy;
      un = u.Gcd2_codegen.Unroll.un;
      ug = u.Gcd2_codegen.Unroll.ug;
      abuf = u.Gcd2_codegen.Unroll.abuf;
      wbuf = u.Gcd2_codegen.Unroll.wbuf;
      addressing = Matmul.Bump;
    }
  in
  let out = Array.make (batch * m * n) 0 in
  let cycles = ref 0 in
  for bt = 0 to batch - 1 do
    let a_slice = Array.sub a.T.data (bt * m * k) (m * k) in
    let b_slice =
      if transpose_b then
        Array.init (k * n) (fun i ->
            let l = i / n and j = i mod n in
            b.T.data.((bt * k * n) + (j * k) + l))
      else Array.sub b.T.data (bt * k * n) (k * n)
    in
    let res = Testbench.run spec ~a:a_slice ~w:b_slice in
    Array.blit res.Testbench.data 0 out (bt * m * n) (m * n);
    cycles := !cycles + res.Testbench.cycles
  done;
  stats.vm_nodes <- stats.vm_nodes + 1;
  stats.vm_cycles <- stats.vm_cycles + !cycles;
  let dims = Array.copy a.T.dims in
  dims.(ra - 1) <- n;
  T.of_array ~quant:out_q dims out

(* ---------------- row operators on the VM ---------------- *)

let run_softmax ~stats ~options (x : T.t) =
  let out_q = Q.make (1.0 /. 128.0) in
  let _, cols = T.matrix_dims x in
  let rows = T.numel x / cols in
  let data, cycles =
    Gcd2_codegen.Rowops.run_softmax ~strategy:options.Gcd2_cost.Opcost.strategy ~rows
      ~cols ~scale:x.T.quant.Q.scale x.T.data
  in
  stats.vm_nodes <- stats.vm_nodes + 1;
  stats.vm_cycles <- stats.vm_cycles + cycles;
  T.of_array ~quant:out_q (Array.copy x.T.dims) data

let run_layer_norm ~stats ~options (x : T.t) =
  let out_q = Q.make (1.0 /. 16.0) in
  let _, cols = T.matrix_dims x in
  let rows = T.numel x / cols in
  let data, cycles =
    Gcd2_codegen.Rowops.run_layer_norm ~strategy:options.Gcd2_cost.Opcost.strategy ~rows
      ~cols ~scale:x.T.quant.Q.scale ~out_scale:out_q.Q.scale x.T.data
  in
  stats.vm_nodes <- stats.vm_nodes + 1;
  stats.vm_cycles <- stats.vm_cycles + cycles;
  T.of_array ~quant:out_q (Array.copy x.T.dims) data

(* ---------------- elementwise on the VM ---------------- *)

let stage_eltwise ~stats ~tables ~spec op layout ~rows ~cols a_data b_data =
  let packed_a = (Pack.pack layout ~rows ~cols a_data).Pack.bytes in
  let bytes = Array.length packed_a in
  let align x = Gcd2_util.Stats.round_up x 128 in
  let a_base = 0 in
  let b_base = align bytes in
  let out_base = 2 * align bytes in
  let m = Machine.scratch ~mem_bytes:(max 4096 ((3 * align bytes) + 256)) () in
  Machine.write_i8_array m ~addr:a_base packed_a;
  (match b_data with
  | Some b -> Machine.write_i8_array m ~addr:b_base (Pack.pack layout ~rows ~cols b).Pack.bytes
  | None -> ());
  let prog =
    match op with
    | `Binary bop -> Eltwise.binary ~tables bop spec { Eltwise.a_base; b_base; out_base }
    | `Unary table -> Eltwise.unary ~tables ~table spec ~in_base:a_base ~out_base
  in
  Machine.run m prog;
  let out_bytes = Machine.read_i8_array m ~addr:out_base ~len:bytes in
  stats.vm_nodes <- stats.vm_nodes + 1;
  stats.vm_cycles <- stats.vm_cycles + (Machine.counters m).Machine.cycles;
  Pack.unpack { Pack.layout; rows; cols; bytes = out_bytes }

let run_binary ~stats ~options ~plan op (a : T.t) (b : T.t) =
  let out_q = Q.default in
  let layout = plan.Plan.layout in
  let rows, cols = T.matrix_dims a in
  let vectors =
    Gcd2_util.Stats.ceil_div (Gcd2_tensor.Layout.padded_bytes layout ~rows ~cols) 128
  in
  let base_spec =
    Eltwise.default_spec ~strategy:options.Gcd2_cost.Opcost.strategy ~vectors ()
  in
  let tables = ref [] in
  let add_table id t = tables := (id, t) :: !tables in
  let spec, bop =
    match op with
    | `Add | `Sub ->
      let neg = op = `Sub in
      let ra =
        if is_identity_scale ~from:a.T.quant ~into:out_q then None
        else begin
          add_table 2 (rescale_table (Q.rescale_multiplier ~from:a.T.quant ~into:out_q));
          Some 2
        end
      in
      (* subtraction always rescales B through the (negating) table so the
         reference's clamp-then-add semantics hold even at -128 *)
      let rb =
        if (not neg) && is_identity_scale ~from:b.T.quant ~into:out_q then None
        else begin
          add_table 3
            (rescale_table ~negate:neg (Q.rescale_multiplier ~from:b.T.quant ~into:out_q));
          Some 3
        end
      in
      ({ base_spec with Eltwise.rescale_a = ra; rescale_b = rb }, Eltwise.Badd)
    | `Mul ->
      let mult, shift = Q.requant_multiplier ~in_a:a.T.quant ~in_b:b.T.quant ~out:out_q in
      ({ base_spec with Eltwise.mult; shift }, Eltwise.Bmul)
  in
  (* execute with the unroll the cost model chose (outputs are
     unroll-independent; this keeps executed and costed programs equal) *)
  let spec =
    { spec with
      Eltwise.uv =
        Gcd2_cost.Streams.binary_uv ~uv:options.Gcd2_cost.Opcost.eltwise_uv
          ~device:spec.Eltwise.device ~strategy:spec.Eltwise.strategy ~op:bop ~vectors ()
    }
  in
  let data =
    stage_eltwise ~stats ~tables:!tables ~spec (`Binary bop) layout ~rows ~cols a.T.data
      (Some b.T.data)
  in
  T.of_array ~quant:out_q (Array.copy a.T.dims) data

let run_unary ~stats ~options ~plan node_op (x : T.t) =
  match Interp.unary_spec node_op with
  | None -> None
  | Some (out_q, f) ->
    let layout = plan.Plan.layout in
    let rows, cols = T.matrix_dims x in
    let vectors =
      Gcd2_util.Stats.ceil_div (Gcd2_tensor.Layout.padded_bytes layout ~rows ~cols) 128
    in
    let spec = Eltwise.default_spec ~strategy:options.Gcd2_cost.Opcost.strategy ~vectors () in
    let spec =
      { spec with
        Eltwise.uv =
          Gcd2_cost.Streams.unary_uv ~uv:options.Gcd2_cost.Opcost.eltwise_uv
            ~device:spec.Eltwise.device ~strategy:spec.Eltwise.strategy ~vectors ()
      }
    in
    let table = Lut.of_fn ~in_q:x.T.quant ~out_q f in
    let data =
      stage_eltwise ~stats ~tables:[ (1, table) ] ~spec (`Unary 1) layout ~rows ~cols
        x.T.data None
    in
    Some (T.of_array ~quant:out_q (Array.copy x.T.dims) data)

(* ---------------- the driver ---------------- *)

let weight_of (node : Graph.node) =
  match node.Graph.weight with
  | Some w -> w
  | None -> invalid_arg (Fmt.str "Runtime: node %s has no weights" node.Graph.name)

(** Run a compiled model on the simulated DSP.  Returns all per-node
    outputs plus the VM execution statistics. *)
let run_with_stats (c : Compiler.compiled) ~inputs =
  let g = c.Compiler.graph in
  let options = c.Compiler.config.Compiler.opcost in
  let stats =
    { vm_nodes = 0; host_nodes = 0; vm_cycles = 0; kinds = Hashtbl.create 16 }
  in
  let vals = Array.make (Graph.size g) None in
  let value i =
    match vals.(i) with Some t -> t | None -> invalid_arg "Runtime: dangling input"
  in
  Graph.iter
    (fun node ->
      let plan = c.Compiler.cost.Gcd2_cost.Graphcost.plans.(node.Graph.id).(c.Compiler.assignment.(node.Graph.id)) in
      let host () =
        stats.host_nodes <- stats.host_nodes + 1;
        Interp.eval_node node (List.map value node.Graph.inputs)
      in
      let vm0 = stats.vm_nodes and cycles0 = stats.vm_cycles in
      let result =
        match node.Graph.op with
        | Op.Input { shape } -> (
          match List.assoc_opt node.Graph.id inputs with
          | Some t ->
            if t.T.dims <> shape then invalid_arg "Runtime: input shape mismatch";
            t
          | None -> invalid_arg (Fmt.str "Runtime: missing input %d" node.Graph.id))
        | Op.Matmul { cout; act } when plan.Plan.simd <> None ->
          let x = value (List.hd node.Graph.inputs) in
          let m, k = T.matrix_dims x in
          run_matmul ~stats ~options ~plan ~act x (weight_of node) ~m ~k ~n:cout
            ~out_dims:(Array.copy node.Graph.out_shape)
        | Op.Conv2d { kh; kw; stride; pad; cout; act } when plan.Plan.simd <> None ->
          let x = value (List.hd node.Graph.inputs) in
          let patches, rows, cols, _, _ = Interp.im2col x ~kh ~kw ~stride ~pad in
          let staged = T.of_array ~quant:x.T.quant [| rows; cols |] patches in
          let w = weight_of node in
          let w2 = T.reshape w [| cols; cout |] in
          run_matmul ~stats ~options ~plan ~act staged w2 ~m:rows ~k:cols ~n:cout
            ~out_dims:(Array.copy node.Graph.out_shape)
        | Op.Batch_matmul { transpose_b }
          when options.Gcd2_cost.Opcost.attn_kernels && plan.Plan.simd <> None
               && plan.Plan.unroll <> None ->
          let a = value (List.hd node.Graph.inputs) in
          let b = value (List.nth node.Graph.inputs 1) in
          run_batch_matmul ~stats ~options ~plan ~transpose_b a b
        | Op.Softmax when options.Gcd2_cost.Opcost.attn_kernels ->
          run_softmax ~stats ~options (value (List.hd node.Graph.inputs))
        | Op.Layer_norm when options.Gcd2_cost.Opcost.attn_kernels ->
          run_layer_norm ~stats ~options (value (List.hd node.Graph.inputs))
        | (Op.Add | Op.Sub | Op.Mul) as op ->
          let a = value (List.hd node.Graph.inputs) in
          let b = value (List.nth node.Graph.inputs 1) in
          let bop = match op with Op.Add -> `Add | Op.Sub -> `Sub | _ -> `Mul in
          let na = T.numel a and nb = T.numel b in
          if a.T.dims = b.T.dims then run_binary ~stats ~options ~plan bop a b
          else if options.Gcd2_cost.Opcost.attn_kernels && nb < na && na mod nb = 0
          then
            (* broadcast: tile the smaller operand host-side; the
               reference's [i mod nb] indexing is exactly this
               expansion, so the vector kernel stays bit-identical *)
            let tiled =
              T.of_array ~quant:b.T.quant (Array.copy a.T.dims)
                (Array.init na (fun i -> b.T.data.(i mod nb)))
            in
            run_binary ~stats ~options ~plan bop a tiled
          else host ()
        | (Op.Pow _ | Op.Relu | Op.Relu6 | Op.Hard_swish | Op.Sigmoid | Op.Tanh | Op.Gelu)
          as op -> (
          let x = value (List.hd node.Graph.inputs) in
          match run_unary ~stats ~options ~plan op x with
          | Some t -> t
          | None -> host ())
        | _ -> host ()
      in
      (match node.Graph.op with
      | Op.Input _ -> ()
      | op ->
        let ks = kind_stats stats (kind_of op) in
        if stats.vm_nodes > vm0 then begin
          ks.k_vm <- ks.k_vm + 1;
          ks.k_cycles <- ks.k_cycles + (stats.vm_cycles - cycles0)
        end
        else ks.k_host <- ks.k_host + 1);
      vals.(node.Graph.id) <- Some result)
    g;
  let outputs =
    Array.map
      (function Some t -> t | None -> invalid_arg "Runtime: unevaluated node")
      vals
  in
  if Gcd2_util.Trace.enabled () then begin
    Gcd2_util.Trace.count "vm-nodes" stats.vm_nodes;
    Gcd2_util.Trace.count "host-nodes" stats.host_nodes;
    Gcd2_util.Trace.count "vm-cycles" stats.vm_cycles
  end;
  (outputs, stats)

let run c ~inputs = fst (run_with_stats c ~inputs)
