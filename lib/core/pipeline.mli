(** A typed, instrumented pass pipeline.

    A pass is a named artifact transformer with an optional dump
    pretty-printer.  {!run} executes a pass list in order, timing each
    pass into a {!Gcd2_util.Trace} span bearing its name; pass bodies
    (and anything they call, down to the kernel generators and the VLIW
    packer) record counters and sub-spans against the same trace through
    the ambient {!Gcd2_util.Trace.count} / {!Gcd2_util.Trace.in_span}
    hooks.  This is the LLVM-pass-manager shape the compiler driver is
    expressed in — every stage first-class, observable and toggleable. *)

module Trace = Gcd2_util.Trace

type ('env, 'a) pass = {
  name : string;
  run : 'env -> 'a -> 'a;
  dump : (Format.formatter -> 'a -> unit) option;
      (** pretty-print the artifact after this pass (for [--dump-after]) *)
  skip : ('a -> bool) option;
      (** when the predicate holds on the incoming artifact the pass does
          not run at all — no trace span is opened and no dump fires (how
          a cache hit elides the expensive phases) *)
}

val pass :
  ?dump:(Format.formatter -> 'a -> unit) ->
  ?skip:('a -> bool) ->
  string ->
  ('env -> 'a -> 'a) ->
  ('env, 'a) pass

val names : ('env, 'a) pass list -> string list

(** [run ~trace ?dump_after ?dump_ppf passes env artifact] — execute the
    passes in order, each inside a trace span of its name.  After a pass
    whose name satisfies [dump_after] (default: none), its [dump] — when
    present — prints the artifact to [dump_ppf] (default: stderr).

    Failures are typed at the pass boundary: any exception escaping a
    pass is classified by {!Diag.of_exn} and re-raised as
    {!Diag.Error} carrying the pass name as its phase.  Before each
    pass the ambient {!Gcd2_util.Deadline} is checked, so a request
    deadline cancels the pipeline between passes (and, through the
    worker pool, between plan-enumeration tasks). *)
val run :
  trace:Trace.t ->
  ?dump_after:(string -> bool) ->
  ?dump_ppf:Format.formatter ->
  ('env, 'a) pass list ->
  'env ->
  'a ->
  'a
