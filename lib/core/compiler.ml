(** The end-to-end GCD2 compiler (paper Figure 6):

    quantized model -> computational graph -> graph optimizations ->
    {b local plan enumeration} -> {b global layout & instruction
    selection} -> SIMD code-generation plan -> kernels packed by the
    {b SDA} scheduler -> latency/utilization report.

    The driver is an explicit {!Pipeline} of named passes — [validate],
    the graph optimizations ([eliminate-identity-reshapes],
    [fuse-activations]), [build-costs] (plan enumeration, which
    generates, unrolls and SDA-packs every candidate kernel),
    [select:<strategy>] and [report] — each timed into the compile
    {!Trace} together with the counters the deeper layers record
    (fused nodes, partitions, packets packed, stalls inserted).

    The [selection] and [opcost] knobs expose every ablation the paper
    evaluates (local vs global selection, sub-graph size bounds,
    soft-dependency treatments, unrolling strategies, division lookup). *)

module Opcost = Gcd2_cost.Opcost
module Graphcost = Gcd2_cost.Graphcost
module Solver = Gcd2_layout.Solver
module Passes = Gcd2_graph.Passes
module Graph = Gcd2_graph.Graph
module Trace = Gcd2_util.Trace
module Artifact = Gcd2_store.Artifact
module Cache = Gcd2_store.Cache
module Fingerprint = Gcd2_store.Fingerprint

type selection =
  | Local  (** per-operator best plan, transformation costs ignored *)
  | Exhaustive  (** k^n global optimum (tiny graphs only) *)
  | Chain_dp  (** Equation 2; graph must be a chain *)
  | Optimal_dp  (** exact frontier DP over the whole graph *)
  | Partitioned of int  (** GCD2(k): cost-optimal partitioning, part size <= k *)
  | Pbqp  (** Scholz-Eckstein PBQP reductions (the paper's discussed alternative) *)

let pp_selection ppf = function
  | Local -> Fmt.string ppf "local"
  | Exhaustive -> Fmt.string ppf "exhaustive"
  | Chain_dp -> Fmt.string ppf "chain-dp"
  | Optimal_dp -> Fmt.string ppf "optimal-dp"
  | Partitioned k -> Fmt.pf ppf "gcd2(%d)" k
  | Pbqp -> Fmt.string ppf "pbqp"

type config = {
  name : string;
  opcost : Opcost.options;
  selection : selection;
  optimize_graph : bool;  (** activation fusion, identity elimination *)
}

(** The full GCD2 configuration (GCD2(13) selection, SDA packing,
    adaptive unrolling, division lookup). *)
let default =
  { name = "gcd2"; opcost = Opcost.gcd2; selection = Partitioned 13; optimize_graph = true }

(** Retarget a configuration to another device: plan enumeration, the
    roofline, layout-transform pricing and the request fingerprint all
    follow the descriptor. *)
let with_device device config =
  { config with opcost = { config.opcost with Opcost.device } }

(** The device a configuration targets. *)
let device config = config.opcost.Opcost.device

type compiled = {
  config : config;
  graph : Graph.t;  (** graph after optimization passes *)
  cost : Graphcost.t;
  assignment : int array;  (** chosen plan index per node *)
  report : Graphcost.report;
  selection_seconds : float;  (** wall time spent in global selection *)
  trace : Trace.t;  (** per-pass wall time and counters of this compile *)
}

let solve selection (cost : Graphcost.t) =
  match selection with
  | Local -> Solver.local cost.Graphcost.problem
  | Exhaustive -> Solver.exhaustive cost.Graphcost.problem
  | Chain_dp -> Solver.chain_dp cost.Graphcost.problem
  | Optimal_dp -> Solver.optimal cost.Graphcost.problem
  | Partitioned k -> Solver.partitioned ~max_size:k cost.Graphcost.problem
  | Pbqp -> Gcd2_layout.Pbqp.solve cost.Graphcost.problem

(* ------------------------------------------------------------------ *)
(* The pass pipeline                                                   *)

(** The artifact flowing through the pipeline: fields fill in as the
    passes run. *)
type artifact = {
  art_graph : Graph.t;
  art_cost : Graphcost.t option;
  art_solved : Solver.result option;
  art_report : Graphcost.report option;
  art_digest : string option;  (** request content-address, set by [cache-lookup] *)
  art_cached : bool;  (** filled from a verified cache entry *)
  art_selection_seconds : float option;  (** selection wall time of the cached compile *)
}

let empty_artifact g =
  {
    art_graph = g;
    art_cost = None;
    art_solved = None;
    art_report = None;
    art_digest = None;
    art_cached = false;
    art_selection_seconds = None;
  }

let require what = function
  | Some x -> x
  | None -> invalid_arg (Fmt.str "Compiler: the %S pass did not run" what)

let dump_graph ppf a = Graph.pp ppf a.art_graph

let dump_costs ppf a =
  let cost = require "build-costs" a.art_cost in
  Fmt.pf ppf "%-4s %-26s %s@\n" "id" "operator" "plans";
  Graph.iter
    (fun node ->
      Fmt.pf ppf "%-4d %-26s %a@\n" node.Graph.id
        (Gcd2_graph.Op.name node.Graph.op)
        Fmt.(list ~sep:(any " | ") Gcd2_cost.Plan.pp)
        (Array.to_list cost.Graphcost.plans.(node.Graph.id)))
    a.art_graph

let dump_assignment ppf a =
  let cost = require "build-costs" a.art_cost in
  let solved = require "select" a.art_solved in
  Fmt.pf ppf "cost %.0f@\n" solved.Solver.cost;
  Graph.iter
    (fun node ->
      let v = node.Graph.id in
      Fmt.pf ppf "%-4d %-26s -> %a@\n" v
        (Gcd2_graph.Op.name node.Graph.op)
        Gcd2_cost.Plan.pp
        cost.Graphcost.plans.(v).(solved.Solver.plans.(v)))
    a.art_graph

let dump_report ppf a =
  let r = require "report" a.art_report in
  Fmt.pf ppf "%.2f ms, %.0f cycles, util %.1f%%, %.2f GB/s" r.Graphcost.ms
    r.Graphcost.cycles
    (100.0 *. r.Graphcost.utilization)
    r.Graphcost.bandwidth_gbs

(* Passes already satisfied by a verified cache entry: everything the
   stored artifact carries (the optimized graph, plan tables, assignment
   and report) is skipped outright on a hit. *)
let cached a = a.art_cached

(* The optional graph-rewrite passes, shared between the pipeline and
   [fingerprint] so both always agree on the graph the expensive phases
   consume: (pass name, removed-nodes counter, rewrite). *)
let graph_rewrites config =
  if not config.optimize_graph then []
  else
    [
      ("eliminate-identity-reshapes", "reshapes-eliminated", Passes.eliminate_identity_reshapes);
      ( "fuse-activations",
        "fused-nodes",
        fun g ->
          let g = Passes.fuse_activations g in
          Graph.validate g;
          g );
    ]

(* The graph the selection phases see: the input graph after every
   optimization pass that [disable] leaves enabled. *)
let optimized ~disable config g =
  List.fold_left
    (fun g (name, _, rewrite) -> if List.mem name disable then g else rewrite g)
    g (graph_rewrites config)

(* One graph-rewrite pass, recording how many nodes it removed. *)
let graph_pass (name, counter, rewrite) =
  Pipeline.pass ~dump:dump_graph name (fun _ a ->
      let before = Graph.size a.art_graph in
      let g = rewrite a.art_graph in
      Trace.count counter (before - Graph.size g);
      { a with art_graph = g })

let select_pass_name config = Fmt.str "select:%a" pp_selection config.selection

(* ------------------------------------------------------------------ *)
(* The compile cache                                                    *)

(* Digest of a request whose graph is already optimized — what the
   cache passes compute in the middle of the pipeline, where [g] is the
   artifact's current (post-rewrite) graph. *)
let post_opt_fingerprint ~disable (config : config) (g : Graph.t) =
  Fingerprint.request
    ~selection:(Fmt.str "%a" pp_selection config.selection)
    ~optimize_graph:config.optimize_graph ~disable ~options:config.opcost g

(** Content-address of the request [(g, config, disable)] — the cache
    key.  [g] is the input graph; the digest is computed over its
    optimized form (the op universe plan enumeration and selection
    actually see), so the extensional [supported] bitmap also covers
    fused/rewritten ops. *)
let fingerprint ?(disable = []) (config : config) (g : Graph.t) =
  post_opt_fingerprint ~disable config (optimized ~disable config g)

(* Consult the on-disk cache for the request's digest.  On a verified
   hit the whole downstream pipeline is satisfied from the entry: the
   cost tables are rebuilt from the stored plans (cheap — plan
   enumeration is what the cache exists to skip) under the live config's
   options.  Any corrupt, stale or mismatching entry is a miss, never an
   error. *)
let cache_lookup_pass ~disable dir =
  Pipeline.pass "cache-lookup" (fun (config : config) a ->
      let digest = post_opt_fingerprint ~disable config a.art_graph in
      match Cache.lookup ~dir digest with
      | Some (art, bytes) ->
        Trace.count "cache-hits" 1;
        Trace.count "cache-bytes" bytes;
        {
          art_graph = art.Artifact.graph;
          art_cost = Some (Graphcost.of_plans config.opcost art.Artifact.graph art.Artifact.plans);
          art_solved =
            Some { Solver.plans = art.Artifact.assignment; cost = art.Artifact.objective };
          art_report = Some art.Artifact.report;
          art_digest = Some digest;
          art_cached = true;
          art_selection_seconds = Some art.Artifact.selection_seconds;
        }
      | None ->
        Trace.count "cache-misses" 1;
        { a with art_digest = Some digest })

(* Persist the finished compile under its request digest (skipped when
   the compile itself came from the cache; recomputed when [cache-lookup]
   itself was disabled). *)
let cache_store_pass ~disable dir =
  Pipeline.pass ~skip:cached "cache-store" (fun (config : config) a ->
      let digest =
        match a.art_digest with
        | Some d -> d
        | None -> post_opt_fingerprint ~disable config a.art_graph
      in
      let cost = require "build-costs" a.art_cost in
      let solved = require "select" a.art_solved in
      let report = require "report" a.art_report in
      let artifact =
        {
          Artifact.digest;
          graph = a.art_graph;
          plans = cost.Graphcost.plans;
          assignment = solved.Solver.plans;
          objective = solved.Solver.cost;
          report;
          programs =
            Artifact.programs_of ~options:config.opcost a.art_graph cost.Graphcost.plans
              solved.Solver.plans;
          selection_seconds = Trace.ambient_span_seconds (select_pass_name config);
        }
      in
      Trace.count "cache-bytes" (Cache.store ~dir artifact);
      a)

(* [jobs] parallelizes plan enumeration only (the one long pass); it is
   deliberately absent from [Fingerprint.request] — worker count cannot
   change the artifact, so compiles at different [jobs] share cache
   entries. *)
let passes ?cache_dir ?(disable = []) ?(jobs = 1) config =
  [ Pipeline.pass "validate" (fun _ a ->
        Graph.validate a.art_graph;
        a) ]
  @ List.map graph_pass (graph_rewrites config)
  (* [cache-lookup] sits after the (cheap) graph rewrites so the digest —
     in particular its extensional [supported] bitmap — covers the op
     universe the expensive passes below actually see. *)
  @ (match cache_dir with Some dir -> [ cache_lookup_pass ~disable dir ] | None -> [])
  @ [
      Pipeline.pass ~dump:dump_costs ~skip:cached "build-costs" (fun (config : config) a ->
          { a with art_cost = Some (Graphcost.build ~jobs config.opcost a.art_graph) });
      Pipeline.pass ~dump:dump_assignment ~skip:cached (select_pass_name config)
        (fun config a ->
          let cost = require "build-costs" a.art_cost in
          { a with art_solved = Some (solve config.selection cost) });
      Pipeline.pass ~dump:dump_report ~skip:cached "report" (fun _ a ->
          let cost = require "build-costs" a.art_cost in
          let solved = require "select" a.art_solved in
          { a with art_report = Some (Graphcost.report cost solved.Solver.plans) });
    ]
  @ match cache_dir with Some dir -> [ cache_store_pass ~disable dir ] | None -> []

(** Pass names of a configuration, in execution order. *)
let pass_names ?cache_dir config = Pipeline.names (passes ?cache_dir config)

let compile_exn ?(config = default) ?(sink = Trace.Silent) ?(disable = []) ?(dump_after = [])
    ?dump_ppf ?cache_dir ?jobs ?deadline_ms (g : Graph.t) =
  let jobs = match jobs with Some j -> j | None -> Gcd2_util.Pool.default_jobs () in
  let trace = Trace.create ~sink "compile" in
  let disable = List.sort_uniq String.compare disable in
  let passes =
    List.filter
      (fun p -> not (List.mem p.Pipeline.name disable))
      (passes ?cache_dir ~disable ~jobs config)
  in
  let deadline = Option.map (fun ms -> Trace.now () +. (ms /. 1000.0)) deadline_ms in
  let run_passes () =
    Trace.with_ambient trace @@ fun () ->
    Trace.run_root trace @@ fun () ->
    Pipeline.run ~trace
      ~dump_after:(fun n -> List.mem n dump_after)
      ?dump_ppf passes config (empty_artifact g)
  in
  let art =
    match deadline with
    | Some _ -> Gcd2_util.Deadline.with_deadline deadline run_passes
    | None -> run_passes ()
  in
  let cost = require "build-costs" art.art_cost in
  let solved = require "select" art.art_solved in
  let report = require "report" art.art_report in
  {
    config;
    graph = art.art_graph;
    cost;
    assignment = solved.Solver.plans;
    report;
    selection_seconds =
      (match art.art_selection_seconds with
      | Some s -> s  (* a cache hit reports the original compile's selection time *)
      | None -> Trace.span_seconds trace (select_pass_name config));
    trace;
  }

(** Result-typed compile: every failure — malformed request, cache I/O,
    injected fault, expired deadline, plain bug — comes back as a typed
    {!Diag.t} instead of an exception. *)
let compile_result ?config ?sink ?disable ?dump_after ?dump_ppf ?cache_dir ?jobs
    ?deadline_ms (g : Graph.t) =
  match compile_exn ?config ?sink ?disable ?dump_after ?dump_ppf ?cache_dir ?jobs ?deadline_ms g with
  | c -> Ok c
  | exception Diag.Error d -> Error d
  | exception exn -> Error (Diag.of_exn exn)

(** The raising face of {!compile_result}: raises {!Diag.Error}. *)
let compile ?config ?sink ?disable ?dump_after ?dump_ppf ?cache_dir ?jobs ?deadline_ms g =
  match compile_result ?config ?sink ?disable ?dump_after ?dump_ppf ?cache_dir ?jobs ?deadline_ms g with
  | Ok c -> c
  | Error d -> raise (Diag.Error d)

(** Was this compile answered from the on-disk cache? *)
let from_cache c = Trace.counter c.trace "cache-hits" > 0

(** Latency in milliseconds of a compiled model. *)
let latency_ms c = c.report.Graphcost.ms

let pp_phases ppf c =
  Fmt.pf ppf "compile %.3fs (%a)" (Trace.total_seconds c.trace)
    Fmt.(list ~sep:(any ", ") (fun ppf (n, s) -> pf ppf "%s %.3fs" n s))
    (Trace.top_spans c.trace)

let pp_trace ppf c = Trace.pp ppf c.trace

(* One "cache: ..." line, only when the compile consulted a cache. *)
let pp_cache ppf c =
  let hits = Trace.counter c.trace "cache-hits" in
  let misses = Trace.counter c.trace "cache-misses" in
  if hits + misses > 0 then
    Fmt.pf ppf "@\n  cache: %s, %d bytes"
      (if hits > 0 then "hit" else "miss")
      (Trace.counter c.trace "cache-bytes")

let pp_summary ppf c =
  let r = c.report in
  Fmt.pf ppf
    "%s: %d ops, %.2f ms (%.0f cycles), util %.1f%%, %.2f GB/s, %.2f effective TOPS@\n  %a%a"
    c.config.name (Graph.size c.graph) r.Graphcost.ms r.Graphcost.cycles
    (100.0 *. r.Graphcost.utilization)
    r.Graphcost.bandwidth_gbs
    (Gcd2_cost.Config.tops_on (device c.config) ~macs:r.Graphcost.macs
       ~cycles:r.Graphcost.cycles)
    pp_phases c pp_cache c
