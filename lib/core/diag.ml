(** Typed compile diagnostics (see the interface for the taxonomy). *)

module Fault = Gcd2_util.Fault
module Deadline = Gcd2_util.Deadline

type code =
  | Invalid_request
  | Cache_io
  | Artifact_corrupt
  | Worker_failed
  | Vm_fault
  | Deadline_exceeded
  | Overloaded
  | Pass_failed
  | Internal

let all_codes =
  [
    Invalid_request;
    Cache_io;
    Artifact_corrupt;
    Worker_failed;
    Vm_fault;
    Deadline_exceeded;
    Overloaded;
    Pass_failed;
    Internal;
  ]

let code_name = function
  | Invalid_request -> "invalid-request"
  | Cache_io -> "cache-io"
  | Artifact_corrupt -> "artifact-corrupt"
  | Worker_failed -> "worker-failed"
  | Vm_fault -> "vm-fault"
  | Deadline_exceeded -> "deadline-exceeded"
  | Overloaded -> "overloaded"
  | Pass_failed -> "pass-failed"
  | Internal -> "internal"

(* Transient conditions a fresh attempt may not hit again; everything
   else fails identically on retry and must not be retried.  Overload is
   transient by definition: the request was fine, the server was full. *)
let default_retryable = function
  | Cache_io | Artifact_corrupt | Worker_failed | Overloaded -> true
  | Invalid_request | Vm_fault | Deadline_exceeded | Pass_failed | Internal -> false

type t = {
  code : code;
  phase : string option;
  model : string option;
  message : string;
  retryable : bool;
}

exception Error of t

let make ?phase ?model ?retryable code message =
  let retryable = match retryable with Some r -> r | None -> default_retryable code in
  { code; phase; model; message; retryable }

let with_phase phase t = match t.phase with Some _ -> t | None -> { t with phase = Some phase }
let with_model model t = match t.model with Some _ -> t | None -> { t with model = Some model }

let code_of_fault_point = function
  | "cache-read" | "cache-write" | "flight-lease" | "janitor-unlink" -> Cache_io
  | "artifact-decode" -> Artifact_corrupt
  | "vm-run" -> Vm_fault
  | "pool-worker" -> Worker_failed
  | _ -> Internal

let cache_phase = function Some ("cache-lookup" | "cache-store") -> true | _ -> false

let of_exn ?phase exn =
  match exn with
  | Error t -> (match phase with Some p -> with_phase p t | None -> t)
  | Fault.Injected { point; nth } ->
    let code = code_of_fault_point point in
    (* injected faults model transient conditions, so even the points
       whose code is otherwise deterministic (vm-run) retry *)
    make ?phase ~retryable:true code
      (Fmt.str "injected fault at %s (injection #%d)" point nth)
  | Deadline.Expired { deadline; now } ->
    make ?phase Deadline_exceeded
      (Fmt.str "deadline exceeded by %.1f ms" (1000.0 *. (now -. deadline)))
  | Sys_error msg when cache_phase phase -> make ?phase Cache_io msg
  | Sys_error msg -> make ?phase Internal ("system error: " ^ msg)
  | Invalid_argument msg -> make ?phase Invalid_request msg
  | Failure msg -> make ?phase Pass_failed msg
  | exn -> make ?phase Internal (Printexc.to_string exn)

let pp ppf t =
  Fmt.pf ppf "[%s]" (code_name t.code);
  (match t.phase with Some p -> Fmt.pf ppf " phase=%s" p | None -> ());
  (match t.model with Some m -> Fmt.pf ppf " model=%s" m | None -> ());
  Fmt.pf ppf ": %s (%s)" t.message (if t.retryable then "retryable" else "permanent")

let () =
  Printexc.register_printer (function
    | Error t -> Some (Fmt.str "Gcd2.Diag.Error(%a)" pp t)
    | _ -> None)
