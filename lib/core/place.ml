(** Cross-device placement (ROADMAP item 5): given a list of machine
    descriptions, cost every node's execution plans on every device and
    pick a (device, plan) pair per node with the existing global
    selection machinery.

    The construction flattens the per-device plan tables into one
    selection problem: node [v]'s option set is the concatenation of its
    plan tables on each device, so the solved index simultaneously
    chooses the device and the plan.  Edges inside a device pay the usual
    layout-transformation cost [TC]; edges crossing devices ship the
    producer's (unpadded) output through shared memory at the slower of
    the two DDR rates, then pay the consumer-side layout conversion.
    The paper's host-vs-DSP split is the degenerate two-device case of
    this pass. *)

module Desc = Gcd2_devices.Desc
module Opcost = Gcd2_cost.Opcost
module Graphcost = Gcd2_cost.Graphcost
module Plan = Gcd2_cost.Plan
module Solver = Gcd2_layout.Solver
module Problem = Gcd2_layout.Problem
module Graph = Gcd2_graph.Graph
module Trace = Gcd2_util.Trace

(** One node's placement: the chosen device, the plan index within that
    device's table, and the node's modeled cycles there. *)
type choice = { device : Desc.t; plan : int; cycles : float }

type placement = {
  devices : Desc.t array;
  costs : Graphcost.t array;  (** per-device single-device costings, same order *)
  choices : choice array;  (** per node *)
  objective : float;  (** solved Equation-1 objective over the joint problem *)
  per_device : (string * int) list;  (** nodes assigned to each device *)
}

let transfer_cycles (a : Desc.t) (b : Desc.t) ~bytes =
  float_of_int bytes /. Float.min a.Desc.ddr_bytes_per_cycle b.Desc.ddr_bytes_per_cycle

(* Flattened option index -> (device index, local plan index). *)
let decode offsets v j =
  let d = ref 0 in
  while !d + 1 < Array.length offsets.(v) && j >= offsets.(v).(!d + 1) do incr d done;
  (!d, j - offsets.(v).(!d))

let joint_problem (devices : Desc.t array) (costs : Graphcost.t array) (g : Graph.t) =
  let n = Graph.size g in
  let nd = Array.length devices in
  let plans_of d = costs.(d).Graphcost.plans in
  (* offsets.(v).(d) = first flattened option index of device d's table *)
  let offsets =
    Array.init n (fun v ->
        let o = Array.make nd 0 in
        for d = 1 to nd - 1 do
          o.(d) <- o.(d - 1) + Array.length (plans_of (d - 1)).(v)
        done;
        o)
  in
  let options =
    Array.init n (fun v -> offsets.(v).(nd - 1) + Array.length (plans_of (nd - 1)).(v))
  in
  let node_cost v j =
    let d, p = decode offsets v j in
    Plan.cycles ~desc:devices.(d) (plans_of d).(v).(p)
  in
  let out_bytes u = Array.fold_left ( * ) 1 (Graph.node g u).Graph.out_shape in
  let edge_cost u ju v jv =
    let du, pu = decode offsets u ju and dv, pv = decode offsets v jv in
    if du = dv then Graphcost.edge_tc devices.(du) g (plans_of du) u pu v pv
    else begin
      let src = (plans_of du).(u).(pu).Plan.layout
      and dst = (plans_of dv).(v).(pv).Plan.layout in
      let ship = transfer_cycles devices.(du) devices.(dv) ~bytes:(out_bytes u) in
      let convert =
        if src = dst then 0.0
        else begin
          let rows, cols = Opcost.mat_dims (Graph.node g u).Graph.out_shape in
          float_of_int
            (Gcd2_tensor.Layout.transform_cycles_on devices.(dv) ~src ~dst ~rows ~cols)
        end
      in
      ship +. convert
    end
  in
  (* device choice does not change which edges are desirable partition
     points — reuse the first device's structural predicate *)
  let desirable_edge = costs.(0).Graphcost.problem.Problem.desirable_edge in
  let preds = Array.init n (fun v -> (Graph.node g v).Graph.inputs) in
  let problem = { Problem.n; preds; options; node_cost; edge_cost; desirable_edge } in
  Problem.validate problem;
  (problem, offsets)

(* ------------------------------------------------------------------ *)
(* The pass pipeline                                                   *)

type artifact = {
  art_graph : Graph.t;
  art_costs : Graphcost.t option array;  (** one slot per device *)
  art_placed : placement option;
}

let passes devices ~max_size ~jobs =
  let cost_pass i (d : Desc.t) =
    Pipeline.pass (Fmt.str "build-costs:%s" d.Desc.name) (fun options a ->
        let retargeted = { options with Opcost.device = d } in
        a.art_costs.(i) <- Some (Graphcost.build ~jobs retargeted a.art_graph);
        a)
  in
  [ Pipeline.pass "validate" (fun _ a ->
        Graph.validate a.art_graph;
        a) ]
  @ List.of_seq (Seq.mapi cost_pass (Array.to_seq devices))
  @ [
      Pipeline.pass "place" (fun _ a ->
          let g = a.art_graph in
          let costs =
            Array.map
              (function
                | Some c -> c
                | None -> invalid_arg "Place: a build-costs pass did not run")
              a.art_costs
          in
          let problem, offsets = joint_problem devices costs g in
          let solved = Solver.partitioned ~max_size problem in
          let choices =
            Array.init (Graph.size g) (fun v ->
                let d, p = decode offsets v solved.Solver.plans.(v) in
                {
                  device = devices.(d);
                  plan = p;
                  cycles =
                    Plan.cycles ~desc:devices.(d) costs.(d).Graphcost.plans.(v).(p);
                })
          in
          let per_device =
            Array.to_list
              (Array.map
                 (fun (dev : Desc.t) ->
                   ( dev.Desc.name,
                     Array.fold_left
                       (fun acc c ->
                         if c.device.Desc.name = dev.Desc.name then acc + 1 else acc)
                       0 choices ))
                 devices)
          in
          Trace.count "placed-nodes" (Array.length choices);
          {
            a with
            art_placed =
              Some
                {
                  devices;
                  costs;
                  choices;
                  objective = solved.Solver.cost;
                  per_device;
                };
          });
    ]

(** [place ?max_size ?jobs ?sink ~devices g] — run the placement
    pipeline: per-device plan enumeration (one [build-costs:<name>] pass
    per device) followed by the joint [place] selection.  [max_size]
    (default 13) bounds the GCD2(k) partition size; [devices] must be
    non-empty. *)
let place ?(max_size = 13) ?jobs ?(sink = Trace.Silent) ~devices (g : Graph.t) =
  if devices = [] then invalid_arg "Place.place: empty device list";
  let devices = Array.of_list devices in
  let jobs = match jobs with Some j -> j | None -> Gcd2_util.Pool.default_jobs () in
  let trace = Trace.create ~sink "place" in
  let artifact =
    {
      art_graph = g;
      art_costs = Array.make (Array.length devices) None;
      art_placed = None;
    }
  in
  let art =
    Trace.with_ambient trace @@ fun () ->
    Trace.run_root trace @@ fun () ->
    Pipeline.run ~trace (passes devices ~max_size ~jobs) Opcost.gcd2 artifact
  in
  match art.art_placed with
  | Some p -> p
  | None -> invalid_arg "Place.place: the place pass did not run"

let pp ppf (p : placement) =
  Fmt.pf ppf "placement over %a: objective %.0f cycles@\n"
    Fmt.(list ~sep:(any ", ") string)
    (Array.to_list (Array.map (fun (d : Desc.t) -> d.Desc.name) p.devices))
    p.objective;
  List.iter (fun (name, count) -> Fmt.pf ppf "  %-12s %d nodes@\n" name count) p.per_device
