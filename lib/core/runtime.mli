(** Execution of a compiled model.  Operators whose kernels the compiler
    fully lowers (matmul, conv-as-GEMM, elementwise, activations) run as
    generated VLIW programs on the simulated DSP under the exact chosen
    plan; the remaining staging operators run host-side with the
    reference semantics.  Every result is bit-identical to
    {!Gcd2_kernels.Interp} (the suite runs whole models both ways). *)

module T = Gcd2_tensor.Tensor

(** Per-operator-kind slice of the counters (keys are coarse operator
    families: ["conv2d"], ["bmm"], ["softmax"], ...). *)
type kind_stat = {
  mutable k_vm : int;  (** nodes of this kind executed as DSP kernels *)
  mutable k_host : int;  (** nodes of this kind staged host-side *)
  mutable k_cycles : int;  (** simulator cycles across this kind's kernels *)
}

type stats = {
  mutable vm_nodes : int;  (** operators executed as DSP kernels *)
  mutable host_nodes : int;  (** operators staged host-side *)
  mutable vm_cycles : int;  (** simulator cycles across DSP kernels *)
  kinds : (string, kind_stat) Hashtbl.t;  (** host-vs-VM split per kind *)
}

(** Run a compiled model; [inputs] binds input-node ids to tensors. *)
val run_with_stats : Compiler.compiled -> inputs:(int * T.t) list -> T.t array * stats

val run : Compiler.compiled -> inputs:(int * T.t) list -> T.t array
