(** A typed, instrumented pass pipeline (see the interface). *)

module Trace = Gcd2_util.Trace

type ('env, 'a) pass = {
  name : string;
  run : 'env -> 'a -> 'a;
  dump : (Format.formatter -> 'a -> unit) option;
  skip : ('a -> bool) option;
}

let pass ?dump ?skip name run = { name; run; dump; skip }

let names passes = List.map (fun p -> p.name) passes

let run ~trace ?(dump_after = fun _ -> false) ?(dump_ppf = Format.err_formatter) passes env
    artifact =
  List.fold_left
    (fun artifact p ->
      match p.skip with
      | Some skip when skip artifact -> artifact
      | _ ->
        let artifact = Trace.with_span trace p.name (fun () -> p.run env artifact) in
        (match p.dump with
        | Some dump when dump_after p.name ->
          Format.fprintf dump_ppf "== after %s ==@\n%a@." p.name dump artifact
        | _ -> ());
        artifact)
    artifact passes
