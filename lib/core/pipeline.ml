(** A typed, instrumented pass pipeline (see the interface). *)

module Trace = Gcd2_util.Trace

type ('env, 'a) pass = {
  name : string;
  run : 'env -> 'a -> 'a;
  dump : (Format.formatter -> 'a -> unit) option;
  skip : ('a -> bool) option;
}

let pass ?dump ?skip name run = { name; run; dump; skip }

let names passes = List.map (fun p -> p.name) passes

(* Every failure escaping a pass — an injected fault, an expired
   deadline, a plain bug — leaves as a typed [Diag.Error] stamped with
   the pass name, so callers at the service boundary never see a raw
   exception.  A diagnostic raised deeper down keeps its own phase. *)
let diagnose name f =
  try f ()
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    Printexc.raise_with_backtrace (Diag.Error (Diag.of_exn ~phase:name exn)) bt

let run ~trace ?(dump_after = fun _ -> false) ?(dump_ppf = Format.err_formatter) passes env
    artifact =
  List.fold_left
    (fun artifact p ->
      match p.skip with
      | Some skip when skip artifact -> artifact
      | _ ->
        let artifact =
          diagnose p.name (fun () ->
              (* the cancellation point of a request deadline: checked
                 before every pass (and, finer, before every pool task) *)
              Gcd2_util.Deadline.check ();
              Trace.with_span trace p.name (fun () -> p.run env artifact))
        in
        (match p.dump with
        | Some dump when dump_after p.name ->
          Format.fprintf dump_ppf "== after %s ==@\n%a@." p.name dump artifact
        | _ -> ());
        artifact)
    artifact passes
