(** A typed, instrumented pass pipeline (see the interface). *)

module Trace = Gcd2_util.Trace

type ('env, 'a) pass = {
  name : string;
  run : 'env -> 'a -> 'a;
  dump : (Format.formatter -> 'a -> unit) option;
}

let pass ?dump name run = { name; run; dump }

let names passes = List.map (fun p -> p.name) passes

let run ~trace ?(dump_after = fun _ -> false) ?(dump_ppf = Format.err_formatter) passes env
    artifact =
  List.fold_left
    (fun artifact p ->
      let artifact = Trace.with_span trace p.name (fun () -> p.run env artifact) in
      (match p.dump with
      | Some dump when dump_after p.name ->
        Format.fprintf dump_ppf "== after %s ==@\n%a@." p.name dump artifact
      | _ -> ());
      artifact)
    artifact passes
