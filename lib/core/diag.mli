(** Typed compile diagnostics: the error taxonomy of the service
    boundary.

    Every failure the compiler can produce is classified into an error
    {!code} carrying the pipeline phase it arose in, the model (when a
    front end knows it), a human-readable message, and — the field the
    serving loop acts on — whether the failure is {e retryable}: a
    transient condition (cache I/O, a crashed worker) that a fresh
    attempt may not hit again, as opposed to a deterministic one (an
    invalid request, an expired deadline) that will fail identically
    every time.

    {!of_exn} is the single classification point from the raw exception
    world: injected faults ({!Gcd2_util.Fault.Injected}) map to the code
    of their injection point, {!Gcd2_util.Deadline.Expired} to
    [Deadline_exceeded], [Sys_error] inside a cache pass to [Cache_io],
    [Invalid_argument] to [Invalid_request], [Failure] to [Pass_failed],
    anything else to [Internal].  {!Pipeline.run} applies it to every
    pass exception, so by the time a failure crosses
    {!Compiler.compile_result} it is always an {!Error} of this type. *)

type code =
  | Invalid_request  (** malformed model/config/graph; will never succeed *)
  | Cache_io  (** transient artifact-cache read/write failure *)
  | Artifact_corrupt  (** a stored artifact failed its integrity checks *)
  | Worker_failed  (** a worker domain of a parallel phase died *)
  | Vm_fault  (** the simulated DSP faulted while executing a program *)
  | Deadline_exceeded  (** the request's wall-clock deadline expired *)
  | Overloaded
      (** the serve daemon's admission queue was full; retry after backoff *)
  | Pass_failed  (** a pipeline pass failed deterministically *)
  | Internal  (** unclassified; a bug until proven otherwise *)

(** Every code, in declaration order. *)
val all_codes : code list

(** Stable kebab-case name, e.g. ["cache-io"] (what outcome lines and
    logs print). *)
val code_name : code -> string

type t = {
  code : code;
  phase : string option;  (** pipeline pass (trace span) that failed *)
  model : string option;  (** request model, when the front end knows it *)
  message : string;
  retryable : bool;
}

exception Error of t

(** [make ?phase ?model ?retryable code message].  [retryable] defaults
    to the code's nature: [Cache_io], [Artifact_corrupt] and
    [Worker_failed] are transient, everything else deterministic. *)
val make : ?phase:string -> ?model:string -> ?retryable:bool -> code -> string -> t

(** Fill [phase] if not already set (how the pipeline stamps the failing
    pass onto a diagnostic raised deeper down). *)
val with_phase : string -> t -> t

(** Fill [model] if not already set. *)
val with_model : string -> t -> t

(** Classify an exception (see the module description).  [phase] is
    attached to diagnostics that do not already carry one. *)
val of_exn : ?phase:string -> exn -> t

(** One line: [[code] phase=... model=...: message (retryable)]. *)
val pp : Format.formatter -> t -> unit
