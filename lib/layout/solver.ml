(** Solvers for the global selection problem.

    - {!local}: per-operator best plan ignoring transformation costs — the
      paper's [local optimal] baseline.
    - {!exhaustive}: k^n enumeration — the paper's [global optimal]
      baseline, exponential by design (Figure 10's search-time blow-up).
    - {!chain_dp}: the paper's Equation 2 — exact, O(n k^2), valid only
      for linear chains.
    - {!frontier_dp}: exact dynamic program over general DAGs whose state
      is the plan choice of currently-live nodes; exponential only in the
      DAG's frontier width (small for DNN graphs).
    - {!partitioned}: the GCD2 heuristic — cut at desirable partitioning
      edges (plus complementary cuts bounding each part to [max_size]
      operators, the paper's GCD2(13)/GCD2(17)), solve each part exactly,
      conditioning on the plans already fixed for earlier parts. *)

type result = { plans : int array; cost : float }

let solve_result p plans = { plans; cost = Problem.total_cost p plans }

(* ------------------------------------------------------------------ *)

(** Best plan per node in isolation. *)
let local (p : Problem.t) =
  let plans =
    Array.init p.Problem.n (fun v ->
        let best = ref 0 and best_c = ref (p.node_cost v 0) in
        for o = 1 to p.options.(v) - 1 do
          let c = p.node_cost v o in
          if c < !best_c then begin
            best := o;
            best_c := c
          end
        done;
        !best)
  in
  solve_result p plans

(* ------------------------------------------------------------------ *)

exception Too_large

(** Full enumeration; raises {!Too_large} when the space exceeds
    [max_states] (default 20 million). *)
let exhaustive ?(max_states = 20_000_000) (p : Problem.t) =
  let space = Array.fold_left (fun acc k -> acc *. float_of_int k) 1.0 p.Problem.options in
  if space > float_of_int max_states then raise Too_large;
  let plans = Array.make p.n 0 in
  let best = ref None in
  let rec go v =
    if v = p.n then begin
      let c = Problem.total_cost p plans in
      match !best with
      | Some (_, bc) when bc <= c -> ()
      | _ -> best := Some (Array.copy plans, c)
    end
    else
      for o = 0 to p.options.(v) - 1 do
        plans.(v) <- o;
        go (v + 1)
      done
  in
  go 0;
  match !best with
  | Some (plans, cost) -> { plans; cost }
  | None -> { plans = [||]; cost = 0.0 }

(* ------------------------------------------------------------------ *)

(** Equation 2 of the paper; requires every node to have at most one
    predecessor and one successor. *)
let chain_dp (p : Problem.t) =
  let succ = Problem.succs p in
  Array.iteri
    (fun v ps ->
      if List.length ps > 1 || List.length succ.(v) > 1 then
        invalid_arg "chain_dp: not a chain")
    p.Problem.preds;
  if p.n = 0 then { plans = [||]; cost = 0.0 }
  else begin
    (* sol.(v).(o) = best cost of the prefix ending with plan o at v *)
    let sol = Array.init p.n (fun v -> Array.make p.options.(v) infinity) in
    let back = Array.init p.n (fun v -> Array.make p.options.(v) 0) in
    for v = 0 to p.n - 1 do
      for o = 0 to p.options.(v) - 1 do
        match p.preds.(v) with
        | [] -> sol.(v).(o) <- p.node_cost v o
        | [ u ] ->
          for l = 0 to p.options.(u) - 1 do
            let c = sol.(u).(l) +. p.edge_cost u l v o +. p.node_cost v o in
            if c < sol.(v).(o) then begin
              sol.(v).(o) <- c;
              back.(v).(o) <- l
            end
          done
        | _ -> assert false
      done
    done;
    (* chains may be several disconnected chains; walk each tail back *)
    let plans = Array.make p.n (-1) in
    for v = p.n - 1 downto 0 do
      if succ.(v) = [] then begin
        (* tail of a chain: pick its best plan, then backtrack *)
        let best = ref 0 in
        for o = 1 to p.options.(v) - 1 do
          if sol.(v).(o) < sol.(v).(!best) then best := o
        done;
        let rec walk v o =
          plans.(v) <- o;
          match p.preds.(v) with [] -> () | [ u ] -> walk u back.(v).(o) | _ -> assert false
        in
        walk v !best
      end
    done;
    solve_result p plans
  end

(* ------------------------------------------------------------------ *)
(* Frontier dynamic programming                                        *)

(* A DP state maps each live node to its chosen plan.  The set of live
   nodes is the same for all states at a given step, so a state is just an
   int array aligned with the sorted live list; encoded as a string key. *)

let encode plans_list = String.init (List.length plans_list) (fun i -> Char.chr (List.nth plans_list i))

module Smap = Map.Make (String)

(** [frontier_dp ?fixed ?lo ?hi p] — exact DP over nodes [lo, hi).
    [fixed] supplies plans for nodes < [lo] (used when conditioning a
    partition on earlier parts); edges from nodes < [lo] use those fixed
    plans, edges from inside the window use DP state.  [max_states] bounds
    memory; beyond it the weakest states are pruned (beam search), making
    the result potentially suboptimal — callers keep windows narrow
    enough that this never triggers in practice. *)
let frontier_dp ?fixed ?lo ?hi ?(max_states = 1 lsl 18) (p : Problem.t) =
  let lo = Option.value lo ~default:0 and hi = Option.value hi ~default:p.Problem.n in
  
  (* last step (node index) at which each node is needed inside the window *)
  let last_use = Array.make p.n (-1) in
  for v = lo to hi - 1 do
    List.iter (fun u -> if u >= lo then last_use.(u) <- max last_use.(u) v) p.preds.(v)
  done;
  (* live set after processing node v: nodes u <= v with last_use > v *)
  let fixed_plan u =
    match fixed with
    | Some f when u < lo -> f.(u)
    | _ -> invalid_arg "frontier_dp: edge from unfixed node outside window"
  in
  (* states: key -> (cost, choices-so-far as reversed list of (node, plan)
     backtracking chain).  We keep full assignment history per state via
     immutable lists: cheap enough at our sizes. *)
  let states = ref (Smap.singleton "" (0.0, [])) in
  let live = ref [] in
  for v = lo to hi - 1 do
    let next = ref Smap.empty in
    Smap.iter
      (fun key (cost, history) ->
        let plan_of_live u =
          let rec find idx = function
            | [] -> invalid_arg "frontier_dp: predecessor not live"
            | x :: _ when x = u -> Char.code key.[idx]
            | _ :: rest -> find (idx + 1) rest
          in
          find 0 !live
        in
        for o = 0 to p.options.(v) - 1 do
          let c = ref (cost +. p.node_cost v o) in
          List.iter
            (fun u ->
              let pu = if u < lo then fixed_plan u else plan_of_live u in
              c := !c +. p.edge_cost u pu v o)
            p.preds.(v);
          (* new live list: old live minus the dying, plus v if needed *)
          let surviving =
            List.mapi (fun idx u -> (u, Char.code key.[idx])) !live
            |> List.filter (fun (u, _) -> last_use.(u) > v)
          in
          let new_live_plans =
            surviving @ (if last_use.(v) > v then [ (v, o) ] else [])
          in
          let new_live_plans = List.sort compare new_live_plans in
          let nk = encode (List.map snd new_live_plans) in
          let entry = (!c, (v, o) :: history) in
          match Smap.find_opt nk !next with
          | Some (c', _) when c' <= !c -> ()
          | _ -> next := Smap.add nk entry !next
        done)
      !states;
    (* prune to max_states if needed (beam) *)
    let card = Smap.cardinal !next in
    if card > max_states then begin
      let all = Smap.bindings !next in
      let sorted = List.sort (fun (_, (a, _)) (_, (b, _)) -> compare a b) all in
      let kept = List.filteri (fun i _ -> i < max_states) sorted in
      next := List.fold_left (fun m (k, v') -> Smap.add k v' m) Smap.empty kept
    end;
    (* advance live list *)
    live :=
      List.filter (fun u -> last_use.(u) > v) !live @ (if last_use.(v) > v then [ v ] else []);
    live := List.sort compare !live;
    states := !next
  done;
  (* best final state *)
  let best = ref None in
  Smap.iter
    (fun _ (cost, history) ->
      match !best with
      | Some (bc, _) when bc <= cost -> ()
      | _ -> best := Some (cost, history))
    !states;
  let plans = Array.make (hi - lo) 0 in
  (match !best with
  | Some (_, history) -> List.iter (fun (v, o) -> plans.(v - lo) <- o) history
  | None -> ());
  plans

(** Exact solve of the whole problem by frontier DP. *)
let optimal (p : Problem.t) =
  let plans = frontier_dp p in
  solve_result p plans

(* ------------------------------------------------------------------ *)
(* GCD2's cost-optimal partitioning heuristic                          *)

(** Cut positions: prefer positions crossed by exactly one edge that is a
    desirable partitioning edge; complete with complementary cuts so no
    part exceeds [max_size]. *)
let partition_points (p : Problem.t) ~max_size =
  let crossing = Problem.crossing_edges p in
  (* for each position, is there exactly one crossing edge and is it
     desirable?  An edge (u, v) is "at" position q for u <= q < v. *)
  let desirable_at = Array.make (max 1 p.Problem.n) false in
  Array.iteri
    (fun v ps ->
      List.iter
        (fun u ->
          if p.desirable_edge u v then
            for q = u to v - 1 do
              desirable_at.(q) <- true
            done)
        ps)
    p.preds;
  let cuts = ref [] in
  let part_start = ref 0 in
  let last_good = ref (-1) in
  for q = 0 to p.n - 2 do
    if crossing.(q) = 1 && desirable_at.(q) then last_good := q;
    let size = q - !part_start + 1 in
    if crossing.(q) = 1 && desirable_at.(q) && size >= max_size / 2 then begin
      cuts := q :: !cuts;
      part_start := q + 1;
      last_good := -1
    end
    else if size >= max_size then begin
      (* complementary cut: back up to the last good position if it is
         inside this part, otherwise cut right here *)
      let cut = if !last_good >= !part_start then !last_good else q in
      cuts := cut :: !cuts;
      part_start := cut + 1;
      last_good := -1
    end
  done;
  List.rev !cuts

(** The GCD2 heuristic: partition, then solve each part exactly with the
    plans of earlier parts fixed. *)
let partitioned ?(max_size = 13) (p : Problem.t) =
  let cuts = partition_points p ~max_size in
  let plans = Array.make p.Problem.n 0 in
  let solve_part ~lo ~hi =
    Gcd2_util.Trace.count "partitions" 1;
    let part = frontier_dp ~fixed:plans ~lo ~hi p in
    Array.blit part 0 plans lo (hi - lo)
  in
  let rec go lo = function
    | [] -> if lo < p.n then solve_part ~lo ~hi:p.n
    | cut :: rest ->
      solve_part ~lo ~hi:(cut + 1);
      go (cut + 1) rest
  in
  if p.n > 0 then go 0 cuts;
  solve_result p plans
