(** Reference (golden) integer semantics for every operator.

    This interpreter defines what each quantized operator {e means}; the
    code generator must reproduce these results bit-exactly for the
    operators it executes on the simulated DSP (the test suite checks
    this).  All arithmetic is int8 inputs, int32 accumulation, fixed-point
    requantization — the standard mobile inference recipe the paper
    builds on. *)

module T = Gcd2_tensor.Tensor
module Q = Gcd2_tensor.Quant
module Sat = Gcd2_util.Saturate
module Op = Gcd2_graph.Op
module Graph = Gcd2_graph.Graph
open Gcd2_graph

let numel = Array.fold_left ( * ) 1

(* ------------------------------------------------------------------ *)
(* Matrix multiplication                                               *)

(** [matmul_i8 ~m ~k ~n a w ~mult ~shift] — row-major [a] (m x k) times
    [w] (k x n), int32 accumulation, requantized to int8 with the
    fixed-point multiplier. *)
let matmul_i8 ~m ~k ~n a w ~mult ~shift =
  let out = Array.make (m * n) 0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for l = 0 to k - 1 do
        acc := !acc + (a.((i * k) + l) * w.((l * n) + j))
      done;
      out.((i * n) + j) <- Sat.requantize !acc ~mult ~shift ~zero:0
    done
  done;
  out

(** Per-output-channel requantization variant of {!matmul_i8}: column [j]
    uses multiplier [mults.(j)] with the common [shift] (the layout of
    {!Gcd2_tensor.Quant.per_channel_requant}). *)
let matmul_i8_per_channel ~m ~k ~n a w ~mults ~shift =
  let out = Array.make (m * n) 0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for l = 0 to k - 1 do
        acc := !acc + (a.((i * k) + l) * w.((l * n) + j))
      done;
      out.((i * n) + j) <- Sat.requantize !acc ~mult:mults.(j) ~shift ~zero:0
    done
  done;
  out

(* ------------------------------------------------------------------ *)
(* im2col — patch extraction for convolution-as-GEMM                   *)

(** [im2col x ~kh ~kw ~stride ~pad] flattens an NHWC tensor into the
    patch matrix of shape [(n*oh*ow) x (kh*kw*c)].  The DSP runtime uses
    the same routine to stage convolution inputs (its cost is part of the
    operator's memory term). *)
let im2col (x : T.t) ~kh ~kw ~stride ~pad =
  match x.T.dims with
  | [| n; h; w; c |] ->
    let pad_h = if kh = 1 then 0 else pad and pad_w = if kw = 1 then 0 else pad in
    let oh = ((h + (2 * pad_h) - kh) / stride) + 1 in
    let ow = ((w + (2 * pad_w) - kw) / stride) + 1 in
    let rows = n * oh * ow and cols = kh * kw * c in
    let out = Array.make (rows * cols) 0 in
    let row = ref 0 in
    for b = 0 to n - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let col = ref 0 in
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              for ch = 0 to c - 1 do
                let iy = (oy * stride) + ky - pad_h and ix = (ox * stride) + kx - pad_w in
                let v =
                  if iy < 0 || iy >= h || ix < 0 || ix >= w then 0
                  else x.T.data.((((((b * h) + iy) * w) + ix) * c) + ch)
                in
                out.((!row * cols) + !col) <- v;
                incr col
              done
            done
          done;
          incr row
        done
      done
    done;
    (out, rows, cols, oh, ow)
  | _ -> invalid_arg "im2col: NHWC input expected"

(* ------------------------------------------------------------------ *)
(* Operator implementations                                            *)

let apply_act_opt ~out_q act data =
  match act with
  | None -> data
  | Some a ->
    let table = Lut.of_act ~in_q:out_q ~out_q a in
    Array.map (fun q -> Lut.apply table q) data

let conv2d (x : T.t) ~(weight : T.t) ~kh ~kw ~stride ~pad ~cout ~act ~out_q =
  let cin = x.T.dims.(3) in
  if weight.T.dims <> [| kh; kw; cin; cout |] then
    invalid_arg "conv2d: weight shape must be [kh; kw; cin; cout]";
  let patches, rows, cols, oh, ow = im2col x ~kh ~kw ~stride ~pad in
  let mult, shift = Q.requant_multiplier ~in_a:x.T.quant ~in_b:weight.T.quant ~out:out_q in
  let data = matmul_i8 ~m:rows ~k:cols ~n:cout patches weight.T.data ~mult ~shift in
  let data = apply_act_opt ~out_q act data in
  T.of_array ~quant:out_q [| x.T.dims.(0); oh; ow; cout |] data

let depthwise_conv2d (x : T.t) ~(weight : T.t) ~kh ~kw ~stride ~pad ~act ~out_q =
  match x.T.dims with
  | [| n; h; w; c |] ->
    if weight.T.dims <> [| kh; kw; c |] then
      invalid_arg "dwconv: weight shape must be [kh; kw; c]";
    let pad_h = if kh = 1 then 0 else pad and pad_w = if kw = 1 then 0 else pad in
    let oh = ((h + (2 * pad_h) - kh) / stride) + 1 in
    let ow = ((w + (2 * pad_w) - kw) / stride) + 1 in
    let mult, shift = Q.requant_multiplier ~in_a:x.T.quant ~in_b:weight.T.quant ~out:out_q in
    let out = Array.make (n * oh * ow * c) 0 in
    for b = 0 to n - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            let acc = ref 0 in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (oy * stride) + ky - pad_h and ix = (ox * stride) + kx - pad_w in
                if iy >= 0 && iy < h && ix >= 0 && ix < w then
                  acc :=
                    !acc
                    + (x.T.data.((((((b * h) + iy) * w) + ix) * c) + ch)
                      * weight.T.data.((((ky * kw) + kx) * c) + ch))
              done
            done;
            out.((((((b * oh) + oy) * ow) + ox) * c) + ch) <-
              Sat.requantize !acc ~mult ~shift ~zero:0
          done
        done
      done
    done;
    let out = apply_act_opt ~out_q act out in
    T.of_array ~quant:out_q [| n; oh; ow; c |] out
  | _ -> invalid_arg "dwconv: NHWC input expected"

let transposed_conv2d (x : T.t) ~(weight : T.t) ~kh ~kw ~stride ~pad ~cout ~act ~out_q =
  match x.T.dims with
  | [| n; h; w; cin |] ->
    if weight.T.dims <> [| kh; kw; cin; cout |] then
      invalid_arg "tconv: weight shape must be [kh; kw; cin; cout]";
    let oh = ((h - 1) * stride) - (2 * pad) + kh in
    let ow = ((w - 1) * stride) - (2 * pad) + kw in
    let acc = Array.make (n * oh * ow * cout) 0 in
    for b = 0 to n - 1 do
      for iy = 0 to h - 1 do
        for ix = 0 to w - 1 do
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              let oy = (iy * stride) + ky - pad and ox = (ix * stride) + kx - pad in
              if oy >= 0 && oy < oh && ox >= 0 && ox < ow then
                for oc = 0 to cout - 1 do
                  let s = ref acc.((((((b * oh) + oy) * ow) + ox) * cout) + oc) in
                  for ic = 0 to cin - 1 do
                    s :=
                      !s
                      + (x.T.data.((((((b * h) + iy) * w) + ix) * cin) + ic)
                        * weight.T.data.((((((ky * kw) + kx) * cin) + ic) * cout) + oc))
                  done;
                  acc.((((((b * oh) + oy) * ow) + ox) * cout) + oc) <- !s
                done
            done
          done
        done
      done
    done;
    let mult, shift = Q.requant_multiplier ~in_a:x.T.quant ~in_b:weight.T.quant ~out:out_q in
    let data = Array.map (fun a -> Sat.requantize a ~mult ~shift ~zero:0) acc in
    let data = apply_act_opt ~out_q act data in
    T.of_array ~quant:out_q [| n; oh; ow; cout |] data
  | _ -> invalid_arg "tconv: NHWC input expected"

let matmul (x : T.t) ~(weight : T.t) ~cout ~act ~out_q =
  let rows, k = T.matrix_dims x in
  if weight.T.dims <> [| k; cout |] then invalid_arg "matmul: weight shape must be [k; cout]";
  let mult, shift = Q.requant_multiplier ~in_a:x.T.quant ~in_b:weight.T.quant ~out:out_q in
  let data = matmul_i8 ~m:rows ~k ~n:cout x.T.data weight.T.data ~mult ~shift in
  let data = apply_act_opt ~out_q act data in
  let dims = Array.copy x.T.dims in
  dims.(Array.length dims - 1) <- cout;
  T.of_array ~quant:out_q dims data

let batch_matmul (a : T.t) (b : T.t) ~transpose_b ~out_q =
  let ra = Array.length a.T.dims in
  let batch = numel (Array.sub a.T.dims 0 (ra - 2)) in
  let m = a.T.dims.(ra - 1 - 1) and k = a.T.dims.(ra - 1) in
  let n = if transpose_b then b.T.dims.(ra - 2) else b.T.dims.(ra - 1) in
  let mult, shift = Q.requant_multiplier ~in_a:a.T.quant ~in_b:b.T.quant ~out:out_q in
  let out = Array.make (batch * m * n) 0 in
  for bt = 0 to batch - 1 do
    let ab = bt * m * k and bb = bt * k * n in
    for i = 0 to m - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0 in
        for l = 0 to k - 1 do
          let bv =
            if transpose_b then b.T.data.(bb + (j * k) + l) else b.T.data.(bb + (l * n) + j)
          in
          acc := !acc + (a.T.data.(ab + (i * k) + l) * bv)
        done;
        out.((bt * m * n) + (i * n) + j) <- Sat.requantize !acc ~mult ~shift ~zero:0
      done
    done
  done;
  let dims = Array.copy a.T.dims in
  dims.(ra - 1) <- n;
  T.of_array ~quant:out_q dims out

(* Elementwise with operand rescaling into the output scale. *)
let binary_elementwise op (a : T.t) (b : T.t) ~out_q =
  let broadcast = T.numel b < T.numel a in
  let bval i = if broadcast then b.T.data.(i mod T.numel b) else b.T.data.(i) in
  match op with
  | `Add | `Sub ->
    let ma = Q.rescale_multiplier ~from:a.T.quant ~into:out_q in
    let mb = Q.rescale_multiplier ~from:b.T.quant ~into:out_q in
    let sign = if op = `Add then 1 else -1 in
    (* each operand is rescaled into the output scale (an int8 -> int8 map,
       a table lookup on the DSP) and clamped before the saturating add —
       matching the generated vector kernel exactly *)
    let data =
      Array.mapi
        (fun i qa ->
          Sat.sat8
            (Sat.sat8 (Sat.apply_multiplier qa ma)
            + Sat.sat8 (sign * Sat.apply_multiplier (bval i) mb)))
        a.T.data
    in
    T.of_array ~quant:out_q (Array.copy a.T.dims) data
  | `Mul ->
    let mult, shift = Q.requant_multiplier ~in_a:a.T.quant ~in_b:b.T.quant ~out:out_q in
    let data =
      Array.mapi (fun i qa -> Sat.requantize (qa * bval i) ~mult ~shift ~zero:0) a.T.data
    in
    T.of_array ~quant:out_q (Array.copy a.T.dims) data
  | `Div ->
    (* On the DSP this becomes a reciprocal table lookup followed by a
       multiply (the paper's division-to-lookup optimization); the
       reference computes the same deterministic real-valued division. *)
    let data =
      Array.mapi
        (fun i qa ->
          let x = Q.dequantize a.T.quant qa and y = Q.dequantize b.T.quant (bval i) in
          if Float.abs y < 1e-9 then 0 else Q.quantize out_q (x /. y))
        a.T.data
    in
    T.of_array ~quant:out_q (Array.copy a.T.dims) data

(** The (output quantization, real function) that defines each pure unary
    operator; shared with the code generator so its lookup tables are
    identical to the reference semantics. *)
let unary_spec (op : Op.t) : (Q.t * (float -> float)) option =
  match op with
  | Op.Pow p ->
    Some
      ( Q.default,
        fun x -> if x < 0.0 && Float.rem p 1.0 <> 0.0 then 0.0 else Float.pow x p )
  | Op.Relu -> Some (Q.default, Lut.relu)
  | Op.Relu6 -> Some (Q.default, Lut.relu6)
  | Op.Hard_swish -> Some (Q.default, Lut.hswish)
  | Op.Sigmoid -> Some (Q.make (1.0 /. 128.0), Lut.sigmoid)
  | Op.Tanh -> Some (Q.make (1.0 /. 128.0), Float.tanh)
  | Op.Gelu -> Some (Q.default, Lut.gelu)
  | _ -> None

let unary_lut (x : T.t) ~out_q f =
  let table = Lut.of_fn ~in_q:x.T.quant ~out_q f in
  T.of_array ~quant:out_q (Array.copy x.T.dims)
    (Array.map (fun q -> Lut.apply table q) x.T.data)

(** Integer softmax along the last axis (shared algorithm; see module doc
    of {!Lut} for why both sides use identical integer steps). *)
let softmax (x : T.t) =
  let out_q = Q.make (1.0 /. 128.0) in
  let _, cols = T.matrix_dims x in
  let rows = T.numel x / cols in
  (* The exact integer steps of the DSP kernel (Gcd2_codegen.Rowops):
     saturated delta, exponential via the shared table, fixed-point
     reciprocal scale at shift 15. *)
  let table = Lut.softmax_exp_table ~scale:x.T.quant.Q.scale in
  let out = Array.make (T.numel x) 0 in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let m = ref (-128) in
    for j = 0 to cols - 1 do
      m := max !m x.T.data.(base + j)
    done;
    let e = Array.init cols (fun j -> table.(Sat.sat8 (x.T.data.(base + j) - !m) land 0xff)) in
    let sum = Array.fold_left ( + ) 0 e in
    let recip = Lut.softmax_recip sum in
    for j = 0 to cols - 1 do
      out.(base + j) <- Sat.sat8 (Sat.apply_multiplier e.(j) (recip, 15))
    done
  done;
  T.of_array ~quant:out_q (Array.copy x.T.dims) out

(** Integer layer normalization along the last axis: the exact steps of
    the DSP kernel (Gcd2_codegen.Rowops) — integer row sums, a per-row
    fused normalize-affine multiplier, and a fixed-point scale of the
    centered value at shift 15. *)
let layer_norm (x : T.t) =
  let out_q = Q.make (1.0 /. 16.0) in
  let _, cols = T.matrix_dims x in
  let rows = T.numel x / cols in
  let out = Array.make (T.numel x) 0 in
  for r = 0 to rows - 1 do
    let base = r * cols in
    let sum = ref 0 and sumsq = ref 0 in
    for j = 0 to cols - 1 do
      let v = x.T.data.(base + j) in
      sum := !sum + v;
      sumsq := !sumsq + (v * v)
    done;
    let mean, nm =
      Lut.layer_norm_multiplier ~scale:x.T.quant.Q.scale ~out_scale:out_q.Q.scale ~cols
        ~sum:!sum ~sumsq:!sumsq
    in
    for j = 0 to cols - 1 do
      out.(base + j) <-
        Sat.sat8 (Sat.apply_multiplier (x.T.data.(base + j) - mean) (nm, 15))
    done
  done;
  T.of_array ~quant:out_q (Array.copy x.T.dims) out

let pool ~mode (x : T.t) ~kernel ~stride =
  match x.T.dims with
  | [| n; h; w; c |] ->
    let oh = ((h - kernel) / stride) + 1 and ow = ((w - kernel) / stride) + 1 in
    let out = Array.make (n * oh * ow * c) 0 in
    for b = 0 to n - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            let acc = ref (match mode with `Max -> -128 | `Avg -> 0) in
            for ky = 0 to kernel - 1 do
              for kx = 0 to kernel - 1 do
                let v =
                  x.T.data.(((((((b * h) + (oy * stride) + ky) * w) + (ox * stride) + kx) * c) + ch))
                in
                match mode with
                | `Max -> acc := max !acc v
                | `Avg -> acc := !acc + v
              done
            done;
            let v =
              match mode with
              | `Max -> !acc
              | `Avg ->
                let count = kernel * kernel in
                if !acc >= 0 then (!acc + (count / 2)) / count
                else -(((- !acc) + (count / 2)) / count)
            in
            out.((((((b * oh) + oy) * ow) + ox) * c) + ch) <- v
          done
        done
      done
    done;
    T.of_array ~quant:x.T.quant [| n; oh; ow; c |] out
  | _ -> invalid_arg "pool: NHWC input expected"

let global_avg_pool (x : T.t) =
  match x.T.dims with
  | [| n; h; w; c |] ->
    let out = Array.make (n * c) 0 in
    for b = 0 to n - 1 do
      for ch = 0 to c - 1 do
        let acc = ref 0 in
        for y = 0 to h - 1 do
          for xx = 0 to w - 1 do
            acc := !acc + x.T.data.((((((b * h) + y) * w) + xx) * c) + ch)
          done
        done;
        let count = h * w in
        out.((b * c) + ch) <- Sat.sat8 ((!acc + (count / 2)) / count)
      done
    done;
    T.of_array ~quant:x.T.quant [| n; 1; 1; c |] out
  | _ -> invalid_arg "gap: NHWC input expected"

let transpose (x : T.t) ~perm =
  let rank = Array.length x.T.dims in
  let out_dims = Array.map (fun p -> x.T.dims.(p)) perm in
  let out = Array.make (T.numel x) 0 in
  let idx = Array.make rank 0 in
  let strides_in = Array.make rank 1 in
  for i = rank - 2 downto 0 do
    strides_in.(i) <- strides_in.(i + 1) * x.T.dims.(i + 1)
  done;
  let strides_out = Array.make rank 1 in
  for i = rank - 2 downto 0 do
    strides_out.(i) <- strides_out.(i + 1) * out_dims.(i + 1)
  done;
  let total = T.numel x in
  for lin = 0 to total - 1 do
    (* decompose lin in input coordinates *)
    let rem = ref lin in
    for i = 0 to rank - 1 do
      idx.(i) <- !rem / strides_in.(i);
      rem := !rem mod strides_in.(i)
    done;
    let out_lin = ref 0 in
    Array.iteri (fun oi p -> out_lin := !out_lin + (idx.(p) * strides_out.(oi))) perm;
    out.(!out_lin) <- x.T.data.(lin)
  done;
  T.of_array ~quant:x.T.quant out_dims out

let concat (a : T.t) (b : T.t) ~axis =
  let rank = Array.length a.T.dims in
  let out_dims = Array.copy a.T.dims in
  out_dims.(axis) <- a.T.dims.(axis) + b.T.dims.(axis);
  let inner d = numel (Array.sub d (axis + 1) (rank - axis - 1)) in
  let outer = numel (Array.sub a.T.dims 0 axis) in
  let ia = a.T.dims.(axis) * inner a.T.dims in
  let ib = b.T.dims.(axis) * inner b.T.dims in
  let out = Array.make (T.numel a + T.numel b) 0 in
  for o = 0 to outer - 1 do
    Array.blit a.T.data (o * ia) out (o * (ia + ib)) ia;
    Array.blit b.T.data (o * ib) out ((o * (ia + ib)) + ia) ib
  done;
  T.of_array ~quant:a.T.quant out_dims out

let pad_spatial (x : T.t) ~pad =
  match x.T.dims with
  | [| n; h; w; c |] ->
    let oh = h + (2 * pad) and ow = w + (2 * pad) in
    let out = Array.make (n * oh * ow * c) 0 in
    for b = 0 to n - 1 do
      for y = 0 to h - 1 do
        for xx = 0 to w - 1 do
          for ch = 0 to c - 1 do
            out.((((((b * oh) + y + pad) * ow) + xx + pad) * c) + ch) <-
              x.T.data.((((((b * h) + y) * w) + xx) * c) + ch)
          done
        done
      done
    done;
    T.of_array ~quant:x.T.quant [| n; oh; ow; c |] out
  | _ -> invalid_arg "pad: NHWC input expected"

let upsample (x : T.t) ~factor =
  match x.T.dims with
  | [| n; h; w; c |] ->
    let oh = h * factor and ow = w * factor in
    let out = Array.make (n * oh * ow * c) 0 in
    for b = 0 to n - 1 do
      for y = 0 to oh - 1 do
        for xx = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            out.((((((b * oh) + y) * ow) + xx) * c) + ch) <-
              x.T.data.((((((b * h) + (y / factor)) * w) + (xx / factor)) * c) + ch)
          done
        done
      done
    done;
    T.of_array ~quant:x.T.quant [| n; oh; ow; c |] out
  | _ -> invalid_arg "upsample: NHWC input expected"

(* ------------------------------------------------------------------ *)
(* Graph execution                                                     *)

let weight_of (node : Graph.node) =
  match node.Graph.weight with
  | Some w -> w
  | None -> invalid_arg (Fmt.str "Interp: node %s has no weights" node.Graph.name)

(** Evaluate one node given its input tensors. *)
let eval_node (node : Graph.node) (ins : T.t list) =
  let out_q = Q.default in
  let one () = match ins with [ x ] -> x | _ -> invalid_arg "bad arity" in
  let two () = match ins with [ a; b ] -> (a, b) | _ -> invalid_arg "bad arity" in
  match node.Graph.op with
  | Op.Input _ -> invalid_arg "Interp.eval_node: inputs are bound externally"
  | Op.Constant _ -> weight_of node
  | Op.Conv2d { kh; kw; stride; pad; cout; act } ->
    conv2d (one ()) ~weight:(weight_of node) ~kh ~kw ~stride ~pad ~cout ~act ~out_q
  | Op.Depthwise_conv2d { kh; kw; stride; pad; act } ->
    depthwise_conv2d (one ()) ~weight:(weight_of node) ~kh ~kw ~stride ~pad ~act ~out_q
  | Op.Transposed_conv2d { kh; kw; stride; pad; cout; act } ->
    transposed_conv2d (one ()) ~weight:(weight_of node) ~kh ~kw ~stride ~pad ~cout ~act ~out_q
  | Op.Matmul { cout; act } -> matmul (one ()) ~weight:(weight_of node) ~cout ~act ~out_q
  | Op.Batch_matmul { transpose_b } ->
    let a, b = two () in
    batch_matmul a b ~transpose_b ~out_q
  | Op.Add -> let a, b = two () in binary_elementwise `Add a b ~out_q
  | Op.Sub -> let a, b = two () in binary_elementwise `Sub a b ~out_q
  | Op.Mul -> let a, b = two () in binary_elementwise `Mul a b ~out_q
  | Op.Div -> let a, b = two () in binary_elementwise `Div a b ~out_q
  | (Op.Pow _ | Op.Relu | Op.Relu6 | Op.Hard_swish | Op.Sigmoid | Op.Tanh | Op.Gelu) as op
    -> (
    match unary_spec op with
    | Some (out_q, f) -> unary_lut (one ()) ~out_q f
    | None -> assert false)
  | Op.Softmax -> softmax (one ())
  | Op.Layer_norm -> layer_norm (one ())
  | Op.Max_pool { kernel; stride } -> pool ~mode:`Max (one ()) ~kernel ~stride
  | Op.Avg_pool { kernel; stride } -> pool ~mode:`Avg (one ()) ~kernel ~stride
  | Op.Global_avg_pool -> global_avg_pool (one ())
  | Op.Reshape { shape } -> T.reshape (one ()) (Array.copy shape)
  | Op.Transpose { perm } -> transpose (one ()) ~perm
  | Op.Concat { axis } -> let a, b = two () in concat a b ~axis
  | Op.Pad_spatial { pad } -> pad_spatial (one ()) ~pad
  | Op.Upsample { factor } -> upsample (one ()) ~factor

(** Run a whole graph.  [inputs] binds input-node ids to tensors; returns
    the per-node output tensors. *)
let run (g : Graph.t) ~inputs =
  let vals = Array.make (Graph.size g) None in
  Graph.iter
    (fun node ->
      let result =
        match node.Graph.op with
        | Op.Input { shape } -> (
          match List.assoc_opt node.Graph.id inputs with
          | Some t ->
            if t.T.dims <> shape then invalid_arg "Interp.run: input shape mismatch";
            t
          | None -> invalid_arg (Fmt.str "Interp.run: missing input %d" node.Graph.id))
        | _ ->
          let ins =
            List.map
              (fun i ->
                match vals.(i) with
                | Some t -> t
                | None -> invalid_arg "Interp.run: dangling input")
              node.Graph.inputs
          in
          eval_node node ins
      in
      vals.(node.Graph.id) <- Some result)
    g;
  Array.map
    (function Some t -> t | None -> invalid_arg "Interp.run: unevaluated node")
    vals
