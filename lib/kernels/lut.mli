(** 256-entry lookup tables for nonlinear functions.  On the DSP every
    transcendental activation (and division, via a reciprocal table)
    becomes a [Vlut]; the reference interpreter uses the same tables, so
    generated code is bit-exact by construction. *)

module Quant = Gcd2_tensor.Quant

(** [of_fn ~in_q ~out_q f] tabulates [quantize (f (dequantize q))] for
    every int8 [q]; entries are byte-encoded. *)
val of_fn : in_q:Quant.t -> out_q:Quant.t -> (float -> float) -> int array

(** Reference-side application (mirrors {!Gcd2_isa.Instr.Vlut}). *)
val apply : int array -> int -> int

val relu : float -> float
val relu6 : float -> float
val hswish : float -> float
val sigmoid : float -> float
val gelu : float -> float

val of_act : in_q:Quant.t -> out_q:Quant.t -> Gcd2_graph.Op.act -> int array

(** {2 Row-operator integer steps} — shared between the reference
    interpreter and the {!Gcd2_codegen} Rowops vector kernels. *)

(** Softmax's exponential table: index = raw byte of the saturated delta
    [sat8 (x - rowmax)], entry = [round (exp (scale * d) * 127)] clamped
    to a signed byte. *)
val softmax_exp_table : scale:float -> int array

(** Fixed-point reciprocal of a row's exponential sum (shift 15, output
    quant 1/128); 0 for empty/padding rows. *)
val softmax_recip : int -> int

(** Integer round-half-away-from-zero mean. *)
val rounded_mean : int -> int -> int

(** [layer_norm_multiplier ~scale ~out_scale ~cols ~sum ~sumsq] — the
    per-row (mean, fused normalize-affine multiplier at shift 15). *)
val layer_norm_multiplier :
  scale:float -> out_scale:float -> cols:int -> sum:int -> sumsq:int -> int * int
