(** 256-entry lookup tables for nonlinear functions.

    On the DSP every transcendental activation (and division, one of the
    paper's "other optimizations": replacing an expensive division by a
    database lookup) becomes a [Vlut] instruction.  The reference
    interpreter uses the {e same} tables, so generated code is bit-exact
    against the reference by construction. *)

module Quant = Gcd2_tensor.Quant

(** [of_fn ~in_q ~out_q f] tabulates [quantize_out (f (dequantize_in q))]
    for every int8 input [q].  Entry index is the byte encoding of [q]
    (two's complement). *)
let of_fn ~in_q ~out_q f =
  Array.init 256 (fun byte ->
      let q = Gcd2_util.Saturate.sign_extend ~bits:8 byte in
      let x = Quant.dequantize in_q q in
      Quant.quantize out_q (f x) land 0xff)

(** Apply a table on the reference side (mirrors {!Gcd2_isa.Instr.Vlut}). *)
let apply table q =
  Gcd2_util.Saturate.sign_extend ~bits:8 table.(q land 0xff)

let relu x = Float.max 0.0 x
let relu6 x = Float.min 6.0 (Float.max 0.0 x)
let hswish x = x *. relu6 (x +. 3.0) /. 6.0
let sigmoid x = 1.0 /. (1.0 +. exp (-.x))
let gelu x = 0.5 *. x *. (1.0 +. Float.tanh (0.7978845608 *. (x +. (0.044715 *. x *. x *. x))))

let of_act ~in_q ~out_q (a : Gcd2_graph.Op.act) =
  match a with
  | Gcd2_graph.Op.A_relu -> of_fn ~in_q ~out_q relu
  | Gcd2_graph.Op.A_relu6 -> of_fn ~in_q ~out_q relu6
  | Gcd2_graph.Op.A_hswish -> of_fn ~in_q ~out_q hswish

(* ------------------------------------------------------------------ *)
(* Row-operator (Softmax / LayerNorm) integer steps, shared between the
   reference interpreter and the Rowops vector kernels so the two are
   bit-exact by construction. *)

(** Softmax's exponential table: index is the raw byte of the saturated
    delta [sat8 (x - rowmax)] (always <= 0), the entry
    [round (exp (scale * d) * 127)].  127, not 255: entries must be
    valid signed bytes, and [e = 127] at [d = 0] keeps every row sum
    >= 127, so the reciprocal never divides by zero. *)
let softmax_exp_table ~scale =
  Array.init 256 (fun byte ->
      let d = min 0 (Gcd2_util.Saturate.sign_extend ~bits:8 byte) in
      min 127 (int_of_float (Float.round (exp (scale *. float_of_int d) *. 127.0))))

(** Fixed-point reciprocal of a row's exponential sum: the output is
    [e * recip] at shift 15 with quant 1/128, so a row sums to ~128.
    0 for empty/padding rows. *)
let softmax_recip sum = if sum <= 0 then 0 else ((128 * 32768) + (sum / 2)) / sum

(** Integer round-half-away-from-zero mean of a row sum. *)
let rounded_mean sum cols =
  if sum >= 0 then (sum + (cols / 2)) / cols else -((-sum + (cols / 2)) / cols)

(** The per-row (mean, fused normalize-affine multiplier) of LayerNorm,
    from the row's sum and sum of squares: the multiplier
    [round (scale * inv_std / out_scale * 2^15)] is applied to the
    centered value at shift 15 ([Sat.apply_multiplier] on both sides). *)
let layer_norm_multiplier ~scale ~out_scale ~cols ~sum ~sumsq =
  let mean = rounded_mean sum cols in
  (* sum of squared deviations, exactly: sum (x - mean)^2 *)
  let var_num = sumsq - (2 * mean * sum) + (cols * mean * mean) in
  let var_f = float_of_int var_num /. float_of_int cols *. scale *. scale in
  let inv_std = 1.0 /. sqrt (var_f +. 1e-5) in
  let nm = int_of_float (Float.round (scale *. inv_std /. out_scale *. 32768.0)) in
  (mean, min nm (1 lsl 30))
