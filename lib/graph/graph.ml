(** The computational graph (the paper's CG intermediate representation):
    a DAG of operator nodes, each producing exactly one output tensor.
    Nodes are stored in topological order (the builder guarantees it). *)

(* Marshaled into compile artifacts (with the Op.t and Tensor.t inside):
   any change to this type's layout requires updating
   Gcd2_store.Artifact.layout, or stale cache entries decode as garbage. *)
type node = {
  id : int;
  name : string;
  op : Op.t;
  inputs : int list;
  out_shape : int array;
  weight : Gcd2_tensor.Tensor.t option;
      (** actual parameter values, set only for functionally-executed
          graphs; cost analysis needs shapes alone *)
}

type t = { nodes : node array }

let node t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Graph.node: bad id";
  t.nodes.(id)

let size t = Array.length t.nodes

let iter f t = Array.iter f t.nodes
let fold f acc t = Array.fold_left f acc t.nodes

(** Users of each node (successor lists). *)
let successors t =
  let succ = Array.make (size t) [] in
  iter
    (fun n -> List.iter (fun i -> succ.(i) <- n.id :: succ.(i)) n.inputs)
    t;
  Array.map List.rev succ

(** Output nodes (no users). *)
let outputs t =
  let succ = successors t in
  fold (fun acc n -> if succ.(n.id) = [] then n.id :: acc else acc) [] t |> List.rev

(** Edge list [(src, dst)]. *)
let edges t =
  fold (fun acc n -> List.fold_left (fun acc i -> (i, n.id) :: acc) acc n.inputs) [] t
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

module Builder = struct
  type graph = t

  type t = { mutable rev_nodes : node list; mutable count : int }

  let create () = { rev_nodes = []; count = 0 }

  let shape_of b id =
    match List.find_opt (fun n -> n.id = id) b.rev_nodes with
    | Some n -> n.out_shape
    | None -> invalid_arg (Fmt.str "Builder: unknown node id %d" id)

  (** Append an operator node; returns its id.  Shapes are inferred and
      validated immediately. *)
  let add ?name ?weight b op inputs =
    if List.length inputs <> Op.arity op then
      invalid_arg
        (Fmt.str "Builder.add: %s expects %d inputs, got %d" (Op.name op) (Op.arity op)
           (List.length inputs));
    let in_shapes = List.map (shape_of b) inputs in
    let out_shape = Shape.infer op in_shapes in
    let id = b.count in
    let name = match name with Some n -> n | None -> Fmt.str "%s_%d" (Op.name op) id in
    b.rev_nodes <- { id; name; op; inputs; out_shape; weight } :: b.rev_nodes;
    b.count <- id + 1;
    id

  let input b shape = add b (Op.Input { shape }) []
  let constant ?weight b shape = add ?weight b (Op.Constant { shape }) []

  let conv2d ?act ?name ?weight b x ~kh ~kw ~stride ~pad ~cout =
    add ?name ?weight b (Op.Conv2d { kh; kw; stride; pad; cout; act }) [ x ]

  let dwconv ?act ?name ?weight b x ~kh ~kw ~stride ~pad =
    add ?name ?weight b (Op.Depthwise_conv2d { kh; kw; stride; pad; act }) [ x ]

  let tconv ?act ?name ?weight b x ~kh ~kw ~stride ~pad ~cout =
    add ?name ?weight b (Op.Transposed_conv2d { kh; kw; stride; pad; cout; act }) [ x ]

  let matmul ?act ?name ?weight b x ~cout = add ?name ?weight b (Op.Matmul { cout; act }) [ x ]

  let finish b = { nodes = Array.of_list (List.rev b.rev_nodes) }
end

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

(** Re-check the whole graph: ids dense and topologically ordered, arities
    and shapes consistent.  Raises {!Shape.Shape_error} or
    [Invalid_argument]. *)
let validate t =
  Array.iteri
    (fun i n ->
      if n.id <> i then invalid_arg "Graph.validate: ids not dense";
      List.iter
        (fun j -> if j >= i then invalid_arg "Graph.validate: not topologically ordered")
        n.inputs;
      if List.length n.inputs <> Op.arity n.op then
        invalid_arg (Fmt.str "Graph.validate: arity mismatch at %s" n.name);
      let in_shapes = List.map (fun j -> t.nodes.(j).out_shape) n.inputs in
      let inferred = Shape.infer n.op in_shapes in
      if inferred <> n.out_shape then
        invalid_arg (Fmt.str "Graph.validate: shape mismatch at %s" n.name))
    t.nodes

let pp ppf t =
  iter
    (fun n ->
      Fmt.pf ppf "%3d: %-24s <- %a  : %a@." n.id (Op.name n.op)
        Fmt.(Dump.list int)
        n.inputs
        Fmt.(Dump.array int)
        n.out_shape)
    t
