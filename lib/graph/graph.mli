(** The computational graph (the paper's CG intermediate representation):
    a DAG of operator nodes, each producing one output tensor, stored in
    topological order. *)

(** Marshaled into compile artifacts: any layout change requires updating
    {!Gcd2_store.Artifact}[.layout], or stale cache entries decode as
    garbage. *)
type node = {
  id : int;
  name : string;
  op : Op.t;
  inputs : int list;
  out_shape : int array;
  weight : Gcd2_tensor.Tensor.t option;
      (** parameter values; required only when executing functionally *)
}

type t = { nodes : node array }

val node : t -> int -> node
val size : t -> int
val iter : (node -> unit) -> t -> unit
val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

(** Successor lists, indexed by node id. *)
val successors : t -> int list array

(** Nodes without users. *)
val outputs : t -> int list

(** Edge list [(src, dst)]. *)
val edges : t -> (int * int) list

(** Incremental construction with immediate shape inference. *)
module Builder : sig
  type graph = t
  type t

  val create : unit -> t

  (** Append a node; returns its id.  Raises on arity or shape errors. *)
  val add :
    ?name:string -> ?weight:Gcd2_tensor.Tensor.t -> t -> Op.t -> int list -> int

  val input : t -> int array -> int
  val constant : ?weight:Gcd2_tensor.Tensor.t -> t -> int array -> int

  val conv2d :
    ?act:Op.act -> ?name:string -> ?weight:Gcd2_tensor.Tensor.t -> t -> int ->
    kh:int -> kw:int -> stride:int -> pad:int -> cout:int -> int

  val dwconv :
    ?act:Op.act -> ?name:string -> ?weight:Gcd2_tensor.Tensor.t -> t -> int ->
    kh:int -> kw:int -> stride:int -> pad:int -> int

  val tconv :
    ?act:Op.act -> ?name:string -> ?weight:Gcd2_tensor.Tensor.t -> t -> int ->
    kh:int -> kw:int -> stride:int -> pad:int -> cout:int -> int

  val matmul :
    ?act:Op.act -> ?name:string -> ?weight:Gcd2_tensor.Tensor.t -> t -> int ->
    cout:int -> int

  val finish : t -> graph
end

(** Recheck ids, topological order, arities and shapes; raises on
    violations. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
