(** Independent validity checker for packet schedules (used heavily by the
    property-based tests). *)

open Gcd2_isa

type error =
  | Not_a_partition
  | Illegal_packet of int
  | Ordering_violation of { producer : int; consumer : int }

val pp_error : Format.formatter -> error -> unit

(** [check instrs packets] — packets as returned by
    {!Packer.pack_indices}: every instruction exactly once, every packet
    legal (under the device's slot rules; default
    {!Gcd2_devices.Desc.hexagon698}) and internally in program order,
    every dependency ordered (hard: strictly earlier packet; soft: no
    later packet). *)
val check :
  ?desc:Gcd2_devices.Desc.t -> Instr.t array -> int list list -> (unit, error) result
