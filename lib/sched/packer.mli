(** VLIW instruction packing: the paper's Soft-Dependency-Aware algorithm
    (Algorithm 1) and the comparison strategies of its evaluation. *)

open Gcd2_isa

type strategy =
  | Sda of { w : float; p : float }
      (** Algorithm 1: [w] weights depth vs latency-matching in Equation 4,
          [p] scales the soft-dependency stall penalty; both "empirically
          decided" — the packer additionally decides the penalty policy per
          block by costing both and keeping the cheaper schedule *)
  | Soft_to_hard  (** soft dependencies treated as hard (Figure 11) *)
  | Soft_to_none  (** penalty terms removed (lines 27-28 of Algorithm 1) *)
  | List_topdown  (** conventional latency-weighted list scheduling *)
  | In_order
      (** LLVM-packetizer-like baseline: scan in program order, append
          while legal, never reorder (the stock backends' packing) *)

val default_w : float
val default_p : float

(** The tuned SDA configuration. *)
val sda : strategy

val pp_strategy : Format.formatter -> strategy -> unit

(** Pack one basic block (program order); packets as ascending
    instruction-index lists.  [desc] selects the device (slot masks,
    capacity, latencies); default {!Gcd2_devices.Desc.hexagon698}. *)
val pack_indices : ?desc:Gcd2_devices.Desc.t -> strategy -> Instr.t array -> int list list

(** Pack one basic block into a legal packet sequence. *)
val pack : ?desc:Gcd2_devices.Desc.t -> strategy -> Instr.t array -> Packet.t list

(** The pre-optimization packer, kept as the executable specification of
    the incremental one: [pack_indices_reference s b = pack_indices s b]
    for every strategy and block (the property tests pin this).  Slower —
    per-candidate freeness rescans and from-scratch legality/stall
    recomputation — so for tests and the pack-scaling benchmark only. *)
val pack_indices_reference :
  ?desc:Gcd2_devices.Desc.t -> strategy -> Instr.t array -> int list list

(** Reference {!pack}. *)
val pack_reference : ?desc:Gcd2_devices.Desc.t -> strategy -> Instr.t array -> Packet.t list

(** Total cycles of a packed block (packets never overlap). *)
val block_cycles : ?desc:Gcd2_devices.Desc.t -> Packet.t list -> int
