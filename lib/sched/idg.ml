(** Instruction Dependency Graph (the paper's IDG, Figure 5).

    Vertices are instructions of one basic block, edges are the hard/soft
    dependencies of {!Gcd2_isa.Dep}.  Instructions only depend on earlier
    instructions, so program order is already a topological order.

    Besides the adjacency lists the build precomputes what the packer's
    inner loop would otherwise rederive per candidate: a dense n×n
    dependence-kind matrix (O(1) pair queries), and per-instruction
    latency and slot-mask arrays. *)

open Gcd2_isa

type t = {
  instrs : Instr.t array;
  succ : (int * Dep.kind) list array;  (** outgoing edges, by instruction index *)
  pred : (int * Dep.kind) list array;  (** incoming edges *)
  order : int array;  (** longest hop-distance from an entry (paper's [i.order]) *)
  ancestors : int array;  (** number of transitive predecessors (paper's [i.pred]) *)
  lat : int array;  (** [Instr.latency], by instruction index *)
  slot_mask : int array;  (** [Iclass.slot_mask] of the class, by index *)
  kinds : Bytes.t;  (** n×n dependence-kind matrix; query via {!edge} *)
}

(* Kind encoding in the matrix: 0 = no edge, 1 = hard, [2 + p] = soft with
   penalty [p].  Soft penalties are tiny (0..2 cycles today), so a byte is
   roomy; [encode] is total anyway. *)
let encode = function
  | None -> 0
  | Some Dep.Hard -> 1
  | Some (Dep.Soft p) -> 2 + p

let decode = function
  | 0 -> None
  | 1 -> Some Dep.Hard
  | c -> Some (Dep.Soft (c - 2))

let build ?(desc = Gcd2_devices.Desc.hexagon698) instrs =
  let n = Array.length instrs in
  let infos = Array.map Dep.info instrs in
  let succ = Array.make n [] and pred = Array.make n [] in
  let kinds = Bytes.make (n * n) '\000' in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match Dep.classify_info infos.(i) infos.(j) with
      | Some kind ->
        succ.(i) <- (j, kind) :: succ.(i);
        pred.(j) <- (i, kind) :: pred.(j);
        Bytes.unsafe_set kinds ((i * n) + j) (Char.chr (encode (Some kind)))
      | None -> ()
    done
  done;
  let order = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter (fun (i, _) -> order.(j) <- max order.(j) (order.(i) + 1)) pred.(j)
  done;
  (* Ancestor sets as bitmasks over instruction indices; blocks are small
     (hundreds of instructions), so an int-array bitset is plenty. *)
  let words = (n + 62) / 63 in
  let anc = Array.make_matrix n words 0 in
  let ancestors = Array.make n 0 in
  for j = 0 to n - 1 do
    List.iter
      (fun (i, _) ->
        for w = 0 to words - 1 do
          anc.(j).(w) <- anc.(j).(w) lor anc.(i).(w)
        done;
        anc.(j).(i / 63) <- anc.(j).(i / 63) lor (1 lsl (i mod 63)))
      pred.(j);
    let count = ref 0 in
    for w = 0 to words - 1 do
      let rec popcount x acc = if x = 0 then acc else popcount (x land (x - 1)) (acc + 1) in
      count := !count + popcount anc.(j).(w) 0
    done;
    ancestors.(j) <- !count
  done;
  let lat = Array.map (Instr.latency_on desc) instrs in
  let slot_mask = Array.map (fun i -> Iclass.slot_mask_on desc (Instr.iclass i)) instrs in
  { instrs; succ; pred; order; ancestors; lat; slot_mask; kinds }

let size t = Array.length t.instrs

(** [edge t i j] — the dependency from [i] to [j] ([i < j] in program
    order), if any; O(1) via the kind matrix. *)
let edge t i j =
  decode (Char.code (Bytes.unsafe_get t.kinds ((i * Array.length t.instrs) + j)))

(** [hard t i j] / [soft t i j] — O(1) kind tests ([i < j]). *)
let hard t i j = Bytes.unsafe_get t.kinds ((i * Array.length t.instrs) + j) = '\001'

let soft t i j =
  Char.code (Bytes.unsafe_get t.kinds ((i * Array.length t.instrs) + j)) >= 2

(** [critical_path t alive] — the maximum-total-latency path through the
    vertices for which [alive] holds, as a list of indices from entry side
    to exit side.  Raises [Invalid_argument] if nothing is alive. *)
let critical_path t alive =
  let n = size t in
  (* down.(i) = latency of the heaviest alive path starting at i. *)
  let down = Array.make n 0 and next = Array.make n (-1) in
  for i = n - 1 downto 0 do
    if alive.(i) then begin
      down.(i) <- t.lat.(i);
      List.iter
        (fun (j, _) ->
          if alive.(j) && down.(i) < t.lat.(i) + down.(j) then begin
            down.(i) <- t.lat.(i) + down.(j);
            next.(i) <- j
          end)
        t.succ.(i)
    end
  done;
  let start = ref (-1) in
  for i = 0 to n - 1 do
    if alive.(i) && (!start = -1 || down.(i) > down.(!start)) then start := i
  done;
  if !start = -1 then invalid_arg "Idg.critical_path: empty graph";
  let rec walk i acc = if i = -1 then List.rev acc else walk next.(i) (i :: acc) in
  walk !start []
