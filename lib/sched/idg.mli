(** Instruction Dependency Graph (the paper's IDG, Figure 5): vertices are
    the instructions of one basic block, edges the hard/soft dependencies.
    Program order is already a topological order.

    The build also precomputes the packer's hot queries: a dense n×n
    dependence-kind matrix and per-instruction latency / slot-mask
    arrays. *)

open Gcd2_isa

type t = {
  instrs : Instr.t array;
  succ : (int * Dep.kind) list array;  (** outgoing edges per instruction *)
  pred : (int * Dep.kind) list array;  (** incoming edges *)
  order : int array;  (** longest hop distance from an entry (paper's [i.order]) *)
  ancestors : int array;  (** transitive predecessor count (paper's [i.pred]) *)
  lat : int array;  (** [Instr.latency_on], by instruction index *)
  slot_mask : int array;  (** [Iclass.slot_mask_on] of the class, by index *)
  kinds : Bytes.t;  (** n×n dependence-kind matrix; query via {!edge} *)
}

(** Build the IDG, baking the device's latencies and slot masks into
    [lat]/[slot_mask] (default {!Gcd2_devices.Desc.hexagon698}). *)
val build : ?desc:Gcd2_devices.Desc.t -> Instr.t array -> t
val size : t -> int

(** [edge t i j] — the dependency from [i] to [j] ([i < j] in program
    order), if any; O(1) via the kind matrix.  Agrees with [succ]/[pred]
    by construction. *)
val edge : t -> int -> int -> Dep.kind option

(** O(1) kind tests for the pair [(i, j)], [i < j]. *)
val hard : t -> int -> int -> bool

val soft : t -> int -> int -> bool

(** Maximum-total-latency path through the still-[alive] vertices, entry
    side first.  Raises [Invalid_argument] on an empty graph. *)
val critical_path : t -> bool array -> int list
