(** VLIW instruction packing.

    {!pack} with {!strategy} [Sda] is the paper's Algorithm 1 — the
    Soft-Dependency-Aware packer.  It packs bottom-up: each round finds the
    critical path of the remaining IDG, seeds a packet with the path's last
    unpacked instruction, then repeatedly adds the highest-scoring {e free}
    instruction (one whose every remaining successor is already in the
    packet via a soft edge) that satisfies the slot/resource constraints.
    The score of a candidate [i] is the paper's Equation 4:
    {v  i.score = (i.order + i.pred) * w - |hi_lat - i.lat| * (1 - w)  v}
    minus a penalty [p(i, packet)] when [i] has a soft dependency with a
    packet member (lines 27-28 of Algorithm 1).

    [Soft_to_hard] treats every soft dependency as hard (no co-packing),
    and [Soft_to_none] removes the penalty term only — the two ablations of
    the paper's Figure 11.  [List_topdown] is a conventional latency-
    weighted list scheduler that does not distinguish soft dependencies,
    standing in for the LLVM packetizer used by Halide/TVM/RAKE.

    Two implementations live here.  The optimized one (the default) keeps
    freeness as per-instruction blocking-successor counters, checks packet
    legality on slot bitmasks and the IDG's O(1) kind matrix, and scores
    stall penalties with a tiny ≤4-member chain DP instead of two
    from-scratch {!Packet.stall} recomputations.  {!pack_reference} is the
    original direct transcription of Algorithm 1, kept as the executable
    specification: both produce {e identical} packet lists (same order,
    same tie-breaks — the candidate scan is the same ascending index loop
    with the same replace-on-[score >= best] rule), which the property
    tests in the test suite pin across random blocks and every strategy. *)

open Gcd2_isa
module Desc = Gcd2_devices.Desc

type strategy =
  | Sda of { w : float; p : float }
      (** [w] weights depth vs latency-matching in Equation 4; [p] scales
          the soft-dependency stall penalty (both "empirically decided" in
          the paper) *)
  | Soft_to_hard
  | Soft_to_none
  | List_topdown
  | In_order
      (** LLVM-packetizer-like baseline: scan the emitted instruction
          sequence in order, appending to the open packet while legal
          (soft dependencies treated as hard), never reordering — the
          packing the paper ascribes to the stock backends *)

let default_w = 0.3
let default_p = 4.0

(** The tuned SDA configuration. *)
let sda = Sda { w = default_w; p = default_p }

let pp_strategy ppf = function
  | Sda { w; p } -> Fmt.pf ppf "sda(w=%.2f,p=%.1f)" w p
  | Soft_to_hard -> Fmt.string ppf "soft_to_hard"
  | Soft_to_none -> Fmt.string ppf "soft_to_none"
  | List_topdown -> Fmt.string ppf "list_topdown"
  | In_order -> Fmt.string ppf "in_order"

(* Members of a packet are kept as ascending instruction indices so that
   program order inside the packet is preserved. *)
let insert_sorted i members =
  let rec go = function
    | [] -> [ i ]
    | j :: rest when j < i -> j :: go rest
    | rest -> i :: rest
  in
  go members

let to_packet idg members = List.map (fun i -> idg.Idg.instrs.(i)) members

(* ------------------------------------------------------------------ *)
(* Matrix-backed packet queries (members ascending = program order, so
   the pair (i, j) with i < j is exactly the program-order pair the
   reference asks Dep.classify about).                                 *)

(* Packet.stall over member indices: longest penalty-weighted soft chain,
   via O(1) matrix lookups.  Packets hold <= 4 members, so the list DP
   carries its own (index, chain-stall) pairs. *)
let stall_of idg members =
  let rec go acc earlier = function
    | [] -> acc
    | j :: rest ->
      let e =
        List.fold_left
          (fun e (i, ei) ->
            match Idg.edge idg i j with
            | Some (Dep.Soft pen) when ei + pen > e -> ei + pen
            | _ -> e)
          0 earlier
      in
      go (max acc e) ((j, e) :: earlier) rest
  in
  go 0 [] members

(* Packet.cycles over member indices. *)
let members_cycles idg members =
  match members with
  | [] -> 0
  | _ ->
    List.fold_left (fun m i -> max m idg.Idg.lat.(i)) 0 members + stall_of idg members

let hard_between idg i j = if i < j then Idg.hard idg i j else Idg.hard idg j i
let soft_between idg i j = if i < j then Idg.soft idg i j else Idg.soft idg j i
let edge_between idg i j = if i < j then Idg.edge idg i j else Idg.edge idg j i

(* Candidate legality against the open packet: no hard pair with a member
   (members are pairwise legal by construction) and a slot assignment
   exists for the member masks plus the candidate's.  The masks in the IDG
   are already the device's; [desc] only bounds the packet capacity. *)
let legal_with ~desc idg members i =
  List.for_all (fun m -> not (hard_between idg m i)) members
  && Packet.masks_feasible ~desc
       (idg.Idg.slot_mask.(i) :: List.map (fun m -> idg.Idg.slot_mask.(m)) members)

(* ------------------------------------------------------------------ *)
(* The bottom-up packing loop of Algorithm 1 (specialised by soft-edge
   treatment), incremental version.

   Freeness bookkeeping: blockers.(i) counts the successors of i that
   still pin it — alive successors not absorbed into the open packet
   through a soft edge.  An alive non-member is free iff its count is 0.
   Joining the packet unpins soft predecessors (unless as_hard);
   retiring at the end of the round unpins the rest, so every edge is
   decremented exactly once over the lifetime of its successor. *)
let pack_bottom_up ~desc ~w ~pscale ~as_hard ~penalize ~gate idg =
  let n = Idg.size idg in
  let alive = Array.make n true in
  let member = Array.make n false in
  let blockers = Array.make n 0 in
  for i = 0 to n - 1 do
    blockers.(i) <- List.length idg.Idg.succ.(i)
  done;
  let remaining = ref n in
  let packets = ref [] in
  while !remaining > 0 do
    let path = Idg.critical_path idg alive in
    let seed =
      match List.rev path with
      | s :: _ -> s
      | [] -> assert false
    in
    let members = ref [ seed ] in
    let mcount = ref 1 in
    let hi_lat = ref idg.Idg.lat.(seed) in
    let cur_stall = ref 0 in
    let join i =
      member.(i) <- true;
      if not as_hard then
        List.iter
          (fun (p, kind) ->
            match kind with
            | Dep.Soft _ -> blockers.(p) <- blockers.(p) - 1
            | Dep.Hard -> ())
          idg.Idg.pred.(i)
    in
    join seed;
    let full = ref false in
    while (not !full) && !mcount < Packet.capacity desc do
      (* select_instruction of Algorithm 1: same ascending scan and same
         replace-on-ties rule as the reference, so the chosen index is
         identical — only the per-candidate work is cheaper. *)
      let best = ref None in
      for i = 0 to n - 1 do
        if alive.(i) && (not member.(i)) && blockers.(i) = 0 && legal_with ~desc idg !members i
        then begin
          let lat = idg.Idg.lat.(i) in
          let score =
            (float_of_int (idg.Idg.order.(i) + idg.Idg.ancestors.(i)) *. w)
            -. (float_of_int (abs (!hi_lat - lat)) *. (1.0 -. w))
          in
          let stall =
            if penalize then
              max 0 (stall_of idg (insert_sorted i !members) - !cur_stall)
            else 0
          in
          let score =
            if penalize && List.exists (fun m -> soft_between idg m i) !members then
              score -. (pscale *. float_of_int stall)
            else score
          in
          (* Economic gate (part of the penalty mechanism): once the packet
             has real contents, refuse candidates whose stall would cost as
             much as issuing them in a later packet's free slot. *)
          if penalize && gate && stall >= 2 && !mcount >= 2 then ()
          else
            match !best with
            | Some (_, best_score) when score < best_score -> ()
            | _ -> best := Some (i, score)
        end
      done;
      match Option.map fst !best with
      | Some i ->
        members := insert_sorted i !members;
        incr mcount;
        if idg.Idg.lat.(i) > !hi_lat then hi_lat := idg.Idg.lat.(i);
        join i;
        cur_stall := stall_of idg !members
      | None -> full := true
    done;
    List.iter
      (fun i ->
        alive.(i) <- false;
        member.(i) <- false;
        List.iter
          (fun (p, kind) ->
            match kind with
            | Dep.Hard -> blockers.(p) <- blockers.(p) - 1
            | Dep.Soft _ -> if as_hard then blockers.(p) <- blockers.(p) - 1)
          idg.Idg.pred.(i);
        decr remaining)
      !members;
    (* Packets are created exit-first; collecting with (::) restores program
       order. *)
    packets := !members :: !packets
  done;
  !packets

(* Conventional top-down list scheduling, all dependencies treated as hard
   (the behaviour the paper ascribes to the Halide/TVM/RAKE backends). *)
let pack_list_topdown ~desc idg =
  let n = Idg.size idg in
  (* Priority: heaviest latency path to the exit. *)
  let weight = Array.make n 0 in
  for i = n - 1 downto 0 do
    weight.(i) <- idg.Idg.lat.(i);
    List.iter
      (fun (j, _) -> weight.(i) <- max weight.(i) (idg.Idg.lat.(i) + weight.(j)))
      idg.Idg.succ.(i)
  done;
  let scheduled = Array.make n false in
  let unpreds = Array.map (fun ps -> List.length ps) idg.Idg.pred in
  let done_count = ref 0 in
  let packets = ref [] in
  while !done_count < n do
    let members = ref [] in
    let progress = ref true in
    while !progress && List.length !members < Packet.capacity desc do
      progress := false;
      let best = ref None in
      for i = 0 to n - 1 do
        if
          (not scheduled.(i))
          && (not (List.mem i !members))
          && unpreds.(i) = 0
          && (* all dependencies hard: no co-packing with any dependence *)
          List.for_all (fun j -> edge_between idg i j = None) !members
          && Packet.masks_feasible ~desc
               (idg.Idg.slot_mask.(i)
               :: List.map (fun m -> idg.Idg.slot_mask.(m)) !members)
        then
          match !best with
          | Some (_, bw) when weight.(i) <= bw -> ()
          | _ -> best := Some (i, weight.(i))
      done;
      match !best with
      | Some (i, _) ->
        members := insert_sorted i !members;
        progress := true
      | None -> ()
    done;
    (match !members with
    | [] ->
      (* Cannot happen: some unscheduled instruction always has unpreds = 0. *)
      assert false
    | ms ->
      List.iter
        (fun i ->
          scheduled.(i) <- true;
          incr done_count;
          List.iter (fun (j, _) -> unpreds.(j) <- unpreds.(j) - 1) idg.Idg.succ.(i))
        ms;
      packets := ms :: !packets)
  done;
  List.rev !packets

(* The in-order packetizer: no reordering; a packet closes as soon as the
   next instruction cannot join it (any dependency with a member counts,
   soft included). *)
let pack_in_order ~desc idg =
  let n = Idg.size idg in
  let packets = ref [] and cur = ref [] in
  for i = 0 to n - 1 do
    let ok =
      List.for_all (fun j -> edge_between idg i j = None) !cur
      && Packet.masks_feasible ~desc
           (idg.Idg.slot_mask.(i) :: List.map (fun m -> idg.Idg.slot_mask.(m)) !cur)
    in
    if ok then cur := insert_sorted i !cur
    else begin
      if !cur <> [] then packets := !cur :: !packets;
      cur := [ i ]
    end
  done;
  if !cur <> [] then packets := !cur :: !packets;
  List.rev !packets

module Trace = Gcd2_util.Trace

(* Strategy dispatch over a prebuilt IDG (built once per block — the Sda
   dual-policy run shares it).  The IDG must have been built with the same
   [desc]. *)
let pack_indices_idg ?(desc = Desc.hexagon698) strategy idg =
  match strategy with
  | Sda { w; p } ->
    (* The stall penalty pays off in slot-saturated code (avoid stalls,
       other instructions will fill the packet) and hurts in
       dependence-bound code (a stall is cheaper than an extra packet).
       The penalty is "empirically decided" (the paper); we decide it
       per block by packing under both policies and keeping the cheaper
       schedule. *)
    let with_gate =
      pack_bottom_up ~desc ~w ~pscale:p ~as_hard:false ~penalize:true ~gate:true idg
    in
    let without =
      pack_bottom_up ~desc ~w ~pscale:0.0 ~as_hard:false ~penalize:true ~gate:false idg
    in
    let cost packets =
      List.fold_left (fun acc members -> acc + members_cycles idg members) 0 packets
    in
    if cost with_gate <= cost without then with_gate else without
  | Soft_to_hard ->
    pack_bottom_up ~desc ~w:default_w ~pscale:0.0 ~as_hard:true ~penalize:false
      ~gate:false idg
  | Soft_to_none ->
    pack_bottom_up ~desc ~w:default_w ~pscale:0.0 ~as_hard:false ~penalize:false
      ~gate:false idg
  | List_topdown -> pack_list_topdown ~desc idg
  | In_order -> pack_in_order ~desc idg

(** [pack_indices strategy instrs] packs one basic block (given in program
    order) and returns packets as ascending instruction-index lists. *)
let pack_indices ?desc strategy instrs =
  if Array.length instrs = 0 then []
  else begin
    let idg = ref None in
    let packets =
      Trace.in_span "pack" @@ fun () ->
      let g = Idg.build ?desc instrs in
      idg := Some g;
      pack_indices_idg ?desc strategy g
    in
    (* Observability: how many packets this schedule issues and how many
       stall cycles its soft co-packings pay (ambient trace only — the
       stall recount is not worth paying when nobody is listening). *)
    if Trace.enabled () then begin
      let g = Option.get !idg in
      Trace.count "packets" (List.length packets);
      Trace.count "stalls"
        (List.fold_left (fun acc members -> acc + stall_of g members) 0 packets)
    end;
    packets
  end

(** [pack strategy instrs] packs one basic block (given in program order)
    into a legal packet sequence. *)
let pack ?desc strategy instrs =
  List.map (fun members -> List.map (fun i -> instrs.(i)) members)
    (pack_indices ?desc strategy instrs)

(** Total cycles of a packed block (no overlap between packets). *)
let block_cycles ?desc packets =
  List.fold_left (fun a p -> a + Packet.cycles ?desc p) 0 packets

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)

(* The pre-optimization packer, kept verbatim as the executable
   specification of the incremental one above: per-candidate freeness
   rescans over the successor lists, Packet.legal / Packet.stall on
   rebuilt instruction lists.  Property tests assert [pack_reference]
   and [pack] return identical packet lists for every strategy; the
   pack-scaling micro-benchmark measures the gap. *)
module Reference = struct
  (* An instruction is free when every still-alive successor sits in the
     current packet through a soft edge (treating members as being packed).
     Under [as_hard], soft edges forbid co-packing too, so freedom requires
     every successor to be already retired. *)
  let free ~as_hard idg alive members i =
    alive.(i)
    && (not (List.mem i members))
    && List.for_all
         (fun (j, kind) ->
           (not alive.(j))
           || (List.mem j members
               && (match kind with Dep.Soft _ -> not as_hard | Dep.Hard -> false)))
         idg.Idg.succ.(i)

  let has_soft_with_members idg members i =
    let touches j =
      let kind_between a b = List.assoc_opt b idg.Idg.succ.(a) in
      match (kind_between i j, kind_between j i) with
      | Some (Dep.Soft _), _ | _, Some (Dep.Soft _) -> true
      | _ -> false
    in
    List.exists touches members

  (* Penalty p(i, packet): the additional stall the packet would suffer if i
     joined — the exact quantity the hardware will pay. *)
  let stall_penalty idg members i =
    let before = Packet.stall (to_packet idg members) in
    let after = Packet.stall (to_packet idg (insert_sorted i members)) in
    max 0 (after - before)

  (* select_instruction of Algorithm 1. *)
  let select_instruction ~desc ~w ~pscale ~penalize ~gate idg alive ~as_hard members =
    let n = Idg.size idg in
    let hi_lat =
      List.fold_left
        (fun m j -> max m (Instr.latency_on desc idg.Idg.instrs.(j)))
        0 members
    in
    let best = ref None in
    for i = 0 to n - 1 do
      if free ~as_hard idg alive members i then begin
        let cand = insert_sorted i members in
        if Packet.legal ~desc (to_packet idg cand) then begin
          let lat = Instr.latency_on desc idg.Idg.instrs.(i) in
          let score =
            (float_of_int (idg.Idg.order.(i) + idg.Idg.ancestors.(i)) *. w)
            -. (float_of_int (abs (hi_lat - lat)) *. (1.0 -. w))
          in
          let stall = stall_penalty idg members i in
          let score =
            if penalize && has_soft_with_members idg members i then
              score -. (pscale *. float_of_int stall)
            else score
          in
          if penalize && gate && stall >= 2 && List.length members >= 2 then ()
          else
            match !best with
            | Some (_, best_score) when score < best_score -> ()
            | _ -> best := Some (i, score)
        end
      end
    done;
    Option.map fst !best

  let pack_bottom_up ~desc ~w ~pscale ~as_hard ~penalize ~gate instrs =
    let idg = Idg.build ~desc instrs in
    let n = Idg.size idg in
    let alive = Array.make n true in
    let remaining = ref n in
    let packets = ref [] in
    while !remaining > 0 do
      let path = Idg.critical_path idg alive in
      let seed =
        match List.rev path with
        | s :: _ -> s
        | [] -> assert false
      in
      let members = ref [ seed ] in
      let full = ref false in
      while (not !full) && List.length !members < Packet.capacity desc do
        match
          select_instruction ~desc ~w ~pscale ~penalize ~gate idg alive ~as_hard
            !members
        with
        | Some i -> members := insert_sorted i !members
        | None -> full := true
      done;
      List.iter
        (fun i ->
          alive.(i) <- false;
          decr remaining)
        !members;
      packets := !members :: !packets
    done;
    !packets

  let pack_list_topdown ~desc instrs =
    let idg = Idg.build ~desc instrs in
    let n = Idg.size idg in
    let weight = Array.make n 0 in
    for i = n - 1 downto 0 do
      weight.(i) <- Instr.latency_on desc instrs.(i);
      List.iter
        (fun (j, _) ->
          weight.(i) <- max weight.(i) (Instr.latency_on desc instrs.(i) + weight.(j)))
        idg.Idg.succ.(i)
    done;
    let scheduled = Array.make n false in
    let unpreds = Array.map (fun ps -> List.length ps) idg.Idg.pred in
    let done_count = ref 0 in
    let packets = ref [] in
    while !done_count < n do
      let members = ref [] in
      let progress = ref true in
      while !progress && List.length !members < Packet.capacity desc do
        progress := false;
        let best = ref None in
        for i = 0 to n - 1 do
          if
            (not scheduled.(i))
            && (not (List.mem i !members))
            && unpreds.(i) = 0
            && List.for_all
                 (fun j ->
                   (not (List.mem_assoc j idg.Idg.succ.(i)))
                   && not (List.mem_assoc i idg.Idg.succ.(j)))
                 !members
            && Packet.legal ~desc (to_packet idg (insert_sorted i !members))
          then
            match !best with
            | Some (_, bw) when weight.(i) <= bw -> ()
            | _ -> best := Some (i, weight.(i))
        done;
        match !best with
        | Some (i, _) ->
          members := insert_sorted i !members;
          progress := true
        | None -> ()
      done;
      match !members with
      | [] -> assert false
      | ms ->
        List.iter
          (fun i ->
            scheduled.(i) <- true;
            incr done_count;
            List.iter (fun (j, _) -> unpreds.(j) <- unpreds.(j) - 1) idg.Idg.succ.(i))
          ms;
        packets := ms :: !packets
    done;
    List.rev !packets

  let pack_in_order ~desc instrs =
    let idg = Idg.build ~desc instrs in
    let n = Idg.size idg in
    let packets = ref [] and cur = ref [] in
    let depends i j =
      List.mem_assoc j idg.Idg.succ.(i) || List.mem_assoc i idg.Idg.succ.(j)
    in
    for i = 0 to n - 1 do
      let ok =
        List.for_all (fun j -> not (depends i j)) !cur
        && Packet.legal ~desc (to_packet idg (insert_sorted i !cur))
      in
      if ok then cur := insert_sorted i !cur
      else begin
        if !cur <> [] then packets := !cur :: !packets;
        cur := [ i ]
      end
    done;
    if !cur <> [] then packets := !cur :: !packets;
    List.rev !packets
end

(** The pre-optimization packer (the executable specification): returns
    the same packet-index lists as {!pack_indices}, recomputed the
    original O(n)-rescan way.  For tests and benchmarks. *)
let pack_indices_reference ?(desc = Desc.hexagon698) strategy instrs =
  if Array.length instrs = 0 then []
  else
    match strategy with
    | Sda { w; p } ->
      let with_gate =
        Reference.pack_bottom_up ~desc ~w ~pscale:p ~as_hard:false ~penalize:true
          ~gate:true instrs
      in
      let without =
        Reference.pack_bottom_up ~desc ~w ~pscale:0.0 ~as_hard:false ~penalize:true
          ~gate:false instrs
      in
      let cost packets =
        List.fold_left
          (fun acc members ->
            acc + Packet.cycles ~desc (List.map (fun i -> instrs.(i)) members))
          0 packets
      in
      if cost with_gate <= cost without then with_gate else without
    | Soft_to_hard ->
      Reference.pack_bottom_up ~desc ~w:default_w ~pscale:0.0 ~as_hard:true
        ~penalize:false ~gate:false instrs
    | Soft_to_none ->
      Reference.pack_bottom_up ~desc ~w:default_w ~pscale:0.0 ~as_hard:false
        ~penalize:false ~gate:false instrs
    | List_topdown -> Reference.pack_list_topdown ~desc instrs
    | In_order -> Reference.pack_in_order ~desc instrs

(** Reference {!pack}. *)
let pack_reference ?desc strategy instrs =
  List.map (fun members -> List.map (fun i -> instrs.(i)) members)
    (pack_indices_reference ?desc strategy instrs)
