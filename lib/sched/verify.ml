(** Independent validity checker for packet schedules, used by the test
    suite (including property-based tests): whatever packing strategy
    produced a schedule, it must be a dependence-respecting partition of
    the block into legal packets. *)

open Gcd2_isa

type error =
  | Not_a_partition
  | Illegal_packet of int
  | Ordering_violation of { producer : int; consumer : int }

let pp_error ppf = function
  | Not_a_partition -> Fmt.string ppf "packets are not a partition of the block"
  | Illegal_packet k -> Fmt.pf ppf "packet %d violates slot or hard-dependency rules" k
  | Ordering_violation { producer; consumer } ->
    Fmt.pf ppf "instruction %d is scheduled after its consumer %d" producer consumer

(** [check instrs packets] — [packets] as returned by
    {!Packer.pack_indices}, validated against the device's slot rules. *)
let check ?desc instrs (packets : int list list) =
  Gcd2_util.Trace.in_span "verify" @@ fun () ->
  let n = Array.length instrs in
  let position = Array.make n (-1) in
  (* packet index of every instruction; also checks the partition. *)
  let ok_partition =
    let seen = Array.make n false in
    List.iteri
      (fun k members ->
        List.iter
          (fun i ->
            if i >= 0 && i < n && not seen.(i) then begin
              seen.(i) <- true;
              position.(i) <- k
            end)
          members)
      packets;
    Array.for_all (fun b -> b) seen
    && List.fold_left (fun a p -> a + List.length p) 0 packets = n
  in
  if not ok_partition then Error Not_a_partition
  else begin
    let idg = Idg.build ?desc instrs in
    let bad_packet = ref None in
    List.iteri
      (fun k members ->
        let sorted = List.sort compare members = members in
        let packet = List.map (fun i -> instrs.(i)) members in
        if (not sorted) || not (Packet.legal ?desc packet) then
          if !bad_packet = None then bad_packet := Some k)
      packets;
    match !bad_packet with
    | Some k -> Error (Illegal_packet k)
    | None ->
      let violation = ref None in
      Array.iteri
        (fun i succs ->
          List.iter
            (fun (j, kind) ->
              let bad =
                match kind with
                | Dep.Hard -> position.(i) >= position.(j)
                | Dep.Soft _ -> position.(i) > position.(j)
              in
              if bad && !violation = None then
                violation := Some (Ordering_violation { producer = i; consumer = j }))
            succs)
        idg.Idg.succ;
      (match !violation with Some e -> Error e | None -> Ok ())
  end
