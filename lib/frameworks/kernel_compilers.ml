(** Kernel-level comparators: Halide, TVM and RAKE (paper Figure 7 and
    Table III).  These systems compile individual kernels (they "currently
    cannot execute full DNN models on this platform"), so the comparison
    is per-convolution.

    Modelled differences (per the paper's Section V and our DESIGN.md):
    - all three rely on LLVM's packetizer, which does not distinguish soft
      dependencies (our top-down list scheduler);
    - {b Halide} uses the schedule author's single vectorization pattern
      (the reduction-friendly vrmpy) and no unroll search;
    - {b TVM} unrolls more aggressively but keeps the same vectorization;
    - {b RAKE} synthesizes instruction selections per kernel, optimizing
      the number of instructions in the vectorized expression — which
      favours the reducing multiply even where a cheaper-by-cycles choice
      exists (exactly the Table III behaviour);
    - all three lower loop nests generically, recomputing effective
      addresses through the scalar unit ({!Matmul.Recompute}) where GCD2's
      layout-specialized codegen folds them into pointer bumps;
    - {b GCD_b} adds GCD2's cycle-driven instruction/layout selection and
      shape-adaptive unrolling; {b GCD2} adds SDA packing on top. *)

module Simd = Gcd2_codegen.Simd
module Matmul = Gcd2_codegen.Matmul
module Unroll = Gcd2_codegen.Unroll
module Packer = Gcd2_sched.Packer
module Program = Gcd2_isa.Program
module Config = Gcd2_cost.Config

type t = Halide | Tvm | Rake | Gcd_b | Gcd2_kernel

let name = function
  | Halide -> "Halide"
  | Tvm -> "TVM"
  | Rake -> "RAKE"
  | Gcd_b -> "GCDb"
  | Gcd2_kernel -> "GCD2"

let all = [ Halide; Tvm; Rake; Gcd_b; Gcd2_kernel ]

type result = {
  framework : t;
  simd : Simd.t;
  unroll : Unroll.setting;
  cycles : int;
  packets : int;  (** dynamic VLIW packet count — Figure 7 (right) *)
  ms : float;
}

(** Implicit-GEMM dimensions of a convolution. *)
let conv_mkn ~n ~h ~w ~c ~kh ~kw ~stride ~pad ~cout =
  let oh = ((h + (2 * pad) - kh) / stride) + 1 in
  let ow = ((w + (2 * pad) - kw) / stride) + 1 in
  (n * oh * ow, kh * kw * c, cout)

let base_spec ?(addressing = Matmul.Bump) simd strategy ~m ~k ~n =
  {
    Matmul.device = Gcd2_devices.Desc.hexagon698;
    simd;
    m;
    k;
    n;
    mult = 1 lsl 30;
    shift = 30;
    act_table = None;
    strategy;
    un = Gcd2_tensor.Layout.column_group (Simd.layout simd);
    ug = 1;
    abuf = 2;
    wbuf = 2;
    addressing;
  }

let instantiate spec (u : Unroll.setting) =
  let spec =
    { spec with Matmul.un = u.Unroll.un; ug = u.Unroll.ug; abuf = u.Unroll.abuf; wbuf = u.Unroll.wbuf }
  in
  let prog = Matmul.generate spec { Matmul.a_base = 0; w_base = 0; c_base = 0 } in
  (Program.static_cycles prog, Program.packet_count prog)

(* RAKE synthesizes vector instruction selections for the program's given
   (standard, channel-contiguous) layout, where the reducing multiply is
   the natural fit — it does not consider re-laying-out the data to enable
   the broadcast forms (the paper: "does not consider the possibility and
   costs of data transformation to use specific instructions").  Synthesis
   covers a two-group window of the reduction. *)
let rake_pick ~m:_ ~k ~n =
  (Simd.I_vrmpy, Unroll.fixed_mid Simd.I_vrmpy ~k ~n ~factor:2)

(* GCD2's per-kernel choice: fewest cycles with adaptive unrolling. *)
let gcd2_pick strategy ~m ~k ~n =
  let best = ref None in
  List.iter
    (fun simd ->
      let u = Unroll.adaptive simd ~m ~k ~n in
      let c, _ = instantiate (base_spec simd strategy ~m ~k ~n) u in
      match !best with
      | Some (bc, _, _) when bc <= c -> ()
      | _ -> best := Some (c, simd, u))
    Simd.all;
  match !best with Some (_, s, u) -> (s, u) | None -> assert false

(** Compile one convolution kernel under a framework's strategy. *)
let conv framework ~m ~k ~n =
  let simd, unroll, strategy, addressing =
    match framework with
    | Halide ->
      ( Simd.I_vrmpy,
        Unroll.none Simd.I_vrmpy ~k ~n,
        Packer.In_order,
        Matmul.Recompute )
    | Tvm ->
      (* deeper unrolling than Halide's default schedule, same lowering *)
      ( Simd.I_vrmpy,
        Unroll.fixed_out Simd.I_vrmpy ~k ~n ~factor:8,
        Packer.In_order,
        Matmul.Recompute )
    | Rake ->
      (* synthesis does fold addressing into its vector expressions *)
      let simd, u = rake_pick ~m ~k ~n in
      (simd, u, Packer.In_order, Matmul.Bump)
    | Gcd_b ->
      let simd, u = gcd2_pick Packer.In_order ~m ~k ~n in
      (simd, u, Packer.In_order, Matmul.Bump)
    | Gcd2_kernel ->
      let simd, u = gcd2_pick Packer.sda ~m ~k ~n in
      (simd, u, Packer.sda, Matmul.Bump)
  in
  let cycles, packets = instantiate (base_spec ~addressing simd strategy ~m ~k ~n) unroll in
  {
    framework;
    simd;
    unroll;
    cycles;
    packets;
    ms = Config.ms_of_cycles (float_of_int cycles);
  }
